(* The benchmark harness.

   Two halves:

   1. Reproduction: regenerate every table and figure of the paper's
      evaluation (Figures 4-6, Tables 1-6) with the full simulation,
      printing measured values next to the published ones. This is the
      output recorded in EXPERIMENTS.md.

   2. Bechamel micro-benchmarks: one [Test.make] per paper artifact
      (a scaled-down single-cell version of that experiment, so its
      cost can be tracked over time), plus a group covering the cache
      hot paths (hit, miss/evict under each allocation policy, the
      control calls) and the underlying data structures.

   Usage:
     main.exe                 everything (full reproduction + micro)
     main.exe fig4 table1     selected artifacts only
     main.exe micro           micro-benchmarks only
     main.exe perf            hot-path microbench family (engine-events,
                              disk-queue, policy-miss, cache-churn):
                              ops/sec and minor-heap words per op, into
                              the JSON "perf" section (see docs/PERF.md)
     main.exe check           equivalence replay: recorded + synthetic
                              reference traces through the naive and the
                              indexed disk-queue pickers and replacement
                              policies; exits non-zero on any divergence
     main.exe tournament      policy tournament: every registered policy
                              (stock + adaptive) over every wirgen corpus
                              family, scored as miss-count regret vs OPT;
                              rows land in the JSON "tournament" section
                              and --tournament-baseline gates them
     main.exe wirgen          generated-corpus family: draw a corpus from
                              the default wirgen spec at --corpus-seed,
                              replay its combined demand stream through
                              every policy, and run it as one machine;
                              spec hash + corpus seed land in the JSON
                              artifact row next to scenario_hash
     main.exe --quick         1 run and 2 cache sizes per artifact
     main.exe --runs N        cold-start runs per data point (default 3)
     main.exe --jobs N        run grid cells on N domains (default
                              ACFC_JOBS, else sequential); results are
                              byte-identical for every N
     main.exe fig5-par        time the fig5 grid sequential vs parallel
                              and report the speedup
     main.exe --json FILE     also write machine-readable results
                              (the acfc-bench/1 schema; CI uploads this
                              as the BENCH_results.json artifact)
     main.exe --baseline FILE with perf: check ratio (indexed/naive
                              speedup), abs (ops/sec floor) and alloc
                              (minor words per op budget) gate rows
                              against the committed baseline; exits
                              non-zero on any violation and reports
                              measured rows no gate covers
*)

module Config = Acfc_core.Config
module Cache = Acfc_core.Cache
module Policy = Acfc_core.Policy
module Block = Acfc_core.Block
module Ilist = Acfc_core.Ilist
module Pool = Acfc_par.Pool
module Fleet = Acfc_fleet.Fleet
module Scenario = Acfc_scenario.Scenario
module Cache_ref = Acfc_core.Cache_ref
module Wir = Acfc_wir.Wir
module Wirgen = Acfc_wirgen.Wirgen
module Store = Acfc_store.Store
module Kind = Acfc_store.Kind
open Acfc_experiments

let pid0 = Acfc_core.Pid.make 0

(* {2 Scratch space and the artifact store}

   Every intermediate file bench creates lives under one per-run temp
   directory, removed at exit — at_exit also runs on the gates' [exit
   1]/[exit 2] paths, so failing runs clean up too, and nothing ever
   lands in the CWD. *)

let rec remove_tree path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter
      (fun name -> remove_tree (Filename.concat path name))
      (Sys.readdir path);
    (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Sys.remove path with Sys_error _ -> ())
  | exception Unix.Unix_error _ -> ()

let temp_root = ref None

let temp_dir () =
  match !temp_root with
  | Some d -> d
  | None ->
    let d = Filename.temp_dir "acfc-bench" "" in
    temp_root := Some d;
    at_exit (fun () -> remove_tree d);
    d

(* The content-addressed store every artifact path resolves through:
   recorded traces and wirgen corpora are looked up by digest (cold
   runs generate and ingest, warm runs hit), and every emitted JSON
   report is ingested. [--store DIR] (or ACFC_STORE) makes it
   persistent so history accumulates across runs; the default is an
   ephemeral store inside the per-run temp dir — same code path,
   cleaned up at exit. *)

let store_dir : string option ref = ref (Sys.getenv_opt "ACFC_STORE")
let store_handle = ref None

let store () =
  match !store_handle with
  | Some s -> s
  | None ->
    let dir =
      match !store_dir with
      | Some d -> d
      | None -> Filename.concat (temp_dir ()) "store"
    in
    (match Store.open_ dir with
    | Ok s ->
      store_handle := Some s;
      s
    | Error e -> failwith ("bench: " ^ e))

(* Corpora resolve through the store by their deterministic label:
   first run of a (spec, seed, count) triple generates and ingests,
   every later run loads the stored bytes — bit-identical either way,
   since generation is a pure function and the codec round-trips. *)
let stored_corpus spec ~seed ~count =
  match Wirgen.stored_corpus (store ()) spec ~seed ~count with
  | Ok (programs, _) -> programs
  | Error e -> failwith ("bench: " ^ e)

(* {2 Micro-benchmarks} *)

let cache_hit_test =
  let cache = Cache.create (Config.make ~capacity_blocks:1024 ()) in
  ignore (Cache.read cache ~pid:pid0 (Block.make ~file:0 ~index:0));
  Bechamel.Test.make ~name:"cache/hit"
    (Bechamel.Staged.stage @@ fun () ->
     ignore (Cache.read cache ~pid:pid0 (Block.make ~file:0 ~index:0)))

let cache_miss_test ~name ~alloc_policy ~smart =
  let cache = Cache.create (Config.make ~alloc_policy ~capacity_blocks:1024 ()) in
  if smart then begin
    (match Cache.register_manager cache pid0 with Ok () -> () | Error _ -> assert false);
    match Cache.set_policy cache pid0 ~prio:0 Policy.Mru with
    | Ok () -> ()
    | Error _ -> assert false
  end;
  (* Fill so that every further read evicts. *)
  for i = 0 to 1023 do
    ignore (Cache.read cache ~pid:pid0 (Block.make ~file:0 ~index:i))
  done;
  let next = ref 1024 in
  Bechamel.Test.make ~name
    (Bechamel.Staged.stage @@ fun () ->
     ignore (Cache.read cache ~pid:pid0 (Block.make ~file:0 ~index:!next));
     incr next)

let cache_miss_upcall_test =
  let cache = Cache.create (Config.make ~capacity_blocks:1024 ()) in
  (match Cache.register_manager cache pid0 with Ok () -> () | Error _ -> assert false);
  (* An upcall handler doing the same work as the MRU pool, but through
     the general mechanism: the paper's flexibility-vs-overhead trade. *)
  (match
     Cache.set_chooser cache pid0
       (Some (fun ~candidate ~resident:_ -> Some candidate))
   with
  | Ok () -> ()
  | Error _ -> assert false);
  for i = 0 to 1023 do
    ignore (Cache.read cache ~pid:pid0 (Block.make ~file:0 ~index:i))
  done;
  let next = ref 1024 in
  Bechamel.Test.make ~name:"cache/miss-evict-upcall"
    (Bechamel.Staged.stage @@ fun () ->
     ignore (Cache.read cache ~pid:pid0 (Block.make ~file:0 ~index:!next));
     incr next)

let set_temppri_test =
  let cache = Cache.create (Config.make ~capacity_blocks:1024 ()) in
  (match Cache.register_manager cache pid0 with Ok () -> () | Error _ -> assert false);
  for i = 0 to 1023 do
    ignore (Cache.read cache ~pid:pid0 (Block.make ~file:0 ~index:i))
  done;
  let flip = ref 0 in
  Bechamel.Test.make ~name:"control/set_temppri"
    (Bechamel.Staged.stage @@ fun () ->
     flip := (!flip + 1) land 1023;
     ignore (Cache.set_temppri cache pid0 ~file:0 ~first:!flip ~last:!flip ~prio:(-1)))

let ilist_test =
  let store = Ilist.make_store 16 in
  let l = Ilist.create () in
  Ilist.push_front store l 0;
  Bechamel.Test.make ~name:"ilist/remove+push"
    (Bechamel.Staged.stage @@ fun () ->
     Ilist.remove store l 0;
     Ilist.push_front store l 0)

let heap_test =
  let h = Acfc_sim.Heap.create ~leq:(fun (a : float) b -> a <= b) () in
  for i = 0 to 255 do
    Acfc_sim.Heap.push h (float_of_int i)
  done;
  Bechamel.Test.make ~name:"heap/push+pop"
    (Bechamel.Staged.stage @@ fun () ->
     Acfc_sim.Heap.push h 128.0;
     ignore (Acfc_sim.Heap.pop h))

let engine_event_test =
  Bechamel.Test.make ~name:"engine/delay-roundtrip"
    (Bechamel.Staged.stage @@ fun () ->
     let e = Acfc_sim.Engine.create () in
     Acfc_sim.Engine.spawn e (fun () -> Acfc_sim.Engine.delay e 1.0);
     Acfc_sim.Engine.run e)

let policy_sim_test ~name policy =
  let trace = Acfc_replacement.Trace.cyclic ~file:0 ~blocks:512 ~passes:4 in
  Bechamel.Test.make ~name
    (Bechamel.Staged.stage @@ fun () ->
     ignore (Acfc_replacement.Policy_sim.run policy ~capacity:256 trace))

(* One Test.make per paper artifact: a single-cell scaled version. *)
let artifact_tests =
  let quick f = Bechamel.Staged.stage @@ fun () -> ignore (f ()) in
  [
    Bechamel.Test.make ~name:"fig4/din-6.4MB"
      (quick (fun () -> Single.run ~runs:1 ~sizes:[ 6.4 ] ~apps:[ "din" ] ()));
    Bechamel.Test.make ~name:"table5/cs1-6.4MB"
      (quick (fun () -> Single.run ~runs:1 ~sizes:[ 6.4 ] ~apps:[ "cs1" ] ()));
    Bechamel.Test.make ~name:"table6/ldk-6.4MB"
      (quick (fun () -> Single.run ~runs:1 ~sizes:[ 6.4 ] ~apps:[ "ldk" ] ()));
    Bechamel.Test.make ~name:"fig5/cs3+ldk-6.4MB"
      (quick (fun () ->
           Multi.run ~runs:1 ~sizes:[ 6.4 ] ~combos:[ [ "cs3"; "ldk" ] ] ()));
    Bechamel.Test.make ~name:"fig6/cs2+gli-6.4MB"
      (quick (fun () ->
           Alloc_lru.run ~runs:1 ~sizes:[ 6.4 ] ~combos:[ [ "cs2"; "gli" ] ] ()));
    Bechamel.Test.make ~name:"table1/read500"
      (quick (fun () -> Placeholders.run ~runs:1 ~ns:[ 500 ] ()));
    Bechamel.Test.make ~name:"table2/din"
      (quick (fun () -> Foolish.run ~runs:1 ~apps:[ "din" ] ()));
    Bechamel.Test.make ~name:"table3/din"
      (quick (fun () -> Smart_oblivious.run ~runs:1 ~apps:[ "din" ] ~two_disks:false ()));
    Bechamel.Test.make ~name:"table4/din"
      (quick (fun () -> Smart_oblivious.run ~runs:1 ~apps:[ "din" ] ~two_disks:true ()));
  ]

let micro_tests =
  [
    cache_hit_test;
    cache_miss_test ~name:"cache/miss-evict-global-lru" ~alloc_policy:Config.Global_lru
      ~smart:false;
    cache_miss_test ~name:"cache/miss-evict-lru-sp-overrule" ~alloc_policy:Config.Lru_sp
      ~smart:true;
    cache_miss_upcall_test;
    set_temppri_test;
    ilist_test;
    heap_test;
    engine_event_test;
    policy_sim_test ~name:"policy-sim/lru-cyclic" (module Acfc_replacement.Policies.Lru);
    policy_sim_test ~name:"policy-sim/opt-cyclic" (module Acfc_replacement.Policies.Opt);
  ]

(* Runs each test, prints the human-readable line, and returns
   [(name, ns_per_run, r2)] rows for the machine-readable report. *)
let run_bechamel ~quota_s tests =
  let open Bechamel in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second quota_s) ~kde:None ()
  in
  List.concat_map
    (fun test ->
      let results = Benchmark.all cfg instances (Test.make_grouped ~name:"" [ test ]) in
      let analyzed = Analyze.all ols Toolkit.Instance.monotonic_clock results in
      Hashtbl.fold
        (fun name ols_result acc ->
          let name =
            if String.length name > 0 && name.[0] = '/' then
              String.sub name 1 (String.length name - 1)
            else name
          in
          let estimate =
            match Analyze.OLS.estimates ols_result with
            | Some [ e ] -> e
            | Some _ | None -> Float.nan
          in
          let r2 = Option.value (Analyze.OLS.r_square ols_result) ~default:Float.nan in
          let value, unit_ =
            if estimate > 1e9 then (estimate /. 1e9, "s")
            else if estimate > 1e6 then (estimate /. 1e6, "ms")
            else if estimate > 1e3 then (estimate /. 1e3, "us")
            else (estimate, "ns")
          in
          Format.printf "  %-36s %10.2f %s/run   (r²=%.3f)@." name value unit_ r2;
          (name, estimate, r2) :: acc)
        analyzed [])
    tests

let run_micro () =
  Format.printf "@.%s@." (String.make 74 '=');
  Format.printf "Bechamel micro-benchmarks: paper artifacts (single-cell, scaled)@.";
  let artifact_rows = run_bechamel ~quota_s:2.0 artifact_tests in
  Format.printf "@.Bechamel micro-benchmarks: cache hot paths and substrates@.";
  let micro_rows = run_bechamel ~quota_s:0.5 micro_tests in
  artifact_rows @ micro_rows

(* {2 Perf microbench family}

   Hand-rolled steady-state loops (not bechamel): each benchmark reports
   throughput (ops/sec) and minor-heap allocation per op, the two
   quantities the hot-path re-indexing work (Sched_queue, indexed
   LRU-2/OPT/RAND) is meant to improve. The *-naive rows run the
   reference implementations on the identical op sequence, so the
   indexed/naive ratio is a machine-independent speedup — that ratio is
   what the --baseline gate checks. See docs/PERF.md. *)

module Sq = Acfc_disk.Sched_queue
module Rt = Acfc_replacement.Trace
module Policy_sim = Acfc_replacement.Policy_sim
module Policies = Acfc_replacement.Policies
module Reference = Acfc_replacement.Reference

type perf_row = {
  p_name : string;
  ops_per_sec : float;
  alloc_words_per_op : float;
  p_ops : int;  (* total ops measured *)
}

(* Indexed benchmark vs its naive-reference twin: the ratio of their
   ops/sec is the speedup the re-indexing buys, and what --baseline
   gates on. *)
let speedup_pairs =
  [
    ("disk-queue/fcfs", "disk-queue/fcfs-naive");
    ("disk-queue/scan", "disk-queue/scan-naive");
    ("policy-miss/lru2", "policy-miss/lru2-naive");
    ("policy-miss/opt", "policy-miss/opt-naive");
    ("engine-events/steady", "engine-events/steady-naive");
    ("engine-events/batch", "engine-events/batch-naive");
    ("cache-churn", "cache-churn/ref");
    (* Not an indexed/naive pair but a scaling pair: the same fleet on 4
       domains vs 1. The ratio gate on it is the multi-core scaling
       floor (meaningful on the >= 4-vCPU CI runners; a 1-core box
       measures ~1x and must not run the ratio gate). *)
    ("fleet-events/jobs4", "fleet-events/jobs1");
  ]

(* Best wall time of three timed passes: scheduler and frequency
   jitter only ever slow a pass down, so the minimum is the least
   noisy estimate. Allocation is deterministic, so one pass's words
   suffice. *)
let measure_perf ~name ~warmup ~iters ~batch f =
  for _ = 1 to warmup do
    f ()
  done;
  let ops = iters * batch in
  let fops = float_of_int ops in
  let best_wall = ref Float.infinity and words = ref 0.0 in
  for pass = 1 to 3 do
    let w0 = Gc.minor_words () in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to iters do
      f ()
    done;
    let wall = Unix.gettimeofday () -. t0 in
    if pass = 1 then words := Gc.minor_words () -. w0;
    if wall < !best_wall then best_wall := wall
  done;
  {
    p_name = name;
    (* Clamp the denominator: a pass fast enough to land inside the
       timer's resolution must not report an infinite (or
       divide-by-zero) rate, which would poison ratios and the JSON. *)
    ops_per_sec = fops /. Float.max !best_wall 1e-9;
    alloc_words_per_op = !words /. fops;
    p_ops = ops;
  }

(* One op = one dispatch (pick) plus one arrival (add) at a steady
   queue depth of 64, over a fixed pseudo-random address sequence. *)
let disk_queue_depth = 64

let disk_queue_addrs =
  let rng = Acfc_sim.Rng.create 42 in
  Array.init 4096 (fun _ -> Acfc_sim.Rng.int rng 100_000)

let bench_disk_queue ~name ~add ~pick =
  let n = Array.length disk_queue_addrs in
  for i = 0 to disk_queue_depth - 1 do
    add ~addr:disk_queue_addrs.(i) disk_queue_addrs.(i)
  done;
  let pos = ref disk_queue_depth in
  (* The head follows the served request, as in the real drive. Both
     implementations pick the same requests (see [check]), so they see
     identical head sequences. *)
  let head = ref 0 in
  measure_perf ~name ~warmup:20_000 ~iters:200_000 ~batch:1 (fun () ->
      (match pick ~head:!head with Some a -> head := a | None -> ());
      let addr = disk_queue_addrs.(!pos land (n - 1)) in
      add ~addr addr;
      incr pos)

let bench_disk_queues () =
  List.concat_map
    (fun (label, discipline) ->
      let indexed =
        let q = Sq.create discipline in
        bench_disk_queue
          ~name:(Printf.sprintf "disk-queue/%s" label)
          ~add:(fun ~addr v -> Sq.add q ~addr v)
          ~pick:(fun ~head -> Sq.pick q ~head)
      in
      let naive =
        let q = Sq.Naive.create discipline in
        bench_disk_queue
          ~name:(Printf.sprintf "disk-queue/%s-naive" label)
          ~add:(fun ~addr v -> Sq.Naive.add q ~addr v)
          ~pick:(fun ~head -> Sq.Naive.pick q ~head)
      in
      [ indexed; naive ])
    [ ("fcfs", Sq.Fcfs); ("scan", Sq.Scan) ]

(* One op = one trace reference against a full cache of 4096 resident
   blocks (every reference past the fill is a likely miss), comparing
   the indexed policies against the linear-scan references. *)
let policy_miss_trace =
  let rng = Acfc_sim.Rng.create 9 in
  let fill = Array.init 4096 (fun i -> Acfc_core.Block.make ~file:0 ~index:i) in
  let tail = Rt.random ~rng ~file:0 ~blocks:8192 ~length:6_000 in
  Array.append fill tail

let bench_policy_miss () =
  List.map
    (fun (name, policy) ->
      let batch = Array.length policy_miss_trace in
      measure_perf ~name ~warmup:1 ~iters:1 ~batch (fun () ->
          ignore (Policy_sim.run policy ~capacity:4096 policy_miss_trace)))
    [
      ("policy-miss/lru2", (module Policies.Lru_2 : Policy_sim.POLICY));
      ("policy-miss/lru2-naive", (module Reference.Lru_2));
      ("policy-miss/opt", (module Policies.Opt));
      ("policy-miss/opt-naive", (module Reference.Opt));
      ("policy-miss/rand", (module Policies.Rand));
    ]

(* One op = one simulator event (a timer fire through the engine's
   event heap and effect handler). This row includes engine creation and
   fiber spawn/teardown in the measured loop, so it is dominated by
   OCaml's per-fiber stack allocation; the /steady row below isolates
   the per-event cost. *)
let bench_engine_events () =
  let fibers = 32 and delays = 8 in
  measure_perf ~name:"engine-events" ~warmup:20 ~iters:400 ~batch:(fibers * delays)
    (fun () ->
      let e = Acfc_sim.Engine.create () in
      for _ = 1 to fibers do
        Acfc_sim.Engine.spawn e (fun () ->
            for _ = 1 to delays do
              Acfc_sim.Engine.delay e 1.0
            done)
      done;
      Acfc_sim.Engine.run e)

(* A faithful re-creation of the seed engine's hot path — a closure
   heap of boxed event records, and a [Suspend]-style delay that
   allocates a register closure, a one-shot resume closure and a
   blocked-table entry per sleep. Kept as the naive reference twin for
   the engine-events/steady ratio row, the same way [Sq.Naive] anchors
   the disk-queue rows. *)
module Naive_engine = struct
  type event = { time : float; seq : int; thunk : unit -> unit }

  type t = {
    mutable clock : float;
    mutable seq : int;
    events : event Acfc_sim.Heap.t;
    blocked : (int, string) Hashtbl.t;
    mutable next_id : int;
  }

  type _ Effect.t += Suspend : ((unit -> unit) -> unit) -> unit Effect.t

  let event_leq a b = a.time < b.time || (a.time = b.time && a.seq <= b.seq)

  let create () =
    {
      clock = 0.0;
      seq = 0;
      events = Acfc_sim.Heap.create ~leq:event_leq ();
      blocked = Hashtbl.create 16;
      next_id = 0;
    }

  let schedule t ~at thunk =
    t.seq <- t.seq + 1;
    Acfc_sim.Heap.push t.events { time = at; seq = t.seq; thunk }

  let spawn t f =
    let id = t.next_id in
    t.next_id <- id + 1;
    schedule t ~at:t.clock (fun () ->
        let open Effect.Deep in
        match_with f ()
          {
            retc = (fun () -> ());
            exnc = raise;
            effc =
              (fun (type a) (eff : a Effect.t) ->
                match eff with
                | Suspend register ->
                  Some
                    (fun (k : (a, unit) continuation) ->
                      Hashtbl.replace t.blocked id "fiber";
                      let resumed = ref false in
                      let resume () =
                        if !resumed then invalid_arg "naive: resumed twice";
                        resumed := true;
                        Hashtbl.remove t.blocked id;
                        continue k ()
                      in
                      register resume)
                | _ -> None);
          })

  let delay t dt =
    Effect.perform (Suspend (fun resume -> schedule t ~at:(t.clock +. dt) resume))

  let run_until t horizon =
    let continue_ = ref true in
    while !continue_ do
      match Acfc_sim.Heap.peek t.events with
      | Some ev when ev.time <= horizon ->
        ignore (Acfc_sim.Heap.pop_exn t.events);
        t.clock <- ev.time;
        ev.thunk ()
      | _ -> continue_ := false
    done;
    if t.clock < horizon then t.clock <- horizon
end

(* Steady-state timer stream: a long-lived engine whose sleepers never
   finish, driven through [run_until] with no setup inside the measured
   loop. One op = one timer event — the engine's per-event floor —
   against the seed-style record/closure twin above. *)
let bench_engine_steady () =
  let fibers = 32 in
  let columnar =
    let e = Acfc_sim.Engine.create () in
    let go = ref true in
    for _ = 1 to fibers do
      Acfc_sim.Engine.spawn e (fun () ->
          while !go do
            Acfc_sim.Engine.delay e 1.0
          done)
    done;
    let horizon = ref 0.0 in
    let row =
      measure_perf ~name:"engine-events/steady" ~warmup:100 ~iters:60_000
        ~batch:fibers (fun () ->
          horizon := !horizon +. 1.0;
          Acfc_sim.Engine.run_until e !horizon)
    in
    (* Let the sleepers observe the flag and finish, releasing their
       fiber stacks. *)
    go := false;
    Acfc_sim.Engine.run_until e (!horizon +. 1.0);
    row
  in
  let naive =
    let e = Naive_engine.create () in
    let go = ref true in
    for _ = 1 to fibers do
      Naive_engine.spawn e (fun () ->
          while !go do
            Naive_engine.delay e 1.0
          done)
    done;
    let horizon = ref 0.0 in
    let row =
      measure_perf ~name:"engine-events/steady-naive" ~warmup:100 ~iters:15_000
        ~batch:fibers (fun () ->
          horizon := !horizon +. 1.0;
          Naive_engine.run_until e !horizon)
    in
    go := false;
    Naive_engine.run_until e (!horizon +. 1.0);
    row
  in
  [ columnar; naive ]

(* Batched same-instant completion delivery: each tick schedules a
   burst of jobs due exactly now — the shape of a disk batch completing
   or an ivar broadcast — which the columnar engine routes through the
   ready ring (O(1) push/pop, no heap sift, no event record); the naive
   twin pays a record allocation and a full heap push/pop per job. One
   op = one delivered completion. *)
let bench_engine_batch () =
  let burst = 256 in
  let nop () = () in
  let columnar =
    let e = Acfc_sim.Engine.create () in
    measure_perf ~name:"engine-events/batch" ~warmup:200 ~iters:40_000
      ~batch:burst (fun () ->
        for _ = 1 to burst do
          Acfc_sim.Engine.schedule e ~at:0.0 nop
        done;
        Acfc_sim.Engine.run_until e 0.0)
  in
  let naive =
    let e = Naive_engine.create () in
    measure_perf ~name:"engine-events/batch-naive" ~warmup:200 ~iters:8_000
      ~batch:burst (fun () ->
        for _ = 1 to burst do
          Naive_engine.schedule e ~at:0.0 nop
        done;
        Naive_engine.run_until e 0.0)
  in
  [ columnar; naive ]

(* One op = one miss-plus-eviction through the full BUF/ACM cache. *)
let bench_cache_churn () =
  let cache = Cache.create (Config.make ~capacity_blocks:1024 ()) in
  for i = 0 to 1023 do
    ignore (Cache.read cache ~pid:pid0 (Block.make ~file:0 ~index:i))
  done;
  let next = ref 1024 in
  measure_perf ~name:"cache-churn" ~warmup:10_000 ~iters:300_000 ~batch:1 (fun () ->
      ignore (Cache.read cache ~pid:pid0 (Block.make ~file:0 ~index:!next));
      incr next)

(* The identical miss storm through the retained record-based cache
   ({!Cache_ref}): the columnar/record ratio is the speedup the flat
   layout buys, gated like the other naive-twin pairs. *)
let bench_cache_churn_ref () =
  let cache = Cache_ref.create (Config.make ~capacity_blocks:1024 ()) in
  for i = 0 to 1023 do
    ignore (Cache_ref.read cache ~pid:pid0 (Block.make ~file:0 ~index:i))
  done;
  let next = ref 1024 in
  measure_perf ~name:"cache-churn/ref" ~warmup:10_000 ~iters:100_000 ~batch:1
    (fun () ->
      ignore (Cache_ref.read cache ~pid:pid0 (Block.make ~file:0 ~index:!next));
      incr next)

(* Macro row: a wirgen-corpus demand stream through the full columnar
   cache — generated workloads with real hit/miss mixture and file
   locality, complementing cache-churn's all-miss storm. One op = one
   block reference; the corpus is a pure function of (default spec,
   seed 1), so the row is comparable across runs. *)
let bench_wir_corpus () =
  let corpus = stored_corpus Wirgen.default ~seed:1 ~count:4 in
  let trace =
    let next_file = ref 0 in
    Array.concat
      (List.map
         (fun program ->
           let offset = !next_file in
           next_file := offset + Wir.file_count program;
           Array.map
             (fun b ->
               Block.make ~file:(offset + Block.file b) ~index:(Block.index b))
             (Wir.references program))
         corpus)
  in
  let cache = Cache.create (Config.make ~capacity_blocks:1024 ()) in
  let n = Array.length trace in
  let pos = ref 0 in
  measure_perf ~name:"cache-wir-corpus" ~warmup:(min n 50_000) ~iters:400_000
    ~batch:1 (fun () ->
      ignore (Cache.read cache ~pid:pid0 trace.(!pos));
      incr pos;
      if !pos = n then pos := 0)

(* {2 Fleet perf family (fleet-events)}

   The whole domain-parallel fleet engine as one benchmark: N client
   machines (each an engine + columnar cache + analytic local disks)
   in front of a shared server cache, run to completion at --jobs 1, 2
   and 4. One op = one engine event aggregated over every client, so
   ops/sec is the fleet's events-per-second throughput. The reports
   must be byte-identical across the jobs values (the conservative-
   lookahead determinism contract); the jobs4/jobs1 ratio row is the
   multi-core scaling gate. See docs/PERF.md. *)

(* Every client runs this three-workload machine: a cyclic scan of the
   one server-backed shared file, a random-read mix over a local file
   larger than its cache share, and a local sequential scan. The 50 ms
   link latency keeps epochs long (lookahead 100 ms), so barriers stay
   rare relative to events and the scaling ratio measures the engine,
   not the barrier. *)
let fleet_scenario ~clients ~scan_passes ~rand_reads ~seq_passes =
  let shared_scan =
    Wir.make ~name:"fleet-shared-scan" ~category:"cyclic"
      [
        Wir.open_file ~name:"shared" ~size_blocks:192 ();
        Wir.loop scan_passes [ Wir.read ~file:0 ~first:0 ~count:192 () ];
      ]
  in
  let local_rand =
    Wir.make ~name:"fleet-local-rand" ~category:"hot/cold"
      [
        Wir.open_file ~name:"rand" ~size_blocks:640 ();
        Wir.loop rand_reads [ Wir.rand_read ~file:0 ~base:0 ~range:640 () ];
      ]
  in
  let local_seq =
    Wir.make ~name:"fleet-local-seq" ~category:"cyclic"
      [
        Wir.open_file ~name:"seq" ~size_blocks:512 ();
        Wir.loop seq_passes [ Wir.read ~file:0 ~first:0 ~count:512 () ];
      ]
  in
  Scenario.make ~seed:7 ~cache_blocks:1024
    ~fleet:
      (Scenario.fleet ~shared_files:1 ~clients ~server_cache_blocks:256
         ~latency_ms:50.0 ~bandwidth_mb_per_s:50.0 ())
    [
      Scenario.inline_workload ~smart:false shared_scan;
      Scenario.inline_workload ~smart:false local_rand;
      Scenario.inline_workload ~smart:false local_seq;
    ]

let fleet_jobs = [ 1; 2; 4 ]

let bench_fleet () =
  let scn = fleet_scenario ~clients:16 ~scan_passes:12 ~rand_reads:20_000 ~seq_passes:20 in
  let rows = ref [] and outputs = ref [] in
  List.iter
    (fun jobs ->
      let name = Printf.sprintf "fleet-events/jobs%d" jobs in
      let best = ref Float.infinity and words = ref 0.0 and events = ref 0 in
      for pass = 1 to 3 do
        let w0 = Gc.minor_words () in
        let t0 = Unix.gettimeofday () in
        let r = Fleet.run ~jobs scn in
        let wall = Unix.gettimeofday () -. t0 in
        if pass = 1 then begin
          (* Minor words are domain-local, so only the jobs1 row (whose
             Team runs everything on this domain) measures the whole
             fleet's allocation; that is the row the alloc gate covers. *)
          words := Gc.minor_words () -. w0;
          events := r.Fleet.events;
          outputs := (name, Fleet.to_string r) :: !outputs
        end;
        if wall < !best then best := wall
      done;
      rows :=
        {
          p_name = name;
          ops_per_sec = float_of_int !events /. Float.max !best 1e-9;
          alloc_words_per_op = !words /. float_of_int (max !events 1);
          p_ops = !events;
        }
        :: !rows)
    fleet_jobs;
  (* The determinism contract, enforced on every perf run: the rendered
     report must not depend on the worker count. *)
  (match List.rev !outputs with
  | [] -> ()
  | (ref_name, ref_out) :: rest ->
    List.iter
      (fun (name, out) ->
        if out <> ref_out then
          failwith
            (Printf.sprintf "fleet: report at %s differs from %s" name ref_name))
      rest);
  List.rev !rows

let run_perf () =
  Format.printf "@.%s@." (String.make 74 '=');
  Format.printf "Hot-path microbenchmarks: ops/sec and minor words per op@.";
  let rows =
    (bench_engine_events () :: (bench_engine_steady () @ bench_engine_batch ()))
    @ bench_disk_queues () @ bench_policy_miss ()
    @ [ bench_cache_churn (); bench_cache_churn_ref (); bench_wir_corpus () ]
    @ bench_fleet ()
  in
  List.iter
    (fun r ->
      Format.printf "  %-28s %12.0f ops/s   %8.1f w/op@." r.p_name r.ops_per_sec
        r.alloc_words_per_op)
    rows;
  (* Print the indexed/naive speedups next to the raw rates. *)
  let rate name =
    List.find_map (fun r -> if r.p_name = name then Some r.ops_per_sec else None) rows
  in
  List.iter
    (fun (fast, slow) ->
      match (rate fast, rate slow) with
      | Some f, Some s when s > 0.0 ->
        Format.printf "  %-28s %12.2fx vs %s@." fast (f /. s) slow
      | _ -> ())
    speedup_pairs;
  rows

(* {2 Equivalence replay (check)}

   Replays reference traces through the naive and indexed
   implementations and fails on the first divergence. The disk-queue
   replay drives randomized arrival/dispatch sequences; the policy
   replay uses both synthetic traces and a trace recorded from a real
   workload run (the cache's own reference stream). *)

let check_disk_queues () =
  let rng = Acfc_sim.Rng.create 2024 in
  List.iter
    (fun (label, discipline) ->
      for round = 1 to 50 do
        let indexed = Sq.create discipline in
        let naive = Sq.Naive.create discipline in
        let next = ref 0 in
        for step = 1 to 400 do
          if Acfc_sim.Rng.bool rng && !next > 0 then begin
            let head = Acfc_sim.Rng.int rng 128 in
            let a = Sq.pick indexed ~head and b = Sq.Naive.pick naive ~head in
            if a <> b then
              failwith
                (Printf.sprintf
                   "check: disk-queue %s diverged (round %d step %d head %d)" label
                   round step head)
          end
          else begin
            let addr = Acfc_sim.Rng.int rng 128 in
            Sq.add indexed ~addr !next;
            Sq.Naive.add naive ~addr !next;
            incr next
          end
        done
      done;
      Format.printf "  check disk-queue/%s: 50 sequences, no divergence@." label)
    [ ("fcfs", Sq.Fcfs); ("scan", Sq.Scan) ]

(* A block-reference trace recorded from a live workload run: the same
   stream the cache saw, replayed through old-vs-new policy code. The
   recording resolves through the store by the scenario's hash — the
   first run records and ingests, later runs (and other families in
   the same run) read the stored bytes back. *)
let recorded_scenario () =
  Acfc_scenario.Scenario.make ~seed:11 ~cache_blocks:256
    ~alloc_policy:Config.Lru_sp
    [ Acfc_scenario.Scenario.workload ~smart:false ~disk:0 "read400" ]

let recorded_stream () =
  let st = store () in
  let scenario = recorded_scenario () in
  let label = "refstream:" ^ Acfc_scenario.Scenario.hash scenario in
  match Store.resolve st ~label with
  | Some entry ->
    (match
       Store.read st ~kind:Kind.Refstream ~digest:entry.Acfc_store.Manifest.digest
     with
    | Ok content -> Acfc_replacement.Refstream.parse content
    | Error e -> failwith ("bench: " ^ e))
  | None ->
    let recorder = Acfc_replacement.Recorder.create () in
    let sink = Acfc_obs.Sink.create ~backend:Acfc_obs.Sink.Null () in
    ignore
      (Acfc_scenario.Scenario.run ~obs:sink
         ~tracer:(Acfc_replacement.Recorder.tracer recorder)
         scenario);
    (match Acfc_replacement.Recorder.ingest ~label recorder st with
    | Ok _ -> ()
    | Error e -> failwith ("bench: " ^ e));
    Acfc_replacement.Recorder.stream recorder

let recorded_trace () = Acfc_replacement.Refstream.demand (recorded_stream ())

let check_policies () =
  let rng = Acfc_sim.Rng.create 7 in
  let traces =
    [
      ("recorded/readn-400", recorded_trace ());
      ("synthetic/random", Rt.random ~rng ~file:0 ~blocks:512 ~length:4_000);
      ("synthetic/zipf", Rt.zipf ~rng ~file:0 ~blocks:512 ~skew:1.0 ~length:4_000);
      ("synthetic/cyclic", Rt.cyclic ~file:0 ~blocks:300 ~passes:10);
    ]
  in
  (* Every adapter-ported stock policy against its retained record twin:
     the core extraction must not move a single victim. *)
  let pairs =
    [
      ("lru", (module Policies.Lru : Policy_sim.POLICY),
        (module Reference.Lru : Policy_sim.POLICY));
      ("mru", (module Policies.Mru), (module Reference.Mru));
      ("fifo", (module Policies.Fifo), (module Reference.Fifo));
      ("clock", (module Policies.Clock), (module Reference.Clock));
      ("lru2", (module Policies.Lru_2), (module Reference.Lru_2));
      ("2q", (module Policies.Two_q), (module Reference.Two_q));
      ("rand", (module Policies.Rand), (module Reference.Rand));
      ("opt", (module Policies.Opt), (module Reference.Opt));
    ]
  in
  List.iter
    (fun (tname, trace) ->
      List.iter
        (fun (pname, indexed, reference) ->
          List.iter
            (fun capacity ->
              match Reference.lockstep indexed reference ~capacity trace with
              | None -> ()
              | Some (pos, va, vb) ->
                failwith
                  (Format.asprintf
                     "check: policy %s diverged on %s cap=%d at pos %d (%a vs %a)"
                     pname tname capacity pos Block.pp va Block.pp vb))
            [ 64; 200 ])
        pairs;
      Format.printf "  check policies on %s (%d refs): all 8 stock identical@." tname
        (Array.length trace))
    traces

(* {2 Columnar-vs-record lockstep replay}

   The tentpole equivalence proof: the columnar cache (Ctab/Ilist/Itbl
   under Buf/Acm) and the retained record twin (Cache_ref) replay the
   identical op sequence while {!Acfc_core.Lockstep} diffs results,
   event streams, stats, LRU and level orders, and invariants. Three
   sources: a trace recorded from a live workload run (real pids and
   prefetch flags), a wirgen-generated corpus, and a seeded storm that
   also exercises the whole control path (managers, priorities,
   policies, temppri, choosers, sync, invalidation) under every
   allocation policy. *)

module Lockstep = Acfc_core.Lockstep

let lockstep_report what = function
  | Ok n ->
    Format.printf "  check lockstep/%-22s %6d ops, columnar == record twin@."
      what n
  | Error d ->
    failwith
      (Format.asprintf "@[<v>check: lockstep/%s diverged:@,%a@]" what
         Lockstep.pp_divergence d)

let lockstep_recorded () =
  let ops =
    Array.map
      (fun e ->
        Lockstep.Read
          {
            pid = e.Acfc_replacement.Refstream.pid;
            block = e.block;
            prefetch = e.prefetch;
          })
      (recorded_stream ())
  in
  lockstep_report "recorded/readn-400"
    (Lockstep.run (Config.make ~capacity_blocks:256 ()) ops)

let lockstep_wirgen () =
  let corpus = stored_corpus Wirgen.default ~seed:3 ~count:16 in
  let next_file = ref 0 in
  let trace =
    Array.concat
      (List.map
         (fun program ->
           let offset = !next_file in
           next_file := offset + Wir.file_count program;
           Array.map
             (fun b ->
               Block.make ~file:(offset + Block.file b) ~index:(Block.index b))
             (Wir.references program))
         corpus)
  in
  (* Capacity far below the corpus working set, so the replay churns
     through real evictions, not just cold misses. *)
  lockstep_report "wirgen-corpus"
    (Lockstep.run
       (Config.make ~capacity_blocks:64 ())
       (Lockstep.of_references trace))

(* A deterministic chooser both caches share: the smallest resident
   block, so upcall decisions (including bad ones the revocation logic
   may punish) are reproducible. *)
let lockstep_chooser ~candidate ~resident =
  match resident with
  | [] -> None
  | l ->
    Some
      (List.fold_left
         (fun acc b -> if Block.compare b acc < 0 then b else acc)
         candidate l)

let lockstep_storm ~seed ~alloc_policy ~ops:n =
  let rng = Acfc_sim.Rng.create seed in
  let ri = Acfc_sim.Rng.int rng in
  let ops =
    Array.init n (fun _ ->
        let r = ri 100 in
        let pid = Acfc_core.Pid.make (1 + ri 4) in
        let file = ri 6 in
        let block = Block.make ~file ~index:(ri 128) in
        if r < 55 then Lockstep.Read { pid; block; prefetch = ri 8 = 0 }
        else if r < 72 then Lockstep.Write { pid; block; fetch = ri 2 = 0 }
        else if r < 78 then Lockstep.Register_manager pid
        else if r < 83 then Lockstep.Set_priority { pid; file; prio = ri 4 }
        else if r < 86 then
          Lockstep.Set_policy
            { pid; prio = ri 4; policy = (if ri 2 = 0 then Policy.Lru else Policy.Mru) }
        else if r < 89 then begin
          let first = ri 120 in
          (* [last] occasionally below [first]: the Invalid_range error
             path must agree too. *)
          Lockstep.Set_temppri { pid; file; first; last = first + ri 40 - 4; prio = ri 4 }
        end
        else if r < 91 then
          Lockstep.Set_chooser
            { pid; chooser = (if ri 3 = 0 then None else Some lockstep_chooser) }
        else if r < 95 then Lockstep.Sync (if ri 2 = 0 then None else Some file)
        else if r < 98 then Lockstep.Invalidate_file file
        else Lockstep.Unregister_manager pid)
  in
  let config = Config.make ~capacity_blocks:128 ~alloc_policy () in
  lockstep_report
    (Printf.sprintf "storm/%s" (Config.alloc_policy_to_string alloc_policy))
    (Lockstep.run config ops)

let check_lockstep () =
  lockstep_recorded ();
  lockstep_wirgen ();
  List.iteri
    (fun i alloc_policy -> lockstep_storm ~seed:(41 + i) ~alloc_policy ~ops:20_000)
    [ Config.Global_lru; Config.Alloc_lru; Config.Lru_s; Config.Lru_sp;
      Config.Clock_sp ]

(* {2 Fleet determinism replay}

   The fleet engine's Lockstep-style proof: one fleet run to
   completion at jobs 1, 2, 3 and 4, all four rendered reports
   byte-identical — then the same fleet with the lookahead halved
   (twice the barriers, different epoch partition of simulated time),
   which must reproduce every client and server statistic exactly,
   because the barrier merge order is a pure function of (send time,
   client id, seq), independent of the epoch boundary set. *)

let check_fleet () =
  let scn = fleet_scenario ~clients:4 ~scan_passes:3 ~rand_reads:1_500 ~seq_passes:3 in
  let base = Fleet.run ~jobs:1 scn in
  let base_out = Fleet.to_string base in
  List.iter
    (fun jobs ->
      let out = Fleet.to_string (Fleet.run ~jobs scn) in
      if out <> base_out then
        failwith
          (Printf.sprintf "check: fleet report at jobs=%d differs from jobs=1" jobs))
    [ 2; 3; 4 ];
  let fl = match scn.Scenario.fleet with Some f -> f | None -> assert false in
  let halved =
    { fl with Scenario.lookahead_ms = Some (Scenario.fleet_lookahead_ms fl /. 2.0) }
  in
  let rh = Fleet.run ~jobs:2 { scn with Scenario.fleet = Some halved } in
  (* Only the epoch count and the lookahead itself may differ. *)
  let normalized =
    Fleet.to_string
      { rh with Fleet.epochs = base.Fleet.epochs; lookahead_s = base.Fleet.lookahead_s }
  in
  if normalized <> base_out then
    failwith "check: fleet with halved lookahead diverged from the full-epoch run";
  Format.printf
    "  check fleet: 4 clients byte-identical at jobs 1/2/3/4 and at half lookahead@."

let run_check () =
  Format.printf "@.%s@." (String.make 74 '=');
  Format.printf "Equivalence replay: naive reference vs indexed hot paths@.";
  check_disk_queues ();
  check_policies ();
  check_lockstep ();
  check_fleet ();
  Format.printf "  check: all implementations agree@."

(* {2 Baseline regression gate (--baseline)}

   Three kinds of committed gate rows, one per line ('#' comments):

     ratio <name> <speedup>    indexed/naive speedup at commit time; the
                               gate fails below 70% of it. Machine-
                               independent — the primary gate.
     abs <name> <ops_per_sec>  absolute throughput floor; set far below
                               dev-machine measurements so only a
                               catastrophic slowdown (an accidental
                               O(n) walk, a debug build) trips it.
     alloc <name> <words>      minor-heap budget per op; allocation is
                               deterministic and machine-independent,
                               so this is exact — fails above budget.

   A bare "<name> <speedup>" line is a legacy ratio row. The gate also
   reports every measured row that no committed row covers, so new
   benchmarks cannot silently fly ungated. *)

type gate = Ratio of float | Abs of float | Alloc of float

let read_baseline path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) @@ fun () ->
  let rows = ref [] in
  (try
     while true do
       let line = String.trim (input_line ic) in
       if line <> "" && line.[0] <> '#' then
         match String.split_on_char ' ' line |> List.filter (( <> ) "") with
         | [ "ratio"; name; v ] -> rows := (name, Ratio (float_of_string v)) :: !rows
         | [ "abs"; name; v ] -> rows := (name, Abs (float_of_string v)) :: !rows
         | [ "alloc"; name; v ] -> rows := (name, Alloc (float_of_string v)) :: !rows
         | [ name; speedup ] -> rows := (name, Ratio (float_of_string speedup)) :: !rows
         | _ -> failwith (Printf.sprintf "baseline: bad line %S" line)
     done
   with End_of_file -> ());
  List.rev !rows

(* Ratio rows whose pair compares worker counts, not implementations:
   their measured value depends on the core count, so the gate only
   applies on machines with at least 4 cores (the CI runners). The
   indexed/naive ratios stay machine-independent and always gate. *)
let scaling_rows = [ "fleet-events/jobs4" ]

let check_baseline ~path perf_rows =
  let find name = List.find_opt (fun r -> r.p_name = name) perf_rows in
  let baseline = read_baseline path in
  let failures = ref 0 in
  let skip name = Format.printf "  baseline %-26s missing measurement, skipped@." name in
  List.iter
    (fun (name, gate) ->
      match gate with
      | Ratio _ when List.mem name scaling_rows && Pool.auto_jobs () < 4 ->
        Format.printf
          "  baseline %-26s scaling ratio needs >= 4 cores (have %d), skipped@."
          name (Pool.auto_jobs ())
      | Ratio expected -> (
        match List.assoc_opt name speedup_pairs with
        | None ->
          incr failures;
          Format.printf "  baseline %-26s ratio row has no naive-twin pair@." name
        | Some slow -> (
          match (find name, find slow) with
          | Some f, Some s when s.ops_per_sec > 0.0 ->
            let measured = f.ops_per_sec /. s.ops_per_sec in
            let floor = 0.7 *. expected in
            let ok = measured >= floor in
            if not ok then incr failures;
            Format.printf
              "  baseline %-26s %10.2fx      ratio floor %8.2fx  %s@." name
              measured floor
              (if ok then "ok" else "REGRESSION")
          | _ -> skip name))
      | Abs floor -> (
        match find name with
        | Some r ->
          let ok = r.ops_per_sec >= floor in
          if not ok then incr failures;
          Format.printf "  baseline %-26s %10.0f op/s   abs floor %9.0f  %s@." name
            r.ops_per_sec floor
            (if ok then "ok" else "REGRESSION")
        | None -> skip name)
      | Alloc budget -> (
        match find name with
        | Some r ->
          let ok = r.alloc_words_per_op <= budget +. 1e-6 in
          if not ok then incr failures;
          Format.printf "  baseline %-26s %10.2f w/op   alloc budget %6.2f  %s@." name
            r.alloc_words_per_op budget
            (if ok then "ok" else "OVER BUDGET")
        | None -> skip name))
    baseline;
  (* A naive twin is covered through its pair's ratio row; anything else
     not named in the file is flying without a gate. *)
  let gated name =
    List.exists (fun (n, _) -> n = name) baseline
    || List.exists
         (fun (fast, slow) ->
           slow = name && List.exists (fun (n, _) -> n = fast) baseline)
         speedup_pairs
  in
  (match List.filter (fun r -> not (gated r.p_name)) perf_rows with
  | [] -> ()
  | ungated ->
    let names = String.concat ", " (List.map (fun r -> r.p_name) ungated) in
    Format.printf "  ungated rows (measured, no baseline entry): %s@." names;
    (* Surface the same one-liner as a GitHub Actions annotation, so a
       new benchmark flying without a gate shows up on the PR itself. *)
    if Sys.getenv_opt "GITHUB_ACTIONS" = Some "true" then
      Format.printf
        "::warning title=ungated perf rows::measured but not gated by %s: %s@."
        path names);
  if !failures > 0 then begin
    Format.printf "[baseline check FAILED: %d gate(s) violated]@." !failures;
    exit 1
  end
  else Format.printf "[baseline check passed: %s]@." path

(* {2 Generated-corpus artifact family (wirgen)}

   Benchmarks the simulator on synthetic workloads drawn from the
   committed default wirgen spec, instead of the eight fixed paper
   applications: replay the corpus's combined demand stream through
   every replacement policy, then run the whole corpus as one
   multi-workload machine through the full simulation. The corpus is a
   pure function of (spec, --corpus-seed), shared by quick and full
   mode, and both fingerprints land in the acfc-bench/1 artifact row
   (spec_hash + corpus_seed, next to scenario_hash) so runs are
   comparable across machines and time. *)

(* The scenario hash of the last wirgen run, for the JSON report. *)
let wirgen_fingerprint = ref None

let run_wirgen ~quick ~corpus_seed ~jobs =
  Format.printf "@.%s@." (String.make 74 '=');
  let spec = Wirgen.default in
  let count = if quick then 4 else 12 in
  Format.printf "Generated corpus: spec %s (%s), seed %d, %d programs@."
    spec.Wirgen.name (Wirgen.hash spec) corpus_seed count;
  let corpus = stored_corpus spec ~seed:corpus_seed ~count in
  let scenario = Wirgen.scenario spec ~seed:corpus_seed ~count in
  wirgen_fingerprint := Some (Acfc_scenario.Scenario.hash scenario, corpus_seed);
  (* Spec and generated scenario land in the store too, so a stored
     corpus is always traceable back to the exact family that drew it. *)
  (match Wirgen.ingest_spec (store ()) spec with
  | Ok _ -> ()
  | Error e -> failwith ("bench: " ^ e));
  (let shash = Acfc_scenario.Scenario.hash scenario in
   match
     Store.add (store ()) ~kind:Kind.Scenario ~label:("scenario:" ^ shash)
       ~expect:shash
       (Acfc_scenario.Scenario.to_string scenario)
   with
  | Ok _ -> ()
  | Error e -> failwith ("bench: " ^ e));
  (* Each program's demand stream, fast-forwarded with the same RNG its
     workload fiber gets, then disjoint file ids so the concatenation
     is one coherent multi-program trace. Each member owns its private
     RNG, so extraction parallelises over the pool — this is what makes
     wirgen honor --jobs / ACFC_JOBS. *)
  let streams =
    Pool.map ?jobs
      (fun (program, rng) -> Wir.references ~rng program)
      (List.combine corpus (Acfc_scenario.Scenario.workload_rngs scenario))
  in
  let trace =
    let next_file = ref 0 in
    Array.concat
      (List.map2
         (fun stream program ->
           let offset = !next_file in
           next_file := offset + Wir.file_count program;
           Array.map
             (fun b -> Block.make ~file:(offset + Block.file b) ~index:(Block.index b))
             stream)
         streams corpus)
  in
  List.iter2
    (fun program stream ->
      Format.printf "  %-28s %s  %5d refs@." program.Wir.name (Wir.hash program)
        (Array.length stream))
    corpus streams;
  Format.printf "  combined trace: %a@." Rt.pp_summary trace;
  (* A cache a third of the working set, so policies actually differ. *)
  let capacity = Stdlib.max 64 (Rt.working_set_size trace / 3) in
  Pool.map ?jobs
    (fun policy -> Policy_sim.run policy ~capacity trace)
    Policies.all
  |> List.iter (fun result -> Format.printf "  %a@." Policy_sim.pp_result result);
  let result = Acfc_scenario.Scenario.run scenario in
  Format.printf
    "  full sim: makespan %.1fs, %d block I/Os, %d hits / %d misses@."
    result.Acfc_workload.Runner.makespan result.Acfc_workload.Runner.total_ios
    result.Acfc_workload.Runner.cache_hits result.Acfc_workload.Runner.cache_misses

(* {2 Policy tournament (tournament)}

   Every registered policy against every wirgen corpus family, scored
   as miss-count regret vs OPT on the identical demand stream. A family
   is a wirgen spec: the committed default ("mixed") plus one
   single-pattern variant per taxonomy entry. Traces are pure functions
   of (spec, --corpus-seed), so regret is deterministic and the
   committed ceilings in bench/tournament_baseline.txt are exact.
   Rows land in the JSON report's "tournament" section (acfc-bench/1);
   --tournament-baseline gates them in CI. See docs/PERF.md. *)

type tournament_row = {
  t_family : string;
  t_policy : string;
  t_seed : int;
  t_spec_hash : string;
  t_refs : int;
  t_misses : int;
  t_opt_misses : int;
  t_regret : int;
  t_hit_rate : float;
}

let tournament_rows : tournament_row list ref = ref []

let tournament_families =
  ("mixed", Wirgen.default)
  :: List.map
       (fun p ->
         let name = "t-" ^ Wirgen.pattern_to_string p in
         (name, { Wirgen.default with Wirgen.name; mix = [ (p, 1.0) ] }))
       Wirgen.patterns

(* The family's combined demand stream, built exactly the way the
   wirgen artifact builds its trace: each program's references
   fast-forwarded with the RNG its workload fiber would get, then
   disjoint file ids. *)
let tournament_trace spec ~seed ~count =
  let corpus = stored_corpus spec ~seed ~count in
  let scenario = Wirgen.scenario spec ~seed ~count in
  let streams =
    List.map
      (fun (program, rng) -> Wir.references ~rng program)
      (List.combine corpus (Acfc_scenario.Scenario.workload_rngs scenario))
  in
  let next_file = ref 0 in
  Array.concat
    (List.map2
       (fun stream program ->
         let offset = !next_file in
         next_file := offset + Wir.file_count program;
         Array.map
           (fun b -> Block.make ~file:(offset + Block.file b) ~index:(Block.index b))
           stream)
       streams corpus)

let run_tournament ~corpus_seed ~jobs =
  Format.printf "@.%s@." (String.make 74 '=');
  Format.printf
    "Policy tournament: every policy x every corpus family, regret vs OPT@.";
  let count = 2 in
  let rows =
    List.concat_map
      (fun (family, spec) ->
        let trace = tournament_trace spec ~seed:corpus_seed ~count in
        (* A cache a third of the working set, so policies actually
           differ (the wirgen artifact's sizing rule). *)
        let capacity = Stdlib.max 64 (Rt.working_set_size trace / 3) in
        let results =
          Pool.map ?jobs
            (fun policy -> Policy_sim.run policy ~capacity trace)
            Policies.all
        in
        let opt_misses =
          match
            List.find_opt (fun r -> r.Policy_sim.policy = "OPT") results
          with
          | Some r -> r.Policy_sim.misses
          | None -> failwith "tournament: OPT missing from the registry"
        in
        Format.printf "  %-16s %6d refs  capacity %4d  OPT misses %d@." family
          (Array.length trace) capacity opt_misses;
        List.map
          (fun r ->
            let row =
              {
                t_family = family;
                t_policy = r.Policy_sim.policy;
                t_seed = corpus_seed;
                t_spec_hash = Wirgen.hash spec;
                t_refs = r.Policy_sim.references;
                t_misses = r.Policy_sim.misses;
                t_opt_misses = opt_misses;
                t_regret = r.Policy_sim.misses - opt_misses;
                t_hit_rate =
                  float_of_int r.Policy_sim.hits
                  /. float_of_int (Stdlib.max r.Policy_sim.references 1);
              }
            in
            Format.printf "    %-12s regret %5d   hit rate %5.1f%%@."
              row.t_policy row.t_regret (100.0 *. row.t_hit_rate);
            row)
          results)
      tournament_families
  in
  tournament_rows := !tournament_rows @ rows

(* Gate file: one "<family> <policy> <max_regret>" line per row ('#'
   comments). Regret is deterministic at the committed seed, so the
   ceilings are exact measured values; any increase is a behaviour
   change and fails. A ceiling with no measured row (renamed policy or
   family) fails too, so the file cannot go stale silently. *)
let read_tournament_baseline path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) @@ fun () ->
  let rows = ref [] in
  (try
     while true do
       let line = String.trim (input_line ic) in
       if line <> "" && line.[0] <> '#' then
         match String.split_on_char ' ' line |> List.filter (( <> ) "") with
         | [ family; policy; ceiling ] ->
           rows := ((family, policy), int_of_string ceiling) :: !rows
         | _ -> failwith (Printf.sprintf "tournament baseline: bad line %S" line)
     done
   with End_of_file -> ());
  List.rev !rows

let check_tournament_baseline ~path rows =
  let baseline = read_tournament_baseline path in
  let failures = ref 0 in
  List.iter
    (fun row ->
      match List.assoc_opt (row.t_family, row.t_policy) baseline with
      | None ->
        Format.printf "  tournament %-16s %-12s regret %5d   (no ceiling)@."
          row.t_family row.t_policy row.t_regret
      | Some ceiling ->
        let ok = row.t_regret <= ceiling in
        if not ok then incr failures;
        Format.printf "  tournament %-16s %-12s regret %5d   ceiling %5d  %s@."
          row.t_family row.t_policy row.t_regret ceiling
          (if ok then "ok" else "REGRESSION"))
    rows;
  List.iter
    (fun ((family, policy), _) ->
      if
        not
          (List.exists
             (fun r -> r.t_family = family && r.t_policy = policy)
             rows)
      then begin
        incr failures;
        Format.printf "  tournament %-16s %-12s ceiling has no measured row@."
          family policy
      end)
    baseline;
  if !failures > 0 then begin
    Format.printf "[tournament gate FAILED: %d violation(s)]@." !failures;
    exit 1
  end
  else Format.printf "[tournament gate passed: %s]@." path

(* {2 Machine-readable report (--json)} *)

(* The fingerprint of the exact scenario grid behind an artifact row
   (fig5-par rows fingerprint the fig5 grid they time); null for rows
   with no scenario grid (micro, perf, check). *)
let scenario_hash opts name =
  let base =
    match String.index_opt name '/' with
    | Some i -> String.sub name 0 i
    | None -> name
  in
  let scenarios =
    match base with
    | "all" ->
      List.concat_map
        (Report.artifact_scenarios opts)
        (Report.artifacts @ [ "ablations"; "criteria" ])
    | _ -> Report.artifact_scenarios opts base
  in
  match scenarios with
  | [] -> None
  | grid -> Some (Acfc_scenario.Scenario.hash_list grid)

(* The acfc-bench/1 schema: a stable shape CI can diff across runs.
   NaN (no OLS estimate) becomes null, since JSON has no NaN. *)
let write_json ~path ~quick ~runs ~jobs ~opts ~artifacts ~micro ~perf ~total_wall_s =
  let module J = Acfc_obs.Json in
  let num v = if Float.is_finite v then J.Num v else J.Null in
  let doc =
    J.Obj
      [
        ("schema", J.Str "acfc-bench/1");
        ("quick", J.Bool quick);
        ("runs", J.Num (float_of_int runs));
        ("jobs", J.Num (float_of_int jobs));
        ( "artifacts",
          J.List
            (List.map
               (fun (name, wall_s) ->
                 (* wirgen rows carry the corpus fingerprint: the
                    generated scenario's hash plus the (spec, seed)
                    pair it is a pure function of. *)
                 let hash, spec_hash, corpus_seed =
                   match (name, !wirgen_fingerprint) with
                   | "wirgen", Some (scenario_hash, seed) ->
                     ( J.Str scenario_hash,
                       J.Str (Wirgen.hash Wirgen.default),
                       J.Num (float_of_int seed) )
                   | _ ->
                     ( (match scenario_hash opts name with
                       | Some h -> J.Str h
                       | None -> J.Null),
                       J.Null,
                       J.Null )
                 in
                 J.Obj
                   [
                     ("name", J.Str name);
                     ("wall_s", num wall_s);
                     ("scenario_hash", hash);
                     ("spec_hash", spec_hash);
                     ("corpus_seed", corpus_seed);
                   ])
               artifacts) );
        ( "micro",
          J.List
            (List.map
               (fun (name, ns_per_run, r2) ->
                 J.Obj
                   [
                     ("name", J.Str name);
                     ("ns_per_run", num ns_per_run);
                     ("r2", num r2);
                   ])
               micro) );
        ( "perf",
          J.List
            (List.map
               (fun r ->
                 J.Obj
                   [
                     ("name", J.Str r.p_name);
                     ("ops_per_sec", num r.ops_per_sec);
                     ("alloc_words_per_op", num r.alloc_words_per_op);
                     ("ops", J.Num (float_of_int r.p_ops));
                   ])
               perf) );
        ( "tournament",
          J.List
            (List.map
               (fun r ->
                 J.Obj
                   [
                     ("family", J.Str r.t_family);
                     ("policy", J.Str r.t_policy);
                     ("corpus_seed", J.Num (float_of_int r.t_seed));
                     ("spec_hash", J.Str r.t_spec_hash);
                     ("refs", J.Num (float_of_int r.t_refs));
                     ("misses", J.Num (float_of_int r.t_misses));
                     ("opt_misses", J.Num (float_of_int r.t_opt_misses));
                     ("regret", J.Num (float_of_int r.t_regret));
                     ("hit_rate", num r.t_hit_rate);
                   ])
               !tournament_rows) );
        ("total_wall_s", num total_wall_s);
      ]
  in
  let contents = J.to_string doc ^ "\n" in
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents);
  (* Every emitted report is also ingested (exact file bytes, so
     [store add FILE] on the artifact reproduces the digest); the
     stored history is what [bench timeline] scans. No label: a
     report's identity is its content, and each run's bytes differ. *)
  (match Store.add (store ()) ~kind:Kind.Bench_report contents with
  | Ok outcome ->
    let digest =
      match outcome with
      | Store.Created e | Store.Exists e -> e.Acfc_store.Manifest.digest
    in
    Format.printf "[bench results -> %s (stored as %s)]@." path digest
  | Error e -> failwith ("bench: " ^ e))

(* {2 Regression timeline (timeline)}

   Scans the store's bench-report history and prints each perf row's
   ops/sec and words/op across stored runs, flagging >30% consecutive
   ops/sec drops; [--gate] turns flagged rows into a nonzero exit.
   History only accumulates in a persistent store (--store/ACFC_STORE);
   an ephemeral run sees just the reports it ingested itself. *)

let timeline_failures = ref 0

let run_timeline () =
  Format.printf "@.%s@." (String.make 74 '=');
  Format.printf "Bench regression timeline over stored acfc-bench/1 reports@.";
  match Acfc_store.Timeline.scan (store ()) with
  | Error e -> failwith ("bench: " ^ e)
  | Ok rows ->
    Acfc_store.Timeline.render Format.std_formatter rows;
    let flagged = Acfc_store.Timeline.regressions rows in
    timeline_failures := List.length flagged;
    if flagged <> [] then
      Format.printf "[timeline: %d row(s) regressed >%.0f%%]@."
        (List.length flagged)
        (Acfc_store.Timeline.default_threshold *. 100.0)

(* {2 Sequential vs parallel (fig5-par)} *)

(* Times the fig5 grid at jobs=1 and jobs=n, checks the rendered tables
   are byte-identical (the acfc.par determinism contract), and returns
   both wall times as artifact rows for the machine-readable report. *)
let run_fig5_par opts ~jobs =
  let time f =
    let t = Unix.gettimeofday () in
    let v = f () in
    (v, Unix.gettimeofday () -. t)
  in
  let render jobs () =
    Format.asprintf "%a" Multi.print
      (Multi.run ~jobs ~runs:opts.Report.runs ~sizes:opts.Report.sizes ())
  in
  Format.printf "@.%s@.@." (String.make 74 '=');
  Format.printf "fig5 grid: sequential vs %d domains@." jobs;
  let seq_out, seq_wall = time (render 1) in
  let par_out, par_wall = time (render jobs) in
  if seq_out <> par_out then
    failwith "fig5-par: parallel output differs from sequential";
  Format.printf
    "  jobs=1: %.1fs   jobs=%d: %.1fs   speedup %.2fx   (outputs identical)@."
    seq_wall jobs par_wall (seq_wall /. par_wall);
  [ ("fig5/jobs=1", seq_wall); (Printf.sprintf "fig5/jobs=%d" jobs, par_wall) ]

(* {2 Driver} *)

let () =
  let quick = ref false in
  let runs = ref 3 in
  let jobs = ref None in
  let json_out = ref None in
  let baseline = ref None in
  let tournament_baseline = ref None in
  let corpus_seed = ref 0 in
  let gate = ref false in
  let selected = ref [] in
  let spec =
    [
      ("--quick", Arg.Set quick, "1 run, 2 cache sizes per artifact");
      ( "--store",
        Arg.String (fun d -> store_dir := Some d),
        "DIR persistent content-addressed artifact store (default ACFC_STORE, \
         else an ephemeral per-run store)" );
      ( "--gate",
        Arg.Set gate,
        "with timeline: exit non-zero on any row with a >30% ops/sec drop" );
      ("--runs", Arg.Set_int runs, "N cold-start runs per data point (default 3)");
      ( "--corpus-seed",
        Arg.Set_int corpus_seed,
        "N base seed for the wirgen generated-corpus family (default 0; shared \
         by --quick and full mode, recorded in the JSON report)" );
      ( "--jobs",
        Arg.Int (fun n -> jobs := Some n),
        "N run grid cells on N domains (default ACFC_JOBS, else sequential)" );
      ( "--json",
        Arg.String (fun f -> json_out := Some f),
        "FILE write machine-readable results (acfc-bench/1 schema)" );
      ( "--baseline",
        Arg.String (fun f -> baseline := Some f),
        "FILE with perf: fail on a >30% speedup regression vs this baseline" );
      ( "--tournament-baseline",
        Arg.String (fun f -> tournament_baseline := Some f),
        "FILE with tournament: fail on any policy whose regret vs OPT exceeds \
         the committed per-family ceiling" );
    ]
  in
  let usage =
    "main.exe [--quick] [--runs N] [--jobs N] [--json FILE] [--baseline FILE] \
     [--tournament-baseline FILE] [--corpus-seed N] [--store DIR] [--gate] \
     [all|micro|perf|check|wirgen|tournament|timeline|ablations|criteria|fig5-par|fig4|fig5|fig6|table1..table6]*"
  in
  Arg.parse spec (fun a -> selected := a :: !selected) usage;
  let selected = if !selected = [] then [ "all"; "micro" ] else List.rev !selected in
  let opts =
    if !quick then Report.quick else { Report.default with runs = !runs }
  in
  let opts = { opts with Report.jobs = !jobs } in
  let eff_jobs = match !jobs with Some n -> n | None -> Pool.default_jobs () in
  let t0 = Unix.gettimeofday () in
  let micro_rows = ref [] in
  let perf_rows = ref [] in
  let artifact_walls = ref [] in
  List.iter
    (fun artifact ->
      let t = Unix.gettimeofday () in
      (match artifact with
      | "micro" -> micro_rows := !micro_rows @ run_micro ()
      | "perf" -> perf_rows := !perf_rows @ run_perf ()
      | "check" -> run_check ()
      | "wirgen" ->
        run_wirgen ~quick:!quick ~corpus_seed:!corpus_seed ~jobs:opts.Report.jobs
      | "tournament" ->
        run_tournament ~corpus_seed:!corpus_seed ~jobs:opts.Report.jobs
      | "timeline" -> run_timeline ()
      | "ablations" ->
        Format.printf "@.%s@.@." (String.make 74 '=');
        Ablations.print_all ?jobs:opts.Report.jobs ~runs:opts.Report.runs
          Format.std_formatter ()
      | "criteria" ->
        Format.printf "@.%s@.@." (String.make 74 '=');
        Criteria.print Format.std_formatter
          (Criteria.run_all ?jobs:opts.Report.jobs ~runs:opts.Report.runs ())
      | "fig5-par" ->
        (* On the CI runners auto picks the vCPU count; locally the flag
           wins, and a 1-CPU box still exercises the domain machinery. *)
        let par_jobs = if eff_jobs > 1 then eff_jobs else max 2 (Pool.auto_jobs ()) in
        List.iter
          (fun row -> artifact_walls := row :: !artifact_walls)
          (run_fig5_par opts ~jobs:par_jobs)
      | "all" ->
        Report.run_all opts Format.std_formatter;
        Format.printf "@.%s@.@." (String.make 74 '=');
        Ablations.print_all ?jobs:opts.Report.jobs ~runs:opts.Report.runs
          Format.std_formatter ();
        Format.printf "@.%s@.@." (String.make 74 '=');
        Criteria.print Format.std_formatter
          (Criteria.run_all ?jobs:opts.Report.jobs ~runs:opts.Report.runs ())
      | name -> Report.run_artifact opts Format.std_formatter name);
      if artifact <> "fig5-par" then
        artifact_walls := (artifact, Unix.gettimeofday () -. t) :: !artifact_walls)
    selected;
  let total_wall_s = Unix.gettimeofday () -. t0 in
  Format.printf "@.[bench completed in %.1fs]@." total_wall_s;
  (match !json_out with
  | None -> ()
  | Some path ->
    write_json ~path ~quick:!quick ~runs:opts.Report.runs ~jobs:eff_jobs ~opts
      ~artifacts:(List.rev !artifact_walls) ~micro:!micro_rows ~perf:!perf_rows
      ~total_wall_s);
  (* The gates run last so the JSON artifact is written even on failure. *)
  (match !tournament_baseline with
  | None -> ()
  | Some path ->
    if !tournament_rows = [] then begin
      Format.printf
        "[--tournament-baseline requires the tournament family to have run]@.";
      exit 2
    end;
    check_tournament_baseline ~path !tournament_rows);
  (match !baseline with
  | None -> ()
  | Some path ->
    if !perf_rows = [] then begin
      Format.printf "[--baseline requires the perf family to have run]@.";
      exit 2
    end;
    check_baseline ~path !perf_rows);
  if !gate && !timeline_failures > 0 then begin
    Format.printf "[timeline gate FAILED: %d row(s) regressed]@."
      !timeline_failures;
    exit 1
  end
