(* The benchmark harness.

   Two halves:

   1. Reproduction: regenerate every table and figure of the paper's
      evaluation (Figures 4-6, Tables 1-6) with the full simulation,
      printing measured values next to the published ones. This is the
      output recorded in EXPERIMENTS.md.

   2. Bechamel micro-benchmarks: one [Test.make] per paper artifact
      (a scaled-down single-cell version of that experiment, so its
      cost can be tracked over time), plus a group covering the cache
      hot paths (hit, miss/evict under each allocation policy, the
      control calls) and the underlying data structures.

   Usage:
     main.exe                 everything (full reproduction + micro)
     main.exe fig4 table1     selected artifacts only
     main.exe micro           micro-benchmarks only
     main.exe --quick         1 run and 2 cache sizes per artifact
     main.exe --runs N        cold-start runs per data point (default 3)
     main.exe --jobs N        run grid cells on N domains (default
                              ACFC_JOBS, else sequential); results are
                              byte-identical for every N
     main.exe fig5-par        time the fig5 grid sequential vs parallel
                              and report the speedup
     main.exe --json FILE     also write machine-readable results
                              (the acfc-bench/1 schema; CI uploads this
                              as the BENCH_results.json artifact)
*)

module Config = Acfc_core.Config
module Cache = Acfc_core.Cache
module Policy = Acfc_core.Policy
module Block = Acfc_core.Block
module Dll = Acfc_core.Dll
module Pool = Acfc_par.Pool
open Acfc_experiments

let pid0 = Acfc_core.Pid.make 0

(* {2 Micro-benchmarks} *)

let cache_hit_test =
  let cache = Cache.create (Config.make ~capacity_blocks:1024 ()) in
  ignore (Cache.read cache ~pid:pid0 (Block.make ~file:0 ~index:0));
  Bechamel.Test.make ~name:"cache/hit"
    (Bechamel.Staged.stage @@ fun () ->
     ignore (Cache.read cache ~pid:pid0 (Block.make ~file:0 ~index:0)))

let cache_miss_test ~name ~alloc_policy ~smart =
  let cache = Cache.create (Config.make ~alloc_policy ~capacity_blocks:1024 ()) in
  if smart then begin
    (match Cache.register_manager cache pid0 with Ok () -> () | Error _ -> assert false);
    match Cache.set_policy cache pid0 ~prio:0 Policy.Mru with
    | Ok () -> ()
    | Error _ -> assert false
  end;
  (* Fill so that every further read evicts. *)
  for i = 0 to 1023 do
    ignore (Cache.read cache ~pid:pid0 (Block.make ~file:0 ~index:i))
  done;
  let next = ref 1024 in
  Bechamel.Test.make ~name
    (Bechamel.Staged.stage @@ fun () ->
     ignore (Cache.read cache ~pid:pid0 (Block.make ~file:0 ~index:!next));
     incr next)

let cache_miss_upcall_test =
  let cache = Cache.create (Config.make ~capacity_blocks:1024 ()) in
  (match Cache.register_manager cache pid0 with Ok () -> () | Error _ -> assert false);
  (* An upcall handler doing the same work as the MRU pool, but through
     the general mechanism: the paper's flexibility-vs-overhead trade. *)
  (match
     Cache.set_chooser cache pid0
       (Some (fun ~candidate ~resident:_ -> Some candidate))
   with
  | Ok () -> ()
  | Error _ -> assert false);
  for i = 0 to 1023 do
    ignore (Cache.read cache ~pid:pid0 (Block.make ~file:0 ~index:i))
  done;
  let next = ref 1024 in
  Bechamel.Test.make ~name:"cache/miss-evict-upcall"
    (Bechamel.Staged.stage @@ fun () ->
     ignore (Cache.read cache ~pid:pid0 (Block.make ~file:0 ~index:!next));
     incr next)

let set_temppri_test =
  let cache = Cache.create (Config.make ~capacity_blocks:1024 ()) in
  (match Cache.register_manager cache pid0 with Ok () -> () | Error _ -> assert false);
  for i = 0 to 1023 do
    ignore (Cache.read cache ~pid:pid0 (Block.make ~file:0 ~index:i))
  done;
  let flip = ref 0 in
  Bechamel.Test.make ~name:"control/set_temppri"
    (Bechamel.Staged.stage @@ fun () ->
     flip := (!flip + 1) land 1023;
     ignore (Cache.set_temppri cache pid0 ~file:0 ~first:!flip ~last:!flip ~prio:(-1)))

let dll_test =
  let l = Dll.create () in
  let node = ref (Dll.push_front l 0) in
  Bechamel.Test.make ~name:"dll/remove+push"
    (Bechamel.Staged.stage @@ fun () ->
     Dll.remove l !node;
     node := Dll.push_front l 0)

let heap_test =
  let h = Acfc_sim.Heap.create ~leq:(fun (a : float) b -> a <= b) () in
  for i = 0 to 255 do
    Acfc_sim.Heap.push h (float_of_int i)
  done;
  Bechamel.Test.make ~name:"heap/push+pop"
    (Bechamel.Staged.stage @@ fun () ->
     Acfc_sim.Heap.push h 128.0;
     ignore (Acfc_sim.Heap.pop h))

let engine_event_test =
  Bechamel.Test.make ~name:"engine/delay-roundtrip"
    (Bechamel.Staged.stage @@ fun () ->
     let e = Acfc_sim.Engine.create () in
     Acfc_sim.Engine.spawn e (fun () -> Acfc_sim.Engine.delay e 1.0);
     Acfc_sim.Engine.run e)

let policy_sim_test ~name policy =
  let trace = Acfc_replacement.Trace.cyclic ~file:0 ~blocks:512 ~passes:4 in
  Bechamel.Test.make ~name
    (Bechamel.Staged.stage @@ fun () ->
     ignore (Acfc_replacement.Policy_sim.run policy ~capacity:256 trace))

(* One Test.make per paper artifact: a single-cell scaled version. *)
let artifact_tests =
  let quick f = Bechamel.Staged.stage @@ fun () -> ignore (f ()) in
  [
    Bechamel.Test.make ~name:"fig4/din-6.4MB"
      (quick (fun () -> Single.run ~runs:1 ~sizes:[ 6.4 ] ~apps:[ "din" ] ()));
    Bechamel.Test.make ~name:"table5/cs1-6.4MB"
      (quick (fun () -> Single.run ~runs:1 ~sizes:[ 6.4 ] ~apps:[ "cs1" ] ()));
    Bechamel.Test.make ~name:"table6/ldk-6.4MB"
      (quick (fun () -> Single.run ~runs:1 ~sizes:[ 6.4 ] ~apps:[ "ldk" ] ()));
    Bechamel.Test.make ~name:"fig5/cs3+ldk-6.4MB"
      (quick (fun () ->
           Multi.run ~runs:1 ~sizes:[ 6.4 ] ~combos:[ [ "cs3"; "ldk" ] ] ()));
    Bechamel.Test.make ~name:"fig6/cs2+gli-6.4MB"
      (quick (fun () ->
           Alloc_lru.run ~runs:1 ~sizes:[ 6.4 ] ~combos:[ [ "cs2"; "gli" ] ] ()));
    Bechamel.Test.make ~name:"table1/read500"
      (quick (fun () -> Placeholders.run ~runs:1 ~ns:[ 500 ] ()));
    Bechamel.Test.make ~name:"table2/din"
      (quick (fun () -> Foolish.run ~runs:1 ~apps:[ "din" ] ()));
    Bechamel.Test.make ~name:"table3/din"
      (quick (fun () -> Smart_oblivious.run ~runs:1 ~apps:[ "din" ] ~two_disks:false ()));
    Bechamel.Test.make ~name:"table4/din"
      (quick (fun () -> Smart_oblivious.run ~runs:1 ~apps:[ "din" ] ~two_disks:true ()));
  ]

let micro_tests =
  [
    cache_hit_test;
    cache_miss_test ~name:"cache/miss-evict-global-lru" ~alloc_policy:Config.Global_lru
      ~smart:false;
    cache_miss_test ~name:"cache/miss-evict-lru-sp-overrule" ~alloc_policy:Config.Lru_sp
      ~smart:true;
    cache_miss_upcall_test;
    set_temppri_test;
    dll_test;
    heap_test;
    engine_event_test;
    policy_sim_test ~name:"policy-sim/lru-cyclic" (module Acfc_replacement.Policies.Lru);
    policy_sim_test ~name:"policy-sim/opt-cyclic" (module Acfc_replacement.Policies.Opt);
  ]

(* Runs each test, prints the human-readable line, and returns
   [(name, ns_per_run, r2)] rows for the machine-readable report. *)
let run_bechamel ~quota_s tests =
  let open Bechamel in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second quota_s) ~kde:None ()
  in
  List.concat_map
    (fun test ->
      let results = Benchmark.all cfg instances (Test.make_grouped ~name:"" [ test ]) in
      let analyzed = Analyze.all ols Toolkit.Instance.monotonic_clock results in
      Hashtbl.fold
        (fun name ols_result acc ->
          let name =
            if String.length name > 0 && name.[0] = '/' then
              String.sub name 1 (String.length name - 1)
            else name
          in
          let estimate =
            match Analyze.OLS.estimates ols_result with
            | Some [ e ] -> e
            | Some _ | None -> Float.nan
          in
          let r2 = Option.value (Analyze.OLS.r_square ols_result) ~default:Float.nan in
          let value, unit_ =
            if estimate > 1e9 then (estimate /. 1e9, "s")
            else if estimate > 1e6 then (estimate /. 1e6, "ms")
            else if estimate > 1e3 then (estimate /. 1e3, "us")
            else (estimate, "ns")
          in
          Format.printf "  %-36s %10.2f %s/run   (r²=%.3f)@." name value unit_ r2;
          (name, estimate, r2) :: acc)
        analyzed [])
    tests

let run_micro () =
  Format.printf "@.%s@." (String.make 74 '=');
  Format.printf "Bechamel micro-benchmarks: paper artifacts (single-cell, scaled)@.";
  let artifact_rows = run_bechamel ~quota_s:2.0 artifact_tests in
  Format.printf "@.Bechamel micro-benchmarks: cache hot paths and substrates@.";
  let micro_rows = run_bechamel ~quota_s:0.5 micro_tests in
  artifact_rows @ micro_rows

(* {2 Machine-readable report (--json)} *)

(* The acfc-bench/1 schema: a stable shape CI can diff across runs.
   NaN (no OLS estimate) becomes null, since JSON has no NaN. *)
let write_json ~path ~quick ~runs ~jobs ~artifacts ~micro ~total_wall_s =
  let module J = Acfc_obs.Json in
  let num v = if Float.is_finite v then J.Num v else J.Null in
  let doc =
    J.Obj
      [
        ("schema", J.Str "acfc-bench/1");
        ("quick", J.Bool quick);
        ("runs", J.Num (float_of_int runs));
        ("jobs", J.Num (float_of_int jobs));
        ( "artifacts",
          J.List
            (List.map
               (fun (name, wall_s) ->
                 J.Obj [ ("name", J.Str name); ("wall_s", num wall_s) ])
               artifacts) );
        ( "micro",
          J.List
            (List.map
               (fun (name, ns_per_run, r2) ->
                 J.Obj
                   [
                     ("name", J.Str name);
                     ("ns_per_run", num ns_per_run);
                     ("r2", num r2);
                   ])
               micro) );
        ("total_wall_s", num total_wall_s);
      ]
  in
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      output_string oc (J.to_string doc);
      output_char oc '\n');
  Format.printf "[bench results -> %s]@." path

(* {2 Sequential vs parallel (fig5-par)} *)

(* Times the fig5 grid at jobs=1 and jobs=n, checks the rendered tables
   are byte-identical (the acfc.par determinism contract), and returns
   both wall times as artifact rows for the machine-readable report. *)
let run_fig5_par opts ~jobs =
  let time f =
    let t = Unix.gettimeofday () in
    let v = f () in
    (v, Unix.gettimeofday () -. t)
  in
  let render jobs () =
    Format.asprintf "%a" Multi.print
      (Multi.run ~jobs ~runs:opts.Report.runs ~sizes:opts.Report.sizes ())
  in
  Format.printf "@.%s@.@." (String.make 74 '=');
  Format.printf "fig5 grid: sequential vs %d domains@." jobs;
  let seq_out, seq_wall = time (render 1) in
  let par_out, par_wall = time (render jobs) in
  if seq_out <> par_out then
    failwith "fig5-par: parallel output differs from sequential";
  Format.printf
    "  jobs=1: %.1fs   jobs=%d: %.1fs   speedup %.2fx   (outputs identical)@."
    seq_wall jobs par_wall (seq_wall /. par_wall);
  [ ("fig5/jobs=1", seq_wall); (Printf.sprintf "fig5/jobs=%d" jobs, par_wall) ]

(* {2 Driver} *)

let () =
  let quick = ref false in
  let runs = ref 3 in
  let jobs = ref None in
  let json_out = ref None in
  let selected = ref [] in
  let spec =
    [
      ("--quick", Arg.Set quick, "1 run, 2 cache sizes per artifact");
      ("--runs", Arg.Set_int runs, "N cold-start runs per data point (default 3)");
      ( "--jobs",
        Arg.Int (fun n -> jobs := Some n),
        "N run grid cells on N domains (default ACFC_JOBS, else sequential)" );
      ( "--json",
        Arg.String (fun f -> json_out := Some f),
        "FILE write machine-readable results (acfc-bench/1 schema)" );
    ]
  in
  let usage =
    "main.exe [--quick] [--runs N] [--jobs N] [--json FILE] \
     [all|micro|ablations|criteria|fig5-par|fig4|fig5|fig6|table1..table6]*"
  in
  Arg.parse spec (fun a -> selected := a :: !selected) usage;
  let selected = if !selected = [] then [ "all"; "micro" ] else List.rev !selected in
  let opts =
    if !quick then Report.quick else { Report.default with runs = !runs }
  in
  let opts = { opts with Report.jobs = !jobs } in
  let eff_jobs = match !jobs with Some n -> n | None -> Pool.default_jobs () in
  let t0 = Unix.gettimeofday () in
  let micro_rows = ref [] in
  let artifact_walls = ref [] in
  List.iter
    (fun artifact ->
      let t = Unix.gettimeofday () in
      (match artifact with
      | "micro" -> micro_rows := !micro_rows @ run_micro ()
      | "ablations" ->
        Format.printf "@.%s@.@." (String.make 74 '=');
        Ablations.print_all ?jobs:opts.Report.jobs ~runs:opts.Report.runs
          Format.std_formatter ()
      | "criteria" ->
        Format.printf "@.%s@.@." (String.make 74 '=');
        Criteria.print Format.std_formatter
          (Criteria.run_all ?jobs:opts.Report.jobs ~runs:opts.Report.runs ())
      | "fig5-par" ->
        (* On the CI runners auto picks the vCPU count; locally the flag
           wins, and a 1-CPU box still exercises the domain machinery. *)
        let par_jobs = if eff_jobs > 1 then eff_jobs else max 2 (Pool.auto_jobs ()) in
        List.iter
          (fun row -> artifact_walls := row :: !artifact_walls)
          (run_fig5_par opts ~jobs:par_jobs)
      | "all" ->
        Report.run_all opts Format.std_formatter;
        Format.printf "@.%s@.@." (String.make 74 '=');
        Ablations.print_all ?jobs:opts.Report.jobs ~runs:opts.Report.runs
          Format.std_formatter ();
        Format.printf "@.%s@.@." (String.make 74 '=');
        Criteria.print Format.std_formatter
          (Criteria.run_all ?jobs:opts.Report.jobs ~runs:opts.Report.runs ())
      | name -> Report.run_artifact opts Format.std_formatter name);
      if artifact <> "fig5-par" then
        artifact_walls := (artifact, Unix.gettimeofday () -. t) :: !artifact_walls)
    selected;
  let total_wall_s = Unix.gettimeofday () -. t0 in
  Format.printf "@.[bench completed in %.1fs]@." total_wall_s;
  match !json_out with
  | None -> ()
  | Some path ->
    write_json ~path ~quick:!quick ~runs:opts.Report.runs ~jobs:eff_jobs
      ~artifacts:(List.rev !artifact_walls) ~micro:!micro_rows ~total_wall_s
