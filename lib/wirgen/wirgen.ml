module Wir = Acfc_wir.Wir
module Rng = Acfc_sim.Rng
module Json = Acfc_obs.Json
module Config = Acfc_core.Config
module Scenario = Acfc_scenario.Scenario
module Policy = Acfc_core.Policy

type pattern = Sequential | Cyclic | Hot_cold | Random | Access_once

let patterns = [ Sequential; Cyclic; Hot_cold; Random; Access_once ]

let pattern_to_string = function
  | Sequential -> "sequential"
  | Cyclic -> "cyclic"
  | Hot_cold -> "hot_cold"
  | Random -> "random"
  | Access_once -> "access_once"

let pattern_of_string = function
  | "sequential" -> Some Sequential
  | "cyclic" -> Some Cyclic
  | "hot_cold" -> Some Hot_cold
  | "random" -> Some Random
  | "access_once" -> Some Access_once
  | _ -> None

(* The paper's category labels, as used by the eight ported apps. *)
let category = function
  | Sequential -> "sequential"
  | Cyclic -> "cyclic"
  | Hot_cold -> "hot/cold"
  | Random -> "random"
  | Access_once -> "access-once"

type spec = {
  name : string;
  mix : (pattern * float) list;
  files : int * int;
  file_blocks : int * int;
  passes : int * int;
  locality : float;
  advise : float;
}

let default =
  {
    name = "default";
    mix = List.map (fun p -> (p, 1.0)) patterns;
    files = (1, 4);
    file_blocks = (8, 64);
    passes = (2, 4);
    locality = 0.25;
    advise = 0.5;
  }

(* Weight of a pattern in a spec's mix (missing entries weigh 0). *)
let weight spec p = match List.assoc_opt p spec.mix with Some w -> w | None -> 0.0

(* {2 Validation} *)

let validate spec =
  let err path msg = Error (Printf.sprintf "wirgen: %s at %s" msg path) in
  let range path what (lo, hi) =
    if lo < 1 then err path (what ^ " minimum must be at least 1")
    else if hi < lo then err path (what ^ " maximum must be at least its minimum")
    else Ok ()
  in
  let ( let* ) = Result.bind in
  let* () = if spec.name = "" then err "$.name" "corpus name must be non-empty" else Ok () in
  let* () =
    if
      List.exists
        (fun (_, w) -> Float.is_nan w || w < 0.0 || w = Float.infinity)
        spec.mix
    then err "$.mix" "pattern weights must be finite and non-negative"
    else if not (List.exists (fun p -> weight spec p > 0.0) patterns) then
      err "$.mix" "at least one pattern weight must be positive"
    else Ok ()
  in
  let* () = range "$.files" "file count" spec.files in
  let* () = range "$.file_blocks" "file size" spec.file_blocks in
  let* () = range "$.passes" "pass count" spec.passes in
  let* () =
    if Float.is_nan spec.locality || spec.locality <= 0.0 || spec.locality > 1.0 then
      err "$.locality" "locality must be in (0, 1]"
    else Ok ()
  in
  if Float.is_nan spec.advise || spec.advise < 0.0 || spec.advise > 1.0 then
    err "$.advise" "advise density must be in [0, 1]"
  else Ok ()

(* {2 Generation}

   Every random draw below happens in a fixed textual order, so a
   program is a pure function of (spec, seed): this is the
   bit-reproducibility contract the CI corpus smoke and the bench
   fingerprints rely on. List.init / Array.init have unspecified
   evaluation order — use [draws], never those, for anything that
   touches the RNG. *)

let draws n f =
  let rec go i acc = if i = n then List.rev acc else go (i + 1) (f i :: acc) in
  go 0 []

let pick_pattern spec rng =
  let weighted = List.filter (fun p -> weight spec p > 0.0) patterns in
  let total = List.fold_left (fun acc p -> acc +. weight spec p) 0.0 weighted in
  let x = Rng.float rng total in
  let rec walk acc = function
    | [] | [ _ ] -> List.nth weighted (List.length weighted - 1)
    | p :: rest ->
      let acc = acc +. weight spec p in
      if x < acc then p else walk acc rest
  in
  walk 0.0 weighted

(* Per-block CPU cost: a small quantized draw, so programs stay
   readable and the JSON stays short. *)
let draw_cpu rng = 0.001 *. float_of_int (Rng.int_in rng 1 8)

let open_files ~slug sizes =
  List.mapi
    (fun i size ->
      Wir.open_file ~name:(Printf.sprintf "%s.%02d.dat" slug i) ~size_blocks:size ())
    sizes

(* One pass over every file in order; smart programs drop each block
   once consumed (the paper's sequential "done-with" idiom). *)
let gen_sequential ~smart ~sizes ~cpu =
  open_files ~slug:"seq" sizes
  @ List.mapi
      (fun i size -> Wir.read ~cpu ~done_with:smart ~file:i ~first:0 ~count:size ())
      sizes

(* Repeated full passes; the smart strategy is the cscope/dinero one:
   everything on one priority level, managed MRU. *)
let gen_cyclic ~smart ~temppri ~sizes ~passes ~cpu =
  let n = List.length sizes in
  let advice =
    if smart then
      draws n (fun i -> Wir.set_priority ~file:i ~prio:0)
      @ [ Wir.set_policy ~prio:0 Policy.Mru ]
    else []
  in
  let body =
    List.mapi (fun i size -> Wir.read ~cpu ~file:i ~first:0 ~count:size ()) sizes
  in
  let tail =
    (* An occasional temporary-priority flush of the first file's front
       half, to exercise the temppri path. *)
    match (smart, temppri, sizes) with
    | true, true, size0 :: _ ->
      [ Wir.set_temppri ~file:0 ~first:0 ~last:((size0 - 1) / 2) ~prio:(-1) ]
    | _ -> []
  in
  open_files ~slug:"cyc" sizes @ advice @ [ Wir.loop passes body ] @ tail

(* A small hot set (file 0, [locality] of its drawn size) and one or
   more cold files; hot takes (1 - locality) of the accesses. The smart
   strategy pins the hot file on a higher level (the pjn/gli shape). *)
let gen_hot_cold ~smart ~locality ~sizes ~passes ~cpu =
  let sizes = match sizes with [ only ] -> [ only; only ] | l -> l in
  let hot_size =
    match sizes with
    | size0 :: _ -> Stdlib.max 1 (int_of_float (locality *. float_of_int size0))
    | [] -> assert false
  in
  let sizes = hot_size :: List.tl sizes in
  let cold = List.tl sizes in
  let total = List.fold_left ( + ) 0 sizes in
  let advice =
    if smart then [ Wir.set_priority ~file:0 ~prio:1; Wir.set_policy ~prio:0 Policy.Lru ]
    else []
  in
  let body =
    List.mapi
      (fun j cold_size ->
        Wir.choice ~prob:(1.0 -. locality)
          [ Wir.rand_read ~cpu ~file:0 ~base:0 ~range:hot_size () ]
          [ Wir.rand_read ~cpu ~file:(j + 1) ~base:0 ~range:cold_size () ])
      cold
  in
  let times = Stdlib.max 1 (passes * total / List.length body) in
  open_files ~slug:"hc" sizes @ advice @ [ Wir.loop times body ]

(* Uniform point reads over every file: the pattern no strategy can
   help (the paper's oblivious baseline); no advice even when smart. *)
let gen_random ~sizes ~passes ~cpu =
  let total = List.fold_left ( + ) 0 sizes in
  let body =
    List.mapi (fun i size -> Wir.rand_read ~cpu ~file:i ~base:0 ~range:size ()) sizes
  in
  let times = Stdlib.max 1 (passes * total / List.length body) in
  open_files ~slug:"rnd" sizes @ [ Wir.loop times body ]

(* Read every input once, write one output of the combined size, unlink
   the inputs: the ld/sort shape. Smart programs drop blocks as they
   are consumed. *)
let gen_access_once ~smart ~sizes ~cpu =
  let n = List.length sizes in
  let total = List.fold_left ( + ) 0 sizes in
  open_files ~slug:"once" sizes
  @ [ Wir.open_file ~name:"once.out" ~size_blocks:0 ~reserve_blocks:total () ]
  @ List.mapi
      (fun i size -> Wir.read ~cpu ~done_with:smart ~file:i ~first:0 ~count:size ())
      sizes
  @ [ Wir.write ~cpu:(cpu /. 2.0) ~done_with:smart ~file:n ~first:0 ~count:total () ]
  @ draws n (fun i -> Wir.unlink i)

let generate spec ~seed =
  (match validate spec with
  | Ok () -> ()
  | Error e -> invalid_arg ("Wirgen.generate: " ^ e));
  let rng = Rng.create seed in
  let pattern = pick_pattern spec rng in
  let smart = Rng.float rng 1.0 < spec.advise in
  let fmin, fmax = spec.files in
  let nfiles = Rng.int_in rng fmin fmax in
  let bmin, bmax = spec.file_blocks in
  let sizes = draws nfiles (fun _ -> Rng.int_in rng bmin bmax) in
  let pmin, pmax = spec.passes in
  let passes = Rng.int_in rng pmin pmax in
  let cpu = draw_cpu rng in
  let pre_compute = Rng.bool rng in
  let temppri = Rng.bool rng in
  let ops =
    match pattern with
    | Sequential -> gen_sequential ~smart ~sizes ~cpu
    | Cyclic -> gen_cyclic ~smart ~temppri ~sizes ~passes ~cpu
    | Hot_cold -> gen_hot_cold ~smart ~locality:spec.locality ~sizes ~passes ~cpu
    | Random -> gen_random ~sizes ~passes ~cpu
    | Access_once -> gen_access_once ~smart ~sizes ~cpu
  in
  let ops = if pre_compute then Wir.compute (cpu *. 4.0) :: ops else ops in
  Wir.make
    ~name:(Printf.sprintf "%s-%s-s%d" spec.name (pattern_to_string pattern) seed)
    ~category:(category pattern) ops

let corpus spec ~seed ~count = draws count (fun i -> generate spec ~seed:(seed + i))

(* Does the program carry a caching strategy? Advise ops, or the
   done-with flag on a read/write (which compiles to a strategy call). *)
let rec op_has_advice = function
  | Wir.Advise _ -> true
  | Wir.Read { done_with; _ } | Wir.Write { done_with; _ } -> done_with
  | Wir.Seq body | Wir.Loop { body; _ } -> List.exists op_has_advice body
  | Wir.Choice { if_true; if_false; _ } ->
    List.exists op_has_advice if_true || List.exists op_has_advice if_false
  | Wir.Open _ | Wir.Rand_read _ | Wir.Compute _ | Wir.Unlink _ -> false

let has_advice (p : Wir.t) = List.exists op_has_advice p.Wir.ops

let scenario ?(cache_blocks = 819) ?(alloc_policy = Config.Lru_sp) spec ~seed ~count =
  let programs = corpus spec ~seed ~count in
  Scenario.make ~seed ~cache_blocks ~alloc_policy
    (List.map (fun p -> Scenario.inline_workload ~smart:(has_advice p) ~disk:0 p) programs)

(* {2 Serialisation (acfc-wirgen/1)} *)

let schema = "acfc-wirgen/1"

let to_json spec =
  let pair (lo, hi) = Json.List [ Json.Num (float_of_int lo); Json.Num (float_of_int hi) ] in
  Json.Obj
    [
      ("schema", Json.Str schema);
      ("name", Json.Str spec.name);
      ( "mix",
        Json.Obj
          (List.filter_map
             (fun p ->
               let w = weight spec p in
               if w > 0.0 then Some (pattern_to_string p, Json.Num w) else None)
             patterns) );
      ("files", pair spec.files);
      ("file_blocks", pair spec.file_blocks);
      ("passes", pair spec.passes);
      ("locality", Json.Num spec.locality);
      ("advise", Json.Num spec.advise);
    ]

let ( let* ) = Result.bind

let err path msg = Error (Printf.sprintf "wirgen: %s at %s" msg path)

let known_fields =
  [ "schema"; "name"; "mix"; "files"; "file_blocks"; "passes"; "locality"; "advise" ]

let require ~path name members =
  match List.assoc_opt name members with
  | Some v -> Ok v
  | None -> err path (Printf.sprintf "missing required field %S" name)

let as_num ~path = function
  | Json.Num x -> Ok x
  | _ -> err path "expected a number"

let as_str ~path = function
  | Json.Str s -> Ok s
  | _ -> err path "expected a string"

let as_range ~path = function
  | Json.List [ (Json.Num _ as a); (Json.Num _ as b) ] ->
    (match (Json.to_int a, Json.to_int b) with
    | Some lo, Some hi -> Ok (lo, hi)
    | _ -> err path "expected a [min, max] pair of integers")
  | _ -> err path "expected a [min, max] pair of integers"

let req_range ~path name members =
  let* v = require ~path name members in
  as_range ~path:(path ^ "." ^ name) v

let req_num ~path name members =
  let* v = require ~path name members in
  as_num ~path:(path ^ "." ^ name) v

let parse_mix ~path = function
  | Json.Obj members ->
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | (k, v) :: rest ->
        (match pattern_of_string k with
        | None ->
          err path
            (Printf.sprintf
               "unknown pattern %S (expected sequential, cyclic, hot_cold, random or \
                access_once)"
               k)
        | Some p ->
          if List.mem_assoc p acc then err path (Printf.sprintf "duplicate pattern %S" k)
          else
            let* w = as_num ~path:(path ^ "." ^ k) v in
            go ((p, w) :: acc) rest)
    in
    go [] members
  | _ -> err path "expected an object of pattern weights"

let of_json j =
  match j with
  | Json.Obj members ->
    let* () =
      let rec check = function
        | [] -> Ok ()
        | (k, _) :: rest ->
          if List.mem k known_fields then check rest
          else err "$" (Printf.sprintf "unknown field %S" k)
      in
      check members
    in
    let* s = require ~path:"$" "schema" members in
    let* schema_str = as_str ~path:"$.schema" s in
    let* () =
      if schema_str = schema then Ok ()
      else
        err "$.schema"
          (Printf.sprintf "unsupported schema %S (expected %s)" schema_str schema)
    in
    let* name =
      let* v = require ~path:"$" "name" members in
      as_str ~path:"$.name" v
    in
    let* mix =
      let* v = require ~path:"$" "mix" members in
      parse_mix ~path:"$.mix" v
    in
    let* files = req_range ~path:"$" "files" members in
    let* file_blocks = req_range ~path:"$" "file_blocks" members in
    let* passes = req_range ~path:"$" "passes" members in
    let* locality = req_num ~path:"$" "locality" members in
    let* advise = req_num ~path:"$" "advise" members in
    let spec = { name; mix; files; file_blocks; passes; locality; advise } in
    let* () = validate spec in
    Ok spec
  | _ -> err "$" "expected a spec object"

let to_string spec = Json.to_string (to_json spec)

let of_string s =
  match Json.of_string s with
  | Error e -> Error ("wirgen: invalid JSON: " ^ e)
  | Ok j -> of_json j

let save spec path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string spec);
      output_char oc '\n')

let load path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error e -> Error ("wirgen: " ^ e)
  | contents -> of_string contents

let hash spec = Digest.to_hex (Digest.string (to_string spec))

(* {2 Content-addressed corpora} *)

let corpus_label spec ~seed ~count =
  Printf.sprintf "corpus:%s:s%d:n%d" (hash spec) seed count

let corpus_to_string programs =
  String.concat "" (List.map (fun p -> Wir.to_string p ^ "\n") programs)

let corpus_of_string s =
  let lines = String.split_on_char '\n' s in
  let rec go i acc = function
    | [] -> Ok (List.rev acc)
    | "" :: rest -> go (i + 1) acc rest
    | line :: rest ->
      (match Wir.of_string line with
      | Ok p -> go (i + 1) (p :: acc) rest
      | Error e -> Error (Printf.sprintf "wirgen: corpus line %d: %s" i e))
  in
  go 1 [] lines

let ingest_spec store spec =
  Acfc_store.Store.add store ~kind:Acfc_store.Kind.Wirgen_spec
    ~label:("wirgen-spec:" ^ hash spec)
    ~expect:(hash spec) (to_string spec)

let stored_corpus store spec ~seed ~count =
  let ( let* ) = Result.bind in
  let label = corpus_label spec ~seed ~count in
  match Acfc_store.Store.resolve store ~label with
  | Some entry ->
    let* content =
      Acfc_store.Store.read store ~kind:Acfc_store.Kind.Wirgen_corpus
        ~digest:entry.Acfc_store.Manifest.digest
    in
    let* programs = corpus_of_string content in
    if List.length programs <> count then
      Error
        (Printf.sprintf "wirgen: stored corpus %s has %d members, expected %d"
           entry.Acfc_store.Manifest.digest (List.length programs) count)
    else Ok (programs, `Loaded entry.Acfc_store.Manifest.digest)
  | None ->
    let programs = corpus spec ~seed ~count in
    let* outcome =
      Acfc_store.Store.add store ~kind:Acfc_store.Kind.Wirgen_corpus ~label
        (corpus_to_string programs)
    in
    let digest =
      match outcome with
      | Acfc_store.Store.Created e | Acfc_store.Store.Exists e ->
        e.Acfc_store.Manifest.digest
    in
    Ok (programs, `Generated digest)
