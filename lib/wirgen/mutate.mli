(** Program mutators for the fuzz harness.

    Two deliberate kinds of edit, mirroring the two rejection layers of
    the wir toolchain:

    - {!preserve} makes a semantics-adjacent edit that must keep the
      program valid — the harness checks {!Acfc_wir.Wir.validate} still
      accepts it.
    - {!corrupt} and {!corrupt_json} make edits that must be rejected
      (by [validate] and [of_json] respectively) with a [$.path] error —
      the harness checks the strict toolchain never lets a broken
      program through silently.

    All mutators draw from the given RNG in a fixed order, so a mutant
    is a pure function of (program, RNG state). *)

val preserve : rng:Acfc_sim.Rng.t -> Acfc_wir.Wir.t -> Acfc_wir.Wir.t
(** A validity-preserving edit: rename, wrap the body in a [Seq],
    or add an inert [Compute] at either end. The result must satisfy
    [validate]. *)

val corrupt : rng:Acfc_sim.Rng.t -> Acfc_wir.Wir.t -> Acfc_wir.Wir.t
(** A semantic corruption: reference an unopened slot, read past a
    file's reserved extent, use an out-of-range [Choice] probability,
    or place an [Open] inside a [Loop]. The result still parses but
    must be rejected by [validate] with a [$.path] error. *)

val corrupt_json : rng:Acfc_sim.Rng.t -> Acfc_obs.Json.t -> Acfc_obs.Json.t
(** A syntactic corruption of a program's [acfc-wir/1] JSON document:
    an unknown field, a misspelled op tag, a missing required field, a
    type error, or an unsupported schema string. The result must be
    rejected by [of_json] with a [$.path] error. *)
