(** Property-based fuzzing of the wir toolchain.

    Drives {!Wirgen} and {!Mutate} against the four ROADMAP invariants:

    + {b valid-exec}: a generated program passes
      {!Acfc_wir.Wir.validate}, and executing it on a real machine
      (engine, cache, disks) cannot fail;
    + {b references}: {!Acfc_wir.Wir.references}, fast-forwarded with
      the scenario's own workload RNG, equals the demand reference
      stream a {!Acfc_replacement.Recorder} observes during that
      execution — block for block;
    + {b roundtrip}: the [acfc-wir/1] codec is the identity
      ([of_string (to_string p) = Ok p]) and {!Acfc_wir.Wir.hash} is
      stable, and a {!Mutate.preserve} mutant stays valid;
    + {b reject}: every {!Mutate.corrupt} mutant is refused by
      [validate], and every {!Mutate.corrupt_json} document by
      [of_json], each with an error naming a [$.path].

    The same harness runs at two budgets: quick (in [dune runtest],
    seconds) and long (the scheduled CI fuzz job, minutes) — only
    [programs]/[mutants] differ. *)

type failure = {
  spec_name : string;
  seed : int;  (** the exact [Wirgen.generate] seed — replays the case *)
  invariant : string;  (** ["valid-exec"], ["references"], ["roundtrip"] or ["reject"] *)
  detail : string;
  program : string option;  (** offending document, when one exists *)
}

type stats = {
  generated : int;  (** programs drawn from the spec pool *)
  mutated : int;  (** preserve + corrupt + corrupt-json mutants *)
  checks : int;  (** individual invariant checks performed *)
  by_category : (string * int) list;
      (** generated programs per access-pattern category *)
}

val default_specs : Wirgen.spec list
(** One single-pattern spec per {!Wirgen.pattern} (so every family is
    always exercised) plus the mixed {!Wirgen.default}. *)

val long_specs : Wirgen.spec list
(** {!default_specs} at the nightly budgets: more and larger files,
    more passes — programs an order of magnitude heavier, for the
    scheduled CI job. *)

val run :
  ?progress:(string -> unit) ->
  specs:Wirgen.spec list ->
  seed:int ->
  programs:int ->
  mutants:int ->
  unit ->
  stats * failure list
(** Fuzz [programs] programs per spec (program [i] uses seed
    [seed + i], the {!Wirgen.corpus} convention) and [mutants]
    corrupting mutants per program (half semantic, half JSON-level),
    plus one preserving mutant each. Returns the tally and every
    failure found; an empty failure list is a pass. Never raises —
    unexpected exceptions become failures. *)
