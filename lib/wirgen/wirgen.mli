(** Seeded synthetic workload generation.

    The paper's evaluation rests on eight hand-ported applications;
    every policy result in the repository is conditioned on those fixed
    demand streams. This module generates unlimited fresh-but-plausible
    applications instead: a deterministic, seeded generator that emits
    valid {!Acfc_wir.Wir.t} programs from a typed {!spec} covering the
    paper's access-pattern taxonomy (Sec. 5.3) — sequential, cyclic,
    hot/cold, random and access-once — under file-count, file-size and
    locality budgets, with a smart-vs-oblivious advise density knob.

    Determinism contract: [generate spec ~seed] is a pure function of
    the spec and the seed — same inputs give a bit-identical program
    (identical [acfc-wir/1] JSON, identical [Wir.hash]), on every
    machine. Corpora are therefore reproducible from a committed spec
    file plus a seed; see [examples/wirgen/].

    Specs serialise to a versioned JSON document ([acfc-wirgen/1]) with
    the same strict-parse discipline as scenario and wir files: unknown
    fields, bad enums and out-of-range values are rejected with their
    [$.path]. *)

(** The paper's access-pattern taxonomy. *)
type pattern =
  | Sequential  (** one pass over every file, in order *)
  | Cyclic  (** repeated full passes (cscope, dinero) *)
  | Hot_cold  (** skewed point reads: small hot set, large cold set *)
  | Random  (** uniform point reads over the whole extent *)
  | Access_once  (** read inputs once, write an output once (ld, sort) *)

val patterns : pattern list
(** All five, in the fixed order above. *)

val pattern_to_string : pattern -> string
(** ["sequential"], ["cyclic"], ["hot_cold"], ["random"],
    ["access_once"] — the spec-file enum values. *)

val pattern_of_string : string -> pattern option

(** What family of programs to draw. All budgets are inclusive
    [(min, max)] ranges sampled uniformly per program. *)
type spec = {
  name : string;  (** corpus name; prefixes every program name *)
  mix : (pattern * float) list;
      (** relative weight of each pattern (missing patterns weigh 0);
          at least one weight must be positive *)
  files : int * int;  (** files opened per program *)
  file_blocks : int * int;  (** blocks per file *)
  passes : int * int;  (** whole-data passes (loop trip budget) *)
  locality : float;
      (** hot-set fraction for hot/cold programs, in (0, 1] *)
  advise : float;
      (** fraction of programs that carry a caching strategy (advice
          ops); the rest are oblivious, in [0, 1] *)
}

val default : spec
(** The committed smoke family: every pattern weighted 1, 1–4 files of
    8–64 blocks, 2–4 passes, locality 0.25, advise 0.5. *)

val validate : spec -> (unit, string) result
(** Budget sanity: non-empty name, finite non-negative weights with a
    positive sum, [1 <= min <= max] ranges, locality in (0, 1], advise
    in [0, 1]. Errors are prefixed ["wirgen:"] with a [$.path]. *)

(** {2 Generation} *)

val generate : spec -> seed:int -> Acfc_wir.Wir.t
(** Draw one program. The result always passes {!Acfc_wir.Wir.validate}
    (this is fuzzed; see {!Fuzz}). Program names embed the seed
    ([<spec.name>-<pattern>-s<seed>]) so corpus members stay distinct.
    Raises [Invalid_argument] on an invalid spec. *)

val corpus : spec -> seed:int -> count:int -> Acfc_wir.Wir.t list
(** [count] programs; member [i] is [generate spec ~seed:(seed + i)],
    so every member is individually reproducible with {!generate}. *)

val has_advice : Acfc_wir.Wir.t -> bool
(** Does the program carry a caching strategy — any [Advise] op, or a
    [done_with] flag on a read/write? Decides the smart/oblivious role
    of a generated workload in {!scenario}. *)

val scenario :
  ?cache_blocks:int ->
  ?alloc_policy:Acfc_core.Config.alloc_policy ->
  spec ->
  seed:int ->
  count:int ->
  Acfc_scenario.Scenario.t
(** A runnable machine over a generated corpus: [count] inline
    workloads (each program carried whole in the scenario, smart iff it
    emits advice), default disks, [cache_blocks] capacity (default 819,
    the paper's 6.4 MB) under [alloc_policy] (default LRU-SP), and the
    corpus seed as the scenario seed. Serialise it with
    {!Acfc_scenario.Scenario.save} and it replays anywhere. *)

(** {2 Serialisation (acfc-wirgen/1)} *)

val schema : string
(** ["acfc-wirgen/1"]. *)

val to_json : spec -> Acfc_obs.Json.t
(** Canonical form: stable field order, zero-weight mix entries
    omitted. [of_json (to_json s)] re-reads every spec exactly. *)

val of_json : Acfc_obs.Json.t -> (spec, string) result
(** Strict parse: unknown fields, unknown pattern names and non-numeric
    budgets are rejected with their path, e.g.
    [wirgen: unknown pattern "ziggurat" at $.mix]. Parsing also
    {!validate}s, so an [Ok] spec is always generable. *)

val to_string : spec -> string

val of_string : string -> (spec, string) result

val save : spec -> string -> unit

val load : string -> (spec, string) result

val hash : spec -> string
(** Hex digest of the canonical JSON — the corpus-family fingerprint
    recorded in bench artifacts next to the corpus seed. *)

(** {2 Content-addressed corpora}

    A corpus is a pure function of [(spec, seed, count)], so it earns a
    deterministic resolution label computable {e before} generation;
    {!stored_corpus} uses it to hit the store on warm runs and to
    generate-and-ingest on cold ones, bit-identically either way. *)

val corpus_label : spec -> seed:int -> count:int -> string
(** ["corpus:<spec-hash>:s<seed>:n<count>"]. *)

val corpus_to_string : Acfc_wir.Wir.t list -> string
(** The corpus artifact: JSON Lines — each member's canonical
    [acfc-wir/1] document on its own line, in member order. *)

val corpus_of_string : string -> (Acfc_wir.Wir.t list, string) result
(** Inverse of {!corpus_to_string}; strict per-line [acfc-wir/1]
    parsing, errors carry the offending line number. *)

val ingest_spec :
  Acfc_store.Store.t -> spec -> (Acfc_store.Store.outcome, string) result
(** Store the spec's canonical bytes; the entry digest is {!hash}. *)

val stored_corpus :
  Acfc_store.Store.t ->
  spec ->
  seed:int ->
  count:int ->
  (Acfc_wir.Wir.t list * [ `Loaded of string | `Generated of string ], string)
  result
(** Resolve {!corpus_label} in the store: on a hit, decode the stored
    corpus ([`Loaded digest]); on a miss, {!corpus}, ingest under the
    label and return [`Generated digest]. Both paths yield the same
    programs (generation is deterministic and the codec round-trips). *)
