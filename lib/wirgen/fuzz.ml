module Wir = Acfc_wir.Wir
module Rng = Acfc_sim.Rng
module Json = Acfc_obs.Json
module Config = Acfc_core.Config
module Block = Acfc_core.Block
module Scenario = Acfc_scenario.Scenario
module Recorder = Acfc_replacement.Recorder

type failure = {
  spec_name : string;
  seed : int;
  invariant : string;
  detail : string;
  program : string option;
}

type stats = {
  generated : int;
  mutated : int;
  checks : int;
  by_category : (string * int) list;
}

let default_specs =
  List.map
    (fun p ->
      {
        Wirgen.default with
        Wirgen.name = Wirgen.pattern_to_string p;
        mix = [ (p, 1.0) ];
      })
    Wirgen.patterns
  @ [ Wirgen.default ]

let long_specs =
  List.map
    (fun s ->
      { s with Wirgen.files = (1, 8); file_blocks = (16, 256); passes = (2, 8) })
    default_specs

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* A small machine for one program: the paper's disks, a cache small
   enough (128 blocks ~ 1 MB) that generated working sets overflow it
   and replacement actually runs. *)
let scenario_of p ~seed =
  Scenario.make ~seed ~cache_blocks:128 ~alloc_policy:Config.Lru_sp
    [ Scenario.inline_workload ~smart:(Wirgen.has_advice p) ~disk:0 p ]

(* Invariants 1 and 2: run the program on a real machine, then check
   the recorded demand stream against the fast-forwarded one. *)
let check_exec_and_references p ~seed =
  let sc = scenario_of p ~seed in
  match
    let recorder = Recorder.create () in
    let (_ : Acfc_workload.Runner.t) =
      Scenario.run ~tracer:(Recorder.tracer recorder) sc
    in
    Recorder.to_trace recorder
  with
  | exception e -> Error ("valid-exec", "exec raised: " ^ Printexc.to_string e)
  | recorded -> (
    match Scenario.workload_rngs sc with
    | [] | exception _ -> Error ("references", "no workload rng")
    | rng :: _ -> (
      match Wir.references ~rng p with
      | exception e -> Error ("references", "references raised: " ^ Printexc.to_string e)
      | expected ->
        if Array.length expected <> Array.length recorded then
          Error
            ( "references",
              Printf.sprintf "stream length %d, references gives %d"
                (Array.length recorded) (Array.length expected) )
        else (
          let bad = ref None in
          Array.iteri
            (fun i b ->
              if !bad = None && not (Block.equal b recorded.(i)) then bad := Some i)
            expected;
          match !bad with
          | None -> Ok ()
          | Some i ->
            Error
              ( "references",
                Printf.sprintf "streams diverge at reference %d: run saw %s, references gives %s"
                  i
                  (Format.asprintf "%a" Block.pp recorded.(i))
                  (Format.asprintf "%a" Block.pp expected.(i)) ))))

(* Invariant 3: the codec is the identity and the fingerprint is
   stable; a preserving mutant stays valid. *)
let check_roundtrip p ~mrng =
  let doc = Wir.to_string p in
  match Wir.of_string doc with
  | Error e -> Error ("roundtrip", "re-parse failed: " ^ e)
  | Ok p' ->
    if p' <> p then Error ("roundtrip", "re-parsed program differs")
    else if Wir.to_string p' <> doc then Error ("roundtrip", "re-printed JSON differs")
    else if Wir.hash p' <> Wir.hash p then Error ("roundtrip", "hash not stable")
    else (
      let kept = Mutate.preserve ~rng:mrng p in
      match Wir.validate kept with
      | Ok () -> Ok ()
      | Error e -> Error ("roundtrip", "preserving mutant rejected: " ^ e))

(* Invariant 4: corruptions are rejected, and the diagnostic points at
   a path. *)
let check_reject p ~mrng ~semantic =
  if semantic then (
    let bad = Mutate.corrupt ~rng:mrng p in
    match Wir.validate bad with
    | Ok () -> Error ("reject", "corrupt program passed validate", Some (Wir.to_string bad))
    | Error e ->
      if contains_sub e "$." then Ok ()
      else Error ("reject", "diagnostic has no $.path: " ^ e, Some (Wir.to_string bad)))
  else (
    let bad = Mutate.corrupt_json ~rng:mrng (Wir.to_json p) in
    let doc = Json.to_string bad in
    match Wir.of_json bad with
    | Ok _ -> Error ("reject", "corrupt JSON passed of_json", Some doc)
    | Error e ->
      if contains_sub e "$" then Ok ()
      else Error ("reject", "diagnostic has no $.path: " ^ e, Some doc))

let run ?progress ~specs ~seed ~programs ~mutants () =
  let failures = ref [] in
  let generated = ref 0 and mutated = ref 0 and checks = ref 0 in
  let by_category = Hashtbl.create 8 in
  let fail spec_name seed invariant detail program =
    failures := { spec_name; seed; invariant; detail; program } :: !failures
  in
  List.iter
    (fun spec ->
      (match progress with
      | Some f -> f (Printf.sprintf "fuzzing spec %s" spec.Wirgen.name)
      | None -> ());
      for i = 0 to programs - 1 do
        let pseed = seed + i in
        match Wirgen.generate spec ~seed:pseed with
        | exception e ->
          incr checks;
          fail spec.Wirgen.name pseed "valid-exec"
            ("generate raised: " ^ Printexc.to_string e)
            None
        | p ->
          incr generated;
          Hashtbl.replace by_category p.Wir.category
            (1 + Option.value ~default:0 (Hashtbl.find_opt by_category p.Wir.category));
          let record = function
            | Ok () -> incr checks
            | Error (invariant, detail) ->
              incr checks;
              fail spec.Wirgen.name pseed invariant detail (Some (Wir.to_string p))
          in
          (match Wir.validate p with
          | Ok () -> record (check_exec_and_references p ~seed:pseed)
          | Error e ->
            incr checks;
            fail spec.Wirgen.name pseed "valid-exec" ("generated program invalid: " ^ e)
              (Some (Wir.to_string p)));
          (* Mutant draws come from a per-program stream, so each
             program's cases replay from (spec, seed) alone. *)
          let mrng = Rng.create ((pseed * 31) + 7) in
          incr mutated;
          record (check_roundtrip p ~mrng);
          for m = 0 to mutants - 1 do
            incr mutated;
            incr checks;
            match check_reject p ~mrng ~semantic:(m mod 2 = 0) with
            | Ok () -> ()
            | Error (invariant, detail, doc) -> fail spec.Wirgen.name pseed invariant detail doc
          done
      done)
    specs;
  let by_category =
    List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) by_category [])
  in
  ( { generated = !generated; mutated = !mutated; checks = !checks; by_category },
    List.rev !failures )
