module Wir = Acfc_wir.Wir
module Rng = Acfc_sim.Rng
module Json = Acfc_obs.Json

let preserve ~rng (p : Wir.t) =
  match Rng.int rng 4 with
  | 0 -> { p with Wir.name = p.Wir.name ^ "+" }
  | 1 -> { p with Wir.ops = [ Wir.seq p.Wir.ops ] }
  | 2 -> { p with Wir.ops = p.Wir.ops @ [ Wir.compute 0.001 ] }
  | _ -> { p with Wir.ops = Wir.compute 0.001 :: p.Wir.ops }

(* Insert [op] right after the first top-level [Open], so the file it
   references is live when validation reaches it. *)
let after_first_open ops op =
  let rec go = function
    | [] -> None
    | (Wir.Open _ as o) :: rest -> Some (o :: op :: rest)
    | o :: rest -> Option.map (fun tail -> o :: tail) (go rest)
  in
  go ops

let corrupt ~rng (p : Wir.t) =
  let append op = { p with Wir.ops = p.Wir.ops @ [ op ] } in
  let bad_slot () =
    (* One past the last slot the program ever opens. *)
    append (Wir.read ~file:(Wir.file_count p) ~first:0 ~count:1 ())
  in
  match Rng.int rng 4 with
  | 0 -> bad_slot ()
  | 1 -> (
    (* Read far past the just-opened file's reserved extent. *)
    let overrun = Wir.read ~file:0 ~first:1_000_000_000 ~count:1 () in
    match after_first_open p.Wir.ops overrun with
    | Some ops -> { p with Wir.ops }
    | None -> bad_slot ())
  | 2 -> append (Wir.choice ~prob:1.5 [ Wir.compute 0.0 ] [])
  | _ ->
    append (Wir.loop 2 [ Wir.open_file ~name:"corrupt.dat" ~size_blocks:1 () ])

(* {2 JSON-level corruption} *)

let set_field k v members =
  List.map (fun (k', v') -> if k' = k then (k, v) else (k', v')) members

(* Rewrite the first op of the program's ops list with [f]; [None] when
   the document doesn't have the expected {ops: [Obj ...]} shape. *)
let with_first_op j f =
  match j with
  | Json.Obj members -> (
    match List.assoc_opt "ops" members with
    | Some (Json.List (Json.Obj op0 :: rest)) ->
      Some (Json.Obj (set_field "ops" (Json.List (f op0 :: rest)) members))
    | _ -> None)
  | _ -> None

let add_root_unknown j =
  match j with
  | Json.Obj members -> Json.Obj (members @ [ ("zzz", Json.Num 1.0) ])
  | _ -> Json.Obj [ ("zzz", Json.Num 1.0) ]

let corrupt_json ~rng j =
  let fallback = add_root_unknown in
  let or_fallback = function Some j' -> j' | None -> fallback j in
  match Rng.int rng 5 with
  | 0 -> fallback j
  | 1 ->
    (* Misspell the op tag: "read" -> "readx" etc. *)
    or_fallback
      (with_first_op j (fun op0 ->
           match List.assoc_opt "op" op0 with
           | Some (Json.Str tag) -> Json.Obj (set_field "op" (Json.Str (tag ^ "x")) op0)
           | _ -> Json.Obj (("op", Json.Str "zzz") :: op0)))
  | 2 ->
    (* Drop the required op tag entirely. *)
    or_fallback
      (with_first_op j (fun op0 ->
           Json.Obj (List.filter (fun (k, _) -> k <> "op") op0)))
  | 3 ->
    (* Type error: the op tag must be a string. *)
    or_fallback (with_first_op j (fun op0 -> Json.Obj (set_field "op" (Json.Num 5.0) op0)))
  | _ -> (
    match j with
    | Json.Obj members ->
      Json.Obj (set_field "schema" (Json.Str "acfc-wir/999") members)
    | _ -> fallback j)
