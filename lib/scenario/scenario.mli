(** A declarative, serialisable description of a complete simulated
    machine, and the one place that assembles machines from it.

    A scenario captures everything a run depends on: the cache
    {!Acfc_core.Config.t}, CPU and hit-cost parameters, the SCSI bus
    and its disks (drive parameters, layout, scheduling discipline),
    the workloads (application, smart/oblivious, disk placement,
    per-app knobs), the RNG seed, and observability options. The same
    value drives the programmatic API ({!run}), every experiment grid,
    the [acfc-run scenario] subcommand, and the bench harness — machine
    construction is data, not code.

    Scenarios serialise to a versioned JSON document
    ([acfc-scenario/1]) via {!save}/{!load}, so any paper figure cell
    or novel mixed-workload setup can be expressed in a file, diffed,
    and replayed. {!load} rejects unknown fields with the offending
    path, so typos fail loudly.

    Behavioural contract: {!run} assembles the machine exactly as the
    historical [Runner.run] did (same RNG-split order, same fiber
    creation order), so results are bit-identical to the pre-scenario
    code for equivalent parameters. *)

module Spec = Acfc_workload.Runner.Spec

(** One drive on the shared SCSI bus. *)
type disk = {
  params : Acfc_disk.Params.t;
  sched : Acfc_disk.Disk.sched;  (** queueing discipline, default FCFS *)
}

(** What a workload runs: a {!Catalog} name, or an inline workload IR
    program carried by the scenario itself (serialised as a nested
    [acfc-wir/1] document under the ["program"] key). *)
type source =
  | Named of string  (** a {!Catalog} name: "cs3", "read300!", … *)
  | Inline of Acfc_wir.Wir.t

(** One application instance in the machine. *)
type workload = {
  app : source;
  smart : bool;  (** register as a manager and apply its strategy *)
  disk : int;  (** index into {!t.disks} *)
  file_blocks : int option;  (** readN backing-file size knob (named only) *)
  manager : string option;
      (** registry name of a replacement policy
          ({!Acfc_policy.Registry}) installed as this workload's live
          [fbehavior] manager via the plug-in path; [None] = kernel
          replacement (plus the app's own Advise calls when smart) *)
}

(** Side outputs baked into the scenario (both default to [None]). *)
type obs_spec = {
  trace_path : string option;
      (** write a structured event trace here; a [.csv] suffix selects
          CSV, anything else JSON Lines *)
  metrics_path : string option;
      (** write an end-of-run metrics snapshot (JSON) here *)
}

(** One direction-agnostic network link: fixed propagation latency plus
    a bandwidth term per transferred block. *)
type link = { latency_ms : float; bandwidth_mb_per_s : float }

(** The shared server machine of a fleet: its cache size and the drive
    behind it. *)
type fleet_server = {
  server_cache_blocks : int;
  server_drive : Acfc_disk.Params.t;
}

(** Fleet extension ([$.fleet]): replicate the machine into [clients]
    identical client machines (each running this scenario's workload
    list against its own cache and disks) in front of one shared server
    cache. File slots [0 .. shared_files-1] of the workload list are
    server-backed and shared by every client; the rest stay on the
    client's local disks. [net] is the default client↔server link;
    [links] overrides it per client index. [lookahead_ms], when given,
    must not exceed twice the minimum link latency (the conservative
    parallel-simulation bound); it defaults to exactly that bound. *)
type fleet = {
  clients : int;
  shared_files : int;
  server : fleet_server;
  net : link;
  links : (int * link) list;
  lookahead_ms : float option;
}

type t = {
  seed : int;
  config : Acfc_core.Config.t;
  update_interval : float;  (** update-daemon period, seconds *)
  hit_cost : float option;  (** CPU seconds per block reference *)
  io_cpu_cost : float option;  (** CPU seconds per disk read *)
  write_cluster : int option;  (** dirty blocks per write-back request *)
  readahead : bool option;  (** one-block sequential read-ahead *)
  scattered_layout : bool;  (** aged file system with inter-file gaps *)
  disks : disk list;
  workloads : workload list;
  fleet : fleet option;  (** fleet extension; [None] = single machine *)
  obs : obs_spec;
}

val default_disks : disk list
(** The paper's testbed: disk 0 an RZ56 and disk 1 an RZ26, both FCFS
    on one shared SCSI bus. *)

val no_obs : obs_spec

val blocks_of_mb : float -> int
(** Cache capacity in 8 KB blocks for a size in MB ([6.4] -> 819, the
    default Ultrix cache of the paper's workstation). *)

val workload :
  ?smart:bool -> ?disk:int -> ?file_blocks:int -> ?manager:string -> string -> workload
(** A workload referencing a {!Catalog} application by name. [smart]
    defaults to the catalog's [smart_default] (paper apps and readN!
    apply their strategies; plain readN is oblivious); [disk] defaults
    to the catalog's paper disk assignment; [manager] names a registry
    policy to run as the workload's live manager. Raises
    [Invalid_argument] on an unknown name, a misapplied [file_blocks],
    or an unknown/offline-only [manager]. *)

val inline_workload :
  ?smart:bool -> ?disk:int -> ?manager:string -> Acfc_wir.Wir.t -> workload
(** A workload carrying its own IR program ([smart] defaults to true,
    [disk] to 0; [manager] as in {!workload}). Raises
    [Invalid_argument] on an invalid program
    (see {!Acfc_wir.Wir.validate}). *)

val inline_workloads : t -> t
(** Replace every [Named] workload by the [Inline] program the catalog
    application compiles to, so the scenario carries its workloads
    whole (its JSON form no longer references the catalog). Behaviour
    is identical by construction — the catalog applications {e are}
    programs. Raises [Failure] if a name no longer resolves or names a
    closure application. *)

val make :
  ?seed:int ->
  ?disks:disk list ->
  ?disk_sched:Acfc_disk.Disk.sched ->
  ?update_interval:float ->
  ?hit_cost:float ->
  ?io_cpu_cost:float ->
  ?write_cluster:int ->
  ?readahead:bool ->
  ?scattered_layout:bool ->
  ?revocation:Acfc_core.Config.revocation ->
  ?shared_files:Acfc_core.Config.shared_files ->
  ?config:Acfc_core.Config.t ->
  ?obs:obs_spec ->
  ?cache_blocks:int ->
  ?alloc_policy:Acfc_core.Config.alloc_policy ->
  ?fleet:fleet ->
  workload list ->
  t
(** Build a scenario. Either pass a full [config], or [cache_blocks]
    (required in that case) plus [alloc_policy] (default [Lru_sp]) and
    the optional [revocation] / [shared_files] knobs. [disk_sched]
    overrides the discipline of every disk in [disks] (which default to
    {!default_disks}); [update_interval] defaults to 30 s. Raises
    [Invalid_argument] on an empty workload list, an out-of-range disk
    index, conflicting [config] + cache knobs, or an invalid [fleet]
    (bad link index, non-positive latency, lookahead above the bound). *)

(** {2 Fleet helpers} *)

val fleet :
  ?shared_files:int ->
  ?links:(int * link) list ->
  ?lookahead_ms:float ->
  ?server_drive:Acfc_disk.Params.t ->
  clients:int ->
  server_cache_blocks:int ->
  latency_ms:float ->
  bandwidth_mb_per_s:float ->
  unit ->
  fleet
(** Validated {!type-fleet} constructor ([shared_files] defaults to 0,
    [links] to none, [server_drive] to the RZ56). Raises
    [Invalid_argument] with the offending sub-path on bad values. *)

val client_link : fleet -> int -> link
(** Effective link of a client: its [links] override, else [net]. *)

val fleet_min_latency_ms : fleet -> float
(** Minimum effective link latency over all clients. *)

val fleet_lookahead_ms : fleet -> float
(** The epoch length the fleet engine will use: [lookahead_ms] if set,
    else twice {!fleet_min_latency_ms} — the largest window that still
    guarantees a request sent in one epoch cannot be answered within
    the same epoch. *)

(** {2 Building and running} *)

(** The assembled machine, before any workload has run. *)
type machine = {
  engine : Acfc_sim.Engine.t;
  bus : Acfc_disk.Bus.t;
  disk_array : Acfc_disk.Disk.t array;
  cpu : Acfc_sim.Resource.t;
  fs : Acfc_fs.Fs.t;
  cache : Acfc_core.Cache.t;
  rng : Acfc_sim.Rng.t;  (** post-assembly state: split per workload *)
}

val build :
  ?tracer:(Acfc_core.Event.t -> unit) ->
  ?obs:Acfc_obs.Sink.t ->
  t ->
  machine
(** Assemble engine, bus, disks, CPU, file system and cache for the
    scenario — everything except the workload fibers — and wire the
    optional tracer and observability sink through every layer. *)

val workload_rngs : t -> Acfc_sim.Rng.t list
(** The private RNG stream each workload fiber would receive from
    {!run}, one per workload in order, reproduced without assembling a
    machine (same create/split order as {!build}). Pass one to
    {!Acfc_wir.Wir.references} to fast-forward the exact stochastic
    demand stream of a live run of this scenario. *)

val run :
  ?tracer:(Acfc_core.Event.t -> unit) ->
  ?obs:Acfc_obs.Sink.t ->
  ?monitor:Acfc_obs.Monitor.producer * float ->
  t ->
  Acfc_workload.Runner.t
(** {!build}, spawn one fiber per workload, run the simulation to
    completion and collect the usual {!Acfc_workload.Runner.t} results.
    [obs], when given, is threaded through every layer and additionally
    carries per-application gauges named [app.<index>.<name>.*]; it
    takes precedence over [t.obs] (which {!run} does {e not} open —
    file side outputs are the CLI's job). [monitor], when given as
    [(producer, every)], spawns a sampler fiber that streams a metrics
    snapshot to the producer every [every] simulated seconds while the
    workloads run, then emits a final snapshot and closes the stream;
    it requires [obs] (raises [Invalid_argument] otherwise) and does
    not perturb unmonitored runs. Raises [Failure] if a workload name
    no longer resolves. *)

val run_specs :
  ?seed:int ->
  ?disks:Acfc_disk.Params.t list ->
  ?disk_sched:Acfc_disk.Disk.sched ->
  ?update_interval:float ->
  ?hit_cost:float ->
  ?io_cpu_cost:float ->
  ?write_cluster:int ->
  ?readahead:bool ->
  ?scattered_layout:bool ->
  ?revocation:Acfc_core.Config.revocation ->
  ?shared_files:Acfc_core.Config.shared_files ->
  ?tracer:(Acfc_core.Event.t -> unit) ->
  ?obs:Acfc_obs.Sink.t ->
  ?monitor:Acfc_obs.Monitor.producer * float ->
  cache_blocks:int ->
  alloc_policy:Acfc_core.Config.alloc_policy ->
  Spec.t list ->
  Acfc_workload.Runner.t
(** Escape hatch for programmatically-constructed {!Acfc_workload.App.t}
    values that have no catalog name (custom workloads in tests and
    examples). Same machine assembly and defaults as {!run}; anything
    expressible by name should use a scenario instead, so it can be
    saved and replayed. *)

(** {2 Serialisation (acfc-scenario/1)} *)

val schema : string
(** ["acfc-scenario/1"]. *)

val to_json : t -> Acfc_obs.Json.t
(** Canonical JSON form: stable field order, defaults omitted.
    [of_json (to_json t)] re-reads every scenario exactly. *)

val of_json : Acfc_obs.Json.t -> (t, string) result
(** Errors are prefixed ["scenario:"] and name the offending path,
    e.g. [scenario: unknown field "polcy" at $.cache]. Unknown fields,
    bad enum values and out-of-range disk indices are all rejected. *)

val to_string : t -> string
(** Single-line canonical JSON. *)

val of_string : string -> (t, string) result

val save : t -> string -> unit
(** Write {!to_string} plus a trailing newline to a file. *)

val load : string -> (t, string) result
(** Read and parse a scenario file; I/O errors land in [Error] too. *)

val hash : t -> string
(** Hex digest of the canonical JSON — a stable fingerprint that makes
    bench artifacts traceable to exact configurations. *)

val hash_list : t list -> string
(** Combined fingerprint of a scenario grid, order-sensitive. *)
