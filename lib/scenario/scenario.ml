open Acfc_sim
module Config = Acfc_core.Config
module Control = Acfc_core.Control
module Pid = Acfc_core.Pid
module Cache = Acfc_core.Cache
module Bus = Acfc_disk.Bus
module Disk = Acfc_disk.Disk
module Params = Acfc_disk.Params
module App = Acfc_workload.App
module Env = Acfc_workload.Env
module Runner = Acfc_workload.Runner
module Spec = Runner.Spec
module Json = Acfc_obs.Json
module Wir = Acfc_wir.Wir

type disk = { params : Params.t; sched : Disk.sched }

type source = Named of string | Inline of Wir.t

type workload = {
  app : source;
  smart : bool;
  disk : int;
  file_blocks : int option;
  manager : string option;
      (* registry name of a replacement policy run as this workload's
         live manager; None = kernel replacement (+ the app's own
         Advise calls when smart) *)
}

type obs_spec = { trace_path : string option; metrics_path : string option }

type link = { latency_ms : float; bandwidth_mb_per_s : float }

type fleet_server = { server_cache_blocks : int; server_drive : Params.t }

type fleet = {
  clients : int;
  shared_files : int;
  server : fleet_server;
  net : link;
  links : (int * link) list;
  lookahead_ms : float option;
}

type t = {
  seed : int;
  config : Config.t;
  update_interval : float;
  hit_cost : float option;
  io_cpu_cost : float option;
  write_cluster : int option;
  readahead : bool option;
  scattered_layout : bool;
  disks : disk list;
  workloads : workload list;
  fleet : fleet option;
  obs : obs_spec;
}

let default_disks =
  [ { params = Params.rz56; sched = Disk.Fcfs }; { params = Params.rz26; sched = Disk.Fcfs } ]

let no_obs = { trace_path = None; metrics_path = None }

let blocks_of_mb = Runner.blocks_of_mb

(* Shared by the constructors (invalid_arg) and the JSON parser
   ($.path error): a manager must name a registered policy that can run
   without the future stream. *)
let check_manager = function
  | None -> Ok ()
  | Some name ->
    (match Acfc_policy.Registry.find name with
    | Error msg -> Error msg
    | Ok entry ->
      if Acfc_policy.Registry.needs_future entry then
        Error
          (Printf.sprintf
             "policy %S needs the future reference stream and cannot run as a live \
              manager"
             (Acfc_policy.Registry.name entry))
      else Ok ())

let workload ?smart ?disk ?file_blocks ?manager app =
  (match check_manager manager with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Scenario.workload: " ^ msg));
  match Catalog.resolve ?file_blocks app with
  | Error msg -> invalid_arg ("Scenario.workload: " ^ msg)
  | Ok entry ->
    {
      app = Named app;
      smart = Option.value smart ~default:entry.Catalog.smart_default;
      disk = Option.value disk ~default:entry.Catalog.disk;
      file_blocks;
      manager;
    }

let inline_workload ?(smart = true) ?(disk = 0) ?manager program =
  (match check_manager manager with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Scenario.inline_workload: " ^ msg));
  (match Wir.validate program with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Scenario.inline_workload: " ^ msg));
  { app = Inline program; smart; disk; file_blocks = None; manager }

(* {2 Fleet} *)

let client_link f c =
  match List.assoc_opt c f.links with Some l -> l | None -> f.net

let fleet_min_latency_ms f =
  let m = ref Float.infinity in
  for c = 0 to f.clients - 1 do
    let l = (client_link f c).latency_ms in
    if l < !m then m := l
  done;
  !m

let fleet_lookahead_ms f =
  match f.lookahead_ms with
  | Some la -> la
  | None -> 2.0 *. fleet_min_latency_ms f

(* Semantic checks shared by [make] and the JSON parser. [Error (sub,
   msg)] carries the field sub-path relative to the fleet object, so
   the parser can turn it into a [$.fleet…] diagnostic. *)
let check_link_values sub l =
  if not (Float.is_finite l.latency_ms && l.latency_ms > 0.0) then
    Error (sub ^ ".latency_ms", "latency_ms must be > 0")
  else if not (Float.is_finite l.bandwidth_mb_per_s && l.bandwidth_mb_per_s > 0.0) then
    Error (sub ^ ".bandwidth_mb_per_s", "bandwidth_mb_per_s must be > 0")
  else Ok ()

let fleet_check f =
  let ( let* ) = Result.bind in
  let* () = if f.clients >= 1 then Ok () else Error (".clients", "clients must be >= 1") in
  let* () =
    if f.shared_files >= 0 then Ok ()
    else Error (".shared_files", "shared_files must be >= 0")
  in
  let* () =
    if f.server.server_cache_blocks >= 1 then Ok ()
    else Error (".server.cache_blocks", "cache_blocks must be >= 1")
  in
  let* () = check_link_values ".network" f.net in
  let* () =
    List.fold_left
      (fun acc (i, (c, l)) ->
        let* () = acc in
        let sub = Printf.sprintf ".links[%d]" i in
        let* () =
          if c >= 0 && c < f.clients then Ok ()
          else
            Error
              ( sub ^ ".client",
                Printf.sprintf "client index %d out of range (%d client%s)" c f.clients
                  (if f.clients = 1 then "" else "s") )
        in
        let* () =
          if List.length (List.filter (fun (c', _) -> c' = c) f.links) = 1 then Ok ()
          else Error (sub ^ ".client", Printf.sprintf "duplicate link for client %d" c)
        in
        check_link_values sub l)
      (Ok ())
      (List.mapi (fun i x -> (i, x)) f.links)
  in
  match f.lookahead_ms with
  | None -> Ok ()
  | Some la ->
    let bound = 2.0 *. fleet_min_latency_ms f in
    if not (Float.is_finite la && la > 0.0) then
      Error (".lookahead_ms", "lookahead_ms must be > 0")
    else if la > bound then
      Error
        ( ".lookahead_ms",
          Printf.sprintf
            "lookahead_ms %g exceeds the conservative bound %g (twice the minimum \
             link latency)"
            la bound )
    else Ok ()

let fleet ?(shared_files = 0) ?(links = []) ?lookahead_ms ?(server_drive = Params.rz56)
    ~clients ~server_cache_blocks ~latency_ms ~bandwidth_mb_per_s () =
  let f =
    {
      clients;
      shared_files;
      server = { server_cache_blocks; server_drive };
      net = { latency_ms; bandwidth_mb_per_s };
      links;
      lookahead_ms;
    }
  in
  match fleet_check f with
  | Ok () -> f
  | Error (sub, msg) -> invalid_arg (Printf.sprintf "Scenario.fleet: %s: %s" sub msg)

let make ?(seed = 0) ?(disks = default_disks) ?disk_sched ?(update_interval = 30.0)
    ?hit_cost ?io_cpu_cost ?write_cluster ?readahead ?(scattered_layout = false)
    ?revocation ?shared_files ?config ?(obs = no_obs) ?cache_blocks ?alloc_policy
    ?fleet workloads =
  let config =
    match (config, cache_blocks) with
    | Some _, Some _ ->
      invalid_arg "Scenario.make: pass cache_blocks or config, not both"
    | Some c, None ->
      if revocation <> None || shared_files <> None || alloc_policy <> None then
        invalid_arg "Scenario.make: pass cache knobs or a full config, not both"
      else c
    | None, Some capacity_blocks ->
      Config.make ?alloc_policy ?revocation ?shared_files ~capacity_blocks ()
    | None, None -> invalid_arg "Scenario.make: cache_blocks (or config) is required"
  in
  let disks =
    match disk_sched with
    | None -> disks
    | Some sched -> List.map (fun d -> { d with sched }) disks
  in
  if disks = [] then invalid_arg "Scenario.make: no disks";
  if workloads = [] then invalid_arg "Scenario.make: no workloads";
  List.iter
    (fun w ->
      if w.disk < 0 || w.disk >= List.length disks then
        invalid_arg "Scenario.make: disk index out of range")
    workloads;
  (match fleet with
  | None -> ()
  | Some f ->
    (match fleet_check f with
    | Ok () -> ()
    | Error (sub, msg) ->
      invalid_arg (Printf.sprintf "Scenario.make: fleet%s: %s" sub msg)));
  {
    seed;
    config;
    update_interval;
    hit_cost;
    io_cpu_cost;
    write_cluster;
    readahead;
    scattered_layout;
    disks;
    workloads;
    fleet;
    obs;
  }

(* {2 Machine assembly}

   This is the historical [Runner.run] body, moved here wholesale. The
   order of every [Rng.split] and [Engine.spawn] is load-bearing: it is
   what keeps scenario-built runs bit-identical to the pre-scenario
   code (and to the golden snapshots). Do not reorder. *)

type machine = {
  engine : Engine.t;
  bus : Bus.t;
  disk_array : Disk.t array;
  cpu : Resource.t;
  fs : Acfc_fs.Fs.t;
  cache : Cache.t;
  rng : Rng.t;
}

let assemble ?tracer ?obs ~seed ~disks ~update_interval:_ ~hit_cost ~io_cpu_cost
    ~write_cluster ~readahead ~scattered_layout ~config specs =
  if specs = [] then invalid_arg "Scenario.run: no applications";
  let engine = Engine.create () in
  let rng = Rng.create seed in
  let bus = Bus.create engine () in
  let disk_array =
    Array.of_list
      (List.map
         (fun d -> Disk.create engine ~bus ~rng:(Rng.split rng) ~sched:d.sched d.params)
         disks)
  in
  List.iter
    (fun spec ->
      if spec.Spec.disk < 0 || spec.Spec.disk >= Array.length disk_array then
        invalid_arg "Scenario.run: disk index out of range")
    specs;
  let cpu = Resource.create engine ~name:"cpu" ~servers:1 () in
  let layout = if scattered_layout then `Scattered (Rng.split rng) else `Packed in
  let fs =
    Acfc_fs.Fs.create engine ~config ~cpu ?hit_cost ?io_cpu_cost ?write_cluster
      ?readahead ~layout ()
  in
  let cache = Acfc_fs.Fs.cache fs in
  (match tracer with Some f -> Cache.set_tracer cache (Some f) | None -> ());
  (* Thread the observability sink through every layer of the machine.
     The engine goes first: it points the sink's clock at virtual time,
     so all later events carry simulated timestamps. *)
  (match obs with
  | None -> ()
  | Some sink ->
    Engine.set_obs engine (Some sink);
    Cache.set_obs cache (Some sink);
    Acfc_fs.Fs.set_obs fs (Some sink);
    Bus.set_obs bus (Some sink);
    Array.iter (fun d -> Disk.set_obs d (Some sink)) disk_array;
    let m = Acfc_obs.Sink.metrics sink in
    List.iteri
      (fun i spec ->
        let pid = Pid.make i in
        let prefix = Printf.sprintf "app.%d.%s" i spec.Spec.app.App.name in
        Acfc_obs.Metrics.gauge m (prefix ^ ".hits") (fun () ->
            float_of_int (Cache.pid_hits cache pid));
        Acfc_obs.Metrics.gauge m (prefix ^ ".misses") (fun () ->
            float_of_int (Cache.pid_misses cache pid));
        Acfc_obs.Metrics.gauge m (prefix ^ ".hit_ratio") (fun () ->
            let h = Cache.pid_hits cache pid and m = Cache.pid_misses cache pid in
            if h + m = 0 then 0.0 else float_of_int h /. float_of_int (h + m));
        Acfc_obs.Metrics.gauge m (prefix ^ ".block_ios") (fun () ->
            float_of_int (Acfc_fs.Fs.pid_block_ios fs pid)))
      specs);
  { engine; bus; disk_array; cpu; fs; cache; rng }

let run_assembled ?monitor machine ~update_interval specs =
  let { engine; disk_array; fs; cache; rng; _ } = machine in
  let stop_daemon = Acfc_fs.Fs.spawn_update_daemon fs ~interval:update_interval () in
  let finish_times = Array.make (List.length specs) 0.0 in
  let done_ivars =
    List.mapi
      (fun i spec ->
        let pid = Pid.make i in
        let control =
          if spec.Spec.smart || spec.Spec.manager <> None then
            match Control.attach cache pid with
            | Ok c -> Some c
            | Error e ->
              failwith
                ("Scenario: manager registration failed: " ^ Acfc_core.Error.to_string e)
          else None
        in
        (* A named manager installs the unified policy core's live
           adapter as this pid's replacement plug-in; the app itself
           only sees a Control handle when it is smart. *)
        (match spec.Spec.manager with
        | None -> ()
        | Some pname ->
          let entry =
            match Acfc_policy.Registry.find pname with
            | Ok e -> e
            | Error msg -> failwith ("Scenario: " ^ msg)
          in
          let adapter =
            Acfc_policy.Live.make entry ~capacity:(Cache.capacity cache) ()
          in
          (match Acfc_policy.Live.install adapter (Option.get control) with
          | Ok () -> ()
          | Error e ->
            failwith
              ("Scenario: manager plug-in install failed: "
              ^ Acfc_core.Error.to_string e)));
        let env =
          {
            Env.engine;
            fs;
            pid;
            control = (if spec.Spec.smart then control else None);
            cpu = Some machine.cpu;
            rng = Rng.split rng;
          }
        in
        let iv = Ivar.create engine in
        Engine.spawn engine ~name:spec.Spec.app.App.name (fun () ->
            App.run spec.Spec.app env ~disk:disk_array.(spec.Spec.disk);
            finish_times.(i) <- Engine.now engine;
            Ivar.fill iv ());
        iv)
      specs
  in
  (* The live-monitoring fiber follows the update daemon's pattern: a
     periodic loop the coordinator stops once the workloads are done.
     Only spawned when a monitor is attached, so unmonitored runs keep
     their exact event counts. *)
  let stop_monitor = ref (fun () -> ()) in
  (match monitor with
  | None -> ()
  | Some (p, metrics, every) ->
    let stopped = ref false in
    stop_monitor := (fun () -> stopped := true);
    Engine.spawn engine ~name:"monitor" (fun () ->
        while not !stopped do
          Engine.delay engine every;
          if not !stopped then
            Acfc_obs.Monitor.sample p ~metrics ~now:(Engine.now engine)
        done));
  Engine.spawn engine ~name:"coordinator" (fun () ->
      List.iter Ivar.read done_ivars;
      (* Flush what the applications left dirty so write I/Os are fully
         accounted, then let the update daemon exit. *)
      ignore (Acfc_fs.Fs.sync fs);
      stop_daemon ();
      !stop_monitor ());
  Engine.run engine;
  (match monitor with
  | None -> ()
  | Some (p, metrics, _) ->
    let now = Engine.now engine in
    Acfc_obs.Monitor.sample p ~metrics ~now;
    Acfc_obs.Monitor.finish p ~now);
  let apps =
    List.mapi
      (fun i spec ->
        let pid = Pid.make i in
        {
          Runner.app_name = spec.Spec.app.App.name;
          pid;
          elapsed = finish_times.(i);
          disk_reads = Acfc_fs.Fs.pid_disk_reads fs pid;
          disk_writes = Acfc_fs.Fs.pid_disk_writes fs pid;
          block_ios = Acfc_fs.Fs.pid_block_ios fs pid;
          cache_hits = Cache.pid_hits cache pid;
          cache_misses = Cache.pid_misses cache pid;
        })
      specs
  in
  {
    Runner.apps;
    makespan = Array.fold_left Float.max 0.0 finish_times;
    total_ios = Acfc_fs.Fs.total_block_ios fs;
    cache_hits = Cache.hits cache;
    cache_misses = Cache.misses cache;
    overrules = Cache.overrule_count cache;
    placeholders_created = Cache.placeholders_created cache;
    placeholders_used = Cache.placeholders_used cache;
    engine_events = Engine.events_processed engine;
  }

(* Pair a CLI-facing [?monitor:(producer, every)] with the sink's
   metrics registry; a monitor without a sink has nothing to sample. *)
let monitor_with_metrics ~who monitor obs =
  match (monitor, obs) with
  | None, _ -> None
  | Some (p, every), Some sink -> Some (p, Acfc_obs.Sink.metrics sink, every)
  | Some _, None ->
    invalid_arg (who ^ ": a monitor needs an observability sink (obs)")

let run_specs ?(seed = 0) ?disks ?disk_sched ?(update_interval = 30.0) ?hit_cost
    ?io_cpu_cost ?write_cluster ?readahead ?(scattered_layout = false) ?revocation
    ?shared_files ?tracer ?obs ?monitor ~cache_blocks ~alloc_policy specs =
  let disks =
    match disks with
    | None -> default_disks
    | Some params -> List.map (fun p -> { params = p; sched = Disk.Fcfs }) params
  in
  let disks =
    match disk_sched with
    | None -> disks
    | Some sched -> List.map (fun d -> { d with sched }) disks
  in
  let config =
    Config.make ~alloc_policy ?revocation ?shared_files ~capacity_blocks:cache_blocks ()
  in
  let machine =
    assemble ?tracer ?obs ~seed ~disks ~update_interval ~hit_cost ~io_cpu_cost
      ~write_cluster ~readahead ~scattered_layout ~config specs
  in
  run_assembled
    ?monitor:(monitor_with_metrics ~who:"Scenario.run_specs" monitor obs)
    machine ~update_interval specs

let spec_of_workload w =
  match w.app with
  | Inline program ->
    Spec.make ~smart:w.smart ~disk:w.disk ?manager:w.manager (App.of_program program)
  | Named name ->
    (match Catalog.resolve ?file_blocks:w.file_blocks name with
    | Ok entry ->
      Spec.make ~smart:w.smart ~disk:w.disk ?manager:w.manager entry.Catalog.app
    | Error msg -> failwith ("Scenario: " ^ msg))

let inline_workloads t =
  let inline w =
    match w.app with
    | Inline _ -> w
    | Named name ->
      (match Catalog.resolve ?file_blocks:w.file_blocks name with
      | Error msg -> failwith ("Scenario: " ^ msg)
      | Ok entry ->
        (match App.program entry.Catalog.app with
        | Some program -> { w with app = Inline program; file_blocks = None }
        | None ->
          failwith (Printf.sprintf "Scenario: application %S is not an IR program" name)))
  in
  { t with workloads = List.map inline t.workloads }

(* Reproduce the private RNG each workload fiber receives, without
   assembling a machine: the same create/split order as [assemble]
   (one split per disk, one for a scattered layout) followed by
   [run_assembled]'s per-workload splits. Keep in lockstep with both —
   this is what lets [Wir.references] fast-forward a live run's
   stochastic demand stream. *)
let workload_rngs t =
  let rng = Rng.create t.seed in
  List.iter (fun _ -> ignore (Rng.split rng)) t.disks;
  if t.scattered_layout then ignore (Rng.split rng);
  List.map (fun _ -> Rng.split rng) t.workloads

let build ?tracer ?obs t =
  let specs = List.map spec_of_workload t.workloads in
  assemble ?tracer ?obs ~seed:t.seed ~disks:t.disks ~update_interval:t.update_interval
    ~hit_cost:t.hit_cost ~io_cpu_cost:t.io_cpu_cost ~write_cluster:t.write_cluster
    ~readahead:t.readahead ~scattered_layout:t.scattered_layout ~config:t.config specs

let run ?tracer ?obs ?monitor t =
  let specs = List.map spec_of_workload t.workloads in
  let machine =
    assemble ?tracer ?obs ~seed:t.seed ~disks:t.disks
      ~update_interval:t.update_interval ~hit_cost:t.hit_cost
      ~io_cpu_cost:t.io_cpu_cost ~write_cluster:t.write_cluster
      ~readahead:t.readahead ~scattered_layout:t.scattered_layout ~config:t.config
      specs
  in
  run_assembled
    ?monitor:(monitor_with_metrics ~who:"Scenario.run" monitor obs)
    machine ~update_interval:t.update_interval specs

(* {2 Serialisation} *)

let schema = "acfc-scenario/1"

let sched_to_string = function Disk.Fcfs -> "fcfs" | Disk.Scan -> "scan"

let sched_of_string = function
  | "fcfs" -> Some Disk.Fcfs
  | "scan" -> Some Disk.Scan
  | _ -> None

let shared_files_to_string = function
  | Config.Transfer -> "transfer"
  | Config.Sticky -> "sticky"

let shared_files_of_string = function
  | "transfer" -> Some Config.Transfer
  | "sticky" -> Some Config.Sticky
  | _ -> None

let named_drives = [ ("rz56", Params.rz56); ("rz26", Params.rz26) ]

let num_i n = Json.Num (float_of_int n)

let drive_to_json (p : Params.t) =
  match List.find_opt (fun (_, q) -> q = p) named_drives with
  | Some (name, _) -> Json.Str name
  | None ->
    Json.Obj
      [
        ("name", Json.Str p.Params.name);
        ("capacity_blocks", num_i p.Params.capacity_blocks);
        ("min_seek_ms", Json.Num p.Params.min_seek_ms);
        ("avg_seek_ms", Json.Num p.Params.avg_seek_ms);
        ("max_seek_ms", Json.Num p.Params.max_seek_ms);
        ("avg_rot_ms", Json.Num p.Params.avg_rot_ms);
        ("transfer_mb_per_s", Json.Num p.Params.transfer_mb_per_s);
        ("overhead_ms", Json.Num p.Params.overhead_ms);
        ("seq_rot_factor", Json.Num p.Params.seq_rot_factor);
      ]

let to_json t =
  let c = t.config in
  let cache =
    [
      ("capacity_blocks", num_i c.Config.capacity_blocks);
      ("alloc_policy", Json.Str (Config.alloc_policy_to_string c.Config.alloc_policy));
    ]
    @ (if c.Config.max_managers <> 64 then
         [ ("max_managers", num_i c.Config.max_managers) ]
       else [])
    @ (if c.Config.max_levels <> 32 then [ ("max_levels", num_i c.Config.max_levels) ]
       else [])
    @ (if c.Config.max_file_records <> 1024 then
         [ ("max_file_records", num_i c.Config.max_file_records) ]
       else [])
    @ (if c.Config.max_placeholders <> c.Config.capacity_blocks then
         [ ("max_placeholders", num_i c.Config.max_placeholders) ]
       else [])
    @ (match c.Config.revocation with
      | None -> []
      | Some r ->
        [
          ( "revocation",
            Json.Obj
              [
                ("min_decisions", num_i r.Config.min_decisions);
                ("mistake_ratio", Json.Num r.Config.mistake_ratio);
              ] );
        ])
    @
    match c.Config.shared_files with
    | Config.Transfer -> []
    | sf -> [ ("shared_files", Json.Str (shared_files_to_string sf)) ]
  in
  let opt name f = function None -> [] | Some v -> [ (name, f v) ] in
  let cpu =
    opt "hit_cost" (fun v -> Json.Num v) t.hit_cost
    @ opt "io_cpu_cost" (fun v -> Json.Num v) t.io_cpu_cost
  in
  let fs =
    opt "readahead" (fun v -> Json.Bool v) t.readahead
    @ opt "write_cluster" num_i t.write_cluster
    @ (if t.scattered_layout then [ ("scattered_layout", Json.Bool true) ] else [])
    @
    if t.update_interval <> 30.0 then
      [ ("update_interval_s", Json.Num t.update_interval) ]
    else []
  in
  let disks =
    List.map
      (fun d ->
        Json.Obj
          [ ("drive", drive_to_json d.params); ("sched", Json.Str (sched_to_string d.sched)) ])
      t.disks
  in
  let workloads =
    List.map
      (fun w ->
        Json.Obj
          ((match w.app with
           | Named name -> [ ("app", Json.Str name) ]
           | Inline program -> [ ("program", Wir.to_json program) ])
          @ [ ("smart", Json.Bool w.smart); ("disk", num_i w.disk) ]
          @ opt "manager" (fun m -> Json.Str m) w.manager
          @ opt "file_blocks" num_i w.file_blocks))
      t.workloads
  in
  let link_fields l =
    [
      ("latency_ms", Json.Num l.latency_ms);
      ("bandwidth_mb_per_s", Json.Num l.bandwidth_mb_per_s);
    ]
  in
  let fleet =
    match t.fleet with
    | None -> []
    | Some f ->
      let links =
        (* Canonical order: ascending client index (parse accepts any). *)
        match List.sort (fun (a, _) (b, _) -> compare a b) f.links with
        | [] -> []
        | ls ->
          [
            ( "links",
              Json.List
                (List.map
                   (fun (c, l) -> Json.Obj (("client", num_i c) :: link_fields l))
                   ls) );
          ]
      in
      [
        ( "fleet",
          Json.Obj
            ([ ("clients", num_i f.clients) ]
            @ (if f.shared_files <> 0 then [ ("shared_files", num_i f.shared_files) ]
               else [])
            @ [
                ( "server",
                  Json.Obj
                    [
                      ("cache_blocks", num_i f.server.server_cache_blocks);
                      ("drive", drive_to_json f.server.server_drive);
                    ] );
                ("network", Json.Obj (link_fields f.net));
              ]
            @ links
            @ opt "lookahead_ms" (fun v -> Json.Num v) f.lookahead_ms) );
      ]
  in
  let obs =
    opt "trace" (fun p -> Json.Str p) t.obs.trace_path
    @ opt "metrics" (fun p -> Json.Str p) t.obs.metrics_path
  in
  Json.Obj
    ([ ("schema", Json.Str schema); ("seed", num_i t.seed); ("cache", Json.Obj cache) ]
    @ (if cpu <> [] then [ ("cpu", Json.Obj cpu) ] else [])
    @ (if fs <> [] then [ ("fs", Json.Obj fs) ] else [])
    @ [ ("disks", Json.List disks); ("workloads", Json.List workloads) ]
    @ fleet
    @ if obs <> [] then [ ("obs", Json.Obj obs) ] else [])

(* {3 Parsing} *)

let ( let* ) = Result.bind

let err path msg = Error (Printf.sprintf "scenario: %s at %s" msg path)

let fields ~path ~known j =
  match j with
  | Json.Obj members ->
    let* () =
      List.fold_left
        (fun acc (k, _) ->
          let* () = acc in
          if List.mem k known then Ok ()
          else err path (Printf.sprintf "unknown field %S" k))
        (Ok ()) members
    in
    Ok members
  | _ -> err path "expected an object"

let field name members = List.assoc_opt name members

let require ~path name members =
  match field name members with
  | Some v -> Ok v
  | None -> err path (Printf.sprintf "missing required field %S" name)

let as_int ~path = function
  | Json.Num _ as v ->
    (match Json.to_int v with
    | Some n -> Ok n
    | None -> err path "expected an integer")
  | _ -> err path "expected an integer"

let as_num ~path = function
  | Json.Num x -> Ok x
  | _ -> err path "expected a number"

let as_str ~path = function
  | Json.Str s -> Ok s
  | _ -> err path "expected a string"

let as_bool ~path = function
  | Json.Bool b -> Ok b
  | _ -> err path "expected a boolean"

let as_list ~path = function
  | Json.List l -> Ok l
  | _ -> err path "expected a list"

let opt_field ~path name conv members =
  match field name members with
  | None -> Ok None
  | Some v ->
    let* v = conv ~path:(path ^ "." ^ name) v in
    Ok (Some v)

(* Fold a parser over list elements with indexed paths. *)
let mapi_result ~path f l =
  let rec go i acc = function
    | [] -> Ok (List.rev acc)
    | x :: rest ->
      let* v = f ~path:(Printf.sprintf "%s[%d]" path i) x in
      go (i + 1) (v :: acc) rest
  in
  go 0 [] l

let parse_revocation ~path j =
  let* members = fields ~path ~known:[ "min_decisions"; "mistake_ratio" ] j in
  let* md = require ~path "min_decisions" members in
  let* min_decisions = as_int ~path:(path ^ ".min_decisions") md in
  let* mr = require ~path "mistake_ratio" members in
  let* mistake_ratio = as_num ~path:(path ^ ".mistake_ratio") mr in
  Ok { Config.min_decisions; mistake_ratio }

let parse_cache ~path j =
  let* members =
    fields ~path
      ~known:
        [
          "capacity_blocks";
          "alloc_policy";
          "max_managers";
          "max_levels";
          "max_file_records";
          "max_placeholders";
          "revocation";
          "shared_files";
        ]
      j
  in
  let* cb = require ~path "capacity_blocks" members in
  let* capacity_blocks = as_int ~path:(path ^ ".capacity_blocks") cb in
  let* alloc_policy =
    match field "alloc_policy" members with
    | None -> Ok Config.Lru_sp
    | Some v ->
      let path = path ^ ".alloc_policy" in
      let* s = as_str ~path v in
      (match Config.alloc_policy_of_string s with
      | Some p -> Ok p
      | None ->
        err path
          (Printf.sprintf
             "unknown allocation policy %S (expected global-lru, alloc-lru, lru-s, \
              lru-sp or clock-sp)"
             s))
  in
  let* max_managers = opt_field ~path "max_managers" as_int members in
  let* max_levels = opt_field ~path "max_levels" as_int members in
  let* max_file_records = opt_field ~path "max_file_records" as_int members in
  let* max_placeholders = opt_field ~path "max_placeholders" as_int members in
  let* revocation = opt_field ~path "revocation" parse_revocation members in
  let* shared_files =
    match field "shared_files" members with
    | None -> Ok None
    | Some v ->
      let path = path ^ ".shared_files" in
      let* s = as_str ~path v in
      (match shared_files_of_string s with
      | Some sf -> Ok (Some sf)
      | None ->
        err path (Printf.sprintf "unknown shared_files mode %S (expected transfer or sticky)" s))
  in
  try
    Ok
      (Config.make ~alloc_policy ?max_managers ?max_levels ?max_file_records
         ?max_placeholders ?revocation ?shared_files ~capacity_blocks ())
  with Invalid_argument m -> err path m

let parse_drive ~path j =
  match j with
  | Json.Str name ->
    (match List.assoc_opt name named_drives with
    | Some p -> Ok p
    | None ->
      err path
        (Printf.sprintf "unknown drive %S (expected rz56, rz26 or a parameter object)"
           name))
  | Json.Obj _ ->
    let* members =
      fields ~path
        ~known:
          [
            "name";
            "capacity_blocks";
            "min_seek_ms";
            "avg_seek_ms";
            "max_seek_ms";
            "avg_rot_ms";
            "transfer_mb_per_s";
            "overhead_ms";
            "seq_rot_factor";
          ]
        j
    in
    let str name =
      let* v = require ~path name members in
      as_str ~path:(path ^ "." ^ name) v
    in
    let int name =
      let* v = require ~path name members in
      as_int ~path:(path ^ "." ^ name) v
    in
    let num name =
      let* v = require ~path name members in
      as_num ~path:(path ^ "." ^ name) v
    in
    let* name = str "name" in
    let* capacity_blocks = int "capacity_blocks" in
    let* min_seek_ms = num "min_seek_ms" in
    let* avg_seek_ms = num "avg_seek_ms" in
    let* max_seek_ms = num "max_seek_ms" in
    let* avg_rot_ms = num "avg_rot_ms" in
    let* transfer_mb_per_s = num "transfer_mb_per_s" in
    let* overhead_ms = num "overhead_ms" in
    let* seq_rot_factor = num "seq_rot_factor" in
    Ok
      {
        Params.name;
        capacity_blocks;
        min_seek_ms;
        avg_seek_ms;
        max_seek_ms;
        avg_rot_ms;
        transfer_mb_per_s;
        overhead_ms;
        seq_rot_factor;
      }
  | _ -> err path "expected a drive name or parameter object"

let parse_disk ~path j =
  let* members = fields ~path ~known:[ "drive"; "sched" ] j in
  let* d = require ~path "drive" members in
  let* params = parse_drive ~path:(path ^ ".drive") d in
  let* sched =
    match field "sched" members with
    | None -> Ok Disk.Fcfs
    | Some v ->
      let path = path ^ ".sched" in
      let* s = as_str ~path v in
      (match sched_of_string s with
      | Some sched -> Ok sched
      | None ->
        err path (Printf.sprintf "unknown disk scheduler %S (expected fcfs or scan)" s))
  in
  Ok { params; sched }

let parse_workload ~n_disks ~path j =
  let* members =
    fields ~path ~known:[ "app"; "program"; "smart"; "disk"; "manager"; "file_blocks" ] j
  in
  let* file_blocks = opt_field ~path "file_blocks" as_int members in
  (* A workload is either a catalog name ("app") or an inline workload
     IR program ("program"), never both. *)
  let* app, smart_default, disk_default =
    match (field "app" members, field "program" members) with
    | Some _, Some _ -> err path {|pass "app" or "program", not both|}
    | None, None -> err path {|missing required field "app" or "program"|}
    | Some a, None ->
      let* name = as_str ~path:(path ^ ".app") a in
      let* entry =
        match Catalog.resolve ?file_blocks name with
        | Ok e -> Ok e
        | Error msg -> err (path ^ ".app") msg
      in
      Ok (Named name, entry.Catalog.smart_default, entry.Catalog.disk)
    | None, Some p ->
      let path = path ^ ".program" in
      let* () =
        if file_blocks = None then Ok ()
        else err path "an inline program does not take file_blocks"
      in
      let* program = Wir.of_json_at ~label:"scenario" ~path p in
      let* () = Wir.validate_at ~label:"scenario" ~path program in
      Ok (Inline program, true, 0)
  in
  let* smart =
    match field "smart" members with
    | None -> Ok smart_default
    | Some v -> as_bool ~path:(path ^ ".smart") v
  in
  let* disk =
    match field "disk" members with
    | None -> Ok disk_default
    | Some v -> as_int ~path:(path ^ ".disk") v
  in
  let* manager = opt_field ~path "manager" as_str members in
  (* The registry's own message (valid names, near-match suggestion)
     is surfaced verbatim under this workload's manager path. *)
  let* () =
    match check_manager manager with
    | Ok () -> Ok ()
    | Error msg -> err (path ^ ".manager") msg
  in
  if disk < 0 || disk >= n_disks then
    err (path ^ ".disk")
      (Printf.sprintf "disk index %d out of range (%d disk%s)" disk n_disks
         (if n_disks = 1 then "" else "s"))
  else Ok { app; smart; disk; file_blocks; manager }

let parse_obs ~path j =
  let* members = fields ~path ~known:[ "trace"; "metrics" ] j in
  let* trace_path = opt_field ~path "trace" as_str members in
  let* metrics_path = opt_field ~path "metrics" as_str members in
  Ok { trace_path; metrics_path }

let parse_link_fields ~path members =
  let* v = require ~path "latency_ms" members in
  let* latency_ms = as_num ~path:(path ^ ".latency_ms") v in
  let* v = require ~path "bandwidth_mb_per_s" members in
  let* bandwidth_mb_per_s = as_num ~path:(path ^ ".bandwidth_mb_per_s") v in
  Ok { latency_ms; bandwidth_mb_per_s }

let parse_fleet ~path j =
  let* members =
    fields ~path
      ~known:
        [ "clients"; "shared_files"; "server"; "network"; "links"; "lookahead_ms" ]
      j
  in
  let* v = require ~path "clients" members in
  let* clients = as_int ~path:(path ^ ".clients") v in
  let* shared_files =
    match field "shared_files" members with
    | None -> Ok 0
    | Some v -> as_int ~path:(path ^ ".shared_files") v
  in
  let* s = require ~path "server" members in
  let* server =
    let path = path ^ ".server" in
    let* members = fields ~path ~known:[ "cache_blocks"; "drive" ] s in
    let* v = require ~path "cache_blocks" members in
    let* server_cache_blocks = as_int ~path:(path ^ ".cache_blocks") v in
    let* v = require ~path "drive" members in
    let* server_drive = parse_drive ~path:(path ^ ".drive") v in
    Ok { server_cache_blocks; server_drive }
  in
  let* n = require ~path "network" members in
  let* net =
    let path = path ^ ".network" in
    let* members = fields ~path ~known:[ "latency_ms"; "bandwidth_mb_per_s" ] n in
    parse_link_fields ~path members
  in
  let* links =
    match field "links" members with
    | None -> Ok []
    | Some v ->
      let path = path ^ ".links" in
      let* l = as_list ~path v in
      mapi_result ~path
        (fun ~path j ->
          let* members =
            fields ~path ~known:[ "client"; "latency_ms"; "bandwidth_mb_per_s" ] j
          in
          let* v = require ~path "client" members in
          let* client = as_int ~path:(path ^ ".client") v in
          let* link = parse_link_fields ~path members in
          Ok (client, link))
        l
  in
  let* lookahead_ms = opt_field ~path "lookahead_ms" as_num members in
  let f =
    { clients; shared_files; server; net; links; lookahead_ms }
  in
  match fleet_check f with
  | Ok () -> Ok f
  | Error (sub, msg) -> err (path ^ sub) msg

let of_json j =
  let path = "$" in
  let* members =
    fields ~path
      ~known:
        [ "schema"; "seed"; "cache"; "cpu"; "fs"; "disks"; "workloads"; "fleet"; "obs" ]
      j
  in
  let* s = require ~path "schema" members in
  let* schema_str = as_str ~path:"$.schema" s in
  let* () =
    if schema_str = schema then Ok ()
    else
      err "$.schema"
        (Printf.sprintf "unsupported schema %S (expected %s)" schema_str schema)
  in
  let* seed =
    match field "seed" members with
    | None -> Ok 0
    | Some v -> as_int ~path:"$.seed" v
  in
  let* c = require ~path "cache" members in
  let* config = parse_cache ~path:"$.cache" c in
  let* hit_cost, io_cpu_cost =
    match field "cpu" members with
    | None -> Ok (None, None)
    | Some v ->
      let path = "$.cpu" in
      let* members = fields ~path ~known:[ "hit_cost"; "io_cpu_cost" ] v in
      let* hit_cost = opt_field ~path "hit_cost" as_num members in
      let* io_cpu_cost = opt_field ~path "io_cpu_cost" as_num members in
      Ok (hit_cost, io_cpu_cost)
  in
  let* readahead, write_cluster, scattered_layout, update_interval =
    match field "fs" members with
    | None -> Ok (None, None, false, 30.0)
    | Some v ->
      let path = "$.fs" in
      let* members =
        fields ~path
          ~known:[ "readahead"; "write_cluster"; "scattered_layout"; "update_interval_s" ]
          v
      in
      let* readahead = opt_field ~path "readahead" as_bool members in
      let* write_cluster = opt_field ~path "write_cluster" as_int members in
      let* scattered = opt_field ~path "scattered_layout" as_bool members in
      let* interval = opt_field ~path "update_interval_s" as_num members in
      Ok
        ( readahead,
          write_cluster,
          Option.value scattered ~default:false,
          Option.value interval ~default:30.0 )
  in
  let* disks =
    match field "disks" members with
    | None -> Ok default_disks
    | Some v ->
      let* l = as_list ~path:"$.disks" v in
      if l = [] then err "$.disks" "disks must be non-empty"
      else mapi_result ~path:"$.disks" parse_disk l
  in
  let* w = require ~path "workloads" members in
  let* wl = as_list ~path:"$.workloads" w in
  let* () = if wl = [] then err "$.workloads" "workloads must be non-empty" else Ok () in
  let* workloads =
    mapi_result ~path:"$.workloads" (parse_workload ~n_disks:(List.length disks)) wl
  in
  let* fleet =
    match field "fleet" members with
    | None -> Ok None
    | Some v ->
      let* f = parse_fleet ~path:"$.fleet" v in
      Ok (Some f)
  in
  let* obs =
    match field "obs" members with
    | None -> Ok no_obs
    | Some v -> parse_obs ~path:"$.obs" v
  in
  Ok
    {
      seed;
      config;
      update_interval;
      hit_cost;
      io_cpu_cost;
      write_cluster;
      readahead;
      scattered_layout;
      disks;
      workloads;
      fleet;
      obs;
    }

let to_string t = Json.to_string (to_json t)

let of_string s =
  match Json.of_string s with
  | Error e -> Error ("scenario: invalid JSON: " ^ e)
  | Ok j -> of_json j

let save t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string t);
      output_char oc '\n')

let load path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error e -> Error ("scenario: " ^ e)
  | contents -> of_string contents

let hash t = Digest.to_hex (Digest.string (to_string t))

let hash_list ts = Digest.to_hex (Digest.string (String.concat "\n" (List.map hash ts)))
