(** The catalog of named applications a scenario can reference.

    This is the single home of the paper's application suite and its
    disk assignment (Sec. 5.2: cs1–cs3, din, gli and ldk live on the
    RZ56, disk 0; pjn and sort on the RZ26, disk 1), plus the readN /
    readN! microbenchmark family of Sec. 6.1. Everything that needs to
    turn an application {e name} into a runnable {!Acfc_workload.App.t}
    — scenario files, the experiment grids, the command line — resolves
    it here, so the assignment can never drift between layers. *)

type entry = {
  app : Acfc_workload.App.t;
  disk : int;  (** the paper's default disk index for this application *)
  smart_default : bool;
      (** whether the application applies its caching strategy unless
          explicitly asked not to (paper apps and readN! do; plain
          readN is oblivious by construction) *)
}

val apps : (string * Acfc_workload.App.t * int) list
(** The eight paper applications as (name, app, default disk), in the
    paper's Figure 4 order. *)

val app_names : string list
(** Names of {!apps}, in order. *)

val resolve : ?file_blocks:int -> string -> (entry, string) result
(** Resolve an application name: one of {!apps}, or ["readN"] /
    ["readN!"] (e.g. ["read300"], ["read300!"]) for the oblivious /
    foolish-MRU ReadN microbenchmark. [file_blocks] sizes the readN
    backing file (default 1200 blocks) and is an error for any other
    application. The error string names the unknown application or the
    misapplied knob. *)

val find : string -> Acfc_workload.App.t * int
(** [resolve] without knobs, for contexts that want an exception:
    raises [Not_found] on an unknown name. *)
