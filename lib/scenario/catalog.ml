open Acfc_workload

type entry = { app : App.t; disk : int; smart_default : bool }

let apps =
  [
    ("din", Dinero.din, 0);
    ("cs1", Cscope.cs1, 0);
    ("cs3", Cscope.cs3, 0);
    ("cs2", Cscope.cs2, 0);
    ("gli", Glimpse.gli, 0);
    ("ldk", Ld.ldk, 0);
    ("pjn", Postgres.pjn, 1);
    ("sort", Sort_app.sort, 1);
  ]

let app_names = List.map (fun (n, _, _) -> n) apps

(* "read300" -> Some (300, `Oblivious); "read300!" -> Some (300, `Foolish) *)
let parse_readn name =
  let foolish = String.length name > 0 && name.[String.length name - 1] = '!' in
  let base = if foolish then String.sub name 0 (String.length name - 1) else name in
  if String.length base > 4 && String.sub base 0 4 = "read" then
    match int_of_string_opt (String.sub base 4 (String.length base - 4)) with
    | Some n when n > 0 -> Some (n, if foolish then `Foolish else `Oblivious)
    | Some _ | None -> None
  else None

let resolve ?file_blocks name =
  match List.find_opt (fun (n, _, _) -> n = name) apps with
  | Some (_, app, disk) ->
    (match file_blocks with
    | Some _ ->
      Error
        (Printf.sprintf "application %S does not take file_blocks (readN only)" name)
    | None -> Ok { app; disk; smart_default = true })
  | None ->
    (match parse_readn name with
    | Some (n, mode) ->
      Ok
        {
          app = Readn.app ?file_blocks ~n ~mode ();
          disk = 0;
          smart_default = (mode = `Foolish);
        }
    | None ->
      Error
        (Printf.sprintf
           "unknown application %S (expected one of %s, or readN / readN!)" name
           (String.concat ", " app_names)))

let find name =
  match resolve name with
  | Ok { app; disk; _ } -> (app, disk)
  | Error _ -> raise Not_found
