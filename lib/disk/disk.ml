open Acfc_sim
module Obs = Acfc_obs

type kind = Read | Write

type sched = Fcfs | Scan

type waiter = { enqueued_at : float; resume : unit -> unit }

type obs_state = {
  sink : Obs.Sink.t;
  h_service : Obs.Metrics.histogram;  (* seconds per request, in service *)
  h_wait : Obs.Metrics.histogram;  (* seconds queued before service *)
}

type t = {
  engine : Engine.t;
  params : Params.t;
  bus : Bus.t option;
  rng : Rng.t option;
  sched : sched;
  mutable obs : obs_state option;
  mutable busy : bool;
  queue : waiter Sched_queue.t;  (* indexed by discipline; see Sched_queue *)
  mutable head : int;  (* block address after the last transfer *)
  mutable reads : int;
  mutable writes : int;
  mutable sequential_hits : int;
  mutable blocks_transferred : int;
  mutable busy_time : float;
  mutable total_wait : float;
}

let create engine ?bus ?rng ?(sched = Fcfs) params =
  {
    engine;
    params;
    bus;
    rng;
    sched;
    obs = None;
    busy = false;
    queue =
      Sched_queue.create
        (match sched with Fcfs -> Sched_queue.Fcfs | Scan -> Sched_queue.Scan);
    head = 0;
    reads = 0;
    writes = 0;
    sequential_hits = 0;
    blocks_transferred = 0;
    busy_time = 0.0;
    total_wait = 0.0;
  }

let params t = t.params

let sched t = t.sched

let queue_length t = Sched_queue.length t.queue

let set_obs t obs =
  match obs with
  | None -> t.obs <- None
  | Some sink ->
    let m = Obs.Sink.metrics sink in
    let name = t.params.Params.name in
    let h label = Obs.Metrics.histogram m (Printf.sprintf "disk.%s.%s" name label) in
    let g label read = Obs.Metrics.gauge m (Printf.sprintf "disk.%s.%s" name label) read in
    g "reads" (fun () -> float_of_int t.reads);
    g "writes" (fun () -> float_of_int t.writes);
    g "sequential_hits" (fun () -> float_of_int t.sequential_hits);
    g "blocks_transferred" (fun () -> float_of_int t.blocks_transferred);
    g "busy_s" (fun () -> t.busy_time);
    g "wait_s" (fun () -> t.total_wait);
    g "queue_depth" (fun () -> float_of_int (queue_length t));
    t.obs <- Some { sink; h_service = h "service_s"; h_wait = h "wait_s_hist" }

let check_addr t addr =
  if addr < 0 || addr >= t.params.Params.capacity_blocks then
    invalid_arg
      (Printf.sprintf "Disk.io(%s): address %d out of range" t.params.Params.name addr)

let rotational_latency t ~sequential =
  let avg = t.params.Params.avg_rot_ms /. 1000.0 in
  if sequential then t.params.Params.seq_rot_factor *. avg
  else
    match t.rng with
    | None -> avg
    | Some rng -> Rng.float rng (2.0 *. avg)

let service_time t ~addr =
  check_addr t addr;
  let sequential = addr = t.head in
  let distance = abs (addr - t.head) in
  let avg_rot = t.params.Params.avg_rot_ms /. 1000.0 in
  (t.params.Params.overhead_ms /. 1000.0)
  +. Params.seek_time_s t.params ~distance
  +. (if sequential then t.params.Params.seq_rot_factor *. avg_rot else avg_rot)
  +. Params.transfer_time_s t.params

(* Choose which waiter the freed drive serves next: an O(1)/O(log n)
   lookup in the indexed queue (arrival order for FCFS, elevator order
   from the current head position for SCAN). *)
let pick_next t = Sched_queue.pick t.queue ~head:t.head

let serve t kind ~addr ~blocks ~waited =
  let started = Engine.now t.engine in
  let sequential = addr = t.head in
  if sequential then t.sequential_hits <- t.sequential_hits + 1;
  let distance = abs (addr - t.head) in
  (* Positioning, decomposed so the trace can attribute the time. *)
  let seek =
    (t.params.Params.overhead_ms /. 1000.0) +. Params.seek_time_s t.params ~distance
  in
  let rot = rotational_latency t ~sequential in
  Engine.delay t.engine (seek +. rot);
  (* A clustered request streams its blocks in one rotation-aligned
     burst: one positioning, [blocks] transfers. *)
  let transfer = float_of_int blocks *. Params.transfer_time_s t.params in
  (match t.bus with
  | Some bus -> Bus.transfer bus ~duration:transfer
  | None -> Engine.delay t.engine transfer);
  t.head <- addr + blocks;
  t.blocks_transferred <- t.blocks_transferred + blocks;
  (match kind with
  | Read -> t.reads <- t.reads + 1
  | Write -> t.writes <- t.writes + 1);
  let service = Engine.now t.engine -. started in
  t.busy_time <- t.busy_time +. service;
  match t.obs with
  | None -> ()
  | Some { sink; h_service; h_wait } ->
    Obs.Metrics.observe h_service service;
    Obs.Metrics.observe h_wait waited;
    Obs.Sink.emit sink
      (Obs.Trace.Disk_io
         {
           disk = t.params.Params.name;
           kind = (match kind with Read -> "read" | Write -> "write");
           addr;
           blocks;
           seek;
           rot;
           xfer = transfer;
           wait = waited;
         })

let io ?(blocks = 1) t kind ~addr =
  check_addr t addr;
  if blocks < 1 || addr + blocks > t.params.Params.capacity_blocks then
    invalid_arg "Disk.io: bad block count";
  let waited =
    if t.busy then begin
      let enqueued_at = Engine.now t.engine in
      Engine.suspend t.engine (fun resume ->
          Sched_queue.add t.queue ~addr { enqueued_at; resume });
      (* Woken holding the drive: [busy] stayed true across the handoff. *)
      let waited = Engine.now t.engine -. enqueued_at in
      t.total_wait <- t.total_wait +. waited;
      waited
    end
    else begin
      t.busy <- true;
      0.0
    end
  in
  let handoff () =
    match pick_next t with
    | Some w -> Engine.schedule t.engine ~at:(Engine.now t.engine) w.resume
    | None -> t.busy <- false
  in
  (try serve t kind ~addr ~blocks ~waited
   with e ->
     handoff ();
     raise e);
  handoff ()

let reads t = t.reads

let writes t = t.writes

let sequential_hits t = t.sequential_hits

let blocks_transferred t = t.blocks_transferred

let busy_time t = t.busy_time

let total_wait t = t.total_wait

let reset_stats t =
  t.reads <- 0;
  t.writes <- 0;
  t.sequential_hits <- 0;
  t.blocks_transferred <- 0;
  t.busy_time <- 0.0;
  t.total_wait <- 0.0
