(* Indexed pending-request queue for the disk.

   The drive's dispatch decision used to fold and re-filter an unsorted
   waiter list on every request completion — O(n) per event, O(n²) per
   busy period. This module replaces it with structures whose per-event
   cost is constant or logarithmic while reproducing the old picker's
   choices exactly:

   - FCFS: a plain FIFO. Sequence numbers are assigned in [add] order,
     so popping the front is exactly "minimum sequence number".
   - SCAN: the classic two-heap elevator. The [up] heap orders waiters
     by (addr, seq) ascending — "nearest request at or above the head,
     oldest first on address ties" is its top; the [down] heap orders by
     addr descending then seq ascending — nearest request at or below
     the head. Waiters are partitioned between the heaps against the
     head position, and because the head only moves monotonically within
     a sweep, each waiter migrates between heaps at most once per sweep
     reversal (amortised O(log n) per event; still correct, merely
     slower, if the head ever jumped arbitrarily). When the sweep
     direction has no candidates the sweep reverses, and the other
     heap's top is exactly the old picker's choice: every remaining
     address is strictly on that side, so minimum distance is the
     nearest address there, ties to the oldest arrival.

   The elevator heaps are hand-specialised on parallel int arrays
   rather than built on {!Acfc_sim.Heap}: the dispatch loop then does
   no allocation at all (the generic heap would box each (addr, seq,
   payload) element and make an indirect [leq] call per sift step).

   [Naive] is a straight port of the original list-based picker, kept as
   the reference implementation for the equivalence tests and the bench
   [check] replay. *)

type discipline = Fcfs | Scan

(* A binary heap over (addr, seq, payload) triples kept in parallel
   arrays. [asc = true] orders by (addr, seq) ascending; [asc = false]
   by addr descending then seq ascending. Seqs are unique, so the order
   is total either way. *)
module Eheap = struct
  type 'a t = {
    asc : bool;
    mutable addrs : int array;
    mutable seqs : int array;
    mutable payloads : 'a array;
    mutable size : int;
  }

  let create asc = { asc; addrs = [||]; seqs = [||]; payloads = [||]; size = 0 }

  let length t = t.size

  (* Does slot [i] sort strictly before slot [j]? *)
  let before t i j =
    let ai = t.addrs.(i) and aj = t.addrs.(j) in
    if ai = aj then t.seqs.(i) < t.seqs.(j)
    else if t.asc then ai < aj
    else ai > aj

  let swap t i j =
    let a = t.addrs.(i) in
    t.addrs.(i) <- t.addrs.(j);
    t.addrs.(j) <- a;
    let s = t.seqs.(i) in
    t.seqs.(i) <- t.seqs.(j);
    t.seqs.(j) <- s;
    let p = t.payloads.(i) in
    t.payloads.(i) <- t.payloads.(j);
    t.payloads.(j) <- p

  let rec sift_up t i =
    if i > 0 then begin
      let parent = (i - 1) / 2 in
      if before t i parent then begin
        swap t i parent;
        sift_up t parent
      end
    end

  let rec sift_down t i =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let first = ref i in
    if l < t.size && before t l !first then first := l;
    if r < t.size && before t r !first then first := r;
    if !first <> i then begin
      swap t i !first;
      sift_down t !first
    end

  let grow t payload =
    let cap = Array.length t.addrs in
    if t.size = cap then begin
      let ncap = if cap = 0 then 16 else cap * 2 in
      let naddrs = Array.make ncap 0 and nseqs = Array.make ncap 0 in
      let npayloads = Array.make ncap payload in
      Array.blit t.addrs 0 naddrs 0 t.size;
      Array.blit t.seqs 0 nseqs 0 t.size;
      Array.blit t.payloads 0 npayloads 0 t.size;
      t.addrs <- naddrs;
      t.seqs <- nseqs;
      t.payloads <- npayloads
    end

  let push t ~addr ~seq payload =
    grow t payload;
    let i = t.size in
    t.addrs.(i) <- addr;
    t.seqs.(i) <- seq;
    t.payloads.(i) <- payload;
    t.size <- i + 1;
    sift_up t i

  (* Precondition: non-empty (callers check [length]). *)
  let top_addr t = t.addrs.(0)

  let pop t =
    let addr = t.addrs.(0) and seq = t.seqs.(0) and payload = t.payloads.(0) in
    let last = t.size - 1 in
    t.size <- last;
    t.addrs.(0) <- t.addrs.(last);
    t.seqs.(0) <- t.seqs.(last);
    t.payloads.(0) <- t.payloads.(last);
    (* Drop the stale slot so the GC can reclaim the payload. *)
    t.payloads.(last) <- t.payloads.(0);
    if last > 0 then sift_down t 0;
    (addr, seq, payload)

  let move ~from ~into =
    let addr, seq, payload = pop from in
    push into ~addr ~seq payload
end

type 'a scan_state = {
  up : 'a Eheap.t;  (* candidates at or above the head *)
  down : 'a Eheap.t;  (* candidates at or below the head *)
  mutable last_head : int;  (* partition point for new arrivals *)
}

type 'a impl =
  | Fifo of 'a Queue.t
  | Elevator of 'a scan_state

type 'a t = {
  discipline : discipline;
  mutable len : int;
  mutable next_seq : int;
  mutable sweep_up : bool;
  impl : 'a impl;
}

let create discipline =
  let impl =
    match discipline with
    | Fcfs -> Fifo (Queue.create ())
    | Scan ->
      Elevator { up = Eheap.create true; down = Eheap.create false; last_head = 0 }
  in
  { discipline; len = 0; next_seq = 0; sweep_up = true; impl }

let discipline t = t.discipline

let length t = t.len

let is_empty t = t.len = 0

let sweep_up t = t.sweep_up

let add t ~addr payload =
  (match t.impl with
  | Fifo q -> Queue.push payload q
  | Elevator s ->
    let seq = t.next_seq in
    t.next_seq <- seq + 1;
    (* Best-effort placement against the last known head; [pick]
       migrates anything the head has since passed. *)
    let goes_up = if t.sweep_up then addr >= s.last_head else addr > s.last_head in
    Eheap.push (if goes_up then s.up else s.down) ~addr ~seq payload);
  t.len <- t.len + 1

(* Repartition both heaps against the current head. Ordered tops make
   each direction a prefix drain: once the top is on the correct side,
   so is the rest of that heap. While sweeping up, "at or above head"
   belongs to [up] and strictly below to [down]; sweeping down, "at or
   below" belongs to [down] and strictly above to [up]. *)
let repartition_up_sweep s head =
  while Eheap.length s.down > 0 && Eheap.top_addr s.down >= head do
    Eheap.move ~from:s.down ~into:s.up
  done;
  while Eheap.length s.up > 0 && Eheap.top_addr s.up < head do
    Eheap.move ~from:s.up ~into:s.down
  done

let repartition_down_sweep s head =
  while Eheap.length s.up > 0 && Eheap.top_addr s.up <= head do
    Eheap.move ~from:s.up ~into:s.down
  done;
  while Eheap.length s.down > 0 && Eheap.top_addr s.down > head do
    Eheap.move ~from:s.down ~into:s.up
  done

let third (_, _, p) = p

let pick t ~head =
  if t.len = 0 then None
  else begin
    t.len <- t.len - 1;
    match t.impl with
    | Fifo q -> Some (Queue.pop q)
    | Elevator s ->
      s.last_head <- head;
      if t.sweep_up then begin
        repartition_up_sweep s head;
        if Eheap.length s.up > 0 then Some (third (Eheap.pop s.up))
        else begin
          (* Nothing ahead: reverse the sweep. Every waiter is below
             [head], so the nearest is the down heap's top. *)
          t.sweep_up <- false;
          Some (third (Eheap.pop s.down))
        end
      end
      else begin
        repartition_down_sweep s head;
        if Eheap.length s.down > 0 then Some (third (Eheap.pop s.down))
        else begin
          t.sweep_up <- true;
          Some (third (Eheap.pop s.up))
        end
      end
  end

(* The original unsorted-list implementation (one fold per pick for
   FCFS; a filter plus a fold for SCAN), verbatim semantics. O(n) per
   pick — reference only. *)
module Naive = struct
  type 'a waiter = { w_addr : int; w_seq : int; payload : 'a }

  type 'a t = {
    discipline : discipline;
    mutable queue : 'a waiter list;
    mutable next_seq : int;
    mutable sweep_up : bool;
  }

  let create discipline = { discipline; queue = []; next_seq = 0; sweep_up = true }

  let length t = List.length t.queue

  let sweep_up t = t.sweep_up

  let add t ~addr payload =
    let seq = t.next_seq in
    t.next_seq <- seq + 1;
    t.queue <- { w_addr = addr; w_seq = seq; payload } :: t.queue

  let pick t ~head =
    match t.queue with
    | [] -> None
    | queue ->
      let best =
        match t.discipline with
        | Fcfs ->
          List.fold_left
            (fun best w ->
              match best with Some b when b.w_seq < w.w_seq -> best | _ -> Some w)
            None queue
        | Scan ->
          let ahead =
            List.filter
              (fun w -> if t.sweep_up then w.w_addr >= head else w.w_addr <= head)
              queue
          in
          let candidates =
            match ahead with
            | [] ->
              t.sweep_up <- not t.sweep_up;
              queue
            | _ -> ahead
          in
          List.fold_left
            (fun best w ->
              match best with
              | None -> Some w
              | Some b ->
                let bd = abs (b.w_addr - head) and wd = abs (w.w_addr - head) in
                if wd < bd || (wd = bd && w.w_seq < b.w_seq) then Some w else best)
            None candidates
      in
      (match best with
      | Some w ->
        t.queue <- List.filter (fun x -> x != w) t.queue;
        Some w.payload
      | None -> None)
end
