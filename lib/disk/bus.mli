(** Shared SCSI bus.

    The paper's testbed connects both disks to a single SCSI bus. Disks
    seek and rotate independently but hold the bus during data transfer,
    so concurrent transfers serialise. One {!t} may be shared by any
    number of {!Disk.t}. *)

type t

val create : Acfc_sim.Engine.t -> ?name:string -> unit -> t

val transfer : t -> duration:float -> unit
(** Hold the bus for [duration] seconds (blocking fiber call). *)

val busy_time : t -> float
(** Total bus-seconds of transfer so far. *)

val contended_wait : t -> float
(** Total time requests spent waiting for the bus. *)

val set_obs : t -> Acfc_obs.Sink.t option -> unit
(** Register the bus statistics (busy time, contended wait, transfers
    served, queue depth) as gauges on the sink's metrics registry. *)
