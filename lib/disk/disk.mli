(** Simulated SCSI disk drive.

    Service model per request, from the head's last position:

    - fixed controller overhead;
    - seek over the block distance ({!Params.seek_time_s});
    - rotational latency: a small interleave penalty
      ({!Params.t.seq_rot_factor} of the average) when the request is
      sequential with the previous one, otherwise drawn uniformly in
      [\[0, 2·avg_rot\]] (or the average, without an rng);
    - transfer of one block, holding the (optional) shared {!Bus.t}.

    Queueing is governed by the {!sched} discipline: FCFS (what Ultrix
    does, and the default) or SCAN — the classic elevator, which serves
    the nearest request in the direction the head is sweeping and is
    provided for the paper's "interaction with disk scheduling"
    future-work question (see the ablation benchmarks).

    All calls that perform I/O must run inside a simulation fiber. *)

type t

type kind = Read | Write

(** Queueing discipline for waiting requests. *)
type sched =
  | Fcfs  (** first-come first-served *)
  | Scan  (** elevator: sweep toward the nearest request, reverse at the ends *)

val create :
  Acfc_sim.Engine.t ->
  ?bus:Bus.t ->
  ?rng:Acfc_sim.Rng.t ->
  ?sched:sched ->
  Params.t ->
  t
(** [rng] drives rotational-latency draws; omit it for a deterministic
    drive that always pays the average rotational latency. [sched]
    defaults to {!Fcfs}. *)

val params : t -> Params.t

val sched : t -> sched

val set_obs : t -> Acfc_obs.Sink.t option -> unit
(** Install the observability sink: each request emits a
    {!Acfc_obs.Trace.Disk_io} event with its seek / rotation / transfer
    / queue-wait decomposition, service and wait latencies feed
    histograms ([disk.<name>.service_s], [disk.<name>.wait_s_hist]),
    and the drive counters are registered as gauges. *)

val io : ?blocks:int -> t -> kind -> addr:int -> unit
(** [io t kind ~addr] performs one request at absolute block address
    [addr], blocking the calling fiber for queueing plus service time.
    [blocks] (default 1) transfers a contiguous cluster in the same
    request: one positioning, [blocks] transfers — the disk-block
    clustering of McVoy & Kleiman that the paper lists as future
    interaction work. Raises [Invalid_argument] if the extent is outside
    the disk. *)

val service_time : t -> addr:int -> float
(** Service time (seconds, excluding queueing and bus contention) that
    the next request at [addr] would cost, without performing it. Uses
    the average rotational latency; exposed for tests and calibration. *)

(** {2 Statistics} *)

val reads : t -> int

val writes : t -> int

val sequential_hits : t -> int
(** Requests that were sequential with their predecessor. *)

val blocks_transferred : t -> int
(** Total blocks moved; exceeds [reads + writes] when requests are
    clustered. *)

val busy_time : t -> float
(** Total drive-seconds spent in service. *)

val total_wait : t -> float
(** Total queueing delay endured by requests at this drive. *)

val queue_length : t -> int
(** Requests currently waiting (excluding the one in service). *)

val reset_stats : t -> unit
