(** Indexed pending-request queue for the disk's dispatch decision.

    Replaces the per-completion fold/filter over an unsorted waiter list
    with an O(1) FIFO (FCFS) or an address-sorted map with per-address
    FIFOs (SCAN), reproducing the original picker's choices exactly:
    minimum arrival order for FCFS; nearest address in the sweep
    direction, ties to the oldest arrival, reversing the sweep when the
    direction is empty, for SCAN. See docs/PERF.md for the measured
    effect. *)

type discipline = Fcfs | Scan

type 'a t

val create : discipline -> 'a t

val discipline : 'a t -> discipline

val length : 'a t -> int
(** Waiters currently queued. O(1). *)

val is_empty : 'a t -> bool

val sweep_up : 'a t -> bool
(** Current SCAN sweep direction (true for FCFS queues, where it is
    never consulted). *)

val add : 'a t -> addr:int -> 'a -> unit
(** Enqueue a waiter for block address [addr]. Arrival order is the
    [add] order. O(1) for FCFS, O(log n) for SCAN. *)

val pick : 'a t -> head:int -> 'a option
(** Remove and return the waiter the drive serves next, given the head
    parked at block [head]; [None] iff the queue is empty. May reverse
    the sweep direction (SCAN). O(1) for FCFS, O(log n) for SCAN. *)

(** The original unsorted-list picker, kept verbatim as the reference
    for equivalence tests and the bench [check] replay. O(n) per pick. *)
module Naive : sig
  type 'a t

  val create : discipline -> 'a t

  val length : 'a t -> int

  val sweep_up : 'a t -> bool

  val add : 'a t -> addr:int -> 'a -> unit

  val pick : 'a t -> head:int -> 'a option
end
