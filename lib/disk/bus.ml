open Acfc_sim

type t = Resource.t

let create engine ?(name = "scsi-bus") () = Resource.create engine ~name ~servers:1 ()

let transfer t ~duration = Resource.use t ~service:duration

let busy_time = Resource.busy_time

let contended_wait = Resource.total_wait

let set_obs t obs =
  match obs with
  | None -> ()
  | Some sink ->
    let m = Acfc_obs.Sink.metrics sink in
    let g label read =
      Acfc_obs.Metrics.gauge m (Printf.sprintf "bus.%s.%s" (Resource.name t) label) read
    in
    g "busy_s" (fun () -> Resource.busy_time t);
    g "wait_s" (fun () -> Resource.total_wait t);
    g "served" (fun () -> float_of_int (Resource.served t));
    g "queue_depth" (fun () -> float_of_int (Resource.queue_length t))
