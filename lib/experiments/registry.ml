module Catalog = Acfc_scenario.Catalog

let apps = Catalog.apps

let find = Catalog.find

let fig5_combos =
  [
    [ "cs2"; "gli" ];
    [ "cs3"; "ldk" ];
    [ "gli"; "sort" ];
    [ "din"; "sort" ];
    [ "sort"; "ldk" ];
    [ "pjn"; "ldk" ];
    [ "din"; "cs2"; "ldk" ];
    [ "cs1"; "gli"; "ldk" ];
    [ "din"; "cs3"; "gli"; "ldk" ];
  ]

let fig6_combos =
  [
    [ "cs2"; "gli" ];
    [ "cs3"; "ldk" ];
    [ "din"; "cs2"; "ldk" ];
    [ "cs1"; "gli"; "ldk" ];
    [ "din"; "cs3"; "gli"; "ldk" ];
  ]

let combo_name names = String.concat "+" names

let experiments =
  [
    ("fig4", "per-app elapsed time and block I/Os, LRU-SP vs the original kernel");
    ("fig5", "the nine concurrent mixes under LRU-SP, normalised to the original kernel");
    ("fig6", "ALLOC-LRU vs LRU-SP on five mixes: swapping is necessary");
    ("table1", "placeholder protection of an oblivious ReadN against a foolish Read300");
    ("table2", "smart applications beside an oblivious vs foolish Read300");
    ("table3", "oblivious Read300 beside oblivious vs smart partners, one shared disk");
    ("table4", "oblivious Read300 beside oblivious vs smart partners, own RZ26 disk");
    ("table5", "elapsed seconds per app and cache size, original kernel vs LRU-SP");
    ("table6", "block I/Os per app and cache size, original kernel vs LRU-SP");
    ("ablations", "read-ahead, disk scheduling, update interval, layout, clustering, \
                   CLOCK order and revocation sweeps");
    ("criteria", "the paper's three allocation-policy criteria, checked mechanically");
  ]

let experiment_names = List.map fst experiments

let describe name = List.assoc_opt name experiments
