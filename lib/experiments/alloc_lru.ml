module Config = Acfc_core.Config
module Scenario = Acfc_scenario.Scenario
module Table = Acfc_stats.Table
module Pool = Acfc_par.Pool

type row = {
  combo : string;
  mb : float;
  lru_sp : Measure.m;
  alloc_lru : Measure.m;
}

let scenario ~mb ~alloc_policy ~seed names =
  Scenario.make ~seed ~cache_blocks:(Scenario.blocks_of_mb mb) ~alloc_policy
    (List.map (fun name -> Scenario.workload ~smart:true name) names)

let scenarios ?(runs = 3) ?(sizes = Paper_data.cache_sizes_mb)
    ?(combos = Registry.fig6_combos) () =
  List.concat_map
    (fun names ->
      List.concat_map
        (fun mb ->
          List.concat_map
            (fun alloc_policy ->
              List.init runs (fun seed -> scenario ~mb ~alloc_policy ~seed names))
            [ Config.Lru_sp; Config.Alloc_lru ])
        sizes)
    combos

let measure pool ~runs ~mb ~alloc_policy names =
  let results =
    Measure.repeat_async pool ~runs (fun ~seed ->
        Scenario.run (scenario ~mb ~alloc_policy ~seed names))
  in
  fun () -> Measure.total_summary (results ())

let run ?jobs ?(runs = 3) ?(sizes = Paper_data.cache_sizes_mb)
    ?(combos = Registry.fig6_combos) () =
  Pool.with_pool ?jobs @@ fun pool ->
  List.concat_map
    (fun names ->
      List.map
        (fun mb ->
          let lru_sp = measure pool ~runs ~mb ~alloc_policy:Config.Lru_sp names in
          let alloc_lru =
            measure pool ~runs ~mb ~alloc_policy:Config.Alloc_lru names
          in
          fun () ->
            {
              combo = Registry.combo_name names;
              mb;
              lru_sp = lru_sp ();
              alloc_lru = alloc_lru ();
            })
        sizes)
    combos
  |> List.map (fun force -> force ())

let print ppf rows =
  let table =
    Table.create
      ~columns:
        [
          ("combination", Table.Left);
          ("MB", Table.Right);
          ("elapsed ratio", Table.Right);
          ("I/O ratio", Table.Right);
        ]
  in
  let last = ref "" in
  List.iter
    (fun r ->
      if !last <> "" && !last <> r.combo then Table.add_rule table;
      last := r.combo;
      let elapsed_ratio, ios_ratio = Measure.mean_ratio r.alloc_lru r.lru_sp in
      Table.add_row table
        [ r.combo; Printf.sprintf "%g" r.mb; Measure.f2 elapsed_ratio; Measure.f2 ios_ratio ])
    rows;
  Format.fprintf ppf
    "Figure 6: ALLOC-LRU normalised to LRU-SP (=1.0); values above 1.0 mean@\n\
     ALLOC-LRU is worse, showing that swapping is necessary@\n\
     %a"
    Table.render table
