(** Single-application experiments: Figure 4 and Tables 5–6.

    Each application runs alone, five-run averaged, on its paper disk,
    at each buffer-cache size, twice: under the original kernel
    (global LRU, no application control) and under LRU-SP with the
    application's smart strategy. *)

type row = {
  app : string;
  mb : float;
  original : Measure.m;
  controlled : Measure.m;
}

val scenario :
  mb:float ->
  kernel:[ `Original | `Controlled ] ->
  seed:int ->
  string ->
  Acfc_scenario.Scenario.t
(** The machine description for one grid cell: one application alone at
    a cache size, oblivious under the original kernel or smart under
    LRU-SP. *)

val scenarios :
  ?runs:int ->
  ?sizes:float list ->
  ?apps:string list ->
  unit ->
  Acfc_scenario.Scenario.t list
(** Every scenario {!run} would execute, in grid order. *)

val run :
  ?jobs:int -> ?runs:int -> ?sizes:float list -> ?apps:string list -> unit -> row list
(** Defaults: 3 runs (the paper uses 5), the paper's four cache sizes,
    all eight applications. [jobs] (default
    {!Acfc_par.Pool.default_jobs}) parallelises the grid over domains
    with byte-identical results. *)

val print_elapsed : Format.formatter -> row list -> unit
(** Table 5 reproduction: measured elapsed seconds with ratios, paper
    values alongside. *)

val print_ios : Format.formatter -> row list -> unit
(** Table 6 reproduction. *)

val print_fig4 : Format.formatter -> row list -> unit
(** Figure 4 as numbers: normalised elapsed and block I/Os (original =
    1.0) per application and cache size, paper ratios alongside. *)
