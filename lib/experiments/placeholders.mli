(** Placeholder-protection experiment: Table 1 ("are placeholders
    necessary?").

    A foreground oblivious ReadN (N ∈ {390, 400, 490, 500}) runs
    concurrently with a background Read300, at the 6.4 MB cache size,
    under three settings:

    - Oblivious   — Read300 uses the kernel's LRU (no manager);
    - Unprotected — Read300 foolishly uses MRU and the kernel runs
                    LRU-SP {e without} placeholders (LRU-S);
    - Protected   — Read300 foolishly uses MRU under full LRU-SP.

    If placeholders work, the Protected row's I/O counts return to the
    Oblivious row's level. *)

type setting = Oblivious | Unprotected | Protected

type row = {
  setting : setting;
  n : int;  (** the foreground ReadN's N *)
  foreground : Measure.m;
  placeholders_used : float;  (** mean per run *)
}

val scenario :
  cache_mb:float -> setting:setting -> n:int -> seed:int -> Acfc_scenario.Scenario.t
(** One grid cell: oblivious ReadN beside the setting's Read300
    variant, both on disk 0, under the setting's allocation policy. *)

val scenarios :
  ?runs:int -> ?cache_mb:float -> ?ns:int list -> unit -> Acfc_scenario.Scenario.t list
(** Every scenario {!run} would execute, in grid order. *)

val run : ?jobs:int -> ?runs:int -> ?cache_mb:float -> ?ns:int list -> unit -> row list
(** [jobs] parallelises the grid over domains with byte-identical
    results (default {!Acfc_par.Pool.default_jobs}). *)

val setting_name : setting -> string

val print : Format.formatter -> row list -> unit
