(** Effect of a foolish process on smart applications: Table 2.

    Each of din, cs2, gli, ldk (smart, LRU-SP) runs concurrently with a
    Read300 that is either oblivious (LRU) or foolish (MRU manager);
    the table reports the smart application's elapsed time and block
    I/Os. The paper finds degradation remains — from extra disk load
    and the foolish process's longer residence — motivating revocation. *)

type row = {
  app : string;
  bg_foolish : bool;
  smart_app : Measure.m;  (** the measured smart application *)
}

val scenario :
  cache_mb:float -> bg_foolish:bool -> seed:int -> string -> Acfc_scenario.Scenario.t
(** One grid cell: the named smart application on its paper disk beside
    an oblivious ("read300") or foolish ("read300!") Read300 on disk 0,
    under LRU-SP. *)

val scenarios :
  ?runs:int -> ?cache_mb:float -> ?apps:string list -> unit -> Acfc_scenario.Scenario.t list
(** Every scenario {!run} would execute, in grid order. *)

val run :
  ?jobs:int -> ?runs:int -> ?cache_mb:float -> ?apps:string list -> unit -> row list
(** [jobs] parallelises the grid over domains with byte-identical
    results (default {!Acfc_par.Pool.default_jobs}). *)

val print : Format.formatter -> row list -> unit
