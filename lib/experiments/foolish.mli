(** Effect of a foolish process on smart applications: Table 2.

    Each of din, cs2, gli, ldk (smart, LRU-SP) runs concurrently with a
    Read300 that is either oblivious (LRU) or foolish (MRU manager);
    the table reports the smart application's elapsed time and block
    I/Os. The paper finds degradation remains — from extra disk load
    and the foolish process's longer residence — motivating revocation. *)

type row = {
  app : string;
  bg_foolish : bool;
  smart_app : Measure.m;  (** the measured smart application *)
}

val run :
  ?jobs:int -> ?runs:int -> ?cache_mb:float -> ?apps:string list -> unit -> row list
(** [jobs] parallelises the grid over domains with byte-identical
    results (default {!Acfc_par.Pool.default_jobs}). *)

val print : Format.formatter -> row list -> unit
