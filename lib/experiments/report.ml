type options = { runs : int; sizes : float list; jobs : int option }

let default = { runs = 3; sizes = Paper_data.cache_sizes_mb; jobs = None }

let quick = { runs = 1; sizes = [ 6.4; 16.0 ]; jobs = None }

let artifacts =
  [ "fig4"; "fig5"; "fig6"; "table1"; "table2"; "table3"; "table4"; "table5"; "table6" ]

let hr ppf = Format.fprintf ppf "@\n%s@\n@\n" (String.make 74 '=')

let run_single_family opts ppf which =
  let rows = Single.run ?jobs:opts.jobs ~runs:opts.runs ~sizes:opts.sizes () in
  List.iter
    (fun w ->
      hr ppf;
      match w with
      | `Fig4 -> Single.print_fig4 ppf rows
      | `Table5 -> Single.print_elapsed ppf rows
      | `Table6 -> Single.print_ios ppf rows)
    which

let run_artifact opts ppf = function
  | "fig4" -> run_single_family opts ppf [ `Fig4 ]
  | "table5" -> run_single_family opts ppf [ `Table5 ]
  | "table6" -> run_single_family opts ppf [ `Table6 ]
  | "fig5" ->
    hr ppf;
    Multi.print ppf (Multi.run ?jobs:opts.jobs ~runs:opts.runs ~sizes:opts.sizes ())
  | "fig6" ->
    hr ppf;
    Alloc_lru.print ppf (Alloc_lru.run ?jobs:opts.jobs ~runs:opts.runs ~sizes:opts.sizes ())
  | "table1" ->
    hr ppf;
    Placeholders.print ppf (Placeholders.run ?jobs:opts.jobs ~runs:opts.runs ())
  | "table2" ->
    hr ppf;
    Foolish.print ppf (Foolish.run ?jobs:opts.jobs ~runs:opts.runs ())
  | "table3" ->
    hr ppf;
    Smart_oblivious.print ppf
      (Smart_oblivious.run ?jobs:opts.jobs ~runs:opts.runs ~two_disks:false ())
  | "table4" ->
    hr ppf;
    Smart_oblivious.print ppf
      (Smart_oblivious.run ?jobs:opts.jobs ~runs:opts.runs ~two_disks:true ())
  | name -> invalid_arg ("Report.run_artifact: unknown artifact " ^ name)

let artifact_scenarios opts = function
  | "fig4" | "table5" | "table6" ->
    Single.scenarios ~runs:opts.runs ~sizes:opts.sizes ()
  | "fig5" -> Multi.scenarios ~runs:opts.runs ~sizes:opts.sizes ()
  | "fig6" -> Alloc_lru.scenarios ~runs:opts.runs ~sizes:opts.sizes ()
  | "table1" -> Placeholders.scenarios ~runs:opts.runs ()
  | "table2" -> Foolish.scenarios ~runs:opts.runs ()
  | "table3" -> Smart_oblivious.scenarios ~runs:opts.runs ~two_disks:false ()
  | "table4" -> Smart_oblivious.scenarios ~runs:opts.runs ~two_disks:true ()
  | "ablations" -> Ablations.scenarios ~runs:opts.runs ()
  | "criteria" -> Criteria.scenarios ~runs:opts.runs ()
  | _ -> []

let run_all opts ppf =
  run_single_family opts ppf [ `Fig4; `Table5; `Table6 ];
  List.iter
    (fun a -> run_artifact opts ppf a)
    [ "fig5"; "fig6"; "table1"; "table2"; "table3"; "table4" ]
