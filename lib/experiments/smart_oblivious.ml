module Config = Acfc_core.Config
module Runner = Acfc_workload.Runner
module Summary = Acfc_stats.Summary
module Table = Acfc_stats.Table
module Pool = Acfc_par.Pool
open Acfc_workload

type row = {
  app : string;
  partner_smart : bool;
  two_disks : bool;
  read300 : Measure.m;
}

let default_apps = [ "din"; "cs2"; "gli"; "ldk" ]

let run ?jobs ?(runs = 3) ?(cache_mb = 6.4) ?(apps = default_apps) ~two_disks () =
  let cache_blocks = Runner.blocks_of_mb cache_mb in
  let read300_disk = if two_disks then 1 else 0 in
  Pool.with_pool ?jobs @@ fun pool ->
  List.concat_map
    (fun name ->
      let app, _paper_disk = Registry.find name in
      List.map
        (fun partner_smart ->
          let bg = Readn.app ~n:300 ~mode:`Oblivious () in
          let alloc_policy =
            if partner_smart then Config.Lru_sp else Config.Global_lru
          in
          let deferred =
            Measure.repeat_async pool ~runs (fun ~seed ->
                Runner.run ~seed ~cache_blocks ~alloc_policy
                  [
                    Runner.Spec.make ~smart:false ~disk:read300_disk bg;
                    (* The partner always runs on the RZ56 in these
                       experiments (paper Sec. 6.2). *)
                    Runner.Spec.make ~smart:partner_smart ~disk:0 app;
                  ])
          in
          fun () ->
            {
              app = name;
              partner_smart;
              two_disks;
              read300 = Measure.app_summary (deferred ()) ~index:0;
            })
        [ false; true ])
    apps
  |> List.map (fun force -> force ())

let print ppf rows =
  List.iter
    (fun two_disks ->
      let rows = List.filter (fun r -> r.two_disks = two_disks) rows in
      if rows <> [] then begin
        let apps = List.filter (fun a -> List.exists (fun r -> r.app = a) rows) default_apps in
        let columns =
          ("partner mode", Table.Left) :: List.map (fun a -> ("w. " ^ a, Table.Right)) apps
        in
        let table = Table.create ~columns in
        List.iter
          (fun partner_smart ->
            let label = if partner_smart then "Smart" else "Oblivious" in
            Table.add_row table
              (label
              :: List.map
                   (fun a ->
                     match
                       List.find_opt
                         (fun r -> r.app = a && r.partner_smart = partner_smart)
                         rows
                     with
                     | Some r -> Measure.f1 (Summary.mean r.read300.Measure.elapsed)
                     | None -> "-")
                   apps))
          [ false; true ];
        Format.fprintf ppf
          "Table %d: elapsed seconds of the oblivious Read300 with oblivious vs smart@\n\
           partners (%s)@\n\
           %a"
          (if two_disks then 4 else 3)
          (if two_disks then "Read300 on its own RZ26 disk" else "one shared disk")
          Table.render table
      end)
    [ false; true ]
