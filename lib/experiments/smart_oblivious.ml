module Config = Acfc_core.Config
module Scenario = Acfc_scenario.Scenario
module Summary = Acfc_stats.Summary
module Table = Acfc_stats.Table
module Pool = Acfc_par.Pool

type row = {
  app : string;
  partner_smart : bool;
  two_disks : bool;
  read300 : Measure.m;
}

let default_apps = [ "din"; "cs2"; "gli"; "ldk" ]

let scenario ~cache_mb ~two_disks ~partner_smart ~seed name =
  let read300_disk = if two_disks then 1 else 0 in
  let alloc_policy = if partner_smart then Config.Lru_sp else Config.Global_lru in
  Scenario.make ~seed
    ~cache_blocks:(Scenario.blocks_of_mb cache_mb)
    ~alloc_policy
    [
      Scenario.workload ~smart:false ~disk:read300_disk "read300";
      (* The partner always runs on the RZ56 in these experiments
         (paper Sec. 6.2). *)
      Scenario.workload ~smart:partner_smart ~disk:0 name;
    ]

let scenarios ?(runs = 3) ?(cache_mb = 6.4) ?(apps = default_apps) ~two_disks () =
  List.concat_map
    (fun name ->
      List.concat_map
        (fun partner_smart ->
          List.init runs (fun seed ->
              scenario ~cache_mb ~two_disks ~partner_smart ~seed name))
        [ false; true ])
    apps

let run ?jobs ?(runs = 3) ?(cache_mb = 6.4) ?(apps = default_apps) ~two_disks () =
  Pool.with_pool ?jobs @@ fun pool ->
  List.concat_map
    (fun name ->
      List.map
        (fun partner_smart ->
          let deferred =
            Measure.repeat_async pool ~runs (fun ~seed ->
                Scenario.run (scenario ~cache_mb ~two_disks ~partner_smart ~seed name))
          in
          fun () ->
            {
              app = name;
              partner_smart;
              two_disks;
              read300 = Measure.app_summary (deferred ()) ~index:0;
            })
        [ false; true ])
    apps
  |> List.map (fun force -> force ())

let print ppf rows =
  List.iter
    (fun two_disks ->
      let rows = List.filter (fun r -> r.two_disks = two_disks) rows in
      if rows <> [] then begin
        let apps = List.filter (fun a -> List.exists (fun r -> r.app = a) rows) default_apps in
        let columns =
          ("partner mode", Table.Left) :: List.map (fun a -> ("w. " ^ a, Table.Right)) apps
        in
        let table = Table.create ~columns in
        List.iter
          (fun partner_smart ->
            let label = if partner_smart then "Smart" else "Oblivious" in
            Table.add_row table
              (label
              :: List.map
                   (fun a ->
                     match
                       List.find_opt
                         (fun r -> r.app = a && r.partner_smart = partner_smart)
                         rows
                     with
                     | Some r -> Measure.f1 (Summary.mean r.read300.Measure.elapsed)
                     | None -> "-")
                   apps))
          [ false; true ];
        Format.fprintf ppf
          "Table %d: elapsed seconds of the oblivious Read300 with oblivious vs smart@\n\
           partners (%s)@\n\
           %a"
          (if two_disks then 4 else 3)
          (if two_disks then "Read300 on its own RZ26 disk" else "one shared disk")
          Table.render table
      end)
    [ false; true ]
