module Summary = Acfc_stats.Summary
module Runner = Acfc_workload.Runner
module Pool = Acfc_par.Pool

type m = { elapsed : Summary.t; ios : Summary.t }

let check_runs runs =
  if runs <= 0 then invalid_arg "Measure.repeat: runs must be positive"

let repeat_async pool ~runs f =
  check_runs runs;
  let futures = List.init runs (fun seed -> Pool.async pool (fun () -> f ~seed)) in
  fun () -> List.map (Pool.await pool) futures

let repeat ?pool ~runs f =
  match pool with
  | None ->
    check_runs runs;
    List.init runs (fun seed -> f ~seed)
  | Some pool -> repeat_async pool ~runs f ()

let app_summary results ~index =
  let apps = List.map (fun r -> List.nth r.Runner.apps index) results in
  {
    elapsed = Summary.of_list (List.map (fun a -> a.Runner.elapsed) apps);
    ios = Summary.of_list (List.map (fun a -> float_of_int a.Runner.block_ios) apps);
  }

let total_summary results =
  {
    elapsed = Summary.of_list (List.map (fun r -> r.Runner.makespan) results);
    ios = Summary.of_list (List.map (fun r -> float_of_int r.Runner.total_ios) results);
  }

let mean_ratio controlled baseline =
  ( Summary.mean controlled.elapsed /. Summary.mean baseline.elapsed,
    Summary.mean controlled.ios /. Summary.mean baseline.ios )

let f1 x = Printf.sprintf "%.1f" x

let f2 x = Printf.sprintf "%.2f" x

let i0 x = Printf.sprintf "%.0f" x
