(** Do smart processes hurt oblivious ones? Tables 3 and 4.

    An oblivious Read300 runs concurrently with each of din, cs2, gli,
    ldk, which are either oblivious (original-kernel behaviour for both)
    or smart (LRU-SP). The tables report Read300's elapsed time: on one
    shared disk (Table 3) smart partners help — fewer I/Os mean a less
    loaded disk; with Read300 on its own disk (Table 4) the effect
    nearly vanishes. *)

type row = {
  app : string;  (** the partner application *)
  partner_smart : bool;
  two_disks : bool;  (** Table 4 configuration: Read300 on the RZ26 *)
  read300 : Measure.m;
}

val scenario :
  cache_mb:float ->
  two_disks:bool ->
  partner_smart:bool ->
  seed:int ->
  string ->
  Acfc_scenario.Scenario.t
(** One grid cell: an oblivious Read300 (disk 1 when [two_disks])
    beside the named partner on disk 0, under LRU-SP when the partner
    is smart and global LRU otherwise. *)

val scenarios :
  ?runs:int ->
  ?cache_mb:float ->
  ?apps:string list ->
  two_disks:bool ->
  unit ->
  Acfc_scenario.Scenario.t list
(** Every scenario {!run} would execute, in grid order. *)

val run :
  ?jobs:int ->
  ?runs:int ->
  ?cache_mb:float ->
  ?apps:string list ->
  two_disks:bool ->
  unit ->
  row list
(** [jobs] parallelises the grid over domains with byte-identical
    results (default {!Acfc_par.Pool.default_jobs}). *)

val print : Format.formatter -> row list -> unit
(** Pass rows from one or both configurations; they are grouped. *)
