(** The paper's application suite, experiment combinations, and the
    experiment index itself.

    Application resolution and disk placement (Sec. 5.2: cs1–cs3, din,
    gli and ldk on the RZ56, disk 0; pjn and sort on the RZ26, disk 1)
    live in {!Acfc_scenario.Catalog}; this module re-exports them for
    the experiment grids and adds the catalogue of experiments that
    [acfc-run report] and the bench harness expose. *)

val apps : (string * Acfc_workload.App.t * int) list
(** (name, app, disk index), in the paper's Figure 4 order. *)

val find : string -> Acfc_workload.App.t * int
(** Raises [Not_found] for unknown names. *)

val fig5_combos : string list list
(** The nine concurrent combinations of Sec. 5.3. *)

val fig6_combos : string list list
(** The five combinations re-run under ALLOC-LRU in Sec. 6.1. *)

val combo_name : string list -> string
(** "cs2+gli" etc. *)

val experiments : (string * string) list
(** Every runnable experiment with a one-line description, in report
    order: the nine paper artifacts, then ablations and criteria. The
    CLI derives its help and [--list] output from this — there is no
    other list to keep in sync. *)

val experiment_names : string list

val describe : string -> string option
(** The one-line description of an experiment, if it exists. *)
