(** Concurrent-application experiments: Figure 5.

    Each combination runs with every application applying its smart
    strategy under LRU-SP, against the same mix oblivious under the
    original kernel; the paper reports total elapsed time and total
    block I/Os normalised to the original kernel. *)

type row = {
  combo : string;
  mb : float;
  original : Measure.m;
  controlled : Measure.m;
}

val scenario :
  mb:float ->
  kernel:[ `Original | `Controlled ] ->
  seed:int ->
  string list ->
  Acfc_scenario.Scenario.t
(** The machine description for one grid cell: a combination of
    application names at a cache size, oblivious under the original
    kernel or smart under LRU-SP. *)

val scenarios :
  ?runs:int ->
  ?sizes:float list ->
  ?combos:string list list ->
  unit ->
  Acfc_scenario.Scenario.t list
(** Every scenario {!run} would execute, in grid order. *)

val run :
  ?jobs:int ->
  ?runs:int ->
  ?sizes:float list ->
  ?combos:string list list ->
  unit ->
  row list
(** Defaults: 3 runs (as the paper), the four cache sizes, the paper's
    nine combinations. [jobs] (default {!Acfc_par.Pool.default_jobs})
    runs independent (combo, size, kernel, seed) cells on that many
    domains; any value produces byte-identical rows. *)

val print : Format.formatter -> row list -> unit
