(** Top-level experiment driver: regenerate any or all of the paper's
    tables and figures and print them paper-vs-measured. *)

type options = {
  runs : int;  (** cold-start runs averaged per data point *)
  sizes : float list;  (** cache sizes (MB) for the size sweeps *)
  jobs : int option;
      (** domains used to run grid cells concurrently; [None] defers to
          {!Acfc_par.Pool.default_jobs} (the [ACFC_JOBS] environment
          variable, else sequential). Results are byte-identical for
          every value. *)
}

val default : options
(** 3 runs, the paper's four cache sizes, [jobs = None]. *)

val quick : options
(** 1 run, sizes 6.4 and 16 MB only — for smoke tests. [jobs = None]. *)

val artifacts : string list
(** ["fig4"; "fig5"; "fig6"; "table1"; "table2"; "table3"; "table4";
    "table5"; "table6"] *)

val artifact_scenarios : options -> string -> Acfc_scenario.Scenario.t list
(** The full scenario grid an artifact (including "ablations" and
    "criteria") runs under these options, in execution order — what
    the bench harness fingerprints ({!Acfc_scenario.Scenario.hash_list})
    to make every reported number traceable to exact machine
    descriptions. Unknown names yield [[]]. *)

val run_artifact : options -> Format.formatter -> string -> unit
(** Regenerate one artifact by name and print it. Raises
    [Invalid_argument] for unknown names. Note fig4/table5/table6 share
    the same runs; requesting them separately repeats the simulations. *)

val run_all : options -> Format.formatter -> unit
(** Everything, sharing simulations between fig4 and tables 5–6. *)
