module Config = Acfc_core.Config
module Runner = Acfc_workload.Runner
module Scenario = Acfc_scenario.Scenario
module Summary = Acfc_stats.Summary
module Table = Acfc_stats.Table
module Pool = Acfc_par.Pool

type verdict = { criterion : string; detail : string; measured : string; pass : bool }

let mean_ios results index =
  Summary.mean
    (Summary.of_list
       (List.map (fun r -> float_of_int (List.nth r.Runner.apps index).Runner.block_ios) results))

let mean_elapsed results index =
  Summary.mean
    (Summary.of_list
       (List.map (fun r -> (List.nth r.Runner.apps index).Runner.elapsed) results))

let criterion1_apps = [ "din"; "cs2"; "gli"; "ldk" ]

let criterion2_ns = [ 390; 490 ]

let criterion3_sizes = [ 6.4; 16.0 ]

(* Criterion 1: an oblivious Read300 on its own disk, with each partner
   oblivious vs smart. Its I/Os must be identical (compulsory only) and
   its elapsed time must not degrade materially. *)
let scenario1 ~partner_smart ~seed name =
  let alloc_policy = if partner_smart then Config.Lru_sp else Config.Global_lru in
  Scenario.make ~seed ~cache_blocks:819 ~alloc_policy
    [
      Scenario.workload ~smart:false ~disk:1 "read300";
      Scenario.workload ~smart:partner_smart ~disk:0 name;
    ]

let criterion1 ?jobs ?(runs = 3) () =
  Pool.with_pool ?jobs @@ fun pool ->
  List.map
    (fun name ->
      let measure ~partner_smart =
        Measure.repeat_async pool ~runs (fun ~seed ->
            Scenario.run (scenario1 ~partner_smart ~seed name))
      in
      let oblivious = measure ~partner_smart:false in
      let smart = measure ~partner_smart:true in
      fun () ->
        let oblivious = oblivious () and smart = smart () in
        let ios_o = mean_ios oblivious 0 and ios_s = mean_ios smart 0 in
        let t_o = mean_elapsed oblivious 0 and t_s = mean_elapsed smart 0 in
        {
          criterion = "1: oblivious unharmed";
          detail = "Read300 w. " ^ name;
          measured =
            Printf.sprintf "ios %.0f->%.0f, elapsed %.1fs->%.1fs" ios_o ios_s t_o t_s;
          pass = ios_s <= 1.01 *. ios_o && t_s <= 1.05 *. t_o;
        })
    criterion1_apps
  |> List.map (fun force -> force ())

(* Criterion 2: placeholders bound the I/O damage a foolish manager can
   do to an oblivious victim. *)
let scenario2 ~foolish ~n ~seed =
  let bg =
    if foolish then Scenario.workload ~smart:true ~disk:0 "read300!"
    else Scenario.workload ~smart:false ~disk:0 "read300"
  in
  Scenario.make ~seed ~cache_blocks:819 ~alloc_policy:Config.Lru_sp
    [ Scenario.workload ~smart:false ~disk:0 (Printf.sprintf "read%d" n); bg ]

let criterion2 ?jobs ?(runs = 3) () =
  Pool.with_pool ?jobs @@ fun pool ->
  List.map
    (fun n ->
      let measure ~foolish =
        Measure.repeat_async pool ~runs (fun ~seed ->
            Scenario.run (scenario2 ~foolish ~n ~seed))
      in
      let baseline = measure ~foolish:false in
      let attacked = measure ~foolish:true in
      fun () ->
        let ios_b = mean_ios (baseline ()) 0 and ios_a = mean_ios (attacked ()) 0 in
        {
          criterion = "2: foolishness contained";
          detail = Printf.sprintf "Read%d vs foolish Read300" n;
          measured = Printf.sprintf "victim ios %.0f->%.0f" ios_b ios_a;
          pass = ios_a <= 1.05 *. ios_b;
        })
    criterion2_ns
  |> List.map (fun force -> force ())

(* Criterion 3: smart never worse than oblivious, per app and size. *)
let scenario3 ~mb ~smart ~seed name =
  let alloc_policy = if smart then Config.Lru_sp else Config.Global_lru in
  Scenario.make ~seed ~cache_blocks:(Scenario.blocks_of_mb mb) ~alloc_policy
    [ Scenario.workload ~smart name ]

let criterion3 ?jobs ?(runs = 3) ?(apps = List.map (fun (n, _, _) -> n) Registry.apps) () =
  Pool.with_pool ?jobs @@ fun pool ->
  List.concat_map
    (fun name ->
      List.map
        (fun mb ->
          let measure ~smart =
            Measure.repeat_async pool ~runs (fun ~seed ->
                Scenario.run (scenario3 ~mb ~smart ~seed name))
          in
          let oblivious = measure ~smart:false in
          let smart = measure ~smart:true in
          fun () ->
            let ios_o = mean_ios (oblivious ()) 0 and ios_s = mean_ios (smart ()) 0 in
            {
              criterion = "3: smart never worse";
              detail = Printf.sprintf "%s @ %gMB" name mb;
              measured = Printf.sprintf "ios %.0f->%.0f" ios_o ios_s;
              pass = ios_s <= 1.03 *. ios_o;
            })
        criterion3_sizes)
    apps
  |> List.map (fun force -> force ())

let scenarios ?(runs = 3) () =
  let c1 =
    List.concat_map
      (fun name ->
        List.concat_map
          (fun partner_smart ->
            List.init runs (fun seed -> scenario1 ~partner_smart ~seed name))
          [ false; true ])
      criterion1_apps
  in
  let c2 =
    List.concat_map
      (fun n ->
        List.concat_map
          (fun foolish -> List.init runs (fun seed -> scenario2 ~foolish ~n ~seed))
          [ false; true ])
      criterion2_ns
  in
  let c3 =
    List.concat_map
      (fun (name, _, _) ->
        List.concat_map
          (fun mb ->
            List.concat_map
              (fun smart -> List.init runs (fun seed -> scenario3 ~mb ~smart ~seed name))
              [ false; true ])
          criterion3_sizes)
      Registry.apps
  in
  c1 @ c2 @ c3

let run_all ?jobs ?(runs = 3) () =
  criterion1 ?jobs ~runs () @ criterion2 ?jobs ~runs () @ criterion3 ?jobs ~runs ()

let print ppf verdicts =
  let table =
    Table.create
      ~columns:
        [
          ("criterion", Table.Left);
          ("case", Table.Left);
          ("measured", Table.Left);
          ("verdict", Table.Center);
        ]
  in
  let last = ref "" in
  List.iter
    (fun v ->
      if !last <> "" && !last <> v.criterion then Table.add_rule table;
      last := v.criterion;
      Table.add_row table
        [ v.criterion; v.detail; v.measured; (if v.pass then "PASS" else "FAIL") ])
    verdicts;
  let failed = List.length (List.filter (fun v -> not v.pass) verdicts) in
  Format.fprintf ppf
    "The paper's allocation-policy criteria (Sec. 2), checked mechanically:@\n%a%d checks, %d failures@\n"
    Table.render table (List.length verdicts) failed
