module Config = Acfc_core.Config
module Runner = Acfc_workload.Runner
module Summary = Acfc_stats.Summary
module Table = Acfc_stats.Table
module Pool = Acfc_par.Pool
open Acfc_workload

type verdict = { criterion : string; detail : string; measured : string; pass : bool }

let mean_ios results index =
  Summary.mean
    (Summary.of_list
       (List.map (fun r -> float_of_int (List.nth r.Runner.apps index).Runner.block_ios) results))

let mean_elapsed results index =
  Summary.mean
    (Summary.of_list
       (List.map (fun r -> (List.nth r.Runner.apps index).Runner.elapsed) results))

(* Criterion 1: an oblivious Read300 on its own disk, with each partner
   oblivious vs smart. Its I/Os must be identical (compulsory only) and
   its elapsed time must not degrade materially. *)
let criterion1 ?jobs ?(runs = 3) () =
  Pool.with_pool ?jobs @@ fun pool ->
  List.map
    (fun name ->
      let app, _ = Registry.find name in
      let measure ~partner_smart ~alloc_policy =
        Measure.repeat_async pool ~runs (fun ~seed ->
            Runner.run ~seed ~cache_blocks:819 ~alloc_policy
              [
                Runner.Spec.make ~smart:false ~disk:1 (Readn.app ~n:300 ~mode:`Oblivious ());
                Runner.Spec.make ~smart:partner_smart ~disk:0 app;
              ])
      in
      let oblivious = measure ~partner_smart:false ~alloc_policy:Config.Global_lru in
      let smart = measure ~partner_smart:true ~alloc_policy:Config.Lru_sp in
      fun () ->
        let oblivious = oblivious () and smart = smart () in
        let ios_o = mean_ios oblivious 0 and ios_s = mean_ios smart 0 in
        let t_o = mean_elapsed oblivious 0 and t_s = mean_elapsed smart 0 in
        {
          criterion = "1: oblivious unharmed";
          detail = "Read300 w. " ^ name;
          measured =
            Printf.sprintf "ios %.0f->%.0f, elapsed %.1fs->%.1fs" ios_o ios_s t_o t_s;
          pass = ios_s <= 1.01 *. ios_o && t_s <= 1.05 *. t_o;
        })
    [ "din"; "cs2"; "gli"; "ldk" ]
  |> List.map (fun force -> force ())

(* Criterion 2: placeholders bound the I/O damage a foolish manager can
   do to an oblivious victim. *)
let criterion2 ?jobs ?(runs = 3) () =
  Pool.with_pool ?jobs @@ fun pool ->
  List.map
    (fun n ->
      let measure ~bg_mode ~bg_smart ~alloc_policy =
        Measure.repeat_async pool ~runs (fun ~seed ->
            Runner.run ~seed ~cache_blocks:819 ~alloc_policy
              [
                Runner.Spec.make ~smart:false ~disk:0 (Readn.app ~n ~mode:`Oblivious ());
                Runner.Spec.make ~smart:bg_smart ~disk:0 (Readn.app ~n:300 ~mode:bg_mode ());
              ])
      in
      let baseline =
        measure ~bg_mode:`Oblivious ~bg_smart:false ~alloc_policy:Config.Lru_sp
      in
      let attacked = measure ~bg_mode:`Foolish ~bg_smart:true ~alloc_policy:Config.Lru_sp in
      fun () ->
        let ios_b = mean_ios (baseline ()) 0 and ios_a = mean_ios (attacked ()) 0 in
        {
          criterion = "2: foolishness contained";
          detail = Printf.sprintf "Read%d vs foolish Read300" n;
          measured = Printf.sprintf "victim ios %.0f->%.0f" ios_b ios_a;
          pass = ios_a <= 1.05 *. ios_b;
        })
    [ 390; 490 ]
  |> List.map (fun force -> force ())

(* Criterion 3: smart never worse than oblivious, per app and size. *)
let criterion3 ?jobs ?(runs = 3) ?(apps = List.map (fun (n, _, _) -> n) Registry.apps) () =
  Pool.with_pool ?jobs @@ fun pool ->
  List.concat_map
    (fun name ->
      let app, disk = Registry.find name in
      List.map
        (fun mb ->
          let cache_blocks = Runner.blocks_of_mb mb in
          let measure ~smart ~alloc_policy =
            Measure.repeat_async pool ~runs (fun ~seed ->
                Runner.run ~seed ~cache_blocks ~alloc_policy
                  [ Runner.Spec.make ~smart ~disk app ])
          in
          let oblivious = measure ~smart:false ~alloc_policy:Config.Global_lru in
          let smart = measure ~smart:true ~alloc_policy:Config.Lru_sp in
          fun () ->
            let ios_o = mean_ios (oblivious ()) 0 and ios_s = mean_ios (smart ()) 0 in
            {
              criterion = "3: smart never worse";
              detail = Printf.sprintf "%s @ %gMB" name mb;
              measured = Printf.sprintf "ios %.0f->%.0f" ios_o ios_s;
              pass = ios_s <= 1.03 *. ios_o;
            })
        [ 6.4; 16.0 ])
    apps
  |> List.map (fun force -> force ())

let run_all ?jobs ?(runs = 3) () =
  criterion1 ?jobs ~runs () @ criterion2 ?jobs ~runs () @ criterion3 ?jobs ~runs ()

let print ppf verdicts =
  let table =
    Table.create
      ~columns:
        [
          ("criterion", Table.Left);
          ("case", Table.Left);
          ("measured", Table.Left);
          ("verdict", Table.Center);
        ]
  in
  let last = ref "" in
  List.iter
    (fun v ->
      if !last <> "" && !last <> v.criterion then Table.add_rule table;
      last := v.criterion;
      Table.add_row table
        [ v.criterion; v.detail; v.measured; (if v.pass then "PASS" else "FAIL") ])
    verdicts;
  let failed = List.length (List.filter (fun v -> not v.pass) verdicts) in
  Format.fprintf ppf
    "The paper's allocation-policy criteria (Sec. 2), checked mechanically:@\n%a%d checks, %d failures@\n"
    Table.render table (List.length verdicts) failed
