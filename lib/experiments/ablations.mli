(** Ablation studies for the design choices DESIGN.md calls out, and for
    the paper's "future work" interactions (caching vs prefetching,
    write-back and disk scheduling — Sec. 8).

    Each returns printable rows; {!print_all} runs everything. *)

(** Read-ahead: same block I/Os, very different elapsed times. *)
type readahead_row = {
  ra_app : string;
  readahead : bool;
  ra_elapsed : float;
  ra_ios : int;
}

val readahead : ?jobs:int -> ?runs:int -> ?apps:string list -> unit -> readahead_row list

(** Disk scheduling: FCFS vs SCAN under a contended disk. *)
type sched_row = {
  sched : Acfc_disk.Disk.sched;
  combo : string;
  sc_makespan : float;
  sc_ios : int;
}

val disk_sched : ?jobs:int -> ?runs:int -> unit -> sched_row list

(** Update-daemon interval: how delayed write-back trades write traffic
    against data in flight (sort's deleted temporaries benefit from
    later flushes). *)
type update_row = { interval : float; up_ios : int; up_writes : int }

val update_interval : ?jobs:int -> ?runs:int -> ?intervals:float list -> unit -> update_row list

(** File layout: packed (fresh file system) vs scattered (aged), for
    the multi-file scan workloads. *)
type layout_row = {
  la_app : string;
  scattered : bool;
  la_elapsed : float;
  la_ios : int;
}

val layout : ?jobs:int -> ?runs:int -> ?apps:string list -> unit -> layout_row list

(** Clustered write-back: up to N contiguous dirty blocks per disk
    request (block-I/O counts unchanged; positioning amortised). *)
type cluster_row = { cl_size : int; cl_elapsed : float; cl_ios : int }

val write_clustering : ?jobs:int -> ?runs:int -> ?sizes:int list -> unit -> cluster_row list

(** Global allocation order: the paper's Sec. 7 claims the scheme works
    on a VM-style CLOCK list as well as on true LRU. *)
type order_row = {
  or_app : string;
  or_policy : Acfc_core.Config.alloc_policy;
  or_smart : bool;
  or_ios : int;
}

val global_order : ?jobs:int -> ?runs:int -> ?apps:string list -> unit -> order_row list

(** Revocation thresholds: how quickly the kernel defuses a foolish
    manager, and what that does to the foolish process itself and its
    victim. *)
type revocation_row = {
  threshold : Acfc_core.Config.revocation option;
  victim_ios : int;
  fool_ios : int;
  mistakes_caught : int;
}

val revocation : ?jobs:int -> ?runs:int -> unit -> revocation_row list

val scenarios : ?runs:int -> unit -> Acfc_scenario.Scenario.t list
(** Every scenario the default ablation sweep executes, in print
    order — the machine descriptions behind {!print_all}. *)

val print_all : ?jobs:int -> ?runs:int -> Format.formatter -> unit -> unit
(** Runs every ablation above. In each of these functions [jobs]
    parallelises the grid over domains with byte-identical rows
    (default {!Acfc_par.Pool.default_jobs}). *)
