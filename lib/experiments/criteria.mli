(** The paper's three criteria for a sound global allocation policy
    (Sec. 2), checked mechanically against the running system:

    1. {e Oblivious processes do no worse than under the existing LRU
       policy} — an oblivious process paired with smart partners on its
       own disk must see the same I/Os and no worse elapsed time than
       with oblivious partners.
    2. {e Foolish processes should not hurt other processes} — an
       oblivious victim's I/Os under LRU-SP with a foolish neighbour
       must stay at its oblivious-neighbour level (the placeholder
       guarantee; the paper itself notes elapsed time is only partially
       protected, so only I/Os are checked).
    3. {e Smart processes never perform worse} — every application's
       smart I/Os are bounded by its oblivious I/Os at every cache size.

    Each check returns measured numbers and a verdict, so the bench can
    print the paper's criteria as a table. *)

type verdict = { criterion : string; detail : string; measured : string; pass : bool }

val scenario1 : partner_smart:bool -> seed:int -> string -> Acfc_scenario.Scenario.t
(** Criterion 1 cell: oblivious Read300 on disk 1, the named partner on
    disk 0, under the matching kernel. *)

val scenario2 : foolish:bool -> n:int -> seed:int -> Acfc_scenario.Scenario.t
(** Criterion 2 cell: oblivious ReadN victim beside an oblivious or
    foolish Read300, both on disk 0, under LRU-SP. *)

val scenario3 : mb:float -> smart:bool -> seed:int -> string -> Acfc_scenario.Scenario.t
(** Criterion 3 cell: the named application alone at a cache size,
    oblivious under global LRU or smart under LRU-SP. *)

val scenarios : ?runs:int -> unit -> Acfc_scenario.Scenario.t list
(** Every scenario {!run_all} would execute, in order. *)

val criterion1 : ?jobs:int -> ?runs:int -> unit -> verdict list
(** One verdict per partner application (din, cs2, gli, ldk). [jobs]
    parallelises the underlying runs over domains with byte-identical
    verdicts (default {!Acfc_par.Pool.default_jobs}); same for the
    other criteria below. *)

val criterion2 : ?jobs:int -> ?runs:int -> unit -> verdict list
(** One verdict per foreground ReadN size. *)

val criterion3 : ?jobs:int -> ?runs:int -> ?apps:string list -> unit -> verdict list
(** One verdict per (application, cache size). *)

val run_all : ?jobs:int -> ?runs:int -> unit -> verdict list

val print : Format.formatter -> verdict list -> unit
