(** ALLOC-LRU comparison: Figure 6 ("is swapping necessary?").

    The same smart mixes run under two-level replacement with the
    ALLOC-LRU allocation policy (no swapping, no placeholders) are
    compared to LRU-SP; the paper normalises ALLOC-LRU's totals to
    LRU-SP = 1.0 and finds ALLOC-LRU mostly worse. *)

type row = {
  combo : string;
  mb : float;
  lru_sp : Measure.m;
  alloc_lru : Measure.m;
}

val scenario :
  mb:float ->
  alloc_policy:Acfc_core.Config.alloc_policy ->
  seed:int ->
  string list ->
  Acfc_scenario.Scenario.t
(** One grid cell: a smart combination at a cache size under the given
    allocation policy. *)

val scenarios :
  ?runs:int ->
  ?sizes:float list ->
  ?combos:string list list ->
  unit ->
  Acfc_scenario.Scenario.t list
(** Every scenario {!run} would execute, in grid order. *)

val run :
  ?jobs:int ->
  ?runs:int ->
  ?sizes:float list ->
  ?combos:string list list ->
  unit ->
  row list
(** [jobs] parallelises the grid over domains with byte-identical
    results (default {!Acfc_par.Pool.default_jobs}). *)

val print : Format.formatter -> row list -> unit
