(** Shared measurement helpers: repeated cold-start runs and their
    summaries, as the paper averages 3–5 runs per data point. *)

type m = { elapsed : Acfc_stats.Summary.t; ios : Acfc_stats.Summary.t }

val repeat : ?pool:Acfc_par.Pool.t -> runs:int -> (seed:int -> 'a) -> 'a list
(** Run with seeds 0 .. runs−1. [runs] must be positive. Without a
    pool (or on a [jobs = 1] pool) the runs execute sequentially in
    seed order, the historical code path; on a parallel pool they run
    concurrently and the results are still returned in seed order. *)

val repeat_async :
  Acfc_par.Pool.t -> runs:int -> (seed:int -> 'a) -> unit -> 'a list
(** Two-phase {!repeat}: schedule the runs on the pool now, return a
    thunk that awaits them in seed order. Scheduling a whole experiment
    grid before forcing any cell is what lets independent
    (combo, cache-size, seed) cells overlap across domains. *)

val app_summary : Acfc_workload.Runner.t list -> index:int -> m
(** Elapsed/IO summary of the [index]-th application across runs. *)

val total_summary : Acfc_workload.Runner.t list -> m
(** Makespan and whole-system I/Os across runs. *)

val mean_ratio : m -> m -> float * float
(** [(elapsed ratio, ios ratio)] of two measurements' means —
    "normalised to the original kernel" in the paper's figures. *)

val f1 : float -> string
(** Format with one decimal. *)

val f2 : float -> string
(** Format with two decimals (the paper's ratio precision). *)

val i0 : float -> string
(** Format a mean count as a rounded integer. *)
