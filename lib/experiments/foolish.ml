module Scenario = Acfc_scenario.Scenario
module Summary = Acfc_stats.Summary
module Table = Acfc_stats.Table
module Pool = Acfc_par.Pool

type row = { app : string; bg_foolish : bool; smart_app : Measure.m }

let default_apps = [ "din"; "cs2"; "gli"; "ldk" ]

let scenario ~cache_mb ~bg_foolish ~seed name =
  let bg =
    if bg_foolish then Scenario.workload ~smart:true ~disk:0 "read300!"
    else Scenario.workload ~smart:false ~disk:0 "read300"
  in
  Scenario.make ~seed
    ~cache_blocks:(Scenario.blocks_of_mb cache_mb)
    ~alloc_policy:Acfc_core.Config.Lru_sp
    [ Scenario.workload ~smart:true name; bg ]

let scenarios ?(runs = 3) ?(cache_mb = 6.4) ?(apps = default_apps) () =
  List.concat_map
    (fun name ->
      List.concat_map
        (fun bg_foolish ->
          List.init runs (fun seed -> scenario ~cache_mb ~bg_foolish ~seed name))
        [ false; true ])
    apps

let run ?jobs ?(runs = 3) ?(cache_mb = 6.4) ?(apps = default_apps) () =
  Pool.with_pool ?jobs @@ fun pool ->
  List.concat_map
    (fun name ->
      List.map
        (fun bg_foolish ->
          let deferred =
            Measure.repeat_async pool ~runs (fun ~seed ->
                Scenario.run (scenario ~cache_mb ~bg_foolish ~seed name))
          in
          fun () ->
            {
              app = name;
              bg_foolish;
              smart_app = Measure.app_summary (deferred ()) ~index:0;
            })
        [ false; true ])
    apps
  |> List.map (fun force -> force ())

let print ppf rows =
  let apps = List.sort_uniq compare (List.map (fun r -> r.app) rows) in
  let apps =
    (* keep the paper's column order when present *)
    List.filter (fun a -> List.mem a apps) default_apps
    @ List.filter (fun a -> not (List.mem a default_apps)) apps
  in
  let columns =
    ("Read300 policy", Table.Left)
    :: List.map (fun a -> (a, Table.Right)) apps
  in
  let elapsed_table = Table.create ~columns in
  let ios_table = Table.create ~columns in
  List.iter
    (fun bg_foolish ->
      let label = if bg_foolish then "Foolish" else "Oblivious" in
      let cell f =
        List.map
          (fun a ->
            match
              List.find_opt (fun r -> r.app = a && r.bg_foolish = bg_foolish) rows
            with
            | Some r -> f r
            | None -> "-")
          apps
      in
      Table.add_row elapsed_table
        (label :: cell (fun r -> Measure.f1 (Summary.mean r.smart_app.Measure.elapsed)));
      Table.add_row ios_table
        (label :: cell (fun r -> Measure.i0 (Summary.mean r.smart_app.Measure.ios))))
    [ false; true ];
  Format.fprintf ppf
    "Table 2: smart applications running against an oblivious vs foolish Read300@\n\
     (6.4 MB cache). Elapsed seconds of the smart application:@\n\
     %aBlock I/Os of the smart application:@\n\
     %a"
    Table.render elapsed_table Table.render ios_table
