module Config = Acfc_core.Config
module Runner = Acfc_workload.Runner
module Scenario = Acfc_scenario.Scenario
module Summary = Acfc_stats.Summary
module Table = Acfc_stats.Table
module Pool = Acfc_par.Pool

type setting = Oblivious | Unprotected | Protected

type row = {
  setting : setting;
  n : int;
  foreground : Measure.m;
  placeholders_used : float;
}

let setting_name = function
  | Oblivious -> "Oblivious"
  | Unprotected -> "Unprotected"
  | Protected -> "Protected"

let settings = [ Oblivious; Unprotected; Protected ]

(* "read300" is oblivious LRU; "read300!" foolishly keeps MRU order. *)
let background = function
  | Oblivious -> Scenario.workload ~smart:false ~disk:0 "read300"
  | Unprotected | Protected -> Scenario.workload ~smart:true ~disk:0 "read300!"

let alloc_policy = function
  | Oblivious | Protected -> Config.Lru_sp
  | Unprotected -> Config.Lru_s

let scenario ~cache_mb ~setting ~n ~seed =
  Scenario.make ~seed
    ~cache_blocks:(Scenario.blocks_of_mb cache_mb)
    ~alloc_policy:(alloc_policy setting)
    [
      Scenario.workload ~smart:false ~disk:0 (Printf.sprintf "read%d" n);
      background setting;
    ]

let scenarios ?(runs = 3) ?(cache_mb = 6.4) ?(ns = [ 390; 400; 490; 500 ]) () =
  List.concat_map
    (fun setting ->
      List.concat_map
        (fun n -> List.init runs (fun seed -> scenario ~cache_mb ~setting ~n ~seed))
        ns)
    settings

let run ?jobs ?(runs = 3) ?(cache_mb = 6.4) ?(ns = [ 390; 400; 490; 500 ]) () =
  Pool.with_pool ?jobs @@ fun pool ->
  List.concat_map
    (fun setting ->
      List.map
        (fun n ->
          let deferred =
            Measure.repeat_async pool ~runs (fun ~seed ->
                Scenario.run (scenario ~cache_mb ~setting ~n ~seed))
          in
          fun () ->
            let results = deferred () in
            let foreground = Measure.app_summary results ~index:0 in
            let placeholders_used =
              Summary.mean
                (Summary.of_list
                   (List.map
                      (fun r -> float_of_int r.Runner.placeholders_used)
                      results))
            in
            { setting; n; foreground; placeholders_used })
        ns)
    settings
  |> List.map (fun force -> force ())

let print ppf rows =
  let ns = List.sort_uniq compare (List.map (fun r -> r.n) rows) in
  let columns =
    (("setting", Table.Left) :: List.map (fun n -> (Printf.sprintf "Read%d" n, Table.Right)) ns)
    @ [ ("ph-used", Table.Right) ]
  in
  let elapsed_table = Table.create ~columns in
  let ios_table = Table.create ~columns in
  List.iter
    (fun setting ->
      let cells = List.filter (fun r -> r.setting = setting) rows in
      let cells = List.sort (fun a b -> compare a.n b.n) cells in
      let ph =
        Measure.f1
          (List.fold_left (fun acc r -> acc +. r.placeholders_used) 0.0 cells
          /. float_of_int (List.length cells))
      in
      Table.add_row elapsed_table
        ((setting_name setting
         :: List.map (fun r -> Measure.f1 (Summary.mean r.foreground.Measure.elapsed)) cells)
        @ [ ph ]);
      Table.add_row ios_table
        ((setting_name setting
         :: List.map (fun r -> Measure.i0 (Summary.mean r.foreground.Measure.ios)) cells)
        @ [ ph ]))
    settings;
  Format.fprintf ppf
    "Table 1: protection by placeholders (foreground oblivious ReadN vs background@\n\
     Read300; 6.4 MB cache). Elapsed seconds:@\n\
     %aBlock I/Os (Protected should return to the Oblivious level):@\n\
     %a"
    Table.render elapsed_table Table.render ios_table
