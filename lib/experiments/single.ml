module Config = Acfc_core.Config
module Scenario = Acfc_scenario.Scenario
module Summary = Acfc_stats.Summary
module Table = Acfc_stats.Table
module Pool = Acfc_par.Pool

type row = {
  app : string;
  mb : float;
  original : Measure.m;
  controlled : Measure.m;
}

let scenario ~mb ~kernel ~seed name =
  let smart, alloc_policy =
    match kernel with
    | `Original -> (false, Config.Global_lru)
    | `Controlled -> (true, Config.Lru_sp)
  in
  Scenario.make ~seed ~cache_blocks:(Scenario.blocks_of_mb mb) ~alloc_policy
    [ Scenario.workload ~smart name ]

let scenarios ?(runs = 3) ?(sizes = Paper_data.cache_sizes_mb) ?apps () =
  let names =
    match apps with
    | None -> List.map (fun (name, _, _) -> name) Registry.apps
    | Some names -> names
  in
  List.concat_map
    (fun name ->
      List.concat_map
        (fun mb ->
          List.concat_map
            (fun kernel -> List.init runs (fun seed -> scenario ~mb ~kernel ~seed name))
            [ `Original; `Controlled ])
        sizes)
    names

let measure pool ~runs ~mb ~kernel name =
  let results =
    Measure.repeat_async pool ~runs (fun ~seed ->
        Scenario.run (scenario ~mb ~kernel ~seed name))
  in
  fun () -> Measure.app_summary (results ()) ~index:0

let run ?jobs ?(runs = 3) ?(sizes = Paper_data.cache_sizes_mb) ?apps () =
  let names =
    match apps with
    | None -> List.map (fun (name, _, _) -> name) Registry.apps
    | Some names ->
      (* Validate up front so a typo fails before any cell runs. *)
      List.iter (fun name -> ignore (Registry.find name)) names;
      names
  in
  Pool.with_pool ?jobs @@ fun pool ->
  List.concat_map
    (fun name ->
      List.map
        (fun mb ->
          let original = measure pool ~runs ~mb ~kernel:`Original name in
          let controlled = measure pool ~runs ~mb ~kernel:`Controlled name in
          fun () ->
            { app = name; mb; original = original (); controlled = controlled () })
        sizes)
    names
  |> List.map (fun force -> force ())

let by_app rows =
  List.fold_left
    (fun acc row ->
      match List.assoc_opt row.app acc with
      | Some cells ->
        cells := row :: !cells;
        acc
      | None -> acc @ [ (row.app, ref [ row ]) ])
    [] rows
  |> List.map (fun (app, cells) ->
         (app, List.sort (fun a b -> compare a.mb b.mb) !cells))

let print_metric ~what ~fmt ~value ~paper ppf rows =
  let sizes = List.sort_uniq compare (List.map (fun r -> r.mb) rows) in
  let table =
    Table.create
      ~columns:
        ([ ("app", Table.Left); ("kernel", Table.Left); ("measure", Table.Left) ]
        @ List.map (fun mb -> (Printf.sprintf "%gMB" mb, Table.Right)) sizes)
  in
  List.iter
    (fun (app, cells) ->
      let line kernel source f =
        Table.add_row table
          ([ app; kernel; source ] @ List.map f cells)
      in
      line "original" "measured" (fun c -> fmt (value c.original));
      line "original" "paper" (fun c ->
          match paper app ~mb:c.mb with Some (o, _) -> fmt o | None -> "-");
      line "LRU-SP" "measured" (fun c -> fmt (value c.controlled));
      line "LRU-SP" "paper" (fun c ->
          match paper app ~mb:c.mb with Some (_, s) -> fmt s | None -> "-");
      line "ratio" "measured" (fun c ->
          Measure.f2 (value c.controlled /. value c.original));
      line "ratio" "paper" (fun c ->
          match paper app ~mb:c.mb with
          | Some (o, s) -> Measure.f2 (s /. o)
          | None -> "-");
      Table.add_rule table)
    (by_app rows);
  let max_cv =
    List.fold_left
      (fun m r ->
        List.fold_left Float.max m
          [
            Summary.cv r.original.Measure.elapsed;
            Summary.cv r.controlled.Measure.elapsed;
            Summary.cv r.original.Measure.ios;
            Summary.cv r.controlled.Measure.ios;
          ])
      0.0 rows
  in
  Format.fprintf ppf
    "%s@\n%amax run-to-run variance (CV) across cells: %.1f%% (paper: <2%%, a few <5%%)@\n"
    what Table.render table (100.0 *. max_cv)

let print_elapsed ppf rows =
  print_metric
    ~what:"Table 5: elapsed time (seconds), original kernel vs LRU-SP"
    ~fmt:Measure.f1
    ~value:(fun m -> Summary.mean m.Measure.elapsed)
    ~paper:Paper_data.lookup_elapsed ppf rows

let print_ios ppf rows =
  print_metric ~what:"Table 6: number of block I/Os, original kernel vs LRU-SP"
    ~fmt:Measure.i0
    ~value:(fun m -> Summary.mean m.Measure.ios)
    ~paper:Paper_data.lookup_ios ppf rows

let print_fig4 ppf rows =
  let table =
    Table.create
      ~columns:
        [
          ("app", Table.Left);
          ("MB", Table.Right);
          ("elapsed ratio", Table.Right);
          ("paper", Table.Right);
          ("I/O ratio", Table.Right);
          ("paper", Table.Right);
        ]
  in
  List.iter
    (fun (app, cells) ->
      List.iter
        (fun c ->
          let elapsed_ratio, ios_ratio = Measure.mean_ratio c.controlled c.original in
          let paper_elapsed =
            match Paper_data.lookup_elapsed app ~mb:c.mb with
            | Some (o, s) -> Measure.f2 (s /. o)
            | None -> "-"
          in
          let paper_ios =
            match Paper_data.lookup_ios app ~mb:c.mb with
            | Some (o, s) -> Measure.f2 (s /. o)
            | None -> "-"
          in
          Table.add_row table
            [
              app;
              Printf.sprintf "%g" c.mb;
              Measure.f2 elapsed_ratio;
              paper_elapsed;
              Measure.f2 ios_ratio;
              paper_ios;
            ])
        cells;
      Table.add_rule table)
    (by_app rows);
  Format.fprintf ppf
    "Figure 4: normalised elapsed time and block I/Os under LRU-SP (original = 1.0)@\n%a"
    Table.render table;
  let largest = List.fold_left (fun m r -> Float.max m r.mb) 0.0 rows in
  let chart_rows =
    List.filter_map
      (fun r ->
        if r.mb = largest then
          Some (r.app, snd (Measure.mean_ratio r.controlled r.original))
        else None)
      rows
  in
  if chart_rows <> [] then begin
    Format.fprintf ppf
      "@\nnormalised block I/Os at %gMB (bar = LRU-SP, | = original kernel):@\n" largest;
    Acfc_stats.Chart.bars ~reference:1.0 ppf chart_rows
  end
