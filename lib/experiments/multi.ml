module Config = Acfc_core.Config
module Scenario = Acfc_scenario.Scenario
module Table = Acfc_stats.Table
module Pool = Acfc_par.Pool

type row = {
  combo : string;
  mb : float;
  original : Measure.m;
  controlled : Measure.m;
}

(* The experiment as a scenario generator: one grid point — a mix, a
   cache size, a kernel, a seed — maps to one machine description. *)
let scenario ~mb ~kernel ~seed names =
  let smart, alloc_policy =
    match kernel with
    | `Original -> (false, Config.Global_lru)
    | `Controlled -> (true, Config.Lru_sp)
  in
  Scenario.make ~seed ~cache_blocks:(Scenario.blocks_of_mb mb) ~alloc_policy
    (List.map (fun name -> Scenario.workload ~smart name) names)

let scenarios ?(runs = 3) ?(sizes = Paper_data.cache_sizes_mb)
    ?(combos = Registry.fig5_combos) () =
  List.concat_map
    (fun names ->
      List.concat_map
        (fun mb ->
          List.concat_map
            (fun kernel -> List.init runs (fun seed -> scenario ~mb ~kernel ~seed names))
            [ `Original; `Controlled ])
        sizes)
    combos

let measure pool ~runs ~mb ~kernel names =
  let results =
    Measure.repeat_async pool ~runs (fun ~seed ->
        Scenario.run (scenario ~mb ~kernel ~seed names))
  in
  fun () -> Measure.total_summary (results ())

let run ?jobs ?(runs = 3) ?(sizes = Paper_data.cache_sizes_mb)
    ?(combos = Registry.fig5_combos) () =
  Pool.with_pool ?jobs @@ fun pool ->
  (* Two phases: schedule every (combo, size, kernel, seed) cell on the
     pool, then force the rows in grid order. With jobs = 1 scheduling
     executes in place, which is exactly the sequential path. *)
  List.concat_map
    (fun names ->
      List.map
        (fun mb ->
          let original = measure pool ~runs ~mb ~kernel:`Original names in
          let controlled = measure pool ~runs ~mb ~kernel:`Controlled names in
          fun () ->
            {
              combo = Registry.combo_name names;
              mb;
              original = original ();
              controlled = controlled ();
            })
        sizes)
    combos
  |> List.map (fun force -> force ())

let print ppf rows =
  let table =
    Table.create
      ~columns:
        [
          ("combination", Table.Left);
          ("MB", Table.Right);
          ("elapsed ratio", Table.Right);
          ("I/O ratio", Table.Right);
        ]
  in
  let last = ref "" in
  List.iter
    (fun r ->
      if !last <> "" && !last <> r.combo then Table.add_rule table;
      last := r.combo;
      let elapsed_ratio, ios_ratio = Measure.mean_ratio r.controlled r.original in
      Table.add_row table
        [ r.combo; Printf.sprintf "%g" r.mb; Measure.f2 elapsed_ratio; Measure.f2 ios_ratio ])
    rows;
  Format.fprintf ppf
    "Figure 5: concurrent mixes under LRU-SP, normalised to the original kernel (=1.0)@\n\
     (the paper reports these as bar charts; improvement grows with cache size)@\n\
     %a"
    Table.render table;
  let max_cv =
    List.fold_left
      (fun m r ->
        List.fold_left Float.max m
          [
            Acfc_stats.Summary.cv r.original.Measure.elapsed;
            Acfc_stats.Summary.cv r.controlled.Measure.elapsed;
          ])
      0.0 rows
  in
  Format.fprintf ppf "max run-to-run variance (CV): %.1f%% (paper: <2%%)@\n"
    (100.0 *. max_cv);
  (* Figure-style rendering of the largest-cache column. *)
  let largest =
    List.fold_left (fun m r -> Float.max m r.mb) 0.0 rows
  in
  let chart_rows =
    List.filter_map
      (fun r ->
        if r.mb = largest then
          Some (r.combo, snd (Measure.mean_ratio r.controlled r.original))
        else None)
      rows
  in
  if chart_rows <> [] then begin
    Format.fprintf ppf "@\nnormalised block I/Os at %gMB (bar = LRU-SP, | = original kernel):@\n"
      largest;
    Acfc_stats.Chart.bars ~reference:1.0 ppf chart_rows
  end
