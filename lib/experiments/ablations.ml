module Config = Acfc_core.Config
module Disk = Acfc_disk.Disk
module Runner = Acfc_workload.Runner
module Scenario = Acfc_scenario.Scenario
module Summary = Acfc_stats.Summary
module Table = Acfc_stats.Table
module Pool = Acfc_par.Pool

let mean_of results f =
  Summary.mean (Summary.of_list (List.map (fun r -> float_of_int (f r)) results))

let mean_fl results f = Summary.mean (Summary.of_list (List.map f results))

(* Every ablation uses the same two-phase shape as the main artifacts:
   schedule all (cell, seed) runs on one pool, then force the rows in
   grid order so any [jobs] value yields identical tables. *)
let force_all rows = List.map (fun force -> force ()) rows

(* {2 Read-ahead} *)

type readahead_row = {
  ra_app : string;
  readahead : bool;
  ra_elapsed : float;
  ra_ios : int;
}

let readahead_scenario ~ra ~seed name =
  Scenario.make ~seed ~readahead:ra ~cache_blocks:819
    ~alloc_policy:Config.Global_lru
    [ Scenario.workload ~smart:false name ]

let readahead ?jobs ?(runs = 3) ?(apps = [ "din"; "cs1"; "sort" ]) () =
  Pool.with_pool ?jobs @@ fun pool ->
  List.concat_map
    (fun name ->
      List.map
        (fun ra ->
          let deferred =
            Measure.repeat_async pool ~runs (fun ~seed ->
                Scenario.run (readahead_scenario ~ra ~seed name))
          in
          fun () ->
            let results = deferred () in
            {
              ra_app = name;
              readahead = ra;
              ra_elapsed = mean_fl results (fun r -> (List.hd r.Runner.apps).Runner.elapsed);
              ra_ios =
                int_of_float
                  (mean_of results (fun r -> (List.hd r.Runner.apps).Runner.block_ios));
            })
        [ true; false ])
    apps
  |> force_all

(* {2 Disk scheduling} *)

type sched_row = {
  sched : Disk.sched;
  combo : string;
  sc_makespan : float;
  sc_ios : int;
}

let sched_combos =
  (* Two random-access processes on one disk build a queue that SCAN
     can reorder; pjn + pjn clone is the most disk-random pair. *)
  [ ([ "pjn"; "gli" ], "pjn+gli(one disk)"); ([ "pjn"; "sort" ], "pjn+sort(one disk)") ]

let sched_scenario ~sched ~seed names =
  Scenario.make ~seed ~disk_sched:sched ~cache_blocks:819
    ~alloc_policy:Config.Global_lru
    (* Force everything onto disk 0 to create contention. *)
    (List.map (fun name -> Scenario.workload ~smart:false ~disk:0 name) names)

let disk_sched ?jobs ?(runs = 3) () =
  Pool.with_pool ?jobs @@ fun pool ->
  List.concat_map
    (fun (names, label) ->
      List.map
        (fun sched ->
          let deferred =
            Measure.repeat_async pool ~runs (fun ~seed ->
                Scenario.run (sched_scenario ~sched ~seed names))
          in
          fun () ->
            let results = deferred () in
            {
              sched;
              combo = label;
              sc_makespan = mean_fl results (fun r -> r.Runner.makespan);
              sc_ios = int_of_float (mean_of results (fun r -> r.Runner.total_ios));
            })
        [ Disk.Fcfs; Disk.Scan ])
    sched_combos
  |> force_all

(* {2 Update-daemon interval} *)

type update_row = { interval : float; up_ios : int; up_writes : int }

let update_scenario ~interval ~seed =
  Scenario.make ~seed ~update_interval:interval ~cache_blocks:4096
    ~alloc_policy:Config.Lru_sp
    [ Scenario.workload ~smart:true "sort" ]

let update_interval ?jobs ?(runs = 3) ?(intervals = [ 5.0; 30.0; 120.0; 600.0 ]) () =
  Pool.with_pool ?jobs @@ fun pool ->
  List.map
    (fun interval ->
      let deferred =
        Measure.repeat_async pool ~runs (fun ~seed ->
            Scenario.run (update_scenario ~interval ~seed))
      in
      fun () ->
        let results = deferred () in
        {
          interval;
          up_ios =
            int_of_float (mean_of results (fun r -> (List.hd r.Runner.apps).Runner.block_ios));
          up_writes =
            int_of_float
              (mean_of results (fun r -> (List.hd r.Runner.apps).Runner.disk_writes));
        })
    intervals
  |> force_all

(* {2 File-system layout: packed vs aged/scattered} *)

type layout_row = {
  la_app : string;
  scattered : bool;
  la_elapsed : float;
  la_ios : int;
}

let layout_scenario ~scattered ~seed name =
  Scenario.make ~seed ~scattered_layout:scattered ~cache_blocks:819
    ~alloc_policy:Config.Global_lru
    [ Scenario.workload ~smart:false name ]

let layout ?jobs ?(runs = 3) ?(apps = [ "cs2"; "ldk" ]) () =
  Pool.with_pool ?jobs @@ fun pool ->
  List.concat_map
    (fun name ->
      List.map
        (fun scattered ->
          let deferred =
            Measure.repeat_async pool ~runs (fun ~seed ->
                Scenario.run (layout_scenario ~scattered ~seed name))
          in
          fun () ->
            let results = deferred () in
            {
              la_app = name;
              scattered;
              la_elapsed = mean_fl results (fun r -> (List.hd r.Runner.apps).Runner.elapsed);
              la_ios =
                int_of_float
                  (mean_of results (fun r -> (List.hd r.Runner.apps).Runner.block_ios));
            })
        [ false; true ])
    apps
  |> force_all

(* {2 Clustered write-back} *)

type cluster_row = { cl_size : int; cl_elapsed : float; cl_ios : int }

let cluster_scenario ~size ~seed =
  Scenario.make ~seed ~write_cluster:size ~cache_blocks:819
    ~alloc_policy:Config.Lru_sp
    [ Scenario.workload ~smart:true "sort" ]

let write_clustering ?jobs ?(runs = 3) ?(sizes = [ 1; 4; 8 ]) () =
  Pool.with_pool ?jobs @@ fun pool ->
  List.map
    (fun size ->
      let deferred =
        Measure.repeat_async pool ~runs (fun ~seed ->
            Scenario.run (cluster_scenario ~size ~seed))
      in
      fun () ->
        let results = deferred () in
        {
          cl_size = size;
          cl_elapsed = mean_fl results (fun r -> (List.hd r.Runner.apps).Runner.elapsed);
          cl_ios =
            int_of_float
              (mean_of results (fun r -> (List.hd r.Runner.apps).Runner.block_ios));
        })
    sizes
  |> force_all

(* {2 Global allocation order (Sec. 7: LRU vs CLOCK)} *)

type order_row = {
  or_app : string;
  or_policy : Config.alloc_policy;
  or_smart : bool;
  or_ios : int;
}

let order_cases =
  [
    (Config.Global_lru, false);
    (Config.Clock_sp, false);
    (Config.Lru_sp, true);
    (Config.Clock_sp, true);
  ]

let order_scenario ~policy ~smart ~seed name =
  Scenario.make ~seed ~cache_blocks:819 ~alloc_policy:policy
    [ Scenario.workload ~smart name ]

let global_order ?jobs ?(runs = 3) ?(apps = [ "din"; "cs1" ]) () =
  Pool.with_pool ?jobs @@ fun pool ->
  List.concat_map
    (fun name ->
      List.map
        (fun (policy, smart) ->
          let deferred =
            Measure.repeat_async pool ~runs (fun ~seed ->
                Scenario.run (order_scenario ~policy ~smart ~seed name))
          in
          fun () ->
            {
              or_app = name;
              or_policy = policy;
              or_smart = smart;
              or_ios =
                int_of_float
                  (mean_of (deferred ())
                     (fun r -> (List.hd r.Runner.apps).Runner.block_ios));
            })
        order_cases)
    apps
  |> force_all

(* {2 Revocation thresholds} *)

type revocation_row = {
  threshold : Config.revocation option;
  victim_ios : int;
  fool_ios : int;
  mistakes_caught : int;
}

let revocation_thresholds =
  [
    None;
    Some { Config.min_decisions = 500; mistake_ratio = 0.9 };
    Some { Config.min_decisions = 200; mistake_ratio = 0.5 };
    Some { Config.min_decisions = 50; mistake_ratio = 0.3 };
  ]

let revocation_scenario ~threshold ~seed =
  Scenario.make ~seed ?revocation:threshold ~cache_blocks:819
    ~alloc_policy:Config.Lru_sp
    [
      Scenario.workload ~smart:false ~disk:0 "read490";
      Scenario.workload ~smart:true ~disk:0 "read300!";
    ]

let revocation ?jobs ?(runs = 3) () =
  Pool.with_pool ?jobs @@ fun pool ->
  List.map
    (fun threshold ->
      let deferred =
        Measure.repeat_async pool ~runs (fun ~seed ->
            Scenario.run (revocation_scenario ~threshold ~seed))
      in
      fun () ->
        let results = deferred () in
        {
          threshold;
          victim_ios =
            int_of_float (mean_of results (fun r -> (List.hd r.Runner.apps).Runner.block_ios));
          fool_ios =
            int_of_float
              (mean_of results (fun r -> (List.nth r.Runner.apps 1).Runner.block_ios));
          mistakes_caught =
            int_of_float (mean_of results (fun r -> r.Runner.placeholders_used));
        })
    revocation_thresholds
  |> force_all

(* {2 The full grid as data} *)

let scenarios ?(runs = 3) () =
  let seeds = List.init runs (fun seed -> seed) in
  let over xs f = List.concat_map f xs in
  over [ "din"; "cs1"; "sort" ] (fun name ->
      over [ true; false ] (fun ra ->
          List.map (fun seed -> readahead_scenario ~ra ~seed name) seeds))
  @ over sched_combos (fun (names, _) ->
        over [ Disk.Fcfs; Disk.Scan ] (fun sched ->
            List.map (fun seed -> sched_scenario ~sched ~seed names) seeds))
  @ over [ 5.0; 30.0; 120.0; 600.0 ] (fun interval ->
        List.map (fun seed -> update_scenario ~interval ~seed) seeds)
  @ over [ "cs2"; "ldk" ] (fun name ->
        over [ false; true ] (fun scattered ->
            List.map (fun seed -> layout_scenario ~scattered ~seed name) seeds))
  @ over [ 1; 4; 8 ] (fun size ->
        List.map (fun seed -> cluster_scenario ~size ~seed) seeds)
  @ over [ "din"; "cs1" ] (fun name ->
        over order_cases (fun (policy, smart) ->
            List.map (fun seed -> order_scenario ~policy ~smart ~seed name) seeds))
  @ over revocation_thresholds (fun threshold ->
        List.map (fun seed -> revocation_scenario ~threshold ~seed) seeds)

(* {2 Printing} *)

let print_all ?jobs ?(runs = 3) ppf () =
  Format.fprintf ppf "Ablation: one-block sequential read-ahead@\n";
  let t =
    Table.create
      ~columns:
        [ ("app", Table.Left); ("read-ahead", Table.Left); ("elapsed (s)", Table.Right);
          ("block I/Os", Table.Right) ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [ r.ra_app; (if r.readahead then "on" else "off"); Measure.f1 r.ra_elapsed;
          string_of_int r.ra_ios ])
    (readahead ?jobs ~runs ());
  Format.fprintf ppf "%a@\n" Table.render t;

  Format.fprintf ppf "Ablation: disk scheduling under contention@\n";
  let t =
    Table.create
      ~columns:
        [ ("mix", Table.Left); ("sched", Table.Left); ("makespan (s)", Table.Right);
          ("block I/Os", Table.Right) ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [ r.combo; (match r.sched with Disk.Fcfs -> "FCFS" | Disk.Scan -> "SCAN");
          Measure.f1 r.sc_makespan; string_of_int r.sc_ios ])
    (disk_sched ?jobs ~runs ());
  Format.fprintf ppf "%a@\n" Table.render t;

  Format.fprintf ppf
    "Ablation: update-daemon interval (smart sort, 32 MB cache; later flushes let@\n\
     deleted temporaries cancel their writes)@\n";
  let t =
    Table.create
      ~columns:
        [ ("interval (s)", Table.Right); ("block I/Os", Table.Right);
          ("disk writes", Table.Right) ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [ Printf.sprintf "%g" r.interval; string_of_int r.up_ios;
          string_of_int r.up_writes ])
    (update_interval ?jobs ~runs ());
  Format.fprintf ppf "%a@\n" Table.render t;

  Format.fprintf ppf
    "Ablation: clustered write-back (smart sort, 6.4 MB; same block I/Os,@\n\
     positioning amortised across each cluster)@\n";
  let t =
    Table.create
      ~columns:
        [ ("cluster", Table.Right); ("elapsed (s)", Table.Right);
          ("block I/Os", Table.Right) ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [ string_of_int r.cl_size; Measure.f1 r.cl_elapsed; string_of_int r.cl_ios ])
    (write_clustering ?jobs ~runs ());
  Format.fprintf ppf "%a@\n" Table.render t;

  Format.fprintf ppf
    "Ablation: file layout (packed vs aged/scattered; multi-file scans pay@\n\
     inter-file seeks on an aged file system)@\n";
  let t =
    Table.create
      ~columns:
        [ ("app", Table.Left); ("layout", Table.Left); ("elapsed (s)", Table.Right);
          ("block I/Os", Table.Right) ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [ r.la_app; (if r.scattered then "scattered" else "packed");
          Measure.f1 r.la_elapsed; string_of_int r.la_ios ])
    (layout ?jobs ~runs ());
  Format.fprintf ppf "%a@\n" Table.render t;

  Format.fprintf ppf
    "Ablation: global allocation order (Sec. 7) - application control works@\n\
     over a VM-style CLOCK list as well as over true LRU@\n";
  let t =
    Table.create
      ~columns:
        [ ("app", Table.Left); ("kernel", Table.Left); ("app policy", Table.Left);
          ("block I/Os", Table.Right) ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [ r.or_app; Config.alloc_policy_to_string r.or_policy;
          (if r.or_smart then "smart (MRU)" else "oblivious");
          string_of_int r.or_ios ])
    (global_order ?jobs ~runs ());
  Format.fprintf ppf "%a@\n" Table.render t;

  Format.fprintf ppf
    "Ablation: revoking a foolish manager (oblivious Read490 vs foolish Read300)@\n";
  let t =
    Table.create
      ~columns:
        [ ("revocation", Table.Left); ("victim I/Os", Table.Right);
          ("fool I/Os", Table.Right); ("mistakes caught", Table.Right) ]
  in
  List.iter
    (fun r ->
      let label =
        match r.threshold with
        | None -> "off"
        | Some { Config.min_decisions; mistake_ratio } ->
          Printf.sprintf ">=%d dec., %.0f%%" min_decisions (100.0 *. mistake_ratio)
      in
      Table.add_row t
        [ label; string_of_int r.victim_ios; string_of_int r.fool_ios;
          string_of_int r.mistakes_caught ])
    (revocation ?jobs ~runs ());
  Format.fprintf ppf "%a" Table.render t
