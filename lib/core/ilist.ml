(* Intrusive doubly-linked lists over shared int-array link columns.

   This is the columnar replacement for {!Dll}: instead of one heap
   node per element, every element is an integer slot in a {!Ctab}-style
   table and the prev/next pointers live in two parallel int columns (a
   {!store}). A list handle is three ints (front, back, size); linking
   and unlinking write four array cells and allocate nothing.

   A slot may belong to at most one list per store. Membership is not
   tracked here (that would cost a third column); callers keep a flag or
   an index, and the property tests in [test/test_ctab.ml] drive random
   op sequences against {!Dll} to prove order-for-order equivalence. *)

let nil = -1

type store = { mutable prev : int array; mutable next : int array }

type t = { mutable front : int; mutable back : int; mutable size : int }

let make_store cap = { prev = Array.make cap nil; next = Array.make cap nil }

let grow_store s cap =
  let old = Array.length s.prev in
  if cap > old then begin
    let nprev = Array.make cap nil and nnext = Array.make cap nil in
    Array.blit s.prev 0 nprev 0 old;
    Array.blit s.next 0 nnext 0 old;
    s.prev <- nprev;
    s.next <- nnext
  end

let create () = { front = nil; back = nil; size = 0 }

let length t = t.size

let is_empty t = t.size = 0

let front t = t.front

let back t = t.back

let push_front s t i =
  s.prev.(i) <- nil;
  s.next.(i) <- t.front;
  if t.front = nil then t.back <- i else s.prev.(t.front) <- i;
  t.front <- i;
  t.size <- t.size + 1

let push_back s t i =
  s.next.(i) <- nil;
  s.prev.(i) <- t.back;
  if t.back = nil then t.front <- i else s.next.(t.back) <- i;
  t.back <- i;
  t.size <- t.size + 1

let remove s t i =
  let p = s.prev.(i) and n = s.next.(i) in
  if p = nil then t.front <- n else s.next.(p) <- n;
  if n = nil then t.back <- p else s.prev.(n) <- p;
  s.prev.(i) <- nil;
  s.next.(i) <- nil;
  t.size <- t.size - 1

let move_front s t i =
  if t.front <> i then begin
    remove s t i;
    push_front s t i
  end

let move_back s t i =
  if t.back <> i then begin
    remove s t i;
    push_back s t i
  end

(* Toward the front (the MRU end); [nil] at the front. *)
let next_toward_front s i = s.prev.(i)

let next_toward_back s i = s.next.(i)

(* Exchange the list positions of slots [a] and [b] (the LRU-SP swap
   step). Mirrors [Dll.swap_values] — there the two nodes exchanged
   values; here the two slots exchange places — with explicit handling
   of the adjacent cases. *)
let swap s t a b =
  if a <> b then begin
    let pa = s.prev.(a) and na = s.next.(a) in
    let pb = s.prev.(b) and nb = s.next.(b) in
    if na = b then begin
      (* ... pa a b nb ... -> ... pa b a nb ... *)
      s.prev.(b) <- pa;
      s.next.(b) <- a;
      s.prev.(a) <- b;
      s.next.(a) <- nb;
      if pa = nil then t.front <- b else s.next.(pa) <- b;
      if nb = nil then t.back <- a else s.prev.(nb) <- a
    end
    else if nb = a then begin
      (* ... pb b a na ... -> ... pb a b na ... *)
      s.prev.(a) <- pb;
      s.next.(a) <- b;
      s.prev.(b) <- a;
      s.next.(b) <- na;
      if pb = nil then t.front <- a else s.next.(pb) <- a;
      if na = nil then t.back <- b else s.prev.(na) <- b
    end
    else begin
      s.prev.(a) <- pb;
      s.next.(a) <- nb;
      s.prev.(b) <- pa;
      s.next.(b) <- na;
      if pa = nil then t.front <- b else s.next.(pa) <- b;
      if na = nil then t.back <- b else s.prev.(na) <- b;
      if pb = nil then t.front <- a else s.next.(pb) <- a;
      if nb = nil then t.back <- a else s.prev.(nb) <- a
    end
  end

let iter f s t =
  let i = ref t.front in
  while !i <> nil do
    let next = s.next.(!i) in
    f !i;
    i := next
  done

let to_list s t =
  let acc = ref [] in
  iter (fun i -> acc := i :: !acc) s t;
  List.rev !acc

(* O(n) membership walk — invariant checks and tests only. *)
let mem s t i =
  let found = ref false in
  iter (fun j -> if i = j then found := true) s t;
  !found
