type file = int

type t = { file : file; index : int }

let make ~file ~index =
  if file < 0 then invalid_arg "Block.make: negative file id";
  if index < 0 then invalid_arg "Block.make: negative block index";
  { file; index }

let file t = t.file

let index t = t.index

let equal a b = a.file = b.file && a.index = b.index

let compare a b =
  match Int.compare a.file b.file with 0 -> Int.compare a.index b.index | c -> c

let hash t = (t.file * 1000003) + t.index

(* Packed form for the columnar core: one non-negative int, ordered the
   same way as [compare]. 32 bits of index bound files at 2^32 blocks
   (32 TB at 8 KB) and file ids at 2^30 — far beyond any simulation. *)
let max_packed_index = (1 lsl 32) - 1

let max_packed_file = (1 lsl 30) - 1

let pack t =
  if t.index > max_packed_index || t.file > max_packed_file then
    invalid_arg "Block.pack: id out of packable range";
  (t.file lsl 32) lor t.index

let unpack p = { file = p lsr 32; index = p land max_packed_index }

let pp ppf t = Format.fprintf ppf "f%d[%d]" t.file t.index
