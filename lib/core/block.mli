(** Cache block identity.

    A block is one 8 KB unit of one file: the pair (file id, block index
    within the file). Files are named by integer ids handed out by the
    file-system layer. *)

type file = int
(** File identifier. *)

type t = { file : file; index : int }

val make : file:file -> index:int -> t
(** Raises [Invalid_argument] on a negative index or file id. *)

val file : t -> file

val index : t -> int

val equal : t -> t -> bool

val compare : t -> t -> int

val hash : t -> int

val pack : t -> int
(** One non-negative int per block, ordered like {!compare} (file then
    index), for the columnar core's int-keyed tables. Raises
    [Invalid_argument] beyond 2^30 files or 2^32 blocks per file. *)

val unpack : int -> t
(** Inverse of {!pack}. *)

val pp : Format.formatter -> t -> unit
