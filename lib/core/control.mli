(** Per-process handle on the [fbehavior] interface.

    A [Control.t] binds one process to one cache, mirroring how the
    paper multiplexes the five control operations through a single new
    system call. Obtaining a handle registers the process as a manager;
    from then on the kernel consults it on replacement. *)

type t

val attach : Cache.t -> Pid.t -> (t, Error.t) result
(** Register [pid] as a self-managing process. *)

val detach : t -> unit
(** Unregister; the process becomes oblivious again. *)

val pid : t -> Pid.t

val cache : t -> Cache.t

val set_priority : t -> file:Block.file -> int -> (unit, Error.t) result

val get_priority : t -> file:Block.file -> (int, Error.t) result

val set_policy : t -> prio:int -> Policy.t -> (unit, Error.t) result

val get_policy : t -> prio:int -> (Policy.t, Error.t) result

val set_temppri :
  t -> file:Block.file -> first:int -> last:int -> prio:int -> (unit, Error.t) result

val set_chooser :
  t ->
  (candidate:Block.t -> resident:Block.t list -> Block.t option) option ->
  (unit, Error.t) result
(** Install an upcall replacement handler instead of the priority-pool
    policies; see {!Acm.set_chooser}. *)

val set_plugin : t -> Acm.plugin option -> (unit, Error.t) result
(** Install an event-driven replacement plug-in for this manager (the
    live adapter of the unified policy core); see {!Acm.set_plugin}. *)

val revoked : t -> bool
(** Has the kernel revoked this manager's control privilege? *)
