type t = { acm : Acm.t; buf : Buf.t }

exception Cache_busy = Buf.Cache_busy

let create ?(backend = Backend.null) config =
  (* One shared columnar entry table: BUF's global list and ACM's level
     lists are intrusive links over the same slots. Pre-sized to
     capacity — evictions precede inserts, so steady state never
     grows it. *)
  let tab = Ctab.create ~initial:(max 16 config.Config.capacity_blocks) () in
  let acm = Acm.create config ~tab in
  let buf = Buf.create config ~acm ~tab ~backend in
  { acm; buf }

let config t = Buf.config t.buf

let set_tracer t tracer = Buf.set_tracer t.buf tracer

let set_obs t obs = Buf.set_obs t.buf obs

let read ?prefetch t ~pid key = Buf.read ?prefetch t.buf ~pid key

let write t ~pid key ~fetch = Buf.write t.buf ~pid key ~fetch

let sync t ?file () = Buf.sync t.buf ?file ()

let take_dirty_followers t key ~max_blocks = Buf.take_dirty_followers t.buf key ~max_blocks

let invalidate_file t ~file = Buf.invalidate_file t.buf ~file

let contains t key = Buf.contains t.buf key

let is_dirty t key = Buf.is_dirty t.buf key

let length t = Buf.length t.buf

let capacity t = Buf.capacity t.buf

let register_manager t pid = Acm.register t.acm pid

let unregister_manager t pid = Acm.unregister t.acm pid

let is_manager t pid = Acm.is_registered t.acm pid

let set_priority t pid ~file ~prio = Acm.set_priority t.acm pid ~file ~prio

let get_priority t pid ~file = Acm.get_priority t.acm pid ~file

let set_policy t pid ~prio policy = Acm.set_policy t.acm pid ~prio policy

let get_policy t pid ~prio = Acm.get_policy t.acm pid ~prio

let set_temppri t pid ~file ~first ~last ~prio =
  Acm.set_temppri t.acm pid ~file ~first ~last ~prio

let set_chooser t pid chooser = Acm.set_chooser t.acm pid chooser

let set_plugin t pid plugin = Acm.set_plugin t.acm pid plugin

let hits t = Buf.hits t.buf
let misses t = Buf.misses t.buf
let evictions t = Buf.evictions t.buf
let writebacks t = Buf.writebacks t.buf
let overrule_count t = Buf.overrule_count t.buf
let placeholders_created t = Buf.placeholders_created t.buf
let placeholders_used t = Buf.placeholders_used t.buf
let placeholder_count t = Buf.placeholder_count t.buf
let pid_hits t pid = Buf.pid_hits t.buf pid
let pid_misses t pid = Buf.pid_misses t.buf pid
let manager_decisions t pid = Acm.decisions t.acm pid
let manager_overrules t pid = Acm.overrules t.acm pid
let manager_mistakes t pid = Acm.mistakes t.acm pid
let manager_revoked t pid = Acm.revoked t.acm pid
let reset_stats t = Buf.reset_stats t.buf

let lru_keys t = Buf.lru_keys t.buf

let level_blocks t pid ~prio = Acm.level_blocks t.acm pid ~prio

let check_invariants t = Buf.check_invariants t.buf
