(** Application-controlled buffer cache — public facade.

    A [Cache.t] wires together the paper's two kernel modules, {!Buf}
    (allocation, global LRU list, swapping, placeholders) and {!Acm}
    (per-manager priority levels and policies), behind one handle.

    The data path ({!read}, {!write}, {!sync}) is called by the
    file-system layer; the control path (the [fbehavior] operations) by
    applications, usually through the more convenient {!Control}
    handles. *)

type t

exception Cache_busy
(** See {!Buf.Cache_busy}. *)

val create : ?backend:Backend.t -> Config.t -> t
(** [backend] defaults to {!Backend.null} (no device: pure replacement
    simulation, as used by the tests and the trace-driven lab). *)

val config : t -> Config.t

val set_tracer : t -> (Event.t -> unit) option -> unit

val set_obs : t -> Acfc_obs.Sink.t option -> unit
(** Install the observability sink on both kernel halves ({!Buf} and
    {!Acm}): typed trace events for every cache transition and
    [fbehavior] call, plus counter gauges on the sink's metrics
    registry. [None] (the default) disables instrumentation; the
    hot-path cost is then a single branch. *)

(** {2 Data path} *)

val read : ?prefetch:bool -> t -> pid:Pid.t -> Block.t -> [ `Hit | `Miss ]

val write : t -> pid:Pid.t -> Block.t -> fetch:bool -> [ `Hit | `Miss ]

val sync : t -> ?file:Block.file -> unit -> int

val take_dirty_followers : t -> Block.t -> max_blocks:int -> Block.t list
(** See {!Buf.take_dirty_followers}. *)

val invalidate_file : t -> file:Block.file -> int

val contains : t -> Block.t -> bool

val is_dirty : t -> Block.t -> bool

val length : t -> int

val capacity : t -> int

(** {2 Control path: manager registration and [fbehavior]} *)

val register_manager : t -> Pid.t -> (unit, Error.t) result

val unregister_manager : t -> Pid.t -> unit

val is_manager : t -> Pid.t -> bool

val set_priority : t -> Pid.t -> file:Block.file -> prio:int -> (unit, Error.t) result

val get_priority : t -> Pid.t -> file:Block.file -> (int, Error.t) result

val set_policy : t -> Pid.t -> prio:int -> Policy.t -> (unit, Error.t) result

val get_policy : t -> Pid.t -> prio:int -> (Policy.t, Error.t) result

val set_temppri :
  t -> Pid.t -> file:Block.file -> first:int -> last:int -> prio:int ->
  (unit, Error.t) result

val set_chooser :
  t ->
  Pid.t ->
  (candidate:Block.t -> resident:Block.t list -> Block.t option) option ->
  (unit, Error.t) result
(** Install an upcall replacement handler; see {!Acm.set_chooser}. *)

val set_plugin : t -> Pid.t -> Acm.plugin option -> (unit, Error.t) result
(** Install an event-driven replacement plug-in; see {!Acm.set_plugin}. *)

(** {2 Statistics} *)

val hits : t -> int
val misses : t -> int
val evictions : t -> int
val writebacks : t -> int
val overrule_count : t -> int
val placeholders_created : t -> int
val placeholders_used : t -> int
val placeholder_count : t -> int
val pid_hits : t -> Pid.t -> int
val pid_misses : t -> Pid.t -> int
val manager_decisions : t -> Pid.t -> int
val manager_overrules : t -> Pid.t -> int
val manager_mistakes : t -> Pid.t -> int
val manager_revoked : t -> Pid.t -> bool
val reset_stats : t -> unit

(** {2 Testing support} *)

val lru_keys : t -> Block.t list

val level_blocks : t -> Pid.t -> prio:int -> Block.t list

val check_invariants : t -> unit
