(* Columnar block/entry table: the flat-array replacement for
   heap-allocated {!Entry.t} records on the steady-state cache path.

   Every resident (or placeholder-targeted) block is a slot — an index
   into parallel int columns holding identity, state bits, pin count,
   level, owning manager and the intrusive list links for the BUF
   global list and the ACM level lists. Allocating and releasing a slot
   is a free-list pop/push; touching state is an int-array store. The
   only heap values on the hot path are the [Block.t] pairs handed in
   by callers, never per-entry records.

   Slots are recycled LIFO via the free list; property tests in
   [test/test_ctab.ml] cover alloc/release churn, free-list reuse and
   growth. *)

type t = {
  mutable cap : int;
  mutable file : int array; (* -1 = free slot *)
  mutable index : int array;
  mutable key : int array; (* Block.pack of (file, index) *)
  mutable owner : int array; (* pid that faulted the block in *)
  mutable flags : int array; (* bit set, see below *)
  mutable pinned : int array; (* pin count *)
  mutable level : int array; (* ACM level priority *)
  mutable managed : int array; (* managing pid, -1 = kernel-managed *)
  mutable ph_head : int array; (* first incoming placeholder, -1 *)
  global : Ilist.store; (* BUF global-position list links *)
  lvl : Ilist.store; (* ACM level-list links *)
  mutable free_next : int array;
  mutable free : int; (* free-list head, -1 = full *)
  mutable live : int;
}

let dirty_bit = 1

let referenced_bit = 2

let clock_bit = 4

let temp_bit = 8

let init_range t lo hi =
  for i = lo to hi - 1 do
    t.file.(i) <- -1;
    t.free_next.(i) <- (if i + 1 < hi then i + 1 else -1)
  done

let create ?(initial = 16) () =
  let cap = max 1 initial in
  let t =
    {
      cap;
      file = Array.make cap (-1);
      index = Array.make cap 0;
      key = Array.make cap 0;
      owner = Array.make cap 0;
      flags = Array.make cap 0;
      pinned = Array.make cap 0;
      level = Array.make cap 0;
      managed = Array.make cap (-1);
      ph_head = Array.make cap (-1);
      global = Ilist.make_store cap;
      lvl = Ilist.make_store cap;
      free_next = Array.make cap (-1);
      free = 0;
      live = 0;
    }
  in
  init_range t 0 cap;
  t

let capacity t = t.cap

let live t = t.live

let grow_col a cap init =
  let n = Array.make cap init in
  Array.blit a 0 n 0 (Array.length a);
  n

let grow t =
  let old = t.cap in
  let cap = old * 2 in
  t.file <- grow_col t.file cap (-1);
  t.index <- grow_col t.index cap 0;
  t.key <- grow_col t.key cap 0;
  t.owner <- grow_col t.owner cap 0;
  t.flags <- grow_col t.flags cap 0;
  t.pinned <- grow_col t.pinned cap 0;
  t.level <- grow_col t.level cap 0;
  t.managed <- grow_col t.managed cap (-1);
  t.ph_head <- grow_col t.ph_head cap (-1);
  t.free_next <- grow_col t.free_next cap (-1);
  Ilist.grow_store t.global cap;
  Ilist.grow_store t.lvl cap;
  t.cap <- cap;
  init_range t old cap;
  t.free <- old

let alloc t ~file ~index ~key ~owner =
  if t.free < 0 then grow t;
  let s = t.free in
  t.free <- t.free_next.(s);
  t.file.(s) <- file;
  t.index.(s) <- index;
  t.key.(s) <- key;
  t.owner.(s) <- owner;
  t.flags.(s) <- 0;
  t.pinned.(s) <- 0;
  t.level.(s) <- 0;
  t.managed.(s) <- -1;
  t.ph_head.(s) <- -1;
  t.live <- t.live + 1;
  s

let release t s =
  t.file.(s) <- -1;
  t.free_next.(s) <- t.free;
  t.free <- s;
  t.live <- t.live - 1

let is_free t s = t.file.(s) < 0

let block t s = Block.make ~file:t.file.(s) ~index:t.index.(s)
