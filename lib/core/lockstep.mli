(** Lockstep replay: columnar cache vs its record-based twin.

    The columnar rewrite ({!Ctab}/{!Ilist}/{!Itbl} under {!Buf}/{!Acm})
    keeps the original record implementations alive as {!Buf_ref} /
    {!Acm_ref} / {!Cache_ref}. This module drives both caches through an
    identical operation sequence and compares everything observable
    after every step: the emitted {!Event.t} stream, each operation's
    result, and (periodically and at the end) the full statistics,
    global LRU order, per-level block orders and structural invariants.

    `bench check` replays a recorded workload trace, a wirgen corpus
    and a seeded control-path storm through [run]; the property tests
    replay random op sequences. A [divergence] pinpoints the first step
    at which the two implementations disagree. *)

(** One cache operation, applied identically to both implementations.
    Control-path ops mirror the [fbehavior] interface; [Set_chooser]
    installs the same (deterministic) closure in both caches. *)
type op =
  | Read of { pid : Pid.t; block : Block.t; prefetch : bool }
  | Write of { pid : Pid.t; block : Block.t; fetch : bool }
  | Sync of Block.file option
  | Invalidate_file of Block.file
  | Register_manager of Pid.t
  | Unregister_manager of Pid.t
  | Set_priority of { pid : Pid.t; file : Block.file; prio : int }
  | Set_policy of { pid : Pid.t; prio : int; policy : Policy.t }
  | Set_temppri of {
      pid : Pid.t;
      file : Block.file;
      first : int;
      last : int;
      prio : int;
    }
  | Set_chooser of {
      pid : Pid.t;
      chooser :
        (candidate:Block.t -> resident:Block.t list -> Block.t option) option;
    }

val pp_op : Format.formatter -> op -> unit

type divergence = {
  step : int;  (** 0-based index into the op array *)
  op : string;  (** the op at [step], rendered *)
  what : string;  (** which observation disagreed *)
  columnar : string;  (** what the columnar cache said *)
  reference : string;  (** what the record twin said *)
}

val pp_divergence : Format.formatter -> divergence -> unit

val run : ?deep_every:int -> Config.t -> op array -> (int, divergence) result
(** [run config ops] builds one columnar {!Cache} and one {!Cache_ref}
    from [config] and applies every op to both. Per step it compares
    the op's result and the traced event stream; every [deep_every]
    steps (default 512) and at the end it additionally compares
    statistics, LRU order, touched per-level orders, and runs both
    implementations' [check_invariants]. Returns [Ok steps] when the
    whole sequence agrees, or [Error d] describing the first
    divergence. *)

val of_references : ?pid:Pid.t -> Block.t array -> op array
(** Demand-read ops over a block trace, all from one process. *)
