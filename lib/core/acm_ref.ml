type level = { prio : int; mutable policy : Policy.t; list : Entry.t Dll.t }

type chooser = candidate:Block.t -> resident:Block.t list -> Block.t option

type manager = {
  pid : Pid.t;
  levels : (int, level) Hashtbl.t;
  mutable sorted_levels : level list;  (* ascending priority *)
  mutable n_levels : int;  (* cached |levels| = |sorted_levels|, kept on insert *)
  file_prio : (Block.file, int) Hashtbl.t;  (* only non-zero priorities stored *)
  blocks : (Block.t, Entry.t) Hashtbl.t;  (* every entry this manager holds *)
  mutable chooser : chooser option;  (* upcall replacement handler *)
  mutable decisions : int;
  mutable overrules : int;
  mutable mistakes : int;
  mutable revoked : bool;
}

module Obs = Acfc_obs

type t = {
  config : Config.t;
  managers : (Pid.t, manager) Hashtbl.t;
  mutable tracer : (Event.t -> unit) option;
  mutable obs : Obs.Sink.t option;
}

let create config =
  { config; managers = Hashtbl.create 16; tracer = None; obs = None }

let set_tracer t tracer = t.tracer <- tracer

let set_obs t obs = t.obs <- obs

let emit t ev = match t.tracer with Some f -> f ev | None -> ()

(* One [fbehavior] control call, for the trace. *)
let obs_call t pid op detail =
  match t.obs with
  | None -> ()
  | Some sink ->
    Obs.Sink.emit sink (Obs.Trace.Syscall { pid = Pid.to_int pid; op; detail = detail () })

let find_manager t pid = Hashtbl.find_opt t.managers pid

(* Create the level record for [prio] if missing, respecting the
   per-manager level limit. *)
let ensure_level t mgr prio =
  match Hashtbl.find_opt mgr.levels prio with
  | Some lvl -> Ok lvl
  | None ->
    if mgr.n_levels >= t.config.Config.max_levels then Error Error.Too_many_levels
    else begin
      let lvl = { prio; policy = Policy.default; list = Dll.create () } in
      Hashtbl.replace mgr.levels prio lvl;
      let rec insert = function
        | [] -> [ lvl ]
        | l :: rest as all -> if l.prio > prio then lvl :: all else l :: insert rest
      in
      mgr.sorted_levels <- insert mgr.sorted_levels;
      (* Levels are never removed; a removal path must decrement this. *)
      mgr.n_levels <- mgr.n_levels + 1;
      Ok lvl
    end

let long_term_prio mgr file = Option.value (Hashtbl.find_opt mgr.file_prio file) ~default:0

(* Link [e] into [lvl] at the MRU (recency) end: used for blocks that
   enter because they were just loaded or referenced. *)
let link_recent mgr lvl (e : Entry.t) =
  e.Entry.level_node <- Some (Dll.push_front lvl.list e);
  e.Entry.level <- lvl.prio;
  e.Entry.managed_by <- Some mgr.pid;
  Hashtbl.replace mgr.blocks e.Entry.key e

(* Link [e] into [lvl] at the end that causes it to be replaced later
   (paper Sec. 4): the MRU end under LRU, the LRU end under MRU. Used
   for blocks moved by [set_priority] / [set_temppri]. *)
let link_replaced_later mgr lvl (e : Entry.t) =
  let node =
    match lvl.policy with
    | Policy.Lru -> Dll.push_front lvl.list e
    | Policy.Mru -> Dll.push_back lvl.list e
  in
  e.Entry.level_node <- Some node;
  e.Entry.level <- lvl.prio;
  e.Entry.managed_by <- Some mgr.pid;
  Hashtbl.replace mgr.blocks e.Entry.key e

let unlink mgr (e : Entry.t) =
  (match (e.Entry.level_node, Hashtbl.find_opt mgr.levels e.Entry.level) with
  | Some node, Some lvl -> Dll.remove lvl.list node
  | Some _, None -> invalid_arg "Acm_ref: entry linked to a missing level"
  | None, _ -> ());
  e.Entry.level_node <- None;
  e.Entry.managed_by <- None;
  e.Entry.temp <- false;
  Hashtbl.remove mgr.blocks e.Entry.key

let register t pid =
  if Hashtbl.mem t.managers pid then Error Error.Already_registered
  else if Hashtbl.length t.managers >= t.config.Config.max_managers then
    Error Error.Too_many_managers
  else begin
    let mgr =
      {
        pid;
        levels = Hashtbl.create 8;
        sorted_levels = [];
        n_levels = 0;
        file_prio = Hashtbl.create 8;
        blocks = Hashtbl.create 256;
        chooser = None;
        decisions = 0;
        overrules = 0;
        mistakes = 0;
        revoked = false;
      }
    in
    (* Level 0 always exists: it is the default long-term priority. *)
    (match ensure_level t mgr 0 with Ok _ -> () | Error _ -> assert false);
    Hashtbl.replace t.managers pid mgr;
    obs_call t pid "register" (fun () -> "");
    Ok ()
  end

let unregister t pid =
  match find_manager t pid with
  | None -> ()
  | Some mgr ->
    let entries = Hashtbl.fold (fun _ e acc -> e :: acc) mgr.blocks [] in
    List.iter
      (fun e ->
        unlink mgr e;
        e.Entry.level <- 0)
      entries;
    Hashtbl.remove t.managers pid;
    obs_call t pid "unregister" (fun () -> "")

let is_registered t pid = Hashtbl.mem t.managers pid

let consults t pid =
  match find_manager t pid with Some mgr -> not mgr.revoked | None -> false

let manager_count t = Hashtbl.length t.managers

let new_block t ~pid ~prefetched (e : Entry.t) =
  e.Entry.owner <- pid;
  match find_manager t pid with
  | None -> ()
  | Some mgr ->
    let prio = long_term_prio mgr (Block.file e.Entry.key) in
    let lvl =
      match Hashtbl.find_opt mgr.levels prio with
      | Some lvl -> lvl
      | None ->
        (* [set_priority] creates levels eagerly, so a missing level can
           only mean the file still has default priority 0. *)
        assert false
    in
    (* A demand-fetched block was just used: it takes the MRU position.
       A read-ahead block has not been referenced yet, so it must not
       become an MRU policy's first victim; it enters at the end that is
       replaced later and earns its recency at its first real access. *)
    if prefetched then link_replaced_later mgr lvl e else link_recent mgr lvl e

let block_gone t (e : Entry.t) =
  match e.Entry.managed_by with
  | None -> ()
  | Some pid ->
    (match find_manager t pid with
    | Some mgr -> unlink mgr e
    | None -> invalid_arg "Acm_ref.block_gone: entry managed by unknown manager")

let block_accessed t ~pid (e : Entry.t) =
  e.Entry.owner <- pid;
  (* Under the Sticky shared-file discipline, a block already held by a
     live manager stays with it: only its recency is updated. *)
  let sticky_holder =
    match (t.config.Config.shared_files, e.Entry.managed_by) with
    | Config.Sticky, Some current -> find_manager t current
    | (Config.Transfer | Config.Sticky), _ -> None
  in
  let target =
    match sticky_holder with Some m -> Some m | None -> find_manager t pid
  in
  (* Unlink if currently held by a different manager (ownership moved
     between processes). *)
  (match e.Entry.managed_by with
  | Some current when (match target with Some m -> not (Pid.equal m.pid current) | None -> true)
    -> (match find_manager t current with
       | Some mgr -> unlink mgr e
       | None -> invalid_arg "Acm_ref.block_accessed: stale manager link")
  | Some _ | None -> ());
  match target with
  | None -> ()
  | Some mgr ->
    let lt_prio = long_term_prio mgr (Block.file e.Entry.key) in
    (match e.Entry.level_node with
    | None ->
      (* Newly transferred to this manager. *)
      let lvl = match Hashtbl.find_opt mgr.levels lt_prio with Some l -> l | None -> assert false in
      link_recent mgr lvl e
    | Some node ->
      if e.Entry.temp then begin
        (* A reference ends the temporary priority (paper Sec. 3). *)
        (match Hashtbl.find_opt mgr.levels e.Entry.level with
        | Some lvl -> Dll.remove lvl.list node
        | None -> assert false);
        e.Entry.temp <- false;
        let lvl = match Hashtbl.find_opt mgr.levels lt_prio with Some l -> l | None -> assert false in
        e.Entry.level_node <- Some (Dll.push_front lvl.list e);
        e.Entry.level <- lvl.prio
      end
      else begin
        match Hashtbl.find_opt mgr.levels e.Entry.level with
        | Some lvl -> Dll.move_front lvl.list node
        | None -> assert false
      end)

(* Pick the victim the manager prefers: lowest-priority non-empty level,
   scanning from the end its policy replaces first and skipping pinned
   blocks. Not-yet-referenced read-ahead blocks are passed over while a
   referenced block exists anywhere (they are about to be used); they
   are remembered as a fallback. *)
let manager_choice mgr =
  let fallback = ref None in
  let rec scan_level = function
    | [] -> !fallback
    | lvl :: rest ->
      let start, step =
        match lvl.policy with
        | Policy.Lru -> (Dll.back lvl.list, Dll.next_toward_front)
        | Policy.Mru -> (Dll.front lvl.list, Dll.next_toward_back)
      in
      let rec walk = function
        | None -> scan_level rest
        | Some node ->
          let e = Dll.value node in
          if Entry.is_pinned e then walk (step node)
          else if not e.Entry.referenced then begin
            if Option.is_none !fallback then fallback := Some e;
            walk (step node)
          end
          else Some e
      in
      walk start
  in
  scan_level mgr.sorted_levels

let entry_manager t (e : Entry.t) =
  match e.Entry.managed_by with None -> None | Some pid -> find_manager t pid

(* Consult an upcall handler: materialise the manager's resident set
   (this is the generality-vs-overhead trade the paper discusses), call
   the handler, and validate its answer — an unknown or pinned block
   falls back to the kernel's candidate, like an uncooperative manager. *)
let upcall_choice mgr chooser ~candidate =
  let resident = Hashtbl.fold (fun key _ acc -> key :: acc) mgr.blocks [] in
  match chooser ~candidate:candidate.Entry.key ~resident with
  | None -> None
  | Some key ->
    (match Hashtbl.find_opt mgr.blocks key with
    | Some e when not (Entry.is_pinned e) -> Some e
    | Some _ | None -> None)

let replace_block t ~candidate ~missing:_ =
  match entry_manager t candidate with
  | None -> candidate
  | Some mgr ->
    if mgr.revoked then candidate
    else begin
      mgr.decisions <- mgr.decisions + 1;
      let choice =
        match mgr.chooser with
        | Some chooser ->
          (match upcall_choice mgr chooser ~candidate with
          | Some e -> Some e
          | None -> manager_choice mgr)
        | None -> manager_choice mgr
      in
      match choice with
      | None -> candidate
      | Some chosen ->
        if chosen != candidate then mgr.overrules <- mgr.overrules + 1;
        chosen
    end

let placeholder_used t ~chooser ~missing:_ ~target:_ =
  match find_manager t chooser with
  | None -> ()
  | Some mgr ->
    mgr.mistakes <- mgr.mistakes + 1;
    (match t.config.Config.revocation with
    | Some { min_decisions; mistake_ratio } when not mgr.revoked ->
      if
        mgr.overrules >= min_decisions
        && float_of_int mgr.mistakes >= mistake_ratio *. float_of_int mgr.overrules
      then begin
        mgr.revoked <- true;
        emit t (Event.Manager_revoked chooser);
        match t.obs with
        | None -> ()
        | Some sink ->
          Obs.Sink.emit sink (Obs.Trace.Manager_revoked { pid = Pid.to_int chooser })
      end
    | Some _ | None -> ())

(* {2 Application interface} *)

let with_manager t pid f =
  match find_manager t pid with None -> Error Error.Not_registered | Some mgr -> f mgr

let set_priority t pid ~file ~prio =
  obs_call t pid "set_priority" (fun () -> Printf.sprintf "file=%d prio=%d" file prio);
  with_manager t pid (fun mgr ->
      if mgr.revoked then Error Error.Revoked
      else begin
        let old = long_term_prio mgr file in
        let need_record = prio <> 0 && not (Hashtbl.mem mgr.file_prio file) in
        if need_record && Hashtbl.length mgr.file_prio >= t.config.Config.max_file_records
        then Error Error.Too_many_file_records
        else
          match ensure_level t mgr prio with
          | Error _ as e -> e
          | Ok lvl ->
            if prio = 0 then Hashtbl.remove mgr.file_prio file
            else Hashtbl.replace mgr.file_prio file prio;
            if old <> prio then
              (* Move cached, non-temporary blocks of this file now. *)
              Hashtbl.iter
                (fun key (e : Entry.t) ->
                  if Block.file key = file && not e.Entry.temp && e.Entry.level <> prio
                  then begin
                    (match (e.Entry.level_node, Hashtbl.find_opt mgr.levels e.Entry.level) with
                    | Some node, Some l -> Dll.remove l.list node
                    | _ -> assert false);
                    link_replaced_later mgr lvl e
                  end)
                mgr.blocks;
            Ok ()
      end)

let get_priority t pid ~file = with_manager t pid (fun mgr -> Ok (long_term_prio mgr file))

let set_policy t pid ~prio policy =
  obs_call t pid "set_policy" (fun () ->
      Printf.sprintf "prio=%d policy=%s" prio (Policy.to_string policy));
  with_manager t pid (fun mgr ->
      if mgr.revoked then Error Error.Revoked
      else
        match ensure_level t mgr prio with
        | Error _ as e -> e
        | Ok lvl ->
          lvl.policy <- policy;
          Ok ())

let get_policy t pid ~prio =
  with_manager t pid (fun mgr ->
      match Hashtbl.find_opt mgr.levels prio with
      | Some lvl -> Ok lvl.policy
      | None -> Ok Policy.default)

let set_temppri t pid ~file ~first ~last ~prio =
  obs_call t pid "set_temppri" (fun () ->
      Printf.sprintf "file=%d first=%d last=%d prio=%d" file first last prio);
  with_manager t pid (fun mgr ->
      if mgr.revoked then Error Error.Revoked
      else if first < 0 || last < first then Error Error.Invalid_range
      else
        match ensure_level t mgr prio with
        | Error _ as e -> e
        | Ok lvl ->
          let lt = long_term_prio mgr file in
          for index = first to last do
            match Hashtbl.find_opt mgr.blocks (Block.make ~file ~index) with
            | None -> ()  (* only blocks presently in the cache are affected *)
            | Some e ->
              if e.Entry.level <> prio then begin
                (match (e.Entry.level_node, Hashtbl.find_opt mgr.levels e.Entry.level) with
                | Some node, Some l -> Dll.remove l.list node
                | _ -> assert false);
                link_replaced_later mgr lvl e
              end;
              e.Entry.temp <- prio <> lt
          done;
          Ok ())

let set_chooser t pid chooser =
  obs_call t pid "set_chooser" (fun () ->
      if Option.is_some chooser then "install" else "remove");
  with_manager t pid (fun mgr ->
      if mgr.revoked then Error Error.Revoked
      else begin
        mgr.chooser <- chooser;
        Ok ()
      end)

(* {2 Statistics} *)

let stat t pid f = match find_manager t pid with Some mgr -> f mgr | None -> 0

let decisions t pid = stat t pid (fun m -> m.decisions)

let overrules t pid = stat t pid (fun m -> m.overrules)

let mistakes t pid = stat t pid (fun m -> m.mistakes)

let revoked t pid = match find_manager t pid with Some m -> m.revoked | None -> false

(* {2 Testing support} *)

let check_invariants t =
  Hashtbl.iter
    (fun pid mgr ->
      if not (Pid.equal pid mgr.pid) then failwith "Acm_ref: manager key/pid mismatch";
      (* sorted_levels and the cached count mirror the level table. *)
      if mgr.n_levels <> Hashtbl.length mgr.levels then
        failwith "Acm_ref: cached level count out of sync";
      let n_sorted =
        List.fold_left (fun n _ -> n + 1) 0 mgr.sorted_levels
      in
      if n_sorted <> mgr.n_levels then failwith "Acm_ref: sorted_levels out of sync";
      let rec ascending = function
        | a :: (b :: _ as rest) ->
          if a.prio >= b.prio then failwith "Acm_ref: sorted_levels not ascending";
          ascending rest
        | [ _ ] | [] -> ()
      in
      ascending mgr.sorted_levels;
      (* Every list member is indexed, consistent, and counted once. *)
      let counted = ref 0 in
      List.iter
        (fun lvl ->
          Dll.iter
            (fun (e : Entry.t) ->
              incr counted;
              if e.Entry.level <> lvl.prio then failwith "Acm_ref: entry level mismatch";
              (match e.Entry.managed_by with
              | Some p when Pid.equal p pid -> ()
              | Some _ | None -> failwith "Acm_ref: entry managed_by mismatch");
              (match e.Entry.level_node with
              | Some node when Dll.contains lvl.list node -> ()
              | Some _ | None -> failwith "Acm_ref: entry level_node mismatch");
              match Hashtbl.find_opt mgr.blocks e.Entry.key with
              | Some e' when e' == e -> ()
              | Some _ | None -> failwith "Acm_ref: entry missing from manager index")
            lvl.list)
        mgr.sorted_levels;
      if !counted <> Hashtbl.length mgr.blocks then
        failwith "Acm_ref: manager index size mismatch")
    t.managers

let level_blocks t pid ~prio =
  match find_manager t pid with
  | None -> []
  | Some mgr ->
    (match Hashtbl.find_opt mgr.levels prio with
    | None -> []
    | Some lvl -> List.map (fun (e : Entry.t) -> e.Entry.key) (Dll.to_list lvl.list))
