(* Columnar ACM: level lists are intrusive {!Ilist}s over the shared
   {!Ctab} columns, managers live in a pid-indexed array, and the
   per-access notifications ([new_block] / [block_accessed] /
   [block_gone]) touch only int columns on the steady-state path. The
   record-based predecessor survives verbatim as {!Acm_ref} and the
   lockstep replay in [Lockstep] / `bench check` proves the two
   trace-identical.

   Order-sensitive state keeps its exact predecessor representation:
   [mgr.blocks] stays a stdlib [Hashtbl] (now mapping to slots) because
   [set_priority] and the upcall resident set observably iterate it,
   and stdlib bucket order depends only on the keys and the
   insert/remove sequence — both unchanged. *)

type level = { prio : int; mutable policy : Policy.t; list : Ilist.t }

type chooser = candidate:Block.t -> resident:Block.t list -> Block.t option

(* An event-driven decision plug-in (the live half of the unified
   policy core, see {!Acfc_policy}): plain callbacks so this module
   does not depend on the policy library. The kernel streams every
   membership change of the manager's block set to the plug-in and asks
   it for victims before the priority-pool decision. *)
type plugin = {
  on_admit : Block.t -> unit;
  on_reference : Block.t -> unit;
  on_remove : Block.t -> invalidated:bool -> unit;
  choose : missing:Block.t -> Block.t option;
}

type manager = {
  pid : Pid.t;
  levels : (int, level) Hashtbl.t;
  mutable sorted_levels : level list;  (* ascending priority *)
  mutable n_levels : int;  (* cached |levels| = |sorted_levels|, kept on insert *)
  file_prio : (Block.file, int) Hashtbl.t;  (* only non-zero priorities stored *)
  blocks : (Block.t, int) Hashtbl.t;  (* every slot this manager holds *)
  mutable chooser : chooser option;  (* upcall replacement handler *)
  mutable plugin : plugin option;  (* event-driven decision plug-in *)
  mutable decisions : int;
  mutable overrules : int;
  mutable mistakes : int;
  mutable revoked : bool;
}

module Obs = Acfc_obs

type t = {
  config : Config.t;
  tab : Ctab.t;
  mutable managers : manager option array;  (* index = pid *)
  mutable n_managers : int;
  mutable tracer : (Event.t -> unit) option;
  mutable obs : Obs.Sink.t option;
}

let create config ~tab =
  { config; tab; managers = Array.make 16 None; n_managers = 0; tracer = None; obs = None }

let set_tracer t tracer = t.tracer <- tracer

let set_obs t obs = t.obs <- obs

(* One [fbehavior] control call, for the trace. *)
let obs_call t pid op detail =
  match t.obs with
  | None -> ()
  | Some sink ->
    Obs.Sink.emit sink (Obs.Trace.Syscall { pid = Pid.to_int pid; op; detail = detail () })

(* Allocation-free: returns the stored [Some mgr] or [None]. *)
let find_manager t pid =
  let i = Pid.to_int pid in
  if i < Array.length t.managers then t.managers.(i) else None

(* Create the level record for [prio] if missing, respecting the
   per-manager level limit. *)
let ensure_level t mgr prio =
  match Hashtbl.find_opt mgr.levels prio with
  | Some lvl -> Ok lvl
  | None ->
    if mgr.n_levels >= t.config.Config.max_levels then Error Error.Too_many_levels
    else begin
      let lvl = { prio; policy = Policy.default; list = Ilist.create () } in
      Hashtbl.replace mgr.levels prio lvl;
      let rec insert = function
        | [] -> [ lvl ]
        | l :: rest as all -> if l.prio > prio then lvl :: all else l :: insert rest
      in
      mgr.sorted_levels <- insert mgr.sorted_levels;
      (* Levels are never removed; a removal path must decrement this. *)
      mgr.n_levels <- mgr.n_levels + 1;
      Ok lvl
    end

let long_term_prio mgr file = Option.value (Hashtbl.find_opt mgr.file_prio file) ~default:0

(* Link slot [s] into [lvl] at the MRU (recency) end: used for blocks
   that enter because they were just loaded or referenced. *)
let link_recent t mgr lvl s =
  let tab = t.tab in
  Ilist.push_front tab.Ctab.lvl lvl.list s;
  tab.Ctab.level.(s) <- lvl.prio;
  tab.Ctab.managed.(s) <- Pid.to_int mgr.pid;
  Hashtbl.replace mgr.blocks (Ctab.block tab s) s

(* Link [s] into [lvl] at the end that causes it to be replaced later
   (paper Sec. 4): the MRU end under LRU, the LRU end under MRU. Used
   for blocks moved by [set_priority] / [set_temppri]. *)
let link_replaced_later t mgr lvl s =
  let tab = t.tab in
  (match lvl.policy with
  | Policy.Lru -> Ilist.push_front tab.Ctab.lvl lvl.list s
  | Policy.Mru -> Ilist.push_back tab.Ctab.lvl lvl.list s);
  tab.Ctab.level.(s) <- lvl.prio;
  tab.Ctab.managed.(s) <- Pid.to_int mgr.pid;
  Hashtbl.replace mgr.blocks (Ctab.block tab s) s

let unlink t mgr s =
  let tab = t.tab in
  if tab.Ctab.managed.(s) >= 0 then begin
    match Hashtbl.find_opt mgr.levels tab.Ctab.level.(s) with
    | Some lvl -> Ilist.remove tab.Ctab.lvl lvl.list s
    | None -> invalid_arg "Acm: entry linked to a missing level"
  end;
  tab.Ctab.managed.(s) <- -1;
  tab.Ctab.flags.(s) <- tab.Ctab.flags.(s) land lnot Ctab.temp_bit;
  Hashtbl.remove mgr.blocks (Ctab.block tab s)

let register t pid =
  let i = Pid.to_int pid in
  if i >= Array.length t.managers then begin
    let n = Array.make (max (i + 1) (2 * Array.length t.managers)) None in
    Array.blit t.managers 0 n 0 (Array.length t.managers);
    t.managers <- n
  end;
  if Option.is_some t.managers.(i) then Error Error.Already_registered
  else if t.n_managers >= t.config.Config.max_managers then
    Error Error.Too_many_managers
  else begin
    let mgr =
      {
        pid;
        levels = Hashtbl.create 8;
        sorted_levels = [];
        n_levels = 0;
        file_prio = Hashtbl.create 8;
        blocks = Hashtbl.create 256;
        chooser = None;
        plugin = None;
        decisions = 0;
        overrules = 0;
        mistakes = 0;
        revoked = false;
      }
    in
    (* Level 0 always exists: it is the default long-term priority. *)
    (match ensure_level t mgr 0 with Ok _ -> () | Error _ -> assert false);
    t.managers.(i) <- Some mgr;
    t.n_managers <- t.n_managers + 1;
    obs_call t pid "register" (fun () -> "");
    Ok ()
  end

let unregister t pid =
  match find_manager t pid with
  | None -> ()
  | Some mgr ->
    let slots = Hashtbl.fold (fun _ s acc -> s :: acc) mgr.blocks [] in
    List.iter
      (fun s ->
        unlink t mgr s;
        t.tab.Ctab.level.(s) <- 0)
      slots;
    t.managers.(Pid.to_int pid) <- None;
    t.n_managers <- t.n_managers - 1;
    obs_call t pid "unregister" (fun () -> "")

let is_registered t pid = Option.is_some (find_manager t pid)

let consults t pid =
  match find_manager t pid with Some mgr -> not mgr.revoked | None -> false

let manager_count t = t.n_managers

(* Plug-in notifications. Materialising the [Block.t] costs an
   allocation, so every call is guarded by the plug-in's presence. *)
let notify_admit t mgr s =
  match mgr.plugin with
  | Some p -> p.on_admit (Ctab.block t.tab s)
  | None -> ()

let notify_reference t mgr s =
  match mgr.plugin with
  | Some p -> p.on_reference (Ctab.block t.tab s)
  | None -> ()

let notify_remove t mgr s ~invalidated =
  match mgr.plugin with
  | Some p -> p.on_remove (Ctab.block t.tab s) ~invalidated
  | None -> ()

let new_block t ~pid ~prefetched s =
  let tab = t.tab in
  tab.Ctab.owner.(s) <- Pid.to_int pid;
  match find_manager t pid with
  | None -> ()
  | Some mgr ->
    let prio = long_term_prio mgr tab.Ctab.file.(s) in
    let lvl =
      match Hashtbl.find_opt mgr.levels prio with
      | Some lvl -> lvl
      | None ->
        (* [set_priority] creates levels eagerly, so a missing level can
           only mean the file still has default priority 0. *)
        assert false
    in
    (* A demand-fetched block was just used: it takes the MRU position.
       A read-ahead block has not been referenced yet, so it must not
       become an MRU policy's first victim; it enters at the end that is
       replaced later and earns its recency at its first real access. *)
    if prefetched then link_replaced_later t mgr lvl s else link_recent t mgr lvl s;
    notify_admit t mgr s

let block_gone ?(invalidated = false) t s =
  let m = t.tab.Ctab.managed.(s) in
  if m >= 0 then begin
    match find_manager t (Pid.make m) with
    | Some mgr ->
      notify_remove t mgr s ~invalidated;
      unlink t mgr s
    | None -> invalid_arg "Acm.block_gone: entry managed by unknown manager"
  end

let block_accessed t ~pid s =
  let tab = t.tab in
  tab.Ctab.owner.(s) <- Pid.to_int pid;
  let managed = tab.Ctab.managed.(s) in
  (* Under the Sticky shared-file discipline, a block already held by a
     live manager stays with it: only its recency is updated. *)
  let sticky_holder =
    match t.config.Config.shared_files with
    | Config.Sticky when managed >= 0 -> find_manager t (Pid.make managed)
    | Config.Transfer | Config.Sticky -> None
  in
  let target =
    match sticky_holder with Some m -> Some m | None -> find_manager t pid
  in
  (* Unlink if currently held by a different manager (ownership moved
     between processes). *)
  if
    managed >= 0
    && (match target with Some m -> Pid.to_int m.pid <> managed | None -> true)
  then begin
    match find_manager t (Pid.make managed) with
    | Some mgr ->
      (* An ownership transfer is not a replacement decision the losing
         plug-in made, so it must not learn from it (no ghost entry). *)
      notify_remove t mgr s ~invalidated:true;
      unlink t mgr s
    | None -> invalid_arg "Acm.block_accessed: stale manager link"
  end;
  match target with
  | None -> ()
  | Some mgr ->
    let lt_prio = long_term_prio mgr tab.Ctab.file.(s) in
    if tab.Ctab.managed.(s) < 0 then begin
      (* Newly transferred to this manager. *)
      let lvl = match Hashtbl.find_opt mgr.levels lt_prio with Some l -> l | None -> assert false in
      link_recent t mgr lvl s;
      notify_admit t mgr s
    end
    else if tab.Ctab.flags.(s) land Ctab.temp_bit <> 0 then begin
      (* A reference ends the temporary priority (paper Sec. 3). *)
      (match Hashtbl.find_opt mgr.levels tab.Ctab.level.(s) with
      | Some lvl -> Ilist.remove tab.Ctab.lvl lvl.list s
      | None -> assert false);
      tab.Ctab.flags.(s) <- tab.Ctab.flags.(s) land lnot Ctab.temp_bit;
      let lvl = match Hashtbl.find_opt mgr.levels lt_prio with Some l -> l | None -> assert false in
      Ilist.push_front tab.Ctab.lvl lvl.list s;
      tab.Ctab.level.(s) <- lvl.prio;
      notify_reference t mgr s
    end
    else begin
      (match Hashtbl.find_opt mgr.levels tab.Ctab.level.(s) with
      | Some lvl -> Ilist.move_front tab.Ctab.lvl lvl.list s
      | None -> assert false);
      notify_reference t mgr s
    end

(* Pick the victim the manager prefers: lowest-priority non-empty level,
   scanning from the end its policy replaces first and skipping pinned
   blocks. Not-yet-referenced read-ahead blocks are passed over while a
   referenced block exists anywhere (they are about to be used); they
   are remembered as a fallback. Slots throughout; [-1] = none. *)
let manager_choice t mgr =
  let tab = t.tab in
  let fallback = ref (-1) in
  let rec scan_level = function
    | [] -> !fallback
    | lvl :: rest ->
      let start, step =
        match lvl.policy with
        | Policy.Lru -> (Ilist.back lvl.list, Ilist.next_toward_front)
        | Policy.Mru -> (Ilist.front lvl.list, Ilist.next_toward_back)
      in
      let rec walk s =
        if s < 0 then scan_level rest
        else if tab.Ctab.pinned.(s) > 0 then walk (step tab.Ctab.lvl s)
        else if tab.Ctab.flags.(s) land Ctab.referenced_bit = 0 then begin
          if !fallback < 0 then fallback := s;
          walk (step tab.Ctab.lvl s)
        end
        else s
      in
      walk start
  in
  scan_level mgr.sorted_levels

let slot_manager t s =
  let m = t.tab.Ctab.managed.(s) in
  if m < 0 then None else find_manager t (Pid.make m)

(* Consult an upcall handler: materialise the manager's resident set
   (this is the generality-vs-overhead trade the paper discusses), call
   the handler, and validate its answer — an unknown or pinned block
   falls back to the kernel's candidate, like an uncooperative manager. *)
let upcall_choice t mgr chooser ~candidate =
  let resident = Hashtbl.fold (fun key _ acc -> key :: acc) mgr.blocks [] in
  match chooser ~candidate:(Ctab.block t.tab candidate) ~resident with
  | None -> -1
  | Some key ->
    (match Hashtbl.find_opt mgr.blocks key with
    | Some s when t.tab.Ctab.pinned.(s) = 0 -> s
    | Some _ | None -> -1)

(* Consult the event-driven plug-in. Cheaper than the upcall path — no
   resident list is materialised — and validated the same way: an
   unknown or pinned answer falls back to the next decision source. *)
let plugin_choice t mgr plugin ~missing =
  match plugin.choose ~missing with
  | None -> -1
  | Some key ->
    (match Hashtbl.find_opt mgr.blocks key with
    | Some s when t.tab.Ctab.pinned.(s) = 0 -> s
    | Some _ | None -> -1)

let replace_block t ~candidate ~missing =
  match slot_manager t candidate with
  | None -> candidate
  | Some mgr ->
    if mgr.revoked then candidate
    else begin
      mgr.decisions <- mgr.decisions + 1;
      let choice =
        let from_plugin =
          match mgr.plugin with
          | Some p -> plugin_choice t mgr p ~missing
          | None -> -1
        in
        if from_plugin >= 0 then from_plugin
        else
          match mgr.chooser with
          | Some chooser ->
            let s = upcall_choice t mgr chooser ~candidate in
            if s >= 0 then s else manager_choice t mgr
          | None -> manager_choice t mgr
      in
      if choice < 0 then candidate
      else begin
        if choice <> candidate then mgr.overrules <- mgr.overrules + 1;
        choice
      end
    end

let placeholder_used t ~chooser =
  match find_manager t chooser with
  | None -> ()
  | Some mgr ->
    mgr.mistakes <- mgr.mistakes + 1;
    (match t.config.Config.revocation with
    | Some { min_decisions; mistake_ratio } when not mgr.revoked ->
      if
        mgr.overrules >= min_decisions
        && float_of_int mgr.mistakes >= mistake_ratio *. float_of_int mgr.overrules
      then begin
        mgr.revoked <- true;
        (match t.tracer with
        | Some f -> f (Event.Manager_revoked chooser)
        | None -> ());
        match t.obs with
        | None -> ()
        | Some sink ->
          Obs.Sink.emit sink (Obs.Trace.Manager_revoked { pid = Pid.to_int chooser })
      end
    | Some _ | None -> ())

(* {2 Application interface} *)

let with_manager t pid f =
  match find_manager t pid with None -> Error Error.Not_registered | Some mgr -> f mgr

let set_priority t pid ~file ~prio =
  obs_call t pid "set_priority" (fun () -> Printf.sprintf "file=%d prio=%d" file prio);
  with_manager t pid (fun mgr ->
      if mgr.revoked then Error Error.Revoked
      else begin
        let old = long_term_prio mgr file in
        let need_record = prio <> 0 && not (Hashtbl.mem mgr.file_prio file) in
        if need_record && Hashtbl.length mgr.file_prio >= t.config.Config.max_file_records
        then Error Error.Too_many_file_records
        else
          match ensure_level t mgr prio with
          | Error _ as e -> e
          | Ok lvl ->
            if prio = 0 then Hashtbl.remove mgr.file_prio file
            else Hashtbl.replace mgr.file_prio file prio;
            if old <> prio then begin
              let tab = t.tab in
              (* Move cached, non-temporary blocks of this file now. *)
              Hashtbl.iter
                (fun key s ->
                  if
                    Block.file key = file
                    && tab.Ctab.flags.(s) land Ctab.temp_bit = 0
                    && tab.Ctab.level.(s) <> prio
                  then begin
                    (match Hashtbl.find_opt mgr.levels tab.Ctab.level.(s) with
                    | Some l -> Ilist.remove tab.Ctab.lvl l.list s
                    | None -> assert false);
                    link_replaced_later t mgr lvl s
                  end)
                mgr.blocks
            end;
            Ok ()
      end)

let get_priority t pid ~file = with_manager t pid (fun mgr -> Ok (long_term_prio mgr file))

let set_policy t pid ~prio policy =
  obs_call t pid "set_policy" (fun () ->
      Printf.sprintf "prio=%d policy=%s" prio (Policy.to_string policy));
  with_manager t pid (fun mgr ->
      if mgr.revoked then Error Error.Revoked
      else
        match ensure_level t mgr prio with
        | Error _ as e -> e
        | Ok lvl ->
          lvl.policy <- policy;
          Ok ())

let get_policy t pid ~prio =
  with_manager t pid (fun mgr ->
      match Hashtbl.find_opt mgr.levels prio with
      | Some lvl -> Ok lvl.policy
      | None -> Ok Policy.default)

let set_temppri t pid ~file ~first ~last ~prio =
  obs_call t pid "set_temppri" (fun () ->
      Printf.sprintf "file=%d first=%d last=%d prio=%d" file first last prio);
  with_manager t pid (fun mgr ->
      if mgr.revoked then Error Error.Revoked
      else if first < 0 || last < first then Error Error.Invalid_range
      else
        match ensure_level t mgr prio with
        | Error _ as e -> e
        | Ok lvl ->
          let tab = t.tab in
          let lt = long_term_prio mgr file in
          for index = first to last do
            match Hashtbl.find_opt mgr.blocks (Block.make ~file ~index) with
            | None -> ()  (* only blocks presently in the cache are affected *)
            | Some s ->
              if tab.Ctab.level.(s) <> prio then begin
                (match Hashtbl.find_opt mgr.levels tab.Ctab.level.(s) with
                | Some l -> Ilist.remove tab.Ctab.lvl l.list s
                | None -> assert false);
                link_replaced_later t mgr lvl s
              end;
              if prio <> lt then
                tab.Ctab.flags.(s) <- tab.Ctab.flags.(s) lor Ctab.temp_bit
              else tab.Ctab.flags.(s) <- tab.Ctab.flags.(s) land lnot Ctab.temp_bit
          done;
          Ok ())

let set_chooser t pid chooser =
  obs_call t pid "set_chooser" (fun () ->
      if Option.is_some chooser then "install" else "remove");
  with_manager t pid (fun mgr ->
      if mgr.revoked then Error Error.Revoked
      else begin
        mgr.chooser <- chooser;
        Ok ()
      end)

let set_plugin t pid plugin =
  obs_call t pid "set_plugin" (fun () ->
      if Option.is_some plugin then "install" else "remove");
  with_manager t pid (fun mgr ->
      if mgr.revoked then Error Error.Revoked
      else begin
        mgr.plugin <- plugin;
        Ok ()
      end)

(* {2 Statistics} *)

let stat t pid f = match find_manager t pid with Some mgr -> f mgr | None -> 0

let decisions t pid = stat t pid (fun m -> m.decisions)

let overrules t pid = stat t pid (fun m -> m.overrules)

let mistakes t pid = stat t pid (fun m -> m.mistakes)

let revoked t pid = match find_manager t pid with Some m -> m.revoked | None -> false

(* {2 Testing support} *)

let check_invariants t =
  let tab = t.tab in
  Array.iteri
    (fun i mgro ->
      match mgro with
      | None -> ()
      | Some mgr ->
        if Pid.to_int mgr.pid <> i then failwith "Acm: manager key/pid mismatch";
        (* sorted_levels and the cached count mirror the level table. *)
        if mgr.n_levels <> Hashtbl.length mgr.levels then
          failwith "Acm: cached level count out of sync";
        let n_sorted =
          List.fold_left (fun n _ -> n + 1) 0 mgr.sorted_levels
        in
        if n_sorted <> mgr.n_levels then failwith "Acm: sorted_levels out of sync";
        let rec ascending = function
          | a :: (b :: _ as rest) ->
            if a.prio >= b.prio then failwith "Acm: sorted_levels not ascending";
            ascending rest
          | [ _ ] | [] -> ()
        in
        ascending mgr.sorted_levels;
        (* Every list member is indexed, consistent, and counted once. *)
        let counted = ref 0 in
        List.iter
          (fun lvl ->
            Ilist.iter
              (fun s ->
                incr counted;
                if Ctab.is_free tab s then failwith "Acm: free slot in level list";
                if tab.Ctab.level.(s) <> lvl.prio then
                  failwith "Acm: entry level mismatch";
                if tab.Ctab.managed.(s) <> i then
                  failwith "Acm: entry managed_by mismatch";
                match Hashtbl.find_opt mgr.blocks (Ctab.block tab s) with
                | Some s' when s' = s -> ()
                | Some _ | None -> failwith "Acm: entry missing from manager index")
              tab.Ctab.lvl lvl.list)
          mgr.sorted_levels;
        if !counted <> Hashtbl.length mgr.blocks then
          failwith "Acm: manager index size mismatch")
    t.managers

let level_blocks t pid ~prio =
  match find_manager t pid with
  | None -> []
  | Some mgr ->
    (match Hashtbl.find_opt mgr.levels prio with
    | None -> []
    | Some lvl ->
      List.map (fun s -> Ctab.block t.tab s) (Ilist.to_list t.tab.Ctab.lvl lvl.list))
