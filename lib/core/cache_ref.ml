type t = { acm : Acm_ref.t; buf : Buf_ref.t }

exception Cache_busy = Buf_ref.Cache_busy

let create ?(backend = Backend.null) config =
  let acm = Acm_ref.create config in
  let buf = Buf_ref.create config ~acm ~backend in
  { acm; buf }

let config t = Buf_ref.config t.buf

let set_tracer t tracer = Buf_ref.set_tracer t.buf tracer

let set_obs t obs = Buf_ref.set_obs t.buf obs

let read ?prefetch t ~pid key = Buf_ref.read ?prefetch t.buf ~pid key

let write t ~pid key ~fetch = Buf_ref.write t.buf ~pid key ~fetch

let sync t ?file () = Buf_ref.sync t.buf ?file ()

let take_dirty_followers t key ~max_blocks = Buf_ref.take_dirty_followers t.buf key ~max_blocks

let invalidate_file t ~file = Buf_ref.invalidate_file t.buf ~file

let contains t key = Buf_ref.contains t.buf key

let is_dirty t key = Buf_ref.is_dirty t.buf key

let length t = Buf_ref.length t.buf

let capacity t = Buf_ref.capacity t.buf

let register_manager t pid = Acm_ref.register t.acm pid

let unregister_manager t pid = Acm_ref.unregister t.acm pid

let is_manager t pid = Acm_ref.is_registered t.acm pid

let set_priority t pid ~file ~prio = Acm_ref.set_priority t.acm pid ~file ~prio

let get_priority t pid ~file = Acm_ref.get_priority t.acm pid ~file

let set_policy t pid ~prio policy = Acm_ref.set_policy t.acm pid ~prio policy

let get_policy t pid ~prio = Acm_ref.get_policy t.acm pid ~prio

let set_temppri t pid ~file ~first ~last ~prio =
  Acm_ref.set_temppri t.acm pid ~file ~first ~last ~prio

let set_chooser t pid chooser = Acm_ref.set_chooser t.acm pid chooser

let hits t = Buf_ref.hits t.buf
let misses t = Buf_ref.misses t.buf
let evictions t = Buf_ref.evictions t.buf
let writebacks t = Buf_ref.writebacks t.buf
let overrule_count t = Buf_ref.overrule_count t.buf
let placeholders_created t = Buf_ref.placeholders_created t.buf
let placeholders_used t = Buf_ref.placeholders_used t.buf
let placeholder_count t = Buf_ref.placeholder_count t.buf
let pid_hits t pid = Buf_ref.pid_hits t.buf pid
let pid_misses t pid = Buf_ref.pid_misses t.buf pid
let manager_decisions t pid = Acm_ref.decisions t.acm pid
let manager_overrules t pid = Acm_ref.overrules t.acm pid
let manager_mistakes t pid = Acm_ref.mistakes t.acm pid
let manager_revoked t pid = Acm_ref.revoked t.acm pid
let reset_stats t = Buf_ref.reset_stats t.buf

let lru_keys t = Buf_ref.lru_keys t.buf

let level_blocks t pid ~prio = Acm_ref.level_blocks t.acm pid ~prio

let check_invariants t = Buf_ref.check_invariants t.buf
