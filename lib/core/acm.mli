(** Application Control Module, columnar core.

    ACM is the kernel half that "implements the interface calls and acts
    as a proxy for the user-level managers" (paper Sec. 4). It keeps,
    for every registered manager process: a set of priority levels, each
    with a block list in recency order and an {!Policy.t}; the long-term
    priorities of that manager's files; and the statistics the kernel
    uses to detect foolish managers.

    Blocks are named by their {!Ctab} slot: the level lists are
    intrusive {!Ilist}s over the shared table's link columns and the
    per-access notifications below are int-only on the steady-state
    path. The record-based predecessor is retained as {!Acm_ref} and
    proven trace-identical by lockstep replay ({!Lockstep},
    `bench check`).

    BUF notifies ACM through {!new_block}, {!block_gone},
    {!block_accessed} and {!placeholder_used}, and asks it for decisions
    through {!replace_block} — the paper's five procedure calls. *)

type t

type plugin = {
  on_admit : Block.t -> unit;
      (** The block entered (or transferred into) the manager's set. *)
  on_reference : Block.t -> unit;
      (** The block, already in the set, was referenced. *)
  on_remove : Block.t -> invalidated:bool -> unit;
      (** The block left the set. [invalidated] marks departures that
          were not replacement decisions (file invalidation, ownership
          transfer): an adaptive plug-in must not learn from those. *)
  choose : missing:Block.t -> Block.t option;
      (** Name a victim so [missing] can come in; [None] or an invalid
          (non-resident, pinned) answer falls back to the upcall
          chooser / priority-pool decision. *)
}
(** An event-driven replacement plug-in (the live adapter of the
    unified policy core, {!Acfc_policy.Live}). Expressed as plain
    callbacks so the core library carries no dependency on the policy
    library. Installed per manager via {!set_plugin}; consulted by
    {!replace_block} before the upcall chooser. *)

val create : Config.t -> tab:Ctab.t -> t
(** [tab] is the columnar entry table shared with {!Buf} (built by
    {!Cache.create}). *)

val set_tracer : t -> (Event.t -> unit) option -> unit
(** Install a callback receiving {!Event.Manager_revoked} events. *)

val set_obs : t -> Acfc_obs.Sink.t option -> unit
(** Install the observability sink. Every [fbehavior] control call is
    emitted as a {!Acfc_obs.Trace.Syscall} event, and revocations as
    {!Acfc_obs.Trace.Manager_revoked}. *)

(** {2 Manager lifecycle} *)

val register : t -> Pid.t -> (unit, Error.t) result
(** Allocate a manager structure for [pid]. From then on the process's
    blocks are linked into its priority-level lists and the kernel
    consults it on replacement. *)

val unregister : t -> Pid.t -> unit
(** Drop the manager structure; its blocks become unmanaged (plain
    global-LRU blocks). No-op if not registered. *)

val is_registered : t -> Pid.t -> bool

val consults : t -> Pid.t -> bool
(** Registered and not revoked: the kernel will ask this manager for
    replacement decisions. *)

val manager_count : t -> int

(** {2 BUF → ACM notifications and queries (paper Sec. 4)} *)

val new_block : t -> pid:Pid.t -> prefetched:bool -> int -> unit
(** The slot just entered the cache on behalf of [pid]; link it into
    the appropriate level list based on its file's long-term priority
    (if [pid] has a manager). A demand-fetched block takes the MRU
    position; a [prefetched] (read-ahead) block has not been referenced
    yet, so it enters at the end its level's policy replaces later and
    gains recency only at its first real access. *)

val block_gone : ?invalidated:bool -> t -> int -> unit
(** The slot left the cache; unlink it from any manager lists.
    [invalidated] (default false) marks removals that were not
    replacement decisions — see {!plugin.on_remove}. *)

val block_accessed : t -> pid:Pid.t -> int -> unit
(** The slot was referenced by [pid]: expire any temporary priority
    (reverting to the file's long-term priority), transfer the block to
    [pid]'s manager if ownership moved between processes, and record the
    reference by moving the block to the MRU end of its level list. *)

val replace_block : t -> candidate:int -> missing:Block.t -> int
(** Ask the manager of [candidate]'s owner which block to give up,
    offering [candidate] as the kernel's suggestion. Returns the chosen
    resident, unpinned slot — [candidate] itself when the owner has no
    (consulted) manager or agrees with the kernel. The manager picks
    from its lowest-priority non-empty level, at the end its policy
    replaces first. *)

val placeholder_used : t -> chooser:Pid.t -> unit
(** A placeholder fired: an earlier overrule by [chooser] was a
    mistake. Updates the mistake statistics and, if configured, revokes
    a consistently foolish manager. *)

(** {2 The application interface (multiplexed by [fbehavior])} *)

val set_priority : t -> Pid.t -> file:Block.file -> prio:int -> (unit, Error.t) result
(** Set the long-term cache priority of a file. Cached, non-temporary
    blocks of the file move to the new level immediately, entering at
    the end that causes them to be replaced later. *)

val get_priority : t -> Pid.t -> file:Block.file -> (int, Error.t) result

val set_policy : t -> Pid.t -> prio:int -> Policy.t -> (unit, Error.t) result
(** Set the replacement policy of a priority level (default LRU). *)

val get_policy : t -> Pid.t -> prio:int -> (Policy.t, Error.t) result

val set_temppri :
  t -> Pid.t -> file:Block.file -> first:int -> last:int -> prio:int ->
  (unit, Error.t) result
(** Temporarily move the cached blocks [first..last] of [file] to level
    [prio]; each block reverts to its long-term priority at its next
    reference or replacement. *)

val set_chooser :
  t ->
  Pid.t ->
  (candidate:Block.t -> resident:Block.t list -> Block.t option) option ->
  (unit, Error.t) result
(** Install (or clear) an {e upcall} replacement handler for a manager:
    instead of the priority-pool decision, the handler is consulted on
    every replacement with the kernel's candidate and the manager's full
    resident set, and may name any of its own blocks. Returning [None]
    or an invalid block falls back to the pool decision. This is the
    "totally general mechanism" of paper Sec. 3 / the upcall design of
    Sec. 4 — flexible, but it pays to materialise the resident set on
    every miss (the overhead the paper's primitive interface avoids;
    see the micro-benchmarks). *)

val set_plugin : t -> Pid.t -> plugin option -> (unit, Error.t) result
(** Install (or clear) an event-driven replacement {!plugin} for a
    manager. The plug-in receives every membership change of the
    manager's block set and is consulted first on every replacement;
    an invalid answer falls back to the chooser / pool decision. *)

(** {2 Statistics} *)

val decisions : t -> Pid.t -> int
(** [replace_block] consultations answered by this manager. *)

val overrules : t -> Pid.t -> int
(** Consultations where the manager rejected the kernel's candidate. *)

val mistakes : t -> Pid.t -> int
(** Overrules later proven wrong by a placeholder. *)

val revoked : t -> Pid.t -> bool

(** {2 Testing support} *)

val check_invariants : t -> unit
(** Raise [Failure] if any internal invariant is broken. O(cache). *)

val level_blocks : t -> Pid.t -> prio:int -> Block.t list
(** Blocks of one level, MRU end first. Empty for absent levels. *)
