(* Open-addressing int -> int hash table, the columnar replacement for
   [(Block.t, Entry.t) Hashtbl] on the cache hot path.

   Keys are non-negative ints (packed block ids from [Block.pack]);
   values are non-negative ints (table slots). Linear probing over a
   power-of-two array with tombstones; [find] allocates nothing and
   returns [-1] for absence so the hit path never touches the GC. The
   property tests in [test/test_ctab.ml] replay random op sequences
   against a stdlib [Hashtbl] model. *)

let empty_key = -1

let tomb_key = -2

type t = {
  mutable keys : int array;
  mutable vals : int array;
  mutable mask : int; (* Array.length keys - 1 *)
  mutable size : int; (* live bindings *)
  mutable used : int; (* live bindings + tombstones *)
}

let rec pow2 n k = if k >= n then k else pow2 n (k * 2)

let create n =
  let cap = pow2 (max 8 (n * 2)) 8 in
  {
    keys = Array.make cap empty_key;
    vals = Array.make cap 0;
    mask = cap - 1;
    size = 0;
    used = 0;
  }

let length t = t.size

(* Fibonacci multiplicative hash: spreads consecutive packed block ids
   (same file, increasing index) across the table. The multiplier is
   2^62 / phi, odd; [land mask] keeps it in range on 63-bit ints. *)
let hash t key = (key * 0x2545F4914F6CDD1D) land t.mask

let find t key =
  let mask = t.mask in
  let keys = t.keys in
  let i = ref (hash t key) in
  let res = ref (-3) in
  while !res = -3 do
    let k = keys.(!i) in
    if k = key then res := t.vals.(!i)
    else if k = empty_key then res := -1
    else i := (!i + 1) land mask
  done;
  !res

let mem t key = find t key >= 0

let rehash t cap =
  let okeys = t.keys and ovals = t.vals in
  t.keys <- Array.make cap empty_key;
  t.vals <- Array.make cap 0;
  t.mask <- cap - 1;
  t.used <- t.size;
  let mask = t.mask in
  Array.iteri
    (fun i k ->
      if k >= 0 then begin
        let j = ref (hash t k) in
        while t.keys.(!j) >= 0 do
          j := (!j + 1) land mask
        done;
        t.keys.(!j) <- k;
        t.vals.(!j) <- ovals.(i)
      end)
    okeys

let set t key v =
  let mask = t.mask in
  let keys = t.keys in
  let i = ref (hash t key) in
  let slot = ref (-1) in
  let stop = ref false in
  while not !stop do
    let k = keys.(!i) in
    if k = key then begin
      t.vals.(!i) <- v;
      stop := true;
      slot := -1
    end
    else if k = empty_key then begin
      (* insert at the first tombstone seen, else here *)
      let j = if !slot >= 0 then !slot else !i in
      if !slot < 0 then t.used <- t.used + 1;
      t.keys.(j) <- key;
      t.vals.(j) <- v;
      t.size <- t.size + 1;
      stop := true;
      (* Load factor (incl. tombstones) capped at 3/4. Rehash to 4x the
         live count: a steady-state table (fixed live set, constant
         remove/insert churn) then has live-count*3 of tombstone
         headroom per rehash instead of thrashing at 2x. *)
      if t.used * 4 > (mask + 1) * 3 then
        rehash t (pow2 (max 8 (t.size * 4)) 8);
      slot := -1
    end
    else begin
      if k = tomb_key && !slot < 0 then slot := !i;
      i := (!i + 1) land mask
    end
  done

let remove t key =
  let mask = t.mask in
  let keys = t.keys in
  let i = ref (hash t key) in
  let stop = ref false in
  while not !stop do
    let k = keys.(!i) in
    if k = key then begin
      keys.(!i) <- tomb_key;
      t.size <- t.size - 1;
      (* If the next probe slot is empty, no chain continues through
         this slot: convert it — and the tombstone run ending here —
         back to empty. Steady-state churn (remove/insert at a fixed
         live count) then accretes no tombstones and never rehashes. *)
      if keys.((!i + 1) land mask) = empty_key then begin
        let j = ref !i in
        while keys.(!j) = tomb_key do
          keys.(!j) <- empty_key;
          t.used <- t.used - 1;
          j := (!j - 1) land mask
        done
      end;
      stop := true
    end
    else if k = empty_key then stop := true
    else i := (!i + 1) land mask
  done

let clear t =
  Array.fill t.keys 0 (Array.length t.keys) empty_key;
  t.size <- 0;
  t.used <- 0

(* Order is probe-layout order — callers must not depend on it. *)
let iter f t =
  Array.iteri (fun i k -> if k >= 0 then f k t.vals.(i)) t.keys
