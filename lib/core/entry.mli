(** In-cache block descriptor, shared between {!Buf} and {!Acm}.

    The record is deliberately transparent: BUF and ACM are two halves
    of one kernel subsystem (the paper splits the Ultrix buffer-cache
    code into exactly these two modules) and both manipulate entries
    directly. Nothing outside [acfc.core] sees this type. *)

type t = {
  key : Block.t;
  mutable owner : Pid.t;  (** process the block is currently charged to *)
  mutable dirty : bool;
  mutable pinned : int;  (** >0 while I/O is in flight; unevictable *)
  mutable referenced : bool;
      (** has the block been demand-referenced at least once? False only
          for read-ahead blocks awaiting their first use; victim
          selection avoids these while referenced blocks exist, the way
          a real kernel protects not-yet-consumed read-ahead pages *)
  mutable clock_ref : bool;
      (** CLOCK reference bit, used only under {!Config.Clock_sp} *)
  mutable global_node : t Dll.node option;  (** position in BUF's LRU list *)
  mutable level_node : t Dll.node option;  (** position in a manager level list *)
  mutable level : int;  (** current priority level *)
  mutable temp : bool;  (** [level] is a temporary priority *)
  mutable managed_by : Pid.t option;  (** manager whose lists hold it *)
  mutable incoming_placeholders : (Block.t, unit) Hashtbl.t option;
      (** keys of placeholders whose target is this entry, as a set;
          [None] until the first placeholder arrives. Manipulate through
          the [*_incoming] helpers below, which give O(1) add, remove
          and membership (an entry can be the target of many
          placeholders, and eviction must drop them all) *)
}

val make : key:Block.t -> owner:Pid.t -> t
(** Fresh unlinked entry: clean, unpinned, level 0, unmanaged. *)

val add_incoming : t -> Block.t -> unit
(** Record a placeholder key targeting this entry (idempotent). *)

val remove_incoming : t -> Block.t -> unit

val has_incoming : t -> Block.t -> bool

val iter_incoming : (Block.t -> unit) -> t -> unit
(** Iteration order is unspecified; callers must not let it reach
    observable results. *)

val clear_incoming : t -> unit

val is_pinned : t -> bool

val pin : t -> unit

val unpin : t -> unit
(** Raises [Invalid_argument] if not pinned. *)

val pp : Format.formatter -> t -> unit
