type t = {
  key : Block.t;
  mutable owner : Pid.t;
  mutable dirty : bool;
  mutable pinned : int;
  mutable referenced : bool;
  mutable clock_ref : bool;
  mutable global_node : t Dll.node option;
  mutable level_node : t Dll.node option;
  mutable level : int;
  mutable temp : bool;
  mutable managed_by : Pid.t option;
  mutable incoming_placeholders : (Block.t, unit) Hashtbl.t option;
}

let make ~key ~owner =
  {
    key;
    owner;
    dirty = false;
    pinned = 0;
    referenced = false;
    clock_ref = false;
    global_node = None;
    level_node = None;
    level = 0;
    temp = false;
    managed_by = None;
    incoming_placeholders = None;
  }

(* The table is allocated on first use: most entries never become a
   placeholder target, and the placeholder budget keeps live tables
   small. *)
let add_incoming t key =
  let table =
    match t.incoming_placeholders with
    | Some table -> table
    | None ->
      let table = Hashtbl.create 8 in
      t.incoming_placeholders <- Some table;
      table
  in
  Hashtbl.replace table key ()

let remove_incoming t key =
  match t.incoming_placeholders with
  | None -> ()
  | Some table -> Hashtbl.remove table key

let has_incoming t key =
  match t.incoming_placeholders with
  | None -> false
  | Some table -> Hashtbl.mem table key

let iter_incoming f t =
  match t.incoming_placeholders with
  | None -> ()
  | Some table -> Hashtbl.iter (fun key () -> f key) table

let clear_incoming t =
  match t.incoming_placeholders with None -> () | Some table -> Hashtbl.reset table

let is_pinned t = t.pinned > 0

let pin t = t.pinned <- t.pinned + 1

let unpin t =
  if t.pinned <= 0 then invalid_arg "Entry.unpin: not pinned";
  t.pinned <- t.pinned - 1

let pp ppf t =
  Format.fprintf ppf "%a{owner=%a;lvl=%d%s%s%s}" Block.pp t.key Pid.pp t.owner t.level
    (if t.temp then ";temp" else "")
    (if t.dirty then ";dirty" else "")
    (if t.pinned > 0 then ";pinned" else "")
