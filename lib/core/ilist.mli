(** Intrusive doubly-linked lists over shared int-array link columns.

    The columnar counterpart of {!Dll}: elements are integer slots, the
    prev/next pointers live in a shared {!store} (two parallel int
    columns, typically owned by a {!Ctab}), and a list handle is three
    ints. Linking, unlinking and moving are O(1) and allocation-free.

    By the cache's convention the {e front} of a list is the
    most-recently-used end and the {e back} the least-recently-used end.

    A slot may belong to at most one list per store at a time; callers
    track membership themselves (e.g. with a flag column). Operations on
    slots that are not in the given list silently corrupt it — the
    random-op property tests against {!Dll} in [test/test_ctab.ml] and
    the structure walks in [check_invariants] are the safety net. *)

val nil : int
(** The null slot, [-1]. *)

type store = { mutable prev : int array; mutable next : int array }

type t = { mutable front : int; mutable back : int; mutable size : int }

val make_store : int -> store

val grow_store : store -> int -> unit
(** [grow_store s cap] widens both columns to at least [cap] slots,
    preserving contents. No-op if already wide enough. *)

val create : unit -> t

val length : t -> int

val is_empty : t -> bool

val front : t -> int
(** {!nil} when empty. *)

val back : t -> int

val push_front : store -> t -> int -> unit

val push_back : store -> t -> int -> unit

val remove : store -> t -> int -> unit

val move_front : store -> t -> int -> unit

val move_back : store -> t -> int -> unit

val next_toward_front : store -> int -> int
(** Walk from the back (LRU end) toward the front; {!nil} at the front.
    Victim selection uses this to skip unevictable blocks. *)

val next_toward_back : store -> int -> int

val swap : store -> t -> int -> int -> unit
(** [swap s t a b] exchanges the positions of slots [a] and [b] in [t]
    (both must be members), the LRU-SP "swapping" step. Adjacent slots
    are handled. *)

val iter : (int -> unit) -> store -> t -> unit
(** Front (MRU) to back (LRU); safe against removal of the visited
    slot. *)

val to_list : store -> t -> int list

val mem : store -> t -> int -> bool
(** O(n) walk — for invariant checks and tests only. *)
