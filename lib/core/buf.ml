(* Columnar BUF: the block table is an open-addressing {!Itbl} from
   packed block ids to {!Ctab} slots, the global LRU list is an
   intrusive {!Ilist} over the shared columns, and placeholders live in
   a struct-of-arrays side table chained through the [ph_head] column.
   The steady-state hit and miss paths allocate nothing beyond the one
   [Block.t] handed to the backend on eviction; trace events are only
   constructed when a tracer or obs sink is installed.

   The record-based predecessor survives verbatim as {!Buf_ref}; the
   lockstep replay in {!Lockstep} / `bench check` proves the two emit
   identical event streams, stats and list orders on recorded traces
   and generated corpora. *)

module Obs = Acfc_obs

type t = {
  config : Config.t;
  acm : Acm.t;
  tab : Ctab.t;
  backend : Backend.t;
  table : Itbl.t; (* packed block id -> slot *)
  global : Ilist.t; (* front = MRU, back = LRU *)
  (* Placeholder store: parallel arrays, free-listed through [ph_next].
     [ph_idx] maps packed replaced-block id -> placeholder slot;
     [ph_fifo] keeps creation order (possibly stale keys) for recycling
     over the limit, as the record implementation did. *)
  mutable ph_key : int array;
  mutable ph_target : int array;
  mutable ph_chooser : int array;
  mutable ph_prev : int array; (* chain among placeholders of one target *)
  mutable ph_next : int array;
  mutable ph_free : int;
  ph_idx : Itbl.t;
  ph_fifo : int Queue.t;
  mutable pid_hits_a : int array;
  mutable pid_misses_a : int array;
  mutable tracer : (Event.t -> unit) option;
  mutable obs : Obs.Sink.t option;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable writebacks : int;
  mutable overrule_count : int;
  mutable placeholders_created : int;
  mutable placeholders_used : int;
}

exception Cache_busy

let create config ~acm ~tab ~backend =
  let ph_cap = max 8 (min 64 config.Config.max_placeholders) in
  {
    config;
    acm;
    tab;
    backend;
    table = Itbl.create (2 * config.Config.capacity_blocks);
    global = Ilist.create ();
    ph_key = Array.make ph_cap 0;
    ph_target = Array.make ph_cap 0;
    ph_chooser = Array.make ph_cap 0;
    ph_prev = Array.make ph_cap (-1);
    ph_next = Array.init ph_cap (fun i -> if i + 1 < ph_cap then i + 1 else -1);
    ph_free = 0;
    ph_idx = Itbl.create 64;
    ph_fifo = Queue.create ();
    pid_hits_a = Array.make 8 0;
    pid_misses_a = Array.make 8 0;
    tracer = None;
    obs = None;
    hits = 0;
    misses = 0;
    evictions = 0;
    writebacks = 0;
    overrule_count = 0;
    placeholders_created = 0;
    placeholders_used = 0;
  }

let set_tracer t tracer =
  t.tracer <- tracer;
  Acm.set_tracer t.acm tracer

(* Conversion to the dependency-free observability types. *)
let oblk key = { Obs.Trace.file = Block.file key; index = Block.index key }

let set_obs t obs =
  t.obs <- obs;
  Acm.set_obs t.acm obs;
  match obs with
  | None -> ()
  | Some sink ->
    (* Gauges close over the existing statistics fields: sampling at
       snapshot time costs the hot path nothing. *)
    let m = Obs.Sink.metrics sink in
    let g name read = Obs.Metrics.gauge m name read in
    g "cache.hits" (fun () -> float_of_int t.hits);
    g "cache.misses" (fun () -> float_of_int t.misses);
    g "cache.evictions" (fun () -> float_of_int t.evictions);
    g "cache.writebacks" (fun () -> float_of_int t.writebacks);
    g "cache.overrules" (fun () -> float_of_int t.overrule_count);
    g "cache.placeholders_created" (fun () -> float_of_int t.placeholders_created);
    g "cache.placeholders_used" (fun () -> float_of_int t.placeholders_used);
    g "cache.resident" (fun () -> float_of_int (Itbl.length t.table));
    g "cache.capacity" (fun () -> float_of_int t.config.Config.capacity_blocks);
    g "cache.hit_ratio" (fun () ->
        let total = t.hits + t.misses in
        if total = 0 then 0.0 else float_of_int t.hits /. float_of_int total)

let config t = t.config

let policy_name t = Config.alloc_policy_to_string t.config.Config.alloc_policy

let grow_pid_stats t pid =
  let n = max (pid + 1) (2 * Array.length t.pid_hits_a) in
  let grow a =
    let b = Array.make n 0 in
    Array.blit a 0 b 0 (Array.length a);
    b
  in
  t.pid_hits_a <- grow t.pid_hits_a;
  t.pid_misses_a <- grow t.pid_misses_a

let bump_hit t pid =
  let p = Pid.to_int pid in
  if p >= Array.length t.pid_hits_a then grow_pid_stats t p;
  t.pid_hits_a.(p) <- t.pid_hits_a.(p) + 1

let bump_miss t pid =
  let p = Pid.to_int pid in
  if p >= Array.length t.pid_misses_a then grow_pid_stats t p;
  t.pid_misses_a.(p) <- t.pid_misses_a.(p) + 1

(* {2 Placeholder bookkeeping} *)

let ph_grow t =
  let old = Array.length t.ph_key in
  let cap = old * 2 in
  let grow a init =
    let b = Array.make cap init in
    Array.blit a 0 b 0 old;
    b
  in
  t.ph_key <- grow t.ph_key 0;
  t.ph_target <- grow t.ph_target 0;
  t.ph_chooser <- grow t.ph_chooser 0;
  t.ph_prev <- grow t.ph_prev (-1);
  t.ph_next <- grow t.ph_next (-1);
  for i = old to cap - 1 do
    t.ph_next.(i) <- (if i + 1 < cap then i + 1 else -1)
  done;
  t.ph_free <- old

let ph_alloc t =
  if t.ph_free < 0 then ph_grow t;
  let p = t.ph_free in
  t.ph_free <- t.ph_next.(p);
  p

let ph_release t p =
  t.ph_next.(p) <- t.ph_free;
  t.ph_free <- p

(* Detach the placeholder for packed key [pkey] from the index and its
   target's chain; returns its slot ([-1] if none). The slot is NOT
   released — the caller reads its fields and then [ph_release]s it. *)
let remove_placeholder t pkey =
  let p = Itbl.find t.ph_idx pkey in
  if p >= 0 then begin
    Itbl.remove t.ph_idx pkey;
    let prev = t.ph_prev.(p) and next = t.ph_next.(p) in
    if prev >= 0 then t.ph_next.(prev) <- next
    else t.tab.Ctab.ph_head.(t.ph_target.(p)) <- next;
    if next >= 0 then t.ph_prev.(next) <- prev
  end;
  p

let discard_placeholder t pkey =
  let p = remove_placeholder t pkey in
  if p >= 0 then ph_release t p

(* Forget every placeholder pointing at slot [s] (about to leave the
   cache). *)
let drop_placeholders_at t s =
  let p = ref t.tab.Ctab.ph_head.(s) in
  while !p >= 0 do
    let next = t.ph_next.(!p) in
    Itbl.remove t.ph_idx t.ph_key.(!p);
    ph_release t !p;
    p := next
  done;
  t.tab.Ctab.ph_head.(s) <- -1

let add_placeholder t ~replaced ~target ~chooser =
  if t.config.Config.max_placeholders > 0 then begin
    let pkey = Block.pack replaced in
    (* Replace any stale record for the same block. *)
    discard_placeholder t pkey;
    (* Recycle the oldest placeholders over the limit; the FIFO may hold
       keys of records already removed, which we just skip. *)
    while Itbl.length t.ph_idx >= t.config.Config.max_placeholders do
      match Queue.take_opt t.ph_fifo with
      | None -> assert false (* table non-empty implies FIFO non-empty *)
      | Some k -> discard_placeholder t k
    done;
    let p = ph_alloc t in
    t.ph_key.(p) <- pkey;
    t.ph_target.(p) <- target;
    t.ph_chooser.(p) <- Pid.to_int chooser;
    let head = t.tab.Ctab.ph_head.(target) in
    t.ph_prev.(p) <- -1;
    t.ph_next.(p) <- head;
    if head >= 0 then t.ph_prev.(head) <- p;
    t.tab.Ctab.ph_head.(target) <- p;
    Itbl.set t.ph_idx pkey p;
    Queue.push pkey t.ph_fifo;
    t.placeholders_created <- t.placeholders_created + 1;
    (match t.tracer with
    | Some f ->
      f
        (Event.Placeholder_created
           { replaced; target = Ctab.block t.tab target; chooser })
    | None -> ());
    match t.obs with
    | None -> ()
    | Some sink ->
      Obs.Sink.emit sink
        (Obs.Trace.Placeholder_created
           {
             replaced = oblk replaced;
             target = oblk (Ctab.block t.tab target);
             chooser = Pid.to_int chooser;
           })
  end

(* {2 Replacement} *)

(* Remove slot [s] from every structure. Runs before any blocking
   backend call so that re-entrant cache operations see a consistent
   state; the slot itself is released by the caller once it is done
   reading the columns. *)
let detach ?(invalidated = false) t s =
  Itbl.remove t.table t.tab.Ctab.key.(s);
  Ilist.remove t.tab.Ctab.global t.global s;
  drop_placeholders_at t s;
  Acm.block_gone ~invalidated t.acm s

(* LRU-end candidate, skipping pinned blocks and — while anything else
   is available — not-yet-referenced read-ahead blocks.

   The walk carries all its state in arguments: a local closure here
   (capturing a [fallback] ref) would cost two heap blocks per miss,
   which is most of the steady-state allocation budget. *)
let rec lru_walk store pinned flags s fallback =
  if s < 0 then if fallback >= 0 then fallback else raise Cache_busy
  else if pinned.(s) > 0 then
    lru_walk store pinned flags (Ilist.next_toward_front store s) fallback
  else if flags.(s) land Ctab.referenced_bit = 0 then
    lru_walk store pinned flags
      (Ilist.next_toward_front store s)
      (if fallback < 0 then s else fallback)
  else s

let lru_candidate t =
  let tab = t.tab in
  lru_walk tab.Ctab.global tab.Ctab.pinned tab.Ctab.flags (Ilist.back t.global) (-1)

(* Second-chance candidate for the CLOCK global order (Sec. 7's
   virtual-memory variant): the hand sweeps from the oldest end; a page
   with its reference bit set is given a second chance (bit cleared,
   rotated to the young end). Pinned and never-referenced read-ahead
   pages are rotated without clearing, with the same fallback rule as
   the LRU walk. Bounded by 2n rotations. *)
let rec clock_sweep tab glist budget fallback =
  if budget <= 0 then if fallback >= 0 then fallback else raise Cache_busy
  else begin
    let s = Ilist.back glist in
    if s < 0 then raise Cache_busy
    else if tab.Ctab.pinned.(s) > 0 then begin
      Ilist.move_front tab.Ctab.global glist s;
      clock_sweep tab glist (budget - 1) fallback
    end
    else if tab.Ctab.flags.(s) land Ctab.referenced_bit = 0 then begin
      Ilist.move_front tab.Ctab.global glist s;
      clock_sweep tab glist (budget - 1) (if fallback < 0 then s else fallback)
    end
    else if tab.Ctab.flags.(s) land Ctab.clock_bit <> 0 then begin
      tab.Ctab.flags.(s) <- tab.Ctab.flags.(s) land lnot Ctab.clock_bit;
      Ilist.move_front tab.Ctab.global glist s;
      clock_sweep tab glist (budget - 1) fallback
    end
    else s
  end

let clock_candidate t = clock_sweep t.tab t.global (2 * Ilist.length t.global) (-1)

let pick_candidate t =
  match t.config.Config.alloc_policy with
  | Config.Clock_sp -> clock_candidate t
  | Config.Global_lru | Config.Alloc_lru | Config.Lru_s | Config.Lru_sp ->
    lru_candidate t

(* Evict exactly one block to make room for [missing]. [ph] is the
   consumed (already detached, not yet released) placeholder slot for
   [missing], or [-1]. *)
let evict_one t ~ph ~missing =
  let tab = t.tab in
  let candidate =
    if ph >= 0 && tab.Ctab.pinned.(t.ph_target.(ph)) = 0 then begin
      let target = t.ph_target.(ph) in
      let chooser = Pid.make t.ph_chooser.(ph) in
      t.placeholders_used <- t.placeholders_used + 1;
      (match t.tracer with
      | Some f ->
        f
          (Event.Placeholder_used
             { missing; target = Ctab.block tab target; chooser })
      | None -> ());
      (match t.obs with
      | None -> ()
      | Some sink ->
        Obs.Sink.emit sink
          (Obs.Trace.Placeholder_hit
             {
               missing = oblk missing;
               target = oblk (Ctab.block tab target);
               chooser = Pid.to_int chooser;
             }));
      Acm.placeholder_used t.acm ~chooser;
      target
    end
    else pick_candidate t
  in
  let chosen =
    match t.config.Config.alloc_policy with
    | Config.Global_lru -> candidate
    | Config.Alloc_lru | Config.Lru_s | Config.Lru_sp | Config.Clock_sp ->
      Acm.replace_block t.acm ~candidate ~missing
  in
  let overruled = chosen <> candidate in
  if overruled then begin
    t.overrule_count <- t.overrule_count + 1;
    (match t.config.Config.alloc_policy with
    | Config.Lru_s | Config.Lru_sp | Config.Clock_sp ->
      (* Swap the global-list positions of the kernel's candidate and
         the manager's alternative (Fig. 2 of the paper). *)
      Ilist.swap tab.Ctab.global t.global candidate chosen;
      (match t.obs with
      | None -> ()
      | Some sink ->
        Obs.Sink.emit sink
          (Obs.Trace.Swap
             {
               kept = oblk (Ctab.block tab candidate);
               victim = oblk (Ctab.block tab chosen);
             }))
    | Config.Alloc_lru -> ()
    | Config.Global_lru -> assert false (* never consults, cannot overrule *));
    match t.config.Config.alloc_policy with
    | Config.Lru_sp | Config.Clock_sp ->
      let chooser =
        let m = tab.Ctab.managed.(chosen) in
        if m >= 0 then Pid.make m
        else assert false (* only managers overrule *)
      in
      add_placeholder t ~replaced:(Ctab.block tab chosen) ~target:candidate
        ~chooser
    | Config.Global_lru | Config.Alloc_lru | Config.Lru_s -> ()
  end;
  (match t.tracer with
  | Some f ->
    f
      (Event.Evict
         {
           victim = Ctab.block tab chosen;
           owner = Pid.make tab.Ctab.owner.(chosen);
           candidate = Ctab.block tab candidate;
           overruled;
         })
  | None -> ());
  (match t.obs with
  | None -> ()
  | Some sink ->
    Obs.Sink.emit sink
      (Obs.Trace.Evict
         {
           victim = oblk (Ctab.block tab chosen);
           owner = tab.Ctab.owner.(chosen);
           candidate = oblk (Ctab.block tab candidate);
           policy = policy_name t;
           reason = "capacity";
         }));
  let dirty = tab.Ctab.flags.(chosen) land Ctab.dirty_bit <> 0 in
  if (not dirty) && t.backend == Backend.null then begin
    (* Null-backend fast path: a clean victim with no-op backend calls
       needs no [Block.t] materialised — skipping it removes the last
       steady-state allocation on the miss path. Observationally
       identical: the Evict trace/obs events above build their own
       copies, and [Backend.null] ignores its argument. *)
    detach t chosen;
    t.evictions <- t.evictions + 1;
    Ctab.release tab chosen
  end
  else begin
    let victim = Ctab.block tab chosen in
    detach t chosen;
    t.evictions <- t.evictions + 1;
    if dirty then begin
      t.writebacks <- t.writebacks + 1;
      (match t.tracer with Some f -> f (Event.Writeback victim) | None -> ());
      (match t.obs with
      | None -> ()
      | Some sink -> Obs.Sink.emit sink (Obs.Trace.Writeback { block = oblk victim }));
      t.backend.Backend.write_block victim
    end;
    t.backend.Backend.evicted victim;
    Ctab.release tab chosen
  end

(* Install [key] in the cache, evicting if needed, and optionally fetch
   its contents. The slot is pinned during the fetch so re-entrant
   replacement cannot steal the frame. *)
let load t ~pid key pkey ~dirty ~fetch ~prefetched =
  let ph = remove_placeholder t pkey in
  if Itbl.length t.table >= t.config.Config.capacity_blocks then
    evict_one t ~ph ~missing:key;
  if ph >= 0 then ph_release t ph;
  let tab = t.tab in
  let s =
    Ctab.alloc tab ~file:(Block.file key) ~index:(Block.index key) ~key:pkey
      ~owner:(Pid.to_int pid)
  in
  tab.Ctab.flags.(s) <-
    (if prefetched then 0 else Ctab.referenced_bit)
    lor (if dirty then Ctab.dirty_bit else 0);
  Itbl.set t.table pkey s;
  Ilist.push_front tab.Ctab.global t.global s;
  Acm.new_block t.acm ~pid ~prefetched s;
  if fetch then begin
    tab.Ctab.pinned.(s) <- tab.Ctab.pinned.(s) + 1;
    (try t.backend.Backend.read_block key
     with e ->
       tab.Ctab.pinned.(s) <- tab.Ctab.pinned.(s) - 1;
       raise e);
    tab.Ctab.pinned.(s) <- tab.Ctab.pinned.(s) - 1
  end

let touch t ~pid s =
  let tab = t.tab in
  tab.Ctab.flags.(s) <- tab.Ctab.flags.(s) lor Ctab.referenced_bit;
  (* Under CLOCK the global order is insertion/rotation order; a hit
     only sets the reference bit, exactly as a VM page cache's hardware
     bit would. *)
  (match t.config.Config.alloc_policy with
  | Config.Clock_sp -> tab.Ctab.flags.(s) <- tab.Ctab.flags.(s) lor Ctab.clock_bit
  | Config.Global_lru | Config.Alloc_lru | Config.Lru_s | Config.Lru_sp ->
    Ilist.move_front tab.Ctab.global t.global s);
  Acm.block_accessed t.acm ~pid s

let obs_hit t ~pid key =
  match t.obs with
  | None -> ()
  | Some sink ->
    Obs.Sink.emit sink
      (Obs.Trace.Cache_hit { pid = Pid.to_int pid; block = oblk key })

let obs_miss t ~pid key ~prefetch =
  match t.obs with
  | None -> ()
  | Some sink ->
    Obs.Sink.emit sink
      (Obs.Trace.Cache_miss { pid = Pid.to_int pid; block = oblk key; prefetch })

let read ?(prefetch = false) t ~pid key =
  let pkey = Block.pack key in
  let s = Itbl.find t.table pkey in
  if s >= 0 then begin
    t.hits <- t.hits + 1;
    bump_hit t pid;
    (match t.tracer with
    | Some f -> f (Event.Hit { pid; block = key })
    | None -> ());
    obs_hit t ~pid key;
    touch t ~pid s;
    `Hit
  end
  else begin
    t.misses <- t.misses + 1;
    bump_miss t pid;
    (match t.tracer with
    | Some f -> f (Event.Miss { pid; block = key; prefetch })
    | None -> ());
    obs_miss t ~pid key ~prefetch;
    load t ~pid key pkey ~dirty:false ~fetch:true ~prefetched:prefetch;
    `Miss
  end

let write t ~pid key ~fetch =
  let pkey = Block.pack key in
  let s = Itbl.find t.table pkey in
  if s >= 0 then begin
    t.hits <- t.hits + 1;
    bump_hit t pid;
    (match t.tracer with
    | Some f -> f (Event.Hit { pid; block = key })
    | None -> ());
    obs_hit t ~pid key;
    t.tab.Ctab.flags.(s) <- t.tab.Ctab.flags.(s) lor Ctab.dirty_bit;
    touch t ~pid s;
    `Hit
  end
  else begin
    t.misses <- t.misses + 1;
    bump_miss t pid;
    (match t.tracer with
    | Some f -> f (Event.Miss { pid; block = key; prefetch = false })
    | None -> ());
    obs_miss t ~pid key ~prefetch:false;
    load t ~pid key pkey ~dirty:true ~fetch ~prefetched:false;
    `Miss
  end

let sync t ?file () =
  let tab = t.tab in
  let wanted s =
    tab.Ctab.flags.(s) land Ctab.dirty_bit <> 0
    && (match file with Some f -> tab.Ctab.file.(s) = f | None -> true)
  in
  let dirty = ref [] in
  Itbl.iter (fun pkey s -> if wanted s then dirty := (pkey, s) :: !dirty) t.table;
  (* Write in address order: what a real flush daemon's sorted queue
     would do, and deterministic for tests. [Block.pack] is
     order-preserving, so sorting the packed ids is address order. *)
  let dirty =
    List.sort (fun (a, _) (b, _) -> Int.compare a b) !dirty
  in
  let written = ref 0 in
  List.iter
    (fun (pkey, _) ->
      (* Re-check against the block's current slot: a concurrent
         eviction may have flushed it already, or the frame may have
         been recycled for a fresh copy of the same block. *)
      let s = Itbl.find t.table pkey in
      if s >= 0 && tab.Ctab.flags.(s) land Ctab.dirty_bit <> 0 then begin
        let key = Block.unpack pkey in
        tab.Ctab.pinned.(s) <- tab.Ctab.pinned.(s) + 1;
        tab.Ctab.flags.(s) <- tab.Ctab.flags.(s) land lnot Ctab.dirty_bit;
        t.writebacks <- t.writebacks + 1;
        incr written;
        (match t.tracer with Some f -> f (Event.Writeback key) | None -> ());
        (match t.obs with
        | None -> ()
        | Some sink -> Obs.Sink.emit sink (Obs.Trace.Writeback { block = oblk key }));
        (try t.backend.Backend.write_block key
         with e ->
           tab.Ctab.pinned.(s) <- tab.Ctab.pinned.(s) - 1;
           raise e);
        tab.Ctab.pinned.(s) <- tab.Ctab.pinned.(s) - 1
      end)
    dirty;
  !written

(* Clean and return the contiguous dirty run following [key]: blocks
   key+1, key+2, ... of the same file that are resident, dirty and
   unpinned, at most [max_blocks - 1] of them. The caller is about to
   write [key] to the device and commits to writing these in the same
   request (clustered write-back), so their dirty bits are cleared
   here. *)
let take_dirty_followers t key ~max_blocks =
  let tab = t.tab in
  let rec go i acc =
    if i >= max_blocks then List.rev acc
    else
      let next = Block.make ~file:(Block.file key) ~index:(Block.index key + i) in
      let s = Itbl.find t.table (Block.pack next) in
      if
        s >= 0
        && tab.Ctab.flags.(s) land Ctab.dirty_bit <> 0
        && tab.Ctab.pinned.(s) = 0
      then begin
        tab.Ctab.flags.(s) <- tab.Ctab.flags.(s) land lnot Ctab.dirty_bit;
        t.writebacks <- t.writebacks + 1;
        (match t.tracer with Some f -> f (Event.Writeback next) | None -> ());
        (match t.obs with
        | None -> ()
        | Some sink -> Obs.Sink.emit sink (Obs.Trace.Writeback { block = oblk next }));
        go (i + 1) (next :: acc)
      end
      else List.rev acc
  in
  if max_blocks <= 1 then [] else go 1 []

let invalidate_file t ~file =
  let tab = t.tab in
  let slots = ref [] in
  Itbl.iter (fun pkey s -> if tab.Ctab.file.(s) = file then slots := (pkey, s) :: !slots) t.table;
  (* Ascending block order: deterministic regardless of table layout. *)
  let slots = List.sort (fun (a, _) (b, _) -> Int.compare a b) !slots in
  let dropped = ref 0 in
  List.iter
    (fun (pkey, s) ->
      if Itbl.find t.table pkey = s && tab.Ctab.pinned.(s) = 0 then begin
        let key = Block.unpack pkey in
        (match t.obs with
        | None -> ()
        | Some sink ->
          Obs.Sink.emit sink
            (Obs.Trace.Evict
               {
                 victim = oblk key;
                 owner = tab.Ctab.owner.(s);
                 candidate = oblk key;
                 policy = policy_name t;
                 reason = "invalidate";
               }));
        detach ~invalidated:true t s;
        incr dropped;
        t.backend.Backend.evicted key;
        Ctab.release tab s
      end)
    slots;
  !dropped

let contains t key = Itbl.mem t.table (Block.pack key)

let is_dirty t key =
  let s = Itbl.find t.table (Block.pack key) in
  s >= 0 && t.tab.Ctab.flags.(s) land Ctab.dirty_bit <> 0

let length t = Itbl.length t.table

let capacity t = t.config.Config.capacity_blocks

let hits t = t.hits
let misses t = t.misses
let evictions t = t.evictions
let writebacks t = t.writebacks
let overrule_count t = t.overrule_count
let placeholders_created t = t.placeholders_created
let placeholders_used t = t.placeholders_used
let placeholder_count t = Itbl.length t.ph_idx

let pid_hits t pid =
  let p = Pid.to_int pid in
  if p < Array.length t.pid_hits_a then t.pid_hits_a.(p) else 0

let pid_misses t pid =
  let p = Pid.to_int pid in
  if p < Array.length t.pid_misses_a then t.pid_misses_a.(p) else 0

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0;
  t.evictions <- 0;
  t.writebacks <- 0;
  t.overrule_count <- 0;
  t.placeholders_created <- 0;
  t.placeholders_used <- 0;
  Array.fill t.pid_hits_a 0 (Array.length t.pid_hits_a) 0;
  Array.fill t.pid_misses_a 0 (Array.length t.pid_misses_a) 0

let lru_keys t =
  List.map (fun s -> Ctab.block t.tab s) (Ilist.to_list t.tab.Ctab.global t.global)

let check_invariants t =
  let tab = t.tab in
  if Itbl.length t.table > t.config.Config.capacity_blocks then
    failwith "Buf: over capacity";
  if Ilist.length t.global <> Itbl.length t.table then
    failwith "Buf: global list / table size mismatch";
  Ilist.iter
    (fun s ->
      if Ctab.is_free tab s then failwith "Buf: free slot on global list";
      if Itbl.find t.table tab.Ctab.key.(s) <> s then
        failwith "Buf: global-list entry not in table")
    tab.Ctab.global t.global;
  Itbl.iter
    (fun pkey s ->
      if Ctab.is_free tab s then failwith "Buf: table maps to free slot";
      if tab.Ctab.key.(s) <> pkey then failwith "Buf: table key/slot mismatch";
      if not (Ilist.mem tab.Ctab.global t.global s) then
        failwith "Buf: table entry not on global list")
    t.table;
  Itbl.iter
    (fun pkey p ->
      if t.ph_key.(p) <> pkey then failwith "Buf: placeholder key mismatch";
      let target = t.ph_target.(p) in
      if Ctab.is_free tab target then failwith "Buf: placeholder target freed";
      if Itbl.find t.table tab.Ctab.key.(target) <> target then
        failwith "Buf: placeholder target not resident";
      (* The placeholder must be on its target's incoming chain. *)
      let on_chain = ref false in
      let q = ref tab.Ctab.ph_head.(target) in
      while !q >= 0 do
        if !q = p then on_chain := true;
        q := t.ph_next.(!q)
      done;
      if not !on_chain then
        failwith "Buf: placeholder missing from target's incoming list")
    t.ph_idx;
  Acm.check_invariants t.acm
