(* Drive the columnar {!Cache} and the record-based {!Cache_ref} through
   the same op sequence and diff every observable. See the interface for
   the contract; the comparisons below are intentionally string-based —
   a divergence report has to be readable anyway, and rendering both
   sides through the same printers guarantees the comparison and the
   report can never disagree. *)

type op =
  | Read of { pid : Pid.t; block : Block.t; prefetch : bool }
  | Write of { pid : Pid.t; block : Block.t; fetch : bool }
  | Sync of Block.file option
  | Invalidate_file of Block.file
  | Register_manager of Pid.t
  | Unregister_manager of Pid.t
  | Set_priority of { pid : Pid.t; file : Block.file; prio : int }
  | Set_policy of { pid : Pid.t; prio : int; policy : Policy.t }
  | Set_temppri of {
      pid : Pid.t;
      file : Block.file;
      first : int;
      last : int;
      prio : int;
    }
  | Set_chooser of {
      pid : Pid.t;
      chooser :
        (candidate:Block.t -> resident:Block.t list -> Block.t option) option;
    }

let pp_op ppf = function
  | Read { pid; block; prefetch } ->
    Format.fprintf ppf "read pid=%a %a%s" Pid.pp pid Block.pp block
      (if prefetch then " (prefetch)" else "")
  | Write { pid; block; fetch } ->
    Format.fprintf ppf "write pid=%a %a%s" Pid.pp pid Block.pp block
      (if fetch then " (fetch)" else "")
  | Sync None -> Format.fprintf ppf "sync"
  | Sync (Some f) -> Format.fprintf ppf "sync file=%d" f
  | Invalidate_file f -> Format.fprintf ppf "invalidate file=%d" f
  | Register_manager pid -> Format.fprintf ppf "register %a" Pid.pp pid
  | Unregister_manager pid -> Format.fprintf ppf "unregister %a" Pid.pp pid
  | Set_priority { pid; file; prio } ->
    Format.fprintf ppf "set_priority pid=%a file=%d prio=%d" Pid.pp pid file prio
  | Set_policy { pid; prio; policy } ->
    Format.fprintf ppf "set_policy pid=%a prio=%d %a" Pid.pp pid prio Policy.pp
      policy
  | Set_temppri { pid; file; first; last; prio } ->
    Format.fprintf ppf "set_temppri pid=%a file=%d [%d,%d] prio=%d" Pid.pp pid
      file first last prio
  | Set_chooser { pid; chooser } ->
    Format.fprintf ppf "set_chooser pid=%a %s" Pid.pp pid
      (match chooser with Some _ -> "<fun>" | None -> "none")

type divergence = {
  step : int;
  op : string;
  what : string;
  columnar : string;
  reference : string;
}

let pp_divergence ppf d =
  Format.fprintf ppf
    "step %d (%s): %s differ@,  columnar:  %s@,  reference: %s" d.step d.op
    d.what d.columnar d.reference

(* Render a result / an exception through one channel so both sides are
   compared exactly as they would be reported. *)
let outcome f =
  match f () with
  | s -> s
  | exception Buf.Cache_busy -> "raise Cache_busy"
  | exception Buf_ref.Cache_busy -> "raise Cache_busy"
  | exception Invalid_argument m -> "raise Invalid_argument " ^ m
  | exception Failure m -> "raise Failure " ^ m

let hm = function `Hit -> "hit" | `Miss -> "miss"

let ctl = function
  | Ok () -> "ok"
  | Error e -> "error " ^ Error.to_string e

let events_to_string evs =
  Format.asprintf "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut Event.pp)
    (List.rev evs)

let blocks_to_string bs =
  Format.asprintf "@[<h>%a@]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
       Block.pp)
    bs

let run ?(deep_every = 512) config ops =
  let a = Cache.create config in
  let b = Cache_ref.create config in
  let ea = ref [] and eb = ref [] in
  Cache.set_tracer a (Some (fun e -> ea := e :: !ea));
  Cache_ref.set_tracer b (Some (fun e -> eb := e :: !eb));
  (* (pid, prio) level lists worth diffing: every pair a control op
     touched, plus level 0 of every registered manager (where blocks
     land by default). *)
  let levels = ref [] in
  let note_level pid prio =
    if not (List.mem (pid, prio) !levels) then levels := (pid, prio) :: !levels
  in
  let divergence = ref None in
  let report step op what columnar reference =
    if !divergence = None then
      divergence :=
        Some
          {
            step;
            op = Format.asprintf "%a" pp_op op;
            what;
            columnar;
            reference;
          }
  in
  let compare_state step op =
    let stat what va vb =
      if !divergence = None && va <> vb then
        report step op what (string_of_int va) (string_of_int vb)
    in
    stat "hits" (Cache.hits a) (Cache_ref.hits b);
    stat "misses" (Cache.misses a) (Cache_ref.misses b);
    stat "evictions" (Cache.evictions a) (Cache_ref.evictions b);
    stat "writebacks" (Cache.writebacks a) (Cache_ref.writebacks b);
    stat "overrules" (Cache.overrule_count a) (Cache_ref.overrule_count b);
    stat "placeholders_created" (Cache.placeholders_created a)
      (Cache_ref.placeholders_created b);
    stat "placeholders_used" (Cache.placeholders_used a)
      (Cache_ref.placeholders_used b);
    stat "placeholder_count" (Cache.placeholder_count a)
      (Cache_ref.placeholder_count b);
    stat "resident blocks" (Cache.length a) (Cache_ref.length b);
    (if !divergence = None then
       let la = blocks_to_string (Cache.lru_keys a)
       and lb = blocks_to_string (Cache_ref.lru_keys b) in
       if la <> lb then report step op "global LRU order" la lb);
    List.iter
      (fun (pid, prio) ->
        if !divergence = None then begin
          let la =
            outcome (fun () ->
                blocks_to_string (Cache.level_blocks a pid ~prio))
          and lb =
            outcome (fun () ->
                blocks_to_string (Cache_ref.level_blocks b pid ~prio))
          in
          if la <> lb then
            report step op
              (Printf.sprintf "level (pid=%d, prio=%d)" (Pid.to_int pid) prio)
              la lb
        end)
      !levels;
    if !divergence = None then begin
      (match Cache.check_invariants a with
      | () -> ()
      | exception Failure m -> report step op "columnar invariants" m "ok");
      match Cache_ref.check_invariants b with
      | () -> ()
      | exception Failure m -> report step op "reference invariants" "ok" m
    end
  in
  let n = Array.length ops in
  let step = ref 0 in
  while !divergence = None && !step < n do
    let op = ops.(!step) in
    ea := [];
    eb := [];
    let ra =
      outcome (fun () ->
          match op with
          | Read { pid; block; prefetch } -> hm (Cache.read ~prefetch a ~pid block)
          | Write { pid; block; fetch } -> hm (Cache.write a ~pid block ~fetch)
          | Sync file -> string_of_int (Cache.sync a ?file ())
          | Invalidate_file file -> string_of_int (Cache.invalidate_file a ~file)
          | Register_manager pid -> ctl (Cache.register_manager a pid)
          | Unregister_manager pid ->
            Cache.unregister_manager a pid;
            "ok"
          | Set_priority { pid; file; prio } ->
            ctl (Cache.set_priority a pid ~file ~prio)
          | Set_policy { pid; prio; policy } ->
            ctl (Cache.set_policy a pid ~prio policy)
          | Set_temppri { pid; file; first; last; prio } ->
            ctl (Cache.set_temppri a pid ~file ~first ~last ~prio)
          | Set_chooser { pid; chooser } -> ctl (Cache.set_chooser a pid chooser))
    in
    let rb =
      outcome (fun () ->
          match op with
          | Read { pid; block; prefetch } ->
            hm (Cache_ref.read ~prefetch b ~pid block)
          | Write { pid; block; fetch } -> hm (Cache_ref.write b ~pid block ~fetch)
          | Sync file -> string_of_int (Cache_ref.sync b ?file ())
          | Invalidate_file file ->
            string_of_int (Cache_ref.invalidate_file b ~file)
          | Register_manager pid -> ctl (Cache_ref.register_manager b pid)
          | Unregister_manager pid ->
            Cache_ref.unregister_manager b pid;
            "ok"
          | Set_priority { pid; file; prio } ->
            ctl (Cache_ref.set_priority b pid ~file ~prio)
          | Set_policy { pid; prio; policy } ->
            ctl (Cache_ref.set_policy b pid ~prio policy)
          | Set_temppri { pid; file; first; last; prio } ->
            ctl (Cache_ref.set_temppri b pid ~file ~first ~last ~prio)
          | Set_chooser { pid; chooser } ->
            ctl (Cache_ref.set_chooser b pid chooser))
    in
    (match op with
    | Register_manager pid -> note_level pid 0
    | Set_priority { pid; prio; _ } | Set_policy { pid; prio; _ } ->
      note_level pid prio
    | Set_temppri { pid; prio; _ } -> note_level pid prio
    | _ -> ());
    if ra <> rb then report !step op "result" ra rb;
    (if !divergence = None then
       let sa = events_to_string !ea and sb = events_to_string !eb in
       if sa <> sb then report !step op "event stream" sa sb);
    if !divergence = None && (!step + 1) mod deep_every = 0 then
      compare_state !step op;
    incr step
  done;
  if !divergence = None && n > 0 then compare_state (n - 1) ops.(n - 1);
  match !divergence with Some d -> Error d | None -> Ok n

let of_references ?(pid = Pid.make 1) blocks =
  Array.map (fun block -> Read { pid; block; prefetch = false }) blocks
