(** Columnar block/entry table — flat int columns replacing per-entry
    heap records on the cache hot path.

    A resident block is a {e slot}: an index into the parallel columns
    below. BUF and ACM address state as [tab.flags.(slot)] etc. and
    thread the slot through the intrusive {!Ilist} link stores
    ([global] for the BUF global-position list, [lvl] for the ACM level
    lists). Slot allocation is a free-list pop; nothing on the
    steady-state path allocates.

    The columns are exposed as record fields on purpose — the hot paths
    in [Buf]/[Acm] index them directly rather than going through
    accessor calls. *)

type t = {
  mutable cap : int;
  mutable file : int array;  (** file id; [-1] marks a free slot *)
  mutable index : int array;  (** block index within the file *)
  mutable key : int array;  (** [Block.pack] of (file, index) *)
  mutable owner : int array;  (** pid that faulted the block in *)
  mutable flags : int array;  (** bit set: dirty / referenced / clock / temp *)
  mutable pinned : int array;  (** pin count *)
  mutable level : int array;  (** ACM level priority the block sits in *)
  mutable managed : int array;  (** managing pid, [-1] = kernel-managed *)
  mutable ph_head : int array;
      (** head of the block's incoming-placeholder chain, [-1] = none *)
  global : Ilist.store;
  lvl : Ilist.store;
  mutable free_next : int array;
  mutable free : int;
  mutable live : int;
}

val dirty_bit : int

val referenced_bit : int

val clock_bit : int

val temp_bit : int

val create : ?initial:int -> unit -> t
(** [create ~initial ()] pre-sizes for [initial] slots (e.g. the cache
    capacity, so steady state never grows). *)

val capacity : t -> int

val live : t -> int

val alloc : t -> file:int -> index:int -> key:int -> owner:int -> int
(** Pop a free slot and initialise it: flags/pins/level zero, unmanaged,
    no placeholders, links untouched (the slot is in no list). Grows by
    doubling when full. *)

val release : t -> int -> unit
(** Return a slot to the free list. The caller must already have
    unlinked it from every list. *)

val is_free : t -> int -> bool

val block : t -> int -> Block.t
(** Rebuild the [Block.t] for a slot (allocates — cold paths only). *)
