(** Open-addressing int -> int hash table for the cache hot path.

    Replaces [(Block.t, Entry.t) Hashtbl] on the columnar core: keys
    are non-negative ints (packed block ids, see {!Block.pack}), values
    are non-negative ints (table slots). Linear probing with
    tombstones over a power-of-two array; {!find} is allocation-free.

    Iteration order is probe-layout order and carries no meaning —
    anything order-sensitive must keep an explicit list. *)

type t

val create : int -> t
(** [create n] sizes the table for about [n] expected bindings. *)

val length : t -> int

val find : t -> int -> int
(** [find t key] is the bound value, or [-1] if absent. Allocation-free.
    Values are non-negative by contract, so [-1] is unambiguous. *)

val mem : t -> int -> bool

val set : t -> int -> int -> unit
(** Insert or replace. [key] and the value must be non-negative. *)

val remove : t -> int -> unit
(** No-op if absent. *)

val clear : t -> unit

val iter : (int -> int -> unit) -> t -> unit
(** [iter f t] calls [f key value] in probe-layout order (meaningless —
    tests and invariant checks only). *)
