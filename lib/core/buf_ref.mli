(** The buffer cache module (BUF).

    BUF "handles cache management and bookkeeping and implements the
    allocation policy" (paper Sec. 4): the block table, the kernel's
    global LRU list, and — for LRU-SP — the swapping and placeholder
    machinery. On replacement it picks a candidate and asks {!Acm_ref}
    which block the candidate's manager actually wants to give up.

    Replacement walk (paper Sec. 4, for {!Config.Lru_sp}):
    + if the missing block has a placeholder, the block the placeholder
      points to becomes the candidate (and the manager that caused the
      placeholder is charged a mistake); otherwise the candidate is the
      LRU-end block;
    + the candidate's manager is consulted ([Acm_ref.replace_block]) and may
      overrule with a block of its own;
    + on overrule the two blocks swap positions in the global LRU list
      and a placeholder for the evicted block, pointing at the surviving
      candidate, is installed.

    The other {!Config.alloc_policy} values disable the corresponding
    steps. *)

type t

exception Cache_busy
(** Raised when every cached block is pinned by in-flight I/O and no
    victim can be chosen. Callers inside a simulation should back off
    and retry; it cannot happen unless concurrent I/Os ≥ cache size. *)

val create : Config.t -> acm:Acm_ref.t -> backend:Backend.t -> t

val set_tracer : t -> (Event.t -> unit) option -> unit
(** Also installs the tracer on the underlying {!Acm_ref}. *)

val set_obs : t -> Acfc_obs.Sink.t option -> unit
(** Install (or remove) the observability sink, also on the underlying
    {!Acm_ref}. When installed, every hit, miss, eviction, swap, writeback
    and placeholder transition is emitted as a timestamped
    {!Acfc_obs.Trace.t} event, and the cache's counters are registered
    as gauges on the sink's metrics registry. Off ([None]) by default;
    the disabled hot path costs one branch. *)

val config : t -> Config.t

(** {2 Data path} *)

val read : ?prefetch:bool -> t -> pid:Pid.t -> Block.t -> [ `Hit | `Miss ]
(** Reference a block for reading; on a miss, makes room (replacement),
    inserts the block and fetches it through the backend. [prefetch]
    (default false) marks a read-ahead: the block is installed without
    recency (see {!Acm_ref.new_block}). *)

val write : t -> pid:Pid.t -> Block.t -> fetch:bool -> [ `Hit | `Miss ]
(** Reference a block for writing, marking it dirty. On a miss the
    block is installed without device traffic unless [fetch] is true
    (read-modify-write for partial-block writes). *)

val sync : t -> ?file:Block.file -> unit -> int
(** Write back every dirty block (of [file] if given); returns how many
    backend write-backs were issued (a backend doing clustered
    write-back may clean several blocks per call via
    {!take_dirty_followers}). *)

val take_dirty_followers : t -> Block.t -> max_blocks:int -> Block.t list
(** Support for clustered write-back (the backend may write several
    contiguous blocks in one device request): clean and return the
    resident, dirty, unpinned blocks contiguously following [key] in its
    file, at most [max_blocks - 1]. The caller {e must} write them. *)

val invalidate_file : t -> file:Block.file -> int
(** Drop all cached blocks of a deleted file, dirty ones included,
    without writing them back. Pinned blocks are skipped. Returns the
    number of blocks dropped. *)

val contains : t -> Block.t -> bool

val is_dirty : t -> Block.t -> bool
(** False when the block is absent. *)

val length : t -> int

val capacity : t -> int

(** {2 Statistics} *)

val hits : t -> int
val misses : t -> int
val evictions : t -> int
val writebacks : t -> int
val overrule_count : t -> int
val placeholders_created : t -> int
val placeholders_used : t -> int
val placeholder_count : t -> int
(** Placeholders currently installed. *)

val pid_hits : t -> Pid.t -> int
val pid_misses : t -> Pid.t -> int

val reset_stats : t -> unit
(** Zero the counters above (cache contents are untouched). *)

(** {2 Testing support} *)

val lru_keys : t -> Block.t list
(** Global LRU list, MRU end first. *)

val check_invariants : t -> unit
(** Raise [Failure] on any broken invariant, including {!Acm_ref}'s. *)
