type t = { cache : Cache.t; pid : Pid.t }

let attach cache pid =
  match Cache.register_manager cache pid with
  | Ok () -> Ok { cache; pid }
  | Error _ as e -> e

let detach t = Cache.unregister_manager t.cache t.pid

let pid t = t.pid

let cache t = t.cache

let set_priority t ~file prio = Cache.set_priority t.cache t.pid ~file ~prio

let get_priority t ~file = Cache.get_priority t.cache t.pid ~file

let set_policy t ~prio policy = Cache.set_policy t.cache t.pid ~prio policy

let get_policy t ~prio = Cache.get_policy t.cache t.pid ~prio

let set_temppri t ~file ~first ~last ~prio =
  Cache.set_temppri t.cache t.pid ~file ~first ~last ~prio

let set_chooser t chooser = Cache.set_chooser t.cache t.pid chooser

let set_plugin t plugin = Cache.set_plugin t.cache t.pid plugin

let revoked t = Cache.manager_revoked t.cache t.pid
