module Obs = Acfc_obs

type placeholder = { target : Entry.t; chooser : Pid.t }

type pid_stats = { mutable p_hits : int; mutable p_misses : int }

type t = {
  config : Config.t;
  acm : Acm_ref.t;
  backend : Backend.t;
  table : (Block.t, Entry.t) Hashtbl.t;
  global : Entry.t Dll.t;  (* front = MRU, back = LRU *)
  placeholders : (Block.t, placeholder) Hashtbl.t;
  ph_fifo : Block.t Queue.t;  (* creation order, for recycling over the limit *)
  per_pid : (Pid.t, pid_stats) Hashtbl.t;
  mutable tracer : (Event.t -> unit) option;
  mutable obs : Obs.Sink.t option;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable writebacks : int;
  mutable overrule_count : int;
  mutable placeholders_created : int;
  mutable placeholders_used : int;
}

exception Cache_busy

let create config ~acm ~backend =
  {
    config;
    acm;
    backend;
    table = Hashtbl.create (2 * config.Config.capacity_blocks);
    global = Dll.create ();
    placeholders = Hashtbl.create 64;
    ph_fifo = Queue.create ();
    per_pid = Hashtbl.create 8;
    tracer = None;
    obs = None;
    hits = 0;
    misses = 0;
    evictions = 0;
    writebacks = 0;
    overrule_count = 0;
    placeholders_created = 0;
    placeholders_used = 0;
  }

let set_tracer t tracer =
  t.tracer <- tracer;
  Acm_ref.set_tracer t.acm tracer

(* Conversion to the dependency-free observability types. *)
let oblk key = { Obs.Trace.file = Block.file key; index = Block.index key }

let set_obs t obs =
  t.obs <- obs;
  Acm_ref.set_obs t.acm obs;
  match obs with
  | None -> ()
  | Some sink ->
    (* Gauges close over the existing statistics fields: sampling at
       snapshot time costs the hot path nothing. *)
    let m = Obs.Sink.metrics sink in
    let g name read = Obs.Metrics.gauge m name read in
    g "cache.hits" (fun () -> float_of_int t.hits);
    g "cache.misses" (fun () -> float_of_int t.misses);
    g "cache.evictions" (fun () -> float_of_int t.evictions);
    g "cache.writebacks" (fun () -> float_of_int t.writebacks);
    g "cache.overrules" (fun () -> float_of_int t.overrule_count);
    g "cache.placeholders_created" (fun () -> float_of_int t.placeholders_created);
    g "cache.placeholders_used" (fun () -> float_of_int t.placeholders_used);
    g "cache.resident" (fun () -> float_of_int (Hashtbl.length t.table));
    g "cache.capacity" (fun () -> float_of_int t.config.Config.capacity_blocks);
    g "cache.hit_ratio" (fun () ->
        let total = t.hits + t.misses in
        if total = 0 then 0.0 else float_of_int t.hits /. float_of_int total)

let config t = t.config

let emit t ev = match t.tracer with Some f -> f ev | None -> ()

let policy_name t = Config.alloc_policy_to_string t.config.Config.alloc_policy

let pid_stats t pid =
  match Hashtbl.find_opt t.per_pid pid with
  | Some s -> s
  | None ->
    let s = { p_hits = 0; p_misses = 0 } in
    Hashtbl.replace t.per_pid pid s;
    s

(* {2 Placeholder bookkeeping} *)

let remove_placeholder t key =
  match Hashtbl.find_opt t.placeholders key with
  | None -> None
  | Some ph ->
    Hashtbl.remove t.placeholders key;
    Entry.remove_incoming ph.target key;
    Some ph

(* Forget every placeholder pointing at [e] (about to leave the cache). *)
let drop_placeholders_at t (e : Entry.t) =
  Entry.iter_incoming (fun key -> Hashtbl.remove t.placeholders key) e;
  Entry.clear_incoming e

let add_placeholder t ~replaced ~target ~chooser =
  if t.config.Config.max_placeholders > 0 then begin
    (* Replace any stale record for the same block. *)
    ignore (remove_placeholder t replaced);
    (* Recycle the oldest placeholders over the limit; the FIFO may hold
       keys of records already removed, which we just skip. *)
    while Hashtbl.length t.placeholders >= t.config.Config.max_placeholders do
      match Queue.take_opt t.ph_fifo with
      | None -> assert false  (* table non-empty implies FIFO non-empty *)
      | Some key -> ignore (remove_placeholder t key)
    done;
    Hashtbl.replace t.placeholders replaced { target; chooser };
    Queue.push replaced t.ph_fifo;
    Entry.add_incoming target replaced;
    t.placeholders_created <- t.placeholders_created + 1;
    emit t (Event.Placeholder_created { replaced; target = target.Entry.key; chooser });
    match t.obs with
    | None -> ()
    | Some sink ->
      Obs.Sink.emit sink
        (Obs.Trace.Placeholder_created
           {
             replaced = oblk replaced;
             target = oblk target.Entry.key;
             chooser = Pid.to_int chooser;
           })
  end

(* {2 Replacement} *)

let global_node_exn (e : Entry.t) =
  match e.Entry.global_node with
  | Some node -> node
  | None -> invalid_arg "Buf_ref: entry has no global node"

(* Remove [e] from every structure. Runs before any blocking backend
   call so that re-entrant cache operations see a consistent state. *)
let detach t (e : Entry.t) =
  Hashtbl.remove t.table e.Entry.key;
  Dll.remove t.global (global_node_exn e);
  e.Entry.global_node <- None;
  drop_placeholders_at t e;
  Acm_ref.block_gone t.acm e

(* LRU-end candidate, skipping pinned blocks and — while anything else
   is available — not-yet-referenced read-ahead blocks. *)
let lru_candidate t =
  let fallback = ref None in
  let rec walk = function
    | None -> (match !fallback with Some e -> e | None -> raise Cache_busy)
    | Some node ->
      let e = Dll.value node in
      if Entry.is_pinned e then walk (Dll.next_toward_front node)
      else if not e.Entry.referenced then begin
        if Option.is_none !fallback then fallback := Some e;
        walk (Dll.next_toward_front node)
      end
      else e
  in
  walk (Dll.back t.global)

(* Second-chance candidate for the CLOCK global order (Sec. 7's
   virtual-memory variant): the hand sweeps from the oldest end; a page
   with its reference bit set is given a second chance (bit cleared,
   rotated to the young end). Pinned and never-referenced read-ahead
   pages are rotated without clearing, with the same fallback rule as
   the LRU walk. Bounded by 2n rotations. *)
let clock_candidate t =
  let fallback = ref None in
  let budget = ref (2 * Dll.length t.global) in
  let rec sweep () =
    if !budget <= 0 then
      match !fallback with Some e -> e | None -> raise Cache_busy
    else begin
      decr budget;
      match Dll.back t.global with
      | None -> raise Cache_busy
      | Some node ->
        let e = Dll.value node in
        if Entry.is_pinned e then begin
          Dll.move_front t.global node;
          sweep ()
        end
        else if not e.Entry.referenced then begin
          if Option.is_none !fallback then fallback := Some e;
          Dll.move_front t.global node;
          sweep ()
        end
        else if e.Entry.clock_ref then begin
          e.Entry.clock_ref <- false;
          Dll.move_front t.global node;
          sweep ()
        end
        else e
    end
  in
  sweep ()

let pick_candidate t =
  match t.config.Config.alloc_policy with
  | Config.Clock_sp -> clock_candidate t
  | Config.Global_lru | Config.Alloc_lru | Config.Lru_s | Config.Lru_sp ->
    lru_candidate t

(* Swap the global-list positions of the kernel's candidate and the
   manager's alternative (Fig. 2 of the paper). *)
let swap_global t (a : Entry.t) (b : Entry.t) =
  Dll.swap_values t.global (global_node_exn a) (global_node_exn b)
    ~on_move:(fun (e : Entry.t) node -> e.Entry.global_node <- Some node)

(* Evict exactly one block to make room for [missing]. [ph] is the
   consumed placeholder for [missing], if there was one. *)
let evict_one t ~ph ~missing =
  let candidate =
    match ph with
    | Some p when not (Entry.is_pinned p.target) ->
      t.placeholders_used <- t.placeholders_used + 1;
      emit t
        (Event.Placeholder_used
           { missing; target = p.target.Entry.key; chooser = p.chooser });
      (match t.obs with
      | None -> ()
      | Some sink ->
        Obs.Sink.emit sink
          (Obs.Trace.Placeholder_hit
             {
               missing = oblk missing;
               target = oblk p.target.Entry.key;
               chooser = Pid.to_int p.chooser;
             }));
      Acm_ref.placeholder_used t.acm ~chooser:p.chooser ~missing ~target:p.target;
      p.target
    | Some _ | None -> pick_candidate t
  in
  let chosen =
    match t.config.Config.alloc_policy with
    | Config.Global_lru -> candidate
    | Config.Alloc_lru | Config.Lru_s | Config.Lru_sp | Config.Clock_sp ->
      Acm_ref.replace_block t.acm ~candidate ~missing
  in
  let overruled = chosen != candidate in
  if overruled then begin
    t.overrule_count <- t.overrule_count + 1;
    (match t.config.Config.alloc_policy with
    | Config.Lru_s | Config.Lru_sp | Config.Clock_sp ->
      swap_global t candidate chosen;
      (match t.obs with
      | None -> ()
      | Some sink ->
        Obs.Sink.emit sink
          (Obs.Trace.Swap
             { kept = oblk candidate.Entry.key; victim = oblk chosen.Entry.key }))
    | Config.Alloc_lru -> ()
    | Config.Global_lru -> assert false (* never consults, cannot overrule *));
    match t.config.Config.alloc_policy with
    | Config.Lru_sp | Config.Clock_sp ->
      let chooser =
        match chosen.Entry.managed_by with
        | Some pid -> pid
        | None -> assert false (* only managers overrule *)
      in
      add_placeholder t ~replaced:chosen.Entry.key ~target:candidate ~chooser
    | Config.Global_lru | Config.Alloc_lru | Config.Lru_s -> ()
  end;
  emit t
    (Event.Evict
       {
         victim = chosen.Entry.key;
         owner = chosen.Entry.owner;
         candidate = candidate.Entry.key;
         overruled;
       });
  (match t.obs with
  | None -> ()
  | Some sink ->
    Obs.Sink.emit sink
      (Obs.Trace.Evict
         {
           victim = oblk chosen.Entry.key;
           owner = Pid.to_int chosen.Entry.owner;
           candidate = oblk candidate.Entry.key;
           policy = policy_name t;
           reason = "capacity";
         }));
  detach t chosen;
  t.evictions <- t.evictions + 1;
  if chosen.Entry.dirty then begin
    t.writebacks <- t.writebacks + 1;
    emit t (Event.Writeback chosen.Entry.key);
    (match t.obs with
    | None -> ()
    | Some sink ->
      Obs.Sink.emit sink (Obs.Trace.Writeback { block = oblk chosen.Entry.key }));
    t.backend.Backend.write_block chosen.Entry.key
  end;
  t.backend.Backend.evicted chosen.Entry.key

(* Install [key] in the cache, evicting if needed, and optionally fetch
   its contents. The entry is pinned during the fetch so re-entrant
   replacement cannot steal the frame. *)
let load t ~pid key ~dirty ~fetch ~prefetched =
  let ph = remove_placeholder t key in
  if Hashtbl.length t.table >= t.config.Config.capacity_blocks then
    evict_one t ~ph ~missing:key;
  let e = Entry.make ~key ~owner:pid in
  e.Entry.referenced <- not prefetched;
  e.Entry.dirty <- dirty;
  Hashtbl.replace t.table key e;
  e.Entry.global_node <- Some (Dll.push_front t.global e);
  Acm_ref.new_block t.acm ~pid ~prefetched e;
  if fetch then begin
    Entry.pin e;
    Fun.protect
      ~finally:(fun () -> Entry.unpin e)
      (fun () -> t.backend.Backend.read_block key)
  end

let touch t ~pid (e : Entry.t) =
  e.Entry.referenced <- true;
  (* Under CLOCK the global order is insertion/rotation order; a hit
     only sets the reference bit, exactly as a VM page cache's hardware
     bit would. *)
  (match t.config.Config.alloc_policy with
  | Config.Clock_sp -> e.Entry.clock_ref <- true
  | Config.Global_lru | Config.Alloc_lru | Config.Lru_s | Config.Lru_sp ->
    Dll.move_front t.global (global_node_exn e));
  Acm_ref.block_accessed t.acm ~pid e

let obs_hit t ~pid key =
  match t.obs with
  | None -> ()
  | Some sink ->
    Obs.Sink.emit sink
      (Obs.Trace.Cache_hit { pid = Pid.to_int pid; block = oblk key })

let obs_miss t ~pid key ~prefetch =
  match t.obs with
  | None -> ()
  | Some sink ->
    Obs.Sink.emit sink
      (Obs.Trace.Cache_miss { pid = Pid.to_int pid; block = oblk key; prefetch })

let read ?(prefetch = false) t ~pid key =
  match Hashtbl.find_opt t.table key with
  | Some e ->
    t.hits <- t.hits + 1;
    (pid_stats t pid).p_hits <- (pid_stats t pid).p_hits + 1;
    emit t (Event.Hit { pid; block = key });
    obs_hit t ~pid key;
    touch t ~pid e;
    `Hit
  | None ->
    t.misses <- t.misses + 1;
    (pid_stats t pid).p_misses <- (pid_stats t pid).p_misses + 1;
    emit t (Event.Miss { pid; block = key; prefetch });
    obs_miss t ~pid key ~prefetch;
    load t ~pid key ~dirty:false ~fetch:true ~prefetched:prefetch;
    `Miss

let write t ~pid key ~fetch =
  match Hashtbl.find_opt t.table key with
  | Some e ->
    t.hits <- t.hits + 1;
    (pid_stats t pid).p_hits <- (pid_stats t pid).p_hits + 1;
    emit t (Event.Hit { pid; block = key });
    obs_hit t ~pid key;
    e.Entry.dirty <- true;
    touch t ~pid e;
    `Hit
  | None ->
    t.misses <- t.misses + 1;
    (pid_stats t pid).p_misses <- (pid_stats t pid).p_misses + 1;
    emit t (Event.Miss { pid; block = key; prefetch = false });
    obs_miss t ~pid key ~prefetch:false;
    load t ~pid key ~dirty:true ~fetch ~prefetched:false;
    `Miss

let sync t ?file () =
  let wanted (e : Entry.t) =
    e.Entry.dirty
    && (match file with Some f -> Block.file e.Entry.key = f | None -> true)
  in
  let dirty = Hashtbl.fold (fun _ e acc -> if wanted e then e :: acc else acc) t.table [] in
  (* Write in address order: what a real flush daemon's sorted queue
     would do, and deterministic for tests. *)
  let dirty =
    List.sort (fun (a : Entry.t) b -> Block.compare a.Entry.key b.Entry.key) dirty
  in
  let written = ref 0 in
  List.iter
    (fun (e0 : Entry.t) ->
      (* Re-check against the block's current entry: a concurrent
         eviction may have flushed it already, or the frame may have
         been recycled for a fresh copy of the same block. *)
      match Hashtbl.find_opt t.table e0.Entry.key with
      | Some e when e.Entry.dirty ->
        Entry.pin e;
        e.Entry.dirty <- false;
        t.writebacks <- t.writebacks + 1;
        incr written;
        emit t (Event.Writeback e.Entry.key);
        (match t.obs with
        | None -> ()
        | Some sink ->
          Obs.Sink.emit sink (Obs.Trace.Writeback { block = oblk e.Entry.key }));
        Fun.protect
          ~finally:(fun () -> Entry.unpin e)
          (fun () -> t.backend.Backend.write_block e.Entry.key)
      | Some _ | None -> ())
    dirty;
  !written

(* Clean and return the contiguous dirty run following [key]: blocks
   key+1, key+2, ... of the same file that are resident, dirty and
   unpinned, at most [max_blocks - 1] of them. The caller is about to
   write [key] to the device and commits to writing these in the same
   request (clustered write-back), so their dirty bits are cleared
   here. *)
let take_dirty_followers t key ~max_blocks =
  let rec go i acc =
    if i >= max_blocks then List.rev acc
    else
      let next = Block.make ~file:(Block.file key) ~index:(Block.index key + i) in
      match Hashtbl.find_opt t.table next with
      | Some e when e.Entry.dirty && not (Entry.is_pinned e) ->
        e.Entry.dirty <- false;
        t.writebacks <- t.writebacks + 1;
        emit t (Event.Writeback next);
        (match t.obs with
        | None -> ()
        | Some sink -> Obs.Sink.emit sink (Obs.Trace.Writeback { block = oblk next }));
        go (i + 1) (next :: acc)
      | Some _ | None -> List.rev acc
  in
  if max_blocks <= 1 then [] else go 1 []

let invalidate_file t ~file =
  let entries =
    Hashtbl.fold
      (fun key e acc -> if Block.file key = file then e :: acc else acc)
      t.table []
  in
  (* Ascending block order: deterministic regardless of table layout. *)
  let entries =
    List.sort (fun (a : Entry.t) b -> Block.compare a.Entry.key b.Entry.key) entries
  in
  let dropped = ref 0 in
  List.iter
    (fun (e : Entry.t) ->
      if
        (match Hashtbl.find_opt t.table e.Entry.key with
        | Some e' -> e' == e
        | None -> false)
        && not (Entry.is_pinned e)
      then begin
        (match t.obs with
        | None -> ()
        | Some sink ->
          Obs.Sink.emit sink
            (Obs.Trace.Evict
               {
                 victim = oblk e.Entry.key;
                 owner = Pid.to_int e.Entry.owner;
                 candidate = oblk e.Entry.key;
                 policy = policy_name t;
                 reason = "invalidate";
               }));
        detach t e;
        incr dropped;
        t.backend.Backend.evicted e.Entry.key
      end)
    entries;
  !dropped

let contains t key = Hashtbl.mem t.table key

let is_dirty t key =
  match Hashtbl.find_opt t.table key with Some e -> e.Entry.dirty | None -> false

let length t = Hashtbl.length t.table

let capacity t = t.config.Config.capacity_blocks

let hits t = t.hits
let misses t = t.misses
let evictions t = t.evictions
let writebacks t = t.writebacks
let overrule_count t = t.overrule_count
let placeholders_created t = t.placeholders_created
let placeholders_used t = t.placeholders_used
let placeholder_count t = Hashtbl.length t.placeholders

let pid_hits t pid = match Hashtbl.find_opt t.per_pid pid with Some s -> s.p_hits | None -> 0

let pid_misses t pid =
  match Hashtbl.find_opt t.per_pid pid with Some s -> s.p_misses | None -> 0

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0;
  t.evictions <- 0;
  t.writebacks <- 0;
  t.overrule_count <- 0;
  t.placeholders_created <- 0;
  t.placeholders_used <- 0;
  Hashtbl.reset t.per_pid

let lru_keys t = List.map (fun (e : Entry.t) -> e.Entry.key) (Dll.to_list t.global)

let check_invariants t =
  if Hashtbl.length t.table > t.config.Config.capacity_blocks then
    failwith "Buf_ref: over capacity";
  if Dll.length t.global <> Hashtbl.length t.table then
    failwith "Buf_ref: global list / table size mismatch";
  Dll.iter
    (fun (e : Entry.t) ->
      (match Hashtbl.find_opt t.table e.Entry.key with
      | Some e' when e' == e -> ()
      | Some _ | None -> failwith "Buf_ref: global-list entry not in table");
      match e.Entry.global_node with
      | Some node when Dll.contains t.global node && Dll.value node == e -> ()
      | Some _ | None -> failwith "Buf_ref: bad global node back-pointer")
    t.global;
  Hashtbl.iter
    (fun key ph ->
      (match Hashtbl.find_opt t.table ph.target.Entry.key with
      | Some e when e == ph.target -> ()
      | Some _ | None -> failwith "Buf_ref: placeholder target not resident");
      if not (Entry.has_incoming ph.target key) then
        failwith "Buf_ref: placeholder missing from target's incoming list")
    t.placeholders;
  Acm_ref.check_invariants t.acm
