(** The typed artifact kinds the content-addressed store holds.

    Every serialised artifact the toolchain produces belongs to exactly
    one kind, and each kind names the canonical byte representation its
    entries are digests of:

    - {!Refstream}: a recorded reference trace in the [acfc-trace-v1]
      text format ({!Acfc_replacement.Refstream}).
    - {!Wir_program}: one workload IR program as canonical single-line
      [acfc-wir/1] JSON (no trailing newline), so the entry digest {e is}
      [Acfc_wir.Wir.hash].
    - {!Wirgen_spec}: an [acfc-wirgen/1] spec in canonical form; the
      digest is [Acfc_wirgen.Wirgen.hash].
    - {!Wirgen_corpus}: a whole generated corpus as JSON Lines, one
      canonical [acfc-wir/1] document per member, in member order.
    - {!Scenario}: an [acfc-scenario/1] machine description in canonical
      form; the digest is [Acfc_scenario.Scenario.hash].
    - {!Bench_report}: an [acfc-bench/1] results document as emitted by
      [bench --json].

    The on-disk directory of a kind is {!dir}; {!to_string} is the
    stable enum value used by the manifest codec and the CLI. *)

type t =
  | Refstream
  | Wir_program
  | Wirgen_spec
  | Wirgen_corpus
  | Scenario
  | Bench_report

val all : t list
(** Every kind, in the fixed order above. *)

val to_string : t -> string
(** Stable identifier: ["refstream"], ["wir"], ["wirgen-spec"],
    ["wirgen-corpus"], ["scenario"], ["bench-report"]. *)

val of_string : string -> t option

val dir : t -> string
(** Directory name under the store root holding this kind's entries
    (equal to {!to_string}). *)

val pp : Format.formatter -> t -> unit
