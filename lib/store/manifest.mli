(** The store's index: a strict, versioned [acfc-store/1] JSON document.

    The manifest records every artifact the store has ingested — its
    {!Kind.t}, content digest (MD5 hex of the stored bytes), size, an
    optional resolution label, and a monotonically increasing ingestion
    sequence number ([seq]) that gives artifacts of the same kind a
    stable chronological order (used by [bench timeline]).

    Labels are the store's name→digest resolution mechanism: content
    digests are not known before an artifact is generated, so producers
    register a deterministic label (e.g. ["refstream:<scenario-hash>"]
    or ["corpus:<spec-hash>:s11:n4"]) that later runs resolve to the
    digest of the previously ingested bytes. A label maps to at most
    one digest; re-ingesting under the same label must produce the same
    digest (enforced by {!add}).

    The codec follows the same discipline as the scenario / wir /
    wirgen formats: a [schema] field pinned to {!schema}, unknown
    fields rejected, and every error naming its [$.path]. *)

type entry = {
  seq : int;  (** ingestion order, unique across the whole store *)
  kind : Kind.t;
  digest : string;  (** MD5 hex of the stored bytes *)
  bytes : int;  (** size of the stored artifact *)
  label : string option;  (** resolution label, if the producer gave one *)
}

type t

val schema : string
(** ["acfc-store/1"]. *)

val empty : t

val entries : t -> entry list
(** All entries in ascending [seq] order. *)

val add : t -> kind:Kind.t -> digest:string -> bytes:int -> label:string option
  -> (t * entry, string) result
(** Record an ingestion. If the (kind, digest) pair is already present
    the existing entry is returned unchanged (ingestion is idempotent),
    except that a previously unlabelled entry adopts the new label.
    Fails if [label] is already bound to a different digest. *)

val find : t -> kind:Kind.t -> digest:string -> entry option

val resolve : t -> label:string -> entry option
(** Look up an entry by its resolution label. *)

val by_kind : t -> Kind.t -> entry list
(** Entries of one kind, ascending [seq] order. *)

val remove : t -> kind:Kind.t -> digest:string -> t
(** Drop an entry (used by GC); missing entries are ignored. *)

(** {2 Codec} *)

val to_json : t -> Acfc_obs.Json.t
val of_json : Acfc_obs.Json.t -> (t, string) result
val to_string : t -> string
val of_string : string -> (t, string) result

val save : t -> string -> unit
(** Write atomically (temp file + rename) so a concurrent reader never
    observes a torn manifest. *)

val load : string -> (t, string) result
