module Json = Acfc_obs.Json

type entry = {
  seq : int;
  kind : Kind.t;
  digest : string;
  bytes : int;
  label : string option;
}

type t = { next_seq : int; entries : entry list }
(* [entries] is kept in ascending [seq] order. *)

let schema = "acfc-store/1"

let empty = { next_seq = 0; entries = [] }

let entries t = t.entries

let find t ~kind ~digest =
  List.find_opt (fun e -> e.kind = kind && String.equal e.digest digest) t.entries

let resolve t ~label =
  List.find_opt (fun e -> e.label = Some label) t.entries

let by_kind t kind = List.filter (fun e -> e.kind = kind) t.entries

let remove t ~kind ~digest =
  {
    t with
    entries =
      List.filter
        (fun e -> not (e.kind = kind && String.equal e.digest digest))
        t.entries;
  }

let add t ~kind ~digest ~bytes ~label =
  let label_clash =
    match label with
    | None -> None
    | Some l ->
      (match resolve t ~label:l with
      | Some e when e.kind <> kind || not (String.equal e.digest digest) -> Some e
      | _ -> None)
  in
  match label_clash with
  | Some e ->
    Error
      (Printf.sprintf
         "store: label %S is already bound to %s/%s"
         (Option.value ~default:"" label)
         (Kind.to_string e.kind) e.digest)
  | None ->
    (match find t ~kind ~digest with
    | Some e ->
      let e = if e.label = None then { e with label } else e in
      let entries =
        List.map (fun e' -> if e'.seq = e.seq then e else e') t.entries
      in
      Ok ({ t with entries }, e)
    | None ->
      let e = { seq = t.next_seq; kind; digest; bytes; label } in
      Ok ({ next_seq = t.next_seq + 1; entries = t.entries @ [ e ] }, e))

(* Codec — same strict discipline as the scenario/wir/wirgen formats. *)

let entry_to_json e =
  Json.Obj
    (List.concat
       [
         [
           ("seq", Json.Num (float_of_int e.seq));
           ("kind", Json.Str (Kind.to_string e.kind));
           ("digest", Json.Str e.digest);
           ("bytes", Json.Num (float_of_int e.bytes));
         ];
         (match e.label with
         | None -> []
         | Some l -> [ ("label", Json.Str l) ]);
       ])

let to_json t =
  Json.Obj
    [
      ("schema", Json.Str schema);
      ("next_seq", Json.Num (float_of_int t.next_seq));
      ("entries", Json.List (List.map entry_to_json t.entries));
    ]

let ( let* ) = Result.bind

let err path msg = Error (Printf.sprintf "store: %s at %s" msg path)

let require ~path name members =
  match List.assoc_opt name members with
  | Some v -> Ok v
  | None -> err path (Printf.sprintf "missing required field %S" name)

let as_str ~path = function
  | Json.Str s -> Ok s
  | _ -> err path "expected a string"

let as_int ~path v =
  match Json.to_int v with
  | Some n -> Ok n
  | None -> err path "expected an integer"

let is_hex_digest s =
  String.length s = 32
  && String.for_all
       (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false)
       s

let entry_fields = [ "seq"; "kind"; "digest"; "bytes"; "label" ]

let entry_of_json ~path = function
  | Json.Obj members ->
    let* () =
      let rec check = function
        | [] -> Ok ()
        | (k, _) :: rest ->
          if List.mem k entry_fields then check rest
          else err path (Printf.sprintf "unknown field %S" k)
      in
      check members
    in
    let* seq =
      let* v = require ~path "seq" members in
      as_int ~path:(path ^ ".seq") v
    in
    let* () =
      if seq >= 0 then Ok () else err (path ^ ".seq") "sequence must be non-negative"
    in
    let* kind =
      let* v = require ~path "kind" members in
      let* s = as_str ~path:(path ^ ".kind") v in
      match Kind.of_string s with
      | Some k -> Ok k
      | None -> err (path ^ ".kind") (Printf.sprintf "unknown artifact kind %S" s)
    in
    let* digest =
      let* v = require ~path "digest" members in
      let* s = as_str ~path:(path ^ ".digest") v in
      if is_hex_digest s then Ok s
      else err (path ^ ".digest") "expected 32 lowercase hex characters"
    in
    let* bytes =
      let* v = require ~path "bytes" members in
      as_int ~path:(path ^ ".bytes") v
    in
    let* () =
      if bytes >= 0 then Ok () else err (path ^ ".bytes") "size must be non-negative"
    in
    let* label =
      match List.assoc_opt "label" members with
      | None -> Ok None
      | Some v ->
        let* s = as_str ~path:(path ^ ".label") v in
        if s = "" then err (path ^ ".label") "label must be non-empty"
        else Ok (Some s)
    in
    Ok { seq; kind; digest; bytes; label }
  | _ -> err path "expected an entry object"

let known_fields = [ "schema"; "next_seq"; "entries" ]

let of_json = function
  | Json.Obj members ->
    let* () =
      let rec check = function
        | [] -> Ok ()
        | (k, _) :: rest ->
          if List.mem k known_fields then check rest
          else err "$" (Printf.sprintf "unknown field %S" k)
      in
      check members
    in
    let* s = require ~path:"$" "schema" members in
    let* schema_str = as_str ~path:"$.schema" s in
    let* () =
      if schema_str = schema then Ok ()
      else
        err "$.schema"
          (Printf.sprintf "unsupported schema %S (expected %s)" schema_str schema)
    in
    let* next_seq =
      let* v = require ~path:"$" "next_seq" members in
      as_int ~path:"$.next_seq" v
    in
    let* raw =
      let* v = require ~path:"$" "entries" members in
      match v with
      | Json.List l -> Ok l
      | _ -> err "$.entries" "expected a list of entries"
    in
    let* entries =
      let rec go i acc = function
        | [] -> Ok (List.rev acc)
        | e :: rest ->
          let path = Printf.sprintf "$.entries[%d]" i in
          let* e = entry_of_json ~path e in
          go (i + 1) (e :: acc) rest
      in
      go 0 [] raw
    in
    let* () =
      let rec check prev = function
        | [] -> Ok ()
        | e :: rest ->
          if e.seq <= prev then
            err "$.entries" "sequence numbers must be strictly increasing"
          else if e.seq >= next_seq then
            err "$.entries" "sequence number exceeds next_seq"
          else check e.seq rest
      in
      check (-1) entries
    in
    let* () =
      let seen = Hashtbl.create 16 in
      let rec check = function
        | [] -> Ok ()
        | { label = Some l; digest; kind; _ } :: rest ->
          (match Hashtbl.find_opt seen l with
          | Some (k', d') when k' <> kind || not (String.equal d' digest) ->
            err "$.entries" (Printf.sprintf "label %S bound to two digests" l)
          | _ ->
            Hashtbl.replace seen l (kind, digest);
            check rest)
        | _ :: rest -> check rest
      in
      check entries
    in
    Ok { next_seq; entries }
  | _ -> err "$" "expected a manifest object"

let to_string t = Json.to_string (to_json t)

let of_string s =
  match Json.of_string s with
  | Error e -> Error ("store: invalid JSON: " ^ e)
  | Ok j -> of_json j

let save t path =
  let dir = Filename.dirname path in
  let tmp = Filename.temp_file ~temp_dir:dir "manifest" ".tmp" in
  let oc = open_out tmp in
  (try
     Fun.protect
       ~finally:(fun () -> close_out oc)
       (fun () ->
         output_string oc (to_string t);
         output_char oc '\n')
   with e ->
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path

let load path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error e -> Error ("store: " ^ e)
  | contents -> of_string contents
