(** Regression timeline over stored [acfc-bench/1] reports.

    Scans a store's bench-report entries in ingestion order, extracts
    each report's "perf" rows, and groups them by row name into one
    timeline per benchmark — ops/sec and allocation words/op across
    runs. A {e drop} is a decrease in ops/sec from one stored run to
    the next on the same row; rows whose worst consecutive drop
    exceeds a threshold (default 30%) are regressions, and
    [bench timeline --gate] turns them into a nonzero exit. *)

type point = {
  seq : int;  (** manifest ingestion sequence of the source report *)
  digest : string;  (** digest of the source report *)
  ops_per_sec : float;
  words_per_op : float;
}

type row = {
  name : string;  (** perf row name, e.g. ["fig5/lru-sp"] *)
  points : point list;  (** ascending [seq] order *)
}

val default_threshold : float
(** [0.30]. *)

val of_report : Acfc_obs.Json.t -> ((string * float * float) list, string) result
(** Perf rows of one [acfc-bench/1] document as
    [(name, ops_per_sec, words_per_op)]; rows without an ops/sec
    estimate are skipped. Fails on a non-bench or malformed document. *)

val scan : Store.t -> (row list, string) result
(** Build timelines from every readable bench report in the store,
    rows sorted by name. Corrupted or malformed stored reports fail
    the scan (the store is supposed to be audited). *)

val worst_drop : row -> (float * int) option
(** Largest consecutive fractional ops/sec drop on a row, with the
    [seq] of the run it dropped to. [None] for rows with fewer than
    two points or no drop at all. *)

val regressions : ?threshold:float -> row list -> (row * float * int) list
(** Rows whose {!worst_drop} exceeds [threshold]. *)

val render : ?threshold:float -> Format.formatter -> row list -> unit
(** Human-readable per-row timeline with regression markers. *)
