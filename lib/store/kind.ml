type t =
  | Refstream
  | Wir_program
  | Wirgen_spec
  | Wirgen_corpus
  | Scenario
  | Bench_report

let all =
  [ Refstream; Wir_program; Wirgen_spec; Wirgen_corpus; Scenario; Bench_report ]

let to_string = function
  | Refstream -> "refstream"
  | Wir_program -> "wir"
  | Wirgen_spec -> "wirgen-spec"
  | Wirgen_corpus -> "wirgen-corpus"
  | Scenario -> "scenario"
  | Bench_report -> "bench-report"

let of_string = function
  | "refstream" -> Some Refstream
  | "wir" -> Some Wir_program
  | "wirgen-spec" -> Some Wirgen_spec
  | "wirgen-corpus" -> Some Wirgen_corpus
  | "scenario" -> Some Scenario
  | "bench-report" -> Some Bench_report
  | _ -> None

let dir = to_string

let pp ppf k = Format.pp_print_string ppf (to_string k)
