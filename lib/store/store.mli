(** Content-addressed artifact store.

    Artifacts live under [root/<kind>/<digest>] where [digest] is the
    MD5 hex of the exact stored bytes — the same digests the rest of
    the codebase already computes ([Scenario.hash], [Wir.hash],
    [Wirgen.hash]). A manifest ([root/manifest.json], {!Manifest})
    indexes every ingestion with a sequence number and an optional
    resolution label; a scratch area [root/tmp] stages writes.

    Ingestion is verify-then-rename, after 0install's store: the bytes
    are written to a staging file, the digest of what actually landed
    on disk is recomputed, and the file is published with [Unix.link]
    — an atomic create-if-absent, so when two writers race on one
    digest exactly one observes [`Created] and the other [`Exists].
    Entries are never mutated after publication. *)

type t

type outcome =
  | Created of Manifest.entry  (** this call published the bytes *)
  | Exists of Manifest.entry  (** an identical entry was already present *)

val open_ : string -> (t, string) result
(** [open_ root] opens (creating directories as needed) the store at
    [root]. Fails if an existing manifest is unreadable or invalid. *)

val root : t -> string

val manifest_path : t -> string

val manifest : t -> Manifest.t
(** A fresh snapshot of the on-disk manifest. *)

val digest_of : string -> string
(** MD5 hex of a byte string — the store's content key. *)

val add :
  t -> kind:Kind.t -> ?label:string -> ?expect:string -> string ->
  (outcome, string) result
(** [add t ~kind content] ingests [content]. [?expect] asserts the
    digest the caller believes the bytes have (mismatch fails without
    writing anything); [?label] registers a resolution label for later
    {!resolve} calls. Idempotent: re-adding identical bytes yields
    [Exists]. *)

val path : t -> kind:Kind.t -> digest:string -> string
(** Where an entry with this digest would live (whether or not it does). *)

val lookup : t -> kind:Kind.t -> digest:string -> string option
(** Path of the stored artifact, if present on disk. *)

val contains : t -> kind:Kind.t -> digest:string -> bool

val read : t -> kind:Kind.t -> digest:string -> (string, string) result
(** The stored bytes; fails on absence or digest mismatch (a corrupted
    entry is reported, not returned). *)

val resolve : t -> label:string -> Manifest.entry option
(** Look a digest up by its producer-registered label. *)

val entries : t -> Manifest.entry list
(** Manifest entries, ascending ingestion order. *)

val available_digests : t -> Kind.t -> string list
(** Digests actually present on disk for one kind (a directory scan —
    filesystem truth, independent of the manifest), sorted. *)

val verify : t -> (int, string list) result
(** Re-digest every manifest entry's bytes. [Ok n] means all [n]
    entries check out; [Error problems] lists each missing or
    corrupted entry. *)

val gc : t -> string list
(** Remove files not referenced by the manifest — unindexed files in
    kind directories and staging leftovers in [tmp]. Returns the
    removed paths. *)
