module Json = Acfc_obs.Json

type point = {
  seq : int;
  digest : string;
  ops_per_sec : float;
  words_per_op : float;
}

type row = { name : string; points : point list }

let default_threshold = 0.30

let of_report j =
  match Json.member "schema" j with
  | Some (Json.Str "acfc-bench/1") ->
    (match Option.bind (Json.member "perf" j) Json.to_list with
    | None -> Error "timeline: report has no \"perf\" list"
    | Some rows ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | r :: rest ->
          (match Option.bind (Json.member "name" r) Json.to_str with
          | None -> Error "timeline: perf row without a name"
          | Some name ->
            let num field = Option.bind (Json.member field r) Json.to_num in
            (match num "ops_per_sec" with
            | None -> go acc rest (* no OLS estimate: null in the report *)
            | Some ops ->
              let words = Option.value ~default:Float.nan (num "alloc_words_per_op") in
              go ((name, ops, words) :: acc) rest))
      in
      go [] rows)
  | Some (Json.Str s) ->
    Error (Printf.sprintf "timeline: unsupported schema %S (expected acfc-bench/1)" s)
  | _ -> Error "timeline: not an acfc-bench/1 document"

let scan store =
  let reports = Store.entries store in
  let reports =
    List.filter (fun (e : Manifest.entry) -> e.kind = Kind.Bench_report) reports
  in
  let tbl : (string, point list) Hashtbl.t = Hashtbl.create 16 in
  let rec ingest = function
    | [] -> Ok ()
    | (e : Manifest.entry) :: rest ->
      (match Store.read store ~kind:Kind.Bench_report ~digest:e.digest with
      | Error msg -> Error msg
      | Ok content ->
        (match Json.of_string content with
        | Error msg ->
          Error (Printf.sprintf "timeline: %s: invalid JSON: %s" e.digest msg)
        | Ok j ->
          (match of_report j with
          | Error msg -> Error (Printf.sprintf "timeline: %s: %s" e.digest msg)
          | Ok rows ->
            List.iter
              (fun (name, ops_per_sec, words_per_op) ->
                let p = { seq = e.seq; digest = e.digest; ops_per_sec; words_per_op } in
                let prev = Option.value ~default:[] (Hashtbl.find_opt tbl name) in
                Hashtbl.replace tbl name (p :: prev))
              rows;
            ingest rest)))
  in
  match ingest reports with
  | Error _ as e -> e
  | Ok () ->
    let rows =
      Hashtbl.fold
        (fun name points acc -> { name; points = List.rev points } :: acc)
        tbl []
    in
    Ok (List.sort (fun a b -> String.compare a.name b.name) rows)

let worst_drop row =
  let rec go prev worst = function
    | [] -> worst
    | p :: rest ->
      let worst =
        match prev with
        | Some q when q.ops_per_sec > 0.0 && p.ops_per_sec < q.ops_per_sec ->
          let drop = (q.ops_per_sec -. p.ops_per_sec) /. q.ops_per_sec in
          (match worst with
          | Some (d, _) when d >= drop -> worst
          | _ -> Some (drop, p.seq))
        | _ -> worst
      in
      go (Some p) worst rest
  in
  go None None row.points

let regressions ?(threshold = default_threshold) rows =
  List.filter_map
    (fun row ->
      match worst_drop row with
      | Some (drop, seq) when drop > threshold -> Some (row, drop, seq)
      | _ -> None)
    rows

let render ?(threshold = default_threshold) ppf rows =
  if rows = [] then Format.fprintf ppf "timeline: no stored bench reports@."
  else
    List.iter
      (fun row ->
        Format.fprintf ppf "%s@." row.name;
        List.iter
          (fun p ->
            Format.fprintf ppf "  run %3d  %12.0f ops/s  %8.1f w/op  [%s]@." p.seq
              p.ops_per_sec p.words_per_op
              (String.sub p.digest 0 12))
          row.points;
        match worst_drop row with
        | Some (drop, seq) when drop > threshold ->
          Format.fprintf ppf "  ! regression: %.0f%% ops/s drop at run %d@."
            (drop *. 100.0) seq
        | _ -> ())
      rows
