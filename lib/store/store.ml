type t = { root : string; lock : Mutex.t }

type outcome =
  | Created of Manifest.entry
  | Exists of Manifest.entry

let manifest_path t = Filename.concat t.root "manifest.json"
let tmp_dir t = Filename.concat t.root "tmp"
let lock_path t = Filename.concat t.root ".lock"
let kind_dir t kind = Filename.concat t.root (Kind.dir kind)
let path t ~kind ~digest = Filename.concat (kind_dir t kind) digest
let root t = t.root

let digest_of content = Digest.to_hex (Digest.string content)

let mkdir_p dir =
  let rec go dir =
    if not (Sys.file_exists dir) then begin
      go (Filename.dirname dir);
      try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go dir

let open_ root =
  mkdir_p root;
  let t = { root; lock = Mutex.create () } in
  mkdir_p (tmp_dir t);
  List.iter (fun k -> mkdir_p (kind_dir t k)) Kind.all;
  if Sys.file_exists (manifest_path t) then
    match Manifest.load (manifest_path t) with
    | Ok _ -> Ok t
    | Error e -> Error (Printf.sprintf "store: bad manifest at %s: %s" (manifest_path t) e)
  else Ok t

(* Serialise manifest read-modify-write cycles: a [Mutex.t] covers
   domains sharing this handle, an [lockf] byte lock covers other
   processes (and other handles) on the same store root. *)
let with_manifest_lock t f =
  Mutex.protect t.lock (fun () ->
      let fd = Unix.openfile (lock_path t) [ Unix.O_CREAT; Unix.O_RDWR ] 0o644 in
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () ->
          Unix.lockf fd Unix.F_LOCK 0;
          Fun.protect
            ~finally:(fun () -> try Unix.lockf fd Unix.F_ULOCK 0 with Unix.Unix_error _ -> ())
            f))

let load_manifest t =
  if Sys.file_exists (manifest_path t) then Manifest.load (manifest_path t)
  else Ok Manifest.empty

let manifest t =
  match with_manifest_lock t (fun () -> load_manifest t) with
  | Ok m -> m
  | Error _ -> Manifest.empty

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let ( let* ) = Result.bind

(* Stage the bytes under tmp/, re-digest what landed on disk, then
   publish with link(2): atomic create-if-absent, so exactly one of
   any set of racing writers observes [Created]. *)
let publish t ~kind ~digest content =
  let final = path t ~kind ~digest in
  if Sys.file_exists final then Ok `Already
  else begin
    let tmp = Filename.temp_file ~temp_dir:(tmp_dir t) "ingest" ".part" in
    Fun.protect
      ~finally:(fun () -> try Sys.remove tmp with Sys_error _ -> ())
      (fun () ->
        let oc = open_out_bin tmp in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () -> output_string oc content);
        let landed = digest_of (read_file tmp) in
        if not (String.equal landed digest) then
          Error
            (Printf.sprintf
               "store: staged bytes digest to %s, expected %s (write corrupted?)"
               landed digest)
        else
          match Unix.link tmp final with
          | () -> Ok `Won
          | exception Unix.Unix_error (Unix.EEXIST, _, _) -> Ok `Already)
  end

let add t ~kind ?label ?expect content =
  let digest = digest_of content in
  let* () =
    match expect with
    | Some e when not (String.equal e digest) ->
      Error
        (Printf.sprintf "store: content digests to %s, caller expected %s" digest e)
    | _ -> Ok ()
  in
  let* won = publish t ~kind ~digest content in
  with_manifest_lock t (fun () ->
      let* m = load_manifest t in
      let* m, entry =
        Manifest.add m ~kind ~digest ~bytes:(String.length content) ~label
      in
      Manifest.save m (manifest_path t);
      match won with
      | `Won -> Ok (Created entry)
      | `Already -> Ok (Exists entry))

let lookup t ~kind ~digest =
  let p = path t ~kind ~digest in
  if Sys.file_exists p then Some p else None

let contains t ~kind ~digest = Option.is_some (lookup t ~kind ~digest)

let read t ~kind ~digest =
  match lookup t ~kind ~digest with
  | None ->
    Error
      (Printf.sprintf "store: no %s entry %s" (Kind.to_string kind) digest)
  | Some p ->
    let content = read_file p in
    let actual = digest_of content in
    if String.equal actual digest then Ok content
    else
      Error
        (Printf.sprintf "store: corrupted entry %s/%s (bytes digest to %s)"
           (Kind.to_string kind) digest actual)

let resolve t ~label = Manifest.resolve (manifest t) ~label

let entries t = Manifest.entries (manifest t)

let available_digests t kind =
  match Sys.readdir (kind_dir t kind) with
  | exception Sys_error _ -> []
  | names ->
    let l = Array.to_list names in
    List.sort String.compare l

let verify t =
  let m = manifest t in
  let problems =
    List.filter_map
      (fun (e : Manifest.entry) ->
        match read t ~kind:e.kind ~digest:e.digest with
        | Ok content ->
          if String.length content <> e.bytes then
            Some
              (Printf.sprintf "%s/%s: size %d, manifest says %d"
                 (Kind.to_string e.kind) e.digest (String.length content) e.bytes)
          else None
        | Error msg -> Some msg)
      (Manifest.entries m)
  in
  if problems = [] then Ok (List.length (Manifest.entries m)) else Error problems

let gc t =
  with_manifest_lock t (fun () ->
      let m = match load_manifest t with Ok m -> m | Error _ -> Manifest.empty in
      let referenced kind digest =
        Option.is_some (Manifest.find m ~kind ~digest)
      in
      let removed = ref [] in
      let remove p =
        match Sys.remove p with
        | () -> removed := p :: !removed
        | exception Sys_error _ -> ()
      in
      List.iter
        (fun kind ->
          match Sys.readdir (kind_dir t kind) with
          | exception Sys_error _ -> ()
          | names ->
            Array.iter
              (fun name ->
                if not (referenced kind name) then
                  remove (Filename.concat (kind_dir t kind) name))
              names)
        Kind.all;
      (match Sys.readdir (tmp_dir t) with
      | exception Sys_error _ -> ()
      | names ->
        Array.iter (fun name -> remove (Filename.concat (tmp_dir t) name)) names);
      List.rev !removed)
