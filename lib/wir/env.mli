(** Execution environment handed to an application model.

    Binds the process identity, the file system, an optional
    {!Acfc_core.Control} handle (present iff the application runs in
    "smart" mode), the shared CPU, and a private random stream.

    This is the target "machine" of the workload IR: {!Wir.exec}
    interprets a program against exactly these helpers, and the
    hand-written closure escape hatch ({!Acfc_workload.App.make}) gets
    the same environment, so both kinds of application are
    interchangeable everywhere.

    The strategy helpers ({!set_priority} …) are silently inert when the
    application is oblivious, so each application model is written once
    and runs in both modes — exactly how the paper compares "original
    kernel" and "LRU-SP" runs of the same program. A strategy call that
    the kernel rejects raises [Failure]: the paper's strategies are
    static and must fit within the kernel limits. *)

type t = {
  engine : Acfc_sim.Engine.t;
  fs : Acfc_fs.Fs.t;
  pid : Acfc_core.Pid.t;
  control : Acfc_core.Control.t option;
  cpu : Acfc_sim.Resource.t option;
  rng : Acfc_sim.Rng.t;
}

val smart : t -> bool

val compute : t -> float -> unit
(** Consume CPU time (contending on the shared processor if any). *)

val read_blocks : t -> Acfc_fs.File.t -> first:int -> count:int -> unit
(** Read [count] whole blocks starting at block [first]. *)

val write_blocks : t -> Acfc_fs.File.t -> first:int -> count:int -> unit

val read_bytes : t -> Acfc_fs.File.t -> off:int -> len:int -> unit

val unique_name : t -> string -> string
(** Prefix a file name with the pid so concurrent instances do not
    collide. *)

(** {2 Strategy helpers (no-ops when oblivious)} *)

val set_priority : t -> Acfc_fs.File.t -> int -> unit

val set_policy : t -> prio:int -> Acfc_core.Policy.t -> unit

val set_temppri : t -> Acfc_fs.File.t -> first:int -> last:int -> prio:int -> unit

val done_with_block : t -> Acfc_fs.File.t -> int -> unit
(** The "done-with blocks" idiom (paper Sec. 3): temporarily drop one
    consumed block to priority −1 so it leaves the cache quickly. *)
