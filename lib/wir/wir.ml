module Policy = Acfc_core.Policy
module Block = Acfc_core.Block
module Rng = Acfc_sim.Rng
module Json = Acfc_obs.Json

let block_bytes = Acfc_disk.Params.block_bytes

type advice =
  | Priority of { file : int; prio : int }
  | Policy of { prio : int; policy : Policy.t }
  | Temppri of { file : int; first : int; last : int; prio : int }
  | Done_with of { file : int; index : int }

type op =
  | Open of { name : string; size_blocks : int; reserve_blocks : int }
  | Read of { file : int; first : int; count : int; cpu : float; done_with : bool }
  | Write of { file : int; first : int; count : int; cpu : float; done_with : bool }
  | Rand_read of { file : int; base : int; range : int; cpu : float }
  | Compute of float
  | Advise of advice
  | Unlink of { file : int }
  | Seq of op list
  | Loop of { times : int; body : op list }
  | Choice of { prob : float; if_true : op list; if_false : op list }

type t = { name : string; category : string; ops : op list }

(* {2 Construction} *)

let make ~name ~category ops = { name; category; ops }

let open_file ?reserve_blocks ~name ~size_blocks () =
  let reserve_blocks =
    match reserve_blocks with Some r -> r | None -> Stdlib.max 1 size_blocks
  in
  Open { name; size_blocks; reserve_blocks }

let read ?(cpu = 0.0) ?(done_with = false) ~file ~first ~count () =
  Read { file; first; count; cpu; done_with }

let write ?(cpu = 0.0) ?(done_with = false) ~file ~first ~count () =
  Write { file; first; count; cpu; done_with }

let rand_read ?(cpu = 0.0) ~file ~base ~range () = Rand_read { file; base; range; cpu }

let compute seconds = Compute seconds

let set_priority ~file ~prio = Advise (Priority { file; prio })

let set_policy ~prio policy = Advise (Policy { prio; policy })

let set_temppri ~file ~first ~last ~prio = Advise (Temppri { file; first; last; prio })

let done_with ~file ~index = Advise (Done_with { file; index })

let unlink file = Unlink { file }

let seq ops = Seq ops

let loop times body = Loop { times; body }

let choice ~prob if_true if_false = Choice { prob; if_true; if_false }

(* {2 Program statistics} *)

let rec count_ops acc = function
  | Seq body -> List.fold_left count_ops acc body
  | Loop { body; _ } -> List.fold_left count_ops acc body + 1
  | Choice { if_true; if_false; _ } ->
    List.fold_left count_ops (List.fold_left count_ops acc if_true) if_false + 1
  | Open _ | Read _ | Write _ | Rand_read _ | Compute _ | Advise _ | Unlink _ -> acc + 1

let op_count t = List.fold_left count_ops 0 t.ops

let rec count_opens acc = function
  | Open _ -> acc + 1
  | Seq body -> List.fold_left count_opens acc body
  (* Opens are illegal inside Loop/Choice, but count what is there so
     the statistic stays truthful on unvalidated programs. *)
  | Loop { body; _ } -> List.fold_left count_opens acc body
  | Choice { if_true; if_false; _ } ->
    List.fold_left count_opens (List.fold_left count_opens acc if_true) if_false
  | Read _ | Write _ | Rand_read _ | Compute _ | Advise _ | Unlink _ -> acc

let file_count t = List.fold_left count_opens 0 t.ops

(* {2 Static checking}

   Internal errors are (path, message) pairs; the boundary functions
   stamp on the label ("wir:" or the embedding document's), so a
   program nested in a scenario reports scenario-rooted paths. *)

let ( let* ) = Result.bind

let fmt ~label = Result.map_error (fun (path, msg) -> Printf.sprintf "%s: %s at %s" label msg path)

type slot = { reserve : int; file_name : string; mutable live : bool }

let iter_result f l =
  List.fold_left
    (fun acc x ->
      let* () = acc in
      f x)
    (Ok ()) l

let check ~path t =
  let slots : slot array ref = ref [||] in
  let n_slots = ref 0 in
  let push s =
    if !n_slots = Array.length !slots then begin
      let grown = Array.make (Stdlib.max 8 (2 * !n_slots)) s in
      Array.blit !slots 0 grown 0 !n_slots;
      slots := grown
    end;
    !slots.(!n_slots) <- s;
    incr n_slots
  in
  let err path msg = Error (path, msg) in
  let slot path file =
    if file < 0 || file >= !n_slots then
      err path (Printf.sprintf "file %d is not open (%d file%s opened so far)" file !n_slots
           (if !n_slots = 1 then "" else "s"))
    else if not !slots.(file).live then
      err path (Printf.sprintf "file %d was unlinked" file)
    else Ok !slots.(file)
  in
  let finite_nonneg path what v =
    if Float.is_nan v || v < 0.0 || v = Float.infinity then
      err path (Printf.sprintf "%s must be a finite non-negative number" what)
    else Ok ()
  in
  let check_range path verb file ~first ~count =
    let* s = slot path file in
    if first < 0 then err path (Printf.sprintf "%s starts at negative block %d" verb first)
    else if count < 1 then err path (Printf.sprintf "%s count must be at least 1" verb)
    else if first + count > s.reserve then
      err path
        (Printf.sprintf "%s of blocks [%d, %d) exceeds file %d's %d-block extent" verb
           first (first + count) file s.reserve)
    else Ok ()
  in
  let rec check_op ~static ~path = function
    | Open { name; size_blocks; reserve_blocks } ->
      if not static then err path "open is not allowed inside loop or choice"
      else if name = "" then err path "file name must be non-empty"
      else if size_blocks < 0 then err path "size_blocks must be non-negative"
      else if reserve_blocks < Stdlib.max 1 size_blocks then
        err path "reserve_blocks must be at least max(1, size_blocks)"
      else if
        Array.exists (fun s -> s.live && s.file_name = name)
          (Array.sub !slots 0 !n_slots)
      then err path (Printf.sprintf "duplicate file name %S" name)
      else Ok (push { reserve = reserve_blocks; file_name = name; live = true })
    | Read { file; first; count; cpu; _ } ->
      let* () = check_range path "read" file ~first ~count in
      finite_nonneg path "cpu" cpu
    | Write { file; first; count; cpu; _ } ->
      let* () = check_range path "write" file ~first ~count in
      finite_nonneg path "cpu" cpu
    | Rand_read { file; base; range; cpu } ->
      let* s = slot path file in
      let* () =
        if base < 0 then err path (Printf.sprintf "read starts at negative block %d" base)
        else if range < 1 then err path "range must be at least 1"
        else if base + range > s.reserve then
          err path
            (Printf.sprintf "read of blocks [%d, %d) exceeds file %d's %d-block extent"
               base (base + range) file s.reserve)
        else Ok ()
      in
      finite_nonneg path "cpu" cpu
    | Compute seconds -> finite_nonneg path "seconds" seconds
    | Advise (Priority { file; _ }) ->
      let* _ = slot path file in
      Ok ()
    | Advise (Policy _) -> Ok ()
    | Advise (Temppri { file; first; last; _ }) ->
      let* s = slot path file in
      if first < 0 || last < first || last >= s.reserve then
        err path
          (Printf.sprintf "temppri range [%d, %d] outside file %d's %d-block extent"
             first last file s.reserve)
      else Ok ()
    | Advise (Done_with { file; index }) ->
      let* s = slot path file in
      if index < 0 || index >= s.reserve then
        err path
          (Printf.sprintf "done_with block %d outside file %d's %d-block extent" index
             file s.reserve)
      else Ok ()
    | Unlink { file } ->
      if not static then err path "unlink is not allowed inside loop or choice"
      else
        let* s = slot path file in
        s.live <- false;
        Ok ()
    | Seq body -> check_body ~static ~path ~field:"body" body
    | Loop { times; body } ->
      if times < 0 then err path "times must be non-negative"
      else check_body ~static:false ~path ~field:"body" body
    | Choice { prob; if_true; if_false } ->
      if Float.is_nan prob || prob < 0.0 || prob > 1.0 then
        err path "prob must be between 0 and 1"
      else
        let* () = check_body ~static:false ~path ~field:"then" if_true in
        check_body ~static:false ~path ~field:"else" if_false
  and check_body ~static ~path ~field body =
    let _, r =
      List.fold_left
        (fun (i, acc) op ->
          ( i + 1,
            let* () = acc in
            check_op ~static ~path:(Printf.sprintf "%s.%s[%d]" path field i) op ))
        (0, Ok ()) body
    in
    r
  in
  let* () =
    if t.name = "" then Error (path ^ ".name", "program name must be non-empty") else Ok ()
  in
  let _, r =
    List.fold_left
      (fun (i, acc) op ->
        ( i + 1,
          let* () = acc in
          check_op ~static:true ~path:(Printf.sprintf "%s.ops[%d]" path i) op ))
      (0, Ok ()) t.ops
  in
  r

let validate_at ~label ~path t = fmt ~label (check ~path t)

let validate t = validate_at ~label:"wir" ~path:"$" t

(* {2 Execution} *)

let exec t env ~disk =
  (match validate t with Ok () -> () | Error e -> failwith e);
  let files = ref [||] in
  let n_files = ref 0 in
  let push f =
    if !n_files = Array.length !files then begin
      let grown = Array.make (Stdlib.max 8 (2 * !n_files)) f in
      Array.blit !files 0 grown 0 !n_files;
      files := grown
    end;
    !files.(!n_files) <- f;
    incr n_files
  in
  let file i = !files.(i) in
  let rec run op =
    match op with
    | Open { name; size_blocks; reserve_blocks } ->
      (* validate guarantees reserve_blocks >= max 1 size_blocks, which
         is exactly Fs.create_file's default rounding — so passing the
         reserve unconditionally is identical to the historical
         closures, which passed it only when growing a size-0 file. *)
      push
        (Acfc_fs.Fs.create_file env.Env.fs ~owner:env.Env.pid
           ~name:(Env.unique_name env name) ~disk
           ~size_bytes:(size_blocks * block_bytes)
           ~reserve_bytes:(reserve_blocks * block_bytes) ())
    | Read { file = i; first; count; cpu; done_with } ->
      let f = file i in
      for b = first to first + count - 1 do
        Env.read_blocks env f ~first:b ~count:1;
        Env.compute env cpu;
        if done_with then Env.done_with_block env f b
      done
    | Write { file = i; first; count; cpu; done_with } ->
      let f = file i in
      for b = first to first + count - 1 do
        Env.write_blocks env f ~first:b ~count:1;
        Env.compute env cpu;
        if done_with then Env.done_with_block env f b
      done
    | Rand_read { file = i; base; range; cpu } ->
      let f = file i in
      Env.read_blocks env f ~first:(base + Rng.int env.Env.rng range) ~count:1;
      Env.compute env cpu
    | Compute seconds -> Env.compute env seconds
    | Advise (Priority { file = i; prio }) -> Env.set_priority env (file i) prio
    | Advise (Policy { prio; policy }) -> Env.set_policy env ~prio policy
    | Advise (Temppri { file = i; first; last; prio }) ->
      Env.set_temppri env (file i) ~first ~last ~prio
    | Advise (Done_with { file = i; index }) -> Env.done_with_block env (file i) index
    | Unlink { file = i } -> Acfc_fs.Fs.unlink env.Env.fs (file i)
    | Seq body -> List.iter run body
    | Loop { times; body } ->
      for _ = 1 to times do
        List.iter run body
      done
    | Choice { prob; if_true; if_false } ->
      if Rng.float env.Env.rng 1.0 < prob then List.iter run if_true
      else List.iter run if_false
  in
  List.iter run t.ops

let references ?rng t =
  (match validate t with Ok () -> () | Error e -> failwith e);
  let rng = match rng with Some r -> r | None -> Rng.create 0 in
  let out = ref [||] in
  let n = ref 0 in
  let push b =
    if !n = Array.length !out then begin
      let grown = Array.make (Stdlib.max 1024 (2 * !n)) b in
      Array.blit !out 0 grown 0 !n;
      out := grown
    end;
    !out.(!n) <- b;
    incr n
  in
  let next_slot = ref 0 in
  let rec run op =
    match op with
    | Open _ -> incr next_slot
    | Read { file; first; count; _ } | Write { file; first; count; _ } ->
      for b = first to first + count - 1 do
        push (Block.make ~file ~index:b)
      done
    | Rand_read { file; base; range; _ } ->
      push (Block.make ~file ~index:(base + Rng.int rng range))
    | Compute _ | Advise _ | Unlink _ -> ()
    | Seq body -> List.iter run body
    | Loop { times; body } ->
      for _ = 1 to times do
        List.iter run body
      done
    | Choice { prob; if_true; if_false } ->
      if Rng.float rng 1.0 < prob then List.iter run if_true else List.iter run if_false
  in
  List.iter run t.ops;
  Array.sub !out 0 !n

(* {2 Serialisation} *)

let schema = "acfc-wir/1"

let num_i n = Json.Num (float_of_int n)

let advice_to_json = function
  | Priority { file; prio } ->
    [ ("kind", Json.Str "priority"); ("file", num_i file); ("prio", num_i prio) ]
  | Policy { prio; policy } ->
    [
      ("kind", Json.Str "policy");
      ("prio", num_i prio);
      ("policy", Json.Str (Policy.to_string policy));
    ]
  | Temppri { file; first; last; prio } ->
    [
      ("kind", Json.Str "temppri");
      ("file", num_i file);
      ("first", num_i first);
      ("last", num_i last);
      ("prio", num_i prio);
    ]
  | Done_with { file; index } ->
    [ ("kind", Json.Str "done_with"); ("file", num_i file); ("index", num_i index) ]

let rec op_to_json op =
  let rw tag file first count cpu done_with =
    [ ("op", Json.Str tag); ("file", num_i file); ("first", num_i first); ("count", num_i count) ]
    @ (if cpu <> 0.0 then [ ("cpu", Json.Num cpu) ] else [])
    @ if done_with then [ ("done_with", Json.Bool true) ] else []
  in
  Json.Obj
    (match op with
    | Open { name; size_blocks; reserve_blocks } ->
      [ ("op", Json.Str "open"); ("name", Json.Str name); ("size_blocks", num_i size_blocks) ]
      @
      if reserve_blocks <> Stdlib.max 1 size_blocks then
        [ ("reserve_blocks", num_i reserve_blocks) ]
      else []
    | Read { file; first; count; cpu; done_with } -> rw "read" file first count cpu done_with
    | Write { file; first; count; cpu; done_with } ->
      rw "write" file first count cpu done_with
    | Rand_read { file; base; range; cpu } ->
      [
        ("op", Json.Str "rand_read");
        ("file", num_i file);
        ("base", num_i base);
        ("range", num_i range);
      ]
      @ (if cpu <> 0.0 then [ ("cpu", Json.Num cpu) ] else [])
    | Compute seconds -> [ ("op", Json.Str "compute"); ("seconds", Json.Num seconds) ]
    | Advise advice -> ("op", Json.Str "advise") :: advice_to_json advice
    | Unlink { file } -> [ ("op", Json.Str "unlink"); ("file", num_i file) ]
    | Seq body -> [ ("op", Json.Str "seq"); ("body", Json.List (List.map op_to_json body)) ]
    | Loop { times; body } ->
      [
        ("op", Json.Str "loop");
        ("times", num_i times);
        ("body", Json.List (List.map op_to_json body));
      ]
    | Choice { prob; if_true; if_false } ->
      [
        ("op", Json.Str "choice");
        ("prob", Json.Num prob);
        ("then", Json.List (List.map op_to_json if_true));
      ]
      @
      if if_false <> [] then [ ("else", Json.List (List.map op_to_json if_false)) ]
      else [])

let to_json t =
  Json.Obj
    [
      ("schema", Json.Str schema);
      ("name", Json.Str t.name);
      ("category", Json.Str t.category);
      ("ops", Json.List (List.map op_to_json t.ops));
    ]

(* {3 Parsing} *)

let err path msg = Error (path, msg)

let fields ~path ~known j =
  match j with
  | Json.Obj members ->
    let* () =
      iter_result
        (fun (k, _) ->
          if List.mem k known then Ok ()
          else err path (Printf.sprintf "unknown field %S" k))
        members
    in
    Ok members
  | _ -> err path "expected an object"

let field name members = List.assoc_opt name members

let require ~path name members =
  match field name members with
  | Some v -> Ok v
  | None -> err path (Printf.sprintf "missing required field %S" name)

let as_int ~path = function
  | Json.Num _ as v ->
    (match Json.to_int v with
    | Some n -> Ok n
    | None -> err path "expected an integer")
  | _ -> err path "expected an integer"

let as_num ~path = function
  | Json.Num x -> Ok x
  | _ -> err path "expected a number"

let as_str ~path = function
  | Json.Str s -> Ok s
  | _ -> err path "expected a string"

let as_bool ~path = function
  | Json.Bool b -> Ok b
  | _ -> err path "expected a boolean"

let as_list ~path = function
  | Json.List l -> Ok l
  | _ -> err path "expected a list"

let req_int ~path name members =
  let* v = require ~path name members in
  as_int ~path:(path ^ "." ^ name) v

let req_num ~path name members =
  let* v = require ~path name members in
  as_num ~path:(path ^ "." ^ name) v

let opt_num ~path ~default name members =
  match field name members with
  | None -> Ok default
  | Some v -> as_num ~path:(path ^ "." ^ name) v

let opt_bool ~path ~default name members =
  match field name members with
  | None -> Ok default
  | Some v -> as_bool ~path:(path ^ "." ^ name) v

let mapi_result ~path f l =
  let rec go i acc = function
    | [] -> Ok (List.rev acc)
    | x :: rest ->
      let* v = f ~path:(Printf.sprintf "%s[%d]" path i) x in
      go (i + 1) (v :: acc) rest
  in
  go 0 [] l

let parse_advice ~path members =
  let* kind =
    let* v = require ~path "kind" members in
    as_str ~path:(path ^ ".kind") v
  in
  let known extra = [ "op"; "kind" ] @ extra in
  let strict extra =
    iter_result
      (fun (k, _) ->
        if List.mem k (known extra) then Ok ()
        else err path (Printf.sprintf "unknown field %S" k))
      members
  in
  match kind with
  | "priority" ->
    let* () = strict [ "file"; "prio" ] in
    let* file = req_int ~path "file" members in
    let* prio = req_int ~path "prio" members in
    Ok (Priority { file; prio })
  | "policy" ->
    let* () = strict [ "prio"; "policy" ] in
    let* prio = req_int ~path "prio" members in
    let* p =
      let* v = require ~path "policy" members in
      as_str ~path:(path ^ ".policy") v
    in
    (match Policy.of_string p with
    | Some policy -> Ok (Policy { prio; policy })
    | None ->
      err (path ^ ".policy") (Printf.sprintf "unknown policy %S (expected lru or mru)" p))
  | "temppri" ->
    let* () = strict [ "file"; "first"; "last"; "prio" ] in
    let* file = req_int ~path "file" members in
    let* first = req_int ~path "first" members in
    let* last = req_int ~path "last" members in
    let* prio = req_int ~path "prio" members in
    Ok (Temppri { file; first; last; prio })
  | "done_with" ->
    let* () = strict [ "file"; "index" ] in
    let* file = req_int ~path "file" members in
    let* index = req_int ~path "index" members in
    Ok (Done_with { file; index })
  | k ->
    err (path ^ ".kind")
      (Printf.sprintf "unknown advice kind %S (expected priority, policy, temppri or done_with)"
         k)

let rec parse_op ~path j =
  match j with
  | Json.Obj members ->
    let* tag =
      let* v = require ~path "op" members in
      as_str ~path:(path ^ ".op") v
    in
    let strict known =
      iter_result
        (fun (k, _) ->
          if List.mem k ("op" :: known) then Ok ()
          else err path (Printf.sprintf "unknown field %S" k))
        members
    in
    let rw make =
      let* () = strict [ "file"; "first"; "count"; "cpu"; "done_with" ] in
      let* file = req_int ~path "file" members in
      let* first = req_int ~path "first" members in
      let* count = req_int ~path "count" members in
      let* cpu = opt_num ~path ~default:0.0 "cpu" members in
      let* done_with = opt_bool ~path ~default:false "done_with" members in
      Ok (make ~file ~first ~count ~cpu ~done_with)
    in
    let body name =
      let* v = require ~path name members in
      let* l = as_list ~path:(path ^ "." ^ name) v in
      mapi_result ~path:(path ^ "." ^ name) parse_op l
    in
    (match tag with
    | "open" ->
      let* () = strict [ "name"; "size_blocks"; "reserve_blocks" ] in
      let* name =
        let* v = require ~path "name" members in
        as_str ~path:(path ^ ".name") v
      in
      let* size_blocks = req_int ~path "size_blocks" members in
      let* reserve_blocks =
        match field "reserve_blocks" members with
        | None -> Ok (Stdlib.max 1 size_blocks)
        | Some v -> as_int ~path:(path ^ ".reserve_blocks") v
      in
      Ok (Open { name; size_blocks; reserve_blocks })
    | "read" ->
      rw (fun ~file ~first ~count ~cpu ~done_with ->
          Read { file; first; count; cpu; done_with })
    | "write" ->
      rw (fun ~file ~first ~count ~cpu ~done_with ->
          Write { file; first; count; cpu; done_with })
    | "rand_read" ->
      let* () = strict [ "file"; "base"; "range"; "cpu" ] in
      let* file = req_int ~path "file" members in
      let* base = req_int ~path "base" members in
      let* range = req_int ~path "range" members in
      let* cpu = opt_num ~path ~default:0.0 "cpu" members in
      Ok (Rand_read { file; base; range; cpu })
    | "compute" ->
      let* () = strict [ "seconds" ] in
      let* seconds = req_num ~path "seconds" members in
      Ok (Compute seconds)
    | "advise" ->
      let* advice = parse_advice ~path members in
      Ok (Advise advice)
    | "unlink" ->
      let* () = strict [ "file" ] in
      let* file = req_int ~path "file" members in
      Ok (Unlink { file })
    | "seq" ->
      let* () = strict [ "body" ] in
      let* ops = body "body" in
      Ok (Seq ops)
    | "loop" ->
      let* () = strict [ "times"; "body" ] in
      let* times = req_int ~path "times" members in
      let* ops = body "body" in
      Ok (Loop { times; body = ops })
    | "choice" ->
      let* () = strict [ "prob"; "then"; "else" ] in
      let* prob = req_num ~path "prob" members in
      let* if_true = body "then" in
      let* if_false =
        match field "else" members with
        | None -> Ok []
        | Some v ->
          let* l = as_list ~path:(path ^ ".else") v in
          mapi_result ~path:(path ^ ".else") parse_op l
      in
      Ok (Choice { prob; if_true; if_false })
    | tag ->
      err (path ^ ".op")
        (Printf.sprintf
           "unknown op %S (expected open, read, write, rand_read, compute, advise, \
            unlink, seq, loop or choice)"
           tag))
  | _ -> err path "expected an op object"

let parse ~path j =
  let* members = fields ~path ~known:[ "schema"; "name"; "category"; "ops" ] j in
  let* s = require ~path "schema" members in
  let* schema_str = as_str ~path:(path ^ ".schema") s in
  let* () =
    if schema_str = schema then Ok ()
    else
      err (path ^ ".schema")
        (Printf.sprintf "unsupported schema %S (expected %s)" schema_str schema)
  in
  let* name =
    let* v = require ~path "name" members in
    as_str ~path:(path ^ ".name") v
  in
  let* category =
    match field "category" members with
    | None -> Ok "custom"
    | Some v -> as_str ~path:(path ^ ".category") v
  in
  let* o = require ~path "ops" members in
  let* l = as_list ~path:(path ^ ".ops") o in
  let* ops = mapi_result ~path:(path ^ ".ops") parse_op l in
  Ok { name; category; ops }

let of_json_at ~label ~path j = fmt ~label (parse ~path j)

let of_json j = of_json_at ~label:"wir" ~path:"$" j

let to_string t = Json.to_string (to_json t)

let of_string s =
  match Json.of_string s with
  | Error e -> Error ("wir: invalid JSON: " ^ e)
  | Ok j -> of_json j

let save t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string t);
      output_char oc '\n')

let load path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error e -> Error ("wir: " ^ e)
  | contents -> of_string contents

let hash t = Digest.to_hex (Digest.string (to_string t))
