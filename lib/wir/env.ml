open Acfc_sim
module Control = Acfc_core.Control

let block_bytes = Acfc_disk.Params.block_bytes

type t = {
  engine : Engine.t;
  fs : Acfc_fs.Fs.t;
  pid : Acfc_core.Pid.t;
  control : Control.t option;
  cpu : Resource.t option;
  rng : Rng.t;
}

let smart t = Option.is_some t.control

let compute t seconds =
  if seconds > 0.0 then
    match t.cpu with
    | Some cpu -> Resource.use cpu ~service:seconds
    | None -> Engine.delay t.engine seconds

let read_blocks t file ~first ~count =
  if count > 0 then
    Acfc_fs.Fs.read t.fs ~pid:t.pid file ~off:(first * block_bytes) ~len:(count * block_bytes)

let write_blocks t file ~first ~count =
  if count > 0 then
    Acfc_fs.Fs.write t.fs ~pid:t.pid file ~off:(first * block_bytes) ~len:(count * block_bytes)

let read_bytes t file ~off ~len = Acfc_fs.Fs.read t.fs ~pid:t.pid file ~off ~len

let unique_name t name =
  Printf.sprintf "p%d:%s" (Acfc_core.Pid.to_int t.pid) name

let ok = function
  | Ok () -> ()
  | Error e -> failwith ("strategy call failed: " ^ Acfc_core.Error.to_string e)

let set_priority t file prio =
  match t.control with
  | None -> ()
  | Some c -> ok (Control.set_priority c ~file:(Acfc_fs.File.id file) prio)

let set_policy t ~prio policy =
  match t.control with
  | None -> ()
  | Some c -> ok (Control.set_policy c ~prio policy)

let set_temppri t file ~first ~last ~prio =
  match t.control with
  | None -> ()
  | Some c -> ok (Control.set_temppri c ~file:(Acfc_fs.File.id file) ~first ~last ~prio)

let done_with_block t file index = set_temppri t file ~first:index ~last:index ~prio:(-1)
