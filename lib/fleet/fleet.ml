module Block = Acfc_core.Block
module Cache = Acfc_core.Cache
module Pid = Acfc_core.Pid
module Config = Acfc_core.Config
module Params = Acfc_disk.Params
module Engine = Acfc_sim.Engine
module Epoch = Acfc_sim.Epoch
module Rng = Acfc_sim.Rng
module Wir = Acfc_wir.Wir
module Scenario = Acfc_scenario.Scenario
module Pool = Acfc_par.Pool
module Team = Acfc_par.Team
module Metrics = Acfc_obs.Metrics

(* Conservative parallel discrete-event simulation of a fleet: N client
   machines (each a full engine + columnar cache + analytic local
   disks) in front of one shared server cache. Clients advance
   independently inside an epoch of one lookahead; requests cross to
   the server only at epoch barriers, merged in (send time, client id,
   seq) order — a pure function of simulation state, so the result is
   byte-identical at every worker count.

   Why the epoch length is safe: with lookahead L <= 2 * min link
   latency, a request sent in epoch k (send time ts > boundary k)
   cannot be answered before ts + 2*latency > boundary k + L =
   boundary (k+1) — i.e. never within its own epoch, so processing
   requests at the barrier after the epoch can never deliver a
   response into simulated time a client has already passed. *)

type client = {
  id : int;
  engine : Engine.t;
  cache : Cache.t;
  disk_free : float array; (* per local disk: next instant it is idle *)
  disk_svc : float array; (* constant service time per request *)
  wdisk : int array; (* workload index -> local disk index *)
  hit_cost : float;
  shared_files : int;
  outbox : Batch.t; (* the owning domain's SPSC buffer *)
  pending : (unit -> unit) array; (* per workload: resume of the in-flight request *)
  mutable seq : int;
  mutable remote_requests : int;
  mutable local_disk_reads : int;
  mutable finished : int; (* workloads that ran to completion *)
  mutable finished_at : float;
}

type server = {
  s_cache : Cache.t;
  s_svc : float;
  mutable s_free : float;
  mutable s_hits : int;
  mutable s_busy : float;
  mutable s_wait : float;
  req_by_client : int array;
  hit_by_client : int array;
  (* Merge scratch: all outboxes gathered into columns, then an index
     permutation sorted by (ts, client, seq). Grown to the high-water
     mark once; steady epochs allocate nothing. *)
  mutable m_ts : float array;
  mutable m_client : int array;
  mutable m_seq : int array;
  mutable m_wld : int array;
  mutable m_blk : int array;
  mutable m_order : int array;
  mutable m_len : int;
}

type client_stats = {
  local_hits : int;
  local_misses : int;
  remote_requests : int;
  server_hits : int;
  local_disk_reads : int;
  events : int;
  finish_s : float;
}

type report = {
  client_stats : client_stats array;
  epochs : int;
  lookahead_s : float;
  events : int;
  makespan_s : float;
  server_requests : int;
  server_hits : int;
  server_busy_s : float;
  server_wait_s : float;
}

let nop () = ()

(* Local disks are modelled analytically (constant FCFS service time
   from the drive parameters) rather than with the full bus/seek
   model: the fleet's object of study is cache interaction and server
   queueing, and a constant-service queue keeps the per-miss cost one
   float max instead of a fiber round-trip through Disk. *)
let disk_service_s (p : Params.t) =
  ((p.Params.overhead_ms +. p.Params.avg_seek_ms +. p.Params.avg_rot_ms) /. 1000.0)
  +. Params.transfer_time_s p

let spawn_workload cl w stream =
  let eng = cl.engine in
  let pid = Pid.make w in
  Engine.spawn eng ~name:(Printf.sprintf "client%d.workload%d" cl.id w) (fun () ->
      let n = Array.length stream in
      for i = 0 to n - 1 do
        let b = stream.(i) in
        match Cache.read cl.cache ~pid b with
        | `Hit -> Engine.delay eng cl.hit_cost
        | `Miss ->
          if Block.file b < cl.shared_files then begin
            let seq = cl.seq in
            cl.seq <- seq + 1;
            cl.remote_requests <- cl.remote_requests + 1;
            Batch.push cl.outbox ~ts:(Engine.now eng) ~client:cl.id ~seq ~wld:w
              ~blk:(Block.pack b);
            Engine.suspend eng (fun resume -> cl.pending.(w) <- resume)
          end
          else begin
            cl.local_disk_reads <- cl.local_disk_reads + 1;
            let d = cl.wdisk.(w) in
            let now = Engine.now eng in
            let start = if cl.disk_free.(d) > now then cl.disk_free.(d) else now in
            let fin = start +. cl.disk_svc.(d) in
            cl.disk_free.(d) <- fin;
            Engine.delay eng (fin -. now)
          end
      done;
      cl.finished <- cl.finished + 1;
      if Engine.now eng > cl.finished_at then cl.finished_at <- Engine.now eng)

let build_client ~config ~disk_svc ~wdisk ~hit_cost ~shared_files ~programs ~offsets
    ~rngs ~outbox id =
  let nwld = Array.length programs in
  let cl =
    {
      id;
      engine = Engine.create ();
      cache = Cache.create config;
      disk_free = Array.make (Array.length disk_svc) 0.0;
      disk_svc;
      wdisk;
      hit_cost;
      shared_files;
      outbox;
      pending = Array.make nwld nop;
      seq = 0;
      remote_requests = 0;
      local_disk_reads = 0;
      finished = 0;
      finished_at = 0.0;
    }
  in
  for w = 0 to nwld - 1 do
    let stream = Wir.references ~rng:rngs.(w) programs.(w) in
    let off = offsets.(w) in
    if off > 0 then
      Array.iteri
        (fun i b ->
          stream.(i) <- Block.make ~file:(off + Block.file b) ~index:(Block.index b))
        stream;
    spawn_workload cl w stream
  done;
  cl

(* {2 Server shard} *)

let make_server fleet nclients =
  {
    s_cache =
      Cache.create
        (Config.make
           ~capacity_blocks:fleet.Scenario.server.Scenario.server_cache_blocks ());
    s_svc = disk_service_s fleet.Scenario.server.Scenario.server_drive;
    s_free = 0.0;
    s_hits = 0;
    s_busy = 0.0;
    s_wait = 0.0;
    req_by_client = Array.make nclients 0;
    hit_by_client = Array.make nclients 0;
    m_ts = Array.make 256 0.0;
    m_client = Array.make 256 0;
    m_seq = Array.make 256 0;
    m_wld = Array.make 256 0;
    m_blk = Array.make 256 0;
    m_order = Array.make 256 0;
    m_len = 0;
  }

let server_reserve s total =
  if total > Array.length s.m_ts then begin
    let cap = ref (Array.length s.m_ts) in
    while !cap < total do
      cap := 2 * !cap
    done;
    s.m_ts <- Array.make !cap 0.0;
    s.m_client <- Array.make !cap 0;
    s.m_seq <- Array.make !cap 0;
    s.m_wld <- Array.make !cap 0;
    s.m_blk <- Array.make !cap 0;
    s.m_order <- Array.make !cap 0
  end

(* Drain every outbox into the merge columns. Gather order does not
   matter — the sort below is total on (ts, client, seq). *)
let gather s outboxes =
  let total = Array.fold_left (fun acc b -> acc + Batch.length b) 0 outboxes in
  server_reserve s total;
  let k = ref 0 in
  Array.iter
    (fun b ->
      for i = 0 to Batch.length b - 1 do
        s.m_ts.(!k) <- Batch.ts b i;
        s.m_client.(!k) <- Batch.client b i;
        s.m_seq.(!k) <- Batch.seq b i;
        s.m_wld.(!k) <- Batch.wld b i;
        s.m_blk.(!k) <- Batch.blk b i;
        incr k
      done;
      Batch.clear b)
    outboxes;
  s.m_len <- total

let[@inline] req_before s i j =
  s.m_ts.(i) < s.m_ts.(j)
  || s.m_ts.(i) = s.m_ts.(j)
     && (s.m_client.(i) < s.m_client.(j)
        || (s.m_client.(i) = s.m_client.(j) && s.m_seq.(i) < s.m_seq.(j)))

(* In-place heapsort of m_order[0..n): Array.sort cannot sort a slice
   of the persistent scratch array, and this runs at barrier rate, so
   sorting without allocating beats stdlib convenience. (ts, client,
   seq) triples are unique — seq is a per-client counter — so the
   order is total and heapsort's instability is irrelevant. *)
let sort_order s n =
  let o = s.m_order in
  (* Max-heap sift-down over o.[root..last]. *)
  let sift root last =
    let r = ref root in
    let stop = ref false in
    while not !stop do
      let child = (2 * !r) + 1 in
      if child > last then stop := true
      else begin
        let c =
          if child < last && req_before s o.(child) o.(child + 1) then child + 1
          else child
        in
        if req_before s o.(!r) o.(c) then begin
          let tmp = o.(!r) in
          o.(!r) <- o.(c);
          o.(c) <- tmp;
          r := c
        end
        else stop := true
      end
    done
  in
  for root = (n - 2) / 2 downto 0 do
    sift root (n - 1)
  done;
  for last = n - 1 downto 1 do
    let tmp = o.(0) in
    o.(0) <- o.(last);
    o.(last) <- tmp;
    sift 0 (last - 1)
  done

(* Process one barrier's worth of requests in (ts, client, seq) order:
   request arrival = send time + link latency; a server miss queues
   FCFS on the server drive; the response lands back at the client
   after another latency plus the block's transmission time. The
   response is injected by [Engine.schedule] on the client's engine —
   safe here because no worker is running between barriers, and always
   in that client's future (see the lookahead argument above). *)
let serve s clients lat xfer =
  let n = s.m_len in
  for i = 0 to n - 1 do
    s.m_order.(i) <- i
  done;
  if n > 1 then sort_order s n;
  let pid = Pid.make 0 in
  for k = 0 to n - 1 do
    let i = s.m_order.(k) in
    let c = s.m_client.(i) in
    let arrival = s.m_ts.(i) +. lat.(c) in
    s.req_by_client.(c) <- s.req_by_client.(c) + 1;
    let done_at =
      match Cache.read s.s_cache ~pid (Block.unpack s.m_blk.(i)) with
      | `Hit ->
        s.s_hits <- s.s_hits + 1;
        s.hit_by_client.(c) <- s.hit_by_client.(c) + 1;
        arrival
      | `Miss ->
        let start = if s.s_free > arrival then s.s_free else arrival in
        s.s_wait <- s.s_wait +. (start -. arrival);
        s.s_busy <- s.s_busy +. s.s_svc;
        let fin = start +. s.s_svc in
        s.s_free <- fin;
        fin
    in
    let back = done_at +. lat.(c) +. xfer.(c) in
    let cl = clients.(c) in
    Engine.schedule cl.engine ~at:back cl.pending.(s.m_wld.(i))
  done;
  s.m_len <- 0

(* {2 The epoch loop} *)

let programs_of scn =
  let scn = Scenario.inline_workloads scn in
  let workloads = Array.of_list scn.Scenario.workloads in
  let programs =
    Array.map
      (fun w ->
        match w.Scenario.app with
        | Scenario.Inline p -> p
        | Scenario.Named _ -> assert false (* inline_workloads post-condition *))
      workloads
  in
  let wdisk = Array.map (fun w -> w.Scenario.disk) workloads in
  (programs, wdisk)

let run ?jobs ?obs ?monitor scn =
  let fleet =
    match scn.Scenario.fleet with
    | Some f -> f
    | None -> invalid_arg "Fleet.run: scenario has no fleet section"
  in
  let programs, wdisk = programs_of scn in
  let nwld = Array.length programs in
  (* Workload w's program uses file slots [offsets.(w), offsets.(w) +
     file_count). Slots below [shared_files] are server-backed and, by
     construction, the same slot names the same shared file on every
     client; the rest are client-private. *)
  let offsets = Array.make nwld 0 in
  let total_files = ref 0 in
  Array.iteri
    (fun w p ->
      offsets.(w) <- !total_files;
      total_files := !total_files + Wir.file_count p)
    programs;
  if fleet.Scenario.shared_files > !total_files then
    invalid_arg
      (Printf.sprintf "Fleet.run: shared_files %d exceeds the %d workload file slots"
         fleet.Scenario.shared_files !total_files);
  let nclients = fleet.Scenario.clients in
  let jobs = match jobs with Some j when j >= 1 -> j | _ -> Pool.default_jobs () in
  let workers = min jobs nclients in
  let lat =
    Array.init nclients (fun c ->
        (Scenario.client_link fleet c).Scenario.latency_ms /. 1000.0)
  in
  let xfer =
    Array.init nclients (fun c ->
        float_of_int Params.block_bytes
        /. ((Scenario.client_link fleet c).Scenario.bandwidth_mb_per_s *. 1e6))
  in
  let lookahead_s = Scenario.fleet_lookahead_ms fleet /. 1000.0 in
  let ep = Epoch.make ~start:0.0 ~length:lookahead_s in
  let hit_cost = Option.value scn.Scenario.hit_cost ~default:0.0006 in
  let disk_svc =
    Array.of_list (List.map (fun d -> disk_service_s d.Scenario.params) scn.Scenario.disks)
  in
  (* All RNG splitting happens here, on the coordinating domain, in one
     fixed order — worker count must never change a draw. *)
  let base = Rng.create scn.Scenario.seed in
  let rngs = Array.make nclients [||] in
  for c = 0 to nclients - 1 do
    let crng = Rng.split base in
    let per_wld = Array.make nwld crng in
    for w = 0 to nwld - 1 do
      per_wld.(w) <- Rng.split crng
    done;
    rngs.(c) <- per_wld
  done;
  let outboxes = Array.init workers (fun _ -> Batch.create ()) in
  let slots = Array.make nclients None in
  Team.with_team ~workers @@ fun team ->
  (* Build clients where they will live: worker [wid] owns clients
     [wid, wid + workers, …] for the whole run, so engines, their
     captured effect continuations and their outbox stay pinned to one
     domain. Stream extraction is the expensive part, and parallelises
     for free. *)
  Team.run team (fun wid ->
      let c = ref wid in
      while !c < nclients do
        slots.(!c) <-
          Some
            (build_client ~config:scn.Scenario.config ~disk_svc ~wdisk ~hit_cost
               ~shared_files:fleet.Scenario.shared_files ~programs ~offsets
               ~rngs:rngs.(!c) ~outbox:outboxes.(wid) !c);
        c := !c + workers
      done);
  let clients =
    Array.map (function Some c -> c | None -> assert false (* all built *)) slots
  in
  let server = make_server fleet nclients in
  (match obs with
  | None -> ()
  | Some sink ->
    let m = Acfc_obs.Sink.metrics sink in
    Array.iter
      (fun cl ->
        let g name read =
          Metrics.gauge m
            (Metrics.label name [ ("client", string_of_int cl.id) ])
            read
        in
        g "fleet.client.hits" (fun () -> float_of_int (Cache.hits cl.cache));
        g "fleet.client.misses" (fun () -> float_of_int (Cache.misses cl.cache));
        g "fleet.client.remote_requests" (fun () ->
            float_of_int cl.remote_requests);
        g "fleet.client.disk_reads" (fun () -> float_of_int cl.local_disk_reads);
        g "fleet.client.events" (fun () ->
            float_of_int (Engine.events_processed cl.engine)))
      clients;
    (* Global roll-ups: the sum of every labelled instance above. *)
    Metrics.gauge_sum m "fleet.client.hits";
    Metrics.gauge_sum m "fleet.client.misses";
    Metrics.gauge_sum m "fleet.client.remote_requests";
    Metrics.gauge_sum m "fleet.client.disk_reads";
    Metrics.gauge_sum m "fleet.client.events";
    Metrics.gauge m "fleet.server.requests" (fun () ->
        float_of_int (Array.fold_left ( + ) 0 server.req_by_client));
    Metrics.gauge m "fleet.server.hits" (fun () -> float_of_int server.s_hits);
    Metrics.gauge m "fleet.server.disk_busy_s" (fun () -> server.s_busy);
    Metrics.gauge m "fleet.server.queue_wait_s" (fun () -> server.s_wait));
  (* Monitor samples are taken at epoch barriers, after [serve]: the
     worker domains are parked inside [Team.run] between epochs, so the
     coordinator reads every cross-domain gauge race-free, and the
     sample perturbs neither event counts nor the schedule. *)
  let monitor =
    match (monitor, obs) with
    | None, _ -> None
    | Some (p, every), Some sink ->
      Some (p, Acfc_obs.Sink.metrics sink, every, ref 0.0)
    | Some _, None ->
      invalid_arg "Fleet.run: a monitor needs an observability sink (obs)"
  in
  let monitor_sample now =
    match monitor with
    | Some (p, metrics, every, next) when now >= !next ->
      Acfc_obs.Monitor.sample p ~metrics ~now;
      next := now +. every
    | _ -> ()
  in
  let total = nclients * nwld in
  let finished () = Array.fold_left (fun acc c -> acc + c.finished) 0 clients in
  let k = ref 0 in
  let epochs = ref 0 in
  while finished () < total do
    let h = Epoch.horizon ep !k in
    Team.run team (fun wid ->
        let c = ref wid in
        while !c < nclients do
          Engine.run_until clients.(!c).engine h;
          c := !c + workers
        done);
    incr epochs;
    gather server outboxes;
    serve server clients lat xfer;
    monitor_sample h;
    if finished () < total then begin
      (* Jump over epochs in which no engine has work (all responses
         are scheduled by now, so the minimum is exact). *)
      let next = ref Float.infinity in
      Array.iter
        (fun cl ->
          match Engine.next_event_time cl.engine with
          | Some t -> if t < !next then next := t
          | None -> ())
        clients;
      if !next = Float.infinity then
        failwith
          "Fleet.run: fleet stalled — workloads unfinished but no engine has a \
           pending event";
      let nk = Epoch.index_of ep !next in
      k := if nk > !k + 1 then nk else !k + 1
    end
  done;
  let client_stats =
    Array.map
      (fun cl ->
        {
          local_hits = Cache.hits cl.cache;
          local_misses = Cache.misses cl.cache;
          remote_requests = cl.remote_requests;
          server_hits = server.hit_by_client.(cl.id);
          local_disk_reads = cl.local_disk_reads;
          events = Engine.events_processed cl.engine;
          finish_s = cl.finished_at;
        })
      clients
  in
  let makespan =
    Array.fold_left (fun acc (c : client_stats) -> Float.max acc c.finish_s) 0.0
      client_stats
  in
  (match monitor with
  | None -> ()
  | Some (p, metrics, _, _) ->
    Acfc_obs.Monitor.sample p ~metrics ~now:makespan;
    Acfc_obs.Monitor.finish p ~now:makespan);
  {
    client_stats;
    epochs = !epochs;
    lookahead_s;
    events = Array.fold_left (fun acc (c : client_stats) -> acc + c.events) 0 client_stats;
    makespan_s = makespan;
    server_requests = Array.fold_left ( + ) 0 server.req_by_client;
    server_hits = server.s_hits;
    server_busy_s = server.s_busy;
    server_wait_s = server.s_wait;
  }

(* {2 Report rendering}

   Deliberately free of anything worker-dependent (no jobs count, no
   wall time): this string is the byte-identity witness the golden
   test and CI diff at --jobs 1 vs 4. *)

let pp ppf r =
  let n = Array.length r.client_stats in
  Fmt.pf ppf "fleet: %d client%s, lookahead %.3f ms, %d epoch%s@." n
    (if n = 1 then "" else "s")
    (r.lookahead_s *. 1000.0) r.epochs
    (if r.epochs = 1 then "" else "s");
  Fmt.pf ppf "client  local-hit  local-miss  remote-req  srv-hit  disk-read   finish-s@.";
  Array.iteri
    (fun i c ->
      Fmt.pf ppf "%6d  %9d  %10d  %10d  %7d  %9d  %9.4f@." i c.local_hits
        c.local_misses c.remote_requests c.server_hits c.local_disk_reads c.finish_s)
    r.client_stats;
  Fmt.pf ppf "server: %d requests, %d hits, %d misses, disk busy %.4f s, queue wait %.4f s@."
    r.server_requests r.server_hits
    (r.server_requests - r.server_hits)
    r.server_busy_s r.server_wait_s;
  let hits = Array.fold_left (fun a c -> a + c.local_hits) 0 r.client_stats in
  let misses = Array.fold_left (fun a c -> a + c.local_misses) 0 r.client_stats in
  let ratio =
    if hits + misses = 0 then 0.0 else float_of_int hits /. float_of_int (hits + misses)
  in
  Fmt.pf ppf "total: %d events, makespan %.4f s, local hit ratio %.4f@." r.events
    r.makespan_s ratio

let to_string r = Fmt.str "%a" pp r

(* {2 Test hooks} *)

module For_tests = struct
  (* The exact barrier path — [gather] then [sort_order] — run on a
     throwaway scratch, so the property suite can check the merge order
     is a pure function of (ts, client, seq) however the requests are
     distributed over the buffers. *)
  let merge outboxes =
    let s =
      {
        s_cache = Cache.create (Config.make ~capacity_blocks:1 ());
        s_svc = 0.0;
        s_free = 0.0;
        s_hits = 0;
        s_busy = 0.0;
        s_wait = 0.0;
        req_by_client = [||];
        hit_by_client = [||];
        m_ts = Array.make 1 0.0;
        m_client = Array.make 1 0;
        m_seq = Array.make 1 0;
        m_wld = Array.make 1 0;
        m_blk = Array.make 1 0;
        m_order = Array.make 1 0;
        m_len = 0;
      }
    in
    gather s outboxes;
    let n = s.m_len in
    for i = 0 to n - 1 do
      s.m_order.(i) <- i
    done;
    if n > 1 then sort_order s n;
    List.init n (fun k ->
        let i = s.m_order.(k) in
        (s.m_ts.(i), s.m_client.(i), s.m_seq.(i), s.m_wld.(i), s.m_blk.(i)))
end
