(* Single-producer single-consumer request batch: the per-domain mailbox
   through which clients hand requests to the server shard at an epoch
   barrier. Laid out as parallel scalar columns (one float column for
   send times, int columns for everything else), so pushing a request
   on the steady path writes five array slots and allocates nothing —
   growth doubles the columns, amortised O(1) and only until the
   high-water mark of the run.

   Concurrency contract: within an epoch exactly one domain (the
   producer pinned to this buffer) calls [push]; between epochs, after
   the team barrier, exactly one domain (the coordinator) reads and
   [clear]s. The barrier's mutex provides the happens-before edge in
   both directions, so no atomics are needed here. *)

type t = {
  mutable ts : float array; (* send time (virtual seconds) *)
  mutable client : int array;
  mutable seq : int array; (* per-client send sequence number *)
  mutable wld : int array; (* workload index within the client *)
  mutable blk : int array; (* Block.pack of the requested block *)
  mutable len : int;
}

let create ?(capacity = 256) () =
  let capacity = max 1 capacity in
  {
    ts = Array.make capacity 0.0;
    client = Array.make capacity 0;
    seq = Array.make capacity 0;
    wld = Array.make capacity 0;
    blk = Array.make capacity 0;
    len = 0;
  }

let length t = t.len

let clear t = t.len <- 0

let grow t =
  let cap = 2 * Array.length t.ts in
  let ts = Array.make cap 0.0
  and client = Array.make cap 0
  and seq = Array.make cap 0
  and wld = Array.make cap 0
  and blk = Array.make cap 0 in
  Array.blit t.ts 0 ts 0 t.len;
  Array.blit t.client 0 client 0 t.len;
  Array.blit t.seq 0 seq 0 t.len;
  Array.blit t.wld 0 wld 0 t.len;
  Array.blit t.blk 0 blk 0 t.len;
  t.ts <- ts;
  t.client <- client;
  t.seq <- seq;
  t.wld <- wld;
  t.blk <- blk

let push t ~ts ~client ~seq ~wld ~blk =
  if t.len = Array.length t.ts then grow t;
  let i = t.len in
  t.ts.(i) <- ts;
  t.client.(i) <- client;
  t.seq.(i) <- seq;
  t.wld.(i) <- wld;
  t.blk.(i) <- blk;
  t.len <- i + 1

let ts t i = t.ts.(i)

let client t i = t.client.(i)

let seq t i = t.seq.(i)

let wld t i = t.wld.(i)

let blk t i = t.blk.(i)
