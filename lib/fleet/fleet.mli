(** Domain-parallel fleet simulation: N client machines, one shared
    server cache, a network model, and a conservative parallel
    discrete-event execution that is byte-identical at every worker
    count.

    A scenario with a [fleet] section ({!Acfc_scenario.Scenario.fleet})
    describes [clients] identical client machines, each running the
    scenario's workload list against its own columnar cache and
    analytically-modelled local disks. Workload file slots below
    [shared_files] name files held by the shared server: a local-cache
    miss on one becomes a client→server request that crosses the
    network (per-link latency + bandwidth), is looked up in the server
    cache, queues FCFS on the server drive on a miss, and returns.

    {2 Execution and determinism}

    Each client's engine runs on a fixed worker domain (client [c] on
    worker [c mod workers], pinned for the whole run by
    {!Acfc_par.Team}), advancing one lookahead epoch at a time.
    Requests accumulate in per-domain SPSC {!Batch} buffers and cross
    to the server only at epoch barriers, where the coordinator merges
    them in [(send time, client id, seq)] order — a pure function of
    simulation state, independent of worker count and of the epoch
    boundary set. With the lookahead capped at twice the minimum link
    latency, no response can land inside the epoch that sent its
    request, so conservative epoch execution is exact. Consequently
    {!run}'s report (and {!pp}'s rendering of it) is byte-identical at
    every [jobs] value; the sequential [jobs = 1] path runs the same
    code on the calling domain.

    Manager strategies ([smart] workloads) do not apply inside a fleet:
    clients replay each workload's demand stream
    ({!Acfc_wir.Wir.references}) against plain two-level caches. *)

type client_stats = {
  local_hits : int;
  local_misses : int;
  remote_requests : int;  (** shared-file misses sent to the server *)
  server_hits : int;  (** of this client's requests *)
  local_disk_reads : int;
  events : int;  (** engine events processed by this client *)
  finish_s : float;  (** when the client's last workload finished *)
}

type report = {
  client_stats : client_stats array;
  epochs : int;  (** barriers executed (empty epochs are skipped) *)
  lookahead_s : float;
  events : int;  (** aggregate over all client engines *)
  makespan_s : float;
  server_requests : int;
  server_hits : int;
  server_busy_s : float;  (** server drive busy time *)
  server_wait_s : float;  (** total FCFS queueing delay at the server drive *)
}

val run :
  ?jobs:int ->
  ?obs:Acfc_obs.Sink.t ->
  ?monitor:Acfc_obs.Monitor.producer * float ->
  Acfc_scenario.Scenario.t ->
  report
(** Simulate the fleet to completion. [jobs] (default
    {!Acfc_par.Pool.default_jobs}, clamped to the client count) only
    changes wall-clock time, never the report. [obs], when given,
    receives per-client labelled gauges ([fleet.client.*{client=N}]),
    their {!Acfc_obs.Metrics.gauge_sum} roll-ups, and [fleet.server.*]
    gauges. [monitor], as [(producer, every)], streams a metrics
    snapshot at the first epoch barrier past each [every] simulated
    seconds — sampled while the worker domains are parked, so a
    monitored run's report is byte-identical to an unmonitored one —
    then a final snapshot, closing the stream; it requires [obs]
    (raises [Invalid_argument] otherwise). Raises [Invalid_argument]
    if the scenario has no [fleet] section or [shared_files] exceeds
    the workload file slots; [Failure] if the fleet stalls (a lost
    response — a bug, not a scenario error). *)

val pp : Format.formatter -> report -> unit
(** Deterministic rendering: contains nothing worker- or wall-clock-
    dependent, so it is the byte-identity witness diffed by the golden
    test and CI at [--jobs 1] vs [4]. *)

val to_string : report -> string

(** {2 Test hooks} *)

module For_tests : sig
  val merge : Batch.t array -> (float * int * int * int * int) list
  (** Drain the batches through the barrier's gather + deterministic
      sort and return the requests in served order
      [(ts, client, seq, wld, blk)]; clears the batches. The order is a
      pure function of the (ts, client, seq) triples — independent of
      how requests are distributed over the buffers — which the
      property suite checks against a [List.sort] specification. *)
end
