(** Single-producer single-consumer request batch.

    The per-domain mailbox through which client machines hand
    client→server requests to the server shard at an epoch barrier:
    parallel scalar columns (float send times, int everything else), so
    the steady-path {!push} allocates nothing. One domain pushes during
    an epoch; after the team barrier, one domain reads by index and
    {!clear}s — the barrier provides the happens-before edges, the
    buffer itself uses no atomics. *)

type t

val create : ?capacity:int -> unit -> t
(** Initial capacity defaults to 256 requests; the columns double on
    overflow (amortised O(1), allocation only until the run's
    high-water mark). *)

val length : t -> int

val clear : t -> unit
(** Forget every request (O(1)); capacity is retained. *)

val push : t -> ts:float -> client:int -> seq:int -> wld:int -> blk:int -> unit
(** Append a request: send time, sender client id, per-client sequence
    number, workload index within the client, packed block id. *)

(** {2 Reading} Indexed accessors, [0 .. length - 1]. *)

val ts : t -> int -> float

val client : t -> int -> int

val seq : t -> int -> int

val wld : t -> int -> int

val blk : t -> int -> int
