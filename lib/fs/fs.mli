(** The file system: files over the application-controlled cache over
    disks.

    [Fs] owns the {!Acfc_core.Cache.t} and implements its backend: a
    cache miss becomes a blocking read on the file's disk, a dirty
    eviction becomes a blocking write. Byte-granularity [read]/[write]
    calls are translated to 8 KB block references, one cache reference
    per block touched, each charged a small CPU cost (the block copy and
    system-call overhead).

    Optionally ([track_data]) the file system carries real bytes:
    a per-disk image plus in-memory frames for resident blocks, so tests
    can verify read-after-write and write-back correctness end to end.

    All [read]/[write]/[sync] calls must run inside a simulation fiber. *)

type t

val create :
  Acfc_sim.Engine.t ->
  config:Acfc_core.Config.t ->
  ?cpu:Acfc_sim.Resource.t ->
  ?hit_cost:float ->
  ?io_cpu_cost:float ->
  ?write_cluster:int ->
  ?readahead:bool ->
  ?layout:[ `Packed | `Scattered of Acfc_sim.Rng.t ] ->
  ?track_data:bool ->
  unit ->
  t
(** [cpu], when given, serialises per-block CPU costs through a shared
    processor. [hit_cost] is the CPU seconds charged per block
    reference (default 0.0006: an 8 KB copy plus syscall overhead on a
    ~40 MHz workstation). [io_cpu_cost] is the additional CPU seconds
    each disk read costs its issuer — interrupt handling and buffer
    management (default 0.002). [readahead] (default true) enables one-block
    sequential read-ahead, as Ultrix performs; it overlaps sequential
    misses with computation without changing block-I/O counts.
    [write_cluster] (default 1 = off, matching the paper's accounting)
    lets each write-back carry up to that many contiguous dirty blocks
    of the same file in one disk request — the McVoy/Kleiman clustering
    the paper lists as future interaction work; block-I/O counts are
    unchanged, positioning costs amortise.
    [layout] (default [`Packed]) places files contiguously back to back;
    [`Scattered rng] inserts random inter-file gaps, modelling an aged
    file system where multi-file scans pay inter-file seeks. *)

val engine : t -> Acfc_sim.Engine.t

val cache : t -> Acfc_core.Cache.t

val set_obs : t -> Acfc_obs.Sink.t option -> unit
(** Install the observability sink on the file-system layer only: each
    data-path call ([read], [write], [sync], [fsync], [create_file],
    [unlink]) emits one {!Acfc_obs.Trace.Syscall} event (pid [-1]
    stands for the kernel / update daemon), and file and block-I/O
    totals are registered as gauges. Use {!Acfc_core.Cache.set_obs} to
    instrument the cache underneath. *)

(** {2 Files} *)

val create_file :
  t ->
  ?owner:Acfc_core.Pid.t ->
  ?reserve_bytes:int ->
  name:string ->
  disk:Acfc_disk.Disk.t ->
  size_bytes:int ->
  unit ->
  File.t
(** Allocate a file of [size_bytes] laid out contiguously on [disk].
    [reserve_bytes] (default [size_bytes]) bounds growth by later
    writes. Raises [Invalid_argument] on duplicate name, negative
    sizes, or disk-space exhaustion. *)

val lookup : t -> string -> File.t option

val file_of_id : t -> File.id -> File.t option

val unlink : t -> File.t -> unit
(** Delete: cached blocks are dropped (dirty ones without write-back,
    as for any removed file's data) and the name is freed. *)

(** {2 Data path (fiber-blocking)} *)

val read : t -> pid:Acfc_core.Pid.t -> File.t -> off:int -> len:int -> unit
(** Touch every block overlapping [\[off, off+len)]. Raises
    [Invalid_argument] if the range is outside the file. *)

val write : t -> pid:Acfc_core.Pid.t -> File.t -> off:int -> len:int -> unit
(** Dirty every block overlapping the range, growing the file up to its
    reserve. A write that only partially covers a block whose data
    exists on disk first fetches it (read-modify-write). *)

val pread : t -> pid:Acfc_core.Pid.t -> File.t -> off:int -> len:int -> bytes
(** Like {!read} but returns the bytes. Requires [track_data]. *)

val pwrite : t -> pid:Acfc_core.Pid.t -> File.t -> off:int -> bytes -> unit
(** Like {!write} with explicit contents. Requires [track_data]. *)

val sync : t -> int
(** Flush all dirty blocks; returns the number of write-back requests
    issued (fewer than the blocks flushed when [write_cluster] > 1). *)

val fsync : t -> File.t -> int

val spawn_update_daemon : t -> ?interval:float -> unit -> (unit -> unit)
(** Start the periodic flush daemon (Ultrix's 30 s update). Returns a
    stop function; the daemon exits at its next tick after it is
    called. *)

(** {2 Accounting} *)

val pid_disk_reads : t -> Acfc_core.Pid.t -> int

val pid_disk_writes : t -> Acfc_core.Pid.t -> int

val pid_block_ios : t -> Acfc_core.Pid.t -> int
(** Disk reads + writes charged to the process: the paper's "number of
    block I/Os". Write-backs are charged to the file's [owner] when it
    has one, else to the process whose miss forced the eviction. *)

val total_block_ios : t -> int

val reset_accounting : t -> unit

(** {2 Test support (track_data)} *)

val disk_image : t -> File.t -> bytes
(** Current on-disk contents (size = reserve extent), excluding dirty
    cached data. *)

val set_disk_image : t -> File.t -> off:int -> bytes -> unit
(** Pre-populate file contents directly on the disk image, bypassing
    the cache (used to set up read workloads). *)
