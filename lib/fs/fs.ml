open Acfc_sim
module Block = Acfc_core.Block
module Cache = Acfc_core.Cache
module Pid = Acfc_core.Pid
module Disk = Acfc_disk.Disk
module Params = Acfc_disk.Params
module Obs = Acfc_obs

let block_bytes = Params.block_bytes

type io_stats = { mutable disk_reads : int; mutable disk_writes : int }

type t = {
  engine : Engine.t;
  mutable cache : Cache.t;  (* set once during create *)
  cpu : Resource.t option;
  hit_cost : float;
  io_cpu_cost : float;
  write_cluster : int;
  readahead : bool;
  layout : [ `Packed | `Scattered of Rng.t ];
  track_data : bool;
  files : (File.id, File.t) Hashtbl.t;
  by_name : (string, File.id) Hashtbl.t;
  mutable next_id : int;
  mutable disk_cursors : (Disk.t * int ref) list;
  in_flight : (Block.t, unit Ivar.t) Hashtbl.t;
  frames : (Block.t, Bytes.t) Hashtbl.t;  (* resident data, when track_data *)
  images : (File.id, Bytes.t) Hashtbl.t;  (* on-disk data, when track_data *)
  pid_io : (Pid.t, io_stats) Hashtbl.t;
  mutable current_pid : Pid.t;
  mutable obs : Obs.Sink.t option;
}

(* The kernel pid used for syscall events with no issuing process (the
   update daemon's sync, unlink during teardown, …). *)
let kernel_pid = -1

let engine t = t.engine

let cache t = t.cache

let set_obs t obs =
  t.obs <- obs;
  match obs with
  | None -> ()
  | Some sink ->
    let m = Obs.Sink.metrics sink in
    Obs.Metrics.gauge m "fs.files" (fun () -> float_of_int (Hashtbl.length t.files));
    Obs.Metrics.gauge m "fs.block_ios" (fun () ->
        float_of_int
          (Hashtbl.fold (fun _ s acc -> acc + s.disk_reads + s.disk_writes) t.pid_io 0))

let obs_syscall t ~pid op detail =
  match t.obs with
  | None -> ()
  | Some sink -> Obs.Sink.emit sink (Obs.Trace.Syscall { pid; op; detail = detail () })

let io_stats t pid =
  match Hashtbl.find_opt t.pid_io pid with
  | Some s -> s
  | None ->
    let s = { disk_reads = 0; disk_writes = 0 } in
    Hashtbl.replace t.pid_io pid s;
    s

let file_of_block t key =
  match Hashtbl.find_opt t.files (Block.file key) with
  | Some f -> f
  | None -> invalid_arg "Fs: block of unknown file"

(* The backend: what BUF calls when it needs the device. *)

let backend_read t key =
  let file = file_of_block t key in
  let iv = Ivar.create t.engine in
  Hashtbl.replace t.in_flight key iv;
  (io_stats t t.current_pid).disk_reads <- (io_stats t t.current_pid).disk_reads + 1;
  Fun.protect
    ~finally:(fun () ->
      Hashtbl.remove t.in_flight key;
      Ivar.fill iv ())
    (fun () ->
      Disk.io file.File.disk Disk.Read ~addr:(File.disk_addr file ~index:(Block.index key)));
  if t.track_data then begin
    let image = Hashtbl.find t.images (File.id file) in
    let frame = Bytes.make block_bytes '\000' in
    Bytes.blit image (Block.index key * block_bytes) frame 0 block_bytes;
    Hashtbl.replace t.frames key frame
  end

(* Write-backs are asynchronous, like the BSD/Ultrix [bawrite] used when
   a delayed-write buffer is reclaimed: the data is captured at issue
   and the disk write proceeds in its own fiber, so neither the evicting
   process nor the update daemon stalls on it. The write still contends
   for the disk with everyone else. *)
let backend_write t key =
  let file = file_of_block t key in
  (* Clustered write-back: also flush the dirty blocks contiguously
     following [key] in the same request (one positioning). *)
  let followers =
    if t.write_cluster > 1 && not file.File.unlinked then
      Cache.take_dirty_followers t.cache key ~max_blocks:t.write_cluster
    else []
  in
  let cluster = key :: followers in
  let payer = Option.value file.File.owner ~default:t.current_pid in
  (io_stats t payer).disk_writes <-
    (io_stats t payer).disk_writes + List.length cluster;
  if t.track_data then
    List.iter
      (fun k ->
        match Hashtbl.find_opt t.frames k with
        | Some frame ->
          let image = Hashtbl.find t.images (File.id file) in
          Bytes.blit frame 0 image (Block.index k * block_bytes) block_bytes
        | None -> ())
      cluster;
  let addr = File.disk_addr file ~index:(Block.index key) in
  let disk = file.File.disk in
  let blocks = List.length cluster in
  Engine.spawn t.engine ~name:"writeback" (fun () ->
      Disk.io ~blocks disk Disk.Write ~addr)

let backend_evicted t key = Hashtbl.remove t.frames key

let create engine ~config ?cpu ?(hit_cost = 0.0006) ?(io_cpu_cost = 0.002)
    ?(write_cluster = 1) ?(readahead = true) ?(layout = `Packed)
    ?(track_data = false) () =
  if write_cluster < 1 then invalid_arg "Fs.create: write_cluster must be positive";
  let t =
    {
      engine;
      (* Placeholder cache; replaced below once the backend closures
         over [t] exist. *)
      cache = Cache.create config;
      cpu;
      hit_cost;
      io_cpu_cost;
      write_cluster;
      readahead;
      layout;
      track_data;
      files = Hashtbl.create 32;
      by_name = Hashtbl.create 32;
      next_id = 0;
      disk_cursors = [];
      in_flight = Hashtbl.create 8;
      frames = Hashtbl.create 1024;
      images = Hashtbl.create 8;
      pid_io = Hashtbl.create 8;
      current_pid = Pid.make 0;
      obs = None;
    }
  in
  let backend =
    {
      Acfc_core.Backend.read_block = (fun key -> backend_read t key);
      write_block = (fun key -> backend_write t key);
      evicted = (fun key -> backend_evicted t key);
    }
  in
  t.cache <- Cache.create ~backend config;
  t

(* {2 Files} *)

let cursor t disk =
  match List.find_opt (fun (d, _) -> d == disk) t.disk_cursors with
  | Some (_, c) -> c
  | None ->
    let c = ref 0 in
    t.disk_cursors <- (disk, c) :: t.disk_cursors;
    c

let create_file t ?owner ?reserve_bytes ~name ~disk ~size_bytes () =
  if size_bytes < 0 then invalid_arg "Fs.create_file: negative size";
  let reserve_bytes = Option.value reserve_bytes ~default:size_bytes in
  if reserve_bytes < size_bytes then invalid_arg "Fs.create_file: reserve below size";
  if Hashtbl.mem t.by_name name then
    invalid_arg (Printf.sprintf "Fs.create_file: duplicate name %S" name);
  let reserve_blocks = Stdlib.max 1 ((reserve_bytes + block_bytes - 1) / block_bytes) in
  let c = cursor t disk in
  (* An aged file system scatters files across the disk; model it as a
     random inter-file gap, so multi-file scans pay inter-file seeks. *)
  (match t.layout with
  | `Packed -> ()
  | `Scattered rng ->
    c := !c + Rng.int rng ((Disk.params disk).Params.capacity_blocks / 100));
  if !c + reserve_blocks > (Disk.params disk).Params.capacity_blocks then
    invalid_arg "Fs.create_file: disk full";
  let file =
    {
      File.id = t.next_id;
      name;
      size_bytes;
      reserve_blocks;
      start_block = !c;
      disk;
      owner;
      unlinked = false;
      seq_cursor = -1;
      readahead_enabled = true;
    }
  in
  c := !c + reserve_blocks;
  t.next_id <- t.next_id + 1;
  Hashtbl.replace t.files file.File.id file;
  Hashtbl.replace t.by_name name file.File.id;
  obs_syscall t ~pid:(match owner with Some p -> Pid.to_int p | None -> kernel_pid)
    "creat" (fun () ->
      Printf.sprintf "file=%d name=%s size=%d" file.File.id name size_bytes);
  if t.track_data then
    Hashtbl.replace t.images file.File.id (Bytes.make (reserve_blocks * block_bytes) '\000');
  file

let lookup t name =
  Option.bind (Hashtbl.find_opt t.by_name name) (Hashtbl.find_opt t.files)

let file_of_id t id = Hashtbl.find_opt t.files id

let unlink t (file : File.t) =
  if not file.File.unlinked then begin
    obs_syscall t ~pid:kernel_pid "unlink" (fun () ->
        Printf.sprintf "file=%d name=%s" (File.id file) file.File.name);
    file.File.unlinked <- true;
    ignore (Cache.invalidate_file t.cache ~file:(File.id file));
    Hashtbl.remove t.by_name file.File.name;
    Hashtbl.remove t.files (File.id file);
    Hashtbl.remove t.images (File.id file)
  end

(* {2 Data path} *)

let cpu_charge t cost =
  if cost > 0.0 then
    match t.cpu with
    | Some r -> Resource.use r ~service:cost
    | None -> Engine.delay t.engine cost

let wait_ready t key =
  match Hashtbl.find_opt t.in_flight key with
  | Some iv -> Ivar.read iv
  | None -> ()

let check_range ~what ~off ~len =
  if off < 0 || len < 0 then invalid_arg (what ^ ": negative offset or length")

(* One-block read-ahead, as Ultrix does for sequentially-read files:
   when the access pattern is sequential, fetch the next block
   asynchronously so its transfer overlaps the caller's computation.
   The prefetched block is one the scan is about to read, so block-I/O
   counts are unchanged; only timing is. *)
let maybe_readahead t ~pid (file : File.t) ~index ~sequential =
  let next = index + 1 in
  if
    t.readahead && file.File.readahead_enabled && sequential
    && next < File.size_blocks file
    &&
    let key = File.block_key file ~index:next in
    (not (Cache.contains t.cache key)) && not (Hashtbl.mem t.in_flight key)
  then
    Engine.spawn t.engine ~name:"readahead" (fun () ->
        let key = File.block_key file ~index:next in
        (* Re-check: the block may have arrived while the fiber was
           waiting to start. *)
        if (not (Cache.contains t.cache key)) && not (Hashtbl.mem t.in_flight key)
        then begin
          t.current_pid <- pid;
          (* Read-ahead is best-effort: with every frame pinned by
             in-flight I/O there is nothing to evict, so just skip. *)
          match Cache.read ~prefetch:true t.cache ~pid key with
          | `Miss -> cpu_charge t t.io_cpu_cost
          | `Hit -> ()
          | exception Cache.Cache_busy -> ()
        end)

(* [out], when given, receives the bytes of [\[off, off+len)]; each
   block's frame is copied as soon as the block is resident — before any
   suspension point — so a later eviction cannot invalidate the frame
   first. *)
let read_internal t ~pid (file : File.t) ~off ~len ~out =
  check_range ~what:"Fs.read" ~off ~len;
  if off + len > file.File.size_bytes then invalid_arg "Fs.read: past end of file";
  if len > 0 then begin
    let first = off / block_bytes and last = (off + len - 1) / block_bytes in
    for index = first to last do
      let key = File.block_key file ~index in
      let rec access () =
        t.current_pid <- pid;
        match Cache.read t.cache ~pid key with
        | `Hit -> wait_ready t key
        | `Miss -> cpu_charge t t.io_cpu_cost
        | exception Cache.Cache_busy ->
          (* Every frame is pinned by in-flight I/O: wait for one to
             land and retry the reference. *)
          Engine.delay t.engine 0.001;
          access ()
      in
      access ();
      (match out with
      | Some buffer ->
        let frame = Hashtbl.find t.frames key in
        let block_start = index * block_bytes in
        let src = Stdlib.max off block_start in
        let stop = Stdlib.min (off + len) (block_start + block_bytes) in
        Bytes.blit frame (src - block_start) buffer (src - off) (stop - src)
      | None -> ());
      let sequential =
        index = 0 || index = file.File.seq_cursor || index = file.File.seq_cursor + 1
      in
      file.File.seq_cursor <- index;
      maybe_readahead t ~pid file ~index ~sequential;
      cpu_charge t t.hit_cost
    done
  end

let read t ~pid file ~off ~len =
  obs_syscall t ~pid:(Pid.to_int pid) "read" (fun () ->
      Printf.sprintf "file=%d off=%d len=%d" (File.id file) off len);
  read_internal t ~pid file ~off ~len ~out:None

(* [data], when given, holds the payload for [\[off, off+len)]; it is
   copied into each block's frame immediately after the block becomes
   cached and dirty — before any suspension point — so an eviction
   racing with the rest of the call cannot write back a frame that is
   missing the payload. *)
let write_internal t ~pid (file : File.t) ~off ~len ~data =
  check_range ~what:"Fs.write" ~off ~len;
  if off + len > file.File.reserve_blocks * block_bytes then
    invalid_arg "Fs.write: past file reserve";
  if len > 0 then begin
    let old_size = file.File.size_bytes in
    let first = off / block_bytes and last = (off + len - 1) / block_bytes in
    for index = first to last do
      let key = File.block_key file ~index in
      let block_start = index * block_bytes in
      let block_stop = block_start + block_bytes in
      let covers_whole = off <= block_start && off + len >= block_stop in
      (* Read-modify-write only if the block holds data we must keep. *)
      let fetch = (not covers_whole) && block_start < old_size in
      let rec access () =
        t.current_pid <- pid;
        match Cache.write t.cache ~pid key ~fetch with
        | `Hit -> wait_ready t key
        | `Miss -> ()
        | exception Cache.Cache_busy ->
          Engine.delay t.engine 0.001;
          access ()
      in
      access ();
      if t.track_data then begin
        let frame =
          match Hashtbl.find_opt t.frames key with
          | Some frame -> frame
          | None ->
            let frame = Bytes.make block_bytes '\000' in
            Hashtbl.replace t.frames key frame;
            frame
        in
        match data with
        | Some bytes ->
          let dst = Stdlib.max off block_start in
          let stop = Stdlib.min (off + len) block_stop in
          Bytes.blit bytes (dst - off) frame (dst - block_start) (stop - dst)
        | None -> ()
      end;
      cpu_charge t t.hit_cost
    done;
    if off + len > old_size then file.File.size_bytes <- off + len
  end

let write t ~pid file ~off ~len =
  obs_syscall t ~pid:(Pid.to_int pid) "write" (fun () ->
      Printf.sprintf "file=%d off=%d len=%d" (File.id file) off len);
  write_internal t ~pid file ~off ~len ~data:None

let pread t ~pid file ~off ~len =
  if not t.track_data then invalid_arg "Fs.pread: data tracking is off";
  let out = Bytes.make len '\000' in
  read_internal t ~pid file ~off ~len ~out:(Some out);
  out

let pwrite t ~pid file ~off data =
  if not t.track_data then invalid_arg "Fs.pwrite: data tracking is off";
  write_internal t ~pid file ~off ~len:(Bytes.length data) ~data:(Some data)

let sync t =
  obs_syscall t ~pid:kernel_pid "sync" (fun () -> "");
  Cache.sync t.cache ()

let fsync t file =
  obs_syscall t ~pid:kernel_pid "fsync" (fun () ->
      Printf.sprintf "file=%d" (File.id file));
  Cache.sync t.cache ~file:(File.id file) ()

let spawn_update_daemon t ?(interval = 30.0) () =
  let stop = ref false in
  Engine.spawn t.engine ~name:"update-daemon" (fun () ->
      let rec loop () =
        Engine.delay t.engine interval;
        if not !stop then begin
          ignore (sync t);
          loop ()
        end
      in
      loop ());
  fun () -> stop := true

(* {2 Accounting} *)

let pid_disk_reads t pid = (io_stats t pid).disk_reads

let pid_disk_writes t pid = (io_stats t pid).disk_writes

let pid_block_ios t pid =
  let s = io_stats t pid in
  s.disk_reads + s.disk_writes

let total_block_ios t =
  Hashtbl.fold (fun _ s acc -> acc + s.disk_reads + s.disk_writes) t.pid_io 0

let reset_accounting t = Hashtbl.reset t.pid_io

(* {2 Test support} *)

let disk_image t file =
  if not t.track_data then invalid_arg "Fs.disk_image: data tracking is off";
  Bytes.copy (Hashtbl.find t.images (File.id file))

let set_disk_image t file ~off data =
  if not t.track_data then invalid_arg "Fs.set_disk_image: data tracking is off";
  let image = Hashtbl.find t.images (File.id file) in
  Bytes.blit data 0 image off (Bytes.length data)
