module Obs = Acfc_obs

(* Specialised event queue: a binary min-heap on (time, seq) laid out as
   parallel scalar columns — unboxed float times, int seqs, and int pool
   slots — so a push/pop allocates nothing and sifting moves only
   scalars. Job payloads (closures, continuations) sit still in a
   free-listed pool: a heap entry points at its pool slot, so no pointer
   ever moves through the sift loop's write barrier. [seq] breaks time
   ties in schedule order, which keeps same-instant events FIFO and runs
   deterministic.

   Exposed in the interface for the property tests, which replay random
   (time, seq) sequences against the generic closure-based {!Heap}. *)
module Equeue = struct
  type job =
    | Nop
    | Thunk of (unit -> unit)
    | Cont of (unit, unit) Effect.Deep.continuation

  type t = {
    mutable ts : float array;
    mutable sq : int array;
    mutable js : int array; (* heap index -> pool slot *)
    mutable jobs : job array; (* pool slot -> payload; Nop when free *)
    mutable free : int array; (* stack of free pool slots *)
    mutable nfree : int;
    mutable size : int;
    st : float array; (* staged push time; see [stage] / [push_staged] *)
  }

  (* Pool capacity always equals heap capacity: size + nfree = cap. *)
  let create () =
    {
      ts = Array.make 64 0.0;
      sq = Array.make 64 0;
      js = Array.make 64 0;
      jobs = Array.make 64 Nop;
      free = Array.init 64 (fun i -> 63 - i);
      nfree = 64;
      size = 0;
      st = Array.make 1 0.0;
    }

  let length t = t.size

  let is_empty t = t.size = 0

  let grow t =
    let old = Array.length t.ts in
    let cap = 2 * old in
    let ts = Array.make cap 0.0
    and sq = Array.make cap 0
    and js = Array.make cap 0
    and jobs = Array.make cap Nop
    and free = Array.make cap 0 in
    Array.blit t.ts 0 ts 0 t.size;
    Array.blit t.sq 0 sq 0 t.size;
    Array.blit t.js 0 js 0 t.size;
    Array.blit t.jobs 0 jobs 0 old;
    Array.blit t.free 0 free 0 t.nfree;
    for i = 0 to old - 1 do
      free.(t.nfree + i) <- old + i
    done;
    t.nfree <- t.nfree + old;
    t.ts <- ts;
    t.sq <- sq;
    t.js <- js;
    t.jobs <- jobs;
    t.free <- free

  (* (time, seq) lexicographic. Forced inline: as an out-of-line call
     the [tm] float argument would be boxed once per sift level. *)
  let[@inline always] leq t i tm sq =
    t.ts.(i) < tm || (t.ts.(i) = tm && t.sq.(i) <= sq)

  (* A float passed to the non-inlined [push] is boxed at the call; the
     hot paths instead write it into the unboxed [st] slot ([stage] is
     small enough to inline, so the store stays unboxed) and call
     [push_staged]. *)
  let[@inline] stage t time = t.st.(0) <- time

  let push_staged t ~seq job =
    let time = t.st.(0) in
    if t.size = Array.length t.ts then grow t;
    let slot = t.free.(t.nfree - 1) in
    t.nfree <- t.nfree - 1;
    t.jobs.(slot) <- job;
    let i = ref t.size in
    t.size <- t.size + 1;
    (* Sift up with the hole trick: slide parents down, store once. *)
    let stop = ref false in
    while (not !stop) && !i > 0 do
      let parent = (!i - 1) / 2 in
      if leq t parent time seq then stop := true
      else begin
        t.ts.(!i) <- t.ts.(parent);
        t.sq.(!i) <- t.sq.(parent);
        t.js.(!i) <- t.js.(parent);
        i := parent
      end
    done;
    t.ts.(!i) <- time;
    t.sq.(!i) <- seq;
    t.js.(!i) <- slot

  let push t ~time ~seq job =
    stage t time;
    push_staged t ~seq job

  let top_time t =
    if t.size = 0 then invalid_arg "Equeue.top_time: empty queue";
    t.ts.(0)

  let pop t =
    if t.size = 0 then invalid_arg "Equeue.pop: empty queue";
    let slot = t.js.(0) in
    let job = t.jobs.(slot) in
    t.jobs.(slot) <- Nop;
    t.free.(t.nfree) <- slot;
    t.nfree <- t.nfree + 1;
    let n = t.size - 1 in
    t.size <- n;
    if n > 0 then begin
      let tm = t.ts.(n) and sq = t.sq.(n) and js = t.js.(n) in
      let i = ref 0 in
      let stop = ref false in
      while not !stop do
        let l = (2 * !i) + 1 in
        if l >= n then stop := true
        else begin
          let r = l + 1 in
          let c =
            if r < n && not (leq t l t.ts.(r) t.sq.(r)) then r else l
          in
          if leq t c tm sq && not (t.ts.(c) = tm && t.sq.(c) = sq) then begin
            t.ts.(!i) <- t.ts.(c);
            t.sq.(!i) <- t.sq.(c);
            t.js.(!i) <- t.js.(c);
            i := c
          end
          else stop := true
        end
      done;
      t.ts.(!i) <- tm;
      t.sq.(!i) <- sq;
      t.js.(!i) <- js
    end;
    job
end

type t = {
  (* Virtual time, in a 1-element float array so reads and writes stay
     unboxed (a mutable float field in this mixed record would box on
     every clock advance). *)
  clock : float array;
  mutable seq : int;
  events : Equeue.t;
  (* Ready ring: FIFO of jobs due exactly now. A completion scheduled at
     the current instant, when nothing in the heap could run before it,
     bypasses the heap entirely — so a disk batch or an ivar broadcast
     costs one ring slot per waiter instead of one heap op each. *)
  mutable rbuf : Equeue.job array;
  mutable rhead : int;
  mutable rtail : int; (* rtail - rhead = occupancy; indices mod capacity *)
  mutable live : int; (* fibers spawned and not finished *)
  mutable waiting : int; (* fibers currently suspended (sleepers included) *)
  blocked : (int, string) Hashtbl.t; (* fiber id -> name, while suspended *)
  mutable next_fiber_id : int;
  mutable processed : int;
  mutable obs : Obs.Sink.t option;
  sleep_dt : float array; (* argument slot for the Sleep effect *)
  mutable sleep_some : ((unit, unit) Effect.Deep.continuation -> unit) option;
}

exception Deadlock of string

type _ Effect.t += Suspend : ((unit -> unit) -> unit) -> unit Effect.t

(* Fast-path sleep: [delay] passes its duration through [sleep_dt]
   (an unboxed float slot) and performs the argument-less [Sleep], so
   suspending for a duration allocates no effect payload, no resume
   closure and no heap record — just the captured continuation. *)
type _ Effect.t += Sleep : unit Effect.t

let ring_length t = t.rtail - t.rhead

let ring_push t job =
  let cap = Array.length t.rbuf in
  if ring_length t = cap then begin
    let nbuf = Array.make (2 * cap) Equeue.Nop in
    for i = 0 to cap - 1 do
      nbuf.(i) <- t.rbuf.((t.rhead + i) land (cap - 1))
    done;
    t.rbuf <- nbuf;
    t.rhead <- 0;
    t.rtail <- cap
  end;
  t.rbuf.(t.rtail land (Array.length t.rbuf - 1)) <- job;
  t.rtail <- t.rtail + 1

let ring_pop t =
  let i = t.rhead land (Array.length t.rbuf - 1) in
  let job = t.rbuf.(i) in
  t.rbuf.(i) <- Equeue.Nop;
  t.rhead <- t.rhead + 1;
  job

(* Queue a sleeping fiber's continuation at its wake time, with the
   same ring-vs-heap routing as [schedule_job] below. [dt > 0] implies
   the wake time is never in the past, so no check is needed. *)
let sleep_push t k =
  let at = t.clock.(0) +. t.sleep_dt.(0) in
  (* [Equeue] fields are read directly here and below: [top_time] is an
     arm's-length call whose float return would box on the hot path. *)
  if at = t.clock.(0) && (Equeue.is_empty t.events || t.events.Equeue.ts.(0) > at)
  then ring_push t (Equeue.Cont k)
  else begin
    t.seq <- t.seq + 1;
    Equeue.stage t.events at;
    Equeue.push_staged t.events ~seq:t.seq (Equeue.Cont k)
  end

let create () =
  let t =
    {
      clock = Array.make 1 0.0;
      seq = 0;
      events = Equeue.create ();
      rbuf = Array.make 64 Equeue.Nop;
      rhead = 0;
      rtail = 0;
      live = 0;
      waiting = 0;
      blocked = Hashtbl.create 16;
      next_fiber_id = 0;
      processed = 0;
      obs = None;
      sleep_dt = Array.make 1 0.0;
      sleep_some = None;
    }
  in
  (* One handler closure per engine, shared by every fiber: performing
     Sleep finds it pre-allocated. A sleeping fiber counts as waiting
     but is never registered in [blocked] — its wake event is in the
     queue, so it cannot deadlock. *)
  t.sleep_some <-
    Some
      (fun (k : (unit, unit) Effect.Deep.continuation) ->
        t.waiting <- t.waiting + 1;
        sleep_push t k);
  t

let now t = t.clock.(0)

let set_obs t obs =
  t.obs <- obs;
  match obs with
  | None -> ()
  | Some sink ->
    (* The engine owns virtual time, so it owns the sink's clock. *)
    Obs.Sink.set_clock sink (fun () -> t.clock.(0));
    let m = Obs.Sink.metrics sink in
    Obs.Metrics.gauge m "sim.clock" (fun () -> t.clock.(0));
    Obs.Metrics.gauge m "sim.live_fibers" (fun () -> float_of_int t.live);
    Obs.Metrics.gauge m "sim.waiting_fibers" (fun () -> float_of_int t.waiting);
    Obs.Metrics.gauge m "sim.events_processed" (fun () -> float_of_int t.processed);
    Obs.Metrics.gauge m "sim.pending_events" (fun () ->
        float_of_int (Equeue.length t.events + ring_length t))

(* An event due exactly now, with nothing in the heap able to run
   before it, goes to the ready ring: same firing order as a heap push
   (any same-time heap event already present would have top_time = at
   and forces the heap path; later pushes get larger seqs and fire
   after). *)
let schedule_job t ~at job =
  if at < t.clock.(0) then
    invalid_arg
      (Printf.sprintf "Engine.schedule: time %g is in the past (now %g)" at
         t.clock.(0));
  if
    at = t.clock.(0)
    && (Equeue.is_empty t.events || t.events.Equeue.ts.(0) > at)
  then ring_push t job
  else begin
    t.seq <- t.seq + 1;
    Equeue.stage t.events at;
    Equeue.push_staged t.events ~seq:t.seq job
  end

let schedule t ~at thunk = schedule_job t ~at (Equeue.Thunk thunk)

(* Fiber-local knowledge of "who am I" is threaded through the effect
   handler: each fiber runs under its own handler closure that knows its
   id and name, so suspend bookkeeping can name the stuck fiber. *)
let start_fiber t ~name f =
  let id = t.next_fiber_id in
  t.next_fiber_id <- id + 1;
  t.live <- t.live + 1;
  (match t.obs with
  | None -> ()
  | Some sink -> Obs.Sink.emit sink (Obs.Trace.Fiber { name; op = "spawn" }));
  let open Effect.Deep in
  let handler =
    {
      retc =
        (fun () ->
          t.live <- t.live - 1;
          match t.obs with
          | None -> ()
          | Some sink -> Obs.Sink.emit sink (Obs.Trace.Fiber { name; op = "finish" }));
      exnc = (fun e -> raise e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Sleep -> (t.sleep_some : ((a, unit) continuation -> unit) option)
          | Suspend register ->
            Some
              (fun (k : (a, unit) continuation) ->
                t.waiting <- t.waiting + 1;
                Hashtbl.replace t.blocked id name;
                let resumed = ref false in
                let resume () =
                  if !resumed then invalid_arg "Engine: fiber resumed twice";
                  resumed := true;
                  t.waiting <- t.waiting - 1;
                  Hashtbl.remove t.blocked id;
                  continue k ()
                in
                register resume)
          | _ -> None);
    }
  in
  match_with f () handler

let spawn t ?(name = "fiber") f =
  schedule t ~at:t.clock.(0) (fun () -> start_fiber t ~name f)

let suspend _t register = Effect.perform (Suspend register)

let delay t dt =
  if dt < 0.0 then invalid_arg "Engine.delay: negative delay";
  if dt = 0.0 then ()
  else begin
    t.sleep_dt.(0) <- dt;
    Effect.perform Sleep
  end

let run_job t job =
  match job with
  | Equeue.Thunk f -> f ()
  | Equeue.Cont k ->
    t.waiting <- t.waiting - 1;
    Effect.Deep.continue k ()
  | Equeue.Nop -> ()

let step t =
  if t.rtail <> t.rhead then begin
    t.processed <- t.processed + 1;
    run_job t (ring_pop t);
    true
  end
  else if Equeue.is_empty t.events then false
  else begin
    t.clock.(0) <- t.events.Equeue.ts.(0);
    let job = Equeue.pop t.events in
    t.processed <- t.processed + 1;
    run_job t job;
    true
  end

let run t =
  while step t do
    ()
  done;
  if t.waiting > 0 then begin
    let names = Hashtbl.fold (fun _ name acc -> name :: acc) t.blocked [] in
    raise (Deadlock (String.concat ", " (List.sort compare names)))
  end

let run_until t horizon =
  let continue_ = ref true in
  while !continue_ do
    if t.rtail <> t.rhead then
      (* Ring entries are due exactly now. *)
      if t.clock.(0) <= horizon then ignore (step t) else continue_ := false
    else if
      (not (Equeue.is_empty t.events)) && t.events.Equeue.ts.(0) <= horizon
    then ignore (step t)
    else continue_ := false
  done;
  if t.clock.(0) < horizon then t.clock.(0) <- horizon

let fiber_count t = t.live

let events_processed t = t.processed

let next_event_time t =
  if t.rtail <> t.rhead then Some t.clock.(0)
  else if Equeue.is_empty t.events then None
  else Some t.events.Equeue.ts.(0)
