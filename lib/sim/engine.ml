module Obs = Acfc_obs

type event = { time : float; seq : int; thunk : unit -> unit }

type t = {
  mutable clock : float;
  mutable seq : int;
  events : event Heap.t;
  mutable live : int;          (* fibers spawned and not finished *)
  mutable waiting : int;       (* fibers currently suspended *)
  blocked : (int, string) Hashtbl.t;  (* fiber id -> name, while suspended *)
  mutable next_fiber_id : int;
  mutable processed : int;
  mutable obs : Obs.Sink.t option;
}

exception Deadlock of string

type _ Effect.t += Suspend : ((unit -> unit) -> unit) -> unit Effect.t

let event_leq a b = a.time < b.time || (a.time = b.time && a.seq <= b.seq)

let create () =
  {
    clock = 0.0;
    seq = 0;
    events = Heap.create ~leq:event_leq ();
    live = 0;
    waiting = 0;
    blocked = Hashtbl.create 16;
    next_fiber_id = 0;
    processed = 0;
    obs = None;
  }

let now t = t.clock

let set_obs t obs =
  t.obs <- obs;
  match obs with
  | None -> ()
  | Some sink ->
    (* The engine owns virtual time, so it owns the sink's clock. *)
    Obs.Sink.set_clock sink (fun () -> t.clock);
    let m = Obs.Sink.metrics sink in
    Obs.Metrics.gauge m "sim.clock" (fun () -> t.clock);
    Obs.Metrics.gauge m "sim.live_fibers" (fun () -> float_of_int t.live);
    Obs.Metrics.gauge m "sim.waiting_fibers" (fun () -> float_of_int t.waiting);
    Obs.Metrics.gauge m "sim.events_processed" (fun () -> float_of_int t.processed);
    Obs.Metrics.gauge m "sim.pending_events" (fun () ->
        float_of_int (Heap.length t.events))

let schedule t ~at thunk =
  if at < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule: time %g is in the past (now %g)" at t.clock);
  t.seq <- t.seq + 1;
  Heap.push t.events { time = at; seq = t.seq; thunk }

(* Fiber-local knowledge of "who am I" is threaded through the effect
   handler: each fiber runs under its own handler closure that knows its
   id and name, so suspend bookkeeping can name the stuck fiber. *)
let start_fiber t ~name f =
  let id = t.next_fiber_id in
  t.next_fiber_id <- id + 1;
  t.live <- t.live + 1;
  (match t.obs with
  | None -> ()
  | Some sink -> Obs.Sink.emit sink (Obs.Trace.Fiber { name; op = "spawn" }));
  let open Effect.Deep in
  let handler =
    {
      retc =
        (fun () ->
          t.live <- t.live - 1;
          match t.obs with
          | None -> ()
          | Some sink -> Obs.Sink.emit sink (Obs.Trace.Fiber { name; op = "finish" }));
      exnc = (fun e -> raise e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Suspend register ->
            Some
              (fun (k : (a, unit) continuation) ->
                t.waiting <- t.waiting + 1;
                Hashtbl.replace t.blocked id name;
                let resumed = ref false in
                let resume () =
                  if !resumed then invalid_arg "Engine: fiber resumed twice";
                  resumed := true;
                  t.waiting <- t.waiting - 1;
                  Hashtbl.remove t.blocked id;
                  continue k ()
                in
                register resume)
          | _ -> None);
    }
  in
  match_with f () handler

let spawn t ?(name = "fiber") f =
  schedule t ~at:t.clock (fun () -> start_fiber t ~name f)

let suspend _t register = Effect.perform (Suspend register)

let delay t dt =
  if dt < 0.0 then invalid_arg "Engine.delay: negative delay";
  if dt = 0.0 then ()
  else suspend t (fun resume -> schedule t ~at:(t.clock +. dt) resume)

let step t =
  match Heap.pop t.events with
  | None -> false
  | Some ev ->
    t.clock <- ev.time;
    t.processed <- t.processed + 1;
    ev.thunk ();
    true

let run t =
  while step t do
    ()
  done;
  if t.waiting > 0 then begin
    let names = Hashtbl.fold (fun _ name acc -> name :: acc) t.blocked [] in
    raise (Deadlock (String.concat ", " (List.sort compare names)))
  end

let run_until t horizon =
  let continue_ = ref true in
  while !continue_ do
    match Heap.peek t.events with
    | Some ev when ev.time <= horizon -> ignore (step t)
    | Some _ | None -> continue_ := false
  done;
  if t.clock < horizon then t.clock <- horizon

let fiber_count t = t.live

let events_processed t = t.processed
