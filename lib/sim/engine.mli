(** Discrete-event simulation engine with lightweight processes.

    Simulated processes ("fibers") are plain OCaml functions that may call
    the blocking operations of this module ({!delay}, {!suspend}) and of
    the synchronisation primitives built on top of them ({!Ivar},
    {!Resource}). Blocking is implemented with OCaml 5 effect handlers:
    the fiber's continuation is captured and resumed by a later event, so
    simulated code reads like straight-line systems code.

    Time is virtual, a [float] in seconds. Events scheduled for the same
    instant fire in FIFO order, which makes runs deterministic. *)

(** The engine's specialised event queue: a binary min-heap on
    (time, seq) as parallel arrays — unboxed float times, int seqs and a
    payload column — so pushes and pops allocate nothing. Exposed for
    the property tests, which replay random sequences against the
    generic {!Heap}. *)
module Equeue : sig
  type job =
    | Nop
    | Thunk of (unit -> unit)
    | Cont of (unit, unit) Effect.Deep.continuation

  type t

  val create : unit -> t

  val length : t -> int

  val is_empty : t -> bool

  val push : t -> time:float -> seq:int -> job -> unit
  (** Ties on [time] pop in ascending [seq] order; the engine feeds a
      globally increasing seq, making same-instant events FIFO. *)

  val top_time : t -> float
  (** Raises [Invalid_argument] when empty. *)

  val pop : t -> job
  (** Pop the least (time, seq) job. Raises [Invalid_argument] when
      empty. *)
end

type t
(** A simulation instance: virtual clock plus pending-event queue.

    Internally events live in an {!Equeue} plus a ready ring: a callback
    scheduled for the current instant when nothing pending could run
    before it skips the heap entirely, so batched completions (an ivar
    broadcast, a disk queue handoff) cost one ring slot per waiter
    instead of one heap operation each. *)

exception Deadlock of string
(** Raised by {!run} when fibers remain blocked but no event can ever
    wake them. The payload names the stuck fibers. *)

val create : unit -> t

val now : t -> float
(** Current virtual time in seconds. *)

val set_obs : t -> Acfc_obs.Sink.t option -> unit
(** Install the observability sink. The engine points the sink's clock
    at its own virtual clock (every event emitted anywhere in the
    machine is then stamped with simulated time), registers gauges for
    the scheduler (clock, live/waiting fibers, processed and pending
    events), and emits a {!Acfc_obs.Trace.Fiber} event per fiber spawn
    and finish. *)

val schedule : t -> at:float -> (unit -> unit) -> unit
(** [schedule t ~at f] runs callback [f] at virtual time [at]. [at] may
    not be in the past. Callbacks must not block; use {!spawn} for code
    that does. *)

val spawn : t -> ?name:string -> (unit -> unit) -> unit
(** [spawn t f] starts a new fiber running [f] at the current virtual
    time. [name] is used in {!Deadlock} diagnostics. *)

val delay : t -> float -> unit
(** [delay t dt] blocks the calling fiber for [dt] seconds of virtual
    time. [dt] must be non-negative. Must be called from a fiber. *)

val suspend : t -> ((unit -> unit) -> unit) -> unit
(** [suspend t register] blocks the calling fiber and hands a one-shot
    [resume] thunk to [register]. Invoking [resume] (typically from a
    scheduled event or another fiber) continues the fiber at the
    then-current virtual time. This is the primitive from which ivars
    and resources are built. *)

val run : t -> unit
(** Run until no events remain. Raises {!Deadlock} if blocked fibers
    remain when the event queue drains. Exceptions escaping a fiber
    propagate out of [run]. *)

val run_until : t -> float -> unit
(** [run_until t horizon] processes events up to and including time
    [horizon], then stops (without deadlock detection). *)

val fiber_count : t -> int
(** Number of fibers spawned and not yet finished. *)

val events_processed : t -> int
(** Total events executed so far (a cheap progress/cost metric). *)

val next_event_time : t -> float option
(** Time of the earliest pending event (ready-ring entries are due at
    the current instant), or [None] when nothing is pending. Lets a
    coordinator running several engines under {!run_until} skip epochs
    in which no engine has work. Boxes its result — a barrier-rate
    operation, not for the per-event path. *)
