(** Epoch clock for conservative parallel simulation.

    Virtual time is cut into fixed windows ("epochs") of one lookahead
    each: epoch [k] covers the interval [(boundary k, boundary (k+1)]],
    matching {!Engine.run_until}'s inclusive horizon. Boundaries are
    pure functions of the epoch index (multiplication, not
    accumulation), so every domain computes bit-identical boundaries
    and the fleet's epoch schedule is independent of who asks. *)

type t

val make : start:float -> length:float -> t
(** [length] must be positive and finite. *)

val length : t -> float

val boundary : t -> int -> float
(** [boundary t k] is the lower edge of epoch [k]:
    [start +. float k *. length]. Raises on negative [k]. *)

val horizon : t -> int -> float
(** [horizon t k = boundary t (k + 1)] — the inclusive upper edge of
    epoch [k], i.e. the [Engine.run_until] horizon for that epoch. *)

val index_of : t -> float -> int
(** [index_of t time] is the epoch in which an event at [time] fires:
    the smallest [k] with [time <= horizon t k] (clamped to [0] for
    times at or before [start]). Used to skip empty epochs: jumping to
    [index_of t next_event_time] never skips past work. *)
