(** Deterministic pseudo-random number generator (SplitMix64).

    Every stochastic component of the simulator draws from an explicit
    [Rng.t] so that simulation runs are reproducible bit-for-bit from a
    seed, independently of the global [Random] state.

    {b Thread safety.} The module has no global state: every generator's
    state lives in its own [t], so distinct values may be used from
    distinct domains freely (this is what lets {!Acfc_par.Pool} run
    whole simulations in parallel and still reproduce sequential
    results bit-for-bit). A single [t] is {e not} synchronised —
    concurrent draws from two domains race and break reproducibility.
    Each parallel task must {!create} its own generator from an
    explicit seed, or take one derived for it via {!split}/{!copy}
    before the tasks are spawned; never share a live generator across
    concurrently running tasks. *)

type t

val create : int -> t
(** [create seed] makes a generator. Equal seeds give equal streams. *)

val copy : t -> t
(** Independent copy continuing from the current state. *)

val split : t -> t
(** [split t] derives a statistically independent generator and advances
    [t]. Used to give each simulated process its own stream. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)]. Raises [Invalid_argument] if
    [n <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. Raises
    [Invalid_argument] if [hi < lo]. *)

val float : t -> float -> float
(** [float t x] is uniform in [\[0, x)]. *)

val bool : t -> bool

val exponential : t -> mean:float -> float
(** Exponentially distributed with the given mean. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniformly random element. Raises [Invalid_argument] on empty array. *)
