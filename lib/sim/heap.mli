(** Array-backed binary min-heap.

    Used as the event queue of the simulation engine; generic so that it
    can be property-tested on its own. *)

type 'a t

val create : leq:('a -> 'a -> bool) -> unit -> 'a t
(** [create ~leq ()] makes an empty heap ordered by [leq] (total
    preorder; [leq a b] means [a] is at least as urgent as [b]). *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
(** Minimum element, if any, without removing it. *)

val top_exn : 'a t -> 'a
(** Like {!peek} but allocation-free. Raises [Invalid_argument] on an
    empty heap. *)

val pop : 'a t -> 'a option
(** Remove and return the minimum element. *)

val pop_exn : 'a t -> 'a
(** Like {!pop}. Raises [Invalid_argument] on an empty heap. *)

val clear : 'a t -> unit

val to_list : 'a t -> 'a list
(** All elements in unspecified order. *)
