(* Epoch clock for conservative parallel simulation: virtual time cut
   into fixed windows of one lookahead each. Boundaries are computed by
   multiplication, never by accumulating [+. length], so every caller
   (and every domain) derives bit-identical boundaries for the same
   epoch index. *)

type t = { start : float; length : float }

let make ~start ~length =
  if not (Float.is_finite length) || length <= 0.0 then
    invalid_arg "Epoch.make: length must be positive and finite";
  if not (Float.is_finite start) then invalid_arg "Epoch.make: start must be finite";
  { start; length }

let length t = t.length

(* Lower edge of window [k]: window k is the half-open-below interval
   (boundary k, boundary (k+1)]. *)
let boundary t k =
  if k < 0 then invalid_arg "Epoch.boundary: negative index";
  t.start +. (float_of_int k *. t.length)

let horizon t k = boundary t (k + 1)

(* Smallest k with [time <= horizon t k]; clamps below to 0. The float
   division gives a first guess, then at most one step in each
   direction repairs rounding — both fixups are needed because
   [ceil ((b -. start) /. length)] can land on either side of the exact
   boundary for large indices. *)
let index_of t time =
  if not (Float.is_finite time) then invalid_arg "Epoch.index_of: time not finite";
  if time <= t.start then 0
  else begin
    let guess =
      int_of_float (Float.ceil ((time -. t.start) /. t.length)) - 1
    in
    let k = ref (if guess < 0 then 0 else guess) in
    if horizon t !k < time then incr k;
    if !k > 0 && horizon t (!k - 1) >= time then decr k;
    !k
  end
