(* A crew of pinned worker domains driven through a reusable
   epoch-counter barrier. Unlike {!Pool}, which feeds interchangeable
   workers from one queue, a team gives every worker a stable identity:
   [run t f] executes [f 0 .. f (workers-1)] with worker [i] always on
   the same domain, so domain-local state (an engine, its effect
   handlers, its outbox) stays pinned across rounds.

   The barrier is a generation counter under one mutex: the leader
   bumps [round] and broadcasts; each worker runs its slice, decrements
   [running], and the last one wakes the leader. Mutex acquire/release
   provides the happens-before edges in both directions, so anything
   the leader wrote before [run] is visible to workers and anything
   workers wrote is visible to the leader when [run] returns. *)

type t = {
  workers : int;
  mutable domains : unit Domain.t list;
  lock : Mutex.t;
  start : Condition.t; (* a new round was published, or [stop] was set *)
  finished : Condition.t; (* [running] reached 0 *)
  mutable job : (int -> unit) option;
  mutable round : int;
  mutable running : int;
  (* Worker failures of the current round, recorded under [lock]. *)
  mutable failures : (int * exn * Printexc.raw_backtrace) list;
  mutable stop : bool;
}

let workers t = t.workers

let worker t i =
  let seen = ref 0 in
  let rec loop () =
    Mutex.lock t.lock;
    while t.round = !seen && not t.stop do
      Condition.wait t.start t.lock
    done;
    if t.stop then Mutex.unlock t.lock
    else begin
      seen := t.round;
      let f = Option.get t.job in
      Mutex.unlock t.lock;
      let failure =
        match Pool.as_task (fun () -> f i) with
        | () -> None
        | exception e -> Some (e, Printexc.get_raw_backtrace ())
      in
      Mutex.lock t.lock;
      (match failure with
      | None -> ()
      | Some (e, bt) -> t.failures <- (i, e, bt) :: t.failures);
      t.running <- t.running - 1;
      if t.running = 0 then Condition.broadcast t.finished;
      Mutex.unlock t.lock;
      loop ()
    end
  in
  loop ()

let create ~workers:n =
  Pool.reject_nesting ();
  if n < 1 then invalid_arg "Team.create: workers must be >= 1";
  let t =
    {
      workers = n;
      domains = [];
      lock = Mutex.create ();
      start = Condition.create ();
      finished = Condition.create ();
      job = None;
      round = 0;
      running = 0;
      failures = [];
      stop = false;
    }
  in
  (* workers = 1 spawns no domain: [run] executes on the caller, the
     exact sequential code path. *)
  if n > 1 then
    t.domains <- List.init n (fun i -> Domain.spawn (fun () -> worker t i));
  t

let run t f =
  Pool.reject_nesting ();
  if t.domains = [] then begin
    if t.stop then invalid_arg "Team.run: team is shut down";
    Pool.as_task (fun () -> f 0)
  end
  else begin
    Mutex.lock t.lock;
    if t.stop then begin
      Mutex.unlock t.lock;
      invalid_arg "Team.run: team is shut down"
    end;
    t.job <- Some f;
    t.failures <- [];
    t.running <- t.workers;
    t.round <- t.round + 1;
    Condition.broadcast t.start;
    while t.running > 0 do
      Condition.wait t.finished t.lock
    done;
    t.job <- None;
    let failures = t.failures in
    t.failures <- [];
    Mutex.unlock t.lock;
    (* Every worker has finished the round; report the failure of the
       lowest worker id, deterministically. *)
    match List.sort (fun (a, _, _) (b, _, _) -> compare a b) failures with
    | [] -> ()
    | (_, e, bt) :: _ -> Printexc.raise_with_backtrace e bt
  end

let shutdown t =
  if not t.stop then begin
    Mutex.lock t.lock;
    t.stop <- true;
    Condition.broadcast t.start;
    Mutex.unlock t.lock;
    List.iter Domain.join t.domains;
    t.domains <- []
  end

let with_team ~workers f =
  let t = create ~workers in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
