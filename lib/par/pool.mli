(** Fixed-size domain pool for parallel experiment execution.

    The simulator is a single-domain machine: every run builds its own
    engine, cache, disks and bus and shares nothing mutable, so
    independent runs (distinct seeds, cache sizes, application combos)
    can execute on separate OCaml 5 domains. This module provides the
    one concurrency primitive the repository uses: a fixed-size pool of
    worker domains fed by a work queue, with order-preserving [map] /
    [run_list] wrappers and a two-phase [async]/[await] interface for
    scheduling a whole experiment grid before collecting any result.

    {2 Determinism contract}

    Tasks must be self-contained: each task creates its own {!Acfc_sim.Rng.t}
    from an explicit seed, its own engine, and (if it traces) its own
    {!Acfc_obs.Sink.t}. Sinks and generators are single-domain values and
    must never be shared between concurrently running tasks. Under that
    discipline a pool only changes {e when} tasks run, never what they
    compute, so results are byte-identical for any [jobs] value; results
    are always delivered in scheduling order.

    {2 Sequential fallback}

    With [jobs = 1] no domain is spawned: [async] runs its task
    immediately on the calling domain and [map f] is exactly [List.map f]
    over the same closures in the same order — the pre-pool sequential
    code path.

    {2 Nesting}

    Pools do not compose: calling any function of this module from
    inside a pool task raises {!Nested} (under every [jobs] value,
    including 1, so misuse cannot hide in sequential runs).
    Parallelise at the outermost grid level instead. *)

type t
(** A pool of worker domains (or the sequential stand-in when
    [jobs = 1]). Valid only inside the [with_pool] callback that
    created it. *)

exception Nested
(** Raised when a pool operation is invoked from inside a pool task. *)

val auto_jobs : unit -> int
(** Job count used when the caller asks for automatic sizing
    ([--jobs 0] / [ACFC_JOBS=0]): [Domain.recommended_domain_count],
    capped at 8 so CI runners are not oversubscribed. At least 1. *)

val default_jobs : unit -> int
(** Job count used when none is given explicitly: the [ACFC_JOBS]
    environment variable if it parses as a positive integer, {!auto_jobs}
    if it is ["0"] or ["auto"], and 1 (sequential) otherwise. *)

val with_pool : ?jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] runs [f] with a fresh pool of [jobs] workers and
    tears the pool down (joining every domain) when [f] returns or
    raises. [jobs] defaults to {!default_jobs}; [0] (or a negative
    value) means {!auto_jobs}. Requests above 32 are clamped — the
    OCaml runtime degrades well before that many domains help. *)

val jobs : t -> int
(** Worker count of the pool (1 for the sequential stand-in). *)

type 'a future
(** The pending result of a task submitted with {!async}. *)

val async : t -> (unit -> 'a) -> 'a future
(** Submit a task. With [jobs = 1] the task runs right here, right now,
    and any exception it raises propagates immediately — exactly the
    sequential code path. Otherwise the task is queued for the worker
    domains and exceptions are stored in the future. *)

val await : t -> 'a future -> 'a
(** Block until the task finishes; return its value or re-raise its
    exception (with its original backtrace). *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f xs] applies [f] to every element on a temporary pool,
    preserving input order. All tasks are run to completion (the pool
    drains) even when some fail; the first failure in {e input} order is
    then re-raised. [map ~jobs:1 f xs] is [List.map f xs]. *)

val run_list : ?jobs:int -> (unit -> 'a) list -> 'a list
(** [run_list ~jobs tasks] runs independent thunks under {!map}'s
    ordering and failure rules. *)

(** {2 Hooks for other schedulers}

    {!Team} (the fleet's pinned-worker barrier crew) reuses the pool's
    nesting discipline rather than inventing a second flag. *)

val reject_nesting : unit -> unit
(** Raise {!Nested} if the calling domain (or dynamic extent, under
    [jobs = 1]) is executing a task of this module or of {!Team}. *)

val as_task : (unit -> 'a) -> 'a
(** Run a thunk with the nesting flag set for its dynamic extent, so
    pool re-entry from inside it raises {!Nested} exactly as it would
    on a worker domain. *)
