exception Nested

(* True on any domain (or, for jobs = 1, during any dynamic extent)
   that is executing a pool task. Workers set it once at startup: a
   worker domain never runs anything but tasks. *)
let inside_task : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let reject_nesting () = if Domain.DLS.get inside_task then raise Nested

let hard_cap = 32

let auto_jobs () = max 1 (min 8 (Domain.recommended_domain_count ()))

let default_jobs () =
  match Sys.getenv_opt "ACFC_JOBS" with
  | None | Some "" -> 1
  | Some "auto" -> auto_jobs ()
  | Some s ->
    (match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> min n hard_cap
    | Some _ -> auto_jobs ()
    | None -> 1)

(* {2 Futures} *)

type 'a cell_state =
  | Pending
  | Done of 'a
  | Failed of exn * Printexc.raw_backtrace

type 'a cell = { mutable state : 'a cell_state }

type 'a future =
  | Now of 'a  (* sequential pool: computed during [async] *)
  | Cell of 'a cell

(* {2 The pool} *)

type shared = {
  queue : (unit -> unit) Queue.t;
  lock : Mutex.t;
  work : Condition.t;  (* a task was queued, or [stop] was set *)
  finished : Condition.t;  (* some future completed *)
  mutable stop : bool;
}

type t = {
  n_jobs : int;
  shared : shared option;  (* [None] = sequential stand-in *)
  mutable workers : unit Domain.t list;
}

let jobs t = t.n_jobs

let worker shared =
  Domain.DLS.set inside_task true;
  let rec loop () =
    Mutex.lock shared.lock;
    while Queue.is_empty shared.queue && not shared.stop do
      Condition.wait shared.work shared.lock
    done;
    match Queue.take_opt shared.queue with
    | None ->
      (* stop && empty *)
      Mutex.unlock shared.lock
    | Some task ->
      Mutex.unlock shared.lock;
      task ();
      loop ()
  in
  loop ()

let create ~jobs:n =
  reject_nesting ();
  let n = if n <= 0 then auto_jobs () else min n hard_cap in
  if n = 1 then { n_jobs = 1; shared = None; workers = [] }
  else begin
    let shared =
      {
        queue = Queue.create ();
        lock = Mutex.create ();
        work = Condition.create ();
        finished = Condition.create ();
        stop = false;
      }
    in
    let t = { n_jobs = n; shared = Some shared; workers = [] } in
    t.workers <- List.init n (fun _ -> Domain.spawn (fun () -> worker shared));
    t
  end

let shutdown t =
  match t.shared with
  | None -> ()
  | Some shared ->
    Mutex.lock shared.lock;
    shared.stop <- true;
    (* Tasks still queued are abandoned: we only get here after the
       caller collected (or gave up on) every result it needs. *)
    Queue.clear shared.queue;
    Condition.broadcast shared.work;
    Mutex.unlock shared.lock;
    List.iter Domain.join t.workers;
    t.workers <- []

let with_pool ?jobs f =
  let n = match jobs with Some n -> n | None -> default_jobs () in
  let t = create ~jobs:n in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* Run [f ()] with the nesting flag set, as the dynamic extent of a
   task: pool re-entry from inside [f] must raise [Nested] under
   jobs = 1 exactly as it would on a worker domain. *)
let as_task f =
  Domain.DLS.set inside_task true;
  Fun.protect ~finally:(fun () -> Domain.DLS.set inside_task false) f

let async t f =
  reject_nesting ();
  match t.shared with
  | None -> Now (as_task f)
  | Some shared ->
    let cell = { state = Pending } in
    let task () =
      let result =
        match f () with
        | v -> Done v
        | exception e -> Failed (e, Printexc.get_raw_backtrace ())
      in
      Mutex.lock shared.lock;
      cell.state <- result;
      Condition.broadcast shared.finished;
      Mutex.unlock shared.lock
    in
    Mutex.lock shared.lock;
    Queue.push task shared.queue;
    Condition.signal shared.work;
    Mutex.unlock shared.lock;
    Cell cell

let await t future =
  reject_nesting ();
  match future with
  | Now v -> v
  | Cell cell ->
    let shared =
      match t.shared with
      | Some s -> s
      | None -> invalid_arg "Pool.await: future from another pool"
    in
    Mutex.lock shared.lock;
    let rec collect () =
      match cell.state with
      | Pending ->
        Condition.wait shared.finished shared.lock;
        collect ()
      | Done v ->
        Mutex.unlock shared.lock;
        v
      | Failed (e, bt) ->
        Mutex.unlock shared.lock;
        Printexc.raise_with_backtrace e bt
    in
    collect ()

let map ?jobs f xs =
  with_pool ?jobs @@ fun t ->
  match t.shared with
  | None -> List.map (fun x -> as_task (fun () -> f x)) xs
  | Some _ ->
    let futures = List.map (fun x -> async t (fun () -> f x)) xs in
    (* Collect every result before raising, so the pool drains and the
       failure we report is the first in input order, not the first in
       completion order. *)
    let results =
      List.map
        (fun future ->
          match await t future with
          | v -> Ok v
          | exception e -> Error (e, Printexc.get_raw_backtrace ()))
        futures
    in
    List.map
      (function Ok v -> v | Error (e, bt) -> Printexc.raise_with_backtrace e bt)
      results

let run_list ?jobs tasks = map ?jobs (fun task -> task ()) tasks
