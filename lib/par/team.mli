(** Pinned worker domains with a reusable barrier.

    {!Pool} feeds interchangeable workers from one queue — right for a
    bag of independent experiments, wrong for a fleet simulation where
    each worker owns long-lived mutable state (a client engine and its
    captured effect continuations) that must stay on one domain. A
    team pins worker [i] to domain [i] for its whole lifetime and runs
    rounds through a reusable generation-counter barrier, so a
    thousand-epoch simulation pays two condvar handoffs per epoch
    instead of a domain spawn.

    {2 Memory model}

    [run] is a full barrier in both directions: writes made by the
    caller before [run] are visible to every worker during the round,
    and writes made by workers during the round are visible to the
    caller after [run] returns (all edges via one mutex). Workers must
    not touch data another worker writes in the same round.

    {2 Sequential fallback and nesting}

    [workers = 1] spawns no domain: [run t f] executes [f 0] on the
    calling domain — the exact sequential code path, which is how
    [--jobs 1] fleet runs stay bit-identical to parallel ones. Team
    rounds count as pool tasks: creating or running a team (or a
    {!Pool}) from inside either raises {!Pool.Nested}. *)

type t

val create : workers:int -> t
(** Spawn [workers] pinned domains ([workers = 1] spawns none). Raises
    [Invalid_argument] when [workers < 1]. *)

val workers : t -> int

val run : t -> (int -> unit) -> unit
(** [run t f] executes [f i] for every worker id [i] in [0 .. workers-1],
    worker [i] always on the same domain, and returns when all have
    finished. If workers raise, every worker still completes the round,
    then the exception of the lowest worker id is re-raised (with its
    backtrace) — deterministic regardless of completion order. *)

val shutdown : t -> unit
(** Join every worker domain. Idempotent; [run] after [shutdown] raises. *)

val with_team : workers:int -> (t -> 'a) -> 'a
(** [with_team ~workers f] runs [f] with a fresh team and shuts it down
    when [f] returns or raises. *)
