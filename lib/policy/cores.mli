(** The replacement cores. Stock eight (victim behaviour pinned by the
    record-twin lockstep in `bench check`): *)

module Lru : Policy_core.CORE

module Mru : Policy_core.CORE

module Fifo : Policy_core.CORE

module Clock : Policy_core.CORE

module Lru_2 : Policy_core.CORE

module Rand : Policy_core.CORE

module Opt : Policy_core.CORE

module Two_q : Policy_core.CORE

(** Adaptive three: *)

module Arc : Policy_core.CORE

module Awrp : Policy_core.CORE

module Perceptron : Policy_core.CORE
