(* The eleven replacement cores, each a {!Policy_core.CORE} state
   machine. The eight stock policies keep the exact victim behaviour of
   their former [Policies] incarnations (pinned by the record-twin
   lockstep in `bench check` and the behaviour suites), re-expressed
   over events. The queue-based cores (FIFO, CLOCK, 2Q) formerly popped
   their victim inside the choice; here the choice is a peek and the
   removal happens at the {!Policy_core.Evict} event, with stamped queue
   entries skipped lazily — for the offline replay this is the identical
   sequence of operations, and it additionally tolerates a live kernel
   evicting a block other than the one named (overrule, invalidation). *)

module Block = Acfc_core.Block
module Ilist = Acfc_core.Ilist
module Itbl = Acfc_core.Itbl
open Policy_core

(* One recency list of blocks on columnar storage: free-listed slots
   over an {!Ilist} store with an {!Itbl} index keyed by {!Block.pack}.
   Every operation is O(1) and allocation-free at steady state. *)
module Islab = struct
  type t = {
    store : Ilist.store;
    list : Ilist.t;
    tbl : Itbl.t; (* Block.pack -> slot *)
    mutable blocks : Block.t array; (* slot -> block *)
    mutable free : int array; (* stack of free slots *)
    mutable nfree : int;
    mutable len : int;
  }

  let dummy = Block.make ~file:0 ~index:0

  let create n =
    let n = Stdlib.max 16 n in
    {
      store = Ilist.make_store n;
      list = Ilist.create ();
      tbl = Itbl.create n;
      blocks = Array.make n dummy;
      free = Array.init n (fun i -> n - 1 - i);
      nfree = n;
      len = 0;
    }

  let grow t =
    let old = Array.length t.blocks in
    let cap = 2 * old in
    Ilist.grow_store t.store cap;
    let blocks = Array.make cap dummy in
    Array.blit t.blocks 0 blocks 0 old;
    t.blocks <- blocks;
    let free = Array.make cap 0 in
    Array.blit t.free 0 free 0 t.nfree;
    for i = 0 to old - 1 do
      free.(t.nfree + i) <- old + i
    done;
    t.free <- free;
    t.nfree <- t.nfree + old

  let mem t block = Itbl.find t.tbl (Block.pack block) >= 0

  let slot t block =
    let s = Itbl.find t.tbl (Block.pack block) in
    if s < 0 then failwith "Islab: block not resident";
    s

  let push_front t block =
    if t.nfree = 0 then grow t;
    let s = t.free.(t.nfree - 1) in
    t.nfree <- t.nfree - 1;
    t.blocks.(s) <- block;
    Itbl.set t.tbl (Block.pack block) s;
    Ilist.push_front t.store t.list s;
    t.len <- t.len + 1

  let move_front t block = Ilist.move_front t.store t.list (slot t block)

  let remove t block =
    let key = Block.pack block in
    let s = Itbl.find t.tbl key in
    if s >= 0 then begin
      Ilist.remove t.store t.list s;
      Itbl.remove t.tbl key;
      t.free.(t.nfree) <- s;
      t.nfree <- t.nfree + 1;
      t.len <- t.len - 1
    end

  let is_empty t = Ilist.is_empty t.list

  let length t = t.len

  let front t = t.blocks.(Ilist.front t.list)

  let back t = t.blocks.(Ilist.back t.list)
end

(* FIFO-ordered queue of blocks that survives out-of-order removals: a
   stdlib [Queue] of stamped entries plus a block -> live-stamp table.
   Removal just drops the table entry; stale queue entries are skipped
   when the front is inspected. The old destructive pop-at-choice
   behaviour is recovered by [drop_front] at eviction time. *)
module Squeue = struct
  type t = {
    q : (int * Block.t) Queue.t;
    live : (Block.t, int) Hashtbl.t;
    mutable stamp : int;
  }

  let create () = { q = Queue.create (); live = Hashtbl.create 1024; stamp = 0 }

  let length t = Hashtbl.length t.live

  let push t block =
    t.stamp <- t.stamp + 1;
    Hashtbl.replace t.live block t.stamp;
    Queue.push (t.stamp, block) t.q

  (* Discard stale entries so the physical front is a live member. *)
  let rec settle t =
    match Queue.peek_opt t.q with
    | None -> ()
    | Some (stamp, block) ->
      (match Hashtbl.find_opt t.live block with
      | Some live when live = stamp -> ()
      | Some _ | None ->
        ignore (Queue.pop t.q);
        settle t)

  let front t =
    settle t;
    match Queue.peek_opt t.q with
    | Some (_, block) -> block
    | None -> failwith "Squeue: empty"

  (* Remove [block]; additionally pop it when it is the physical front,
     matching the destructive choice of the pre-core queue policies. *)
  let drop t block =
    settle t;
    (match Queue.peek_opt t.q with
    | Some (stamp, b)
      when Block.equal b block
           && (match Hashtbl.find_opt t.live block with
              | Some live -> live = stamp
              | None -> false) ->
      ignore (Queue.pop t.q)
    | Some _ | None -> ());
    Hashtbl.remove t.live block

  (* Rotate the live front entry to the tail (CLOCK second chance). *)
  let rotate t =
    settle t;
    let stamp, block = Queue.pop t.q in
    Queue.push (stamp, block) t.q;
    block
end

(* Shared recency-list state for LRU and MRU. *)
module Recency = struct
  type t = Islab.t

  let adaptive = false

  let needs_future = false

  let create ~capacity ~future:_ = Islab.create capacity

  let on_event t = function
    | Reference { block; _ } -> Islab.move_front t block
    | Admit { block; _ } -> Islab.push_front t block
    | Evict { block } | Invalidate { block } -> Islab.remove t block
    | Hint _ -> ()

  let end_victim t ~front =
    if Islab.is_empty t then failwith "Recency: empty list"
    else if front then Islab.front t
    else Islab.back t

  let stats t = [ ("resident", float_of_int (Islab.length t)) ]
end

module Lru = struct
  include Recency

  let name = "LRU"

  let summary = "evict the least recently used block"

  let victim t ~pos:_ ~missing:_ = end_victim t ~front:false
end

module Mru = struct
  include Recency

  let name = "MRU"

  let summary = "evict the most recently used block (sequential scans)"

  let victim t ~pos:_ ~missing:_ = end_victim t ~front:true
end

module Fifo = struct
  type t = Squeue.t

  let name = "FIFO"

  let summary = "evict in admission order; references do not rejuvenate"

  let adaptive = false

  let needs_future = false

  let create ~capacity:_ ~future:_ = Squeue.create ()

  let on_event t = function
    | Reference _ | Hint _ -> ()
    | Admit { block; _ } -> Squeue.push t block
    | Evict { block } | Invalidate { block } -> Squeue.drop t block

  let victim t ~pos:_ ~missing:_ = Squeue.front t

  let stats t = [ ("resident", float_of_int (Squeue.length t)) ]
end

module Clock = struct
  type t = { ring : Squeue.t; referenced : (Block.t, unit) Hashtbl.t }

  let name = "CLOCK"

  let summary = "second-chance FIFO with per-block reference bits"

  let adaptive = false

  let needs_future = false

  let create ~capacity:_ ~future:_ =
    { ring = Squeue.create (); referenced = Hashtbl.create 1024 }

  let on_event t = function
    | Reference { block; _ } -> Hashtbl.replace t.referenced block ()
    | Admit { block; _ } -> Squeue.push t.ring block
    | Evict { block } | Invalidate { block } ->
      Squeue.drop t.ring block;
      Hashtbl.remove t.referenced block
    | Hint _ -> ()

  let rec victim t ~pos ~missing =
    let block = Squeue.front t.ring in
    if Hashtbl.mem t.referenced block then begin
      (* Second chance: clear the bit and move the hand on. *)
      Hashtbl.remove t.referenced block;
      ignore (Squeue.rotate t.ring);
      victim t ~pos ~missing
    end
    else block

  let stats t = [ ("resident", float_of_int (Squeue.length t.ring)) ]
end

(* Victim orderings for the indexed LRU-2 and OPT below. Both keys are
   total orders: last-reference positions are unique across resident
   blocks (each stream position references exactly one block), and the
   OPT key carries the block identity for the never-used-again tier. *)
module Pair_map = Map.Make (struct
  type t = int * int

  let compare (a1, b1) (a2, b2) =
    match Int.compare a1 a2 with 0 -> Int.compare b1 b2 | c -> c
end)

module Lru_2 = struct
  (* history: positions of the last two references, most recent first;
     victims: the same entries keyed by (penultimate, last) so the
     eviction choice — oldest penultimate reference, ties broken by the
     older last reference — is the map's minimum binding instead of a
     full-table scan per miss. *)
  type t = {
    history : (Block.t, int * int) Hashtbl.t;
    mutable victims : Block.t Pair_map.t;
  }

  let name = "LRU-2"

  let summary = "evict the oldest penultimate reference (O'Neil LRU-K, K=2)"

  let adaptive = false

  let needs_future = false

  let never = -1

  let create ~capacity:_ ~future:_ =
    { history = Hashtbl.create 1024; victims = Pair_map.empty }

  let record t ~pos block =
    let last, penultimate =
      Option.value (Hashtbl.find_opt t.history block) ~default:(never, never)
    in
    if last <> never then t.victims <- Pair_map.remove (penultimate, last) t.victims;
    Hashtbl.replace t.history block (pos, last);
    t.victims <- Pair_map.add (last, pos) block t.victims

  let forget t block =
    match Hashtbl.find_opt t.history block with
    | Some (last, penultimate) ->
      t.victims <- Pair_map.remove (penultimate, last) t.victims;
      Hashtbl.remove t.history block
    | None -> ()

  let on_event t = function
    | Reference { pos; block } | Admit { pos; block } -> record t ~pos block
    | Evict { block } | Invalidate { block } -> forget t block
    | Hint _ -> ()

  let victim t ~pos:_ ~missing:_ =
    match Pair_map.min_binding_opt t.victims with
    | Some (_, block) -> block
    | None -> failwith "LRU-2: empty"

  let stats t = [ ("resident", float_of_int (Hashtbl.length t.history)) ]
end

module Rand = struct
  (* Swap-with-last dynamic array: uniform choice and eviction are both
     O(1). The RNG is seeded from the capacity, so the draw sequence —
     and therefore the victim sequence — is a pure function of
     (capacity, demand stream). *)
  type t = {
    rng : Acfc_sim.Rng.t;
    mutable arr : Block.t array;
    mutable n : int;
    index : (Block.t, int) Hashtbl.t;  (* block -> slot in [arr] *)
  }

  let name = "RAND"

  let summary = "evict a uniformly random resident block"

  let adaptive = false

  let needs_future = false

  let create ~capacity ~future:_ =
    {
      rng = Acfc_sim.Rng.create (capacity + 7);
      arr = [||];
      n = 0;
      index = Hashtbl.create 1024;
    }

  let inserted t block =
    if t.n = Array.length t.arr then begin
      let cap = Stdlib.max 16 (2 * t.n) in
      let arr = Array.make cap block in
      Array.blit t.arr 0 arr 0 t.n;
      t.arr <- arr
    end;
    t.arr.(t.n) <- block;
    Hashtbl.replace t.index block t.n;
    t.n <- t.n + 1

  let removed t block =
    match Hashtbl.find_opt t.index block with
    | None -> ()
    | Some i ->
      let last = t.n - 1 in
      let moved = t.arr.(last) in
      t.arr.(i) <- moved;
      Hashtbl.replace t.index moved i;
      Hashtbl.remove t.index block;
      t.n <- last

  let on_event t = function
    | Reference _ | Hint _ -> ()
    | Admit { block; _ } -> inserted t block
    | Evict { block } | Invalidate { block } -> removed t block

  let victim t ~pos:_ ~missing:_ =
    if t.n = 0 then failwith "RAND: empty";
    t.arr.(Acfc_sim.Rng.int t.rng t.n)

  let stats t = [ ("resident", float_of_int t.n) ]
end

module Opt_victims = Set.Make (struct
  type t = int * Block.t  (* (next use, block) *)

  let compare (u1, b1) (u2, b2) =
    match Int.compare u1 u2 with 0 -> Block.compare b1 b2 | c -> c
end)

module Opt = struct
  type t = {
    (* For each block, the stream positions where it is referenced, in
       order, with the already-consumed prefix removed. *)
    future : (Block.t, int list ref) Hashtbl.t;
    resident : (Block.t, int) Hashtbl.t;  (* block -> its key in [victims] *)
    (* Resident blocks keyed by next use, so the farthest-future victim
       is the maximum element instead of a full-table scan per miss.
       Never-used-again blocks sit at max_int, tied; the block identity
       in the key makes the choice deterministic, and any choice among
       them yields the same miss count (none is referenced again). *)
    mutable victims : Opt_victims.t;
  }

  let name = "OPT"

  let summary = "clairvoyant MIN: evict the farthest future use (offline only)"

  let adaptive = false

  let needs_future = true

  let create ~capacity:_ ~future:trace =
    let future = Hashtbl.create 1024 in
    Array.iteri
      (fun pos block ->
        match Hashtbl.find_opt future block with
        | Some l -> l := pos :: !l
        | None -> Hashtbl.replace future block (ref [ pos ]))
      trace;
    Hashtbl.iter (fun _ l -> l := List.rev !l) future;
    { future; resident = Hashtbl.create 1024; victims = Opt_victims.empty }

  let consume t ~pos block =
    let l = Hashtbl.find t.future block in
    match !l with
    | p :: rest when p = pos -> l := rest
    | _ -> failwith "OPT: stream position mismatch"

  let next_use t block =
    match !(Hashtbl.find t.future block) with [] -> max_int | p :: _ -> p

  let reindex t block use =
    Hashtbl.replace t.resident block use;
    t.victims <- Opt_victims.add (use, block) t.victims

  let drop t block =
    match Hashtbl.find_opt t.resident block with
    | Some use ->
      t.victims <- Opt_victims.remove (use, block) t.victims;
      Hashtbl.remove t.resident block
    | None -> ()

  let on_event t = function
    | Reference { pos; block } ->
      (* The stored key is the block's next use, which is this
         reference: drop it, consume the position, and re-key at the
         new next use. *)
      (match Hashtbl.find_opt t.resident block with
      | Some use -> t.victims <- Opt_victims.remove (use, block) t.victims
      | None -> failwith "OPT: hit on non-resident block");
      consume t ~pos block;
      reindex t block (next_use t block)
    | Admit { pos; block } ->
      consume t ~pos block;
      reindex t block (next_use t block)
    | Evict { block } | Invalidate { block } -> drop t block
    | Hint _ -> ()

  let victim t ~pos:_ ~missing:_ =
    match Opt_victims.max_elt_opt t.victims with
    | Some (_, block) -> block
    | None -> failwith "OPT: empty"

  let stats t = [ ("resident", float_of_int (Hashtbl.length t.resident)) ]
end

module Two_q = struct
  (* Simplified full 2Q (Johnson & Shasha, VLDB '94 — contemporaneous
     with the paper): new pages enter the FIFO probation queue A1in;
     pages re-referenced after leaving it (tracked by the ghost queue
     A1out) are promoted to the protected LRU queue Am. *)
  type queue = A1in | Am

  type t = {
    kin : int;  (* A1in capacity *)
    kout : int;  (* A1out ghost capacity *)
    a1in : Squeue.t;
    am : Islab.t;
    where : (Block.t, queue) Hashtbl.t;  (* resident pages only *)
    a1out : Block.t Queue.t;  (* ghosts: identities only *)
    ghost : (Block.t, unit) Hashtbl.t;
  }

  let name = "2Q"

  let summary = "probation FIFO + protected LRU with a ghost promotion queue"

  let adaptive = false

  let needs_future = false

  let create ~capacity ~future:_ =
    {
      kin = Stdlib.max 1 (capacity / 4);
      kout = Stdlib.max 1 (capacity / 2);
      a1in = Squeue.create ();
      am = Islab.create capacity;
      where = Hashtbl.create 1024;
      a1out = Queue.create ();
      ghost = Hashtbl.create 1024;
    }

  let remember_ghost t block =
    Queue.push block t.a1out;
    Hashtbl.replace t.ghost block ();
    while Queue.length t.a1out > t.kout do
      Hashtbl.remove t.ghost (Queue.pop t.a1out)
    done

  let on_event t = function
    | Reference { block; _ } ->
      (match Hashtbl.find_opt t.where block with
      | Some Am -> Islab.move_front t.am block
      | Some A1in -> ()  (* classic 2Q: probation hits do not promote *)
      | None -> assert false)
    | Admit { block; _ } ->
      if Hashtbl.mem t.ghost block then begin
        (* Seen recently: promote straight to the protected queue. *)
        Hashtbl.replace t.where block Am;
        Islab.push_front t.am block
      end
      else begin
        Hashtbl.replace t.where block A1in;
        Squeue.push t.a1in block
      end
    | Evict { block } ->
      (match Hashtbl.find_opt t.where block with
      | Some Am -> Islab.remove t.am block
      | Some A1in ->
        (* A replaced probation page is remembered so a prompt
           re-reference proves it deserves the protected queue. *)
        Squeue.drop t.a1in block;
        remember_ghost t block
      | None -> ());
      Hashtbl.remove t.where block
    | Invalidate { block } ->
      (* Invalidation is not a replacement decision: no ghost entry. *)
      (match Hashtbl.find_opt t.where block with
      | Some Am -> Islab.remove t.am block
      | Some A1in -> Squeue.drop t.a1in block
      | None -> ());
      Hashtbl.remove t.where block
    | Hint _ -> ()

  let victim t ~pos:_ ~missing:_ =
    if Squeue.length t.a1in > t.kin || Islab.is_empty t.am then Squeue.front t.a1in
    else Islab.back t.am

  let stats t =
    [
      ("a1in", float_of_int (Squeue.length t.a1in));
      ("am", float_of_int (Islab.length t.am));
      ("ghost", float_of_int (Hashtbl.length t.ghost));
    ]
end

(* {2 Adaptive policies} *)

module Arc = struct
  (* Adaptive Replacement Cache (Megiddo & Modha, FAST '03): recency
     list T1 and frequency list T2 share the capacity; ghost lists B1/B2
     remember recent evictions from each, and a hit in a ghost list
     moves the adaptation target [p] (the size T1 "deserves") toward
     that list's side. Ghost lists are bounded by the cache capacity —
     the qcheck suite drives random streams and asserts the bound after
     every event. *)
  type t = {
    cap : int;
    t1 : Islab.t;  (* seen once recently, MRU at front *)
    t2 : Islab.t;  (* seen at least twice, MRU at front *)
    b1 : Islab.t;  (* ghosts of T1 evictions *)
    b2 : Islab.t;  (* ghosts of T2 evictions *)
    mutable p : int;  (* target size of T1, 0..cap *)
    mutable adapted_for : Block.t option;
        (* missing block [victim] already adapted [p] for, so the
           paired [Admit] does not adapt twice *)
  }

  let name = "ARC"

  let summary = "adaptive recency/frequency split with ghost-directed target"

  let adaptive = true

  let needs_future = false

  let create ~capacity ~future:_ =
    {
      cap = Stdlib.max 1 capacity;
      t1 = Islab.create capacity;
      t2 = Islab.create capacity;
      b1 = Islab.create capacity;
      b2 = Islab.create capacity;
      p = 0;
      adapted_for = None;
    }

  let trim ghost cap =
    while Islab.length ghost > cap do
      Islab.remove ghost (Islab.back ghost)
    done

  (* Move [p] toward the ghost list [block] hit, by the classic ratio
     step (at least 1). No-op for blocks in neither ghost list. *)
  let adapt t block =
    if Islab.mem t.b1 block then begin
      let d =
        Stdlib.max 1
          (if Islab.length t.b1 = 0 then 1 else Islab.length t.b2 / Islab.length t.b1)
      in
      t.p <- Stdlib.min t.cap (t.p + d)
    end
    else if Islab.mem t.b2 block then begin
      let d =
        Stdlib.max 1
          (if Islab.length t.b2 = 0 then 1 else Islab.length t.b1 / Islab.length t.b2)
      in
      t.p <- Stdlib.max 0 (t.p - d)
    end

  let on_event t = function
    | Reference { block; _ } ->
      if Islab.mem t.t1 block then begin
        (* Second reference: promote to the frequency side. *)
        Islab.remove t.t1 block;
        Islab.push_front t.t2 block
      end
      else Islab.move_front t.t2 block
    | Admit { block; _ } ->
      (match t.adapted_for with
      | Some b when Block.equal b block -> ()  (* [victim] already adapted *)
      | Some _ | None -> adapt t block);
      t.adapted_for <- None;
      if Islab.mem t.b1 block || Islab.mem t.b2 block then begin
        (* A ghost hit re-enters directly on the frequency side. *)
        Islab.remove t.b1 block;
        Islab.remove t.b2 block;
        Islab.push_front t.t2 block
      end
      else Islab.push_front t.t1 block
    | Evict { block } ->
      if Islab.mem t.t1 block then begin
        Islab.remove t.t1 block;
        Islab.push_front t.b1 block;
        trim t.b1 t.cap
      end
      else if Islab.mem t.t2 block then begin
        Islab.remove t.t2 block;
        Islab.push_front t.b2 block;
        trim t.b2 t.cap
      end
    | Invalidate { block } ->
      (* Dead contents teach nothing: drop without a ghost entry. *)
      Islab.remove t.t1 block;
      Islab.remove t.t2 block
    | Hint _ -> ()

  (* Classic REPLACE: shrink T1 when it exceeds its target (or exactly
     meets it and the missing block is a B2 ghost, about to grow T2). *)
  let victim t ~pos:_ ~missing =
    adapt t missing;
    t.adapted_for <- Some missing;
    let l1 = Islab.length t.t1 in
    if l1 > 0 && (l1 > t.p || (Islab.mem t.b2 missing && l1 = t.p)) then
      Islab.back t.t1
    else if not (Islab.is_empty t.t2) then Islab.back t.t2
    else Islab.back t.t1

  let stats t =
    [
      ("p", float_of_int t.p);
      ("t1", float_of_int (Islab.length t.t1));
      ("t2", float_of_int (Islab.length t.t2));
      ("b1", float_of_int (Islab.length t.b1));
      ("b2", float_of_int (Islab.length t.b2));
    ]
end

module Awrp = struct
  (* Adaptive Weight Ranking Policy (arXiv:1107.4851): every resident
     block is ranked by a weighted sum of a frequency term and a recency
     term; the weight itself adapts online. A ghost list remembers
     recently evicted blocks with their reference counts — when an
     evicted block returns, the mix is nudged toward the term that would
     have kept it (frequency if it was referenced repeatedly, recency
     otherwise). All arithmetic is RNG-free and the victim scan uses an
     order-independent minimum, so a fixed stream replays
     bit-identically. *)
  type info = { mutable cnt : int; mutable last : int }

  type t = {
    resident : (Block.t, info) Hashtbl.t;
    ghost : Islab.t;  (* recent evictions, MRU at front, <= cap *)
    ghost_cnt : (Block.t, int) Hashtbl.t;
    cap : int;
    mutable w : float;  (* frequency weight, 0.05 .. 0.95 *)
    mutable nudges : int;
  }

  let name = "AWRP"

  let summary = "adaptive weighted frequency+recency ranking (arXiv:1107.4851)"

  let adaptive = true

  let needs_future = false

  let step = 0.05

  let w_min = 0.05

  let w_max = 0.95

  let create ~capacity ~future:_ =
    {
      resident = Hashtbl.create (4 * capacity);
      ghost = Islab.create capacity;
      ghost_cnt = Hashtbl.create (4 * capacity);
      cap = Stdlib.max 1 capacity;
      w = 0.5;
      nudges = 0;
    }

  let touch t ~pos block =
    match Hashtbl.find_opt t.resident block with
    | Some i ->
      i.cnt <- i.cnt + 1;
      i.last <- pos
    | None -> failwith "AWRP: reference to non-resident block"

  let forget_ghost t block =
    Islab.remove t.ghost block;
    Hashtbl.remove t.ghost_cnt block

  let on_event t = function
    | Reference { pos; block } -> touch t ~pos block
    | Admit { pos; block } ->
      (match Hashtbl.find_opt t.ghost_cnt block with
      | Some cnt ->
        (* The stream disagreed with an eviction: favour the term that
           would have retained this block. *)
        if cnt >= 2 then t.w <- Stdlib.min w_max (t.w +. step)
        else t.w <- Stdlib.max w_min (t.w -. step);
        t.nudges <- t.nudges + 1;
        forget_ghost t block
      | None -> ());
      Hashtbl.replace t.resident block { cnt = 1; last = pos }
    | Evict { block } ->
      (match Hashtbl.find_opt t.resident block with
      | Some i ->
        Islab.push_front t.ghost block;
        Hashtbl.replace t.ghost_cnt block i.cnt;
        while Islab.length t.ghost > t.cap do
          let b = Islab.back t.ghost in
          forget_ghost t b
        done
      | None -> ());
      Hashtbl.remove t.resident block
    | Invalidate { block } -> Hashtbl.remove t.resident block
    | Hint _ -> ()

  (* Rank = w * saturating-frequency + (1-w) * recency; evict the
     minimum. The fold computes an explicit (value, block) minimum with
     a [Block.compare] tie-break, so the choice is independent of table
     iteration order. *)
  let victim t ~pos ~missing:_ =
    let best = ref None in
    Hashtbl.iter
      (fun block i ->
        let freq = Stdlib.min 1.0 (float_of_int i.cnt /. 16.0) in
        let recency = 1.0 /. float_of_int (1 + pos - i.last) in
        let value = (t.w *. freq) +. ((1.0 -. t.w) *. recency) in
        match !best with
        | None -> best := Some (value, block)
        | Some (bv, bb) ->
          if value < bv || (value = bv && Block.compare block bb < 0) then
            best := Some (value, block))
      t.resident;
    match !best with
    | Some (_, block) -> block
    | None -> failwith "AWRP: empty"

  let stats t =
    [
      ("w", t.w);
      ("nudges", float_of_int t.nudges);
      ("ghost", float_of_int (Islab.length t.ghost));
      ("resident", float_of_int (Hashtbl.length t.resident));
    ]
end

module Perceptron = struct
  (* LearnedCache-style perceptron eviction: each resident block is
     scored by a dot product of learned weights with a feature vector
     (bias, recency rank, saturating log reference count, priority-level
     hint, file-id hash); the lowest score is evicted. Learning is
     ghost-driven: evicting a block that promptly returns was a mistake
     (weights move toward its features); a ghost expiring un-referenced
     confirms the eviction (weights move away). Weights are clamped, so
     they stay finite on any stream — asserted by qcheck. *)
  let n_features = 5

  let lr = 0.0625

  let w_clamp = 4.0

  type info = {
    mutable cnt : int;
    mutable last : int;
    mutable level : int;  (* from Hint events; 0 = unhinted *)
  }

  type t = {
    cap : int;
    resident : (Block.t, info) Hashtbl.t;
    ghost : Islab.t;
    ghost_x : (Block.t, float array) Hashtbl.t;  (* eviction-time features *)
    w : float array;
    mutable updates : int;
  }

  let name = "PERCEPTRON"

  let summary = "online perceptron over recency/frequency/level/file features"

  let adaptive = true

  let needs_future = false

  let create ~capacity ~future:_ =
    {
      cap = Stdlib.max 1 capacity;
      resident = Hashtbl.create (4 * capacity);
      ghost = Islab.create capacity;
      ghost_x = Hashtbl.create (4 * capacity);
      w = Array.make n_features 0.0;
      updates = 0;
    }

  let features t ~pos block i =
    let age = float_of_int (pos - i.last) /. float_of_int t.cap in
    let freq = Stdlib.min 1.0 (log (1.0 +. float_of_int i.cnt) /. log 256.0) in
    let level = float_of_int i.level /. 8.0 in
    let file_hash =
      float_of_int (Block.file block * 2654435761 land 255) /. 255.0
    in
    [| 1.0; age; freq; level; file_hash |]

  let score t x =
    let s = ref 0.0 in
    for k = 0 to n_features - 1 do
      s := !s +. (t.w.(k) *. x.(k))
    done;
    !s

  let clamp v =
    if v > w_clamp then w_clamp else if v < -.w_clamp then -.w_clamp else v

  let learn t x ~sign =
    for k = 0 to n_features - 1 do
      t.w.(k) <- clamp (t.w.(k) +. (sign *. lr *. x.(k)))
    done;
    t.updates <- t.updates + 1

  let forget_ghost t block =
    Islab.remove t.ghost block;
    Hashtbl.remove t.ghost_x block

  let on_event t = function
    | Reference { pos; block } ->
      (match Hashtbl.find_opt t.resident block with
      | Some i ->
        i.cnt <- i.cnt + 1;
        i.last <- pos
      | None -> failwith "PERCEPTRON: reference to non-resident block")
    | Admit { pos; block } ->
      (match Hashtbl.find_opt t.ghost_x block with
      | Some x ->
        (* Mistake: the stream wanted this block back. Blocks that look
           like it should score higher (be kept). *)
        learn t x ~sign:1.0;
        forget_ghost t block
      | None -> ());
      Hashtbl.replace t.resident block { cnt = 1; last = pos; level = 0 }
    | Evict { block } ->
      (match Hashtbl.find_opt t.resident block with
      | Some i ->
        (* Remember the eviction-time features; score at [last] so the
           stored vector does not depend on when the kernel applied the
           decision. *)
        let x = features t ~pos:i.last block i in
        Islab.push_front t.ghost block;
        Hashtbl.replace t.ghost_x block x;
        while Islab.length t.ghost > t.cap do
          let b = Islab.back t.ghost in
          (* Expired un-referenced: the eviction was right. *)
          (match Hashtbl.find_opt t.ghost_x b with
          | Some gx -> learn t gx ~sign:(-1.0)
          | None -> ());
          forget_ghost t b
        done
      | None -> ());
      Hashtbl.remove t.resident block
    | Invalidate { block } -> Hashtbl.remove t.resident block
    | Hint { block; level } ->
      (match Hashtbl.find_opt t.resident block with
      | Some i -> i.level <- level
      | None -> ())

  (* Lowest dot-product score loses; explicit minimum with a
     [Block.compare] tie-break keeps the scan order-independent. *)
  let victim t ~pos ~missing:_ =
    let best = ref None in
    Hashtbl.iter
      (fun block i ->
        let value = score t (features t ~pos block i) in
        match !best with
        | None -> best := Some (value, block)
        | Some (bv, bb) ->
          if value < bv || (value = bv && Block.compare block bb < 0) then
            best := Some (value, block))
      t.resident;
    match !best with
    | Some (_, block) -> block
    | None -> failwith "PERCEPTRON: empty"

  let stats t =
    List.concat
      [
        Array.to_list (Array.mapi (fun k v -> (Printf.sprintf "w%d" k, v)) t.w);
        [
          ("updates", float_of_int t.updates);
          ("ghost", float_of_int (Islab.length t.ghost));
          ("resident", float_of_int (Hashtbl.length t.resident));
        ];
      ]
end
