(** The unified eviction-decision core.

    One replacement policy = one state machine over typed cache events.
    The same state answers victim queries for the offline trace-replay
    lab ({!Acfc_replacement.Policy_sim}) and for the live two-level
    kernel (installed as an [fbehavior] manager plug-in through
    {!Live} / [Control.set_plugin]) — by construction the two adapters
    feed the machine the identical event sequence for the same demand
    stream, so both produce the identical victim sequence. That
    determinism contract is asserted in [test/test_policy_core.ml].

    Events carry the reference position [pos]: the index of the current
    reference in the demand stream. Both adapters number references the
    same way (hits and miss-admissions each consume one position), which
    is what lets position-keyed policies (LRU-2, OPT) replay
    identically at both levels. *)

module Block = Acfc_core.Block

type event =
  | Reference of { pos : int; block : Block.t }
      (** The resident [block] was referenced (a cache hit). *)
  | Admit of { pos : int; block : Block.t }
      (** [block] just entered the cache (a miss, after any eviction). *)
  | Evict of { block : Block.t }
      (** [block] left the cache to make room. Usually the block the
          core just named in {!CORE.victim}, but a kernel may overrule;
          cores must tolerate eviction of any resident block. *)
  | Invalidate of { block : Block.t }
      (** [block] left the cache because its contents died (file
          invalidation) — not a replacement decision, so adaptive cores
          must not learn from it (no ghost entry). *)
  | Hint of { block : Block.t; level : int }
      (** Advisory priority-level hint for [block]; cores may fold it
          into their ranking (the perceptron uses it as a feature) or
          ignore it. *)

module type CORE = sig
  type t

  val name : string
  (** Registry name, uppercase (e.g. "LRU", "ARC"). *)

  val summary : string
  (** One-line description for [acfc-run policy list]. *)

  val adaptive : bool
  (** True for the learned policies (ARC/AWRP/PERCEPTRON). *)

  val needs_future : bool
  (** True when {!create} requires the full future reference stream
      (OPT). Such cores cannot run as live managers. *)

  val create : capacity:int -> future:Block.t array -> t
  (** [future] is the demand stream for clairvoyant policies; online
      policies ignore it (the live adapter passes [[||]]). *)

  val on_event : t -> event -> unit

  val victim : t -> pos:int -> missing:Block.t -> Block.t
  (** Name a resident block to give up so [missing] can be admitted at
      reference position [pos]. Called only when the cache is full;
      the caller evicts the returned block (or, for a live kernel that
      overrules, some other resident) and reports it back as
      {!Evict}. *)

  val stats : t -> (string * float) list
  (** Introspection for tests and reports (adaptation targets, ghost
      sizes, learned weights). *)
end

(** Structural twin of [Acfc_replacement.Policy_sim.POLICY]; declared
    here so this library does not depend on the replacement lab.
    [Acfc_replacement.Policies] repacks these modules at type [POLICY]
    (the match is structural: [Trace.t] is transparently
    [Block.t array]). *)
module type SIM = sig
  type t

  val name : string
  val init : capacity:int -> Block.t array -> t
  val hit : t -> pos:int -> Block.t -> unit
  val choose_victim : t -> pos:int -> missing:Block.t -> Block.t
  val inserted : t -> pos:int -> Block.t -> unit
  val evicted : t -> Block.t -> unit
end

module Offline (C : CORE) : SIM with type t = C.t
(** The offline adapter: [init] creates the core with the trace as
    future, [hit]/[inserted]/[evicted] feed
    {!Reference}/{!Admit}/{!Evict}, [choose_victim] asks {!CORE.victim}. *)

type replay = {
  hits : int;
  misses : int;
  victims : Block.t list;  (** in eviction order *)
}

val replay : (module CORE) -> capacity:int -> Block.t array -> replay
(** Drive a core over a demand stream with the standard full-cache
    eviction discipline (the same one [Policy_sim.run] and the live
    kernel use) and record the victim sequence. Raises [Invalid_argument]
    on non-positive capacity and [Failure] if the core names a
    non-resident victim. *)
