(** The unified policy registry: every replacement core, stock and
    adaptive, addressable by name from the offline lab, the live
    manager path, scenarios, the CLI and the bench tournament. *)

type entry = (module Policy_core.CORE)

val all : entry list
(** Registration order: the eight stock policies (LRU, MRU, FIFO,
    CLOCK, LRU-2, 2Q, RAND, OPT) followed by the adaptive three (ARC,
    AWRP, PERCEPTRON). *)

val name : entry -> string

val summary : entry -> string

val adaptive : entry -> bool

val needs_future : entry -> bool
(** True for OPT: it needs the full future stream, so it can replay
    offline traces but cannot run as a live manager. *)

val names : string list
(** Registry names in registration order. *)

val find : string -> (entry, string) result
(** Case-insensitive lookup. The error message lists the valid names
    and, when some registered name is close (edit distance <= 2),
    suggests it — the same message is surfaced verbatim by
    [Policies.by_name] and, prefixed with its [$.path], by the scenario
    codec. *)
