module Block = Acfc_core.Block

type event =
  | Reference of { pos : int; block : Block.t }
  | Admit of { pos : int; block : Block.t }
  | Evict of { block : Block.t }
  | Invalidate of { block : Block.t }
  | Hint of { block : Block.t; level : int }

module type CORE = sig
  type t

  val name : string
  val summary : string
  val adaptive : bool
  val needs_future : bool
  val create : capacity:int -> future:Block.t array -> t
  val on_event : t -> event -> unit
  val victim : t -> pos:int -> missing:Block.t -> Block.t
  val stats : t -> (string * float) list
end

module type SIM = sig
  type t

  val name : string
  val init : capacity:int -> Block.t array -> t
  val hit : t -> pos:int -> Block.t -> unit
  val choose_victim : t -> pos:int -> missing:Block.t -> Block.t
  val inserted : t -> pos:int -> Block.t -> unit
  val evicted : t -> Block.t -> unit
end

module Offline (C : CORE) : SIM with type t = C.t = struct
  type t = C.t

  let name = C.name

  let init ~capacity trace = C.create ~capacity ~future:trace

  let hit t ~pos block = C.on_event t (Reference { pos; block })

  let choose_victim t ~pos ~missing = C.victim t ~pos ~missing

  let inserted t ~pos block = C.on_event t (Admit { pos; block })

  let evicted t block = C.on_event t (Evict { block })
end

type replay = { hits : int; misses : int; victims : Block.t list }

let replay (module C : CORE) ~capacity trace =
  if capacity <= 0 then invalid_arg "Policy_core.replay: capacity must be positive";
  let t = C.create ~capacity ~future:trace in
  let resident = Hashtbl.create (2 * capacity) in
  let hits = ref 0 and misses = ref 0 and victims = ref [] in
  Array.iteri
    (fun pos block ->
      if Hashtbl.mem resident block then begin
        incr hits;
        C.on_event t (Reference { pos; block })
      end
      else begin
        incr misses;
        if Hashtbl.length resident >= capacity then begin
          let v = C.victim t ~pos ~missing:block in
          if not (Hashtbl.mem resident v) then
            failwith
              (Printf.sprintf "Policy_core.replay: %s chose a non-resident victim"
                 C.name);
          Hashtbl.remove resident v;
          victims := v :: !victims;
          C.on_event t (Evict { block = v })
        end;
        Hashtbl.replace resident block ();
        C.on_event t (Admit { pos; block })
      end)
    trace;
  { hits = !hits; misses = !misses; victims = List.rev !victims }
