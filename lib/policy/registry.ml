type entry = (module Policy_core.CORE)

let all : entry list =
  [
    (module Cores.Lru);
    (module Cores.Mru);
    (module Cores.Fifo);
    (module Cores.Clock);
    (module Cores.Lru_2);
    (module Cores.Two_q);
    (module Cores.Rand);
    (module Cores.Opt);
    (module Cores.Arc);
    (module Cores.Awrp);
    (module Cores.Perceptron);
  ]

let name (module C : Policy_core.CORE) = C.name

let summary (module C : Policy_core.CORE) = C.summary

let adaptive (module C : Policy_core.CORE) = C.adaptive

let needs_future (module C : Policy_core.CORE) = C.needs_future

let names = List.map name all

(* Classic dynamic-programming edit distance, for the unknown-name
   suggestion. Inputs are policy-name sized, so O(nm) is nothing. *)
let edit_distance a b =
  let n = String.length a and m = String.length b in
  let prev = Array.init (m + 1) Fun.id in
  let cur = Array.make (m + 1) 0 in
  for i = 1 to n do
    cur.(0) <- i;
    for j = 1 to m do
      let cost = if a.[i - 1] = b.[j - 1] then 0 else 1 in
      cur.(j) <-
        Stdlib.min (Stdlib.min (cur.(j - 1) + 1) (prev.(j) + 1)) (prev.(j - 1) + cost)
    done;
    Array.blit cur 0 prev 0 (m + 1)
  done;
  prev.(m)

let find requested =
  let target = String.uppercase_ascii requested in
  match List.find_opt (fun e -> name e = target) all with
  | Some e -> Ok e
  | None ->
    let suggestion =
      List.fold_left
        (fun best n ->
          let d = edit_distance target n in
          match best with
          | Some (bd, _) when bd <= d -> best
          | _ when d <= 2 -> Some (d, n)
          | _ -> best)
        None names
    in
    let hint =
      match suggestion with
      | Some (_, n) -> Printf.sprintf "; did you mean %S?" n
      | None -> ""
    in
    Error
      (Printf.sprintf "unknown policy %S (valid: %s)%s" requested
         (String.concat ", " names) hint)
