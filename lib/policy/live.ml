module Block = Acfc_core.Block
module Acm = Acfc_core.Acm
module Control = Acfc_core.Control

type t = {
  name : string;
  feed : Policy_core.event -> unit;
  pick : pos:int -> missing:Block.t -> Block.t;
  stats_fn : unit -> (string * float) list;
  mutable next_pos : int;
}

let make (module C : Policy_core.CORE) ~capacity ?(future = [||]) () =
  let st = C.create ~capacity ~future in
  {
    name = C.name;
    feed = C.on_event st;
    pick = C.victim st;
    stats_fn = (fun () -> C.stats st);
    next_pos = 0;
  }

let name t = t.name

let stats t = t.stats_fn ()

(* Position discipline: [choose] reads the current position without
   consuming it; the admit that follows the eviction consumes it — the
   same (pos-to-choose, pos-to-admit) pairing the offline replay
   produces for a miss. References consume one position each. *)
let plugin t =
  {
    Acm.on_admit =
      (fun block ->
        t.feed (Policy_core.Admit { pos = t.next_pos; block });
        t.next_pos <- t.next_pos + 1);
    on_reference =
      (fun block ->
        t.feed (Policy_core.Reference { pos = t.next_pos; block });
        t.next_pos <- t.next_pos + 1);
    on_remove =
      (fun block ~invalidated ->
        t.feed
          (if invalidated then Policy_core.Invalidate { block }
           else Policy_core.Evict { block }));
    choose = (fun ~missing -> Some (t.pick ~pos:t.next_pos ~missing));
  }

let install t control = Control.set_plugin control (Some (plugin t))
