(** The live adapter: runs any registered core as an [fbehavior]
    manager, issuing Advise decisions through {!Acfc_core.Control} /
    {!Acfc_core.Acm}.

    The adapter numbers references exactly the way the offline replay
    does — each admit and each reference consumes one position — so a
    core driven by both adapters over the same demand stream sees the
    identical event sequence and produces the identical victim
    sequence. *)

module Block = Acfc_core.Block

type t

val make : Registry.entry -> capacity:int -> ?future:Block.t array -> unit -> t
(** Instantiate the core. [future] (default [[||]]) is only meaningful
    for clairvoyant cores; {!Registry.needs_future} cores without a
    future stream will fail at their first decision, so scenario
    validation rejects them up front. *)

val name : t -> string

val stats : t -> (string * float) list

val plugin : t -> Acfc_core.Acm.plugin
(** The raw callback record, for installing via {!Acfc_core.Acm} in
    kernel-level tests. *)

val install : t -> Acfc_core.Control.t -> (unit, Acfc_core.Error.t) result
(** Install the adapter as the replacement plug-in of the manager
    behind [control]. *)
