module Policy = Acfc_core.Policy
module Wir = Acfc_wir.Wir

let input_blocks = 2176  (* 17 MB *)

let run_blocks = 128  (* 1 MB in-core sort buffer *)

let initial_runs = 17  (* 2176 / 128 *)

let merge_width = 8

let sort_cpu_per_block = 0.065  (* phase-1 comparison sort *)

let merge_cpu_per_block = 0.028

let write_cpu_per_block = 0.008

(* The whole sort — phase-1 run formation and the 8-way merge tree —
   has a data-independent access pattern, so it compiles to a fully
   unrolled program. The compiler below replays the historical
   closure's control flow symbolically: slots are allocated in the
   closure's file-creation order and every per-block read/write/advice
   lands in the same sequence. *)
let program =
  let ops = ref [] (* reversed *) in
  let emit op = ops := op :: !ops in
  let next_slot = ref 0 in
  let open_file ~name ~size_blocks ?reserve_blocks () =
    emit (Wir.open_file ~name ~size_blocks ?reserve_blocks ());
    let slot = !next_slot in
    incr next_slot;
    slot
  in
  let input = open_file ~name:"input.txt" ~size_blocks:input_blocks () in
  (* Strategy: input is read-once (priority -1); MRU at levels -1 and 0
     because earlier-created temporaries are merged first. *)
  emit (Wir.set_policy ~prio:(-1) Policy.Mru);
  emit (Wir.set_policy ~prio:0 Policy.Mru);
  emit (Wir.set_priority ~file:input ~prio:(-1));
  (* Phase 1: partition the input into sorted runs. Each input block is
     read, sorted, dropped (done-with), and written out to the run. *)
  let runs =
    List.init initial_runs (fun r ->
        let tmp =
          open_file
            ~name:(Printf.sprintf "tmp.run%02d" r)
            ~size_blocks:0 ~reserve_blocks:run_blocks ()
        in
        for block = 0 to run_blocks - 1 do
          emit
            (Wir.read ~cpu:sort_cpu_per_block ~done_with:true ~file:input
               ~first:((r * run_blocks) + block)
               ~count:1 ());
          emit (Wir.write ~cpu:write_cpu_per_block ~file:tmp ~first:block ~count:1 ())
        done;
        (tmp, run_blocks))
  in
  (* Merge a batch: read the fronts round-robin (freeing each consumed
     block), write one merged block out per block in, then unlink the
     inputs. Returns the output (slot, size). *)
  let merge ~name ~inputs =
    let total = List.fold_left (fun acc (_, size) -> acc + size) 0 inputs in
    let output = open_file ~name ~size_blocks:0 ~reserve_blocks:total () in
    let files = Array.of_list inputs in
    let cursors = Array.map (fun _ -> 0) files in
    let remaining = ref (Array.length files) in
    let next_out = ref 0 in
    while !remaining > 0 do
      Array.iteri
        (fun i (slot, size) ->
          if cursors.(i) < size then begin
            let block = cursors.(i) in
            emit
              (Wir.read ~cpu:merge_cpu_per_block ~done_with:true ~file:slot
                 ~first:block ~count:1 ());
            cursors.(i) <- block + 1;
            if cursors.(i) = size then decr remaining;
            emit
              (Wir.write ~cpu:write_cpu_per_block ~file:output ~first:!next_out
                 ~count:1 ());
            incr next_out
          end)
        files
    done;
    List.iter (fun (slot, _) -> emit (Wir.unlink slot)) inputs;
    (output, total)
  in
  (* Phase 2: 8-way merges in creation order until one file remains. *)
  let rec merge_all generation files =
    match files with
    | [] -> ()
    | [ _final ] -> ()
    | _ ->
      let rec take n = function
        | [] -> ([], [])
        | l when n = 0 -> ([], l)
        | x :: rest ->
          let batch, leftover = take (n - 1) rest in
          (x :: batch, leftover)
      in
      let rec level i files acc =
        match files with
        | [] -> List.rev acc
        | _ ->
          let batch, rest = take merge_width files in
          let merged =
            merge ~name:(Printf.sprintf "tmp.merge%d_%d" generation i) ~inputs:batch
          in
          level (i + 1) rest (merged :: acc)
      in
      merge_all (generation + 1) (level 0 files [])
  in
  merge_all 0 runs;
  Wir.make ~name:"sort" ~category:"write-then-read" (List.rev !ops)

let sort = App.of_program program
