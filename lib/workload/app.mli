(** An application model.

    The eight paper applications are {!Acfc_wir.Wir.t} programs — data
    that one interpreter executes, serialises and replays — wrapped by
    {!of_program}. {!make} remains as the escape hatch for behaviour
    the IR cannot express (tests and examples with custom closures).

    {!run} executes either kind inside a simulation fiber: it creates
    the application's files on [disk], applies its caching strategy
    when [env] is smart, and performs its block accesses and
    computation, returning when the application finishes. *)

type body =
  | Program of Acfc_wir.Wir.t  (** a workload IR program, run by {!Acfc_wir.Wir.exec} *)
  | Closure of (Env.t -> disk:Acfc_disk.Disk.t -> unit)
      (** arbitrary OCaml, for what the IR cannot express *)

type t = {
  name : string;
  category : string;
      (** access-pattern category from the paper's Sec. 5.3 grouping:
          "cyclic", "hot/cold", "access-once", "write-then-read" … *)
  body : body;
}

val make : name:string -> category:string -> (Env.t -> disk:Acfc_disk.Disk.t -> unit) -> t
(** A closure application. *)

val of_program : Acfc_wir.Wir.t -> t
(** Wrap an IR program; [name] and [category] come from the program. *)

val program : t -> Acfc_wir.Wir.t option
(** The program, for applications that are data ([None] for closures). *)

val run : t -> Env.t -> disk:Acfc_disk.Disk.t -> unit
