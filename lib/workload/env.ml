(* The execution environment moved to acfc.wir (the IR interpreter is
   its primary consumer); re-export it here so workload code and the
   historical [Acfc_workload.Env] path keep working unchanged. *)
include Acfc_wir.Env
