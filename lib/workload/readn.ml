module Policy = Acfc_core.Policy
module Wir = Acfc_wir.Wir

let repeats = 5

let cpu_per_block = 0.0075

let app ?(file_blocks = 1200) ~n ~mode () =
  if n <= 0 || file_blocks <= 0 then invalid_arg "Readn.app: sizes must be positive";
  let name =
    Printf.sprintf "read%d%s" n (match mode with `Foolish -> "!" | `Oblivious -> "")
  in
  let strategy =
    match mode with
    | `Foolish ->
      (* A deliberately bad policy: MRU is terrible for this pattern. *)
      [ Wir.set_priority ~file:0 ~prio:0; Wir.set_policy ~prio:0 Policy.Mru ]
    | `Oblivious -> []
  in
  (* Read the file in groups of [n] blocks, each group [repeats] times
     before moving on. *)
  let rec groups first acc =
    if first >= file_blocks then List.rev acc
    else
      let count = Stdlib.min n (file_blocks - first) in
      let g =
        Wir.loop repeats [ Wir.read ~cpu:cpu_per_block ~file:0 ~first ~count () ]
      in
      groups (first + n) (g :: acc)
  in
  App.of_program
    (Wir.make ~name ~category:"grouped-cyclic"
       ((Wir.open_file ~name:"readn.dat" ~size_blocks:file_blocks () :: strategy)
       @ groups 0 []))
