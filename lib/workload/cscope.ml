module Policy = Acfc_core.Policy
module Wir = Acfc_wir.Wir

(* Symbol queries scan "cscope.out" looking for records. *)
let symbol_search ?(name = "cs1") ?(database_blocks = 1141) ?(queries = 8)
    ?(cpu_per_block = 0.0024) () =
  App.of_program
    (Wir.make ~name ~category:"cyclic"
       [
         Wir.open_file ~name:"cscope.out" ~size_blocks:database_blocks ();
         (* Strategy (paper Sec. 5.1): MRU on the database's priority level. *)
         Wir.set_priority ~file:0 ~prio:0;
         Wir.set_policy ~prio:0 Policy.Mru;
         Wir.loop queries
           [ Wir.read ~cpu:cpu_per_block ~file:0 ~first:0 ~count:database_blocks () ];
       ])

(* cs1: 8 symbol queries over the 18 MB package's 9 MB database. *)
let cs1 = symbol_search ()

(* cs2/cs3: text queries scan every source file, in the same order on
   every query. *)
let text_search ~name ~files ?(file_blocks = 50) ~queries ~cpu_per_block () =
  App.of_program
    (Wir.make ~name ~category:"cyclic"
       (List.init files (fun i ->
            Wir.open_file
              ~name:(Printf.sprintf "src%02d.c" i)
              ~size_blocks:file_blocks ())
       (* All sources sit at default priority 0; one call suffices. *)
       @ [
           Wir.set_policy ~prio:0 Policy.Mru;
           Wir.loop queries
             (List.init files (fun i ->
                  Wir.read ~cpu:cpu_per_block ~file:i ~first:0 ~count:file_blocks ()));
         ]))

let cs2 = text_search ~name:"cs2" ~files:47 ~queries:5 ~cpu_per_block:0.0137 ()

(* cs3's compulsory-miss count in the paper's Table 6 is 1728 blocks
   (13.5 MB touched per text query over the "10 MB" package). *)
let cs3 = text_search ~name:"cs3" ~files:36 ~file_blocks:48 ~queries:4 ~cpu_per_block:0.008 ()
