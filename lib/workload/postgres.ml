module Wir = Acfc_wir.Wir

let custom ?(name = "pjn") ?(outer_blocks = 410) ?(index_blocks = 640)
    ?(internal_blocks = 40) ?(inner_blocks = 4096) ?(probes = 20_000)
    ?(match_fraction = 0.2) ?(cpu_per_probe = 0.0045) () =
  if match_fraction < 0.0 || match_fraction > 1.0 then
    invalid_arg "Postgres.custom: match_fraction out of range";
  if probes < outer_blocks then
    invalid_arg "Postgres.custom: probes must be at least outer_blocks";
  (* Slots: 0 the outer relation, 1 the index, 2 the inner relation. *)
  let outer = 0 and index = 1 and inner = 2 in
  let opens =
    [
      Wir.open_file ~name:"twentyk" ~size_blocks:outer_blocks ();
      Wir.open_file ~name:"twohundredk_unique1" ~size_blocks:index_blocks ();
      Wir.open_file ~name:"twohundredk" ~size_blocks:inner_blocks ();
    ]
  in
  (* Strategy: only the index is raised above the data (paper Sec. 5.1);
     LRU is the default policy at both levels. *)
  let strategy = [ Wir.set_priority ~file:index ~prio:1 ] in
  (* One probe: B-tree descent (one internal block, one leaf block),
     a matching inner tuple with probability [match_fraction], then the
     per-probe computation. Three ops draw from the RNG in exactly the
     closure's order: internal, leaf, match. *)
  let probe =
    [
      Wir.rand_read ~file:index ~base:0 ~range:internal_blocks ();
      Wir.rand_read ~file:index ~base:internal_blocks
        ~range:(index_blocks - internal_blocks) ();
      Wir.choice ~prob:match_fraction
        [ Wir.rand_read ~file:inner ~base:0 ~range:inner_blocks () ]
        [];
      Wir.compute cpu_per_probe;
    ]
  in
  (* The sequential outer scan advances so that it finishes with the
     probes: one outer block per [probes / outer_blocks] probes. Emit
     one outer-block read per group, then loop the probe body over the
     group (the outer read's own probe is the loop's first iteration). *)
  let per = probes / outer_blocks in
  let rec groups start acc =
    if start >= probes then List.rev acc
    else begin
      let next = Stdlib.min probes (start + per) in
      let outer_block = Stdlib.min (start / per) (outer_blocks - 1) in
      let g =
        Wir.seq
          [
            Wir.read ~file:outer ~first:outer_block ~count:1 ();
            Wir.loop (next - start) probe;
          ]
      in
      groups next (g :: acc)
    end
  in
  App.of_program
    (Wir.make ~name ~category:"hot/cold" (opens @ strategy @ groups 0 []))

(* The paper's join: 20 000 outer tuples against the 5 MB non-clustered
   index and the 32 MB inner relation, 20% selectivity. *)
let pjn = custom ()
