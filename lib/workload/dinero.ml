module Policy = Acfc_core.Policy
module Wir = Acfc_wir.Wir

let custom ?(name = "din") ?(trace_blocks = 1024) ?(simulations = 9)
    ?(cpu_per_block = 0.0101) () =
  App.of_program
    (Wir.make ~name ~category:"cyclic"
       [
         Wir.open_file ~name:"cc.trace" ~size_blocks:trace_blocks ();
         Wir.set_priority ~file:0 ~prio:0;
         Wir.set_policy ~prio:0 Policy.Mru;
         Wir.loop simulations
           [ Wir.read ~cpu:cpu_per_block ~file:0 ~first:0 ~count:trace_blocks () ];
       ])

(* The paper's run: nine simulations (line {32,64,128} x assoc {1,2,4})
   over the 8 MB "cc" trace. *)
let din = custom ()
