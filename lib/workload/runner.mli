(** Run one or more applications concurrently over a shared cache.

    Builds the whole machine — engine, SCSI bus, disks, CPU, file
    system with the configured allocation policy — spawns one fiber per
    application, runs the simulation to completion and collects the
    paper's metrics (per-application elapsed time and block I/Os).

    Disk assignment follows the paper's testbed: by default disk 0 is
    the RZ56 and disk 1 the RZ26, both on one SCSI bus. *)

module Spec : sig
  type t = {
    app : App.t;
    smart : bool;  (** register as a manager and apply its strategy *)
    disk : int;  (** index into the run's disk list *)
  }

  val make : ?smart:bool -> ?disk:int -> App.t -> t
  (** Defaults: [smart = true], [disk = 0]. *)
end

type app_result = {
  app_name : string;
  pid : Acfc_core.Pid.t;
  elapsed : float;  (** seconds of virtual time to completion *)
  disk_reads : int;
  disk_writes : int;
  block_ios : int;  (** reads + writes: the paper's metric *)
  cache_hits : int;
  cache_misses : int;
}

type t = {
  apps : app_result list;  (** in spec order *)
  makespan : float;  (** completion time of the last application *)
  total_ios : int;
  cache_hits : int;
  cache_misses : int;
  overrules : int;
  placeholders_created : int;
  placeholders_used : int;
  engine_events : int;
}

val blocks_of_mb : float -> int
(** Cache capacity in 8 KB blocks for a size in MB ([6.4] -> 819, the
    default Ultrix cache of the paper's workstation). *)

val run :
  ?seed:int ->
  ?disks:Acfc_disk.Params.t list ->
  ?disk_sched:Acfc_disk.Disk.sched ->
  ?update_interval:float ->
  ?hit_cost:float ->
  ?io_cpu_cost:float ->
  ?write_cluster:int ->
  ?readahead:bool ->
  ?scattered_layout:bool ->
  ?revocation:Acfc_core.Config.revocation ->
  ?shared_files:Acfc_core.Config.shared_files ->
  ?tracer:(Acfc_core.Event.t -> unit) ->
  ?obs:Acfc_obs.Sink.t ->
  cache_blocks:int ->
  alloc_policy:Acfc_core.Config.alloc_policy ->
  Spec.t list ->
  t
(** Defaults: [seed = 0]; [disks = [rz56; rz26]]; a 30 s update daemon;
    read-ahead on; no revocation. [obs], when given, is threaded
    through every layer (engine, cache, file system, bus, disks) and
    additionally carries per-application hit/miss/hit-ratio/block-I/O
    gauges named [app.<index>.<name>.*]. Raises [Invalid_argument] on
    an empty spec list or an out-of-range disk index. *)

val pp : Format.formatter -> t -> unit
