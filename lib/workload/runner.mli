(** Workload specifications and run results.

    The machine itself — engine, SCSI bus, disks, CPU, file system with
    the configured allocation policy — is assembled by
    [Acfc_scenario.Scenario], which takes a declarative description of
    the whole setup and returns the {!t} results defined here
    (per-application elapsed time and block I/Os, the paper's metrics).
    This module keeps only the vocabulary shared by that layer and its
    callers: the per-application {!Spec}, the result records, and their
    printer. *)

module Spec : sig
  type t = {
    app : App.t;
    smart : bool;  (** register as a manager and apply its strategy *)
    disk : int;  (** index into the run's disk list *)
    manager : string option;
        (** registry name of a replacement policy to install as this
            workload's live manager (see {!Acfc_policy.Registry}) *)
  }

  val make : ?smart:bool -> ?disk:int -> ?manager:string -> App.t -> t
  (** Defaults: [smart = true], [disk = 0], [manager = None]. *)
end

type app_result = {
  app_name : string;
  pid : Acfc_core.Pid.t;
  elapsed : float;  (** seconds of virtual time to completion *)
  disk_reads : int;
  disk_writes : int;
  block_ios : int;  (** reads + writes: the paper's metric *)
  cache_hits : int;
  cache_misses : int;
}

type t = {
  apps : app_result list;  (** in spec order *)
  makespan : float;  (** completion time of the last application *)
  total_ios : int;
  cache_hits : int;
  cache_misses : int;
  overrules : int;
  placeholders_created : int;
  placeholders_used : int;
  engine_events : int;
}

val blocks_of_mb : float -> int
(** Cache capacity in 8 KB blocks for a size in MB ([6.4] -> 819, the
    default Ultrix cache of the paper's workstation). *)

val pp : Format.formatter -> t -> unit
