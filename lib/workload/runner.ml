module Pid = Acfc_core.Pid
module Params = Acfc_disk.Params

module Spec = struct
  (* [manager] names a replacement policy from the unified registry
     ({!Acfc_policy.Registry}) to install as this workload's live
     [fbehavior] manager; [None] leaves replacement to the kernel (and
     to whatever Advise calls a smart app makes itself). *)
  type t = { app : App.t; smart : bool; disk : int; manager : string option }

  let make ?(smart = true) ?(disk = 0) ?manager app = { app; smart; disk; manager }
end

type app_result = {
  app_name : string;
  pid : Pid.t;
  elapsed : float;
  disk_reads : int;
  disk_writes : int;
  block_ios : int;
  cache_hits : int;
  cache_misses : int;
}

type t = {
  apps : app_result list;
  makespan : float;
  total_ios : int;
  cache_hits : int;
  cache_misses : int;
  overrules : int;
  placeholders_created : int;
  placeholders_used : int;
  engine_events : int;
}

let blocks_of_mb mb = int_of_float (mb *. 1024.0 *. 1024.0 /. float_of_int Params.block_bytes)

let pp ppf t =
  Format.fprintf ppf "makespan %.1fs, %d block I/Os@\n" t.makespan t.total_ios;
  List.iter
    (fun a ->
      Format.fprintf ppf "  %-8s %7.1fs  ios=%-6d (r=%d w=%d) hits=%d misses=%d@\n"
        a.app_name a.elapsed a.block_ios a.disk_reads a.disk_writes a.cache_hits
        a.cache_misses)
    t.apps
