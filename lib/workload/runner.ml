open Acfc_sim
module Config = Acfc_core.Config
module Control = Acfc_core.Control
module Pid = Acfc_core.Pid
module Cache = Acfc_core.Cache
module Disk = Acfc_disk.Disk
module Params = Acfc_disk.Params

module Spec = struct
  type t = { app : App.t; smart : bool; disk : int }

  let make ?(smart = true) ?(disk = 0) app = { app; smart; disk }
end

type app_result = {
  app_name : string;
  pid : Pid.t;
  elapsed : float;
  disk_reads : int;
  disk_writes : int;
  block_ios : int;
  cache_hits : int;
  cache_misses : int;
}

type t = {
  apps : app_result list;
  makespan : float;
  total_ios : int;
  cache_hits : int;
  cache_misses : int;
  overrules : int;
  placeholders_created : int;
  placeholders_used : int;
  engine_events : int;
}

let blocks_of_mb mb = int_of_float (mb *. 1024.0 *. 1024.0 /. float_of_int Params.block_bytes)

let run ?(seed = 0) ?(disks = [ Params.rz56; Params.rz26 ]) ?disk_sched
    ?(update_interval = 30.0) ?hit_cost ?io_cpu_cost ?write_cluster ?readahead
    ?(scattered_layout = false) ?revocation ?shared_files ?tracer ?obs ~cache_blocks
    ~alloc_policy specs =
  if specs = [] then invalid_arg "Runner.run: no applications";
  let engine = Engine.create () in
  let rng = Rng.create seed in
  let bus = Acfc_disk.Bus.create engine () in
  let disk_array =
    Array.of_list
      (List.map (fun p -> Disk.create engine ~bus ~rng:(Rng.split rng) ?sched:disk_sched p) disks)
  in
  List.iter
    (fun spec ->
      if spec.Spec.disk < 0 || spec.Spec.disk >= Array.length disk_array then
        invalid_arg "Runner.run: disk index out of range")
    specs;
  let cpu = Resource.create engine ~name:"cpu" ~servers:1 () in
  let config =
    Config.make ~alloc_policy ?revocation ?shared_files ~capacity_blocks:cache_blocks ()
  in
  let layout = if scattered_layout then `Scattered (Rng.split rng) else `Packed in
  let fs =
    Acfc_fs.Fs.create engine ~config ~cpu ?hit_cost ?io_cpu_cost ?write_cluster
      ?readahead ~layout ()
  in
  let cache = Acfc_fs.Fs.cache fs in
  (match tracer with Some f -> Cache.set_tracer cache (Some f) | None -> ());
  (* Thread the observability sink through every layer of the machine.
     The engine goes first: it points the sink's clock at virtual time,
     so all later events carry simulated timestamps. *)
  (match obs with
  | None -> ()
  | Some sink ->
    Engine.set_obs engine (Some sink);
    Cache.set_obs cache (Some sink);
    Acfc_fs.Fs.set_obs fs (Some sink);
    Acfc_disk.Bus.set_obs bus (Some sink);
    Array.iter (fun d -> Disk.set_obs d (Some sink)) disk_array;
    let m = Acfc_obs.Sink.metrics sink in
    List.iteri
      (fun i spec ->
        let pid = Pid.make i in
        let prefix = Printf.sprintf "app.%d.%s" i spec.Spec.app.App.name in
        Acfc_obs.Metrics.gauge m (prefix ^ ".hits") (fun () ->
            float_of_int (Cache.pid_hits cache pid));
        Acfc_obs.Metrics.gauge m (prefix ^ ".misses") (fun () ->
            float_of_int (Cache.pid_misses cache pid));
        Acfc_obs.Metrics.gauge m (prefix ^ ".hit_ratio") (fun () ->
            let h = Cache.pid_hits cache pid and m = Cache.pid_misses cache pid in
            if h + m = 0 then 0.0 else float_of_int h /. float_of_int (h + m));
        Acfc_obs.Metrics.gauge m (prefix ^ ".block_ios") (fun () ->
            float_of_int (Acfc_fs.Fs.pid_block_ios fs pid)))
      specs);
  let stop_daemon = Acfc_fs.Fs.spawn_update_daemon fs ~interval:update_interval () in
  let finish_times = Array.make (List.length specs) 0.0 in
  let done_ivars =
    List.mapi
      (fun i spec ->
        let pid = Pid.make i in
        let control =
          if spec.Spec.smart then
            match Control.attach cache pid with
            | Ok c -> Some c
            | Error e ->
              failwith ("Runner: manager registration failed: " ^ Acfc_core.Error.to_string e)
          else None
        in
        let env =
          {
            Env.engine;
            fs;
            pid;
            control;
            cpu = Some cpu;
            rng = Rng.split rng;
          }
        in
        let iv = Ivar.create engine in
        Engine.spawn engine ~name:spec.Spec.app.App.name (fun () ->
            spec.Spec.app.App.run env ~disk:disk_array.(spec.Spec.disk);
            finish_times.(i) <- Engine.now engine;
            Ivar.fill iv ());
        iv)
      specs
  in
  Engine.spawn engine ~name:"coordinator" (fun () ->
      List.iter Ivar.read done_ivars;
      (* Flush what the applications left dirty so write I/Os are fully
         accounted, then let the update daemon exit. *)
      ignore (Acfc_fs.Fs.sync fs);
      stop_daemon ());
  Engine.run engine;
  let apps =
    List.mapi
      (fun i spec ->
        let pid = Pid.make i in
        {
          app_name = spec.Spec.app.App.name;
          pid;
          elapsed = finish_times.(i);
          disk_reads = Acfc_fs.Fs.pid_disk_reads fs pid;
          disk_writes = Acfc_fs.Fs.pid_disk_writes fs pid;
          block_ios = Acfc_fs.Fs.pid_block_ios fs pid;
          cache_hits = Cache.pid_hits cache pid;
          cache_misses = Cache.pid_misses cache pid;
        })
      specs
  in
  {
    apps;
    makespan = Array.fold_left Float.max 0.0 finish_times;
    total_ios = Acfc_fs.Fs.total_block_ios fs;
    cache_hits = Cache.hits cache;
    cache_misses = Cache.misses cache;
    overrules = Cache.overrule_count cache;
    placeholders_created = Cache.placeholders_created cache;
    placeholders_used = Cache.placeholders_used cache;
    engine_events = Engine.events_processed engine;
  }

let pp ppf t =
  Format.fprintf ppf "makespan %.1fs, %d block I/Os@\n" t.makespan t.total_ios;
  List.iter
    (fun a ->
      Format.fprintf ppf "  %-8s %7.1fs  ios=%-6d (r=%d w=%d) hits=%d misses=%d@\n"
        a.app_name a.elapsed a.block_ios a.disk_reads a.disk_writes a.cache_hits
        a.cache_misses)
    t.apps
