module Wir = Acfc_wir.Wir

let object_files = 80

let file_blocks = 40

let symbol_blocks = 12  (* blocks 0..11: header + symbol table *)

let output_blocks = 1024

let cpu_per_block = 0.0113

(* Slot layout: the 80 objects first, then the output image. *)
let output_slot = object_files

let program =
  let opens =
    List.init object_files (fun i ->
        Wir.open_file ~name:(Printf.sprintf "obj%02d.o" i) ~size_blocks:file_blocks ())
    @ [
        Wir.open_file ~name:"vmunix" ~size_blocks:0 ~reserve_blocks:output_blocks ();
      ]
  in
  (* Pass 1: headers and symbol tables. *)
  let pass1 =
    List.init object_files (fun i ->
        Wir.read ~cpu:cpu_per_block ~file:i ~first:0 ~count:symbol_blocks ())
  in
  (* Pass 2: full relocation scan; object data is consumed exactly once
     and freed as soon as each block has been read. *)
  let pass2 =
    List.concat
      (List.init object_files (fun i ->
           [
             Wir.read ~cpu:cpu_per_block ~file:i ~first:0 ~count:symbol_blocks ();
             Wir.read ~cpu:cpu_per_block ~done_with:true ~file:i ~first:symbol_blocks
               ~count:(file_blocks - symbol_blocks) ();
           ]))
  in
  (* Emit the linked image; written blocks are also done-with. *)
  let emit =
    [
      Wir.write
        ~cpu:(cpu_per_block /. 2.0)
        ~done_with:true ~file:output_slot ~first:0 ~count:output_blocks ();
    ]
  in
  Wir.make ~name:"ldk" ~category:"access-once" (opens @ pass1 @ pass2 @ emit)

let ldk = App.of_program program
