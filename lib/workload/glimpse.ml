module Policy = Acfc_core.Policy
module Wir = Acfc_wir.Wir

let index_files = [ ".glimpse_index"; ".glimpse_partitions"; ".glimpse_filenames"; ".glimpse_statistics" ]

let index_blocks_per_file = 64  (* 4 x 64 = 256 blocks = 2 MB of indexes *)

let partitions = 64

let partition_blocks = 80  (* 64 x 80 = 5120 blocks = 40 MB of articles *)

let queries = 5

let partitions_per_query = 26

let cpu_per_block = 0.0082

(* Slot layout: the four indexes first, then the 64 partitions. *)
let n_indexes = List.length index_files

let part_slot p = n_indexes + p

let program =
  let opens =
    List.map
      (fun name -> Wir.open_file ~name ~size_blocks:index_blocks_per_file ())
      index_files
    @ List.init partitions (fun i ->
          Wir.open_file
            ~name:(Printf.sprintf "partition.%02d" i)
            ~size_blocks:partition_blocks ())
  in
  (* Strategy: indexes at priority 1, MRU at both levels. *)
  let strategy =
    List.init n_indexes (fun i -> Wir.set_priority ~file:i ~prio:1)
    @ [ Wir.set_policy ~prio:1 Policy.Mru; Wir.set_policy ~prio:0 Policy.Mru ]
  in
  (* Each query scans all four indexes, then its keyword-dependent
     partition subset in partition order (the paper: "several groups of
     articles are accessed in the same order"). (7p + 13q) mod 64
     scatters each query's selection across the partition space while
     consecutive queries still share half their partitions. The subset
     differs per query, so queries unroll instead of looping. *)
  let query q =
    List.init n_indexes (fun i ->
        Wir.read ~cpu:cpu_per_block ~file:i ~first:0 ~count:index_blocks_per_file ())
    @ List.concat
        (List.init partitions (fun p ->
             if ((7 * p) + (13 * q)) mod partitions < partitions_per_query then
               [
                 Wir.read ~cpu:cpu_per_block ~file:(part_slot p) ~first:0
                   ~count:partition_blocks ();
               ]
             else []))
  in
  Wir.make ~name:"gli" ~category:"hot/cold"
    (opens @ strategy @ List.concat (List.init queries query))

let gli = App.of_program program
