module Wir = Acfc_wir.Wir

type body =
  | Program of Wir.t
  | Closure of (Env.t -> disk:Acfc_disk.Disk.t -> unit)

type t = { name : string; category : string; body : body }

let make ~name ~category run = { name; category; body = Closure run }

let of_program p = { name = p.Wir.name; category = p.Wir.category; body = Program p }

let program t = match t.body with Program p -> Some p | Closure _ -> None

let run t env ~disk =
  match t.body with
  | Program p -> Wir.exec p env ~disk
  | Closure f -> f env ~disk
