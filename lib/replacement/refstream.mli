(** The canonical block-reference-stream representation.

    Three things in this repository produce or consume streams of block
    references: the policy lab's bare traces ({!Trace.t}, just blocks),
    the live {!Recorder} (blocks annotated with the referencing process
    and hit/prefetch flags), and the workload IR's fast-forwarded
    demand stream ([Acfc_wir.Wir.references], bare blocks again). This
    module is the one representation they all meet at — an array of
    annotated {!entry} values — with conversions in both directions and
    the {e single} text codec for trace files (the format the
    [acfc-run record] / [policies -f] round-trip uses).

    A {!Trace.t} is the lossy projection ({!demand}); {!of_blocks}
    lifts a bare trace back by marking every reference a demand miss
    (the flags only matter for reporting — replacement studies replay
    the block sequence). *)

type entry = {
  pid : Acfc_core.Pid.t;
  block : Acfc_core.Block.t;
  hit : bool;
  prefetch : bool;
}

type t = entry array

val demand : ?pid:Acfc_core.Pid.t -> ?include_prefetch:bool -> t -> Trace.t
(** The block sequence, optionally restricted to one process.
    [include_prefetch] defaults to false: a replacement study wants the
    demand references, not the prefetcher's. *)

val of_blocks : ?pid:Acfc_core.Pid.t -> Trace.t -> t
(** Lift a bare trace: every reference becomes a demand ([prefetch] =
    false) miss by [pid] (default pid 0). *)

(** {2 Text format}

    One line per reference, ["<pid> <file> <index> <h|m> <d|p>"],
    preceded by the {!magic} header line. *)

val magic : string
(** ["acfc-trace-v1"]. *)

val render : t -> string
(** The complete trace file as one string — the exact bytes {!save}
    writes, and the canonical content the artifact store digests. *)

val parse : string -> t
(** Inverse of {!render}. Raises [Failure] on a malformed trace. *)

val save : t -> out_channel -> unit

val load : in_channel -> t
(** Raises [Failure] on a malformed trace file. *)
