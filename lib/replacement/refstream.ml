module Block = Acfc_core.Block
module Pid = Acfc_core.Pid

type entry = { pid : Pid.t; block : Block.t; hit : bool; prefetch : bool }

type t = entry array

let demand ?pid ?(include_prefetch = false) t =
  let wanted e =
    (include_prefetch || not e.prefetch)
    && match pid with Some p -> Pid.equal p e.pid | None -> true
  in
  Array.to_list t
  |> List.filter wanted
  |> List.map (fun e -> e.block)
  |> Array.of_list

let of_blocks ?(pid = Pid.make 0) trace =
  Array.map (fun block -> { pid; block; hit = false; prefetch = false }) trace

let magic = "acfc-trace-v1"

let render t =
  let b = Buffer.create (64 + (Array.length t * 16)) in
  Buffer.add_string b magic;
  Buffer.add_char b '\n';
  Array.iter
    (fun e ->
      Buffer.add_string b
        (Printf.sprintf "%d %d %d %c %c\n" (Pid.to_int e.pid) (Block.file e.block)
           (Block.index e.block)
           (if e.hit then 'h' else 'm')
           (if e.prefetch then 'p' else 'd')))
    t;
  Buffer.contents b

let save t oc = output_string oc (render t)

let parse_entry line =
  match String.split_on_char ' ' line with
  | [ pid; file; index; hm; dp ] ->
    let int_of s =
      match int_of_string_opt s with
      | Some n -> n
      | None -> failwith "Refstream.load: bad integer"
    in
    let hit =
      match hm with
      | "h" -> true
      | "m" -> false
      | _ -> failwith "Refstream.load: bad hit flag"
    in
    let prefetch =
      match dp with
      | "p" -> true
      | "d" -> false
      | _ -> failwith "Refstream.load: bad prefetch flag"
    in
    {
      pid = Pid.make (int_of pid);
      block = Block.make ~file:(int_of file) ~index:(int_of index);
      hit;
      prefetch;
    }
  | _ -> failwith "Refstream.load: bad line"

let parse s =
  match String.split_on_char '\n' s with
  | header :: rest when header = magic ->
    rest
    |> List.filter (fun line -> line <> "")
    |> List.map parse_entry
    |> Array.of_list
  | _ :: _ -> failwith "Refstream.load: bad trace header"
  | [] -> failwith "Refstream.load: empty file"

let load ic =
  let entries = ref [] in
  (match input_line ic with
  | header when header = magic -> ()
  | _ -> failwith "Refstream.load: bad trace header"
  | exception End_of_file -> failwith "Refstream.load: empty file");
  (try
     while true do
       let line = input_line ic in
       if line <> "" then entries := parse_entry line :: !entries
     done
   with End_of_file -> ());
  Array.of_list (List.rev !entries)
