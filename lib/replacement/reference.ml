(* Naive reference implementations of the indexed policies.

   These are the pre-indexing linear-scan algorithms, kept so that the
   equivalence tests and the bench [check] replay can prove the indexed
   LRU-2 and OPT in {!Policies} choose the same victims. Both scans use
   the same deterministic total order as their indexed counterparts:
   LRU-2's (penultimate, last) key was already total (last-reference
   positions are unique); OPT's never-used-again tier is broken by the
   block identity, where the old implementation depended on hash-table
   iteration order (any choice in that tier yields the same miss
   count). O(n) per miss — do not use outside tests and benches. *)

module Block = Acfc_core.Block

module Lru_2 = struct
  type t = { history : (Block.t, int * int) Hashtbl.t }

  let name = "LRU-2-REF"

  let never = -1

  let init ~capacity:_ _trace = { history = Hashtbl.create 1024 }

  let record t ~pos block =
    let last, _ = Option.value (Hashtbl.find_opt t.history block) ~default:(never, never) in
    Hashtbl.replace t.history block (pos, last)

  let hit t ~pos block = record t ~pos block

  let choose_victim t ~pos:_ ~missing:_ =
    let best = ref None in
    Hashtbl.iter
      (fun block (last, penultimate) ->
        let better =
          match !best with
          | None -> true
          | Some (_, (blast, bpenultimate)) ->
            penultimate < bpenultimate
            || (penultimate = bpenultimate && last < blast)
        in
        if better then best := Some (block, (last, penultimate)))
      t.history;
    match !best with Some (block, _) -> block | None -> failwith "LRU-2-REF: empty"

  let inserted t ~pos block = record t ~pos block

  let evicted t block = Hashtbl.remove t.history block
end

module Opt = struct
  type t = {
    future : (Block.t, int list ref) Hashtbl.t;
    resident : (Block.t, unit) Hashtbl.t;
  }

  let name = "OPT-REF"

  let init ~capacity:_ trace =
    let future = Hashtbl.create 1024 in
    Array.iteri
      (fun pos block ->
        match Hashtbl.find_opt future block with
        | Some l -> l := pos :: !l
        | None -> Hashtbl.replace future block (ref [ pos ]))
      trace;
    Hashtbl.iter (fun _ l -> l := List.rev !l) future;
    { future; resident = Hashtbl.create 1024 }

  let consume t ~pos block =
    let l = Hashtbl.find t.future block in
    match !l with
    | p :: rest when p = pos -> l := rest
    | _ -> failwith "OPT-REF: trace position mismatch"

  let hit t ~pos block = consume t ~pos block

  let next_use t block =
    match !(Hashtbl.find t.future block) with [] -> max_int | p :: _ -> p

  let choose_victim t ~pos:_ ~missing:_ =
    let best = ref None in
    Hashtbl.iter
      (fun block () ->
        let use = next_use t block in
        let better =
          match !best with
          | None -> true
          | Some (bblock, buse) ->
            use > buse || (use = buse && Block.compare block bblock > 0)
        in
        if better then best := Some (block, use))
      t.resident;
    match !best with Some (block, _) -> block | None -> failwith "OPT-REF: empty"

  let inserted t ~pos block =
    consume t ~pos block;
    Hashtbl.replace t.resident block ()

  let evicted t block = Hashtbl.remove t.resident block
end

(* Drive two policies through the same reference stream in lockstep,
   comparing every eviction decision. The first policy's victim is the
   one applied to both (they must agree, so this only matters after a
   divergence is already flagged). Returns the first divergence as
   [(trace position, first's victim, second's victim)]. *)
let lockstep (module A : Policy_sim.POLICY) (module B : Policy_sim.POLICY) ~capacity
    trace =
  if capacity <= 0 then invalid_arg "Reference.lockstep: capacity must be positive";
  let a = A.init ~capacity trace and b = B.init ~capacity trace in
  let resident = Hashtbl.create (2 * capacity) in
  let divergence = ref None in
  (try
     Array.iteri
       (fun pos block ->
         if Hashtbl.mem resident block then begin
           A.hit a ~pos block;
           B.hit b ~pos block
         end
         else begin
           if Hashtbl.length resident >= capacity then begin
             let va = A.choose_victim a ~pos ~missing:block in
             let vb = B.choose_victim b ~pos ~missing:block in
             if not (Block.equal va vb) then begin
               divergence := Some (pos, va, vb);
               raise Exit
             end;
             Hashtbl.remove resident va;
             A.evicted a va;
             B.evicted b va
           end;
           Hashtbl.replace resident block ();
           A.inserted a ~pos block;
           B.inserted b ~pos block
         end)
       trace
   with Exit -> ());
  !divergence
