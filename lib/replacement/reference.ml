(* Naive record-based reference twins of the core-ported policies.

   One twin per stock policy, each a deliberately boring list/scan
   implementation, kept so the equivalence tests and the bench [check]
   replay can prove the event-core ports in {!Policies} choose the
   same victims. The scans use the same deterministic total orders as
   their indexed counterparts: LRU-2's (penultimate, last) key was
   already total (last-reference positions are unique); OPT's
   never-used-again tier is broken by the block identity (any choice in
   that tier yields the same miss count); RAND's twin replays the same
   swap-with-last discipline over a plain list so the shared RNG draw
   sequence lands on the same block. O(n) per miss — do not use outside
   tests and benches. *)

module Block = Acfc_core.Block

(* Recency twin for LRU/MRU: most recent first, O(n) moves. *)
module Recency_ref = struct
  type t = { mutable order : Block.t list }

  let init ~capacity:_ _trace = { order = [] }

  let hit t ~pos:_ block =
    t.order <- block :: List.filter (fun b -> not (Block.equal b block)) t.order

  let inserted t ~pos:_ block = t.order <- block :: t.order

  let evicted t block =
    t.order <- List.filter (fun b -> not (Block.equal b block)) t.order
end

module Lru = struct
  include Recency_ref

  let name = "LRU-REF"

  let choose_victim t ~pos:_ ~missing:_ =
    match List.rev t.order with
    | oldest :: _ -> oldest
    | [] -> failwith "LRU-REF: empty"
end

module Mru = struct
  include Recency_ref

  let name = "MRU-REF"

  let choose_victim t ~pos:_ ~missing:_ =
    match t.order with newest :: _ -> newest | [] -> failwith "MRU-REF: empty"
end

module Fifo = struct
  type t = { mutable order : Block.t list }  (* oldest admission first *)

  let name = "FIFO-REF"

  let init ~capacity:_ _trace = { order = [] }

  let hit _ ~pos:_ _ = ()

  let choose_victim t ~pos:_ ~missing:_ =
    match t.order with oldest :: _ -> oldest | [] -> failwith "FIFO-REF: empty"

  let inserted t ~pos:_ block = t.order <- t.order @ [ block ]

  let evicted t block =
    t.order <- List.filter (fun b -> not (Block.equal b block)) t.order
end

module Clock = struct
  type t = {
    mutable ring : Block.t list;  (* hand position first *)
    referenced : (Block.t, unit) Hashtbl.t;
  }

  let name = "CLOCK-REF"

  let init ~capacity:_ _trace = { ring = []; referenced = Hashtbl.create 64 }

  let hit t ~pos:_ block = Hashtbl.replace t.referenced block ()

  let rec choose_victim t ~pos ~missing =
    match t.ring with
    | [] -> failwith "CLOCK-REF: empty"
    | block :: rest ->
      if Hashtbl.mem t.referenced block then begin
        Hashtbl.remove t.referenced block;
        t.ring <- rest @ [ block ];
        choose_victim t ~pos ~missing
      end
      else block

  let inserted t ~pos:_ block = t.ring <- t.ring @ [ block ]

  let evicted t block =
    t.ring <- List.filter (fun b -> not (Block.equal b block)) t.ring;
    Hashtbl.remove t.referenced block
end

module Rand = struct
  (* Same seed, same draws, same swap-with-last slot discipline as the
     core — expressed over a plain list indexed positionally. *)
  type t = { rng : Acfc_sim.Rng.t; mutable slots : Block.t list }

  let name = "RAND-REF"

  let init ~capacity _trace =
    { rng = Acfc_sim.Rng.create (capacity + 7); slots = [] }

  let hit _ ~pos:_ _ = ()

  let choose_victim t ~pos:_ ~missing:_ =
    match t.slots with
    | [] -> failwith "RAND-REF: empty"
    | slots -> List.nth slots (Acfc_sim.Rng.int t.rng (List.length slots))

  let inserted t ~pos:_ block = t.slots <- t.slots @ [ block ]

  let evicted t block =
    match List.rev t.slots with
    | [] -> ()
    | last :: _ when not (List.exists (Block.equal block) t.slots) -> ignore last
    | last :: _ ->
      let filled =
        List.mapi
          (fun _ b -> if Block.equal b block then last else b)
          t.slots
      in
      (* Drop the (now duplicated) final slot. *)
      let n = List.length filled - 1 in
      t.slots <- List.filteri (fun i _ -> i < n) filled
end

module Two_q = struct
  type t = {
    kin : int;
    kout : int;
    mutable a1in : Block.t list;  (* oldest first *)
    mutable am : Block.t list;  (* most recent first *)
    mutable a1out : Block.t list;  (* oldest ghost first *)
  }

  let name = "2Q-REF"

  let init ~capacity _trace =
    {
      kin = Stdlib.max 1 (capacity / 4);
      kout = Stdlib.max 1 (capacity / 2);
      a1in = [];
      am = [];
      a1out = [];
    }

  let hit t ~pos:_ block =
    if List.exists (Block.equal block) t.am then
      t.am <- block :: List.filter (fun b -> not (Block.equal b block)) t.am

  let choose_victim t ~pos:_ ~missing:_ =
    if List.length t.a1in > t.kin || t.am = [] then
      match t.a1in with
      | oldest :: _ -> oldest
      | [] -> failwith "2Q-REF: empty"
    else
      match List.rev t.am with oldest :: _ -> oldest | [] -> assert false

  (* A ghost entry survives promotion (it only leaves A1out by aging
     past kout), exactly like the indexed ghost table. *)
  let inserted t ~pos:_ block =
    if List.exists (Block.equal block) t.a1out then t.am <- block :: t.am
    else t.a1in <- t.a1in @ [ block ]

  let evicted t block =
    if List.exists (Block.equal block) t.a1in then begin
      t.a1in <- List.filter (fun b -> not (Block.equal b block)) t.a1in;
      t.a1out <- t.a1out @ [ block ];
      let overflow = List.length t.a1out - t.kout in
      if overflow > 0 then t.a1out <- List.filteri (fun i _ -> i >= overflow) t.a1out
    end
    else t.am <- List.filter (fun b -> not (Block.equal b block)) t.am
end

module Lru_2 = struct
  type t = { history : (Block.t, int * int) Hashtbl.t }

  let name = "LRU-2-REF"

  let never = -1

  let init ~capacity:_ _trace = { history = Hashtbl.create 1024 }

  let record t ~pos block =
    let last, _ = Option.value (Hashtbl.find_opt t.history block) ~default:(never, never) in
    Hashtbl.replace t.history block (pos, last)

  let hit t ~pos block = record t ~pos block

  let choose_victim t ~pos:_ ~missing:_ =
    let best = ref None in
    Hashtbl.iter
      (fun block (last, penultimate) ->
        let better =
          match !best with
          | None -> true
          | Some (_, (blast, bpenultimate)) ->
            penultimate < bpenultimate
            || (penultimate = bpenultimate && last < blast)
        in
        if better then best := Some (block, (last, penultimate)))
      t.history;
    match !best with Some (block, _) -> block | None -> failwith "LRU-2-REF: empty"

  let inserted t ~pos block = record t ~pos block

  let evicted t block = Hashtbl.remove t.history block
end

module Opt = struct
  type t = {
    future : (Block.t, int list ref) Hashtbl.t;
    resident : (Block.t, unit) Hashtbl.t;
  }

  let name = "OPT-REF"

  let init ~capacity:_ trace =
    let future = Hashtbl.create 1024 in
    Array.iteri
      (fun pos block ->
        match Hashtbl.find_opt future block with
        | Some l -> l := pos :: !l
        | None -> Hashtbl.replace future block (ref [ pos ]))
      trace;
    Hashtbl.iter (fun _ l -> l := List.rev !l) future;
    { future; resident = Hashtbl.create 1024 }

  let consume t ~pos block =
    let l = Hashtbl.find t.future block in
    match !l with
    | p :: rest when p = pos -> l := rest
    | _ -> failwith "OPT-REF: trace position mismatch"

  let hit t ~pos block = consume t ~pos block

  let next_use t block =
    match !(Hashtbl.find t.future block) with [] -> max_int | p :: _ -> p

  let choose_victim t ~pos:_ ~missing:_ =
    let best = ref None in
    Hashtbl.iter
      (fun block () ->
        let use = next_use t block in
        let better =
          match !best with
          | None -> true
          | Some (bblock, buse) ->
            use > buse || (use = buse && Block.compare block bblock > 0)
        in
        if better then best := Some (block, use))
      t.resident;
    match !best with Some (block, _) -> block | None -> failwith "OPT-REF: empty"

  let inserted t ~pos block =
    consume t ~pos block;
    Hashtbl.replace t.resident block ()

  let evicted t block = Hashtbl.remove t.resident block
end

(* Drive two policies through the same reference stream in lockstep,
   comparing every eviction decision. The first policy's victim is the
   one applied to both (they must agree, so this only matters after a
   divergence is already flagged). Returns the first divergence as
   [(trace position, first's victim, second's victim)]. *)
let lockstep (module A : Policy_sim.POLICY) (module B : Policy_sim.POLICY) ~capacity
    trace =
  if capacity <= 0 then invalid_arg "Reference.lockstep: capacity must be positive";
  let a = A.init ~capacity trace and b = B.init ~capacity trace in
  let resident = Hashtbl.create (2 * capacity) in
  let divergence = ref None in
  (try
     Array.iteri
       (fun pos block ->
         if Hashtbl.mem resident block then begin
           A.hit a ~pos block;
           B.hit b ~pos block
         end
         else begin
           if Hashtbl.length resident >= capacity then begin
             let va = A.choose_victim a ~pos ~missing:block in
             let vb = B.choose_victim b ~pos ~missing:block in
             if not (Block.equal va vb) then begin
               divergence := Some (pos, va, vb);
               raise Exit
             end;
             Hashtbl.remove resident va;
             A.evicted a va;
             B.evicted b va
           end;
           Hashtbl.replace resident block ();
           A.inserted a ~pos block;
           B.inserted b ~pos block
         end)
       trace
   with Exit -> ());
  !divergence
