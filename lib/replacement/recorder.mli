(** Reference-trace recording and replay.

    The companion paper's methodology is trace-driven simulation; this
    module closes the loop with the live system: install {!tracer} on a
    running cache (or pass it to the workload runner), collect the
    demand reference stream, then replay it through {!Policy_sim} —
    or save it in a simple text format for later runs.

    Read-ahead misses are recorded but flagged, and excluded from
    {!to_trace} by default: a replacement study wants the demand
    references, not the prefetcher's.

    The recorder is an accumulating front-end over {!Refstream}, the
    canonical reference-stream representation: {!stream} snapshots the
    recording as a [Refstream.t], and {!save}/{!load} are Refstream's
    text codec. *)

type t

type entry = Refstream.entry = {
  pid : Acfc_core.Pid.t;
  block : Acfc_core.Block.t;
  hit : bool;
  prefetch : bool;
}

val create : unit -> t

val tracer : t -> Acfc_core.Event.t -> unit
(** The callback to install with [Cache.set_tracer] (or compose with
    another tracer). Only hit/miss events are recorded. *)

val length : t -> int

val entries : t -> entry array
(** In reference order. *)

val stream : t -> Refstream.t
(** Synonym for {!entries}: the recording as the canonical
    reference-stream type. *)

val to_trace :
  ?pid:Acfc_core.Pid.t -> ?include_prefetch:bool -> t -> Trace.t
(** The recorded reference stream, optionally restricted to one process.
    [include_prefetch] defaults to false. *)

val save : t -> out_channel -> unit
(** One line per reference: ["<pid> <file> <index> <h|m> <d|p>"],
    preceded by a header line. *)

val ingest :
  ?label:string ->
  t ->
  Acfc_store.Store.t ->
  (Acfc_store.Store.outcome, string) result
(** Ingest the recording into a content-addressed store — the bytes
    are exactly what {!save} writes, so the stored digest identifies
    the trace. [label] registers a resolution key (conventionally
    ["refstream:<scenario-hash>"]) for digest-free lookup. *)

val of_stream : Refstream.t -> t
(** A recorder pre-filled with an existing stream (e.g. one read back
    from a store), for code paths that expect a recording. *)

val load : in_channel -> t
(** Raises [Failure] on a malformed trace file. *)
