module Block = Acfc_core.Block
module Ilist = Acfc_core.Ilist
module Itbl = Acfc_core.Itbl

(* One recency list of blocks on columnar storage: free-listed slots
   over an {!Ilist} store with an {!Itbl} index keyed by {!Block.pack}.
   The policy-lab counterpart of the cache core's Ctab — every list
   operation is O(1) and allocation-free at steady state, where the
   old [Block.t Dll.t] + node Hashtbl boxed a node per insert and
   hashed a record key per touch. *)
module Islab = struct
  type t = {
    store : Ilist.store;
    list : Ilist.t;
    tbl : Itbl.t; (* Block.pack -> slot *)
    mutable blocks : Block.t array; (* slot -> block *)
    mutable free : int array; (* stack of free slots *)
    mutable nfree : int;
  }

  let dummy = Block.make ~file:0 ~index:0

  let create n =
    let n = Stdlib.max 16 n in
    {
      store = Ilist.make_store n;
      list = Ilist.create ();
      tbl = Itbl.create n;
      blocks = Array.make n dummy;
      free = Array.init n (fun i -> n - 1 - i);
      nfree = n;
    }

  let grow t =
    let old = Array.length t.blocks in
    let cap = 2 * old in
    Ilist.grow_store t.store cap;
    let blocks = Array.make cap dummy in
    Array.blit t.blocks 0 blocks 0 old;
    t.blocks <- blocks;
    let free = Array.make cap 0 in
    Array.blit t.free 0 free 0 t.nfree;
    for i = 0 to old - 1 do
      free.(t.nfree + i) <- old + i
    done;
    t.free <- free;
    t.nfree <- t.nfree + old

  let slot t block =
    let s = Itbl.find t.tbl (Block.pack block) in
    if s < 0 then failwith "Islab: block not resident";
    s

  let push_front t block =
    if t.nfree = 0 then grow t;
    let s = t.free.(t.nfree - 1) in
    t.nfree <- t.nfree - 1;
    t.blocks.(s) <- block;
    Itbl.set t.tbl (Block.pack block) s;
    Ilist.push_front t.store t.list s

  let move_front t block = Ilist.move_front t.store t.list (slot t block)

  let remove t block =
    let key = Block.pack block in
    let s = Itbl.find t.tbl key in
    if s >= 0 then begin
      Ilist.remove t.store t.list s;
      Itbl.remove t.tbl key;
      t.free.(t.nfree) <- s;
      t.nfree <- t.nfree + 1
    end

  let is_empty t = Ilist.is_empty t.list

  let front t = t.blocks.(Ilist.front t.list)

  let back t = t.blocks.(Ilist.back t.list)
end

(* Shared recency-list state for LRU and MRU. *)
module Recency = struct
  type t = Islab.t

  let init ~capacity _trace = Islab.create capacity

  let hit t ~pos:_ block = Islab.move_front t block

  let inserted t ~pos:_ block = Islab.push_front t block

  let evicted t block = Islab.remove t block

  let end_victim t ~front =
    if Islab.is_empty t then failwith "Recency: empty list"
    else if front then Islab.front t
    else Islab.back t
end

module Lru = struct
  include Recency

  let name = "LRU"

  let choose_victim t ~pos:_ ~missing:_ = end_victim t ~front:false
end

module Mru = struct
  include Recency

  let name = "MRU"

  let choose_victim t ~pos:_ ~missing:_ = end_victim t ~front:true
end

module Fifo = struct
  type t = { order : Block.t Queue.t; resident : (Block.t, unit) Hashtbl.t }

  let name = "FIFO"

  let init ~capacity:_ _trace = { order = Queue.create (); resident = Hashtbl.create 1024 }

  let hit _ ~pos:_ _ = ()

  let choose_victim t ~pos:_ ~missing:_ =
    (* Entries for already-evicted blocks never occur: FIFO pops exactly
       the block it reports, and the framework evicts it. *)
    Queue.pop t.order

  let inserted t ~pos:_ block =
    Queue.push block t.order;
    Hashtbl.replace t.resident block ()

  let evicted t block = Hashtbl.remove t.resident block
end

module Clock = struct
  type t = { ring : Block.t Queue.t; referenced : (Block.t, unit) Hashtbl.t }

  let name = "CLOCK"

  let init ~capacity:_ _trace = { ring = Queue.create (); referenced = Hashtbl.create 1024 }

  let hit t ~pos:_ block = Hashtbl.replace t.referenced block ()

  let rec choose_victim t ~pos ~missing =
    let block = Queue.pop t.ring in
    if Hashtbl.mem t.referenced block then begin
      (* Second chance: clear the bit and move the hand on. *)
      Hashtbl.remove t.referenced block;
      Queue.push block t.ring;
      choose_victim t ~pos ~missing
    end
    else block

  let inserted t ~pos:_ block = Queue.push block t.ring

  let evicted t block = Hashtbl.remove t.referenced block
end

(* Victim orderings for the indexed LRU-2 and OPT below. Both keys are
   total orders: last-reference positions are unique across resident
   blocks (each trace position references exactly one block), and the
   OPT key carries the block identity for the never-used-again tier. *)
module Pair_map = Map.Make (struct
  type t = int * int

  let compare (a1, b1) (a2, b2) =
    match Int.compare a1 a2 with 0 -> Int.compare b1 b2 | c -> c
end)

module Lru_2 = struct
  (* history: positions of the last two references, most recent first;
     victims: the same entries keyed by (penultimate, last) so the
     eviction choice — oldest penultimate reference, ties broken by the
     older last reference — is the map's minimum binding instead of a
     full-table scan per miss. *)
  type t = {
    history : (Block.t, int * int) Hashtbl.t;
    mutable victims : Block.t Pair_map.t;
  }

  let name = "LRU-2"

  let never = -1

  let init ~capacity:_ _trace =
    { history = Hashtbl.create 1024; victims = Pair_map.empty }

  let record t ~pos block =
    let last, penultimate =
      Option.value (Hashtbl.find_opt t.history block) ~default:(never, never)
    in
    if last <> never then t.victims <- Pair_map.remove (penultimate, last) t.victims;
    Hashtbl.replace t.history block (pos, last);
    t.victims <- Pair_map.add (last, pos) block t.victims

  let hit t ~pos block = record t ~pos block

  let choose_victim t ~pos:_ ~missing:_ =
    match Pair_map.min_binding_opt t.victims with
    | Some (_, block) -> block
    | None -> failwith "LRU-2: empty"

  let inserted t ~pos block = record t ~pos block

  let evicted t block =
    match Hashtbl.find_opt t.history block with
    | Some (last, penultimate) ->
      t.victims <- Pair_map.remove (penultimate, last) t.victims;
      Hashtbl.remove t.history block
    | None -> ()
end

module Rand = struct
  (* Swap-with-last dynamic array: uniform choice and eviction are both
     O(1), instead of materialising the resident list into a fresh array
     on every miss and filtering it on every eviction. The RNG draw
     sequence is unchanged, but the array order differs from the old
     insertion-ordered list, so individual victims (not the uniform
     distribution) differ from the pre-indexed implementation. *)
  type t = {
    rng : Acfc_sim.Rng.t;
    mutable arr : Block.t array;
    mutable n : int;
    index : (Block.t, int) Hashtbl.t;  (* block -> slot in [arr] *)
  }

  let name = "RAND"

  let init ~capacity _trace =
    {
      rng = Acfc_sim.Rng.create (capacity + 7);
      arr = [||];
      n = 0;
      index = Hashtbl.create 1024;
    }

  let hit _ ~pos:_ _ = ()

  let choose_victim t ~pos:_ ~missing:_ =
    if t.n = 0 then failwith "RAND: empty";
    t.arr.(Acfc_sim.Rng.int t.rng t.n)

  let inserted t ~pos:_ block =
    if t.n = Array.length t.arr then begin
      let cap = Stdlib.max 16 (2 * t.n) in
      let arr = Array.make cap block in
      Array.blit t.arr 0 arr 0 t.n;
      t.arr <- arr
    end;
    t.arr.(t.n) <- block;
    Hashtbl.replace t.index block t.n;
    t.n <- t.n + 1

  let evicted t block =
    match Hashtbl.find_opt t.index block with
    | None -> ()
    | Some i ->
      let last = t.n - 1 in
      let moved = t.arr.(last) in
      t.arr.(i) <- moved;
      Hashtbl.replace t.index moved i;
      Hashtbl.remove t.index block;
      t.n <- last
end

module Opt_victims = Set.Make (struct
  type t = int * Block.t  (* (next use, block) *)

  let compare (u1, b1) (u2, b2) =
    match Int.compare u1 u2 with 0 -> Block.compare b1 b2 | c -> c
end)

module Opt = struct
  type t = {
    (* For each block, the trace positions where it is referenced, in
       order, with the already-consumed prefix removed. *)
    future : (Block.t, int list ref) Hashtbl.t;
    resident : (Block.t, int) Hashtbl.t;  (* block -> its key in [victims] *)
    (* Resident blocks keyed by next use, so the farthest-future victim
       is the maximum element instead of a full-table scan per miss.
       Never-used-again blocks sit at max_int, tied; the block identity
       in the key makes the choice deterministic, and any choice among
       them yields the same miss count (none is referenced again). *)
    mutable victims : Opt_victims.t;
  }

  let name = "OPT"

  let init ~capacity:_ trace =
    let future = Hashtbl.create 1024 in
    Array.iteri
      (fun pos block ->
        match Hashtbl.find_opt future block with
        | Some l -> l := pos :: !l
        | None -> Hashtbl.replace future block (ref [ pos ]))
      trace;
    Hashtbl.iter (fun _ l -> l := List.rev !l) future;
    { future; resident = Hashtbl.create 1024; victims = Opt_victims.empty }

  let consume t ~pos block =
    let l = Hashtbl.find t.future block in
    match !l with
    | p :: rest when p = pos -> l := rest
    | _ -> failwith "OPT: trace position mismatch"

  let next_use t block =
    match !(Hashtbl.find t.future block) with [] -> max_int | p :: _ -> p

  let reindex t block use =
    Hashtbl.replace t.resident block use;
    t.victims <- Opt_victims.add (use, block) t.victims

  let hit t ~pos block =
    (* The stored key is the block's next use, which is this reference:
       drop it, consume the position, and re-key at the new next use. *)
    (match Hashtbl.find_opt t.resident block with
    | Some use -> t.victims <- Opt_victims.remove (use, block) t.victims
    | None -> failwith "OPT: hit on non-resident block");
    consume t ~pos block;
    reindex t block (next_use t block)

  let choose_victim t ~pos:_ ~missing:_ =
    match Opt_victims.max_elt_opt t.victims with
    | Some (_, block) -> block
    | None -> failwith "OPT: empty"

  let inserted t ~pos block =
    consume t ~pos block;
    reindex t block (next_use t block)

  let evicted t block =
    match Hashtbl.find_opt t.resident block with
    | Some use ->
      t.victims <- Opt_victims.remove (use, block) t.victims;
      Hashtbl.remove t.resident block
    | None -> ()
end

module Two_q = struct
  (* Simplified full 2Q (Johnson & Shasha, VLDB '94 — contemporaneous
     with the paper): new pages enter the FIFO probation queue A1in;
     pages re-referenced after leaving it (tracked by the ghost queue
     A1out) are promoted to the protected LRU queue Am. *)
  type queue = A1in | Am

  type t = {
    kin : int;  (* A1in capacity *)
    kout : int;  (* A1out ghost capacity *)
    a1in : Block.t Queue.t;
    am : Islab.t;
    where : (Block.t, queue) Hashtbl.t;  (* resident pages only *)
    a1out : Block.t Queue.t;  (* ghosts: identities only *)
    ghost : (Block.t, unit) Hashtbl.t;
  }

  let name = "2Q"

  let init ~capacity _trace =
    {
      kin = Stdlib.max 1 (capacity / 4);
      kout = Stdlib.max 1 (capacity / 2);
      a1in = Queue.create ();
      am = Islab.create capacity;
      where = Hashtbl.create 1024;
      a1out = Queue.create ();
      ghost = Hashtbl.create 1024;
    }

  let hit t ~pos:_ block =
    match Hashtbl.find_opt t.where block with
    | Some Am -> Islab.move_front t.am block
    | Some A1in -> ()  (* classic 2Q: probation hits do not promote *)
    | None -> assert false

  let remember_ghost t block =
    Queue.push block t.a1out;
    Hashtbl.replace t.ghost block ();
    while Queue.length t.a1out > t.kout do
      Hashtbl.remove t.ghost (Queue.pop t.a1out)
    done

  let choose_victim t ~pos:_ ~missing:_ =
    if Queue.length t.a1in > t.kin || Islab.is_empty t.am then begin
      let victim = Queue.pop t.a1in in
      remember_ghost t victim;
      victim
    end
    else Islab.back t.am

  let inserted t ~pos:_ block =
    if Hashtbl.mem t.ghost block then begin
      (* Seen recently: promote straight to the protected queue. *)
      Hashtbl.replace t.where block Am;
      Islab.push_front t.am block
    end
    else begin
      Hashtbl.replace t.where block A1in;
      Queue.push block t.a1in
    end

  let evicted t block =
    (match Hashtbl.find_opt t.where block with
    | Some Am -> Islab.remove t.am block
    | Some A1in | None -> ()  (* A1in victims were already popped *));
    Hashtbl.remove t.where block
end

let all : (module Policy_sim.POLICY) list =
  [
    (module Lru);
    (module Mru);
    (module Fifo);
    (module Clock);
    (module Lru_2);
    (module Two_q);
    (module Rand);
    (module Opt);
  ]

let by_name name =
  let target = String.uppercase_ascii name in
  List.find_opt (fun (module P : Policy_sim.POLICY) -> P.name = target) all
