(* Offline faces of the unified policy cores.

   Every policy lives in {!Acfc_policy.Cores} as an event-driven
   decision core; this module is the thin adapter that lets the
   trace-replay lab keep its {!Policy_sim.POLICY} view of them. The
   per-policy bookkeeping that used to be duplicated here (and diverged
   from the live manager path by construction) now exists exactly once —
   the live adapter over the same cores is {!Acfc_policy.Live}, and
   [test/test_policy_core.ml] asserts both adapters produce identical
   victim sequences from the same demand stream. *)

module Core = Acfc_policy.Policy_core
module Cores = Acfc_policy.Cores
module Registry = Acfc_policy.Registry

module Lru = Core.Offline (Cores.Lru)
module Mru = Core.Offline (Cores.Mru)
module Fifo = Core.Offline (Cores.Fifo)
module Clock = Core.Offline (Cores.Clock)
module Lru_2 = Core.Offline (Cores.Lru_2)
module Two_q = Core.Offline (Cores.Two_q)
module Rand = Core.Offline (Cores.Rand)
module Opt = Core.Offline (Cores.Opt)
module Arc = Core.Offline (Cores.Arc)
module Awrp = Core.Offline (Cores.Awrp)
module Perceptron = Core.Offline (Cores.Perceptron)

let of_core (module C : Core.CORE) : (module Policy_sim.POLICY) =
  let module S = Core.Offline (C) in
  (module S)

let all : (module Policy_sim.POLICY) list = List.map of_core Registry.all

let by_name name = Result.map of_core (Registry.find name)
