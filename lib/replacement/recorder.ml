module Event = Acfc_core.Event

type entry = Refstream.entry = {
  pid : Acfc_core.Pid.t;
  block : Acfc_core.Block.t;
  hit : bool;
  prefetch : bool;
}

type t = { mutable entries : entry list (* reversed *); mutable length : int }

let create () = { entries = []; length = 0 }

let record t e =
  t.entries <- e :: t.entries;
  t.length <- t.length + 1

let tracer t = function
  | Event.Hit { pid; block } -> record t { pid; block; hit = true; prefetch = false }
  | Event.Miss { pid; block; prefetch } -> record t { pid; block; hit = false; prefetch }
  | Event.Evict _ | Event.Writeback _ | Event.Placeholder_created _
  | Event.Placeholder_used _ | Event.Manager_revoked _ ->
    ()

let length t = t.length

let entries t = Array.of_list (List.rev t.entries)

let stream = entries

let to_trace ?pid ?include_prefetch t = Refstream.demand ?pid ?include_prefetch (entries t)

let save t oc = Refstream.save (entries t) oc

let ingest ?label t store =
  Acfc_store.Store.add store ~kind:Acfc_store.Kind.Refstream ?label
    (Refstream.render (entries t))

let of_stream entries =
  { entries = List.rev (Array.to_list entries); length = Array.length entries }

let load ic =
  let entries = Refstream.load ic in
  { entries = List.rev (Array.to_list entries); length = Array.length entries }
