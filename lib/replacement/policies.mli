(** Stock and adaptive replacement policies for the trace-driven
    simulator — the offline faces of the unified policy cores in
    {!Acfc_policy.Cores} (the live faces are {!Acfc_policy.Live}).

    [Lru] and [Mru] are the two policies the paper's interface offers
    applications; [Opt] is Belady's offline-optimal algorithm, the
    yardstick the companion paper proposes application policies should
    approximate; the rest are classic baselines plus the three adaptive
    policies from the related work. *)

module Lru : Policy_sim.POLICY

module Mru : Policy_sim.POLICY

module Fifo : Policy_sim.POLICY

module Clock : Policy_sim.POLICY
(** Second-chance / CLOCK. *)

module Lru_2 : Policy_sim.POLICY
(** LRU-K with K = 2 (O'Neil et al., SIGMOD '93 — cited by the paper as
    related database work). Victim is the resident block whose
    second-most-recent reference is oldest. *)

module Two_q : Policy_sim.POLICY
(** Simplified full 2Q (Johnson & Shasha, VLDB '94): a FIFO probation
    queue for new pages, a ghost queue of recent evictees, and a
    protected LRU queue for pages re-referenced after probation. *)

module Rand : Policy_sim.POLICY
(** Uniform random victim (deterministically seeded). *)

module Opt : Policy_sim.POLICY
(** Belady's optimal offline policy: evict the resident block whose
    next use is farthest in the future. A lower bound on misses for
    every demand-paged policy. *)

module Arc : Policy_sim.POLICY
(** Adaptive Replacement Cache: recency/frequency lists with
    ghost-directed balance adaptation. *)

module Awrp : Policy_sim.POLICY
(** Adaptive Weight Ranking Policy (arXiv:1107.4851): weighted
    frequency+recency ranking with an online-adapted mix. *)

module Perceptron : Policy_sim.POLICY
(** LearnedCache-style perceptron eviction: learned linear scoring of
    recency/frequency/level/file features, trained on ghost hits. *)

val all : (module Policy_sim.POLICY) list
(** Every registered policy, in registry order: the stock eight
    ([Opt] last) followed by [Arc], [Awrp], [Perceptron]. *)

val by_name : string -> ((module Policy_sim.POLICY), string) result
(** Case-insensitive registry lookup. The error message lists the
    valid names and suggests a near match — see
    {!Acfc_policy.Registry.find}. *)
