module Block = Acfc_core.Block
module Rng = Acfc_sim.Rng

type t = Block.t array

let sequential ~file ~blocks =
  Array.init blocks (fun index -> Block.make ~file ~index)

let cyclic ~file ~blocks ~passes =
  Array.init (blocks * passes) (fun i -> Block.make ~file ~index:(i mod blocks))

let random ~rng ~file ~blocks ~length =
  Array.init length (fun _ -> Block.make ~file ~index:(Rng.int rng blocks))

let hot_cold ~rng ~hot_file ~hot_blocks ~cold_file ~cold_blocks ~hot_fraction ~length =
  if hot_fraction < 0.0 || hot_fraction > 1.0 then
    invalid_arg "Trace.hot_cold: fraction out of range";
  Array.init length (fun _ ->
      if Rng.float rng 1.0 < hot_fraction then
        Block.make ~file:hot_file ~index:(Rng.int rng hot_blocks)
      else Block.make ~file:cold_file ~index:(Rng.int rng cold_blocks))

let zipf ~rng ~file ~blocks ~skew ~length =
  if skew <= 0.0 then invalid_arg "Trace.zipf: skew must be positive";
  (* Inverse-CDF sampling over the finite harmonic weights. *)
  let weights = Array.init blocks (fun i -> 1.0 /. (float_of_int (i + 1) ** skew)) in
  let cumulative = Array.make blocks 0.0 in
  let total = ref 0.0 in
  Array.iteri
    (fun i w ->
      total := !total +. w;
      cumulative.(i) <- !total)
    weights;
  let sample () =
    let u = Rng.float rng !total in
    (* Binary search for the first cumulative weight >= u. *)
    let lo = ref 0 and hi = ref (blocks - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if cumulative.(mid) < u then lo := mid + 1 else hi := mid
    done;
    !lo
  in
  Array.init length (fun _ -> Block.make ~file ~index:(sample ()))

let concat traces = Array.concat traces

let interleave ~rng traces =
  let arr = Array.of_list traces in
  let positions = Array.map (fun _ -> 0) arr in
  let total = Array.fold_left (fun acc tr -> acc + Array.length tr) 0 arr in
  let out = Array.make total (Block.make ~file:0 ~index:0) in
  (* Non-exhausted trace indices, kept in ascending order so each draw
     selects the same trace as the old per-step rebuild of the live
     list (same RNG sequence, same picks). The set only shrinks when a
     trace exhausts — at most once per trace, not once per step. *)
  let live = Array.init (Array.length arr) Fun.id in
  let n_live = ref (Array.length arr) in
  (* Empty input traces are never live. *)
  let k = ref 0 in
  for j = 0 to Array.length arr - 1 do
    if Array.length arr.(j) > 0 then begin
      live.(!k) <- j;
      incr k
    end
  done;
  n_live := !k;
  for i = 0 to total - 1 do
    (* Pick a non-exhausted trace uniformly. *)
    let slot = Rng.int rng !n_live in
    let j = live.(slot) in
    let tr = arr.(j) in
    out.(i) <- tr.(positions.(j));
    positions.(j) <- positions.(j) + 1;
    if positions.(j) >= Array.length tr then begin
      (* Exhausted: close the gap, preserving ascending order. *)
      for s = slot to !n_live - 2 do
        live.(s) <- live.(s + 1)
      done;
      decr n_live
    end
  done;
  out

let working_set_size trace =
  let seen = Hashtbl.create 1024 in
  Array.iter (fun b -> Hashtbl.replace seen b ()) trace;
  Hashtbl.length seen

let pp_summary ppf trace =
  Format.fprintf ppf "%d references over %d blocks" (Array.length trace)
    (working_set_size trace)
