(** Observability sink: one handle bundling a trace backend, a clock
    and a {!Metrics.t} registry.

    Instrumented modules hold a [Sink.t option] that defaults to
    [None], so the disabled hot path costs a single branch and no
    allocation. When enabled, each {!emit} stamps the event with the
    simulated time from the installed clock and hands it to the
    backend. *)

type t

type backend =
  | Null  (** count events, keep nothing *)
  | Ring of int  (** keep the last [n] records in memory *)
  | Jsonl of out_channel  (** one JSON object per line *)
  | Csv of out_channel  (** header written immediately *)
  | Custom of (Trace.record -> unit)

val create : ?clock:(unit -> float) -> ?backend:backend -> unit -> t
(** Defaults: a clock stuck at [0.0] (see {!set_clock}) and [Null].
    A [Csv] backend writes its header line here. *)

val set_clock : t -> (unit -> float) -> unit
(** Install the simulated clock; {!Acfc_sim.Engine.set_obs} does this
    automatically. *)

val now : t -> float

val metrics : t -> Metrics.t

val emit : t -> Trace.t -> unit

val emitted : t -> int
(** Events emitted since creation, whatever the backend. *)

val ring_contents : t -> Trace.record list
(** Oldest first; empty unless the backend is [Ring]. *)

val flush : t -> unit
(** Flush an output-channel backend; a no-op otherwise. The caller
    remains responsible for closing channels it opened. *)
