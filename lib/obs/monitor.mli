(** Live metrics streaming: an append-only JSONL feed a detached
    observer can tail while the simulation is still running.

    The producer side appends one self-contained JSON object per line
    to a sink file ([acfc-monitor/1]): a [start] record, then a
    [snapshot] record per sample (the full {!Metrics.snapshot}
    document), then an [end] record. Every line is flushed as soon as
    it is written, so a concurrent reader sees each sample as it
    happens.

    The consumer side ({!follow}) tails such a file with follow
    semantics — reading records as they are appended, polling on EOF —
    until the [end] record, the callback stops it, or no new data
    arrives within a timeout. {!renderer} turns the event stream into
    the human-readable view [acfc-run monitor] prints: per-client
    fleet gauges and cache hit-rate deltas between consecutive
    snapshots. *)

val schema : string
(** ["acfc-monitor/1"]. *)

(** {2 Producing} *)

type producer

val producer : path:string -> ?info:(string * Json.t) list -> unit -> producer
(** Truncate/create [path] and write the [start] record ([?info]
    members are embedded in it). *)

val sample : producer -> metrics:Metrics.t -> now:float -> unit
(** Append one [snapshot] record and flush. *)

val finish : producer -> now:float -> unit
(** Append the [end] record and close the file. Idempotent. *)

(** {2 Consuming} *)

type event =
  | Start of Json.t  (** the full start record *)
  | Snapshot of Json.t  (** the metrics snapshot document *)
  | End of Json.t  (** the full end record *)

val parse_line : string -> (event, string) result

val follow :
  path:string ->
  ?poll_s:float ->
  ?timeout_s:float ->
  on_event:(event -> [ `Continue | `Stop ]) ->
  unit ->
  (unit, string) result
(** Tail [path]: wait (up to [timeout_s], default 10s) for the file to
    appear, then deliver each complete line's event in order, polling
    every [poll_s] (default 20ms) at EOF. Returns [Ok ()] once the
    [end] record is seen or the callback answers [`Stop]; errors on a
    malformed line or on [timeout_s] without new data. *)

(** {2 Rendering} *)

type renderer

val renderer : unit -> renderer

val render : renderer -> Format.formatter -> event -> unit
(** Render one event: run header for [Start]; for each [Snapshot] the
    cache hit-rate line (with the delta against the previous snapshot)
    and, when fleet gauges are present, one line per client; a summary
    for [End]. Stateful — feed events in stream order. *)
