let schema = "acfc-monitor/1"

(* Producing *)

type producer = { oc : out_channel; mutable closed : bool }

let write_line p j =
  output_string p.oc (Json.to_string j);
  output_char p.oc '\n';
  flush p.oc

let producer ~path ?(info = []) () =
  let oc = open_out_bin path in
  let p = { oc; closed = false } in
  write_line p (Json.Obj ([ ("schema", Json.Str schema); ("type", Json.Str "start") ] @ info));
  p

let sample p ~metrics ~now =
  if not p.closed then
    write_line p
      (Json.Obj
         [ ("type", Json.Str "snapshot"); ("metrics", Metrics.snapshot metrics ~now) ])

let finish p ~now =
  if not p.closed then begin
    write_line p (Json.Obj [ ("type", Json.Str "end"); ("now", Json.Num now) ]);
    p.closed <- true;
    close_out p.oc
  end

(* Consuming *)

type event =
  | Start of Json.t
  | Snapshot of Json.t
  | End of Json.t

let parse_line line =
  match Json.of_string line with
  | Error e -> Error ("monitor: invalid JSON record: " ^ e)
  | Ok j ->
    (match Option.bind (Json.member "type" j) Json.to_str with
    | Some "start" ->
      (match Option.bind (Json.member "schema" j) Json.to_str with
      | Some s when s = schema -> Ok (Start j)
      | Some s ->
        Error
          (Printf.sprintf "monitor: unsupported schema %S (expected %s)" s schema)
      | None -> Error "monitor: start record without a schema")
    | Some "snapshot" ->
      (match Json.member "metrics" j with
      | Some m -> Ok (Snapshot m)
      | None -> Error "monitor: snapshot record without metrics")
    | Some "end" -> Ok (End j)
    | Some s -> Error (Printf.sprintf "monitor: unknown record type %S" s)
    | None -> Error "monitor: record without a type")

let follow ~path ?(poll_s = 0.02) ?(timeout_s = 10.0) ~on_event () =
  let start = Unix.gettimeofday () in
  let rec wait_file () =
    if Sys.file_exists path then Ok ()
    else if Unix.gettimeofday () -. start > timeout_s then
      Error (Printf.sprintf "monitor: timed out waiting for %s to appear" path)
    else begin
      Unix.sleepf poll_s;
      wait_file ()
    end
  in
  match wait_file () with
  | Error _ as e -> e
  | Ok () ->
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let partial = Buffer.create 256 in
        let last_data = ref (Unix.gettimeofday ()) in
        (* Deliver every complete line currently buffered; the return
           value says whether the stream is finished. *)
        let deliver chunk =
          Buffer.add_string partial chunk;
          let s = Buffer.contents partial in
          Buffer.clear partial;
          let rec go from =
            match String.index_from_opt s from '\n' with
            | None ->
              Buffer.add_string partial (String.sub s from (String.length s - from));
              Ok `More
            | Some nl ->
              let line = String.sub s from (nl - from) in
              if String.trim line = "" then go (nl + 1)
              else
                (match parse_line line with
                | Error _ as e -> e
                | Ok ev ->
                  let stop = on_event ev = `Stop in
                  (match ev with
                  | End _ -> Ok `Finished
                  | _ -> if stop then Ok `Finished else go (nl + 1)))
          in
          go 0
        in
        let rec loop () =
          let len = in_channel_length ic in
          let pos = pos_in ic in
          if len > pos then begin
            let chunk = really_input_string ic (len - pos) in
            last_data := Unix.gettimeofday ();
            match deliver chunk with
            | Ok `Finished -> Ok ()
            | Ok `More -> loop ()
            | Error _ as e -> e
          end
          else if Unix.gettimeofday () -. !last_data > timeout_s then
            Error
              (Printf.sprintf "monitor: no new data in %s for %.1fs" path timeout_s)
          else begin
            Unix.sleepf poll_s;
            loop ()
          end
        in
        loop ())

(* Rendering *)

type renderer = {
  mutable prev_ratio : float option;
  mutable snapshots : int;
}

let renderer () = { prev_ratio = None; snapshots = 0 }

let gauges_of snapshot =
  match Json.member "gauges" snapshot with
  | Some (Json.Obj members) ->
    List.filter_map
      (fun (name, v) -> Option.map (fun x -> (name, x)) (Json.to_num v))
      members
  | _ -> []

(* ["fleet.client.hits{client=3}"] -> [Some ("fleet.client.hits", "3")] *)
let client_gauge name =
  match String.index_opt name '{' with
  | Some i when String.length name > i && name.[String.length name - 1] = '}' ->
    let family = String.sub name 0 i in
    let inner = String.sub name (i + 1) (String.length name - i - 2) in
    (match String.split_on_char '=' inner with
    | [ "client"; id ] -> Some (family, id)
    | _ -> None)
  | _ -> None

let find gauges name = List.assoc_opt name gauges

let render r ppf = function
  | Start j ->
    let extra =
      match Option.bind (Json.member "scenario" j) Json.to_str with
      | Some s -> Printf.sprintf " scenario %s" s
      | None -> ""
    in
    Format.fprintf ppf "monitor: stream started%s@." extra
  | End j ->
    let now = Option.value ~default:0.0 (Option.bind (Json.member "now" j) Json.to_num) in
    Format.fprintf ppf "monitor: run complete at t=%.3fs (%d snapshots)@." now
      r.snapshots
  | Snapshot s ->
    r.snapshots <- r.snapshots + 1;
    let now = Option.value ~default:0.0 (Option.bind (Json.member "now" s) Json.to_num) in
    let gauges = gauges_of s in
    (match (find gauges "cache.hits", find gauges "cache.misses") with
    | Some hits, Some misses ->
      let total = hits +. misses in
      let ratio = if total > 0.0 then hits /. total else 0.0 in
      let delta =
        match r.prev_ratio with
        | Some p -> Printf.sprintf " (%+.1fpp)" ((ratio -. p) *. 100.0)
        | None -> ""
      in
      r.prev_ratio <- Some ratio;
      Format.fprintf ppf "t=%8.3fs  cache %.0f hits / %.0f misses  hit-rate %5.1f%%%s@."
        now hits misses (ratio *. 100.0) delta
    | _ -> Format.fprintf ppf "t=%8.3fs@." now);
    (* Per-client fleet gauges, when the stream comes from a fleet run. *)
    let clients = Hashtbl.create 8 in
    List.iter
      (fun (name, v) ->
        match client_gauge name with
        | Some (family, id) ->
          let prev = Option.value ~default:[] (Hashtbl.find_opt clients id) in
          Hashtbl.replace clients id ((family, v) :: prev)
        | None -> ())
      gauges;
    let ids =
      Hashtbl.fold (fun id _ acc -> id :: acc) clients []
      |> List.sort (fun a b ->
             match (int_of_string_opt a, int_of_string_opt b) with
             | Some x, Some y -> compare x y
             | _ -> String.compare a b)
    in
    List.iter
      (fun id ->
        let fam = Hashtbl.find clients id in
        let g name = Option.value ~default:0.0 (List.assoc_opt name fam) in
        let hits = g "fleet.client.hits" and misses = g "fleet.client.misses" in
        let total = hits +. misses in
        let ratio = if total > 0.0 then hits /. total *. 100.0 else 0.0 in
        Format.fprintf ppf
          "  client %s: %.0f events  %.0f hits / %.0f misses (%.1f%%)  remote %.0f  disk %.0f@."
          id
          (g "fleet.client.events")
          hits misses ratio
          (g "fleet.client.remote_requests")
          (g "fleet.client.disk_reads"))
      ids;
    match find gauges "fleet.server.requests" with
    | Some reqs ->
      Format.fprintf ppf "  server: %.0f requests  %.0f hits  disk busy %.3fs@." reqs
        (Option.value ~default:0.0 (find gauges "fleet.server.hits"))
        (Option.value ~default:0.0 (find gauges "fleet.server.disk_busy_s"))
    | None -> ()
