(** Minimal JSON values: just enough for the observability layer.

    The repository deliberately carries no third-party JSON dependency;
    traces, metric snapshots and bench results only need objects of
    numbers, strings and booleans. The printer and parser round-trip
    every value this library emits ([of_string (to_string v) = Ok v]). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list  (** members, in emission order *)

val to_string : t -> string
(** Compact (single-line) rendering. Numbers that are exact integers
    print without a decimal point, so counters stay readable. *)

val pp : Format.formatter -> t -> unit
(** Same rendering as {!to_string}. *)

val of_string : string -> (t, string) result
(** Parse one JSON value (surrounding whitespace allowed). The error
    string names the offending byte offset. *)

val equal : t -> t -> bool
(** Structural equality; object member {e order} is significant (this
    library always emits in a fixed order). *)

(** {2 Accessors} *)

val member : string -> t -> t option
(** [member name (Obj _)] looks up a field; [None] on anything else. *)

val to_num : t -> float option

val to_int : t -> int option
(** [Num] fields that hold an exact integer. *)

val to_str : t -> string option

val to_bool : t -> bool option

val to_list : t -> t list option
