type backend =
  | Null
  | Ring of int
  | Jsonl of out_channel
  | Csv of out_channel
  | Custom of (Trace.record -> unit)

type store =
  | S_null
  | S_ring of { buf : Trace.record option array; mutable next : int }
  | S_jsonl of out_channel
  | S_csv of out_channel
  | S_custom of (Trace.record -> unit)

type t = {
  mutable clock : unit -> float;
  store : store;
  metrics : Metrics.t;
  mutable emitted : int;
}

let create ?(clock = fun () -> 0.0) ?(backend = Null) () =
  let store =
    match backend with
    | Null -> S_null
    | Ring n ->
      if n <= 0 then invalid_arg "Sink.create: ring capacity must be positive";
      S_ring { buf = Array.make n None; next = 0 }
    | Jsonl oc -> S_jsonl oc
    | Csv oc ->
      output_string oc Trace.csv_header;
      output_char oc '\n';
      S_csv oc
    | Custom f -> S_custom f
  in
  { clock; store; metrics = Metrics.create (); emitted = 0 }

let set_clock t clock = t.clock <- clock

let now t = t.clock ()

let metrics t = t.metrics

let emit t ev =
  t.emitted <- t.emitted + 1;
  match t.store with
  | S_null -> ()
  | S_ring r ->
    r.buf.(r.next) <- Some { Trace.time = t.clock (); ev };
    r.next <- (r.next + 1) mod Array.length r.buf
  | S_jsonl oc ->
    output_string oc (Json.to_string (Trace.to_json { Trace.time = t.clock (); ev }));
    output_char oc '\n'
  | S_csv oc ->
    output_string oc (Trace.to_csv { Trace.time = t.clock (); ev });
    output_char oc '\n'
  | S_custom f -> f { Trace.time = t.clock (); ev }

let ring_contents t =
  match t.store with
  | S_ring r ->
    let n = Array.length r.buf in
    List.filter_map
      (fun i -> r.buf.((r.next + i) mod n))
      (List.init n Fun.id)
  | S_null | S_jsonl _ | S_csv _ | S_custom _ -> []

let emitted t = t.emitted

let flush t =
  match t.store with
  | S_jsonl oc | S_csv oc -> Stdlib.flush oc
  | S_null | S_ring _ | S_custom _ -> ()
