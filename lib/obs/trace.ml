type block = { file : int; index : int }

type t =
  | Cache_hit of { pid : int; block : block }
  | Cache_miss of { pid : int; block : block; prefetch : bool }
  | Evict of {
      victim : block;
      owner : int;
      candidate : block;
      policy : string;
      reason : string;
    }
  | Writeback of { block : block }
  | Swap of { kept : block; victim : block }
  | Placeholder_created of { replaced : block; target : block; chooser : int }
  | Placeholder_hit of { missing : block; target : block; chooser : int }
  | Manager_revoked of { pid : int }
  | Disk_io of {
      disk : string;
      kind : string;
      addr : int;
      blocks : int;
      seek : float;
      rot : float;
      xfer : float;
      wait : float;
    }
  | Syscall of { pid : int; op : string; detail : string }
  | Fiber of { name : string; op : string }

type record = { time : float; ev : t }

let kind = function
  | Cache_hit _ -> "cache_hit"
  | Cache_miss _ -> "cache_miss"
  | Evict _ -> "evict"
  | Writeback _ -> "writeback"
  | Swap _ -> "swap"
  | Placeholder_created _ -> "placeholder_created"
  | Placeholder_hit _ -> "placeholder_hit"
  | Manager_revoked _ -> "manager_revoked"
  | Disk_io _ -> "disk_io"
  | Syscall _ -> "syscall"
  | Fiber _ -> "fiber"

let pid = function
  | Cache_hit { pid; _ } | Cache_miss { pid; _ } | Manager_revoked { pid }
  | Syscall { pid; _ } ->
    Some pid
  | Evict { owner; _ } -> Some owner
  | Placeholder_created { chooser; _ } | Placeholder_hit { chooser; _ } -> Some chooser
  | Writeback _ | Swap _ | Disk_io _ | Fiber _ -> None

(* {2 JSON} *)

let int n = Json.Num (float_of_int n)

let blk prefix { file; index } =
  [ (prefix ^ "file", int file); (prefix ^ "index", int index) ]

let to_json { time; ev } =
  let fields =
    match ev with
    | Cache_hit { pid; block } -> (("pid", int pid) :: blk "" block)
    | Cache_miss { pid; block; prefetch } ->
      (("pid", int pid) :: blk "" block) @ [ ("prefetch", Json.Bool prefetch) ]
    | Evict { victim; owner; candidate; policy; reason } ->
      blk "victim_" victim
      @ [ ("owner", int owner) ]
      @ blk "cand_" candidate
      @ [ ("policy", Json.Str policy); ("reason", Json.Str reason) ]
    | Writeback { block } -> blk "" block
    | Swap { kept; victim } -> blk "kept_" kept @ blk "victim_" victim
    | Placeholder_created { replaced; target; chooser } ->
      blk "replaced_" replaced @ blk "target_" target @ [ ("chooser", int chooser) ]
    | Placeholder_hit { missing; target; chooser } ->
      blk "missing_" missing @ blk "target_" target @ [ ("chooser", int chooser) ]
    | Manager_revoked { pid } -> [ ("pid", int pid) ]
    | Disk_io { disk; kind; addr; blocks; seek; rot; xfer; wait } ->
      [
        ("disk", Json.Str disk);
        ("kind", Json.Str kind);
        ("addr", int addr);
        ("blocks", int blocks);
        ("seek", Json.Num seek);
        ("rot", Json.Num rot);
        ("xfer", Json.Num xfer);
        ("wait", Json.Num wait);
      ]
    | Syscall { pid; op; detail } ->
      [ ("pid", int pid); ("op", Json.Str op); ("detail", Json.Str detail) ]
    | Fiber { name; op } -> [ ("name", Json.Str name); ("op", Json.Str op) ]
  in
  Json.Obj ((("t", Json.Num time) :: ("ev", Json.Str (kind ev)) :: fields))

let of_json json =
  let ( let* ) r f = Result.bind r f in
  let field name conv =
    match Option.bind (Json.member name json) conv with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "trace record: missing or bad field %S" name)
  in
  let num name = field name Json.to_num in
  let i name = field name Json.to_int in
  let str name = field name Json.to_str in
  let b name = field name Json.to_bool in
  let block prefix =
    let* file = i (prefix ^ "file") in
    let* index = i (prefix ^ "index") in
    Ok { file; index }
  in
  let* time = num "t" in
  let* tag = str "ev" in
  let* ev =
    match tag with
    | "cache_hit" ->
      let* pid = i "pid" in
      let* block = block "" in
      Ok (Cache_hit { pid; block })
    | "cache_miss" ->
      let* pid = i "pid" in
      let* block = block "" in
      let* prefetch = b "prefetch" in
      Ok (Cache_miss { pid; block; prefetch })
    | "evict" ->
      let* victim = block "victim_" in
      let* owner = i "owner" in
      let* candidate = block "cand_" in
      let* policy = str "policy" in
      let* reason = str "reason" in
      Ok (Evict { victim; owner; candidate; policy; reason })
    | "writeback" ->
      let* block = block "" in
      Ok (Writeback { block })
    | "swap" ->
      let* kept = block "kept_" in
      let* victim = block "victim_" in
      Ok (Swap { kept; victim })
    | "placeholder_created" ->
      let* replaced = block "replaced_" in
      let* target = block "target_" in
      let* chooser = i "chooser" in
      Ok (Placeholder_created { replaced; target; chooser })
    | "placeholder_hit" ->
      let* missing = block "missing_" in
      let* target = block "target_" in
      let* chooser = i "chooser" in
      Ok (Placeholder_hit { missing; target; chooser })
    | "manager_revoked" ->
      let* pid = i "pid" in
      Ok (Manager_revoked { pid })
    | "disk_io" ->
      let* disk = str "disk" in
      let* kind = str "kind" in
      let* addr = i "addr" in
      let* blocks = i "blocks" in
      let* seek = num "seek" in
      let* rot = num "rot" in
      let* xfer = num "xfer" in
      let* wait = num "wait" in
      Ok (Disk_io { disk; kind; addr; blocks; seek; rot; xfer; wait })
    | "syscall" ->
      let* pid = i "pid" in
      let* op = str "op" in
      let* detail = str "detail" in
      Ok (Syscall { pid; op; detail })
    | "fiber" ->
      let* name = str "name" in
      let* op = str "op" in
      Ok (Fiber { name; op })
    | tag -> Error (Printf.sprintf "trace record: unknown event %S" tag)
  in
  Ok { time; ev }

(* {2 CSV} *)

let csv_header =
  "time,event,pid,file,index,aux_file,aux_index,owner,policy,reason,prefetch,disk,kind,addr,blocks,seek,rot,xfer,wait,op,name,detail"

type cells = {
  mutable pid_c : string;
  mutable file_c : string;
  mutable index_c : string;
  mutable aux_file : string;
  mutable aux_index : string;
  mutable owner_c : string;
  mutable policy_c : string;
  mutable reason_c : string;
  mutable prefetch_c : string;
  mutable disk_c : string;
  mutable kind_c : string;
  mutable addr_c : string;
  mutable blocks_c : string;
  mutable seek_c : string;
  mutable rot_c : string;
  mutable xfer_c : string;
  mutable wait_c : string;
  mutable op_c : string;
  mutable name_c : string;
  mutable detail_c : string;
}

let csv_escape s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let fnum x = Json.to_string (Json.Num x)

let to_csv { time; ev } =
  let c =
    {
      pid_c = ""; file_c = ""; index_c = ""; aux_file = ""; aux_index = "";
      owner_c = ""; policy_c = ""; reason_c = ""; prefetch_c = ""; disk_c = "";
      kind_c = ""; addr_c = ""; blocks_c = ""; seek_c = ""; rot_c = "";
      xfer_c = ""; wait_c = ""; op_c = ""; name_c = ""; detail_c = "";
    }
  in
  let main b = c.file_c <- string_of_int b.file; c.index_c <- string_of_int b.index in
  let aux b = c.aux_file <- string_of_int b.file; c.aux_index <- string_of_int b.index in
  (match ev with
  | Cache_hit { pid; block } -> c.pid_c <- string_of_int pid; main block
  | Cache_miss { pid; block; prefetch } ->
    c.pid_c <- string_of_int pid;
    main block;
    c.prefetch_c <- string_of_bool prefetch
  | Evict { victim; owner; candidate; policy; reason } ->
    main victim;
    aux candidate;
    c.owner_c <- string_of_int owner;
    c.policy_c <- policy;
    c.reason_c <- reason
  | Writeback { block } -> main block
  | Swap { kept; victim } -> main kept; aux victim
  | Placeholder_created { replaced; target; chooser } ->
    main replaced; aux target; c.pid_c <- string_of_int chooser
  | Placeholder_hit { missing; target; chooser } ->
    main missing; aux target; c.pid_c <- string_of_int chooser
  | Manager_revoked { pid } -> c.pid_c <- string_of_int pid
  | Disk_io { disk; kind; addr; blocks; seek; rot; xfer; wait } ->
    c.disk_c <- disk;
    c.kind_c <- kind;
    c.addr_c <- string_of_int addr;
    c.blocks_c <- string_of_int blocks;
    c.seek_c <- fnum seek;
    c.rot_c <- fnum rot;
    c.xfer_c <- fnum xfer;
    c.wait_c <- fnum wait
  | Syscall { pid; op; detail } ->
    c.pid_c <- string_of_int pid;
    c.op_c <- op;
    c.detail_c <- csv_escape detail
  | Fiber { name; op } -> c.name_c <- csv_escape name; c.op_c <- op);
  String.concat ","
    [
      fnum time; kind ev; c.pid_c; c.file_c; c.index_c; c.aux_file; c.aux_index;
      c.owner_c; c.policy_c; c.reason_c; c.prefetch_c; c.disk_c; c.kind_c;
      c.addr_c; c.blocks_c; c.seek_c; c.rot_c; c.xfer_c; c.wait_c; c.op_c;
      c.name_c; c.detail_c;
    ]

let pp ppf r = Json.pp ppf (to_json r)
