type counter = { mutable count : int }

let n_buckets = 44
let bucket_lo = 1e-6

type histogram = {
  buckets : int array;  (* last bucket = overflow *)
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
}

type t = {
  counters : (string, counter) Hashtbl.t;
  gauges : (string, unit -> float) Hashtbl.t;
  histograms : (string, histogram) Hashtbl.t;
}

let create () =
  {
    counters = Hashtbl.create 16;
    gauges = Hashtbl.create 16;
    histograms = Hashtbl.create 16;
  }

let counter t name =
  match Hashtbl.find_opt t.counters name with
  | Some c -> c
  | None ->
    let c = { count = 0 } in
    Hashtbl.replace t.counters name c;
    c

let incr ?(by = 1) c = c.count <- c.count + by

let counter_value t name =
  match Hashtbl.find_opt t.counters name with Some c -> c.count | None -> 0

let gauge t name read = Hashtbl.replace t.gauges name read

let gauge_value t name =
  match Hashtbl.find_opt t.gauges name with Some read -> Some (read ()) | None -> None

(* Canonical label rendering: [name{k=v,k2=v2}], keys in the order
   given. One syntax everywhere means snapshot sorting groups a
   metric's label sets together and [gauge_sum]'s prefix match is a
   plain string test. *)
let label name labels =
  match labels with
  | [] -> name
  | _ ->
    let buf = Buffer.create (String.length name + 16) in
    Buffer.add_string buf name;
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf k;
        Buffer.add_char buf '=';
        Buffer.add_string buf v)
      labels;
    Buffer.add_char buf '}';
    Buffer.contents buf

let gauge_sum t name =
  let prefix = name ^ "{" in
  let matches candidate =
    candidate = name
    || String.length candidate > String.length prefix
       && String.sub candidate 0 (String.length prefix) = prefix
  in
  gauge t name (fun () ->
      Hashtbl.fold
        (fun candidate read acc ->
          if candidate <> name && matches candidate then acc +. read () else acc)
        t.gauges 0.0)

let histogram t name =
  match Hashtbl.find_opt t.histograms name with
  | Some h -> h
  | None ->
    let h =
      {
        buckets = Array.make n_buckets 0;
        h_count = 0;
        h_sum = 0.0;
        h_min = Float.infinity;
        h_max = Float.neg_infinity;
      }
    in
    Hashtbl.replace t.histograms name h;
    h

let bucket_index v =
  if v <= bucket_lo then 0
  else
    let i = int_of_float (Float.ceil (Float.log2 (v /. bucket_lo))) in
    if i >= n_buckets then n_buckets - 1 else i

let observe h v =
  h.buckets.(bucket_index v) <- h.buckets.(bucket_index v) + 1;
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum +. v;
  if v < h.h_min then h.h_min <- v;
  if v > h.h_max then h.h_max <- v

let histogram_count t name =
  match Hashtbl.find_opt t.histograms name with Some h -> h.h_count | None -> 0

let sorted_names tbl =
  List.sort String.compare (Hashtbl.fold (fun name _ acc -> name :: acc) tbl [])

let bucket_bound i = bucket_lo *. Float.pow 2.0 (float_of_int i)

let histogram_json h =
  let buckets =
    List.filter_map
      (fun i ->
        if h.buckets.(i) = 0 then None
        else
          let le = if i = n_buckets - 1 then 0.0 else bucket_bound i in
          Some
            (Json.Obj
               [ ("le", Json.Num le); ("n", Json.Num (float_of_int h.buckets.(i))) ]))
      (List.init n_buckets Fun.id)
  in
  Json.Obj
    [
      ("count", Json.Num (float_of_int h.h_count));
      ("sum", Json.Num h.h_sum);
      ("min", Json.Num (if h.h_count = 0 then 0.0 else h.h_min));
      ("max", Json.Num (if h.h_count = 0 then 0.0 else h.h_max));
      ("mean", Json.Num (if h.h_count = 0 then 0.0 else h.h_sum /. float_of_int h.h_count));
      ("buckets", Json.List buckets);
    ]

let snapshot t ~now =
  let counters =
    List.map
      (fun name ->
        (name, Json.Num (float_of_int (Hashtbl.find t.counters name).count)))
      (sorted_names t.counters)
  in
  let gauges =
    List.map
      (fun name -> (name, Json.Num ((Hashtbl.find t.gauges name) ())))
      (sorted_names t.gauges)
  in
  let histograms =
    List.map
      (fun name -> (name, histogram_json (Hashtbl.find t.histograms name)))
      (sorted_names t.histograms)
  in
  Json.Obj
    [
      ("now", Json.Num now);
      ("counters", Json.Obj counters);
      ("gauges", Json.Obj gauges);
      ("histograms", Json.Obj histograms);
    ]

let reset t =
  Hashtbl.iter (fun _ c -> c.count <- 0) t.counters;
  Hashtbl.iter
    (fun _ h ->
      Array.fill h.buckets 0 n_buckets 0;
      h.h_count <- 0;
      h.h_sum <- 0.0;
      h.h_min <- Float.infinity;
      h.h_max <- Float.neg_infinity)
    t.histograms
