type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* {2 Printing} *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_num buf x =
  if Float.is_nan x then Buffer.add_string buf "null"
  else if Float.is_integer x && Float.abs x < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" x)
  else
    (* Shortest representation that round-trips. *)
    let s = Printf.sprintf "%.12g" x in
    if float_of_string s = x then Buffer.add_string buf s
    else Buffer.add_string buf (Printf.sprintf "%.17g" x)

let rec add buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num x -> add_num buf x
  | Str s -> escape buf s
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char buf ',';
        add buf v)
      items;
    Buffer.add_char buf ']'
  | Obj members ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (name, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape buf name;
        Buffer.add_char buf ':';
        add buf v)
      members;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  add buf v;
  Buffer.contents buf

let pp ppf v = Format.pp_print_string ppf (to_string v)

(* {2 Parsing} *)

exception Parse_error of int * string

let parse_exn s =
  let n = String.length s in
  let pos = ref 0 in
  let error msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> error (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let m = String.length word in
    if !pos + m <= n && String.sub s !pos m = word then begin
      pos := !pos + m;
      value
    end
    else error ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then error "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (if !pos >= n then error "unterminated escape";
         match s.[!pos] with
         | '"' -> Buffer.add_char buf '"'; advance ()
         | '\\' -> Buffer.add_char buf '\\'; advance ()
         | '/' -> Buffer.add_char buf '/'; advance ()
         | 'n' -> Buffer.add_char buf '\n'; advance ()
         | 'r' -> Buffer.add_char buf '\r'; advance ()
         | 't' -> Buffer.add_char buf '\t'; advance ()
         | 'b' -> Buffer.add_char buf '\b'; advance ()
         | 'f' -> Buffer.add_char buf '\012'; advance ()
         | 'u' ->
           advance ();
           if !pos + 4 > n then error "bad \\u escape";
           let hex = String.sub s !pos 4 in
           (match int_of_string_opt ("0x" ^ hex) with
           | None -> error "bad \\u escape"
           | Some code ->
             (* Only the codes our own printer emits (< 0x80); anything
                else is preserved as a replacement to stay total. *)
             if code < 0x80 then Buffer.add_char buf (Char.chr code)
             else Buffer.add_string buf "\xef\xbf\xbd";
             pos := !pos + 4)
         | c -> error (Printf.sprintf "bad escape %C" c));
        go ()
      | c -> Buffer.add_char buf c; advance (); go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let numchar c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && numchar s.[!pos] do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some x -> x
    | None -> error "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> error "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin advance (); Obj [] end
      else begin
        let rec members acc =
          skip_ws ();
          let name = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); members ((name, v) :: acc)
          | Some '}' -> advance (); Obj (List.rev ((name, v) :: acc))
          | _ -> error "expected ',' or '}'"
        in
        members []
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin advance (); List [] end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); items (v :: acc)
          | Some ']' -> advance (); List (List.rev (v :: acc))
          | _ -> error "expected ',' or ']'"
        in
        items []
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then error "trailing garbage";
  v

let of_string s =
  match parse_exn s with
  | v -> Ok v
  | exception Parse_error (pos, msg) ->
    Error (Printf.sprintf "JSON parse error at byte %d: %s" pos msg)

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool a, Bool b -> a = b
  | Num a, Num b -> a = b || (Float.is_nan a && Float.is_nan b)
  | Str a, Str b -> String.equal a b
  | List a, List b -> List.length a = List.length b && List.for_all2 equal a b
  | Obj a, Obj b ->
    List.length a = List.length b
    && List.for_all2 (fun (na, va) (nb, vb) -> String.equal na nb && equal va vb) a b
  | (Null | Bool _ | Num _ | Str _ | List _ | Obj _), _ -> false

let member name = function
  | Obj members -> List.assoc_opt name members
  | Null | Bool _ | Num _ | Str _ | List _ -> None

let to_num = function Num x -> Some x | _ -> None

let to_int = function
  | Num x when Float.is_integer x -> Some (int_of_float x)
  | _ -> None

let to_str = function Str s -> Some s | _ -> None

let to_bool = function Bool b -> Some b | _ -> None

let to_list = function List items -> Some items | _ -> None
