(** Structured trace events for the whole simulator.

    Every layer (cache, allocation manager, file system, disks, bus,
    engine) can emit these through a {!Sink.t}. Unlike
    {!Acfc_core.Event.t} — the in-process callback used by tests and
    the replacement recorder — these events carry the simulated
    timestamp and are designed for machine-readable export (JSONL,
    CSV) and offline validation.

    Pids, files and blocks are carried as plain integers so the
    library stays dependency-free and usable from every layer. *)

type block = { file : int; index : int }

type t =
  | Cache_hit of { pid : int; block : block }
  | Cache_miss of { pid : int; block : block; prefetch : bool }
  | Evict of {
      victim : block;
      owner : int;
      candidate : block;  (** the kernel's suggestion *)
      policy : string;  (** allocation policy in force *)
      reason : string;  (** ["capacity"] or ["invalidate"] *)
    }
  | Writeback of { block : block }
  | Swap of { kept : block; victim : block }
      (** LRU-SP list swap: the spared kernel candidate takes the
          victim's global position. *)
  | Placeholder_created of { replaced : block; target : block; chooser : int }
  | Placeholder_hit of { missing : block; target : block; chooser : int }
      (** A placeholder fired: the manager's earlier overrule was a
          mistake (the paper's placeholder mechanism). *)
  | Manager_revoked of { pid : int }
  | Disk_io of {
      disk : string;
      kind : string;  (** ["read"] or ["write"] *)
      addr : int;
      blocks : int;
      seek : float;  (** controller overhead + seek, seconds *)
      rot : float;  (** rotational latency, seconds *)
      xfer : float;  (** transfer (bus-holding) time, seconds *)
      wait : float;  (** queueing delay before service, seconds *)
    }
  | Syscall of { pid : int; op : string; detail : string }
      (** Data-path and [fbehavior] control-path operations, e.g.
          [op = "read"], [detail = "file=3 off=0 len=8192"]. *)
  | Fiber of { name : string; op : string }  (** engine: ["spawn"] / ["finish"] *)

type record = { time : float; ev : t }
(** One trace line: an event at a simulated time. *)

val kind : t -> string
(** Stable lowercase tag, e.g. ["cache_miss"]; the JSONL ["ev"] field. *)

val pid : t -> int option
(** The acting pid, for events that have one. *)

val to_json : record -> Json.t
(** Flat object: [{"t": …, "ev": "…", …fields}]. *)

val of_json : Json.t -> (record, string) result
(** Inverse of {!to_json}: [of_json (to_json r) = Ok r]. *)

val csv_header : string
(** Column names for {!to_csv}, comma-separated. *)

val to_csv : record -> string
(** One CSV row under {!csv_header}; inapplicable columns are empty. *)

val pp : Format.formatter -> record -> unit
