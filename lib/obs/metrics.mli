(** Metrics registry: counters, gauges and histograms, snapshotable at
    any simulated time.

    Creation is idempotent by name, so independent layers can share one
    registry without coordination. Gauges are callbacks sampled at
    snapshot time — instrumented modules register a closure over their
    existing statistics fields, so the hot path pays nothing. Snapshots
    render names in sorted order: two runs with the same seed produce
    byte-identical snapshots. *)

type t

type counter

type histogram

val create : unit -> t

(** {2 Counters} *)

val counter : t -> string -> counter
(** Find or create the counter [name]. *)

val incr : ?by:int -> counter -> unit

val counter_value : t -> string -> int
(** 0 if the counter does not exist. *)

(** {2 Gauges} *)

val gauge : t -> string -> (unit -> float) -> unit
(** Register (or replace) the gauge [name]; the callback is invoked at
    each {!snapshot}. *)

val gauge_value : t -> string -> float option

val label : string -> (string * string) list -> string
(** [label name [(k, v); …]] renders the canonical labelled metric name
    [name{k=v,…}] (the name unchanged when the list is empty). Using
    one syntax everywhere keeps snapshot ordering grouping a metric's
    label sets together, and makes {!gauge_sum} a prefix match. *)

val gauge_sum : t -> string -> unit
(** Register gauge [name] as the sum, at sample time, of every gauge
    whose name is [name{…}] — the global roll-up of a per-client (or
    per-shard) labelled family. Gauges registered after [gauge_sum] are
    included too: the sum is computed when sampled. *)

(** {2 Histograms} *)

val histogram : t -> string -> histogram
(** Find or create a histogram with logarithmic buckets: bucket [i]
    holds observations in [(2^(i-1)·lo, 2^i·lo]] with [lo = 1 µs],
    covering latencies from under a microsecond to hours. *)

val observe : histogram -> float -> unit

val histogram_count : t -> string -> int
(** Number of observations; 0 if the histogram does not exist. *)

(** {2 Snapshot} *)

val snapshot : t -> now:float -> Json.t
(** [{"now": …, "counters": {…}, "gauges": {…}, "histograms": {…}}]
    with each section's names sorted. Histograms carry count, sum, min,
    max, mean and the non-empty buckets as [{"le": bound, "n": count}]
    (an upper bound of [0] marks the overflow bucket). *)

val reset : t -> unit
(** Zero counters and histograms; gauges (callbacks) are kept. *)
