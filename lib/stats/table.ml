type align = Left | Right | Center

type row = Cells of string list | Rule

type t = { columns : (string * align) list; mutable rows : row list (* reversed *) }

let create ~columns =
  if columns = [] then invalid_arg "Table.create: no columns";
  { columns; rows = [] }

let add_row t cells =
  let width = List.length t.columns in
  let got = List.length cells in
  if got > width then invalid_arg "Table.add_row: too many cells";
  let padded = cells @ List.init (width - got) (fun _ -> "") in
  t.rows <- Cells padded :: t.rows

let add_rule t = t.rows <- Rule :: t.rows

let pad align width s =
  let slack = width - String.length s in
  if slack <= 0 then s
  else
    match align with
    | Left -> s ^ String.make slack ' '
    | Right -> String.make slack ' ' ^ s
    | Center ->
      let left = slack / 2 in
      String.make left ' ' ^ s ^ String.make (slack - left) ' '

let render ppf t =
  let rows = List.rev t.rows in
  (* Columns and widths as arrays, computed once: per-cell work is then
     O(1) instead of List.nth over both lists for every cell. *)
  let columns = Array.of_list t.columns in
  let widths = Array.map (fun (h, _) -> String.length h) columns in
  List.iter
    (function
      | Rule -> ()
      | Cells cells ->
        List.iteri
          (fun i cell -> widths.(i) <- Stdlib.max widths.(i) (String.length cell))
          cells)
    rows;
  let rule =
    String.concat "-+-" (Array.to_list (Array.map (fun w -> String.make w '-') widths))
  in
  let print_cells cells =
    let padded =
      List.mapi
        (fun i cell ->
          let _, align = columns.(i) in
          pad align widths.(i) cell)
        cells
    in
    Format.fprintf ppf "%s@\n" (String.concat " | " padded)
  in
  print_cells (List.map fst (Array.to_list columns));
  Format.fprintf ppf "%s@\n" rule;
  List.iter
    (function Rule -> Format.fprintf ppf "%s@\n" rule | Cells cells -> print_cells cells)
    rows

let to_string t = Format.asprintf "%a" render t
