(* Cyclic scans: the paper's headline single-application effect.

   A dinero-style application reads the same trace file sequentially
   nine times. Under the original kernel (global LRU) every pass misses
   every block whenever the file exceeds the cache; under LRU-SP with an
   MRU strategy the resident prefix survives across passes. This is
   Figure 4's din curve, reproduced across cache sizes. Run with:

     dune exec examples/cyclic_scan.exe
*)

module Config = Acfc_core.Config
module Runner = Acfc_workload.Runner
module Scenario = Acfc_scenario.Scenario

let () =
  Format.printf "din (9 sequential passes over an 8 MB trace file)@.";
  Format.printf "%-8s %-12s %-12s %s@." "cache" "original" "LRU-SP+MRU" "I/O ratio";
  List.iter
    (fun mb ->
      let run ~alloc_policy ~smart =
        let r =
          Scenario.run
            (Scenario.make
               ~cache_blocks:(Scenario.blocks_of_mb mb)
               ~alloc_policy
               [ Scenario.workload ~smart "din" ])
        in
        (List.hd r.Runner.apps).Runner.block_ios
      in
      let original = run ~alloc_policy:Config.Global_lru ~smart:false in
      let controlled = run ~alloc_policy:Config.Lru_sp ~smart:true in
      Format.printf "%-8s %-12d %-12d %.2f@."
        (Printf.sprintf "%gMB" mb)
        original controlled
        (float_of_int controlled /. float_of_int original))
    [ 4.0; 6.4; 8.0; 12.0 ]
