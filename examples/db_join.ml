(* Hot/cold priorities: a database join, the paper's pjn scenario.

   An indexed nested-loop join probes a hot index file and fetches cold
   data blocks. With the one-call strategy from the paper —
   set_priority(index, 1) — the kernel keeps the whole index resident
   and lets the random data references fight over the rest of the
   cache. Run with:

     dune exec examples/db_join.exe
*)

module Config = Acfc_core.Config
module Runner = Acfc_workload.Runner
module Scenario = Acfc_scenario.Scenario
module Pid = Acfc_core.Pid

let () =
  Format.printf
    "postgres join: 20k probes of a 5 MB index + random fetches from 32 MB data@.";
  Format.printf "%-8s  %-22s %-22s@." "" "original kernel" "LRU-SP (index prio 1)";
  List.iter
    (fun mb ->
      let run ~alloc_policy ~smart =
        let r =
          Scenario.run
            (Scenario.make
               ~cache_blocks:(Scenario.blocks_of_mb mb)
               ~alloc_policy
               [ Scenario.workload ~smart "pjn" ])
        in
        let a = List.hd r.Runner.apps in
        (a.Runner.block_ios, a.Runner.elapsed)
      in
      let orig_ios, orig_t = run ~alloc_policy:Config.Global_lru ~smart:false in
      let sp_ios, sp_t = run ~alloc_policy:Config.Lru_sp ~smart:true in
      Format.printf "%-8s  %6d I/Os %7.1fs    %6d I/Os %7.1fs@."
        (Printf.sprintf "%gMB" mb)
        orig_ios orig_t sp_ios sp_t)
    [ 4.0; 6.4; 8.0 ]
