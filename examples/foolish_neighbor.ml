(* Placeholders protecting you from a foolish neighbour (paper Sec. 6.1).

   An oblivious ReadN shares the cache with a Read300 that installed a
   disastrous MRU policy. Without placeholders (the LRU-S kernel) the
   foolish process's mistakes push the oblivious process out of the
   cache; with full LRU-SP the kernel redirects the foolish process's
   own misses back at its own blocks, and counts every mistake —
   enabling revocation. Run with:

     dune exec examples/foolish_neighbor.exe
*)

module Config = Acfc_core.Config
module Runner = Acfc_workload.Runner
module Scenario = Acfc_scenario.Scenario

let experiment ~label ~alloc_policy ~revocation =
  let r =
    Scenario.run
      (Scenario.make ~cache_blocks:819 ~alloc_policy ?revocation
         [
           Scenario.workload ~smart:false ~disk:0 "read490";
           Scenario.workload ~smart:true ~disk:0 "read300!";
         ])
  in
  let f = List.hd r.Runner.apps and b = List.nth r.Runner.apps 1 in
  Format.printf
    "%-28s victim: %4d I/Os %5.1fs | fool: %4d I/Os | mistakes caught: %d@." label
    f.Runner.block_ios f.Runner.elapsed b.Runner.block_ios r.Runner.placeholders_used

let () =
  Format.printf "oblivious Read490 vs foolish (MRU) Read300, 6.4 MB cache@.";
  experiment ~label:"LRU-S (no placeholders)" ~alloc_policy:Config.Lru_s
    ~revocation:None;
  experiment ~label:"LRU-SP (placeholders)" ~alloc_policy:Config.Lru_sp
    ~revocation:None;
  experiment ~label:"LRU-SP + revocation"
    ~alloc_policy:Config.Lru_sp
    ~revocation:(Some { Config.min_decisions = 50; mistake_ratio = 0.5 })
