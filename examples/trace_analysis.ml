(* Trace-driven policy analysis: record a live run, replay it offline.

   This is the methodology of the companion simulation paper: capture
   the demand reference stream of a real execution, then ask — for any
   cache size — what every replacement policy, including Belady's
   offline OPT, would have done with it.

   The punchline: dinero's MRU strategy equals OPT on its own trace.

   Run with:  dune exec examples/trace_analysis.exe
*)

module Config = Acfc_core.Config
module Runner = Acfc_workload.Runner
module Scenario = Acfc_scenario.Scenario
module Recorder = Acfc_replacement.Recorder
module Policy_sim = Acfc_replacement.Policy_sim
module Policies = Acfc_replacement.Policies

let () =
  (* Record din's reference stream from a live LRU-SP run. *)
  let recorder = Recorder.create () in
  let result =
    Scenario.run
      ~tracer:(Recorder.tracer recorder)
      (Scenario.make ~cache_blocks:819 ~alloc_policy:Config.Lru_sp
         [ Scenario.workload ~smart:true "din" ])
  in
  let live = (List.hd result.Runner.apps).Runner.block_ios in
  let trace = Recorder.to_trace recorder in
  Format.printf "recorded %d demand references (%d with read-ahead)@."
    (Array.length trace) (Recorder.length recorder);
  Format.printf "live din under LRU-SP with its MRU strategy: %d misses@.@." live;
  Format.printf "offline replay at the same 819-block cache:@.";
  List.iter
    (fun policy ->
      let r = Policy_sim.run policy ~capacity:819 trace in
      Format.printf "  %a@." Policy_sim.pp_result r)
    Policies.all;
  let opt = Policy_sim.run (module Policies.Opt) ~capacity:819 trace in
  Format.printf "@.application policy vs offline optimum: %d vs %d misses%s@." live
    opt.Policy_sim.misses
    (if live = opt.Policy_sim.misses then " — the MRU strategy IS optimal here"
     else "")
