#!/bin/sh
# Formatting check used by CI.
#
# The repository carries no ocamlformat dependency (the toolchain image
# does not ship it), so `dune build @fmt` is a no-op: dune-project sets
# (formatting disabled). This script is the enforced substitute — a
# whitespace lint over every tracked source file:
#
#   * no trailing whitespace
#   * no hard tabs in OCaml sources or dune files
#   * every file ends with exactly one newline
#
# Exit status 0 when clean; 1 with a file:line listing otherwise.

set -u
cd "$(dirname "$0")/.."

status=0

files=$(git ls-files '*.ml' '*.mli' 'dune' '*/dune' '**/dune' 'dune-project' '*.sh' '*.md' 2>/dev/null | sort -u)

for f in $files; do
  [ -f "$f" ] || continue

  if grep -n ' $' "$f" /dev/null; then
    echo "error: trailing whitespace in $f (lines above)" >&2
    status=1
  fi

  case "$f" in
    *.ml | *.mli | dune | */dune | dune-project)
      if grep -n "$(printf '\t')" "$f" /dev/null; then
        echo "error: hard tab in $f (lines above)" >&2
        status=1
      fi
      ;;
  esac

  if [ -s "$f" ] && [ -n "$(tail -c 1 "$f")" ]; then
    echo "error: $f does not end with a newline" >&2
    status=1
  fi
done

if [ "$status" -eq 0 ]; then
  echo "check-fmt: clean"
fi
exit "$status"
