(* acfc-run: command-line driver for the application-controlled file
   caching simulator.

   Subcommands:
     run        one or more applications over a shared cache
     scenario   run a machine description from an acfc-scenario/1 file
     workload   dump / validate / replay / list workload IR programs
     wirgen     generate seeded synthetic workloads and fuzz the toolchain
     report     regenerate the paper's tables and figures
     record     run applications and record the block reference trace
     policies   trace-driven replacement-policy comparison
     policy     inspect the unified replacement-policy registry
     store      the content-addressed artifact store (add/get/list/verify/gc)
     monitor    tail a live run's metrics stream (acfc-monitor/1 JSONL) *)

open Cmdliner
module Config = Acfc_core.Config
module Runner = Acfc_workload.Runner
module Scenario = Acfc_scenario.Scenario
module Catalog = Acfc_scenario.Catalog
module Wir = Acfc_wir.Wir
module Wirgen = Acfc_wirgen.Wirgen
module Fuzz = Acfc_wirgen.Fuzz
module Experiments = Acfc_experiments
module Obs = Acfc_obs
module Store = Acfc_store.Store
module Kind = Acfc_store.Kind
module Manifest = Acfc_store.Manifest

(* {2 Shared arguments} *)

let cache_mb =
  let doc = "Buffer cache size in MB (the paper uses 6.4, 8, 12, 16)." in
  Arg.(value & opt float 6.4 & info [ "c"; "cache-mb" ] ~docv:"MB" ~doc)

let policy =
  let parse s =
    match Config.alloc_policy_of_string s with
    | Some p -> Ok p
    | None -> Error (`Msg ("unknown allocation policy: " ^ s))
  in
  let print ppf p = Config.pp_alloc_policy ppf p in
  Arg.conv (parse, print)

let alloc_policy =
  let doc =
    "Kernel allocation policy: global-lru (the original kernel), alloc-lru, \
     lru-s, or lru-sp."
  in
  Arg.(value & opt policy Config.Lru_sp & info [ "p"; "policy" ] ~docv:"POLICY" ~doc)

let seed =
  let doc = "Random seed (runs are deterministic for a given seed)." in
  Arg.(value & opt int 0 & info [ "seed" ] ~docv:"N" ~doc)

let runs =
  let doc = "Cold-start runs to average per data point." in
  Arg.(value & opt int 3 & info [ "r"; "runs" ] ~docv:"N" ~doc)

let jobs =
  let doc =
    "Run independent simulations on $(docv) domains in parallel. Results are \
     byte-identical to a sequential run. Defaults to \\$ACFC_JOBS (use \
     'auto' there for one per core), else 1."
  in
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let capacity =
  let doc = "Cache capacity in blocks." in
  Arg.(value & opt int 819 & info [ "capacity" ] ~docv:"N" ~doc)

let dump_scenario =
  let doc =
    "Also save the run's machine description as an acfc-scenario/1 JSON file \
     to $(docv), replayable with $(b,acfc-run scenario). The run itself \
     proceeds unchanged."
  in
  Arg.(value & opt (some string) None & info [ "dump-scenario" ] ~docv:"FILE" ~doc)

(* {2 Artifact store plumbing} *)

let store_env = Cmd.Env.info "ACFC_STORE" ~doc:"Default artifact store directory."

let store_dir =
  let doc =
    "Content-addressed artifact store directory (created if missing). \
     Commands that produce artifacts ingest them here; $(b,acfc-run store) \
     inspects it."
  in
  Arg.(value & opt (some string) None & info [ "store" ] ~env:store_env ~docv:"DIR" ~doc)

let open_store_opt = function
  | None -> None
  | Some dir ->
    (match Store.open_ dir with
    | Ok s -> Some s
    | Error msg ->
      prerr_endline ("acfc-run: " ^ msg);
      exit 1)

let open_store_req = function
  | Some dir ->
    (match Store.open_ dir with
    | Ok s -> s
    | Error msg ->
      prerr_endline ("acfc-run: " ^ msg);
      exit 1)
  | None ->
    prerr_endline
      "acfc-run: no store directory (pass --store DIR or set ACFC_STORE)";
    exit 1

let report_outcome ppf what = function
  | Store.Created e ->
    Format.fprintf ppf "%s: stored %s/%s (%d bytes)@." what
      (Kind.to_string e.Manifest.kind) e.Manifest.digest e.Manifest.bytes
  | Store.Exists e ->
    Format.fprintf ppf "%s: already stored as %s/%s@." what
      (Kind.to_string e.Manifest.kind) e.Manifest.digest

(* Implicit ingestion (a run that also happens to carry --store) is a
   status notice: stderr, so golden stdout comparisons stay exact. *)
let ingest_or_die ?(ppf = Format.err_formatter) what = function
  | Ok outcome -> report_outcome ppf what outcome
  | Error msg ->
    prerr_endline ("acfc-run: " ^ msg);
    exit 1

(* Ingest a scenario's canonical bytes under its hash label. *)
let ingest_scenario store scenario =
  let hash = Scenario.hash scenario in
  ingest_or_die "scenario"
    (Store.add store ~kind:Kind.Scenario ~label:("scenario:" ^ hash) ~expect:hash
       (Scenario.to_string scenario))

(* {2 Live monitoring plumbing} *)

let monitor_out =
  let doc =
    "Stream metrics snapshots to $(docv) as acfc-monitor/1 JSON Lines while \
     the run executes; tail it live with $(b,acfc-run monitor) $(docv)."
  in
  Arg.(value & opt (some string) None & info [ "monitor" ] ~docv:"FILE" ~doc)

let monitor_every =
  let doc = "Seconds of simulated time between monitor snapshots." in
  Arg.(value & opt float 1.0 & info [ "monitor-every" ] ~docv:"SECONDS" ~doc)

(* {2 run} *)

let app_names =
  let all = List.map (fun (n, _, _) -> n) Experiments.Registry.apps in
  let doc =
    "Applications to run concurrently. Available: "
    ^ String.concat ", " all
    ^ ", plus readN and readN! (oblivious / foolish-MRU ReadN, e.g. read300!)."
  in
  Arg.(non_empty & pos_all string [] & info [] ~docv:"APP" ~doc)

let oblivious =
  let doc = "Run the applications without their caching strategies." in
  Arg.(value & flag & info [ "oblivious" ] ~doc)

let trace_out =
  let doc =
    "Write a structured event trace to $(docv): every cache hit, miss, \
     eviction, swap, placeholder transition, fbehavior call, syscall and \
     disk I/O, stamped with simulated time. JSON Lines by default; a \
     $(b,.csv) suffix selects CSV."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let metrics_out =
  let doc =
    "Write a JSON metrics snapshot (counters, gauges, latency histograms) \
     taken at the end of the run to $(docv)."
  in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)

(* Build the sink for the scenario's trace/metrics outputs; returns the
   sink and a [finish] closure that writes the metrics file and closes
   channels. *)
let make_obs (spec : Scenario.obs_spec) =
  match (spec.trace_path, spec.metrics_path) with
  | None, None -> (None, fun () -> ())
  | trace_out, metrics_out ->
    let channel = ref None in
    let backend =
      match trace_out with
      | None -> Obs.Sink.Null
      | Some path ->
        let oc = open_out path in
        channel := Some oc;
        if Filename.check_suffix path ".csv" then Obs.Sink.Csv oc
        else Obs.Sink.Jsonl oc
    in
    let sink = Obs.Sink.create ~backend () in
    let finish () =
      (match metrics_out with
      | None -> ()
      | Some path ->
        let snapshot =
          Obs.Metrics.snapshot (Obs.Sink.metrics sink) ~now:(Obs.Sink.now sink)
        in
        let oc = open_out path in
        Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
            output_string oc (Obs.Json.to_string snapshot);
            output_char oc '\n');
        Format.printf "metrics: snapshot -> %s@." path);
      (match !channel with
      | Some oc ->
        Obs.Sink.flush sink;
        close_out oc;
        Format.printf "trace: %d events -> %s@." (Obs.Sink.emitted sink)
          (Option.get trace_out)
      | None -> ())
    in
    (Some sink, finish)

let maybe_dump scenario = function
  | None -> ()
  | Some path -> Scenario.save scenario path

(* Monitoring needs a live metrics registry: keep the scenario's own
   sink when it has one, otherwise conjure a Null-backend sink that
   exists only to be sampled. *)
let wire_monitor scenario obs = function
  | None -> (obs, None)
  | Some (path, every) ->
    let obs =
      match obs with
      | Some _ -> obs
      | None -> Some (Obs.Sink.create ~backend:Obs.Sink.Null ())
    in
    let producer =
      Obs.Monitor.producer ~path
        ~info:[ ("scenario", Obs.Json.Str (Scenario.hash scenario)) ]
        ()
    in
    Format.eprintf "monitor: streaming snapshots -> %s@." path;
    (obs, Some (producer, every))

(* Execute a scenario exactly as [run] does: wire its trace/metrics
   outputs, run, print the per-app results and the cache summary. *)
let execute_scenario ?monitor scenario =
  let obs, finish_obs = make_obs scenario.Scenario.obs in
  let obs, monitor = wire_monitor scenario obs monitor in
  let result = Scenario.run ?obs ?monitor scenario in
  Format.printf "%a" Runner.pp result;
  Format.printf
    "cache: %d hits, %d misses; %d overrules, %d placeholders (%d used)@."
    result.Runner.cache_hits result.Runner.cache_misses result.Runner.overrules
    result.Runner.placeholders_created result.Runner.placeholders_used;
  finish_obs ();
  result

(* Execute a fleet scenario through the domain-parallel fleet engine:
   the report is byte-identical at every [jobs] value, so the golden
   smoke can diff --jobs 1 against --jobs 4. *)
let execute_fleet ?jobs ?monitor scenario =
  let obs, finish_obs = make_obs scenario.Scenario.obs in
  let obs, monitor = wire_monitor scenario obs monitor in
  let report = Acfc_fleet.Fleet.run ?jobs ?obs ?monitor scenario in
  Format.printf "%a" Acfc_fleet.Fleet.pp report;
  finish_obs ();
  report

let cli_workloads ~oblivious names =
  List.map
    (fun name ->
      let smart = if oblivious then Some false else None in
      try Scenario.workload ?smart name
      with Invalid_argument msg -> failwith msg)
    names

let run_cmd =
  let go cache_mb alloc_policy seed oblivious trace_out metrics_out dump store
      monitor_path monitor_every names =
    let scenario =
      Scenario.make ~seed ~cache_blocks:(Scenario.blocks_of_mb cache_mb)
        ~alloc_policy
        ~obs:{ Scenario.trace_path = trace_out; metrics_path = metrics_out }
        (cli_workloads ~oblivious names)
    in
    maybe_dump scenario dump;
    Option.iter (fun s -> ingest_scenario s scenario) (open_store_opt store);
    let monitor = Option.map (fun path -> (path, monitor_every)) monitor_path in
    ignore (execute_scenario ?monitor scenario)
  in
  let term =
    Term.(
      const go $ cache_mb $ alloc_policy $ seed $ oblivious $ trace_out $ metrics_out
      $ dump_scenario $ store_dir $ monitor_out $ monitor_every $ app_names)
  in
  let info =
    Cmd.info "run" ~doc:"Run applications over the application-controlled cache"
  in
  Cmd.v info term

(* {2 scenario} *)

let scenario_file =
  let doc = "An acfc-scenario/1 JSON machine description." in
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc)

let inline_flag =
  let doc =
    "Replace every named workload by the inline IR program it compiles to \
     before running (and before $(b,--dump-scenario)), so the machine \
     description carries its workloads whole instead of referencing the \
     catalog. The run itself is identical by construction."
  in
  Arg.(value & flag & info [ "inline" ] ~doc)

let check_flag =
  let doc =
    "Parse and statically check the file through the strict parser, print its \
     fingerprint and workload count, and exit without running. Non-zero exit \
     on any rejection, with the offending $(b,\\$.path)."
  in
  Arg.(value & flag & info [ "check" ] ~doc)

let scenario_cmd =
  let go dump inline check jobs store monitor_out monitor_every file =
    match Scenario.load file with
    | Error msg ->
      prerr_endline ("acfc-run: " ^ msg);
      exit 1
    | Ok scenario ->
      let scenario = if inline then Scenario.inline_workloads scenario else scenario in
      if check then begin
        Format.printf "%s: ok; %d workloads, %d disks; hash %s@." file
          (List.length scenario.Scenario.workloads)
          (List.length scenario.Scenario.disks)
          (Scenario.hash scenario);
        match scenario.Scenario.fleet with
        | None -> ()
        | Some f ->
          Format.printf "fleet: %d clients, %d shared files, lookahead %g ms@."
            f.Scenario.clients f.Scenario.shared_files
            (Scenario.fleet_lookahead_ms f)
      end
      else begin
        maybe_dump scenario dump;
        Option.iter (fun s -> ingest_scenario s scenario) (open_store_opt store);
        let monitor = Option.map (fun path -> (path, monitor_every)) monitor_out in
        match scenario.Scenario.fleet with
        | Some _ -> ignore (execute_fleet ?jobs ?monitor scenario)
        | None -> ignore (execute_scenario ?monitor scenario)
      end
  in
  let term =
    Term.(
      const go $ dump_scenario $ inline_flag $ check_flag $ jobs $ store_dir
      $ monitor_out $ monitor_every $ scenario_file)
  in
  let info =
    Cmd.info "scenario"
      ~doc:"Run a complete machine description from a scenario file"
      ~man:
        [
          `S Manpage.s_description;
          `P
            "Loads an $(b,acfc-scenario/1) JSON file — cache configuration, \
             allocation policy, disks and their schedulers, workloads, seed, \
             observability outputs — assembles exactly that machine and runs \
             it. Workloads name a catalog application ($(b,\"app\")) or carry \
             an inline $(b,acfc-wir/1) program ($(b,\"program\")). Produce \
             such files by hand (see docs/TUTORIAL.md), from \
             $(b,examples/scenarios/), or with $(b,--dump-scenario) on \
             $(b,acfc-run run). Unknown fields are rejected with their path. \
             A scenario with a $(b,fleet) section replicates the machine \
             into N clients in front of a shared server cache and runs the \
             domain-parallel fleet engine; $(b,--jobs) picks the worker \
             count without changing a byte of the report.";
        ]
  in
  Cmd.v info term

(* {2 workload} *)

(* A workload IR source: a catalog application name, or a file holding
   an acfc-wir/1 JSON document. *)
let load_program src =
  if Sys.file_exists src then Wir.load src
  else
    match Catalog.resolve src with
    | Error msg -> Error ("workload: " ^ msg)
    | Ok entry ->
      (match Acfc_workload.App.program entry.Catalog.app with
      | Some p -> Ok p
      | None -> Error (Printf.sprintf "workload: application %S is not an IR program" src))

let or_die = function
  | Ok v -> v
  | Error msg ->
    prerr_endline ("acfc-run: " ^ msg);
    exit 1

let workload_src =
  let doc = "A catalog application name (cs1, din, read300!, …) or an acfc-wir/1 JSON file." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"APP|FILE" ~doc)

let workload_dump_cmd =
  let out =
    let doc = "Write the program here instead of standard output." in
    Arg.(value & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE" ~doc)
  in
  let file_blocks =
    let doc = "Backing-file size in blocks for the readN family." in
    Arg.(value & opt (some int) None & info [ "file-blocks" ] ~docv:"N" ~doc)
  in
  let go file_blocks out src =
    let program =
      if Sys.file_exists src then or_die (Wir.load src)
      else
        or_die
          (match Catalog.resolve ?file_blocks src with
          | Error msg -> Error ("workload: " ^ msg)
          | Ok entry ->
            (match Acfc_workload.App.program entry.Catalog.app with
            | Some p -> Ok p
            | None ->
              Error (Printf.sprintf "workload: application %S is not an IR program" src)))
    in
    match out with
    | Some path -> Wir.save program path
    | None -> print_endline (Wir.to_string program)
  in
  let term = Term.(const go $ file_blocks $ out $ workload_src) in
  let info =
    Cmd.info "dump" ~doc:"Write a workload's IR program as canonical acfc-wir/1 JSON"
  in
  Cmd.v info term

let describe_program program =
  let refs = Wir.references program in
  let distinct = Hashtbl.create 1024 in
  Array.iter (fun b -> Hashtbl.replace distinct b ()) refs;
  Format.printf "%s (%s): valid; %d ops, %d files, %d demand references over %d blocks@."
    program.Wir.name program.Wir.category (Wir.op_count program)
    (Wir.file_count program) (Array.length refs) (Hashtbl.length distinct)

let workload_validate_cmd =
  let go src =
    let program = or_die (load_program src) in
    match Wir.validate program with
    | Error msg ->
      prerr_endline ("acfc-run: " ^ msg);
      exit 1
    | Ok () -> describe_program program
  in
  let term = Term.(const go $ workload_src) in
  let info =
    Cmd.info "validate"
      ~doc:"Parse and statically check a workload IR program, then summarise it"
  in
  Cmd.v info term

let workload_replay_cmd =
  let go capacity seed jobs src =
    let program = or_die (load_program src) in
    let trace = Wir.references ~rng:(Acfc_sim.Rng.create seed) program in
    Format.printf "trace: %a@." Acfc_replacement.Trace.pp_summary trace;
    Acfc_par.Pool.map ?jobs
      (fun policy -> Acfc_replacement.Policy_sim.run policy ~capacity trace)
      Acfc_replacement.Policies.all
    |> List.iter (fun result ->
           Format.printf "%a@." Acfc_replacement.Policy_sim.pp_result result)
  in
  let term = Term.(const go $ capacity $ seed $ jobs $ workload_src) in
  let info =
    Cmd.info "replay"
      ~doc:
        "Fast-forward a workload program's demand reference stream (no disks, no \
         engine) and compare replacement policies on it"
  in
  Cmd.v info term

let workload_list_cmd =
  let go () =
    List.iter print_endline (List.sort String.compare Catalog.app_names)
  in
  let term = Term.(const go $ const ()) in
  let info =
    Cmd.info "list"
      ~doc:
        "Print every catalog application name, one per line (the readN family \
         is parameterised and not listed). CI derives its smoke loops from \
         this, so new applications are covered automatically."
  in
  Cmd.v info term

let workload_cmd =
  let info =
    Cmd.info "workload"
      ~doc:"Inspect, validate and replay workload IR programs (acfc-wir/1)"
      ~man:
        [
          `S Manpage.s_description;
          `P
            "Every catalog application is a typed workload IR program — data, \
             not code. $(b,dump) serialises one (or re-canonicalises a file), \
             $(b,validate) statically checks one and prints its vitals, \
             $(b,replay) fast-forwards its demand reference stream straight \
             into the replacement-policy lab, with no simulated machine in \
             between, and $(b,list) enumerates the catalog.";
        ]
  in
  Cmd.group info
    [ workload_dump_cmd; workload_validate_cmd; workload_replay_cmd; workload_list_cmd ]

(* {2 wirgen} *)

let spec_arg =
  let doc =
    "An acfc-wirgen/1 spec file describing the corpus family (defaults to the \
     built-in default spec, every pattern weighted equally)."
  in
  Arg.(value & opt (some file) None & info [ "spec" ] ~docv:"FILE" ~doc)

let load_spec = function
  | None -> Wirgen.default
  | Some path -> or_die (Wirgen.load path)

let wirgen_gen_cmd =
  let out =
    let doc = "Write the program here instead of standard output." in
    Arg.(value & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE" ~doc)
  in
  let go spec seed out store =
    let spec = load_spec spec in
    let program = Wirgen.generate spec ~seed in
    (match open_store_opt store with
    | None -> ()
    | Some s ->
      ingest_or_die "wirgen-spec" (Wirgen.ingest_spec s spec);
      ingest_or_die "wir"
        (Store.add s ~kind:Kind.Wir_program ~expect:(Wir.hash program)
           (Wir.to_string program)));
    match out with
    | Some path ->
      Wir.save program path;
      Format.printf "%s: %s (spec %s, seed %d)@." path (Wir.hash program)
        (Wirgen.hash spec) seed
    | None -> print_endline (Wir.to_string program)
  in
  let term = Term.(const go $ spec_arg $ seed $ out $ store_dir) in
  let info =
    Cmd.info "gen"
      ~doc:
        "Generate one workload program from a spec and a seed. Bit-reproducible: \
         the same spec and seed give identical acfc-wir/1 JSON everywhere."
  in
  Cmd.v info term

let wirgen_corpus_cmd =
  let count =
    let doc = "Corpus size (member $(i,i) uses seed + $(i,i))." in
    Arg.(value & opt int 8 & info [ "n"; "count" ] ~docv:"N" ~doc)
  in
  let dir =
    let doc = "Directory to write the corpus into (created if missing)." in
    Arg.(value & opt string "corpus" & info [ "d"; "dir" ] ~docv:"DIR" ~doc)
  in
  let go spec_file seed count dir store =
    let spec = load_spec spec_file in
    (try Sys.mkdir dir 0o755 with Sys_error _ -> ());
    let programs =
      match open_store_opt store with
      | None -> Wirgen.corpus spec ~seed ~count
      | Some s ->
        (* Resolve the whole corpus through the store: warm runs decode
           the stored artifact instead of regenerating. *)
        ingest_or_die "wirgen-spec" (Wirgen.ingest_spec s spec);
        let programs, origin = or_die (Wirgen.stored_corpus s spec ~seed ~count) in
        (match origin with
        | `Loaded digest -> Format.printf "corpus: loaded from store (%s)@." digest
        | `Generated digest ->
          Format.printf "corpus: generated and stored (%s)@." digest);
        programs
    in
    List.iter
      (fun program ->
        let path = Filename.concat dir (program.Wir.name ^ ".json") in
        Wir.save program path;
        Format.printf "%s  %s@." (Wir.hash program) path)
      programs;
    Format.printf "corpus: %d programs; spec %s (%s), seed %d@." count spec.Wirgen.name
      (Wirgen.hash spec) seed
  in
  let term = Term.(const go $ spec_arg $ seed $ count $ dir $ store_dir) in
  let info =
    Cmd.info "corpus"
      ~doc:
        "Generate a reproducible corpus of workload programs from a spec file \
         and a base seed, one acfc-wir/1 file per member"
  in
  Cmd.v info term

let wirgen_fuzz_cmd =
  let programs =
    let doc =
      "Programs to generate per spec (default 35, or 3000 with $(b,--long))."
    in
    Arg.(value & opt (some int) None & info [ "programs" ] ~docv:"N" ~doc)
  in
  let mutants =
    let doc =
      "Corrupting mutants per program (default 4, or 10 with $(b,--long))."
    in
    Arg.(value & opt (some int) None & info [ "mutants" ] ~docv:"N" ~doc)
  in
  let long =
    let doc = "Long mode: the scheduled-CI budget (minutes, not seconds)." in
    Arg.(value & flag & info [ "long" ] ~doc)
  in
  let failures_dir =
    let doc =
      "Write every failing case into $(docv) (created if missing): the \
       offending document plus a failures.jsonl with spec, seed and invariant \
       — enough to replay locally with $(b,wirgen gen --seed)."
    in
    Arg.(value & opt (some string) None & info [ "failures" ] ~docv:"DIR" ~doc)
  in
  let go spec_file seed programs mutants long failures_dir =
    let specs =
      match spec_file with
      | Some _ -> [ load_spec spec_file ]
      | None -> if long then Fuzz.long_specs else Fuzz.default_specs
    in
    let programs = match programs with Some n -> n | None -> if long then 3000 else 35 in
    let mutants = match mutants with Some n -> n | None -> if long then 10 else 4 in
    let stats, failures =
      Fuzz.run ~progress:(Format.eprintf "wirgen: %s@.") ~specs ~seed ~programs
        ~mutants ()
    in
    Format.printf "fuzz: %d generated, %d mutated, %d checks over %d specs@."
      stats.Fuzz.generated stats.Fuzz.mutated stats.Fuzz.checks (List.length specs);
    List.iter
      (fun (category, n) -> Format.printf "  %-12s %d@." category n)
      stats.Fuzz.by_category;
    (match (failures, failures_dir) with
    | [], _ -> ()
    | failures, dir ->
      (match dir with
      | None -> ()
      | Some dir -> (try Sys.mkdir dir 0o755 with Sys_error _ -> ()));
      let jsonl =
        match dir with
        | None -> None
        | Some d -> Some (open_out (Filename.concat d "failures.jsonl"))
      in
      List.iteri
        (fun i f ->
          Format.eprintf "FAIL [%s] spec %s seed %d: %s@." f.Fuzz.invariant
            f.Fuzz.spec_name f.Fuzz.seed f.Fuzz.detail;
          match dir with
          | None -> ()
          | Some d ->
            let doc_path =
              match f.Fuzz.program with
              | None -> None
              | Some doc ->
                let path = Filename.concat d (Printf.sprintf "failure-%03d.json" i) in
                let oc = open_out path in
                Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
                    output_string oc doc;
                    output_char oc '\n');
                Some path
            in
            let open Obs.Json in
            let row =
              Obj
                ([
                   ("spec", Str f.Fuzz.spec_name);
                   ("seed", Num (float_of_int f.Fuzz.seed));
                   ("invariant", Str f.Fuzz.invariant);
                   ("detail", Str f.Fuzz.detail);
                 ]
                @ match doc_path with None -> [] | Some p -> [ ("program", Str p) ])
            in
            Option.iter
              (fun oc ->
                output_string oc (to_string row);
                output_char oc '\n')
              jsonl)
        failures;
      Option.iter close_out jsonl;
      Format.eprintf "fuzz: %d failure(s)@." (List.length failures);
      exit 1)
  in
  let term =
    Term.(const go $ spec_arg $ seed $ programs $ mutants $ long $ failures_dir)
  in
  let info =
    Cmd.info "fuzz"
      ~doc:
        "Property-fuzz the wir toolchain: generated programs must validate and \
         execute, their fast-forwarded reference stream must equal the recorded \
         demand stream, the codec must round-trip, and corrupted programs must \
         be rejected with a \\$.path diagnostic"
  in
  Cmd.v info term

let wirgen_cmd =
  let info =
    Cmd.info "wirgen"
      ~doc:"Generate seeded synthetic workloads and fuzz the wir toolchain"
      ~man:
        [
          `S Manpage.s_description;
          `P
            "The paper evaluates eight hand-ported applications; $(b,wirgen) \
             draws unlimited fresh-but-plausible ones instead, from a typed \
             acfc-wirgen/1 spec: a pattern mix over the paper's access-pattern \
             taxonomy (sequential, cyclic, hot/cold, random, access-once), \
             file-count/size/pass budgets, and a smart-vs-oblivious advise \
             density. Generation is deterministic — a committed spec plus a \
             seed reproduces a corpus bit-for-bit — and $(b,fuzz) turns the \
             generator on the toolchain itself.";
        ]
  in
  Cmd.group info [ wirgen_gen_cmd; wirgen_corpus_cmd; wirgen_fuzz_cmd ]

(* {2 report} *)

let artifact =
  let doc =
    "Artifact to regenerate: "
    ^ String.concat ", " Experiments.Registry.experiment_names
    ^ ", or 'all'. See $(b,--list) for descriptions."
  in
  Arg.(value & pos 0 string "all" & info [] ~docv:"ARTIFACT" ~doc)

let quick =
  let doc = "Single run, two cache sizes (fast smoke mode)." in
  Arg.(value & flag & info [ "quick" ] ~doc)

let list_experiments =
  let doc = "List runnable experiments with descriptions and exit." in
  Arg.(value & flag & info [ "list" ] ~doc)

let report_cmd =
  let go runs quick jobs list artifact =
    if list then
      List.iter
        (fun (name, doc) -> Format.printf "%-10s %s@." name doc)
        (List.sort
           (fun (a, _) (b, _) -> String.compare a b)
           Experiments.Registry.experiments)
    else begin
      let opts =
        if quick then Experiments.Report.quick
        else { Experiments.Report.default with runs }
      in
      let opts = { opts with Experiments.Report.jobs } in
      (match artifact with
      | "all" -> Experiments.Report.run_all opts Format.std_formatter
      | "ablations" ->
        Experiments.Ablations.print_all ?jobs ~runs:opts.Experiments.Report.runs
          Format.std_formatter ()
      | "criteria" ->
        Experiments.Criteria.print Format.std_formatter
          (Experiments.Criteria.run_all ?jobs ~runs:opts.Experiments.Report.runs ())
      | name -> Experiments.Report.run_artifact opts Format.std_formatter name);
      Format.printf "@."
    end
  in
  let term = Term.(const go $ runs $ quick $ jobs $ list_experiments $ artifact) in
  let info = Cmd.info "report" ~doc:"Regenerate the paper's tables and figures" in
  Cmd.v info term

(* {2 record} *)

let record_cmd =
  let out =
    let doc = "Output trace file." in
    Cmdliner.Arg.(value & opt string "acfc.trace" & info [ "o"; "out" ] ~docv:"FILE" ~doc)
  in
  let go cache_mb alloc_policy seed oblivious out dump store names =
    let recorder = Acfc_replacement.Recorder.create () in
    let scenario =
      Scenario.make ~seed ~cache_blocks:(Scenario.blocks_of_mb cache_mb)
        ~alloc_policy
        (cli_workloads ~oblivious names)
    in
    maybe_dump scenario dump;
    let result =
      Scenario.run ~tracer:(Acfc_replacement.Recorder.tracer recorder) scenario
    in
    let oc = open_out out in
    Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
        Acfc_replacement.Recorder.save recorder oc);
    Format.printf "%a" Runner.pp result;
    Format.printf "recorded %d references to %s@."
      (Acfc_replacement.Recorder.length recorder)
      out;
    (* --store: ingest the trace under the recorded scenario's hash so
       consumers (bench, policies --trace-file) can resolve it by label. *)
    match open_store_opt store with
    | None -> ()
    | Some s ->
      ingest_scenario s scenario;
      ingest_or_die "refstream"
        (Acfc_replacement.Recorder.ingest
           ~label:("refstream:" ^ Scenario.hash scenario)
           recorder s)
  in
  let term =
    Term.(
      const go $ cache_mb $ alloc_policy $ seed $ oblivious $ out $ dump_scenario
      $ store_dir $ app_names)
  in
  let info =
    Cmd.info "record" ~doc:"Run applications and record the block reference trace"
  in
  Cmd.v info term

(* {2 policies} *)

let pattern =
  let doc = "Synthetic trace: cyclic, sequential, random, hot-cold or zipf." in
  Arg.(value & opt string "cyclic" & info [ "t"; "trace" ] ~docv:"PATTERN" ~doc)

let blocks =
  let doc = "Working-set size in blocks." in
  Arg.(value & opt int 1200 & info [ "blocks" ] ~docv:"N" ~doc)

let trace_file =
  let doc = "Replay a recorded trace file instead of a synthetic pattern." in
  Arg.(value & opt (some string) None & info [ "f"; "trace-file" ] ~docv:"FILE" ~doc)

(* {2 policy} *)

let policy_list_cmd =
  let go () =
    let module R = Acfc_policy.Registry in
    List.iter
      (fun entry ->
        Format.printf "%-11s %-13s %s@." (R.name entry)
          (if R.needs_future entry then "offline-only" else "offline+live")
          (R.summary entry))
      (List.sort (fun a b -> String.compare (R.name a) (R.name b)) R.all)
  in
  let term = Term.(const go $ const ()) in
  let info =
    Cmd.info "list"
      ~doc:
        "Print the unified policy registry, one line per core: name, whether \
         it can run as a live manager or only in offline replay \
         (clairvoyant cores need the future stream), and a one-line \
         description. These names are what scenario $(b,manager) fields, \
         $(b,acfc-run policies) and the bench tournament accept."
  in
  Cmd.v info term

let policy_cmd =
  let info =
    Cmd.info "policy"
      ~doc:"Inspect the unified replacement-policy registry"
      ~man:
        [
          `S Manpage.s_description;
          `P
            "Every replacement core — the eight stock policies and the three \
             adaptive ones — registers once and runs identically as an \
             offline trace-replay policy and (unless clairvoyant) as a live \
             $(b,fbehavior) manager installed through a scenario workload's \
             $(b,manager) field.";
        ]
  in
  Cmd.group info [ policy_list_cmd ]

let policies_cmd =
  let go pattern blocks capacity seed trace_file jobs =
    let rng = Acfc_sim.Rng.create seed in
    let module Trace = Acfc_replacement.Trace in
    let trace =
      match trace_file with
      | Some path ->
        let ic = open_in path in
        Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
            Acfc_replacement.Recorder.to_trace (Acfc_replacement.Recorder.load ic))
      | None ->
      match pattern with
      | "cyclic" -> Trace.cyclic ~file:0 ~blocks ~passes:5
      | "sequential" -> Trace.sequential ~file:0 ~blocks
      | "random" -> Trace.random ~rng ~file:0 ~blocks ~length:(5 * blocks)
      | "hot-cold" ->
        Trace.hot_cold ~rng ~hot_file:0 ~hot_blocks:(blocks / 10) ~cold_file:1
          ~cold_blocks:blocks ~hot_fraction:0.9 ~length:(5 * blocks)
      | "zipf" -> Trace.zipf ~rng ~file:0 ~blocks ~skew:1.0 ~length:(5 * blocks)
      | p -> failwith ("unknown trace pattern: " ^ p)
    in
    Format.printf "trace: %a@." Trace.pp_summary trace;
    (* Each policy simulates the (immutable) trace independently; run
       them on the pool and print in the usual order. *)
    Acfc_par.Pool.map ?jobs
      (fun policy -> Acfc_replacement.Policy_sim.run policy ~capacity trace)
      Acfc_replacement.Policies.all
    |> List.iter (fun result ->
           Format.printf "%a@." Acfc_replacement.Policy_sim.pp_result result)
  in
  let term =
    Term.(const go $ pattern $ blocks $ capacity $ seed $ trace_file $ jobs)
  in
  let info =
    Cmd.info "policies"
      ~doc:"Compare replacement policies (incl. OPT) on a synthetic or recorded trace"
  in
  Cmd.v info term

(* {2 store} *)

let kind_conv =
  let parse s =
    match Kind.of_string s with
    | Some k -> Ok k
    | None ->
      Error
        (`Msg
          (Printf.sprintf "unknown artifact kind %S (expected one of %s)" s
             (String.concat ", " (List.map Kind.to_string Kind.all))))
  in
  Arg.conv (parse, Kind.pp)

let kind_arg =
  let doc =
    "Artifact kind: " ^ String.concat ", " (List.map Kind.to_string Kind.all) ^ "."
  in
  Arg.(required & opt (some kind_conv) None & info [ "k"; "kind" ] ~docv:"KIND" ~doc)

let label_arg =
  let doc =
    "Also register a resolution label for the entry (e.g. \
     $(b,refstream:<scenario-hash>)). One label maps to one digest; relabelling \
     an existing entry to a different digest is an error."
  in
  Arg.(value & opt (some string) None & info [ "label" ] ~docv:"LABEL" ~doc)

let pp_entry ppf (e : Manifest.entry) =
  Format.fprintf ppf "%4d  %-13s  %s  %8d%s" e.Manifest.seq
    (Kind.to_string e.Manifest.kind)
    e.Manifest.digest e.Manifest.bytes
    (match e.Manifest.label with None -> "" | Some l -> "  " ^ l)

let store_add_cmd =
  let file =
    let doc = "File whose exact bytes to ingest." in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc)
  in
  let go store kind label file =
    let s = open_store_req store in
    let ic = open_in_bin file in
    let content =
      Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
          really_input_string ic (in_channel_length ic))
    in
    ingest_or_die ~ppf:Format.std_formatter file (Store.add s ~kind ?label content)
  in
  let term = Term.(const go $ store_dir $ kind_arg $ label_arg $ file) in
  let info =
    Cmd.info "add"
      ~doc:
        "Ingest a file's bytes into the store under their MD5 digest \
         (verify-then-rename; idempotent)"
  in
  Cmd.v info term

let store_get_cmd =
  let key =
    let doc = "An entry digest, or a resolution label (anything non-hex)." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"DIGEST|LABEL" ~doc)
  in
  let out =
    let doc = "Write the artifact bytes here instead of standard output." in
    Arg.(value & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE" ~doc)
  in
  let kind_opt =
    let doc =
      "Artifact kind (required when fetching by digest; ignored for labels)."
    in
    Arg.(value & opt (some kind_conv) None & info [ "k"; "kind" ] ~docv:"KIND" ~doc)
  in
  let is_digest s =
    String.length s = 32
    && String.for_all (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false) s
  in
  let go store kind_opt out key =
    let s = open_store_req store in
    let kind, digest =
      if is_digest key then
        match kind_opt with
        | Some k -> (k, key)
        | None ->
          (* A digest names the bytes, not their kind; scan the manifest. *)
          (match
             List.find_opt
               (fun (e : Manifest.entry) -> String.equal e.Manifest.digest key)
               (Store.entries s)
           with
          | Some e -> (e.Manifest.kind, e.Manifest.digest)
          | None ->
            prerr_endline ("acfc-run: store: no entry with digest " ^ key);
            exit 1)
      else
        match Store.resolve s ~label:key with
        | Some e -> (e.Manifest.kind, e.Manifest.digest)
        | None ->
          prerr_endline ("acfc-run: store: no entry labelled " ^ key);
          exit 1
    in
    let content = or_die (Store.read s ~kind ~digest) in
    match out with
    | None -> print_string content
    | Some path ->
      let oc = open_out_bin path in
      Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
          output_string oc content);
      Format.printf "%s/%s -> %s (%d bytes)@." (Kind.to_string kind) digest path
        (String.length content)
  in
  let term = Term.(const go $ store_dir $ kind_opt $ out $ key) in
  let info =
    Cmd.info "get"
      ~doc:
        "Fetch stored bytes by digest or label (bytes are re-verified against \
         the digest on the way out)"
  in
  Cmd.v info term

let store_list_cmd =
  let go store =
    let s = open_store_req store in
    match Store.entries s with
    | [] -> Format.printf "store: empty (%s)@." (Store.root s)
    | entries ->
      List.iter (fun e -> Format.printf "%a@." pp_entry e) entries;
      Format.printf "store: %d entries (%s)@." (List.length entries) (Store.root s)
  in
  let term = Term.(const go $ store_dir) in
  let info =
    Cmd.info "list"
      ~doc:"Print the manifest: seq, kind, digest, size and label of every entry"
  in
  Cmd.v info term

let store_verify_cmd =
  let go store =
    let s = open_store_req store in
    match Store.verify s with
    | Ok n -> Format.printf "store: ok; %d entries verified (%s)@." n (Store.root s)
    | Error problems ->
      List.iter (fun p -> Format.eprintf "store: %s@." p) problems;
      Format.eprintf "store: %d problem(s)@." (List.length problems);
      exit 1
  in
  let term = Term.(const go $ store_dir) in
  let info =
    Cmd.info "verify"
      ~doc:
        "Re-digest every manifest entry's bytes; non-zero exit listing each \
         missing or corrupted entry"
  in
  Cmd.v info term

let store_gc_cmd =
  let go store =
    let s = open_store_req store in
    match Store.gc s with
    | [] -> Format.printf "store: nothing to collect (%s)@." (Store.root s)
    | removed ->
      List.iter (fun p -> Format.printf "removed %s@." p) removed;
      Format.printf "store: removed %d unreferenced file(s)@." (List.length removed)
  in
  let term = Term.(const go $ store_dir) in
  let info =
    Cmd.info "gc"
      ~doc:
        "Remove files the manifest does not reference: unindexed kind-directory \
         files and staging leftovers"
  in
  Cmd.v info term

let store_cmd =
  let info =
    Cmd.info "store"
      ~doc:"Inspect and maintain the content-addressed artifact store"
      ~man:
        [
          `S Manpage.s_description;
          `P
            "Artifacts — recorded reference traces, workload IR programs, \
             wirgen specs and corpora, scenarios, bench reports — live under \
             $(b,<root>/<kind>/<digest>), where the digest is the MD5 of the \
             exact stored bytes (the same fingerprints $(b,scenario --check) \
             and $(b,wirgen gen) already print). Ingestion is \
             verify-then-rename and atomic; entries are immutable once \
             published. The store root comes from $(b,--store) or \
             \\$ACFC_STORE.";
        ]
  in
  Cmd.group info
    [ store_add_cmd; store_get_cmd; store_list_cmd; store_verify_cmd; store_gc_cmd ]

(* {2 monitor} *)

let monitor_cmd =
  let file =
    let doc = "An acfc-monitor/1 JSON Lines stream, possibly still being written." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc)
  in
  let poll =
    let doc = "Polling interval at end-of-file, in seconds." in
    Arg.(value & opt float 0.02 & info [ "poll" ] ~docv:"SECONDS" ~doc)
  in
  let timeout =
    let doc =
      "Give up after $(docv) seconds without new data (also bounds the wait \
       for the file to appear)."
    in
    Arg.(value & opt float 10.0 & info [ "timeout" ] ~docv:"SECONDS" ~doc)
  in
  let go poll timeout file =
    let r = Obs.Monitor.renderer () in
    match
      Obs.Monitor.follow ~path:file ~poll_s:poll ~timeout_s:timeout
        ~on_event:(fun event ->
          Obs.Monitor.render r Format.std_formatter event;
          Format.pp_print_flush Format.std_formatter ();
          `Continue)
        ()
    with
    | Ok () -> ()
    | Error msg ->
      prerr_endline ("acfc-run: " ^ msg);
      exit 1
  in
  let term = Term.(const go $ poll $ timeout $ file) in
  let info =
    Cmd.info "monitor"
      ~doc:"Tail a live run's metrics stream with follow semantics"
      ~man:
        [
          `S Manpage.s_description;
          `P
            "Start a run with $(b,--monitor FILE) (on $(b,run) or \
             $(b,scenario)), then, from another terminal, \
             $(b,acfc-run monitor FILE): snapshots appear as the simulation \
             emits them — cache hit rate with its delta against the previous \
             snapshot, and per-client gauges for fleet scenarios. Exits when \
             the run writes its end record, or non-zero after $(b,--timeout) \
             seconds of silence.";
        ]
  in
  Cmd.v info term

let () =
  let info =
    Cmd.info "acfc-run" ~version:"1.0.0"
      ~doc:"Application-controlled file caching (OSDI '94) simulator"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            run_cmd;
            scenario_cmd;
            workload_cmd;
            wirgen_cmd;
            report_cmd;
            record_cmd;
            policies_cmd;
            policy_cmd;
            store_cmd;
            monitor_cmd;
          ]))
