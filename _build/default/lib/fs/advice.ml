module Control = Acfc_core.Control
module Policy = Acfc_core.Policy

type t =
  | Normal
  | Sequential of { reuse : bool }
  | Random
  | Willneed of { first : int; last : int }
  | Dontneed of { first : int; last : int }
  | Noreuse
  | Cyclic

let ( let* ) = Result.bind

let advise control (file : File.t) advice =
  let fid = File.id file in
  match advice with
  | Normal ->
    file.File.readahead_enabled <- true;
    let* () = Control.set_priority control ~file:fid 0 in
    Control.set_policy control ~prio:0 Policy.Lru
  | Sequential { reuse } ->
    file.File.readahead_enabled <- true;
    if reuse then Ok () else Control.set_priority control ~file:fid (-1)
  | Random ->
    file.File.readahead_enabled <- false;
    Ok ()
  | Willneed { first; last } ->
    (* Keep the blocks around: a temporary lift above the default level
       that ends at their next reference (paper Sec. 3, "future access
       prediction"). *)
    Control.set_temppri control ~file:fid ~first ~last ~prio:1
  | Dontneed { first; last } ->
    Control.set_temppri control ~file:fid ~first ~last ~prio:(-1)
  | Noreuse -> Control.set_priority control ~file:fid (-1)
  | Cyclic ->
    let* prio = Control.get_priority control ~file:fid in
    Control.set_policy control ~prio Policy.Mru

let pp ppf = function
  | Normal -> Format.pp_print_string ppf "normal"
  | Sequential { reuse } -> Format.fprintf ppf "sequential(reuse=%b)" reuse
  | Random -> Format.pp_print_string ppf "random"
  | Willneed { first; last } -> Format.fprintf ppf "willneed[%d..%d]" first last
  | Dontneed { first; last } -> Format.fprintf ppf "dontneed[%d..%d]" first last
  | Noreuse -> Format.pp_print_string ppf "noreuse"
  | Cyclic -> Format.pp_print_string ppf "cyclic"
