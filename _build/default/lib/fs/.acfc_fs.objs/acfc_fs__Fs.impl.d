lib/fs/fs.ml: Acfc_core Acfc_disk Acfc_sim Bytes Engine File Fun Hashtbl Ivar List Option Printf Resource Rng Stdlib
