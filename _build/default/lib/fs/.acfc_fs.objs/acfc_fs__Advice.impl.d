lib/fs/advice.ml: Acfc_core File Format Result
