lib/fs/file.ml: Acfc_core Acfc_disk Format
