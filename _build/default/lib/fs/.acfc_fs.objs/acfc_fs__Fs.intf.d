lib/fs/fs.mli: Acfc_core Acfc_disk Acfc_sim File
