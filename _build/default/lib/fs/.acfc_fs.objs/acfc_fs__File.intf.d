lib/fs/file.mli: Acfc_core Acfc_disk Format
