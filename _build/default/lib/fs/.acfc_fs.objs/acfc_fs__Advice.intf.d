lib/fs/advice.mli: Acfc_core File Format
