type id = Acfc_core.Block.file

type t = {
  id : id;
  name : string;
  mutable size_bytes : int;
  reserve_blocks : int;
  start_block : int;
  disk : Acfc_disk.Disk.t;
  owner : Acfc_core.Pid.t option;
  mutable unlinked : bool;
  mutable seq_cursor : int;  (* last block index read, for read-ahead *)
  mutable readahead_enabled : bool;
}

let block_bytes = Acfc_disk.Params.block_bytes

let id t = t.id

let name t = t.name

let size_bytes t = t.size_bytes

let size_blocks t = (t.size_bytes + block_bytes - 1) / block_bytes

let block_of_offset ~byte = byte / block_bytes

let block_key t ~index = Acfc_core.Block.make ~file:t.id ~index

let disk_addr t ~index = t.start_block + index

let pp ppf t =
  Format.fprintf ppf "%s(id=%d, %dB @%s+%d)" t.name t.id t.size_bytes
    (Acfc_disk.Disk.params t.disk).Acfc_disk.Params.name t.start_block
