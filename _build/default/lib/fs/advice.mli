(** A [posix_fadvise]-style convenience layer over the paper's
    interface.

    The paper's application-control primitives are the ancestor of the
    access-pattern advice that later reached POSIX as [posix_fadvise].
    This module closes the loop: each advice constructor is implemented
    with the paper's five calls (plus the file system's read-ahead
    switch), showing that the two-level interface subsumes the
    fadvise patterns.

    | advice       | implementation                                       |
    |--------------|------------------------------------------------------|
    | [Normal]     | long-term priority 0, read-ahead on                  |
    | [Sequential] | read-ahead on; with [reuse] = false, like [Noreuse]  |
    | [Random]     | per-file read-ahead off                              |
    | [Willneed]   | temporary priority +1 on the cached range            |
    | [Dontneed]   | temporary priority −1 on the cached range (the paper's "done-with blocks" idiom) |
    | [Noreuse]    | long-term priority −1 (read-once data leaves fast)   |
    | [Cyclic]     | MRU on the file's priority level — the pattern fadvise cannot express, and the paper's biggest win |

    Advice that manipulates priorities requires the caller to be a
    registered manager (a {!Acfc_core.Control.t}); [Random] and
    [Sequential]'s read-ahead half act on the file system alone. *)

type t =
  | Normal
  | Sequential of { reuse : bool }
  | Random
  | Willneed of { first : int; last : int }  (** block range, inclusive *)
  | Dontneed of { first : int; last : int }
  | Noreuse
  | Cyclic

val advise :
  Acfc_core.Control.t -> File.t -> t -> (unit, Acfc_core.Error.t) result
(** Apply advice for [file] on behalf of the control handle's process. *)

val pp : Format.formatter -> t -> unit
