(** File metadata.

    Files are laid out contiguously on one disk (a simple extent
    allocator): block [i] of the file lives at disk block
    [start_block + i]. Contiguous layout is what a freshly-restored
    FFS-style file system gives large files, and it makes sequential
    scans pay sequential-transfer costs, as the paper's workloads do. *)

type id = Acfc_core.Block.file

type t = {
  id : id;
  name : string;
  mutable size_bytes : int;
  reserve_blocks : int;  (** allocated extent; the file may grow into it *)
  start_block : int;  (** first disk block of the extent *)
  disk : Acfc_disk.Disk.t;
  owner : Acfc_core.Pid.t option;
      (** process charged for write-backs of this file's blocks *)
  mutable unlinked : bool;
  mutable seq_cursor : int;
      (** last block index read; the file system uses it to detect
          sequential access for read-ahead *)
  mutable readahead_enabled : bool;
      (** per-file read-ahead switch, cleared by {!Advice.Random} *)
}

val id : t -> id

val name : t -> string

val size_bytes : t -> int

val size_blocks : t -> int
(** Number of (whole or partial) blocks currently in the file. *)

val block_of_offset : byte:int -> int
(** Block index containing byte offset [byte]. *)

val block_key : t -> index:int -> Acfc_core.Block.t

val disk_addr : t -> index:int -> int
(** Absolute disk block address of file block [index]. *)

val pp : Format.formatter -> t -> unit
