module Policy = Acfc_core.Policy

let block_bytes = Acfc_disk.Params.block_bytes

let repeats = 5

let cpu_per_block = 0.0075

let app ?(file_blocks = 1200) ~n ~mode () =
  if n <= 0 || file_blocks <= 0 then invalid_arg "Readn.app: sizes must be positive";
  let name =
    Printf.sprintf "read%d%s" n (match mode with `Foolish -> "!" | `Oblivious -> "")
  in
  let run env ~disk =
    let file =
      Acfc_fs.Fs.create_file env.Env.fs ~owner:env.Env.pid
        ~name:(Env.unique_name env "readn.dat")
        ~disk ~size_bytes:(file_blocks * block_bytes) ()
    in
    (match mode with
    | `Foolish ->
      (* A deliberately bad policy: MRU is terrible for this pattern. *)
      Env.set_priority env file 0;
      Env.set_policy env ~prio:0 Policy.Mru
    | `Oblivious -> ());
    let group = ref 0 in
    while !group * n < file_blocks do
      let first = !group * n in
      let count = Stdlib.min n (file_blocks - first) in
      for _pass = 1 to repeats do
        for block = first to first + count - 1 do
          Env.read_blocks env file ~first:block ~count:1;
          Env.compute env cpu_per_block
        done
      done;
      incr group
    done
  in
  App.make ~name ~category:"grouped-cyclic" run
