module Rng = Acfc_sim.Rng

let block_bytes = Acfc_disk.Params.block_bytes

let custom ?(name = "pjn") ?(outer_blocks = 410) ?(index_blocks = 640)
    ?(internal_blocks = 40) ?(inner_blocks = 4096) ?(probes = 20_000)
    ?(match_fraction = 0.2) ?(cpu_per_probe = 0.0045) () =
  if match_fraction < 0.0 || match_fraction > 1.0 then
    invalid_arg "Postgres.custom: match_fraction out of range";
  let run env ~disk =
  let outer =
    Acfc_fs.Fs.create_file env.Env.fs ~owner:env.Env.pid
      ~name:(Env.unique_name env "twentyk")
      ~disk ~size_bytes:(outer_blocks * block_bytes) ()
  in
  let index =
    Acfc_fs.Fs.create_file env.Env.fs ~owner:env.Env.pid
      ~name:(Env.unique_name env "twohundredk_unique1")
      ~disk ~size_bytes:(index_blocks * block_bytes) ()
  in
  let inner =
    Acfc_fs.Fs.create_file env.Env.fs ~owner:env.Env.pid
      ~name:(Env.unique_name env "twohundredk")
      ~disk ~size_bytes:(inner_blocks * block_bytes) ()
  in
  (* Strategy: only the index is raised above the data (paper Sec. 5.1);
     LRU is the default policy at both levels. *)
  Env.set_priority env index 1;
  let rng = env.Env.rng in
  for probe = 0 to probes - 1 do
    (* Advance the sequential outer scan so that it finishes with the
       probes: one outer block per [probes / outer_blocks] probes. *)
    if probe mod (probes / outer_blocks) = 0 then begin
      let outer_block = Stdlib.min (probe / (probes / outer_blocks)) (outer_blocks - 1) in
      Env.read_blocks env outer ~first:outer_block ~count:1
    end;
    (* B-tree descent: one internal block, one leaf block. *)
    Env.read_blocks env index ~first:(Rng.int rng internal_blocks) ~count:1;
    Env.read_blocks env index
      ~first:(internal_blocks + Rng.int rng (index_blocks - internal_blocks))
      ~count:1;
    if Rng.float rng 1.0 < match_fraction then
      Env.read_blocks env inner ~first:(Rng.int rng inner_blocks) ~count:1;
    Env.compute env cpu_per_probe
  done
  in
  App.make ~name ~category:"hot/cold" run

(* The paper's join: 20 000 outer tuples against the 5 MB non-clustered
   index and the 32 MB inner relation, 20% selectivity. *)
let pjn = custom ()
