module Policy = Acfc_core.Policy

let block_bytes = Acfc_disk.Params.block_bytes

let custom ?(name = "din") ?(trace_blocks = 1024) ?(simulations = 9)
    ?(cpu_per_block = 0.0101) () =
  let run env ~disk =
    let trace =
      Acfc_fs.Fs.create_file env.Env.fs ~owner:env.Env.pid
        ~name:(Env.unique_name env "cc.trace")
        ~disk ~size_bytes:(trace_blocks * block_bytes) ()
    in
    Env.set_priority env trace 0;
    Env.set_policy env ~prio:0 Policy.Mru;
    for _sim = 1 to simulations do
      for index = 0 to trace_blocks - 1 do
        Env.read_blocks env trace ~first:index ~count:1;
        Env.compute env cpu_per_block
      done
    done
  in
  App.make ~name ~category:"cyclic" run

(* The paper's run: nine simulations (line {32,64,128} x assoc {1,2,4})
   over the 8 MB "cc" trace. *)
let din = custom ()
