(** Postgres join (paper run pjn): indexed nested-loop join.

    The outer relation [twentyk] (3.2 MB) is scanned sequentially; each
    outer tuple probes the non-clustered index
    [twohundredk_unique1] (5 MB) and, on a match, fetches a uniformly
    random block of the inner relation [twohundredk] (32 MB). Index
    blocks are far hotter than data blocks — the hot/cold pattern — so
    the smart strategy gives the index long-term priority 1 with LRU at
    both levels (the paper's single [set_priority] call).

    Model: 410-block outer, 640-block index (40 internal + 600 leaf
    blocks), 4096-block inner; 20 000 probes, each reading one internal
    and one leaf block, 20% matching and fetching one data block. *)

val pjn : App.t

val custom :
  ?name:string ->
  ?outer_blocks:int ->
  ?index_blocks:int ->
  ?internal_blocks:int ->
  ?inner_blocks:int ->
  ?probes:int ->
  ?match_fraction:float ->
  ?cpu_per_probe:float ->
  unit ->
  App.t
(** Index-join instances with other relation sizes and selectivities;
    [pjn] is [custom ()]. Raises [Invalid_argument] on a selectivity
    outside [0, 1]. *)
