let block_bytes = Acfc_disk.Params.block_bytes

let object_files = 80

let file_blocks = 40

let symbol_blocks = 12  (* blocks 0..11: header + symbol table *)

let output_blocks = 1024

let cpu_per_block = 0.0113

let run env ~disk =
  let objects =
    Array.init object_files (fun i ->
        Acfc_fs.Fs.create_file env.Env.fs ~owner:env.Env.pid
          ~name:(Env.unique_name env (Printf.sprintf "obj%02d.o" i))
          ~disk
          ~size_bytes:(file_blocks * block_bytes)
          ())
  in
  let output =
    Acfc_fs.Fs.create_file env.Env.fs ~owner:env.Env.pid
      ~name:(Env.unique_name env "vmunix")
      ~disk ~size_bytes:0
      ~reserve_bytes:(output_blocks * block_bytes) ()
  in
  (* Pass 1: headers and symbol tables. *)
  Array.iter
    (fun file ->
      for block = 0 to symbol_blocks - 1 do
        Env.read_blocks env file ~first:block ~count:1;
        Env.compute env cpu_per_block
      done)
    objects;
  (* Pass 2: full relocation scan; object data is consumed exactly once
     and freed as soon as each block has been read. *)
  Array.iter
    (fun file ->
      for block = 0 to file_blocks - 1 do
        Env.read_blocks env file ~first:block ~count:1;
        Env.compute env cpu_per_block;
        if block >= symbol_blocks then Env.done_with_block env file block
      done)
    objects;
  (* Emit the linked image; written blocks are also done-with. *)
  for block = 0 to output_blocks - 1 do
    Env.write_blocks env output ~first:block ~count:1;
    Env.compute env (cpu_per_block /. 2.0);
    Env.done_with_block env output block
  done

let ldk = App.make ~name:"ldk" ~category:"access-once" run
