(** External sort (paper run sort): UNIX [sort] on a 17 MB text file.

    Phase 1 reads the input once, producing 17 sorted runs of 128
    blocks (1 MB of in-core sort buffer) written to temporary files.
    Phase 2 merges eight files at a time, in creation order, reading
    run blocks round-robin; each temporary file is deleted once
    consumed.

    Smart strategy (paper Sec. 5.1): the input file gets priority −1
    (read once — flush fast); temporaries stay at priority 0; MRU at
    both levels (runs created earliest are merged first); and the
    "readline" access-once trick frees each temporary block as soon as
    it has been fully consumed. Keeping recently-written runs cached
    until the merge both saves the re-read and lets deletion cancel the
    write-back of still-dirty blocks. *)

val sort : App.t
