(** Dinero (paper run din): trace-driven CPU-cache simulator.

    Nine simulations (line size ∈ {32, 64, 128} × associativity ∈
    {1, 2, 4}), each a sequential pass over the same 8 MB ("cc") trace
    file — the textbook cyclic pattern. Smart strategy: MRU on the
    trace file's level.

    The 10.1 ms/block simulation cost makes a fully-cached run take the
    paper's ~99 s (Table 5). *)

val din : App.t

val custom :
  ?name:string ->
  ?trace_blocks:int ->
  ?simulations:int ->
  ?cpu_per_block:float ->
  unit ->
  App.t
(** A dinero-style cyclic scanner with other trace sizes and pass
    counts; [din] is [custom ()]. *)
