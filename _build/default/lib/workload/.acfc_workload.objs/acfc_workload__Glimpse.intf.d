lib/workload/glimpse.mli: App
