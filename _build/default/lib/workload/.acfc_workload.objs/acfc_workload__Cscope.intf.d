lib/workload/cscope.mli: App
