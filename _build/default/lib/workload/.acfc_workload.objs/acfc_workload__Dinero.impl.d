lib/workload/dinero.ml: Acfc_core Acfc_disk Acfc_fs App Env
