lib/workload/dinero.mli: App
