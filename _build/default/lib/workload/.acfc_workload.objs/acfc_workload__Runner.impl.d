lib/workload/runner.ml: Acfc_core Acfc_disk Acfc_fs Acfc_sim App Array Engine Env Float Format Ivar List Resource Rng
