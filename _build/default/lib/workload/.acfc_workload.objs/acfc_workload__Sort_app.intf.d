lib/workload/sort_app.mli: App
