lib/workload/ld.ml: Acfc_disk Acfc_fs App Array Env Printf
