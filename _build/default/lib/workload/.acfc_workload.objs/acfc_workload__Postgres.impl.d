lib/workload/postgres.ml: Acfc_disk Acfc_fs Acfc_sim App Env Stdlib
