lib/workload/ld.mli: App
