lib/workload/glimpse.ml: Acfc_core Acfc_disk Acfc_fs App Array Env List Printf
