lib/workload/sort_app.ml: Acfc_core Acfc_disk Acfc_fs App Array Env List Printf
