lib/workload/runner.mli: Acfc_core Acfc_disk App Format
