lib/workload/readn.mli: App
