lib/workload/app.ml: Acfc_disk Env
