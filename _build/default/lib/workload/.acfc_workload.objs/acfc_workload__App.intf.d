lib/workload/app.mli: Acfc_disk Env
