lib/workload/cscope.ml: Acfc_core Acfc_disk Acfc_fs App Env List Printf
