lib/workload/env.ml: Acfc_core Acfc_disk Acfc_fs Acfc_sim Engine Option Printf Resource Rng
