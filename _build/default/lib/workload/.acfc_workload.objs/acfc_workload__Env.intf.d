lib/workload/env.mli: Acfc_core Acfc_fs Acfc_sim
