lib/workload/readn.ml: Acfc_core Acfc_disk Acfc_fs App Env Printf Stdlib
