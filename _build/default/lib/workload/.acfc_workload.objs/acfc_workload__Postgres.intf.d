lib/workload/postgres.mli: App
