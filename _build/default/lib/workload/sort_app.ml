module Policy = Acfc_core.Policy

let block_bytes = Acfc_disk.Params.block_bytes

let input_blocks = 2176  (* 17 MB *)

let run_blocks = 128  (* 1 MB in-core sort buffer *)

let initial_runs = 17  (* 2176 / 128 *)

let merge_width = 8

let sort_cpu_per_block = 0.065  (* phase-1 comparison sort *)

let merge_cpu_per_block = 0.028

let write_cpu_per_block = 0.008

(* Read a set of run files round-robin one block at a time (the merge
   consumes their fronts in parallel), freeing each consumed block, and
   write the merged result. Returns the output file. *)
let merge env ~disk ~name ~inputs =
  let total = List.fold_left (fun acc f -> acc + Acfc_fs.File.size_blocks f) 0 inputs in
  let output =
    Acfc_fs.Fs.create_file env.Env.fs ~owner:env.Env.pid ~name:(Env.unique_name env name)
      ~disk ~size_bytes:0 ~reserve_bytes:(total * block_bytes) ()
  in
  let files = Array.of_list inputs in
  let cursors = Array.map (fun _ -> 0) files in
  let remaining = ref (Array.length files) in
  let next_out = ref 0 in
  while !remaining > 0 do
    Array.iteri
      (fun i file ->
        if cursors.(i) < Acfc_fs.File.size_blocks file then begin
          let block = cursors.(i) in
          Env.read_blocks env file ~first:block ~count:1;
          Env.compute env merge_cpu_per_block;
          Env.done_with_block env file block;
          cursors.(i) <- block + 1;
          if cursors.(i) = Acfc_fs.File.size_blocks file then decr remaining;
          (* One merged block out per block in. *)
          Env.write_blocks env output ~first:!next_out ~count:1;
          Env.compute env write_cpu_per_block;
          incr next_out
        end)
      files
  done;
  List.iter (fun file -> Acfc_fs.Fs.unlink env.Env.fs file) inputs;
  output

let run env ~disk =
  let input =
    Acfc_fs.Fs.create_file env.Env.fs ~owner:env.Env.pid
      ~name:(Env.unique_name env "input.txt")
      ~disk ~size_bytes:(input_blocks * block_bytes) ()
  in
  (* Strategy: input is read-once (priority -1); MRU at levels -1 and 0
     because earlier-created temporaries are merged first. *)
  Env.set_policy env ~prio:(-1) Policy.Mru;
  Env.set_policy env ~prio:0 Policy.Mru;
  Env.set_priority env input (-1);
  (* Phase 1: partition the input into sorted runs. *)
  let runs = ref [] in
  for r = 0 to initial_runs - 1 do
    let tmp =
      Acfc_fs.Fs.create_file env.Env.fs ~owner:env.Env.pid
        ~name:(Env.unique_name env (Printf.sprintf "tmp.run%02d" r))
        ~disk ~size_bytes:0
        ~reserve_bytes:(run_blocks * block_bytes) ()
    in
    for block = 0 to run_blocks - 1 do
      let input_block = (r * run_blocks) + block in
      Env.read_blocks env input ~first:input_block ~count:1;
      Env.compute env sort_cpu_per_block;
      Env.done_with_block env input input_block;
      Env.write_blocks env tmp ~first:block ~count:1;
      Env.compute env write_cpu_per_block
    done;
    runs := tmp :: !runs
  done;
  let runs = List.rev !runs in
  (* Phase 2: 8-way merges in creation order until one file remains. *)
  let rec merge_all generation files =
    match files with
    | [] -> ()
    | [ _final ] -> ()
    | _ ->
      let rec take n = function
        | [] -> ([], [])
        | l when n = 0 -> ([], l)
        | x :: rest ->
          let batch, leftover = take (n - 1) rest in
          (x :: batch, leftover)
      in
      let rec level i files acc =
        match files with
        | [] -> List.rev acc
        | _ ->
          let batch, rest = take merge_width files in
          let merged =
            merge env ~disk ~name:(Printf.sprintf "tmp.merge%d_%d" generation i)
              ~inputs:batch
          in
          level (i + 1) rest (merged :: acc)
      in
      merge_all (generation + 1) (level 0 files [])
  in
  merge_all 0 runs

let sort = App.make ~name:"sort" ~category:"write-then-read" run
