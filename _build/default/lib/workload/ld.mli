(** Link editor (paper run ldk): building a kernel from object files.

    Two passes over ~25 MB of object files: pass 1 reads each file's
    header and symbol table; pass 2 reads every block (re-reading the
    symbol region) while writing the output image. Object data is
    touched exactly once, so the smart strategy is "access-once":
    [set_temppri(file, b, b, -1)] the moment a block has been fully
    consumed (the paper implements this policy in the kernel because the
    DEC linker's source was unavailable; we issue the equivalent calls
    from the application model). Freeing once-read data early is what
    lets the twice-read symbol blocks survive in the cache.

    Model: 80 object files of 40 blocks (25.6 MB); blocks 0–11 of each
    file are header/symbols (read in both passes), 12–39 are data (read
    once); 1024 output blocks (8 MB) written sequentially. *)

val ldk : App.t
