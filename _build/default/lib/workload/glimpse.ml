module Policy = Acfc_core.Policy

let block_bytes = Acfc_disk.Params.block_bytes

let index_files = [ ".glimpse_index"; ".glimpse_partitions"; ".glimpse_filenames"; ".glimpse_statistics" ]

let index_blocks_per_file = 64  (* 4 x 64 = 256 blocks = 2 MB of indexes *)

let partitions = 64

let partition_blocks = 80  (* 64 x 80 = 5120 blocks = 40 MB of articles *)

let queries = 5

let partitions_per_query = 26

let cpu_per_block = 0.0082

let run env ~disk =
  let indexes =
    List.map
      (fun name ->
        Acfc_fs.Fs.create_file env.Env.fs ~owner:env.Env.pid ~name:(Env.unique_name env name)
          ~disk
          ~size_bytes:(index_blocks_per_file * block_bytes)
          ())
      index_files
  in
  let parts =
    Array.init partitions (fun i ->
        Acfc_fs.Fs.create_file env.Env.fs ~owner:env.Env.pid
          ~name:(Env.unique_name env (Printf.sprintf "partition.%02d" i))
          ~disk
          ~size_bytes:(partition_blocks * block_bytes)
          ())
  in
  (* Strategy: indexes at priority 1, MRU at both levels. *)
  List.iter (fun index -> Env.set_priority env index 1) indexes;
  Env.set_policy env ~prio:1 Policy.Mru;
  Env.set_policy env ~prio:0 Policy.Mru;
  for query = 0 to queries - 1 do
    List.iter
      (fun index ->
        for block = 0 to index_blocks_per_file - 1 do
          Env.read_blocks env index ~first:block ~count:1;
          Env.compute env cpu_per_block
        done)
      indexes;
    (* The keyword-dependent partition subset, visited in partition
       order (the paper: "several groups of articles are accessed in
       the same order"). (7p + 13q) mod 64 scatters each query's
       selection across the partition space while consecutive queries
       still share half their partitions. *)
    for p = 0 to partitions - 1 do
      if ((7 * p) + (13 * query)) mod partitions < partitions_per_query then
        for block = 0 to partition_blocks - 1 do
          Env.read_blocks env parts.(p) ~first:block ~count:1;
          Env.compute env cpu_per_block
        done
    done
  done

let gli = App.make ~name:"gli" ~category:"hot/cold" run
