(** Cscope (paper runs cs1, cs2, cs3): interactive C-source examination.

    Symbol-oriented queries scan the database file "cscope.out"
    sequentially once per query; text (egrep-style) queries scan all
    source files in the same order on every query. Both are cyclic
    patterns, so the smart strategy is MRU on priority level 0 (which
    already holds both "cscope.out" and the sources).

    Model sizes, matching the paper's compulsory-miss counts:
    - cs1 — symbol search, 18 MB package: 8 queries over a 1141-block
      (~9 MB) database file;
    - cs2 — text search, 18 MB package: 5 queries over 47 source files
      of 50 blocks (~18.4 MB);
    - cs3 — text search, 10 MB package: 5 queries over 26 source files
      of 50 blocks (~10.2 MB).

    Per-block CPU costs are calibrated against the paper's Table 5
    original-kernel elapsed times. *)

val cs1 : App.t

val cs2 : App.t

val cs3 : App.t

val symbol_search :
  ?name:string ->
  ?database_blocks:int ->
  ?queries:int ->
  ?cpu_per_block:float ->
  unit ->
  App.t
(** Custom symbol-query instances; [cs1] is [symbol_search ()]. *)

val text_search :
  name:string ->
  files:int ->
  ?file_blocks:int ->
  queries:int ->
  cpu_per_block:float ->
  unit ->
  App.t
(** Custom text-query instances over many source files; cs2 and cs3 are
    instances. *)
