(** ReadN microbenchmark (paper Sec. 6.1).

    ReadN sequentially reads the first N 8 KB blocks of a file five
    times, then the next N blocks five times, and so on through the
    whole file. Under LRU its miss ratio collapses once it holds N
    cache blocks, which makes it a sensitive detector of how many
    blocks the kernel's allocation policy is really giving it.

    Modes:
    - [`Oblivious] — no manager; the kernel's LRU treatment (good but
      not optimal for this pattern);
    - [`Foolish]   — registers as a manager and uses MRU, which is much
      worse than LRU for this pattern: the paper's model of a foolish
      process for the placeholder experiments. *)

val app : ?file_blocks:int -> n:int -> mode:[ `Oblivious | `Foolish ] -> unit -> App.t
(** [file_blocks] defaults to 1200. The app is named ["readN"] (e.g.
    "read300"); the foolish variant ["read300!"]. Note the mode is
    baked in: the runner's smart flag decides only whether the foolish
    variant gets its manager (a foolish app in an oblivious run is just
    oblivious). *)
