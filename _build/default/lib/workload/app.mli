(** An application model.

    [run env ~disk] creates the application's files on [disk], applies
    its caching strategy when [env] is smart, and performs its block
    accesses and computation. It must be called inside a simulation
    fiber; it returns when the application finishes. *)

type t = {
  name : string;
  category : string;
      (** access-pattern category from the paper's Sec. 5.3 grouping:
          "cyclic", "hot/cold", "access-once", "write-then-read" … *)
  run : Env.t -> disk:Acfc_disk.Disk.t -> unit;
}

val make : name:string -> category:string -> (Env.t -> disk:Acfc_disk.Disk.t -> unit) -> t
