type t = {
  name : string;
  category : string;
  run : Env.t -> disk:Acfc_disk.Disk.t -> unit;
}

let make ~name ~category run = { name; category; run }
