module Policy = Acfc_core.Policy

let block_bytes = Acfc_disk.Params.block_bytes

(* Symbol queries scan "cscope.out" looking for records. *)
let symbol_search ?(name = "cs1") ?(database_blocks = 1141) ?(queries = 8)
    ?(cpu_per_block = 0.0024) () =
  let run env ~disk =
    let db =
      Acfc_fs.Fs.create_file env.Env.fs ~owner:env.Env.pid
        ~name:(Env.unique_name env "cscope.out")
        ~disk ~size_bytes:(database_blocks * block_bytes) ()
    in
    (* Strategy (paper Sec. 5.1): MRU on the database's priority level. *)
    Env.set_priority env db 0;
    Env.set_policy env ~prio:0 Policy.Mru;
    for _query = 1 to queries do
      for index = 0 to database_blocks - 1 do
        Env.read_blocks env db ~first:index ~count:1;
        Env.compute env cpu_per_block
      done
    done
  in
  App.make ~name ~category:"cyclic" run

(* cs1: 8 symbol queries over the 18 MB package's 9 MB database. *)
let cs1 = symbol_search ()

(* cs2/cs3: text queries scan every source file, in the same order on
   every query. *)
let text_search ~name ~files ?(file_blocks = 50) ~queries ~cpu_per_block () =
  let run env ~disk =
    let sources =
      List.init files (fun i ->
          Acfc_fs.Fs.create_file env.Env.fs ~owner:env.Env.pid
            ~name:(Env.unique_name env (Printf.sprintf "src%02d.c" i))
            ~disk
            ~size_bytes:(file_blocks * block_bytes)
            ())
    in
    (* All sources sit at default priority 0; one call suffices. *)
    Env.set_policy env ~prio:0 Policy.Mru;
    for _query = 1 to queries do
      List.iter
        (fun file ->
          for index = 0 to file_blocks - 1 do
            Env.read_blocks env file ~first:index ~count:1;
            Env.compute env cpu_per_block
          done)
        sources
    done
  in
  App.make ~name ~category:"cyclic" run

let cs2 = text_search ~name:"cs2" ~files:47 ~queries:5 ~cpu_per_block:0.0137 ()

(* cs3's compulsory-miss count in the paper's Table 6 is 1728 blocks
   (13.5 MB touched per text query over the "10 MB" package). *)
let cs3 = text_search ~name:"cs3" ~files:36 ~file_blocks:48 ~queries:4 ~cpu_per_block:0.008 ()
