(** Glimpse (paper run gli): approximate-index text retrieval.

    Every query first reads all the index files, then the partitions of
    news articles the index selects — always in the same order, so both
    levels are cyclic. Index files are always needed, articles only
    sometimes: the hot/cold pattern.

    Model: 4 index files totalling 256 blocks (2 MB); 64 partitions of
    80 blocks (40 MB of articles); 5 queries; query [q] reads a
    26-partition keyword-dependent subset scattered over the partition
    space, with consecutive queries sharing half their partitions.

    Smart strategy (paper Sec. 5.1): the four index files get long-term
    priority 1; MRU at both level 1 and level 0. *)

val gli : App.t
