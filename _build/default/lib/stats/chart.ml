let bars ?(width = 40) ?max_value ?reference ppf rows =
  if width <= 0 then invalid_arg "Chart.bars: width must be positive";
  let data_max = List.fold_left (fun m (_, v) -> Float.max m v) 0.0 rows in
  let scale_max =
    match max_value with
    | Some m -> m
    | None -> Float.max data_max (Option.value reference ~default:0.0)
  in
  let scale_max = if scale_max <= 0.0 then 1.0 else scale_max in
  let label_width =
    List.fold_left (fun m (l, _) -> Stdlib.max m (String.length l)) 0 rows
  in
  let cell v = int_of_float (Float.round (v /. scale_max *. float_of_int width)) in
  let tick = Option.map (fun r -> Stdlib.min width (cell r)) reference in
  List.iter
    (fun (label, value) ->
      let filled = Stdlib.max 0 (Stdlib.min width (cell value)) in
      let bar =
        String.init (width + 1) (fun i ->
            match tick with
            | Some t when i = t && i >= filled -> '|'
            | _ -> if i < filled then '#' else ' ')
      in
      Format.fprintf ppf "%-*s %s %.2f@\n" label_width label bar value)
    rows
