type t = {
  n : int;
  mean : float;
  variance : float;
  min : float;
  max : float;
}

let of_list samples =
  match samples with
  | [] -> invalid_arg "Summary.of_list: no samples"
  | _ ->
    let n = List.length samples in
    let fn = float_of_int n in
    let mean = List.fold_left ( +. ) 0.0 samples /. fn in
    let variance =
      if n < 2 then 0.0
      else
        List.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.0)) 0.0 samples
        /. (fn -. 1.0)
    in
    let min = List.fold_left Float.min infinity samples in
    let max = List.fold_left Float.max neg_infinity samples in
    { n; mean; variance; min; max }

let n t = t.n

let mean t = t.mean

let variance t = t.variance

let stddev t = sqrt t.variance

let cv t = if t.mean = 0.0 then 0.0 else stddev t /. Float.abs t.mean

let min t = t.min

let max t = t.max

let pp ppf t =
  if cv t > 0.01 then Format.fprintf ppf "%.4g (%.0f%%)" t.mean (100.0 *. cv t)
  else Format.fprintf ppf "%.4g" t.mean
