lib/stats/chart.mli: Format
