lib/stats/summary.ml: Float Format List
