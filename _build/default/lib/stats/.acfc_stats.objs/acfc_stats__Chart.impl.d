lib/stats/chart.ml: Float Format List Option Stdlib String
