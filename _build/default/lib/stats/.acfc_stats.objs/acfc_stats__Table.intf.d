lib/stats/table.mli: Format
