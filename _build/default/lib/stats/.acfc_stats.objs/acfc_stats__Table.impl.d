lib/stats/table.ml: Format List Stdlib String
