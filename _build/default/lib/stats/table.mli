(** Plain-text table rendering in the style of the paper's tables. *)

type align = Left | Right | Center

type t

val create : columns:(string * align) list -> t
(** Raises [Invalid_argument] if no columns are given. *)

val add_row : t -> string list -> unit
(** Rows shorter than the header are padded with empty cells; longer
    rows raise [Invalid_argument]. *)

val add_rule : t -> unit
(** Horizontal separator at this point. *)

val render : Format.formatter -> t -> unit

val to_string : t -> string
