(** ASCII horizontal bar charts, for figure-style output in terminals.

    The paper presents Figures 4–6 as bar charts; {!bars} renders the
    same visual: one labelled row per value, bars scaled to a common
    maximum, with an optional reference mark (e.g. the 1.0 line of a
    normalised chart). *)

val bars :
  ?width:int ->
  ?max_value:float ->
  ?reference:float ->
  Format.formatter ->
  (string * float) list ->
  unit
(** [bars ppf rows] renders one bar per [(label, value)]. [width]
    (default 40 columns) is the full-scale bar length; [max_value]
    defaults to the largest value (or the reference, if larger);
    [reference], when given, draws a ['|'] tick at that value on every
    row. Negative values render as empty bars. *)
