type align = Left | Right | Center

type row = Cells of string list | Rule

type t = { columns : (string * align) list; mutable rows : row list (* reversed *) }

let create ~columns =
  if columns = [] then invalid_arg "Table.create: no columns";
  { columns; rows = [] }

let add_row t cells =
  let width = List.length t.columns in
  let got = List.length cells in
  if got > width then invalid_arg "Table.add_row: too many cells";
  let padded = cells @ List.init (width - got) (fun _ -> "") in
  t.rows <- Cells padded :: t.rows

let add_rule t = t.rows <- Rule :: t.rows

let pad align width s =
  let slack = width - String.length s in
  if slack <= 0 then s
  else
    match align with
    | Left -> s ^ String.make slack ' '
    | Right -> String.make slack ' ' ^ s
    | Center ->
      let left = slack / 2 in
      String.make left ' ' ^ s ^ String.make (slack - left) ' '

let render ppf t =
  let rows = List.rev t.rows in
  let headers = List.map fst t.columns in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun w row ->
            match row with
            | Rule -> w
            | Cells cells -> Stdlib.max w (String.length (List.nth cells i)))
          (String.length h) rows)
      headers
  in
  let rule =
    String.concat "-+-" (List.map (fun w -> String.make w '-') widths)
  in
  let print_cells cells =
    let padded =
      List.mapi
        (fun i cell ->
          let _, align = List.nth t.columns i in
          pad align (List.nth widths i) cell)
        cells
    in
    Format.fprintf ppf "%s@\n" (String.concat " | " padded)
  in
  print_cells headers;
  Format.fprintf ppf "%s@\n" rule;
  List.iter
    (function Rule -> Format.fprintf ppf "%s@\n" rule | Cells cells -> print_cells cells)
    rows

let to_string t = Format.asprintf "%a" render t
