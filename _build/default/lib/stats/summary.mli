(** Summary statistics over repeated simulation runs.

    The paper reports averages of three or five cold-start runs together
    with variance bounds; this module computes the same aggregates. *)

type t

val of_list : float list -> t
(** Raises [Invalid_argument] on an empty list. *)

val n : t -> int

val mean : t -> float

val variance : t -> float
(** Sample (unbiased) variance; 0 for a single sample. *)

val stddev : t -> float

val cv : t -> float
(** Coefficient of variation (stddev / mean); 0 when the mean is 0.
    This is the "variance" percentage the paper quotes. *)

val min : t -> float

val max : t -> float

val pp : Format.formatter -> t -> unit
(** Mean with CV in parentheses when above 1%. *)
