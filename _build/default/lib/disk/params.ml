type t = {
  name : string;
  capacity_blocks : int;
  min_seek_ms : float;
  avg_seek_ms : float;
  max_seek_ms : float;
  avg_rot_ms : float;
  transfer_mb_per_s : float;
  overhead_ms : float;
  seq_rot_factor : float;
}

let block_bytes = 8192

let mb = 1024 * 1024

let rz56 =
  {
    name = "RZ56";
    capacity_blocks = 665 * mb / block_bytes;
    min_seek_ms = 4.0;
    avg_seek_ms = 16.0;
    max_seek_ms = 35.0;
    avg_rot_ms = 8.3;
    transfer_mb_per_s = 1.875;
    overhead_ms = 1.0;
    seq_rot_factor = 0.2;
  }

let rz26 =
  {
    name = "RZ26";
    capacity_blocks = 1050 * mb / block_bytes;
    min_seek_ms = 2.5;
    avg_seek_ms = 10.5;
    max_seek_ms = 26.0;
    avg_rot_ms = 5.54;
    transfer_mb_per_s = 3.3;
    overhead_ms = 1.0;
    seq_rot_factor = 0.2;
  }

let transfer_time_s p =
  float_of_int block_bytes /. (p.transfer_mb_per_s *. float_of_int mb)

let seek_time_s p ~distance =
  if distance < 0 then invalid_arg "Params.seek_time_s: negative distance";
  if distance = 0 then 0.0
  else begin
    (* sqrt seek curve through (1, min_seek) and (capacity/3, avg_seek). *)
    let avg_distance = float_of_int p.capacity_blocks /. 3.0 in
    let frac = sqrt (float_of_int distance /. avg_distance) in
    let ms = p.min_seek_ms +. ((p.avg_seek_ms -. p.min_seek_ms) *. frac) in
    Float.min ms p.max_seek_ms /. 1000.0
  end

let pp ppf p =
  Format.fprintf ppf "%s(%d blk, seek %.1fms, rot %.2fms, %.3gMB/s)" p.name
    p.capacity_blocks p.avg_seek_ms p.avg_rot_ms p.transfer_mb_per_s
