open Acfc_sim

type t = Resource.t

let create engine ?(name = "scsi-bus") () = Resource.create engine ~name ~servers:1 ()

let transfer t ~duration = Resource.use t ~service:duration

let busy_time = Resource.busy_time

let contended_wait = Resource.total_wait
