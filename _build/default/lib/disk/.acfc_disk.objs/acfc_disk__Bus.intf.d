lib/disk/bus.mli: Acfc_sim
