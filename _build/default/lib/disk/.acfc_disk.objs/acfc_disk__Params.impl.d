lib/disk/params.ml: Float Format
