lib/disk/bus.ml: Acfc_sim Resource
