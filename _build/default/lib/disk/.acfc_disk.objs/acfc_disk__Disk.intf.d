lib/disk/disk.mli: Acfc_sim Bus Params
