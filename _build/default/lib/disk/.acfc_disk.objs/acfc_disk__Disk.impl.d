lib/disk/disk.ml: Acfc_sim Bus Engine Fun List Params Printf Rng
