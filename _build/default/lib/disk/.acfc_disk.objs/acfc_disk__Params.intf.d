lib/disk/params.mli: Format
