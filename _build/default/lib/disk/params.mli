(** Disk drive parameter sets.

    The two drives are the ones in the paper's testbed (Sec. 5.2): the
    DEC RZ56 and RZ26 SCSI drives, with the published average seek time,
    average rotational latency and peak transfer rate. *)

type t = {
  name : string;
  capacity_blocks : int;  (** usable capacity in {!block_bytes} blocks *)
  min_seek_ms : float;    (** single-track seek *)
  avg_seek_ms : float;
  max_seek_ms : float;    (** full-stroke seek *)
  avg_rot_ms : float;     (** half a revolution *)
  transfer_mb_per_s : float;
  overhead_ms : float;    (** controller/command fixed overhead per request *)
  seq_rot_factor : float;
      (** fraction of the average rotational latency paid even by a
          sequential request: these pre-track-buffer drives lose part of
          a revolution between back-to-back blocks despite sector
          interleaving *)
}

val block_bytes : int
(** File-cache block size: 8 KB, as in Ultrix. *)

val rz56 : t
(** 665 MB, 16 ms avg seek, 8.3 ms avg rotational latency, 1.875 MB/s. *)

val rz26 : t
(** 1.05 GB, 10.5 ms avg seek, 5.54 ms avg rotational latency, 3.3 MB/s. *)

val transfer_time_s : t -> float
(** Time to transfer one block, in seconds. *)

val seek_time_s : t -> distance:int -> float
(** Seek time for a head movement of [distance] blocks, in seconds: 0 at
    distance 0, [min_seek_ms] for one block, growing as the square root
    of distance (a standard seek-curve shape) and calibrated so that a
    seek across one third of the disk — the average for uniformly random
    requests — costs [avg_seek_ms]. Capped at [max_seek_ms]. *)

val pp : Format.formatter -> t -> unit
