type t =
  | Too_many_managers
  | Too_many_levels
  | Too_many_file_records
  | Not_registered
  | Already_registered
  | Revoked
  | Invalid_range

let to_string = function
  | Too_many_managers -> "too many managers"
  | Too_many_levels -> "too many priority levels"
  | Too_many_file_records -> "too many file records"
  | Not_registered -> "process is not a registered manager"
  | Already_registered -> "process is already a registered manager"
  | Revoked -> "cache-control privilege revoked"
  | Invalid_range -> "invalid block range"

let pp ppf t = Format.pp_print_string ppf (to_string t)

let equal (a : t) b = a = b
