(** Failures of the application-control interface.

    The paper's implementation "imposes a limit on kernel resources
    consumed by these data structures and fails the calls if the limit
    would be exceeded"; these are those failures, plus interface-misuse
    cases. *)

type t =
  | Too_many_managers    (** manager-structure limit reached *)
  | Too_many_levels      (** per-manager priority-level limit reached *)
  | Too_many_file_records  (** per-manager non-default-priority file limit *)
  | Not_registered       (** caller never registered as a manager *)
  | Already_registered
  | Revoked              (** caching-control privilege was revoked (Sec. 6.2) *)
  | Invalid_range        (** bad block range in [set_temppri] *)

val to_string : t -> string

val pp : Format.formatter -> t -> unit

val equal : t -> t -> bool
