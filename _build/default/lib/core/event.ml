type t =
  | Hit of { pid : Pid.t; block : Block.t }
  | Miss of { pid : Pid.t; block : Block.t; prefetch : bool }
  | Evict of { victim : Block.t; owner : Pid.t; candidate : Block.t; overruled : bool }
  | Writeback of Block.t
  | Placeholder_created of { replaced : Block.t; target : Block.t; chooser : Pid.t }
  | Placeholder_used of { missing : Block.t; target : Block.t; chooser : Pid.t }
  | Manager_revoked of Pid.t

let pp ppf = function
  | Hit { pid; block } -> Format.fprintf ppf "hit %a %a" Pid.pp pid Block.pp block
  | Miss { pid; block; prefetch } ->
    Format.fprintf ppf "miss%s %a %a"
      (if prefetch then "(ra)" else "")
      Pid.pp pid Block.pp block
  | Evict { victim; owner; candidate; overruled } ->
    Format.fprintf ppf "evict %a (owner %a, candidate %a%s)" Block.pp victim Pid.pp
      owner Block.pp candidate
      (if overruled then ", overruled" else "")
  | Writeback b -> Format.fprintf ppf "writeback %a" Block.pp b
  | Placeholder_created { replaced; target; chooser } ->
    Format.fprintf ppf "placeholder+ %a -> %a (by %a)" Block.pp replaced Block.pp
      target Pid.pp chooser
  | Placeholder_used { missing; target; chooser } ->
    Format.fprintf ppf "placeholder! %a -> %a (mistake by %a)" Block.pp missing
      Block.pp target Pid.pp chooser
  | Manager_revoked pid -> Format.fprintf ppf "revoked %a" Pid.pp pid
