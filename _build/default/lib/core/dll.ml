type 'a node = {
  mutable value : 'a;
  mutable prev : 'a node option;  (* toward front *)
  mutable next : 'a node option;  (* toward back *)
  mutable parent : 'a t option;
}

and 'a t = {
  mutable front : 'a node option;
  mutable back : 'a node option;
  mutable size : int;
}

let create () = { front = None; back = None; size = 0 }

let length t = t.size

let is_empty t = t.size = 0

let value n = n.value

let check_member t n =
  match n.parent with
  | Some p when p == t -> ()
  | Some _ -> invalid_arg "Dll: node belongs to another list"
  | None -> invalid_arg "Dll: node is detached"

let push_front t v =
  let n = { value = v; prev = None; next = t.front; parent = Some t } in
  (match t.front with
  | Some f -> f.prev <- Some n
  | None -> t.back <- Some n);
  t.front <- Some n;
  t.size <- t.size + 1;
  n

let push_back t v =
  let n = { value = v; prev = t.back; next = None; parent = Some t } in
  (match t.back with
  | Some b -> b.next <- Some n
  | None -> t.front <- Some n);
  t.back <- Some n;
  t.size <- t.size + 1;
  n

let remove t n =
  check_member t n;
  (match n.prev with Some p -> p.next <- n.next | None -> t.front <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.back <- n.prev);
  n.prev <- None;
  n.next <- None;
  n.parent <- None;
  t.size <- t.size - 1

let move_front t n =
  check_member t n;
  let is_front = match t.front with Some f -> f == n | None -> false in
  if not is_front then begin
    remove t n;
    n.parent <- Some t;
    n.prev <- None;
    n.next <- t.front;
    (match t.front with Some f -> f.prev <- Some n | None -> t.back <- Some n);
    t.front <- Some n;
    t.size <- t.size + 1
  end

let move_back t n =
  check_member t n;
  let is_back = match t.back with Some b -> b == n | None -> false in
  if not is_back then begin
    remove t n;
    n.parent <- Some t;
    n.next <- None;
    n.prev <- t.back;
    (match t.back with Some b -> b.next <- Some n | None -> t.front <- Some n);
    t.back <- Some n;
    t.size <- t.size + 1
  end

let front t = t.front

let back t = t.back

let next_toward_front n = n.prev

let next_toward_back n = n.next

let swap_values ~on_move t a b =
  check_member t a;
  check_member t b;
  if a != b then begin
    let va = a.value and vb = b.value in
    a.value <- vb;
    b.value <- va;
    on_move vb a;
    on_move va b
  end

let iter f t =
  let rec go = function
    | None -> ()
    | Some n ->
      let next = n.next in
      f n.value;
      go next
  in
  go t.front

let to_list t =
  let acc = ref [] in
  iter (fun v -> acc := v :: !acc) t;
  List.rev !acc

let contains t n = match n.parent with Some p -> p == t | None -> false
