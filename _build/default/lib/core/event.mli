(** Cache events, for tracing and tests.

    A tracer callback installed on the cache receives one event per
    state transition of interest. Production runs install none; tests
    and the trace recorder use them to observe replacement decisions. *)

type t =
  | Hit of { pid : Pid.t; block : Block.t }
  | Miss of { pid : Pid.t; block : Block.t; prefetch : bool }
  | Evict of {
      victim : Block.t;
      owner : Pid.t;
      candidate : Block.t;  (** the kernel's suggestion *)
      overruled : bool;  (** did the manager pick a different block? *)
    }
  | Writeback of Block.t
  | Placeholder_created of { replaced : Block.t; target : Block.t; chooser : Pid.t }
  | Placeholder_used of { missing : Block.t; target : Block.t; chooser : Pid.t }
  | Manager_revoked of Pid.t

val pp : Format.formatter -> t -> unit
