type t = {
  key : Block.t;
  mutable owner : Pid.t;
  mutable dirty : bool;
  mutable pinned : int;
  mutable referenced : bool;
  mutable clock_ref : bool;
  mutable global_node : t Dll.node option;
  mutable level_node : t Dll.node option;
  mutable level : int;
  mutable temp : bool;
  mutable managed_by : Pid.t option;
  mutable incoming_placeholders : Block.t list;
}

let make ~key ~owner =
  {
    key;
    owner;
    dirty = false;
    pinned = 0;
    referenced = false;
    clock_ref = false;
    global_node = None;
    level_node = None;
    level = 0;
    temp = false;
    managed_by = None;
    incoming_placeholders = [];
  }

let is_pinned t = t.pinned > 0

let pin t = t.pinned <- t.pinned + 1

let unpin t =
  if t.pinned <= 0 then invalid_arg "Entry.unpin: not pinned";
  t.pinned <- t.pinned - 1

let pp ppf t =
  Format.fprintf ppf "%a{owner=%a;lvl=%d%s%s%s}" Block.pp t.key Pid.pp t.owner t.level
    (if t.temp then ";temp" else "")
    (if t.dirty then ";dirty" else "")
    (if t.pinned > 0 then ";pinned" else "")
