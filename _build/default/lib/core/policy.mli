(** Per-priority-level replacement policies.

    The paper's interface offers two policies an application can attach
    to a priority level: least-recently-used and most-recently-used. A
    level's block list is always kept in recency order; the policy only
    decides which end is replaced first. *)

type t = Lru | Mru

val default : t
(** [Lru], as in the paper. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

val of_string : string -> t option

val to_string : t -> string
