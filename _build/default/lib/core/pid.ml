type t = int

let make n =
  if n < 0 then invalid_arg "Pid.make: negative pid";
  n

let to_int n = n

let equal = Int.equal

let compare = Int.compare

let hash = Hashtbl.hash

let pp ppf n = Format.fprintf ppf "pid%d" n
