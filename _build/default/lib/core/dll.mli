(** Doubly-linked list with O(1) removal via external node handles.

    The kernel LRU list and the per-priority-level lists are instances
    of this structure. By convention throughout the cache, the {e front}
    of a list is the most-recently-used end and the {e back} is the
    least-recently-used end.

    Each [push_*] returns a node handle; all node-taking operations
    check that the node currently belongs to the given list and raise
    [Invalid_argument] otherwise (a node is "detached" after {!remove}
    and may not be reused). *)

type 'a t

type 'a node

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val value : 'a node -> 'a

val push_front : 'a t -> 'a -> 'a node

val push_back : 'a t -> 'a -> 'a node

val remove : 'a t -> 'a node -> unit

val move_front : 'a t -> 'a node -> unit

val move_back : 'a t -> 'a node -> unit

val front : 'a t -> 'a node option

val back : 'a t -> 'a node option

val next_toward_front : 'a node -> 'a node option
(** Walk from the back (LRU end) toward the front; [None] at the front.
    Used by victim selection to skip unevictable blocks. *)

val next_toward_back : 'a node -> 'a node option

val swap_values :
  on_move:('a -> 'a node -> unit) -> 'a t -> 'a node -> 'a node -> unit
(** [swap_values ~on_move t a b] exchanges the positions of the two
    values held by nodes [a] and [b] (by swapping the values, which is
    O(1) and immune to adjacency corner cases). [on_move v n] is called
    for each value with the node that now holds it, so callers that keep
    back-pointers from values to nodes can repair them. This implements
    the "swapping" step of LRU-SP. *)

val iter : ('a -> unit) -> 'a t -> unit
(** Front (MRU) to back (LRU). *)

val to_list : 'a t -> 'a list
(** Front to back. *)

val contains : 'a t -> 'a node -> bool
(** Does this node currently belong to this list? *)
