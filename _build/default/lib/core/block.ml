type file = int

type t = { file : file; index : int }

let make ~file ~index =
  if file < 0 then invalid_arg "Block.make: negative file id";
  if index < 0 then invalid_arg "Block.make: negative block index";
  { file; index }

let file t = t.file

let index t = t.index

let equal a b = a.file = b.file && a.index = b.index

let compare a b =
  match Int.compare a.file b.file with 0 -> Int.compare a.index b.index | c -> c

let hash t = (t.file * 1000003) + t.index

let pp ppf t = Format.fprintf ppf "f%d[%d]" t.file t.index
