lib/core/event.mli: Block Format Pid
