lib/core/cache.mli: Backend Block Config Error Event Pid Policy
