lib/core/acm.ml: Block Config Dll Entry Error Event Hashtbl List Option Pid Policy
