lib/core/buf.mli: Acm Backend Block Config Event Pid
