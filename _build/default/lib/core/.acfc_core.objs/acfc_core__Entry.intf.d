lib/core/entry.mli: Block Dll Format Pid
