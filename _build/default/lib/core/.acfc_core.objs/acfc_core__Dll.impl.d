lib/core/dll.ml: List
