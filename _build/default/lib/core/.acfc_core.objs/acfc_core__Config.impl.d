lib/core/config.ml: Format Option String
