lib/core/block.mli: Format
