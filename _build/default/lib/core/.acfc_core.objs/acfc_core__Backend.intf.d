lib/core/backend.mli: Block
