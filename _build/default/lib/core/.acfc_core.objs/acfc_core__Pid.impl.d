lib/core/pid.ml: Format Hashtbl Int
