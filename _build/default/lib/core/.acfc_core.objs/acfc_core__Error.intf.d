lib/core/error.mli: Format
