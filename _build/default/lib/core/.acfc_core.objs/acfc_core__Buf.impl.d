lib/core/buf.ml: Acm Backend Block Config Dll Entry Event Fun Hashtbl List Option Pid Queue
