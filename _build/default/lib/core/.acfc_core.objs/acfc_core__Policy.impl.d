lib/core/policy.ml: Format String
