lib/core/control.ml: Cache Pid
