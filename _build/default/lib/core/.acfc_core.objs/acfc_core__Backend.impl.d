lib/core/backend.ml: Block
