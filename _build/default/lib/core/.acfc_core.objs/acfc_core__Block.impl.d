lib/core/block.ml: Format Int
