lib/core/acm.mli: Block Config Entry Error Event Pid Policy
