lib/core/cache.ml: Acm Backend Buf
