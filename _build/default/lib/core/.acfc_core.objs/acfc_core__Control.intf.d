lib/core/control.mli: Block Cache Error Pid Policy
