lib/core/dll.mli:
