lib/core/entry.ml: Block Dll Format Pid
