lib/core/error.ml: Format
