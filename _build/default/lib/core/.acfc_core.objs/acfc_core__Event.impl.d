lib/core/event.ml: Block Format Pid
