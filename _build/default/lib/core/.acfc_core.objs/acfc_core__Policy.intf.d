lib/core/policy.mli: Format
