type t = {
  read_block : Block.t -> unit;
  write_block : Block.t -> unit;
  evicted : Block.t -> unit;
}

let null = { read_block = ignore; write_block = ignore; evicted = ignore }
