(** Cache block identity.

    A block is one 8 KB unit of one file: the pair (file id, block index
    within the file). Files are named by integer ids handed out by the
    file-system layer. *)

type file = int
(** File identifier. *)

type t = { file : file; index : int }

val make : file:file -> index:int -> t
(** Raises [Invalid_argument] on a negative index or file id. *)

val file : t -> file

val index : t -> int

val equal : t -> t -> bool

val compare : t -> t -> int

val hash : t -> int

val pp : Format.formatter -> t -> unit
