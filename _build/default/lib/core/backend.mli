(** The storage interface below the buffer cache.

    BUF calls these as plain (possibly blocking) functions when it needs
    the device: the simulation's file-system layer implements them with
    fiber-blocking disk I/O, while unit tests pass {!null}. BUF keeps
    its own structures consistent {e before} every call, because other
    simulated processes may re-enter the cache while a call blocks —
    the same "called with no lock held" discipline the paper requires
    of the BUF/ACM interface. *)

type t = {
  read_block : Block.t -> unit;  (** fetch a block from the device *)
  write_block : Block.t -> unit;  (** write back a dirty block *)
  evicted : Block.t -> unit;
      (** the frame was released (after any write-back); the data layer
          can drop its copy *)
}

val null : t
(** No-op backend for algorithm-only use (tests, trace-driven runs). *)
