type alloc_policy = Global_lru | Alloc_lru | Lru_s | Lru_sp | Clock_sp

type revocation = { min_decisions : int; mistake_ratio : float }

type shared_files = Transfer | Sticky

type t = {
  capacity_blocks : int;
  alloc_policy : alloc_policy;
  max_managers : int;
  max_levels : int;
  max_file_records : int;
  max_placeholders : int;
  revocation : revocation option;
  shared_files : shared_files;
}

let make ?(alloc_policy = Lru_sp) ?(max_managers = 64) ?(max_levels = 32)
    ?(max_file_records = 1024) ?max_placeholders ?revocation
    ?(shared_files = Transfer) ~capacity_blocks () =
  if capacity_blocks <= 0 then invalid_arg "Config.make: capacity must be positive";
  if max_managers <= 0 || max_levels <= 0 || max_file_records <= 0 then
    invalid_arg "Config.make: limits must be positive";
  (match revocation with
  | Some r when r.min_decisions <= 0 || r.mistake_ratio <= 0.0 || r.mistake_ratio > 1.0 ->
    invalid_arg "Config.make: bad revocation parameters"
  | Some _ | None -> ());
  let max_placeholders = Option.value max_placeholders ~default:capacity_blocks in
  if max_placeholders < 0 then invalid_arg "Config.make: negative placeholder limit";
  {
    capacity_blocks;
    alloc_policy;
    max_managers;
    max_levels;
    max_file_records;
    max_placeholders;
    revocation;
    shared_files;
  }

let alloc_policy_to_string = function
  | Global_lru -> "global-lru"
  | Alloc_lru -> "alloc-lru"
  | Lru_s -> "lru-s"
  | Lru_sp -> "lru-sp"
  | Clock_sp -> "clock-sp"

let alloc_policy_of_string s =
  match String.lowercase_ascii s with
  | "global-lru" | "global" | "original" -> Some Global_lru
  | "alloc-lru" -> Some Alloc_lru
  | "lru-s" -> Some Lru_s
  | "lru-sp" -> Some Lru_sp
  | "clock-sp" -> Some Clock_sp
  | _ -> None

let pp_alloc_policy ppf p = Format.pp_print_string ppf (alloc_policy_to_string p)
