(** Process identifiers.

    The kernel allocates cache blocks to processes; a [Pid.t] names one
    simulated process. *)

type t = private int

val make : int -> t

val to_int : t -> int

val equal : t -> t -> bool

val compare : t -> t -> int

val hash : t -> int

val pp : Format.formatter -> t -> unit
