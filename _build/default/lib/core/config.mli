(** Buffer-cache configuration. *)

(** The kernel's global allocation policy. The paper's contribution is
    [Lru_sp]; the others are the paper's baselines and ablations. *)
type alloc_policy =
  | Global_lru
      (** The original kernel: plain global LRU, applications are never
          consulted. *)
  | Alloc_lru
      (** Two-level replacement where the victim process is chosen by
          straight LRU order — no swapping, no placeholders (Fig. 6). *)
  | Lru_s
      (** LRU-SP without placeholders — "unprotected" in Table 1. *)
  | Lru_sp
      (** The full policy: swapping + placeholders. *)
  | Clock_sp
      (** The paper's Sec. 7 virtual-memory variant: the kernel's global
          order is a second-chance CLOCK (as VM page caches use) instead
          of true LRU, with the same swapping and placeholder machinery
          on top. *)

(** Automatic revocation of consistently foolish managers (the
    extension announced in the paper's footnote 7): once a manager has
    made at least [min_decisions] overruling decisions, if the fraction
    that placeholders later prove wrong reaches [mistake_ratio], the
    kernel stops consulting it. *)
type revocation = { min_decisions : int; mistake_ratio : float }

(** What happens when a process references a block currently managed by
    another process's manager. The paper leaves control of concurrently
    shared files as future work (Sec. 8); both disciplines are offered:
    - [Transfer]: the block follows its last accessor (the default —
      matches the paper's private-file accounting);
    - [Sticky]: the first manager to hold a block keeps it until the
      block leaves the cache or the manager unregisters. *)
type shared_files = Transfer | Sticky

type t = {
  capacity_blocks : int;  (** cache size in 8 KB blocks; positive *)
  alloc_policy : alloc_policy;
  max_managers : int;
  max_levels : int;  (** per manager *)
  max_file_records : int;  (** per manager, files with non-zero priority *)
  max_placeholders : int;  (** oldest placeholders are recycled beyond this *)
  revocation : revocation option;
  shared_files : shared_files;
}

val make :
  ?alloc_policy:alloc_policy ->
  ?max_managers:int ->
  ?max_levels:int ->
  ?max_file_records:int ->
  ?max_placeholders:int ->
  ?revocation:revocation ->
  ?shared_files:shared_files ->
  capacity_blocks:int ->
  unit ->
  t
(** Defaults: [Lru_sp], 64 managers, 32 levels, 1024 file records,
    placeholders capped at [capacity_blocks], no revocation, [Transfer]
    shared-file handling. Raises [Invalid_argument] on non-positive
    capacity or limits. *)

val alloc_policy_to_string : alloc_policy -> string

val alloc_policy_of_string : string -> alloc_policy option

val pp_alloc_policy : Format.formatter -> alloc_policy -> unit
