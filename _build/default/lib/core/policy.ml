type t = Lru | Mru

let default = Lru

let equal a b = match (a, b) with Lru, Lru | Mru, Mru -> true | (Lru | Mru), _ -> false

let to_string = function Lru -> "LRU" | Mru -> "MRU"

let pp ppf t = Format.pp_print_string ppf (to_string t)

let of_string s =
  match String.uppercase_ascii s with
  | "LRU" -> Some Lru
  | "MRU" -> Some Mru
  | _ -> None
