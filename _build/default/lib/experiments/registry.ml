open Acfc_workload

let apps =
  [
    ("din", Dinero.din, 0);
    ("cs1", Cscope.cs1, 0);
    ("cs3", Cscope.cs3, 0);
    ("cs2", Cscope.cs2, 0);
    ("gli", Glimpse.gli, 0);
    ("ldk", Ld.ldk, 0);
    ("pjn", Postgres.pjn, 1);
    ("sort", Sort_app.sort, 1);
  ]

let find name =
  match List.find_opt (fun (n, _, _) -> n = name) apps with
  | Some (_, app, disk) -> (app, disk)
  | None -> raise Not_found

let fig5_combos =
  [
    [ "cs2"; "gli" ];
    [ "cs3"; "ldk" ];
    [ "gli"; "sort" ];
    [ "din"; "sort" ];
    [ "sort"; "ldk" ];
    [ "pjn"; "ldk" ];
    [ "din"; "cs2"; "ldk" ];
    [ "cs1"; "gli"; "ldk" ];
    [ "din"; "cs3"; "gli"; "ldk" ];
  ]

let fig6_combos =
  [
    [ "cs2"; "gli" ];
    [ "cs3"; "ldk" ];
    [ "din"; "cs2"; "ldk" ];
    [ "cs1"; "gli"; "ldk" ];
    [ "din"; "cs3"; "gli"; "ldk" ];
  ]

let combo_name names = String.concat "+" names
