let cache_sizes_mb = [ 6.4; 8.0; 12.0; 16.0 ]

(* Table 5: elapsed time in seconds, (app, original, LRU-SP). *)
let table5 =
  [
    ("din", [| 117.; 99.; 99.; 99. |], [| 106.; 99.; 100.; 100. |]);
    ("cs1", [| 62.; 61.; 28.; 28. |], [| 38.; 33.; 27.; 28. |]);
    ("cs3", [| 96.; 96.; 57.; 47. |], [| 79.; 71.; 50.; 48. |]);
    ("cs2", [| 191.; 190.; 188.; 184. |], [| 172.; 168.; 152.; 128. |]);
    ("gli", [| 126.; 123.; 113.; 97. |], [| 114.; 108.; 92.; 84. |]);
    ("ldk", [| 66.; 65.; 65.; 65. |], [| 66.; 64.; 60.; 56. |]);
    ("pjn", [| 225.; 220.; 202.; 187. |], [| 199.; 192.; 185.; 174. |]);
    ("sort", [| 339.; 338.; 339.; 336. |], [| 294.; 281.; 256.; 243. |]);
  ]

(* Table 6: number of block I/Os. *)
let table6 =
  [
    ("din", [| 8888.; 998.; 997.; 998. |], [| 2573.; 1003.; 997.; 997. |]);
    ("cs1", [| 8634.; 8630.; 1141.; 1141. |], [| 3066.; 1628.; 1141.; 1141. |]);
    ("cs3", [| 6575.; 6571.; 2815.; 1728. |], [| 4394.; 3548.; 1903.; 1733. |]);
    ("cs2", [| 11785.; 11762.; 11717.; 11647. |], [| 9680.; 9091.; 7650.; 5597. |]);
    ("gli", [| 10435.; 10321.; 9720.; 7508. |], [| 8870.; 8308.; 7120.; 6275. |]);
    ("ldk", [| 5395.; 5389.; 5397.; 5390. |], [| 5011.; 4760.; 4385.; 3898. |]);
    ("pjn", [| 7166.; 6738.; 5897.; 5257. |], [| 5800.; 5635.; 5334.; 4993. |]);
    ("sort", [| 14670.; 14671.; 14639.; 14520. |], [| 12462.; 11884.; 10400.; 9460. |]);
  ]

let size_index mb =
  let rec go i = function
    | [] -> None
    | s :: rest -> if Float.abs (s -. mb) < 0.01 then Some i else go (i + 1) rest
  in
  go 0 cache_sizes_mb

let lookup table app ~mb =
  Option.bind (size_index mb) (fun i ->
      Option.map
        (fun (_, orig, sp) -> (orig.(i), sp.(i)))
        (List.find_opt (fun (name, _, _) -> name = app) table))

let lookup_elapsed = lookup table5

let lookup_ios = lookup table6

(* Table 1: ReadN with a background Read300; columns 390/400/490/500. *)
let table1_elapsed =
  [
    ("Oblivious", [| 53.; 58.; 59.; 72. |]);
    ("Unprotected", [| 73.; 89.; 76.; 122. |]);
    ("Protected", [| 75.; 75.; 72.; 91. |]);
  ]

let table1_ios =
  [
    ("Oblivious", [| 1172.; 1181.; 1176.; 1481. |]);
    ("Unprotected", [| 1300.; 1538.; 1465.; 2294. |]);
    ("Protected", [| 1170.; 1170.; 1199.; 1580. |]);
  ]

(* Table 2: smart apps vs an oblivious/foolish Read300. *)
let table2_elapsed =
  [ ("Oblivious", [| 155.; 225.; 156.; 112. |]); ("Foolish", [| 202.; 339.; 261.; 208. |]) ]

let table2_ios =
  [
    ("Oblivious", [| 3067.; 9760.; 9086.; 5201. |]);
    ("Foolish", [| 3495.; 10542.; 9759.; 5374. |]);
  ]

(* Tables 3 and 4: Read300's elapsed with oblivious vs smart partners. *)
let table3_read300_elapsed =
  [ ("Oblivious", [| 87.; 88.; 60.; 78. |]); ("Smart", [| 67.; 83.; 64.; 76. |]) ]

let table4_read300_elapsed =
  [ ("Oblivious", [| 20.; 18.; 19.; 17. |]); ("Smart", [| 20.; 17.5; 18.; 17. |]) ]
