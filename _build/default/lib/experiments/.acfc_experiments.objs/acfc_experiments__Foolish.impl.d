lib/experiments/foolish.ml: Acfc_core Acfc_stats Acfc_workload Format List Measure Readn Registry
