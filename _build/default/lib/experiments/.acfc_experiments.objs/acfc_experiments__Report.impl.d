lib/experiments/report.ml: Alloc_lru Foolish Format List Multi Paper_data Placeholders Single Smart_oblivious String
