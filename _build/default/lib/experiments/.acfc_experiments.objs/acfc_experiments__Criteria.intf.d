lib/experiments/criteria.mli: Format
