lib/experiments/registry.ml: Acfc_workload Cscope Dinero Glimpse Ld List Postgres Sort_app String
