lib/experiments/single.mli: Format Measure
