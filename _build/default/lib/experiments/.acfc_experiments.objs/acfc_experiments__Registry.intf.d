lib/experiments/registry.mli: Acfc_workload
