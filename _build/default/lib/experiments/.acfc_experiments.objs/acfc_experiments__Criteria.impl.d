lib/experiments/criteria.ml: Acfc_core Acfc_stats Acfc_workload Format List Measure Printf Readn Registry
