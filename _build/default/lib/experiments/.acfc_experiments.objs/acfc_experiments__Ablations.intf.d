lib/experiments/ablations.mli: Acfc_core Acfc_disk Format
