lib/experiments/single.ml: Acfc_core Acfc_stats Acfc_workload Float Format List Measure Paper_data Printf Registry
