lib/experiments/placeholders.ml: Acfc_core Acfc_stats Acfc_workload Format List Measure Printf Readn
