lib/experiments/paper_data.ml: Array Float List Option
