lib/experiments/smart_oblivious.mli: Format Measure
