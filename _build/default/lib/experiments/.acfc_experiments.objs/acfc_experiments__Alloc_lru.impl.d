lib/experiments/alloc_lru.ml: Acfc_core Acfc_stats Acfc_workload Format List Measure Paper_data Printf Registry
