lib/experiments/alloc_lru.mli: Format Measure
