lib/experiments/placeholders.mli: Format Measure
