lib/experiments/paper_data.mli:
