lib/experiments/foolish.mli: Format Measure
