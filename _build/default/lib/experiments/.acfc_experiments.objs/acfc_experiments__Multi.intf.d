lib/experiments/multi.mli: Format Measure
