lib/experiments/ablations.ml: Acfc_core Acfc_disk Acfc_stats Acfc_workload Format List Measure Printf Readn Registry
