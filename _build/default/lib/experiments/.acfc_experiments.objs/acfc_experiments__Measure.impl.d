lib/experiments/measure.ml: Acfc_stats Acfc_workload List Printf
