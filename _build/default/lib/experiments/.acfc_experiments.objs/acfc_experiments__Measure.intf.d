lib/experiments/measure.mli: Acfc_stats Acfc_workload
