(** Published numbers from the paper, for paper-vs-measured reporting.

    Tables 5 and 6 (the appendix raw data behind Figure 4) are stored in
    full; Tables 1–3 as published. Values are averages as printed. *)

val cache_sizes_mb : float list
(** The four buffer-cache configurations: 6.4, 8, 12, 16 MB. *)

val table5 : (string * float array * float array) list
(** (app, original elapsed seconds per size, LRU-SP elapsed). *)

val table6 : (string * float array * float array) list
(** (app, original block I/Os per size, LRU-SP block I/Os). *)

val lookup_elapsed : string -> mb:float -> (float * float) option
(** (original, lru_sp) for one app and cache size. *)

val lookup_ios : string -> mb:float -> (float * float) option

val table1_elapsed : (string * float array) list
(** Rows Oblivious / Unprotected / Protected; columns Read390, Read400,
    Read490, Read500 (seconds). *)

val table1_ios : (string * float array) list

val table2_elapsed : (string * float array) list
(** Rows Oblivious / Foolish (the Read300's policy); columns din, cs2,
    gli, ldk (seconds). *)

val table2_ios : (string * float array) list

val table3_read300_elapsed : (string * float array) list
(** Rows Oblivious / Smart (the partner apps' mode); columns din, cs2,
    gli, ldk: Read300's elapsed seconds, one disk. *)

val table4_read300_elapsed : (string * float array) list
(** Same, two disks. *)
