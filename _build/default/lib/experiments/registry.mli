(** The paper's application suite and experiment combinations.

    Disk placement follows Sec. 5.2: cs1–cs3, din, gli and ldk live on
    the RZ56 (disk 0); pjn and sort on the RZ26 (disk 1). *)

val apps : (string * Acfc_workload.App.t * int) list
(** (name, app, disk index), in the paper's Figure 4 order. *)

val find : string -> Acfc_workload.App.t * int
(** Raises [Not_found] for unknown names. *)

val fig5_combos : string list list
(** The nine concurrent combinations of Sec. 5.3. *)

val fig6_combos : string list list
(** The five combinations re-run under ALLOC-LRU in Sec. 6.1. *)

val combo_name : string list -> string
(** "cs2+gli" etc. *)
