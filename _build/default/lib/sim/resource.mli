(** FCFS multi-server resource with queueing statistics.

    Models a contended device or the CPU: at most [servers] fibers hold
    the resource at once; the rest wait in FIFO order. Utilisation and
    waiting-time statistics are integrated over virtual time, which the
    experiment harness uses to report device load. *)

type t

val create : Engine.t -> ?name:string -> servers:int -> unit -> t
(** [servers] must be positive. *)

val name : t -> string

val acquire : t -> unit
(** Block until a server is free, then take it. FIFO among waiters. *)

val release : t -> unit
(** Give the server back, waking the longest-waiting fiber if any.
    Raises [Invalid_argument] if nothing is held. *)

val use : t -> service:float -> unit
(** [use t ~service] = acquire; delay [service]; release — with
    exception safety. *)

val in_use : t -> int
(** Servers currently held. *)

val queue_length : t -> int
(** Fibers currently waiting. *)

(** {2 Statistics} *)

val served : t -> int
(** Completed {!acquire}s. *)

val busy_time : t -> float
(** Integral of [in_use] over time, i.e. total server-seconds of work.
    Divide by elapsed time (and servers) for utilisation. *)

val total_wait : t -> float
(** Sum over completed acquires of time spent queued. *)
