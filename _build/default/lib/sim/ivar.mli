(** Write-once synchronisation variable.

    The standard completion primitive: an I/O issuer fills the ivar when
    the operation finishes; any number of fibers may block in {!read}
    until then. *)

type 'a t

val create : Engine.t -> 'a t

val fill : 'a t -> 'a -> unit
(** Set the value and wake all readers (at the current virtual time).
    Raises [Invalid_argument] if already filled. *)

val read : 'a t -> 'a
(** Return the value, blocking the calling fiber until {!fill}. *)

val peek : 'a t -> 'a option

val is_filled : 'a t -> bool
