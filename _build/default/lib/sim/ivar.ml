type 'a state = Empty of (unit -> unit) Queue.t | Filled of 'a

type 'a t = { engine : Engine.t; mutable state : 'a state }

let create engine = { engine; state = Empty (Queue.create ()) }

let fill t v =
  match t.state with
  | Filled _ -> invalid_arg "Ivar.fill: already filled"
  | Empty waiters ->
    t.state <- Filled v;
    Queue.iter (fun resume -> Engine.schedule t.engine ~at:(Engine.now t.engine) resume) waiters

let read t =
  match t.state with
  | Filled v -> v
  | Empty waiters ->
    Engine.suspend t.engine (fun resume -> Queue.push resume waiters);
    (match t.state with
    | Filled v -> v
    | Empty _ -> assert false)

let peek t = match t.state with Filled v -> Some v | Empty _ -> None

let is_filled t = match t.state with Filled _ -> true | Empty _ -> false
