type waiter = { enqueued_at : float; resume : unit -> unit }

type t = {
  engine : Engine.t;
  name : string;
  servers : int;
  mutable held : int;
  waiters : waiter Queue.t;
  mutable served : int;
  mutable total_wait : float;
  (* busy-time integral bookkeeping *)
  mutable busy_integral : float;
  mutable last_change : float;
}

let create engine ?(name = "resource") ~servers () =
  if servers <= 0 then invalid_arg "Resource.create: servers must be positive";
  {
    engine;
    name;
    servers;
    held = 0;
    waiters = Queue.create ();
    served = 0;
    total_wait = 0.0;
    busy_integral = 0.0;
    last_change = Engine.now engine;
  }

let name t = t.name

let advance_integral t =
  let now = Engine.now t.engine in
  t.busy_integral <- t.busy_integral +. (float_of_int t.held *. (now -. t.last_change));
  t.last_change <- now

let acquire t =
  if t.held < t.servers && Queue.is_empty t.waiters then begin
    advance_integral t;
    t.held <- t.held + 1;
    t.served <- t.served + 1
  end
  else begin
    let enqueued_at = Engine.now t.engine in
    Engine.suspend t.engine (fun resume ->
        Queue.push { enqueued_at; resume } t.waiters);
    (* Woken by [release]: the server was handed to us directly. *)
    t.total_wait <- t.total_wait +. (Engine.now t.engine -. enqueued_at);
    t.served <- t.served + 1
  end

let release t =
  if t.held <= 0 then invalid_arg "Resource.release: not held";
  match Queue.take_opt t.waiters with
  | Some w ->
    (* Hand over without decrementing [held]: the server stays busy.
       Wake at the current instant so FIFO order is preserved. *)
    Engine.schedule t.engine ~at:(Engine.now t.engine) w.resume
  | None ->
    advance_integral t;
    t.held <- t.held - 1

let use t ~service =
  acquire t;
  (match Engine.delay t.engine service with
  | () -> ()
  | exception e ->
    release t;
    raise e);
  release t

let in_use t = t.held

let queue_length t = Queue.length t.waiters

let served t = t.served

let busy_time t =
  advance_integral t;
  t.busy_integral

let total_wait t = t.total_wait
