type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix (Int64.of_int seed) }

let copy t = { state = t.state }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = { state = mix (bits64 t) }

(* Non-negative 62-bit value, cheap and unbiased enough for simulation use. *)
let bits t = Int64.to_int (Int64.shift_right_logical (bits64 t) 2)

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  bits t mod n

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t x =
  (* 53 random bits mapped to [0, 1). *)
  let b = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  x *. (b /. 9007199254740992.0)

let bool t = Int64.logand (bits64 t) 1L = 1L

let exponential t ~mean =
  let u = float t 1.0 in
  (* Guard against log 0. *)
  let u = if u <= 0.0 then epsilon_float else u in
  -.mean *. log u

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))
