lib/sim/ivar.ml: Engine Queue
