lib/sim/heap.mli:
