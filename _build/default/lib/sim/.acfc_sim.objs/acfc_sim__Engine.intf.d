lib/sim/engine.mli:
