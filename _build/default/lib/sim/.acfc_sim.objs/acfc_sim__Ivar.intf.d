lib/sim/ivar.mli: Engine
