lib/sim/resource.mli: Engine
