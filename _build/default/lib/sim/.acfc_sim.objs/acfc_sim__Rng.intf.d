lib/sim/rng.mli:
