lib/sim/resource.ml: Engine Queue
