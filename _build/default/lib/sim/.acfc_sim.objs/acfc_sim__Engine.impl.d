lib/sim/engine.ml: Effect Hashtbl Heap List Printf String
