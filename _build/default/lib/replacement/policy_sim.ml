module Block = Acfc_core.Block

module type POLICY = sig
  type t

  val name : string

  val init : capacity:int -> Trace.t -> t

  val hit : t -> pos:int -> Block.t -> unit

  val choose_victim : t -> pos:int -> missing:Block.t -> Block.t

  val inserted : t -> pos:int -> Block.t -> unit

  val evicted : t -> Block.t -> unit
end

type result = {
  policy : string;
  capacity : int;
  references : int;
  hits : int;
  misses : int;
}

let run (module P : POLICY) ~capacity trace =
  if capacity <= 0 then invalid_arg "Policy_sim.run: capacity must be positive";
  let state = P.init ~capacity trace in
  let resident = Hashtbl.create (2 * capacity) in
  let hits = ref 0 and misses = ref 0 in
  Array.iteri
    (fun pos block ->
      if Hashtbl.mem resident block then begin
        incr hits;
        P.hit state ~pos block
      end
      else begin
        incr misses;
        if Hashtbl.length resident >= capacity then begin
          let victim = P.choose_victim state ~pos ~missing:block in
          if not (Hashtbl.mem resident victim) then
            failwith
              (Format.asprintf "policy %s evicted non-resident %a" P.name Block.pp
                 victim);
          Hashtbl.remove resident victim;
          P.evicted state victim
        end;
        Hashtbl.replace resident block ();
        P.inserted state ~pos block
      end)
    trace;
  {
    policy = P.name;
    capacity;
    references = Array.length trace;
    hits = !hits;
    misses = !misses;
  }

let miss_ratio r =
  if r.references = 0 then 0.0 else float_of_int r.misses /. float_of_int r.references

let pp_result ppf r =
  Format.fprintf ppf "%-8s cap=%-6d refs=%-8d misses=%-8d (%.1f%%)" r.policy r.capacity
    r.references r.misses (100.0 *. miss_ratio r)
