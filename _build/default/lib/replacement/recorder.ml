module Block = Acfc_core.Block
module Pid = Acfc_core.Pid
module Event = Acfc_core.Event

type entry = { pid : Pid.t; block : Block.t; hit : bool; prefetch : bool }

type t = { mutable entries : entry list (* reversed *); mutable length : int }

let create () = { entries = []; length = 0 }

let record t e =
  t.entries <- e :: t.entries;
  t.length <- t.length + 1

let tracer t = function
  | Event.Hit { pid; block } -> record t { pid; block; hit = true; prefetch = false }
  | Event.Miss { pid; block; prefetch } -> record t { pid; block; hit = false; prefetch }
  | Event.Evict _ | Event.Writeback _ | Event.Placeholder_created _
  | Event.Placeholder_used _ | Event.Manager_revoked _ ->
    ()

let length t = t.length

let entries t = Array.of_list (List.rev t.entries)

let to_trace ?pid ?(include_prefetch = false) t =
  let wanted e =
    (include_prefetch || not e.prefetch)
    && match pid with Some p -> Pid.equal p e.pid | None -> true
  in
  List.rev t.entries
  |> List.filter wanted
  |> List.map (fun e -> e.block)
  |> Array.of_list

let magic = "acfc-trace-v1"

let save t oc =
  output_string oc (magic ^ "\n");
  List.iter
    (fun e ->
      Printf.fprintf oc "%d %d %d %c %c\n" (Pid.to_int e.pid) (Block.file e.block)
        (Block.index e.block)
        (if e.hit then 'h' else 'm')
        (if e.prefetch then 'p' else 'd'))
    (List.rev t.entries)

let load ic =
  (match input_line ic with
  | header when header = magic -> ()
  | _ -> failwith "Recorder.load: bad trace header"
  | exception End_of_file -> failwith "Recorder.load: empty file");
  let t = create () in
  (try
     while true do
       let line = input_line ic in
       if line <> "" then
         match String.split_on_char ' ' line with
         | [ pid; file; index; hm; dp ] ->
           let int_of s =
             match int_of_string_opt s with
             | Some n -> n
             | None -> failwith "Recorder.load: bad integer"
           in
           let hit =
             match hm with
             | "h" -> true
             | "m" -> false
             | _ -> failwith "Recorder.load: bad hit flag"
           in
           let prefetch =
             match dp with
             | "p" -> true
             | "d" -> false
             | _ -> failwith "Recorder.load: bad prefetch flag"
           in
           record t
             {
               pid = Pid.make (int_of pid);
               block = Block.make ~file:(int_of file) ~index:(int_of index);
               hit;
               prefetch;
             }
         | _ -> failwith "Recorder.load: bad line"
     done
   with End_of_file -> ());
  t
