module Block = Acfc_core.Block
module Dll = Acfc_core.Dll

(* Shared recency-list state for LRU and MRU. *)
module Recency = struct
  type t = { list : Block.t Dll.t; nodes : (Block.t, Block.t Dll.node) Hashtbl.t }

  let init ~capacity:_ _trace =
    { list = Dll.create (); nodes = Hashtbl.create 1024 }

  let hit t ~pos:_ block = Dll.move_front t.list (Hashtbl.find t.nodes block)

  let inserted t ~pos:_ block = Hashtbl.replace t.nodes block (Dll.push_front t.list block)

  let evicted t block =
    Dll.remove t.list (Hashtbl.find t.nodes block);
    Hashtbl.remove t.nodes block

  let end_victim t ~front =
    let node = if front then Dll.front t.list else Dll.back t.list in
    match node with Some n -> Dll.value n | None -> failwith "Recency: empty list"
end

module Lru = struct
  include Recency

  let name = "LRU"

  let choose_victim t ~pos:_ ~missing:_ = end_victim t ~front:false
end

module Mru = struct
  include Recency

  let name = "MRU"

  let choose_victim t ~pos:_ ~missing:_ = end_victim t ~front:true
end

module Fifo = struct
  type t = { order : Block.t Queue.t; resident : (Block.t, unit) Hashtbl.t }

  let name = "FIFO"

  let init ~capacity:_ _trace = { order = Queue.create (); resident = Hashtbl.create 1024 }

  let hit _ ~pos:_ _ = ()

  let choose_victim t ~pos:_ ~missing:_ =
    (* Entries for already-evicted blocks never occur: FIFO pops exactly
       the block it reports, and the framework evicts it. *)
    Queue.pop t.order

  let inserted t ~pos:_ block =
    Queue.push block t.order;
    Hashtbl.replace t.resident block ()

  let evicted t block = Hashtbl.remove t.resident block
end

module Clock = struct
  type t = { ring : Block.t Queue.t; referenced : (Block.t, unit) Hashtbl.t }

  let name = "CLOCK"

  let init ~capacity:_ _trace = { ring = Queue.create (); referenced = Hashtbl.create 1024 }

  let hit t ~pos:_ block = Hashtbl.replace t.referenced block ()

  let rec choose_victim t ~pos ~missing =
    let block = Queue.pop t.ring in
    if Hashtbl.mem t.referenced block then begin
      (* Second chance: clear the bit and move the hand on. *)
      Hashtbl.remove t.referenced block;
      Queue.push block t.ring;
      choose_victim t ~pos ~missing
    end
    else block

  let inserted t ~pos:_ block = Queue.push block t.ring

  let evicted t block = Hashtbl.remove t.referenced block
end

module Lru_2 = struct
  (* history: positions of the last two references, most recent first. *)
  type t = { history : (Block.t, int * int) Hashtbl.t }

  let name = "LRU-2"

  let never = -1

  let init ~capacity:_ _trace = { history = Hashtbl.create 1024 }

  let record t ~pos block =
    let last, _ = Option.value (Hashtbl.find_opt t.history block) ~default:(never, never) in
    Hashtbl.replace t.history block (pos, last)

  let hit t ~pos block = record t ~pos block

  let choose_victim t ~pos:_ ~missing:_ =
    (* Evict the block with the oldest penultimate reference; ties and
       blocks referenced only once (penultimate = never) go first, broken
       by the older last reference for determinism. *)
    let best = ref None in
    Hashtbl.iter
      (fun block (last, penultimate) ->
        let better =
          match !best with
          | None -> true
          | Some (_, (blast, bpenultimate)) ->
            penultimate < bpenultimate
            || (penultimate = bpenultimate && last < blast)
        in
        if better then best := Some (block, (last, penultimate)))
      t.history;
    match !best with Some (block, _) -> block | None -> failwith "LRU-2: empty"

  let inserted t ~pos block = record t ~pos block

  let evicted t block = Hashtbl.remove t.history block
end

module Rand = struct
  type t = { rng : Acfc_sim.Rng.t; mutable resident : Block.t list }

  let name = "RAND"

  let init ~capacity _trace = { rng = Acfc_sim.Rng.create (capacity + 7); resident = [] }

  let hit _ ~pos:_ _ = ()

  let choose_victim t ~pos:_ ~missing:_ =
    let arr = Array.of_list t.resident in
    Acfc_sim.Rng.pick t.rng arr

  let inserted t ~pos:_ block = t.resident <- block :: t.resident

  let evicted t block =
    t.resident <- List.filter (fun b -> not (Block.equal b block)) t.resident
end

module Opt = struct
  type t = {
    (* For each block, the trace positions where it is referenced, in
       order, with the already-consumed prefix removed. *)
    future : (Block.t, int list ref) Hashtbl.t;
    resident : (Block.t, unit) Hashtbl.t;
  }

  let name = "OPT"

  let init ~capacity:_ trace =
    let future = Hashtbl.create 1024 in
    Array.iteri
      (fun pos block ->
        match Hashtbl.find_opt future block with
        | Some l -> l := pos :: !l
        | None -> Hashtbl.replace future block (ref [ pos ]))
      trace;
    Hashtbl.iter (fun _ l -> l := List.rev !l) future;
    { future; resident = Hashtbl.create 1024 }

  let consume t ~pos block =
    let l = Hashtbl.find t.future block in
    match !l with
    | p :: rest when p = pos -> l := rest
    | _ -> failwith "OPT: trace position mismatch"

  let hit t ~pos block = consume t ~pos block

  let next_use t block =
    match !(Hashtbl.find t.future block) with [] -> max_int | p :: _ -> p

  let choose_victim t ~pos:_ ~missing:_ =
    let best = ref None in
    Hashtbl.iter
      (fun block () ->
        let use = next_use t block in
        match !best with
        | Some (_, buse) when buse >= use -> ()
        | Some _ | None -> best := Some (block, use))
      t.resident;
    match !best with Some (block, _) -> block | None -> failwith "OPT: empty"

  let inserted t ~pos block =
    consume t ~pos block;
    Hashtbl.replace t.resident block ()

  let evicted t block = Hashtbl.remove t.resident block
end

module Two_q = struct
  (* Simplified full 2Q (Johnson & Shasha, VLDB '94 — contemporaneous
     with the paper): new pages enter the FIFO probation queue A1in;
     pages re-referenced after leaving it (tracked by the ghost queue
     A1out) are promoted to the protected LRU queue Am. *)
  type queue = A1in | Am

  type t = {
    kin : int;  (* A1in capacity *)
    kout : int;  (* A1out ghost capacity *)
    a1in : Block.t Queue.t;
    am : Block.t Dll.t;
    am_nodes : (Block.t, Block.t Dll.node) Hashtbl.t;
    where : (Block.t, queue) Hashtbl.t;  (* resident pages only *)
    a1out : Block.t Queue.t;  (* ghosts: identities only *)
    ghost : (Block.t, unit) Hashtbl.t;
  }

  let name = "2Q"

  let init ~capacity _trace =
    {
      kin = Stdlib.max 1 (capacity / 4);
      kout = Stdlib.max 1 (capacity / 2);
      a1in = Queue.create ();
      am = Dll.create ();
      am_nodes = Hashtbl.create 1024;
      where = Hashtbl.create 1024;
      a1out = Queue.create ();
      ghost = Hashtbl.create 1024;
    }

  let hit t ~pos:_ block =
    match Hashtbl.find_opt t.where block with
    | Some Am -> Dll.move_front t.am (Hashtbl.find t.am_nodes block)
    | Some A1in -> ()  (* classic 2Q: probation hits do not promote *)
    | None -> assert false

  let remember_ghost t block =
    Queue.push block t.a1out;
    Hashtbl.replace t.ghost block ();
    while Queue.length t.a1out > t.kout do
      Hashtbl.remove t.ghost (Queue.pop t.a1out)
    done

  let choose_victim t ~pos:_ ~missing:_ =
    if Queue.length t.a1in > t.kin || Dll.is_empty t.am then begin
      let victim = Queue.pop t.a1in in
      remember_ghost t victim;
      victim
    end
    else
      match Dll.back t.am with
      | Some node -> Dll.value node
      | None -> Queue.pop t.a1in

  let inserted t ~pos:_ block =
    if Hashtbl.mem t.ghost block then begin
      (* Seen recently: promote straight to the protected queue. *)
      Hashtbl.replace t.where block Am;
      Hashtbl.replace t.am_nodes block (Dll.push_front t.am block)
    end
    else begin
      Hashtbl.replace t.where block A1in;
      Queue.push block t.a1in
    end

  let evicted t block =
    (match Hashtbl.find_opt t.where block with
    | Some Am ->
      Dll.remove t.am (Hashtbl.find t.am_nodes block);
      Hashtbl.remove t.am_nodes block
    | Some A1in | None -> ()  (* A1in victims were already popped *));
    Hashtbl.remove t.where block
end

let all : (module Policy_sim.POLICY) list =
  [
    (module Lru);
    (module Mru);
    (module Fifo);
    (module Clock);
    (module Lru_2);
    (module Two_q);
    (module Rand);
    (module Opt);
  ]

let by_name name =
  let target = String.uppercase_ascii name in
  List.find_opt (fun (module P : Policy_sim.POLICY) -> P.name = target) all
