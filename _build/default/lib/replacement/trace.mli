(** Block reference traces and synthetic trace generators.

    The companion simulation study ([3], USENIX Summer '94) evaluates
    replacement policies on reference traces; this module provides the
    traces. Generators cover the access patterns the paper's interface
    was designed for (Sec. 3): sequential single-pass, cyclic, hot/cold,
    and random. *)

type t = Acfc_core.Block.t array

val sequential : file:int -> blocks:int -> t
(** One pass over [blocks] blocks of [file]. *)

val cyclic : file:int -> blocks:int -> passes:int -> t
(** [passes] sequential passes over the same blocks — the cscope /
    dinero pattern, where MRU beats LRU whenever the file exceeds the
    cache. *)

val random : rng:Acfc_sim.Rng.t -> file:int -> blocks:int -> length:int -> t
(** Uniformly random references. *)

val hot_cold :
  rng:Acfc_sim.Rng.t ->
  hot_file:int ->
  hot_blocks:int ->
  cold_file:int ->
  cold_blocks:int ->
  hot_fraction:float ->
  length:int ->
  t
(** Each reference goes to a uniformly-chosen hot block with probability
    [hot_fraction], else to a uniformly-chosen cold block — the postgres
    index/data pattern. *)

val zipf : rng:Acfc_sim.Rng.t -> file:int -> blocks:int -> skew:float -> length:int -> t
(** Zipf-distributed references with exponent [skew] > 0. *)

val concat : t list -> t

val interleave : rng:Acfc_sim.Rng.t -> t list -> t
(** Random fair merge preserving each trace's internal order — a crude
    model of concurrent processes sharing a cache. *)

val working_set_size : t -> int
(** Number of distinct blocks. *)

val pp_summary : Format.formatter -> t -> unit
