(** Trace-driven replacement-policy simulator.

    A pluggable framework in the style of the companion paper's
    simulation study: the framework maintains the resident set; a
    policy observes accesses and chooses victims. Policies may inspect
    the whole trace (OPT does); online policies ignore it. *)

module type POLICY = sig
  type t

  val name : string

  val init : capacity:int -> Trace.t -> t
  (** Fresh policy state for a run over the given trace. *)

  val hit : t -> pos:int -> Acfc_core.Block.t -> unit
  (** The block at trace position [pos] was resident. *)

  val choose_victim : t -> pos:int -> missing:Acfc_core.Block.t -> Acfc_core.Block.t
  (** The cache is full and [missing] is wanted: return a resident
      block to evict. Called exactly when an eviction is needed. *)

  val inserted : t -> pos:int -> Acfc_core.Block.t -> unit
  (** [missing] was installed (after any eviction). *)

  val evicted : t -> Acfc_core.Block.t -> unit
end

type result = {
  policy : string;
  capacity : int;
  references : int;
  hits : int;
  misses : int;
}

val run : (module POLICY) -> capacity:int -> Trace.t -> result
(** Simulate the policy over the trace with [capacity] frames. Raises
    [Invalid_argument] if [capacity] is not positive, or [Failure] if
    the policy returns a non-resident victim. *)

val miss_ratio : result -> float

val pp_result : Format.formatter -> result -> unit
