(** Stock replacement policies for the trace-driven simulator.

    [Lru] and [Mru] are the two policies the paper's interface offers
    applications; [Opt] is Belady's offline-optimal algorithm, the
    yardstick the companion paper proposes application policies should
    approximate; the rest are classic baselines. *)

module Lru : Policy_sim.POLICY

module Mru : Policy_sim.POLICY

module Fifo : Policy_sim.POLICY

module Clock : Policy_sim.POLICY
(** Second-chance / CLOCK. *)

module Lru_2 : Policy_sim.POLICY
(** LRU-K with K = 2 (O'Neil et al., SIGMOD '93 — cited by the paper as
    related database work). Victim is the resident block whose
    second-most-recent reference is oldest. *)

module Two_q : Policy_sim.POLICY
(** Simplified full 2Q (Johnson & Shasha, VLDB '94): a FIFO probation
    queue for new pages, a ghost queue of recent evictees, and a
    protected LRU queue for pages re-referenced after probation. *)

module Rand : Policy_sim.POLICY
(** Uniform random victim (deterministically seeded). *)

module Opt : Policy_sim.POLICY
(** Belady's optimal offline policy: evict the resident block whose
    next use is farthest in the future. A lower bound on misses for
    every demand-paged policy. *)

val all : (module Policy_sim.POLICY) list
(** Every policy above, [Opt] last. *)

val by_name : string -> (module Policy_sim.POLICY) option
