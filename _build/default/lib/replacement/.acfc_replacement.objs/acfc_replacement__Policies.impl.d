lib/replacement/policies.ml: Acfc_core Acfc_sim Array Hashtbl List Option Policy_sim Queue Stdlib String
