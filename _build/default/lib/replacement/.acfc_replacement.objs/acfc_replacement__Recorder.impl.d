lib/replacement/recorder.ml: Acfc_core Array List Printf String
