lib/replacement/recorder.mli: Acfc_core Trace
