lib/replacement/policy_sim.mli: Acfc_core Format Trace
