lib/replacement/trace.ml: Acfc_core Acfc_sim Array Format Hashtbl List
