lib/replacement/trace.mli: Acfc_core Acfc_sim Format
