lib/replacement/policy_sim.ml: Acfc_core Array Format Hashtbl Trace
