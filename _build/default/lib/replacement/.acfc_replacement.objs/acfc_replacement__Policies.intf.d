lib/replacement/policies.mli: Policy_sim
