open Acfc_sim
open Tutil

let read_after_fill () =
  let v =
    in_sim (fun e ->
        let iv = Ivar.create e in
        Ivar.fill iv 42;
        Ivar.read iv)
  in
  chk_int "value" 42 v

let read_blocks_until_fill () =
  let e = Engine.create () in
  let iv = Ivar.create e in
  let got = ref (0, 0.0) in
  Engine.spawn e (fun () ->
      let v = Ivar.read iv in
      got := (v, Engine.now e));
  Engine.spawn e (fun () ->
      Engine.delay e 3.0;
      Ivar.fill iv 7);
  Engine.run e;
  chk_bool "value and time" true (!got = (7, 3.0))

let multiple_readers () =
  let e = Engine.create () in
  let iv = Ivar.create e in
  let woken = ref 0 in
  for _ = 1 to 5 do
    Engine.spawn e (fun () ->
        ignore (Ivar.read iv);
        incr woken)
  done;
  Engine.spawn e (fun () ->
      Engine.delay e 1.0;
      Ivar.fill iv ());
  Engine.run e;
  chk_int "all woken" 5 !woken

let double_fill () =
  let e = Engine.create () in
  let iv = Ivar.create e in
  Ivar.fill iv 1;
  Alcotest.check_raises "double fill" (Invalid_argument "Ivar.fill: already filled")
    (fun () -> Ivar.fill iv 2)

let peek_and_is_filled () =
  let e = Engine.create () in
  let iv = Ivar.create e in
  chk_bool "empty peek" true (Ivar.peek iv = None);
  chk_bool "not filled" false (Ivar.is_filled iv);
  Ivar.fill iv 9;
  chk_bool "peek" true (Ivar.peek iv = Some 9);
  chk_bool "filled" true (Ivar.is_filled iv)

let unfilled_ivar_deadlocks () =
  let e = Engine.create () in
  let iv = Ivar.create e in
  Engine.spawn e ~name:"reader" (fun () -> ignore (Ivar.read iv));
  (match Engine.run e with
  | () -> Alcotest.fail "expected deadlock"
  | exception Engine.Deadlock _ -> ())

let suites =
  [
    ( "ivar",
      [
        case "read after fill" read_after_fill;
        case "read blocks until fill" read_blocks_until_fill;
        case "multiple readers" multiple_readers;
        case "double fill rejected" double_fill;
        case "peek / is_filled" peek_and_is_filled;
        case "unfilled read deadlocks" unfilled_ivar_deadlocks;
      ] );
  ]
