open Acfc_sim
open Tutil

let single_server_serialises () =
  let e = Engine.create () in
  let r = Resource.create e ~servers:1 () in
  let finish = Array.make 3 0.0 in
  for i = 0 to 2 do
    Engine.spawn e (fun () ->
        Resource.use r ~service:1.0;
        finish.(i) <- Engine.now e)
  done;
  Engine.run e;
  chk_float "first" 1.0 finish.(0);
  chk_float "second" 2.0 finish.(1);
  chk_float "third" 3.0 finish.(2)

let fifo_order () =
  let e = Engine.create () in
  let r = Resource.create e ~servers:1 () in
  let order = ref [] in
  for i = 0 to 4 do
    Engine.spawn e (fun () ->
        (* Stagger arrivals so the queue order is unambiguous. *)
        Engine.delay e (float_of_int i *. 0.01);
        Resource.use r ~service:1.0;
        order := i :: !order)
  done;
  Engine.run e;
  chk_bool "served FIFO" true (List.rev !order = [ 0; 1; 2; 3; 4 ])

let multi_server_parallel () =
  let e = Engine.create () in
  let r = Resource.create e ~servers:3 () in
  let finish = Array.make 6 0.0 in
  for i = 0 to 5 do
    Engine.spawn e (fun () ->
        Resource.use r ~service:1.0;
        finish.(i) <- Engine.now e)
  done;
  Engine.run e;
  (* Three at a time: finish at 1.0 (x3) then 2.0 (x3). *)
  let times = List.sort compare (Array.to_list finish) in
  chk_bool "two batches" true (times = [ 1.0; 1.0; 1.0; 2.0; 2.0; 2.0 ])

let manual_acquire_release () =
  let e = Engine.create () in
  let r = Resource.create e ~servers:1 () in
  Engine.spawn e (fun () ->
      Resource.acquire r;
      chk_int "held" 1 (Resource.in_use r);
      Engine.delay e 2.0;
      Resource.release r);
  Engine.spawn e (fun () ->
      Engine.delay e 0.5;
      chk_int "queued" 0 (Resource.queue_length r);
      Resource.acquire r;
      chk_float "waited until release" 2.0 (Engine.now e);
      Resource.release r);
  Engine.run e;
  chk_int "free at end" 0 (Resource.in_use r);
  chk_int "served" 2 (Resource.served r)

let release_without_acquire () =
  let e = Engine.create () in
  let r = Resource.create e ~servers:1 () in
  Alcotest.check_raises "bad release" (Invalid_argument "Resource.release: not held")
    (fun () -> Resource.release r)

let stats_busy_and_wait () =
  let e = Engine.create () in
  let r = Resource.create e ~servers:1 () in
  for _ = 1 to 2 do
    Engine.spawn e (fun () -> Resource.use r ~service:2.0)
  done;
  Engine.run e;
  chk_float "busy integral" 4.0 (Resource.busy_time r);
  (* Second fiber waited from 0 to 2. *)
  chk_float "total wait" 2.0 (Resource.total_wait r)

let exception_releases () =
  let e = Engine.create () in
  let r = Resource.create e ~servers:1 () in
  Engine.spawn e (fun () ->
      match Resource.use r ~service:(-1.0) (* delay raises *) with
      | () -> Alcotest.fail "negative service accepted"
      | exception Invalid_argument _ -> ());
  Engine.run e;
  chk_int "released after exception" 0 (Resource.in_use r)

let invalid_servers () =
  let e = Engine.create () in
  Alcotest.check_raises "zero servers"
    (Invalid_argument "Resource.create: servers must be positive") (fun () ->
      ignore (Resource.create e ~servers:0 ()))

let suites =
  [
    ( "resource",
      [
        case "single server serialises" single_server_serialises;
        case "FIFO order" fifo_order;
        case "multi-server parallelism" multi_server_parallel;
        case "manual acquire/release" manual_acquire_release;
        case "release without acquire" release_without_acquire;
        case "busy/wait statistics" stats_busy_and_wait;
        case "exception safety" exception_releases;
        case "invalid servers" invalid_servers;
      ] );
  ]
