open Acfc_sim
open Acfc_disk
open Tutil

let params_sane () =
  List.iter
    (fun p ->
      chk_bool "capacity positive" true (p.Params.capacity_blocks > 0);
      chk_bool "seek curve ordered" true
        (p.Params.min_seek_ms < p.Params.avg_seek_ms
        && p.Params.avg_seek_ms < p.Params.max_seek_ms))
    [ Params.rz56; Params.rz26 ]

let transfer_time () =
  (* 8 KB at 1.875 MB/s is ~4.17 ms. *)
  let t = Params.transfer_time_s Params.rz56 in
  chk_bool "rz56 transfer" true (Float.abs (t -. 0.004167) < 0.0001);
  let t26 = Params.transfer_time_s Params.rz26 in
  chk_bool "rz26 is faster" true (t26 < t)

let seek_curve () =
  let p = Params.rz56 in
  chk_float "zero distance" 0.0 (Params.seek_time_s p ~distance:0);
  let one = Params.seek_time_s p ~distance:1 in
  chk_bool "single track near min" true
    (Float.abs (one -. (p.Params.min_seek_ms /. 1000.0)) < 0.001);
  let avg = Params.seek_time_s p ~distance:(p.Params.capacity_blocks / 3) in
  chk_bool "avg distance costs avg seek" true
    (Float.abs (avg -. (p.Params.avg_seek_ms /. 1000.0)) < 0.0005);
  let full = Params.seek_time_s p ~distance:p.Params.capacity_blocks in
  chk_bool "capped at max" true (full <= p.Params.max_seek_ms /. 1000.0 +. 1e-9);
  (* Monotone in distance. *)
  let rec check_monotone last = function
    | [] -> ()
    | d :: rest ->
      let s = Params.seek_time_s p ~distance:d in
      chk_bool "monotone seek" true (s >= last);
      check_monotone s rest
  in
  check_monotone 0.0 [ 1; 10; 100; 1000; 10000; 80000 ]

let sequential_is_cheap () =
  (* A sequential run of blocks must cost far less per block than a
     random scatter of the same size. *)
  let run addrs =
    in_sim (fun e ->
        let d = Disk.create e Params.rz56 in
        List.iter (fun a -> Disk.io d Disk.Read ~addr:a) addrs;
        Engine.now e)
  in
  let seq = run (List.init 100 (fun i -> i)) in
  let random = run (List.init 100 (fun i -> (i * 7919) mod 80000)) in
  chk_bool "sequential much cheaper" true (seq *. 2.0 < random)

let service_time_estimate () =
  in_sim (fun e ->
      let d = Disk.create e Params.rz56 in
      (* Head at 0: block 0 is sequential (no seek, no rotation). *)
      let t0 = Disk.service_time d ~addr:0 in
      let expected =
        (Params.rz56.Params.overhead_ms /. 1000.0)
        +. (Params.rz56.Params.seq_rot_factor *. Params.rz56.Params.avg_rot_ms /. 1000.0)
        +. Params.transfer_time_s Params.rz56
      in
      chk_bool "sequential estimate" true (Float.abs (t0 -. expected) < 1e-6);
      let far = Disk.service_time d ~addr:50000 in
      chk_bool "far request costs seek+rotation" true (far > t0 +. 0.010))

let queueing_serialises () =
  let e = Engine.create () in
  let d = Disk.create e Params.rz56 in
  let finish = Array.make 2 0.0 in
  for i = 0 to 1 do
    Engine.spawn e (fun () ->
        Disk.io d Disk.Read ~addr:(i * 40000);
        finish.(i) <- Engine.now e)
  done;
  Engine.run e;
  chk_bool "second waits for first" true (finish.(1) > finish.(0));
  chk_bool "queue wait recorded" true (Disk.total_wait d > 0.0)

let bus_contention () =
  (* Two disks on one bus: concurrent transfers serialise on the bus,
     so the makespan exceeds the no-bus case. *)
  let run ~shared =
    let e = Engine.create () in
    let bus = if shared then Some (Bus.create e ()) else None in
    let mk p = match bus with Some b -> Disk.create e ~bus:b p | None -> Disk.create e p in
    let d1 = mk Params.rz56 and d2 = mk Params.rz26 in
    for i = 0 to 49 do
      Engine.spawn e (fun () -> Disk.io d1 Disk.Read ~addr:i)
    done;
    for i = 0 to 49 do
      Engine.spawn e (fun () -> Disk.io d2 Disk.Read ~addr:i)
    done;
    Engine.run e;
    Engine.now e
  in
  chk_bool "bus adds contention" true (run ~shared:true > run ~shared:false)

let stats_and_validation () =
  in_sim (fun e ->
      let d = Disk.create e Params.rz26 in
      Disk.io d Disk.Read ~addr:0;
      Disk.io d Disk.Write ~addr:1;
      Disk.io d Disk.Read ~addr:2;
      chk_int "reads" 2 (Disk.reads d);
      chk_int "writes" 1 (Disk.writes d);
      (* The head parks at 0, so the very first request is sequential
         too. *)
      chk_int "sequential hits" 3 (Disk.sequential_hits d);
      chk_bool "busy time positive" true (Disk.busy_time d > 0.0);
      Disk.reset_stats d;
      chk_int "reset" 0 (Disk.reads d);
      Alcotest.check_raises "address range"
        (Invalid_argument "Disk.io(RZ26): address -1 out of range") (fun () ->
          Disk.io d Disk.Read ~addr:(-1)))

let deterministic_without_rng () =
  let run () =
    in_sim (fun e ->
        let d = Disk.create e Params.rz56 in
        List.iter (fun a -> Disk.io d Disk.Read ~addr:a) [ 5; 900; 17; 42000 ];
        Engine.now e)
  in
  chk_float "reproducible" (run ()) (run ())

let rng_adds_variance () =
  let run seed =
    in_sim (fun e ->
        let d = Disk.create e ~rng:(Rng.create seed) Params.rz56 in
        List.iter (fun a -> Disk.io d Disk.Read ~addr:a) [ 5; 900; 17; 42000 ];
        Engine.now e)
  in
  chk_bool "different seeds differ" true (run 1 <> run 2)

let base_cases =
      [
        case "parameter sanity" params_sane;
        case "transfer time" transfer_time;
        case "seek curve" seek_curve;
        case "sequential vs random cost" sequential_is_cheap;
        case "service time estimate" service_time_estimate;
        case "queueing" queueing_serialises;
        case "bus contention" bus_contention;
        case "stats and validation" stats_and_validation;
        case "deterministic without rng" deterministic_without_rng;
        case "rng variance" rng_adds_variance;
      ]

let completion_order ~sched =
  let e = Engine.create () in
  let d = Disk.create e ~sched Params.rz56 in
  let order = ref [] in
  (* First request occupies the drive; the rest arrive while it is busy
     and are dispatched per discipline. *)
  Engine.spawn e (fun () -> Disk.io d Disk.Read ~addr:40000);
  List.iteri
    (fun i addr ->
      Engine.spawn e (fun () ->
          Engine.delay e (0.001 *. float_of_int (i + 1));
          Disk.io d Disk.Read ~addr;
          order := addr :: !order))
    [ 70000; 45000; 60000 ];
  Engine.run e;
  List.rev !order

let fcfs_order () =
  chk_bool "FCFS serves in arrival order" true
    (completion_order ~sched:Disk.Fcfs = [ 70000; 45000; 60000 ])

let scan_order () =
  (* Head is at 40001 after the first request, sweeping up: nearest
     first in the sweep direction. *)
  chk_bool "SCAN serves by position" true
    (completion_order ~sched:Disk.Scan = [ 45000; 60000; 70000 ])

let scan_reverses_at_end () =
  let e = Engine.create () in
  let d = Disk.create e ~sched:Disk.Scan Params.rz56 in
  let order = ref [] in
  Engine.spawn e (fun () -> Disk.io d Disk.Read ~addr:50000);
  List.iteri
    (fun i addr ->
      Engine.spawn e (fun () ->
          Engine.delay e (0.001 *. float_of_int (i + 1));
          Disk.io d Disk.Read ~addr;
          order := addr :: !order))
    [ 10000; 60000; 5000 ];
  Engine.run e;
  (* Sweep up from ~50000 takes 60000, then reverses for 10000, 5000. *)
  chk_bool "elevator reversal" true (List.rev !order = [ 60000; 10000; 5000 ]);
  chk_int "queue drained" 0 (Disk.queue_length d)

let scan_same_ios () =
  (* Scheduling reorders service but never changes what is served. *)
  let run sched =
    in_sim (fun e ->
        let d = Disk.create e ~sched Params.rz56 in
        List.iter (fun a -> Disk.io d Disk.Read ~addr:a) [ 9; 1; 5; 3 ];
        Disk.reads d)
  in
  chk_int "same count" (run Disk.Fcfs) (run Disk.Scan)

let suites =
  [
    ( "disk",
      base_cases
      @ [
          case "FCFS arrival order" fcfs_order;
          case "SCAN positional order" scan_order;
          case "SCAN reverses at the end" scan_reverses_at_end;
          case "scheduling preserves I/O counts" scan_same_ios;
        ] );
  ]
