(* Shared helpers for the test suites. *)

open Acfc_sim

let check = Alcotest.check

let chk_int = check Alcotest.int

let chk_bool = check Alcotest.bool

let chk_float msg = check (Alcotest.float 1e-9) msg

(* Run [f] as the only fiber of a fresh engine and return its result. *)
let in_sim f =
  let engine = Engine.create () in
  let result = ref None in
  Engine.spawn engine ~name:"test" (fun () -> result := Some (f engine));
  Engine.run engine;
  match !result with Some r -> r | None -> Alcotest.fail "fiber did not finish"

let case name f = Alcotest.test_case name `Quick f

let qcheck ?count name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ?count ~name gen prop)

(* A block of file 0 with the given index. *)
let blk ?(file = 0) index = Acfc_core.Block.make ~file ~index

let pid n = Acfc_core.Pid.make n

let ok_exn = function
  | Ok v -> v
  | Error e -> Alcotest.fail ("unexpected error: " ^ Acfc_core.Error.to_string e)

let config ?(alloc_policy = Acfc_core.Config.Lru_sp) ?revocation ?max_placeholders
    ?max_managers ?max_levels ?max_file_records capacity =
  Acfc_core.Config.make ~alloc_policy ?revocation ?max_placeholders ?max_managers
    ?max_levels ?max_file_records ~capacity_blocks:capacity ()

(* Substring test without extra dependencies. *)
let contains_sub ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0
