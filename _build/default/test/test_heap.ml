open Acfc_sim
open Tutil

let int_heap () = Heap.create ~leq:(fun (a : int) b -> a <= b) ()

let empty_heap () =
  let h = int_heap () in
  chk_int "length" 0 (Heap.length h);
  chk_bool "is_empty" true (Heap.is_empty h);
  chk_bool "peek none" true (Heap.peek h = None);
  chk_bool "pop none" true (Heap.pop h = None);
  Alcotest.check_raises "pop_exn" (Invalid_argument "Heap.pop_exn: empty heap")
    (fun () -> ignore (Heap.pop_exn h))

let push_pop_order () =
  let h = int_heap () in
  List.iter (Heap.push h) [ 5; 1; 4; 1; 3 ];
  chk_int "length" 5 (Heap.length h);
  chk_bool "peek min" true (Heap.peek h = Some 1);
  let drained = List.init 5 (fun _ -> Heap.pop_exn h) in
  chk_bool "sorted drain" true (drained = [ 1; 1; 3; 4; 5 ]);
  chk_bool "empty after" true (Heap.is_empty h)

let clear () =
  let h = int_heap () in
  List.iter (Heap.push h) [ 3; 2; 1 ];
  Heap.clear h;
  chk_int "cleared" 0 (Heap.length h);
  Heap.push h 9;
  chk_bool "usable after clear" true (Heap.pop h = Some 9)

let to_list_contents () =
  let h = int_heap () in
  List.iter (Heap.push h) [ 4; 2; 7 ];
  chk_bool "same multiset" true (List.sort compare (Heap.to_list h) = [ 2; 4; 7 ])

let drain h =
  let rec go acc = match Heap.pop h with None -> List.rev acc | Some x -> go (x :: acc) in
  go []

let sorted_drain_prop =
  qcheck "pop drains in sorted order" ~count:500
    QCheck2.Gen.(list_size (int_range 0 200) int)
    (fun l ->
      let h = int_heap () in
      List.iter (Heap.push h) l;
      drain h = List.sort compare l)

let interleaved_prop =
  (* Interleave pushes and pops; the result must match a reference
     sorted-multiset model. *)
  qcheck "interleaved push/pop matches model" ~count:300
    QCheck2.Gen.(list_size (int_range 0 200) (pair bool int))
    (fun ops ->
      let h = int_heap () in
      let model = ref [] in
      List.for_all
        (fun (is_pop, v) ->
          if is_pop then begin
            let expected = match !model with [] -> None | x :: rest -> model := rest; Some x in
            Heap.pop h = expected
          end
          else begin
            Heap.push h v;
            model := List.sort compare (v :: !model);
            true
          end)
        ops)

let stability_of_ties () =
  (* The engine relies on (time, seq) ordering for determinism; check
     that a heap over pairs drains ties in seq order. *)
  let h =
    Heap.create
      ~leq:(fun (t1, s1) (t2, s2) -> t1 < t2 || (t1 = t2 && s1 <= s2))
      ()
  in
  List.iter (Heap.push h) [ (1.0, 3); (1.0, 1); (0.5, 2); (1.0, 2) ];
  chk_bool "tie order" true
    (drain h = [ (0.5, 2); (1.0, 1); (1.0, 2); (1.0, 3) ])

let suites =
  [
    ( "heap",
      [
        case "empty" empty_heap;
        case "push/pop order" push_pop_order;
        case "clear" clear;
        case "to_list" to_list_contents;
        case "tie ordering" stability_of_ties;
        sorted_drain_prop;
        interleaved_prop;
      ] );
  ]
