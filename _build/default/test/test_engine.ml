open Acfc_sim
open Tutil

let clock_starts_at_zero () =
  let e = Engine.create () in
  chk_float "t=0" 0.0 (Engine.now e)

let delay_advances_clock () =
  let finished = ref 0.0 in
  let e = Engine.create () in
  Engine.spawn e (fun () ->
      Engine.delay e 1.5;
      Engine.delay e 2.5;
      finished := Engine.now e);
  Engine.run e;
  chk_float "virtual time" 4.0 !finished

let zero_delay_is_immediate () =
  let e = Engine.create () in
  let steps = ref [] in
  Engine.spawn e (fun () ->
      steps := "a" :: !steps;
      Engine.delay e 0.0;
      steps := "b" :: !steps);
  Engine.run e;
  chk_bool "ran to completion" true (List.rev !steps = [ "a"; "b" ])

let negative_delay_rejected () =
  let e = Engine.create () in
  let raised = ref false in
  Engine.spawn e (fun () ->
      match Engine.delay e (-1.0) with
      | () -> ()
      | exception Invalid_argument _ -> raised := true);
  Engine.run e;
  chk_bool "rejected" true !raised

let event_time_order () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~at:3.0 (fun () -> log := 3 :: !log);
  Engine.schedule e ~at:1.0 (fun () -> log := 1 :: !log);
  Engine.schedule e ~at:2.0 (fun () -> log := 2 :: !log);
  Engine.run e;
  chk_bool "time order" true (List.rev !log = [ 1; 2; 3 ])

let fifo_for_simultaneous_events () =
  let e = Engine.create () in
  let log = ref [] in
  for i = 1 to 10 do
    Engine.schedule e ~at:1.0 (fun () -> log := i :: !log)
  done;
  Engine.run e;
  chk_bool "FIFO ties" true (List.rev !log = [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ])

let past_scheduling_rejected () =
  let e = Engine.create () in
  Engine.schedule e ~at:5.0 (fun () ->
      match Engine.schedule e ~at:1.0 ignore with
      | () -> Alcotest.fail "scheduled in the past"
      | exception Invalid_argument _ -> ());
  Engine.run e

let spawn_from_fiber () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.spawn e (fun () ->
      Engine.delay e 1.0;
      Engine.spawn e (fun () ->
          Engine.delay e 1.0;
          log := ("child", Engine.now e) :: !log);
      Engine.delay e 0.5;
      log := ("parent", Engine.now e) :: !log);
  Engine.run e;
  chk_bool "interleaving" true
    (List.rev !log = [ ("parent", 1.5); ("child", 2.0) ])

let suspend_resume () =
  let e = Engine.create () in
  let resume_cell = ref None in
  let finished = ref false in
  Engine.spawn e (fun () ->
      Engine.suspend e (fun resume -> resume_cell := Some resume);
      finished := true);
  Engine.schedule e ~at:7.0 (fun () ->
      match !resume_cell with Some r -> r () | None -> Alcotest.fail "no resume");
  Engine.run e;
  chk_bool "resumed" true !finished

let double_resume_rejected () =
  let e = Engine.create () in
  let resume_cell = ref None in
  Engine.spawn e (fun () -> Engine.suspend e (fun r -> resume_cell := Some r));
  Engine.schedule e ~at:1.0 (fun () ->
      let r = Option.get !resume_cell in
      r ();
      match r () with
      | () -> Alcotest.fail "double resume allowed"
      | exception Invalid_argument _ -> ());
  Engine.run e

let deadlock_detected () =
  let e = Engine.create () in
  Engine.spawn e ~name:"stuck-fiber" (fun () -> Engine.suspend e (fun _ -> ()));
  (match Engine.run e with
  | () -> Alcotest.fail "no deadlock raised"
  | exception Engine.Deadlock names ->
    chk_bool "names the fiber" true
      (String.length names > 0 && String.sub names 0 5 = "stuck"))

let no_deadlock_when_all_finish () =
  let e = Engine.create () in
  for _ = 1 to 5 do
    Engine.spawn e (fun () -> Engine.delay e 1.0)
  done;
  Engine.run e;
  chk_int "no live fibers" 0 (Engine.fiber_count e)

let run_until_stops () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~at:1.0 (fun () -> log := 1 :: !log);
  Engine.schedule e ~at:5.0 (fun () -> log := 5 :: !log);
  Engine.run_until e 3.0;
  chk_bool "only early event" true (!log = [ 1 ]);
  chk_float "clock at horizon" 3.0 (Engine.now e);
  Engine.run e;
  chk_bool "rest after" true (List.rev !log = [ 1; 5 ])

let exceptions_propagate () =
  let e = Engine.create () in
  Engine.spawn e (fun () ->
      Engine.delay e 1.0;
      failwith "boom");
  Alcotest.check_raises "escapes run" (Failure "boom") (fun () -> Engine.run e)

let events_counted () =
  let e = Engine.create () in
  Engine.spawn e (fun () -> Engine.delay e 1.0);
  Engine.run e;
  (* spawn event + resume event *)
  chk_int "events" 2 (Engine.events_processed e)

let many_fibers () =
  let e = Engine.create () in
  let done_count = ref 0 in
  for i = 1 to 1000 do
    Engine.spawn e (fun () ->
        Engine.delay e (float_of_int (i mod 17) /. 10.0);
        incr done_count)
  done;
  Engine.run e;
  chk_int "all finished" 1000 !done_count

let suites =
  [
    ( "engine",
      [
        case "clock starts at zero" clock_starts_at_zero;
        case "delay advances clock" delay_advances_clock;
        case "zero delay" zero_delay_is_immediate;
        case "negative delay" negative_delay_rejected;
        case "event time order" event_time_order;
        case "FIFO ties" fifo_for_simultaneous_events;
        case "no scheduling in the past" past_scheduling_rejected;
        case "spawn from fiber" spawn_from_fiber;
        case "suspend/resume" suspend_resume;
        case "double resume rejected" double_resume_rejected;
        case "deadlock detection" deadlock_detected;
        case "clean termination" no_deadlock_when_all_finish;
        case "run_until" run_until_stops;
        case "exception propagation" exceptions_propagate;
        case "event counting" events_counted;
        case "1000 fibers" many_fibers;
      ] );
  ]
