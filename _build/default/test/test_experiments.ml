open Acfc_experiments
module Summary = Acfc_stats.Summary
open Tutil

let registry_finds_all () =
  List.iter
    (fun (name, _, disk) ->
      let _, d = Registry.find name in
      chk_int (name ^ " disk") disk d)
    Registry.apps;
  chk_int "eight applications" 8 (List.length Registry.apps);
  Alcotest.check_raises "unknown app" Not_found (fun () ->
      ignore (Registry.find "emacs"))

let combos_resolve () =
  List.iter
    (fun combo -> List.iter (fun name -> ignore (Registry.find name)) combo)
    (Registry.fig5_combos @ Registry.fig6_combos);
  chk_int "nine fig5 combos" 9 (List.length Registry.fig5_combos);
  chk_int "five fig6 combos" 5 (List.length Registry.fig6_combos);
  chk_bool "combo naming" true (Registry.combo_name [ "a"; "b" ] = "a+b")

let paper_data_lookup () =
  chk_bool "din elapsed at 6.4" true
    (Paper_data.lookup_elapsed "din" ~mb:6.4 = Some (117., 106.));
  chk_bool "sort ios at 16" true
    (Paper_data.lookup_ios "sort" ~mb:16.0 = Some (14520., 9460.));
  chk_bool "unknown app" true (Paper_data.lookup_ios "emacs" ~mb:6.4 = None);
  chk_bool "unknown size" true (Paper_data.lookup_ios "din" ~mb:7.0 = None);
  chk_int "four sizes" 4 (List.length Paper_data.cache_sizes_mb);
  List.iter
    (fun (name, orig, sp) ->
      chk_int (name ^ " has 4 columns") 4 (Array.length orig);
      chk_int (name ^ " has 4 sp columns") 4 (Array.length sp))
    Paper_data.table6

let measure_helpers () =
  Alcotest.check_raises "no runs" (Invalid_argument "Measure.repeat: runs must be positive")
    (fun () ->
      ignore (Measure.repeat ~runs:0 (fun ~seed:_ -> assert false)));
  chk_bool "formatting" true
    (Measure.f1 1.25 = "1.2" && Measure.f2 0.333 = "0.33" && Measure.i0 9.6 = "10")

let single_din_improves () =
  let rows = Single.run ~runs:1 ~sizes:[ 6.4 ] ~apps:[ "din" ] () in
  match rows with
  | [ row ] ->
    let _, ios_ratio = Measure.mean_ratio row.Single.controlled row.Single.original in
    chk_bool "large I/O reduction" true (ios_ratio < 0.4);
    chk_bool "elapsed not worse" true
      (Summary.mean row.Single.controlled.Measure.elapsed
      <= 1.02 *. Summary.mean row.Single.original.Measure.elapsed)
  | _ -> Alcotest.fail "expected one row"

let single_printers_render () =
  let rows = Single.run ~runs:1 ~sizes:[ 6.4 ] ~apps:[ "din"; "cs1" ] () in
  List.iter
    (fun print ->
      let s = Format.asprintf "%a" print rows in
      chk_bool "mentions both apps" true
        (String.length s > 0
        && contains_sub ~sub:"din" s && contains_sub ~sub:"cs1" s))
    [ Single.print_fig4; Single.print_elapsed; Single.print_ios ]

let multi_combo_improves () =
  let rows = Multi.run ~runs:1 ~sizes:[ 16.0 ] ~combos:[ [ "din"; "cs1" ] ] () in
  match rows with
  | [ row ] ->
    let _, ios_ratio = Measure.mean_ratio row.Multi.controlled row.Multi.original in
    chk_bool "combined I/Os not worse" true (ios_ratio <= 1.02);
    chk_bool "renders" true
      (String.length (Format.asprintf "%a" Multi.print rows) > 0)
  | _ -> Alcotest.fail "expected one row"

let alloc_lru_not_better () =
  let rows = Alloc_lru.run ~runs:1 ~sizes:[ 6.4 ] ~combos:[ [ "cs2"; "gli" ] ] () in
  match rows with
  | [ row ] ->
    let _, ios_ratio = Measure.mean_ratio row.Alloc_lru.alloc_lru row.Alloc_lru.lru_sp in
    chk_bool "ALLOC-LRU >= LRU-SP (I/Os)" true (ios_ratio >= 0.98);
    chk_bool "renders" true
      (String.length (Format.asprintf "%a" Alloc_lru.print rows) > 0)
  | _ -> Alcotest.fail "expected one row"

let placeholders_protect () =
  let rows = Placeholders.run ~runs:1 ~ns:[ 500 ] () in
  let find setting =
    List.find (fun r -> r.Placeholders.setting = setting) rows
  in
  let ios r = Summary.mean r.Placeholders.foreground.Measure.ios in
  let oblivious = find Placeholders.Oblivious in
  let unprotected = find Placeholders.Unprotected in
  let protected_ = find Placeholders.Protected in
  chk_bool "unprotected much worse than oblivious" true
    (ios unprotected > 1.2 *. ios oblivious);
  chk_bool "placeholders restore the oblivious level" true
    (ios protected_ < 1.05 *. ios oblivious);
  chk_bool "placeholders were used" true (protected_.Placeholders.placeholders_used > 0.0);
  chk_bool "no placeholders under LRU-S" true
    (unprotected.Placeholders.placeholders_used = 0.0);
  chk_bool "renders" true
    (String.length (Format.asprintf "%a" Placeholders.print rows) > 0)

let foolish_renders () =
  let rows = Foolish.run ~runs:1 ~apps:[ "din" ] () in
  chk_int "two rows" 2 (List.length rows);
  chk_bool "renders" true (String.length (Format.asprintf "%a" Foolish.print rows) > 0)

let smart_oblivious_two_disks () =
  let rows = Smart_oblivious.run ~runs:1 ~apps:[ "din" ] ~two_disks:true () in
  (* On separate disks a smart partner must not hurt Read300. *)
  let elapsed smart =
    let r = List.find (fun r -> r.Smart_oblivious.partner_smart = smart) rows in
    Summary.mean r.Smart_oblivious.read300.Measure.elapsed
  in
  chk_bool "smart partner harmless on its own disk" true
    (elapsed true <= 1.05 *. elapsed false);
  chk_bool "renders" true
    (String.length (Format.asprintf "%a" Smart_oblivious.print rows) > 0)

let ablations_sane () =
  (* Read-ahead: identical I/O counts, faster elapsed. *)
  let rows = Ablations.readahead ~runs:1 ~apps:[ "din" ] () in
  (match rows with
  | [ on; off ] ->
    chk_int "same I/Os" off.Ablations.ra_ios on.Ablations.ra_ios;
    chk_bool "read-ahead faster" true (on.Ablations.ra_elapsed < off.Ablations.ra_elapsed)
  | _ -> Alcotest.fail "expected two rows");
  (* Global order: the smart win is the same under LRU and CLOCK kernels. *)
  let rows = Ablations.global_order ~runs:1 ~apps:[ "din" ] () in
  let ios policy smart =
    (List.find
       (fun r -> r.Ablations.or_policy = policy && r.Ablations.or_smart = smart)
       rows)
      .Ablations.or_ios
  in
  chk_int "oblivious CLOCK == oblivious LRU on cyclic din"
    (ios Acfc_core.Config.Global_lru false)
    (ios Acfc_core.Config.Clock_sp false);
  chk_int "smart CLOCK-SP == smart LRU-SP"
    (ios Acfc_core.Config.Lru_sp true)
    (ios Acfc_core.Config.Clock_sp true);
  (* Revocation: tighter thresholds reduce the fool's own I/Os. *)
  let rows = Ablations.revocation ~runs:1 () in
  (match (List.hd rows).Ablations.threshold with
  | None -> ()
  | Some _ -> Alcotest.fail "first row should be revocation-off");
  let off_fool = (List.hd rows).Ablations.fool_ios in
  let tightest = List.nth rows (List.length rows - 1) in
  chk_bool "revocation defuses the fool" true
    (tightest.Ablations.fool_ios < off_fool)

let criteria_pass () =
  let verdicts = Criteria.criterion3 ~runs:1 ~apps:[ "din" ] () in
  chk_int "two sizes" 2 (List.length verdicts);
  List.iter
    (fun v -> chk_bool (v.Criteria.detail ^ " passes") true v.Criteria.pass)
    verdicts;
  chk_bool "renders" true
    (String.length (Format.asprintf "%a" Criteria.print verdicts) > 0)

let report_artifacts () =
  chk_int "nine artifacts" 9 (List.length Report.artifacts);
  Alcotest.check_raises "unknown artifact"
    (Invalid_argument "Report.run_artifact: unknown artifact fig9") (fun () ->
      Report.run_artifact Report.quick Format.str_formatter "fig9")

let suites =
  [
    ( "experiments",
      [
        case "registry" registry_finds_all;
        case "combos resolve" combos_resolve;
        case "paper data" paper_data_lookup;
        case "measure helpers" measure_helpers;
        case "single: din improves" single_din_improves;
        case "single: printers" single_printers_render;
        case "multi: combined not worse" multi_combo_improves;
        case "fig6: alloc-lru not better" alloc_lru_not_better;
        case "table1: placeholders protect" placeholders_protect;
        case "table2: renders" foolish_renders;
        case "tables 3-4: smart harmless on own disk" smart_oblivious_two_disks;
        case "ablations" ablations_sane;
        case "criteria" criteria_pass;
        case "report artifacts" report_artifacts;
      ] );
  ]
