open Acfc_stats
open Tutil

let summary_basics () =
  let s = Summary.of_list [ 2.0; 4.0; 6.0 ] in
  chk_int "n" 3 (Summary.n s);
  chk_float "mean" 4.0 (Summary.mean s);
  chk_float "variance" 4.0 (Summary.variance s);
  chk_float "stddev" 2.0 (Summary.stddev s);
  chk_float "cv" 0.5 (Summary.cv s);
  chk_float "min" 2.0 (Summary.min s);
  chk_float "max" 6.0 (Summary.max s)

let summary_single_sample () =
  let s = Summary.of_list [ 5.0 ] in
  chk_float "mean" 5.0 (Summary.mean s);
  chk_float "variance" 0.0 (Summary.variance s);
  chk_float "cv" 0.0 (Summary.cv s)

let summary_zero_mean () =
  let s = Summary.of_list [ -1.0; 1.0 ] in
  chk_float "mean" 0.0 (Summary.mean s);
  chk_float "cv guarded" 0.0 (Summary.cv s)

let summary_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Summary.of_list: no samples")
    (fun () -> ignore (Summary.of_list []))

let summary_pp () =
  let tight = Format.asprintf "%a" Summary.pp (Summary.of_list [ 10.0; 10.0 ]) in
  chk_bool "no cv shown when tight" false (String.contains tight '%');
  let loose = Format.asprintf "%a" Summary.pp (Summary.of_list [ 5.0; 15.0 ]) in
  chk_bool "cv shown when loose" true (String.contains loose '%')

let table_rendering () =
  let t = Table.create ~columns:[ ("name", Table.Left); ("value", Table.Right) ] in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_rule t;
  Table.add_row t [ "b"; "22" ];
  let s = Table.to_string t in
  let lines = String.split_on_char '\n' s |> List.filter (fun l -> l <> "") in
  chk_int "5 lines" 5 (List.length lines);
  chk_bool "header first" true (List.nth lines 0 = "name  | value");
  chk_bool "right aligned" true (List.nth lines 2 = "alpha |     1");
  chk_bool "rule" true (List.nth lines 3 = "------+------")

let table_padding_and_validation () =
  let t = Table.create ~columns:[ ("a", Table.Left); ("b", Table.Center) ] in
  (* Short rows are padded... *)
  Table.add_row t [ "x" ];
  (* ...long rows are rejected. *)
  Alcotest.check_raises "too many cells" (Invalid_argument "Table.add_row: too many cells")
    (fun () -> Table.add_row t [ "1"; "2"; "3" ]);
  Alcotest.check_raises "no columns" (Invalid_argument "Table.create: no columns")
    (fun () -> ignore (Table.create ~columns:[]));
  chk_bool "renders" true (String.length (Table.to_string t) > 0)

let center_alignment () =
  let t = Table.create ~columns:[ ("ccccc", Table.Center) ] in
  Table.add_row t [ "x" ];
  let lines = String.split_on_char '\n' (Table.to_string t) in
  chk_bool "centered" true (List.nth lines 2 = "  x  ")

let chart_rendering () =
  let out =
    Format.asprintf "%a" (fun ppf -> Chart.bars ~width:10 ~reference:1.0 ppf)
      [ ("a", 0.5); ("bb", 1.0) ]
  in
  let lines = String.split_on_char '\n' out |> List.filter (fun l -> l <> "") in
  chk_int "two rows" 2 (List.length lines);
  chk_bool "half bar" true (contains_sub ~sub:"#####" (List.nth lines 0));
  chk_bool "reference tick on short bar" true (String.contains (List.nth lines 0) '|');
  chk_bool "full bar has ten hashes" true
    (contains_sub ~sub:"##########" (List.nth lines 1));
  chk_bool "labels padded" true
    (String.length (List.nth lines 0) = String.length (List.nth lines 1))

let chart_max_value_scaling () =
  (* With an explicit scale, a value at half the max fills half the bar. *)
  let out =
    Format.asprintf "%a" (fun ppf -> Chart.bars ~width:10 ~max_value:2.0 ppf)
      [ ("v", 1.0) ]
  in
  chk_bool "scaled to max_value" true (contains_sub ~sub:"#####     " out)

let chart_edge_cases () =
  (* Zero and negative values render as empty bars without crashing. *)
  let out =
    Format.asprintf "%a" (fun ppf -> Chart.bars ~width:5 ppf)
      [ ("z", 0.0); ("n", -3.0) ]
  in
  chk_bool "renders" true (String.length out > 0);
  chk_bool "no hash for zero" false (String.contains out '#');
  Alcotest.check_raises "bad width" (Invalid_argument "Chart.bars: width must be positive")
    (fun () -> Chart.bars ~width:0 Format.str_formatter [])

let suites =
  [
    ( "stats",
      [
        case "summary basics" summary_basics;
        case "single sample" summary_single_sample;
        case "zero mean" summary_zero_mean;
        case "empty rejected" summary_empty;
        case "summary printing" summary_pp;
        case "table rendering" table_rendering;
        case "table validation" table_padding_and_validation;
        case "center alignment" center_alignment;
        case "chart rendering" chart_rendering;
        case "chart max_value" chart_max_value_scaling;
        case "chart edge cases" chart_edge_cases;
      ] );
  ]
