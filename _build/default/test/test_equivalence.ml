(* Cross-validation properties tying the kernel cache to the
   trace-driven policy simulator and to the paper's criteria. *)

open Acfc_core
open Tutil
module Policy_sim = Acfc_replacement.Policy_sim
module Policies = Acfc_replacement.Policies

let p0 = pid 0

(* Random traces over a small block universe so evictions are common. *)
let trace_gen =
  QCheck2.Gen.(
    pair (int_range 1 12)
      (list_size (int_range 1 400) (pair (int_range 0 2) (int_range 0 30))))

let blocks_of refs = List.map (fun (f, i) -> Block.make ~file:f ~index:i) refs

(* The paper's criterion 1, mechanised: with no managers registered,
   LRU-SP must behave exactly like the original global-LRU kernel. *)
let lru_sp_equals_global_lru_when_oblivious =
  qcheck "no managers: LRU-SP == global LRU" ~count:200 trace_gen
    (fun (capacity, refs) ->
      let run alloc_policy =
        let c = Cache.create (config ~alloc_policy capacity) in
        List.map (fun b -> Cache.read c ~pid:p0 b) (blocks_of refs)
      in
      run Config.Lru_sp = run Config.Global_lru)

(* The Sec. 7 virtual-memory variant: with no managers, the Clock_sp
   kernel must agree, miss for miss, with the standalone second-chance
   CLOCK simulator. *)
let clock_sp_matches_policy_sim =
  qcheck "oblivious Clock-SP == trace-driven CLOCK" ~count:200 trace_gen
    (fun (capacity, refs) ->
      let trace = Array.of_list (blocks_of refs) in
      let c = Cache.create (config ~alloc_policy:Config.Clock_sp capacity) in
      Array.iter (fun b -> ignore (Cache.read c ~pid:p0 b)) trace;
      let reference = Policy_sim.run (module Policies.Clock) ~capacity trace in
      Cache.misses c = reference.Policy_sim.misses)

(* The kernel's global-LRU data path must agree, miss for miss, with the
   standalone LRU policy simulator. *)
let global_lru_matches_policy_sim =
  qcheck "global LRU == trace-driven LRU" ~count:200 trace_gen
    (fun (capacity, refs) ->
      let trace = Array.of_list (blocks_of refs) in
      let c = Cache.create (config ~alloc_policy:Config.Global_lru capacity) in
      Array.iter (fun b -> ignore (Cache.read c ~pid:p0 b)) trace;
      let reference = Policy_sim.run (module Policies.Lru) ~capacity trace in
      Cache.misses c = reference.Policy_sim.misses
      && Cache.hits c = reference.Policy_sim.hits)

(* A single manager running MRU over one level sees exactly the MRU
   policy, whatever candidates the kernel proposes: swapping makes the
   manager's will prevail without distortion. *)
let single_mru_manager_matches_policy_sim =
  qcheck "one MRU manager == trace-driven MRU" ~count:200 trace_gen
    (fun (capacity, refs) ->
      let trace = Array.of_list (blocks_of refs) in
      let check alloc_policy =
        let c = Cache.create (config ~alloc_policy capacity) in
        ok_exn (Cache.register_manager c p0);
        ok_exn (Cache.set_policy c p0 ~prio:0 Policy.Mru);
        Array.iter (fun b -> ignore (Cache.read c ~pid:p0 b)) trace;
        let reference = Policy_sim.run (module Policies.Mru) ~capacity trace in
        Cache.misses c = reference.Policy_sim.misses
      in
      (* The decision is the manager's under all two-level variants,
         whatever global order proposes the candidate. *)
      check Config.Lru_sp && check Config.Lru_s && check Config.Alloc_lru
      && check Config.Clock_sp)

(* A manager that runs plain LRU always agrees with the kernel: its
   preferred victim is the global LRU block, so no overrule, no swap, no
   placeholder — and behaviour identical to the original kernel
   (criterion 3's "never worse", at its boundary). *)
let lru_manager_is_transparent =
  qcheck "an LRU manager never overrules" ~count:150 trace_gen
    (fun (capacity, refs) ->
      let trace = blocks_of refs in
      let c = Cache.create (config ~alloc_policy:Config.Lru_sp capacity) in
      ok_exn (Cache.register_manager c p0);
      List.iter (fun b -> ignore (Cache.read c ~pid:p0 b)) trace;
      let baseline = Cache.create (config ~alloc_policy:Config.Global_lru capacity) in
      List.iter (fun b -> ignore (Cache.read baseline ~pid:p0 b)) trace;
      Cache.overrule_count c = 0
      && Cache.misses c = Cache.misses baseline
      && Cache.lru_keys c = Cache.lru_keys baseline)

(* With a single manager, placeholders only redirect the kernel's
   candidate; the manager's decision — hence the miss sequence — is the
   same with and without them (LRU-S vs LRU-SP). Multi-process runs
   differ: that is Table 1. *)
let placeholders_neutral_for_single_manager =
  qcheck "LRU-S == LRU-SP for a single manager" ~count:150 trace_gen
    (fun (capacity, refs) ->
      let run alloc_policy =
        let c = Cache.create (config ~alloc_policy capacity) in
        ok_exn (Cache.register_manager c p0);
        ok_exn (Cache.set_policy c p0 ~prio:0 Policy.Mru);
        List.iter (fun b -> ignore (Cache.read c ~pid:p0 b)) (blocks_of refs);
        Cache.misses c
      in
      run Config.Lru_s = run Config.Lru_sp)

(* Invariants hold under arbitrary interleavings of every operation. *)
type op =
  | Read of int * Block.t
  | Write of int * Block.t
  | Register of int
  | Unregister of int
  | Set_priority of int * int * int
  | Set_policy of int * int * bool
  | Set_temppri of int * int * int * int
  | Sync
  | Invalidate of int

let op_gen =
  let open QCheck2.Gen in
  let block = map2 (fun f i -> Block.make ~file:f ~index:i) (int_range 0 2) (int_range 0 25) in
  let who = int_range 0 2 in
  oneof
    [
      map2 (fun p b -> Read (p, b)) who block;
      map2 (fun p b -> Write (p, b)) who block;
      map (fun p -> Register p) who;
      map (fun p -> Unregister p) who;
      map3 (fun p f pr -> Set_priority (p, f, pr)) who (int_range 0 2) (int_range (-1) 2);
      map3 (fun p pr m -> Set_policy (p, pr, m)) who (int_range (-1) 2) bool;
      map3 (fun p f first -> Set_temppri (p, f, first, first + 3)) who (int_range 0 2)
        (int_range 0 20);
      return Sync;
      map (fun f -> Invalidate f) (int_range 0 2);
    ]

let invariants_under_chaos =
  qcheck "invariants hold under random op sequences" ~count:150
    QCheck2.Gen.(
      triple (int_range 1 10)
        (oneofl
           [ Config.Global_lru; Config.Alloc_lru; Config.Lru_s; Config.Lru_sp;
             Config.Clock_sp ])
        (list_size (int_range 1 250) op_gen))
    (fun (capacity, alloc_policy, ops) ->
      let c = Cache.create (config ~alloc_policy capacity) in
      List.iter
        (fun op ->
          (match op with
          | Read (p, b) -> ignore (Cache.read c ~pid:(pid p) b)
          | Write (p, b) -> ignore (Cache.write c ~pid:(pid p) b ~fetch:false)
          | Register p -> ignore (Cache.register_manager c (pid p))
          | Unregister p -> Cache.unregister_manager c (pid p)
          | Set_priority (p, f, pr) -> ignore (Cache.set_priority c (pid p) ~file:f ~prio:pr)
          | Set_policy (p, pr, mru) ->
            let policy = if mru then Policy.Mru else Policy.Lru in
            ignore (Cache.set_policy c (pid p) ~prio:pr policy)
          | Set_temppri (p, f, first, last) ->
            ignore (Cache.set_temppri c (pid p) ~file:f ~first ~last ~prio:(-1))
          | Sync -> ignore (Cache.sync c ())
          | Invalidate f -> ignore (Cache.invalidate_file c ~file:f));
          if Cache.length c > Cache.capacity c then failwith "over capacity";
          if
            Cache.placeholder_count c
            > (Cache.config c).Acfc_core.Config.max_placeholders
          then failwith "placeholders over limit")
        ops;
      Cache.check_invariants c;
      true)

(* Determinism: the same operation sequence gives identical statistics. *)
let deterministic =
  qcheck "cache is deterministic" ~count:50 trace_gen (fun (capacity, refs) ->
      let run () =
        let c = Cache.create (config capacity) in
        ok_exn (Cache.register_manager c p0);
        ok_exn (Cache.set_policy c p0 ~prio:0 Policy.Mru);
        List.iter (fun b -> ignore (Cache.read c ~pid:p0 b)) (blocks_of refs);
        (Cache.hits c, Cache.misses c, Cache.lru_keys c)
      in
      run () = run ())

let suites =
  [
    ( "cache equivalences",
      [
        lru_sp_equals_global_lru_when_oblivious;
        global_lru_matches_policy_sim;
        clock_sp_matches_policy_sim;
        single_mru_manager_matches_policy_sim;
        lru_manager_is_transparent;
        placeholders_neutral_for_single_manager;
        invariants_under_chaos;
        deterministic;
      ] );
  ]
