open Acfc_sim
open Tutil

let determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    chk_bool "same stream" true (Rng.bits64 a = Rng.bits64 b)
  done

let different_seeds () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 a = Rng.bits64 b then incr same
  done;
  chk_int "streams differ" 0 !same

let copy_independent () =
  let a = Rng.create 7 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  chk_bool "copy continues identically" true (Rng.bits64 a = Rng.bits64 b);
  (* Advancing one does not advance the other. *)
  ignore (Rng.bits64 a);
  ignore (Rng.bits64 a);
  ignore (Rng.bits64 b);
  chk_bool "now diverged" true (Rng.bits64 a <> Rng.bits64 b)

let split_diverges () =
  let a = Rng.create 5 in
  let b = Rng.split a in
  let clashes = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 a = Rng.bits64 b then incr clashes
  done;
  chk_int "split stream is distinct" 0 !clashes

let int_bounds =
  qcheck "int stays in [0,n)" ~count:500
    QCheck2.Gen.(pair (int_range 1 10000) int)
    (fun (n, seed) ->
      let rng = Rng.create seed in
      let v = Rng.int rng n in
      v >= 0 && v < n)

let int_in_bounds =
  qcheck "int_in stays in [lo,hi]" ~count:500
    QCheck2.Gen.(triple (int_range (-1000) 1000) (int_range 0 1000) int)
    (fun (lo, span, seed) ->
      let hi = lo + span in
      let rng = Rng.create seed in
      let v = Rng.int_in rng lo hi in
      v >= lo && v <= hi)

let float_bounds =
  qcheck "float stays in [0,x)" ~count:500 QCheck2.Gen.int (fun seed ->
      let rng = Rng.create seed in
      let v = Rng.float rng 3.5 in
      v >= 0.0 && v < 3.5)

let invalid_args () =
  let rng = Rng.create 0 in
  Alcotest.check_raises "int 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0));
  Alcotest.check_raises "empty range" (Invalid_argument "Rng.int_in: empty range")
    (fun () -> ignore (Rng.int_in rng 5 4));
  Alcotest.check_raises "empty pick" (Invalid_argument "Rng.pick: empty array")
    (fun () -> ignore (Rng.pick rng [||]))

let shuffle_is_permutation =
  qcheck "shuffle permutes" ~count:200
    QCheck2.Gen.(pair (list_size (int_range 0 50) int) int)
    (fun (l, seed) ->
      let rng = Rng.create seed in
      let a = Array.of_list l in
      Rng.shuffle rng a;
      List.sort compare (Array.to_list a) = List.sort compare l)

let exponential_mean () =
  let rng = Rng.create 11 in
  let n = 20000 in
  let total = ref 0.0 in
  for _ = 1 to n do
    let v = Rng.exponential rng ~mean:4.0 in
    chk_bool "non-negative" true (v >= 0.0);
    total := !total +. v
  done;
  let mean = !total /. float_of_int n in
  chk_bool "mean within 5%" true (Float.abs (mean -. 4.0) < 0.2)

let uniformity () =
  (* Chi-squared-ish sanity: each of 10 buckets gets 10% +- 2%. *)
  let rng = Rng.create 3 in
  let buckets = Array.make 10 0 in
  let n = 50000 in
  for _ = 1 to n do
    let i = Rng.int rng 10 in
    buckets.(i) <- buckets.(i) + 1
  done;
  Array.iter
    (fun c ->
      let frac = float_of_int c /. float_of_int n in
      chk_bool "bucket near 0.1" true (Float.abs (frac -. 0.1) < 0.02))
    buckets

let suites =
  [
    ( "rng",
      [
        case "determinism" determinism;
        case "different seeds" different_seeds;
        case "copy" copy_independent;
        case "split" split_diverges;
        case "invalid arguments" invalid_args;
        case "exponential mean" exponential_mean;
        case "uniformity" uniformity;
        int_bounds;
        int_in_bounds;
        float_bounds;
        shuffle_is_permutation;
      ] );
  ]
