open Acfc_core
open Tutil

let block_basics () =
  let b = Block.make ~file:3 ~index:7 in
  chk_int "file" 3 (Block.file b);
  chk_int "index" 7 (Block.index b);
  chk_bool "equal" true (Block.equal b (blk ~file:3 7));
  chk_bool "not equal" false (Block.equal b (blk ~file:3 8));
  chk_bool "compare file first" true (Block.compare (blk ~file:1 9) (blk ~file:2 0) < 0);
  chk_bool "compare index" true (Block.compare (blk 1) (blk 2) < 0);
  chk_int "compare equal" 0 (Block.compare b b)

let block_validation () =
  Alcotest.check_raises "negative index"
    (Invalid_argument "Block.make: negative block index") (fun () ->
      ignore (Block.make ~file:0 ~index:(-1)));
  Alcotest.check_raises "negative file"
    (Invalid_argument "Block.make: negative file id") (fun () ->
      ignore (Block.make ~file:(-1) ~index:0))

let block_hash_consistent =
  qcheck "equal blocks hash equally" ~count:200
    QCheck2.Gen.(pair (int_range 0 1000) (int_range 0 100000))
    (fun (f, i) ->
      Block.hash (Block.make ~file:f ~index:i) = Block.hash (Block.make ~file:f ~index:i))

let pid_basics () =
  let p = Pid.make 4 in
  chk_int "to_int" 4 (Pid.to_int p);
  chk_bool "equal" true (Pid.equal p (pid 4));
  chk_bool "compare" true (Pid.compare (pid 1) (pid 2) < 0);
  Alcotest.check_raises "negative pid" (Invalid_argument "Pid.make: negative pid")
    (fun () -> ignore (Pid.make (-1)))

let policy_strings () =
  chk_bool "default is LRU" true (Policy.equal Policy.default Policy.Lru);
  chk_bool "LRU round-trip" true (Policy.of_string "lru" = Some Policy.Lru);
  chk_bool "MRU round-trip" true (Policy.of_string "MRU" = Some Policy.Mru);
  chk_bool "unknown" true (Policy.of_string "fifo" = None);
  chk_bool "to_string" true (Policy.to_string Policy.Mru = "MRU");
  chk_bool "distinct" false (Policy.equal Policy.Lru Policy.Mru)

let config_validation () =
  Alcotest.check_raises "zero capacity"
    (Invalid_argument "Config.make: capacity must be positive") (fun () ->
      ignore (Config.make ~capacity_blocks:0 ()));
  Alcotest.check_raises "bad revocation"
    (Invalid_argument "Config.make: bad revocation parameters") (fun () ->
      ignore
        (Config.make ~capacity_blocks:1
           ~revocation:{ Config.min_decisions = 0; mistake_ratio = 0.5 }
           ()));
  let c = Config.make ~capacity_blocks:10 () in
  chk_int "placeholders default to capacity" 10 c.Config.max_placeholders

let policy_names () =
  List.iter
    (fun p ->
      let s = Config.alloc_policy_to_string p in
      chk_bool ("round-trip " ^ s) true (Config.alloc_policy_of_string s = Some p))
    [ Config.Global_lru; Config.Alloc_lru; Config.Lru_s; Config.Lru_sp; Config.Clock_sp ];
  chk_bool "original alias" true
    (Config.alloc_policy_of_string "original" = Some Config.Global_lru);
  chk_bool "unknown" true (Config.alloc_policy_of_string "nope" = None)

let error_strings () =
  List.iter
    (fun e -> chk_bool "non-empty message" true (String.length (Error.to_string e) > 0))
    [
      Error.Too_many_managers;
      Error.Too_many_levels;
      Error.Too_many_file_records;
      Error.Not_registered;
      Error.Already_registered;
      Error.Revoked;
      Error.Invalid_range;
    ]

let suites =
  [
    ( "block/pid/policy/config",
      [
        case "block basics" block_basics;
        case "block validation" block_validation;
        case "pid basics" pid_basics;
        case "policy strings" policy_strings;
        case "config validation" config_validation;
        case "alloc policy names" policy_names;
        case "error strings" error_strings;
        block_hash_consistent;
      ] );
  ]
