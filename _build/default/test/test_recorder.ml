open Acfc_core
open Acfc_replacement
open Tutil

let p0 = pid 0

let p1 = pid 1

let record_run () =
  let recorder = Recorder.create () in
  let c = Cache.create (config 4) in
  Cache.set_tracer c (Some (Recorder.tracer recorder));
  ignore (Cache.read c ~pid:p0 (blk 0));
  ignore (Cache.read c ~pid:p0 (blk 0));
  ignore (Cache.read c ~pid:p1 (blk 1));
  recorder

let records_hits_and_misses () =
  let r = record_run () in
  chk_int "three references" 3 (Recorder.length r);
  let e = Recorder.entries r in
  chk_bool "miss then hit then miss" true
    ((not e.(0).Recorder.hit) && e.(1).Recorder.hit && not e.(2).Recorder.hit);
  chk_bool "pids recorded" true
    (Pid.equal e.(0).Recorder.pid p0 && Pid.equal e.(2).Recorder.pid p1)

let to_trace_filters () =
  let r = record_run () in
  chk_int "all refs" 3 (Array.length (Recorder.to_trace r));
  chk_int "p1 only" 1 (Array.length (Recorder.to_trace ~pid:p1 r));
  chk_bool "trace content" true
    (Recorder.to_trace ~pid:p1 r = [| blk 1 |])

let save_load_roundtrip () =
  let r = record_run () in
  let path = Filename.temp_file "acfc" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      Recorder.save r oc;
      close_out oc;
      let ic = open_in path in
      let r' = Fun.protect ~finally:(fun () -> close_in ic) (fun () -> Recorder.load ic) in
      chk_int "same length" (Recorder.length r) (Recorder.length r');
      chk_bool "same entries" true (Recorder.entries r = Recorder.entries r'))

let load_rejects_garbage () =
  let path = Filename.temp_file "acfc" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "not a trace\n";
      close_out oc;
      let ic = open_in path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          match Recorder.load ic with
          | _ -> Alcotest.fail "garbage accepted"
          | exception Failure _ -> ()))

(* Record a live din-like cyclic run under LRU-SP with the MRU strategy,
   then replay the demand trace: the live policy must equal OPT — the
   companion paper's principle that application policies approximate the
   optimal replacement, verified mechanically. *)
let live_mru_equals_opt_on_own_trace () =
  let recorder = Recorder.create () in
  let c = Cache.create (config 50) in
  Cache.set_tracer c (Some (Recorder.tracer recorder));
  ok_exn (Cache.register_manager c p0);
  ok_exn (Cache.set_policy c p0 ~prio:0 Policy.Mru);
  for _pass = 1 to 5 do
    for i = 0 to 69 do
      ignore (Cache.read c ~pid:p0 (blk i))
    done
  done;
  let live_misses = Cache.misses c in
  let trace = Recorder.to_trace recorder in
  let opt = Policy_sim.run (module Policies.Opt) ~capacity:50 trace in
  chk_int "live MRU = OPT" opt.Policy_sim.misses live_misses

let prefetch_excluded_by_default () =
  (* Through the file system, read-ahead misses carry the prefetch flag
     and stay out of the demand trace. *)
  Tutil.in_sim (fun engine ->
      let disk = Acfc_disk.Disk.create engine Acfc_disk.Params.rz56 in
      let fs = Acfc_fs.Fs.create engine ~config:(config 64) () in
      let recorder = Recorder.create () in
      Cache.set_tracer (Acfc_fs.Fs.cache fs) (Some (Recorder.tracer recorder));
      let file =
        Acfc_fs.Fs.create_file fs ~name:"f" ~disk ~size_bytes:(16 * 8192) ()
      in
      Acfc_fs.Fs.read fs ~pid:p0 file ~off:0 ~len:(16 * 8192);
      let demand = Recorder.to_trace recorder in
      let all = Recorder.to_trace ~include_prefetch:true recorder in
      chk_int "demand = app references" 16 (Array.length demand);
      chk_bool "prefetches recorded but flagged" true (Array.length all > 16))

let suites =
  [
    ( "trace recorder",
      [
        case "records hits and misses" records_hits_and_misses;
        case "to_trace filters by pid" to_trace_filters;
        case "save/load round-trip" save_load_roundtrip;
        case "rejects garbage" load_rejects_garbage;
        case "live MRU equals OPT on its own trace" live_mru_equals_opt_on_own_trace;
        case "prefetch excluded by default" prefetch_excluded_by_default;
      ] );
  ]
