test/test_integration.ml: Acfc_core Acfc_disk Acfc_fs Acfc_replacement Acfc_sim Acfc_workload Array Buffer Cscope Dinero Float Format List Option Readn Runner Tutil
