test/test_cache.ml: Acfc_core Backend Block Cache Config Error Event Hashtbl List Option Policy Tutil
