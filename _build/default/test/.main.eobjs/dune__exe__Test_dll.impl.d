test/test_dll.ml: Acfc_core Alcotest Array Dll Hashtbl List QCheck2 Tutil
