test/tutil.ml: Acfc_core Acfc_sim Alcotest Engine QCheck2 QCheck_alcotest String
