test/test_block.ml: Acfc_core Alcotest Block Config Error List Pid Policy QCheck2 String Tutil
