test/test_replacement.ml: Acfc_core Acfc_replacement Acfc_sim Alcotest Array Block List Option Policies Policy_sim QCheck2 Set Stdlib Trace Tutil
