test/test_rng.ml: Acfc_sim Alcotest Array Float List QCheck2 Rng Tutil
