test/test_engine.ml: Acfc_sim Alcotest Engine List Option String Tutil
