test/test_recorder.ml: Acfc_core Acfc_disk Acfc_fs Acfc_replacement Alcotest Array Cache Filename Fun Pid Policies Policy Policy_sim Recorder Sys Tutil
