test/test_heap.ml: Acfc_sim Alcotest Heap List QCheck2 Tutil
