test/test_equivalence.ml: Acfc_core Acfc_replacement Array Block Cache Config List Policy QCheck2 Tutil
