test/test_advice.ml: Acfc_core Acfc_disk Acfc_fs Alcotest Format List String Tutil
