test/test_workloads.ml: Acfc_core Acfc_workload Alcotest App Cscope Dinero Float Glimpse Ld List Postgres Printf Readn Runner Sort_app String Tutil
