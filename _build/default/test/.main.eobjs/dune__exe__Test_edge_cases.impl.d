test/test_edge_cases.ml: Acfc_core Acfc_sim Backend Block Cache Engine List Option Policy QCheck2 Tutil
