test/test_fs.ml: Acfc_core Acfc_disk Acfc_fs Acfc_sim Alcotest Array Bytes Char Engine List Option QCheck2 Rng Stdlib Tutil
