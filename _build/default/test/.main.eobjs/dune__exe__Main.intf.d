test/main.mli:
