test/test_resource.ml: Acfc_sim Alcotest Array Engine List Resource Tutil
