test/test_ivar.ml: Acfc_sim Alcotest Engine Ivar Tutil
