test/test_stats.ml: Acfc_stats Alcotest Chart Format List String Summary Table Tutil
