test/test_disk.ml: Acfc_disk Acfc_sim Alcotest Array Bus Disk Engine Float List Params Rng Tutil
