open Acfc_core
open Tutil

let basic_order () =
  let l = Dll.create () in
  let _a = Dll.push_back l "a" in
  let _b = Dll.push_back l "b" in
  let _c = Dll.push_front l "c" in
  chk_int "length" 3 (Dll.length l);
  chk_bool "front to back" true (Dll.to_list l = [ "c"; "a"; "b" ])

let remove_middle () =
  let l = Dll.create () in
  let _a = Dll.push_back l 1 in
  let b = Dll.push_back l 2 in
  let _c = Dll.push_back l 3 in
  Dll.remove l b;
  chk_bool "removed" true (Dll.to_list l = [ 1; 3 ]);
  chk_bool "node detached" false (Dll.contains l b);
  Alcotest.check_raises "detached reuse" (Invalid_argument "Dll: node is detached")
    (fun () -> Dll.remove l b)

let remove_ends () =
  let l = Dll.create () in
  let a = Dll.push_back l 1 in
  let b = Dll.push_back l 2 in
  Dll.remove l a;
  chk_bool "front gone" true (Dll.to_list l = [ 2 ]);
  Dll.remove l b;
  chk_bool "empty" true (Dll.is_empty l);
  chk_bool "front none" true (Dll.front l = None);
  chk_bool "back none" true (Dll.back l = None)

let wrong_list () =
  let l1 = Dll.create () and l2 = Dll.create () in
  let a = Dll.push_back l1 1 in
  ignore (Dll.push_back l2 2);
  Alcotest.check_raises "foreign node"
    (Invalid_argument "Dll: node belongs to another list") (fun () -> Dll.remove l2 a)

let move_front_back () =
  let l = Dll.create () in
  let a = Dll.push_back l 1 in
  let _b = Dll.push_back l 2 in
  let c = Dll.push_back l 3 in
  Dll.move_front l c;
  chk_bool "moved front" true (Dll.to_list l = [ 3; 1; 2 ]);
  Dll.move_front l c;
  chk_bool "idempotent at front" true (Dll.to_list l = [ 3; 1; 2 ]);
  Dll.move_back l a;
  chk_bool "moved back" true (Dll.to_list l = [ 3; 2; 1 ]);
  Dll.move_back l a;
  chk_bool "idempotent at back" true (Dll.to_list l = [ 3; 2; 1 ]);
  chk_int "length stable" 3 (Dll.length l)

let move_singleton () =
  let l = Dll.create () in
  let a = Dll.push_back l 1 in
  Dll.move_front l a;
  Dll.move_back l a;
  chk_bool "singleton intact" true (Dll.to_list l = [ 1 ])

let walk () =
  let l = Dll.create () in
  let _ = Dll.push_back l 1 in
  let _ = Dll.push_back l 2 in
  let _ = Dll.push_back l 3 in
  let from_back =
    let rec go acc = function
      | None -> acc
      | Some n -> go (Dll.value n :: acc) (Dll.next_toward_front n)
    in
    go [] (Dll.back l)
  in
  chk_bool "walk from back" true (from_back = [ 1; 2; 3 ]);
  let from_front =
    let rec go acc = function
      | None -> List.rev acc
      | Some n -> go (Dll.value n :: acc) (Dll.next_toward_back n)
    in
    go [] (Dll.front l)
  in
  chk_bool "walk from front" true (from_front = [ 1; 2; 3 ])

let swap_values_fixes_backrefs () =
  let l = Dll.create () in
  let nodes = Hashtbl.create 8 in
  let a = Dll.push_back l "a" in
  let b = Dll.push_back l "b" in
  let c = Dll.push_back l "c" in
  Hashtbl.replace nodes "a" a;
  Hashtbl.replace nodes "b" b;
  Hashtbl.replace nodes "c" c;
  Dll.swap_values l a c ~on_move:(fun v n -> Hashtbl.replace nodes v n);
  chk_bool "order swapped" true (Dll.to_list l = [ "c"; "b"; "a" ]);
  chk_bool "backref a" true (Dll.value (Hashtbl.find nodes "a") = "a");
  chk_bool "backref c" true (Dll.value (Hashtbl.find nodes "c") = "c");
  (* Swap with itself is a no-op. *)
  Dll.swap_values l b b ~on_move:(fun _ _ -> Alcotest.fail "no move expected");
  chk_bool "self swap no-op" true (Dll.to_list l = [ "c"; "b"; "a" ])

let swap_adjacent () =
  let l = Dll.create () in
  let a = Dll.push_back l 1 in
  let b = Dll.push_back l 2 in
  Dll.swap_values l a b ~on_move:(fun _ _ -> ());
  chk_bool "adjacent swap" true (Dll.to_list l = [ 2; 1 ])

(* Model-based property: a random op sequence applied to both the Dll
   and a reference list model must agree. Ops reference nodes by the
   index of their insertion. *)
type op = Push_front of int | Push_back of int | Remove of int | Move_front of int | Move_back of int

let op_gen =
  QCheck2.Gen.(
    oneof
      [
        map (fun v -> Push_front v) int;
        map (fun v -> Push_back v) int;
        map (fun i -> Remove i) (int_range 0 1000);
        map (fun i -> Move_front i) (int_range 0 1000);
        map (fun i -> Move_back i) (int_range 0 1000);
      ])

let model_prop =
  qcheck "model-based ops agree with list model" ~count:300
    QCheck2.Gen.(list_size (int_range 0 120) op_gen)
    (fun ops ->
      let l = Dll.create () in
      let nodes = ref [||] in
      (* model: values front-to-back; nodes.(i) = Some node while live *)
      let model = ref [] in
      let live = Hashtbl.create 16 in
      let next = ref 0 in
      let add_node node v ~front =
        let id = !next in
        incr next;
        nodes := Array.append !nodes [| node |];
        Hashtbl.replace live id ();
        if front then model := (id, v) :: !model else model := !model @ [ (id, v) ]
      in
      let pick i =
        let ids = Hashtbl.fold (fun id () acc -> id :: acc) live [] in
        match List.sort compare ids with
        | [] -> None
        | ids -> Some (List.nth ids (i mod List.length ids))
      in
      List.iter
        (fun op ->
          match op with
          | Push_front v -> add_node (Dll.push_front l v) v ~front:true
          | Push_back v -> add_node (Dll.push_back l v) v ~front:false
          | Remove i ->
            (match pick i with
            | None -> ()
            | Some id ->
              Dll.remove l !nodes.(id);
              Hashtbl.remove live id;
              model := List.filter (fun (j, _) -> j <> id) !model)
          | Move_front i ->
            (match pick i with
            | None -> ()
            | Some id ->
              Dll.move_front l !nodes.(id);
              let entry = List.find (fun (j, _) -> j = id) !model in
              model := entry :: List.filter (fun (j, _) -> j <> id) !model)
          | Move_back i ->
            (match pick i with
            | None -> ()
            | Some id ->
              Dll.move_back l !nodes.(id);
              let entry = List.find (fun (j, _) -> j = id) !model in
              model := List.filter (fun (j, _) -> j <> id) !model @ [ entry ]))
        ops;
      Dll.to_list l = List.map snd !model && Dll.length l = List.length !model)

let suites =
  [
    ( "dll",
      [
        case "basic order" basic_order;
        case "remove middle" remove_middle;
        case "remove ends" remove_ends;
        case "wrong list" wrong_list;
        case "move front/back" move_front_back;
        case "move singleton" move_singleton;
        case "walking" walk;
        case "swap_values backrefs" swap_values_fixes_backrefs;
        case "swap adjacent" swap_adjacent;
        model_prop;
      ] );
  ]
