open Acfc_core
open Tutil

(* A backend that records its calls, for observing device traffic. *)
let recording_backend () =
  let log = ref [] in
  let push tag key = log := (tag, key) :: !log in
  ( {
      Backend.read_block = (fun k -> push `Read k);
      write_block = (fun k -> push `Write k);
      evicted = (fun k -> push `Evict k);
    },
    fun () -> List.rev !log )

let reads log = List.filter_map (function `Read, k -> Some k | _ -> None) log

let writes log = List.filter_map (function `Write, k -> Some k | _ -> None) log

let p0 = pid 0

let p1 = pid 1

(* {2 Data path} *)

let hit_miss_accounting () =
  let c = Cache.create (config 4) in
  chk_bool "first access misses" true (Cache.read c ~pid:p0 (blk 0) = `Miss);
  chk_bool "second access hits" true (Cache.read c ~pid:p0 (blk 0) = `Hit);
  chk_int "hits" 1 (Cache.hits c);
  chk_int "misses" 1 (Cache.misses c);
  chk_int "pid hits" 1 (Cache.pid_hits c p0);
  chk_int "pid misses" 1 (Cache.pid_misses c p0);
  chk_int "other pid untouched" 0 (Cache.pid_hits c p1);
  chk_bool "contains" true (Cache.contains c (blk 0));
  chk_int "length" 1 (Cache.length c);
  chk_int "capacity" 4 (Cache.capacity c);
  Cache.reset_stats c;
  chk_int "reset hits" 0 (Cache.hits c);
  chk_bool "contents survive reset" true (Cache.contains c (blk 0))

let lru_eviction_order () =
  let c = Cache.create (config 3) in
  List.iter (fun i -> ignore (Cache.read c ~pid:p0 (blk i))) [ 0; 1; 2 ];
  (* Touch 0 so 1 becomes LRU. *)
  ignore (Cache.read c ~pid:p0 (blk 0));
  ignore (Cache.read c ~pid:p0 (blk 3));
  chk_bool "LRU victim evicted" false (Cache.contains c (blk 1));
  chk_bool "recently used kept" true (Cache.contains c (blk 0));
  chk_bool "lru order" true (Cache.lru_keys c = [ blk 3; blk 0; blk 2 ])

let capacity_never_exceeded () =
  let c = Cache.create (config 5) in
  for i = 0 to 99 do
    ignore (Cache.read c ~pid:p0 (blk i));
    chk_bool "length <= capacity" true (Cache.length c <= 5)
  done;
  Cache.check_invariants c

let dirty_writeback () =
  let backend, log = recording_backend () in
  let c = Cache.create ~backend (config 2) in
  ignore (Cache.write c ~pid:p0 (blk 0) ~fetch:false);
  chk_bool "dirty" true (Cache.is_dirty c (blk 0));
  ignore (Cache.write c ~pid:p0 (blk 1) ~fetch:false);
  ignore (Cache.read c ~pid:p0 (blk 2));
  (* Block 0 was LRU and dirty: must be written before eviction. *)
  chk_bool "victim written" true (writes (log ()) = [ blk 0 ]);
  chk_int "writeback counted" 1 (Cache.writebacks c);
  chk_bool "gone" false (Cache.contains c (blk 0))

let write_fetch_semantics () =
  let backend, log = recording_backend () in
  let c = Cache.create ~backend (config 4) in
  ignore (Cache.write c ~pid:p0 (blk 0) ~fetch:false);
  chk_bool "no fetch for full overwrite" true (reads (log ()) = []);
  ignore (Cache.write c ~pid:p0 (blk 1) ~fetch:true);
  chk_bool "read-modify-write fetches" true (reads (log ()) = [ blk 1 ]);
  (* Write hit never fetches. *)
  ignore (Cache.write c ~pid:p0 (blk 1) ~fetch:true);
  chk_bool "hit does not fetch" true (reads (log ()) = [ blk 1 ])

let sync_flushes_in_order () =
  let backend, log = recording_backend () in
  let c = Cache.create ~backend (config 8) in
  List.iter (fun i -> ignore (Cache.write c ~pid:p0 (blk i) ~fetch:false)) [ 3; 1; 2 ];
  ignore (Cache.write c ~pid:p0 (Block.make ~file:1 ~index:0) ~fetch:false);
  let written = Cache.sync c ~file:0 () in
  chk_int "only file 0 flushed" 3 written;
  chk_bool "address order" true (writes (log ()) = [ blk 1; blk 2; blk 3 ]);
  chk_bool "clean after sync" false (Cache.is_dirty c (blk 1));
  chk_int "other file still dirty" 1 (Cache.sync c ());
  chk_int "nothing left" 0 (Cache.sync c ())

let invalidate_drops_dirty () =
  let backend, log = recording_backend () in
  let c = Cache.create ~backend (config 8) in
  ignore (Cache.write c ~pid:p0 (blk 0) ~fetch:false);
  ignore (Cache.read c ~pid:p0 (Block.make ~file:1 ~index:0));
  let dropped = Cache.invalidate_file c ~file:0 in
  chk_int "dropped" 1 dropped;
  chk_bool "no write issued" true (writes (log ()) = []);
  chk_bool "other file kept" true (Cache.contains c (Block.make ~file:1 ~index:0));
  chk_int "evict callback fired" 1
    (List.length (List.filter (function `Evict, _ -> true | _ -> false) (log ())))

(* {2 Manager lifecycle and control calls} *)

let registration () =
  let c = Cache.create (config ~max_managers:1 8) in
  ok_exn (Cache.register_manager c p0);
  chk_bool "registered" true (Cache.is_manager c p0);
  chk_bool "duplicate" true (Cache.register_manager c p0 = Error Error.Already_registered);
  chk_bool "limit" true (Cache.register_manager c p1 = Error Error.Too_many_managers);
  Cache.unregister_manager c p0;
  chk_bool "unregistered" false (Cache.is_manager c p0);
  ok_exn (Cache.register_manager c p1)

let control_requires_registration () =
  let c = Cache.create (config 8) in
  chk_bool "set_priority" true
    (Cache.set_priority c p0 ~file:0 ~prio:1 = Error Error.Not_registered);
  chk_bool "get_priority" true
    (Cache.get_priority c p0 ~file:0 = Error Error.Not_registered);
  chk_bool "set_policy" true
    (Cache.set_policy c p0 ~prio:0 Policy.Mru = Error Error.Not_registered);
  chk_bool "set_temppri" true
    (Cache.set_temppri c p0 ~file:0 ~first:0 ~last:0 ~prio:1 = Error Error.Not_registered)

let priority_levels_and_eviction () =
  let c = Cache.create (config 3) in
  ok_exn (Cache.register_manager c p0);
  (* File 1 is high priority; file 0 default. *)
  ok_exn (Cache.set_priority c p0 ~file:1 ~prio:1);
  chk_int "get_priority" 1 (ok_exn (Cache.get_priority c p0 ~file:1));
  ignore (Cache.read c ~pid:p0 (Block.make ~file:1 ~index:0));
  ignore (Cache.read c ~pid:p0 (blk 0));
  ignore (Cache.read c ~pid:p0 (blk 1));
  (* Cache full. The high-priority block is global-LRU, hence the
     kernel's candidate — but the manager overrules with its lowest
     level: file 0's LRU block. *)
  ignore (Cache.read c ~pid:p0 (blk 2));
  chk_bool "high-priority survived" true (Cache.contains c (Block.make ~file:1 ~index:0));
  chk_bool "low-priority evicted" false (Cache.contains c (blk 0));
  chk_int "overruled once" 1 (Cache.overrule_count c);
  Cache.check_invariants c

let get_priority_value () =
  let c = Cache.create (config 4) in
  ok_exn (Cache.register_manager c p0);
  chk_bool "default 0" true (Cache.get_priority c p0 ~file:9 = Ok 0);
  ok_exn (Cache.set_priority c p0 ~file:9 ~prio:(-1));
  chk_bool "negative priority" true (Cache.get_priority c p0 ~file:9 = Ok (-1));
  ok_exn (Cache.set_priority c p0 ~file:9 ~prio:0);
  chk_bool "reset to default" true (Cache.get_priority c p0 ~file:9 = Ok 0)

let mru_policy_picks_most_recent () =
  let c = Cache.create (config 3) in
  ok_exn (Cache.register_manager c p0);
  ok_exn (Cache.set_policy c p0 ~prio:0 Policy.Mru);
  chk_bool "get_policy" true (Cache.get_policy c p0 ~prio:0 = Ok Policy.Mru);
  chk_bool "default policy elsewhere" true (Cache.get_policy c p0 ~prio:5 = Ok Policy.Lru);
  List.iter (fun i -> ignore (Cache.read c ~pid:p0 (blk i))) [ 0; 1; 2 ];
  ignore (Cache.read c ~pid:p0 (blk 3));
  (* MRU victim is block 2, the most recently used before the miss. *)
  chk_bool "MRU victim" false (Cache.contains c (blk 2));
  chk_bool "LRU block kept" true (Cache.contains c (blk 0))

let set_priority_moves_cached_blocks () =
  let c = Cache.create (config 8) in
  ok_exn (Cache.register_manager c p0);
  List.iter (fun i -> ignore (Cache.read c ~pid:p0 (blk i))) [ 0; 1; 2 ];
  chk_int "level 0 holds all" 3 (List.length (Cache.level_blocks c p0 ~prio:0));
  ok_exn (Cache.set_priority c p0 ~file:0 ~prio:2);
  chk_int "level 0 empty" 0 (List.length (Cache.level_blocks c p0 ~prio:0));
  chk_int "level 2 holds all" 3 (List.length (Cache.level_blocks c p0 ~prio:2));
  Cache.check_invariants c

let replaced_later_placement () =
  let c = Cache.create (config 8) in
  ok_exn (Cache.register_manager c p0);
  (* Level 5 uses MRU: blocks moved into it go to the LRU end (replaced
     later under MRU = least recently used position). *)
  ok_exn (Cache.set_policy c p0 ~prio:5 Policy.Mru);
  List.iter (fun i -> ignore (Cache.read c ~pid:p0 (blk i))) [ 0; 1 ];
  ignore (Cache.read c ~pid:p0 (Block.make ~file:1 ~index:9));
  ok_exn (Cache.set_priority c p0 ~file:1 ~prio:5);
  ok_exn (Cache.set_priority c p0 ~file:0 ~prio:5);
  (* level_blocks lists MRU end first; file 1 moved first, then file 0's
     blocks appended behind it at the LRU end. *)
  let level5 = Cache.level_blocks c p0 ~prio:5 in
  chk_int "all in level 5" 3 (List.length level5);
  chk_bool "file-1 block is at the MRU side" true
    (List.hd level5 = Block.make ~file:1 ~index:9);
  Cache.check_invariants c

let temppri_only_cached_range () =
  let c = Cache.create (config 8) in
  ok_exn (Cache.register_manager c p0);
  List.iter (fun i -> ignore (Cache.read c ~pid:p0 (blk i))) [ 0; 1; 2 ];
  (* Range covers blocks 1..5, but only 1 and 2 are cached. *)
  ok_exn (Cache.set_temppri c p0 ~file:0 ~first:1 ~last:5 ~prio:(-1));
  chk_bool "level -1 holds the cached pair" true
    (List.sort Block.compare (Cache.level_blocks c p0 ~prio:(-1)) = [ blk 1; blk 2 ]);
  chk_bool "block 0 untouched" true (Cache.level_blocks c p0 ~prio:0 = [ blk 0 ]);
  (* Uncached block 4 is unaffected even when it arrives later. *)
  ignore (Cache.read c ~pid:p0 (blk 4));
  chk_bool "late arrival at long-term level" true
    (List.mem (blk 4) (Cache.level_blocks c p0 ~prio:0));
  Cache.check_invariants c

let temppri_expires_on_reference () =
  let c = Cache.create (config 8) in
  ok_exn (Cache.register_manager c p0);
  ignore (Cache.read c ~pid:p0 (blk 0));
  ok_exn (Cache.set_temppri c p0 ~file:0 ~first:0 ~last:0 ~prio:3);
  chk_bool "in temp level" true (Cache.level_blocks c p0 ~prio:3 = [ blk 0 ]);
  ignore (Cache.read c ~pid:p0 (blk 0));
  chk_bool "reverted on reference" true (Cache.level_blocks c p0 ~prio:3 = []);
  chk_bool "back at long-term level" true (List.mem (blk 0) (Cache.level_blocks c p0 ~prio:0));
  Cache.check_invariants c

let temppri_minus_one_evicted_first () =
  let c = Cache.create (config 3) in
  ok_exn (Cache.register_manager c p0);
  List.iter (fun i -> ignore (Cache.read c ~pid:p0 (blk i))) [ 0; 1; 2 ];
  (* Mark the most recently used block done-with; it must be the next
     victim even though it is globally MRU. *)
  ok_exn (Cache.set_temppri c p0 ~file:0 ~first:2 ~last:2 ~prio:(-1));
  ignore (Cache.read c ~pid:p0 (blk 3));
  chk_bool "done-with block evicted" false (Cache.contains c (blk 2));
  chk_bool "older blocks survive" true
    (Cache.contains c (blk 0) && Cache.contains c (blk 1))

let temppri_invalid_range () =
  let c = Cache.create (config 4) in
  ok_exn (Cache.register_manager c p0);
  chk_bool "reversed range" true
    (Cache.set_temppri c p0 ~file:0 ~first:5 ~last:4 ~prio:0 = Error Error.Invalid_range);
  chk_bool "negative start" true
    (Cache.set_temppri c p0 ~file:0 ~first:(-1) ~last:4 ~prio:0 = Error Error.Invalid_range)

let resource_limits () =
  let c = Cache.create (config ~max_levels:2 ~max_file_records:1 8) in
  ok_exn (Cache.register_manager c p0);
  (* Level 0 exists; one more level is allowed, the next is not. *)
  ok_exn (Cache.set_policy c p0 ~prio:1 Policy.Mru);
  chk_bool "level limit" true
    (Cache.set_policy c p0 ~prio:2 Policy.Mru = Error Error.Too_many_levels);
  ok_exn (Cache.set_priority c p0 ~file:7 ~prio:1);
  chk_bool "file record limit" true
    (Cache.set_priority c p0 ~file:8 ~prio:1 = Error Error.Too_many_file_records);
  (* Setting a recorded file back to 0 frees its record. *)
  ok_exn (Cache.set_priority c p0 ~file:7 ~prio:0);
  ok_exn (Cache.set_priority c p0 ~file:8 ~prio:1)

let unregister_releases_blocks () =
  let c = Cache.create (config 4) in
  ok_exn (Cache.register_manager c p0);
  ok_exn (Cache.set_policy c p0 ~prio:0 Policy.Mru);
  List.iter (fun i -> ignore (Cache.read c ~pid:p0 (blk i))) [ 0; 1; 2; 3 ];
  Cache.unregister_manager c p0;
  Cache.check_invariants c;
  (* Blocks behave as plain LRU now: victim is the oldest. *)
  ignore (Cache.read c ~pid:p0 (blk 4));
  chk_bool "plain LRU after unregister" false (Cache.contains c (blk 0));
  chk_int "no consultation" 0 (Cache.overrule_count c)

(* {2 Two-level mechanics: swapping and placeholders} *)

(* One manager with MRU over a filled cache: the kernel suggests the
   global-LRU block, the manager overrules with its MRU block. *)
let swap_positions () =
  let c = Cache.create (config 3) in
  ok_exn (Cache.register_manager c p0);
  ok_exn (Cache.set_policy c p0 ~prio:0 Policy.Mru);
  List.iter (fun i -> ignore (Cache.read c ~pid:p0 (blk i))) [ 0; 1; 2 ];
  chk_bool "initial order" true (Cache.lru_keys c = [ blk 2; blk 1; blk 0 ]);
  ignore (Cache.read c ~pid:p0 (blk 3));
  (* Candidate was 0 (LRU), manager chose 2 (MRU): they swap, 2 is
     evicted, 0 now sits where 2 was; 3 enters at the front. *)
  chk_bool "victim is MRU block" false (Cache.contains c (blk 2));
  chk_bool "swap moved candidate up" true (Cache.lru_keys c = [ blk 3; blk 0; blk 1 ]);
  chk_int "placeholder created" 1 (Cache.placeholders_created c);
  chk_int "placeholder pending" 1 (Cache.placeholder_count c)

let placeholder_redirects_candidate () =
  let c = Cache.create (config 3) in
  ok_exn (Cache.register_manager c p0);
  ok_exn (Cache.set_policy c p0 ~prio:0 Policy.Mru);
  List.iter (fun i -> ignore (Cache.read c ~pid:p0 (blk i))) [ 0; 1; 2 ];
  ignore (Cache.read c ~pid:p0 (blk 3));
  (* Placeholder: 2 -> 0. Missing 2 again makes 0 the candidate instead
     of the global LRU block (1). The manager still answers MRU = 3. *)
  ignore (Cache.read c ~pid:p0 (blk 2));
  chk_int "placeholder used" 1 (Cache.placeholders_used c);
  chk_int "mistake charged" 1 (Cache.manager_mistakes c p0);
  chk_bool "manager still evicts its MRU" false (Cache.contains c (blk 3));
  Cache.check_invariants c

let placeholder_dies_with_target () =
  let c = Cache.create ~backend:Backend.null (config 3) in
  ok_exn (Cache.register_manager c p0);
  ok_exn (Cache.set_policy c p0 ~prio:0 Policy.Mru);
  List.iter (fun i -> ignore (Cache.read c ~pid:p0 (blk i))) [ 0; 1; 2 ];
  ignore (Cache.read c ~pid:p0 (blk 3));
  chk_int "one placeholder" 1 (Cache.placeholder_count c);
  (* Evict the placeholder's target (block 0) by switching to LRU and
     missing: candidate selection uses the placeholder only for block 2;
     a miss on 4 takes the global LRU path. Manager still MRU though:
     force target eviction by unregistering first. *)
  Cache.unregister_manager c p0;
  ignore (Cache.read c ~pid:p0 (blk 4));
  (* Global LRU end was block 0 after the swap -- wait: order is
     [3; 0; 1], so LRU is 1. Evict until 0 leaves. *)
  ignore (Cache.read c ~pid:p0 (blk 5));
  chk_bool "target gone" false (Cache.contains c (blk 0));
  chk_int "placeholder died with target" 0 (Cache.placeholder_count c);
  Cache.check_invariants c

let placeholder_cap_recycles () =
  let c = Cache.create (config ~max_placeholders:2 4) in
  ok_exn (Cache.register_manager c p0);
  ok_exn (Cache.set_policy c p0 ~prio:0 Policy.Mru);
  List.iter (fun i -> ignore (Cache.read c ~pid:p0 (blk i))) [ 0; 1; 2; 3 ];
  for i = 4 to 8 do
    ignore (Cache.read c ~pid:p0 (blk i))
  done;
  chk_bool "bounded" true (Cache.placeholder_count c <= 2);
  Cache.check_invariants c

let zero_placeholders_disables () =
  let c = Cache.create (config ~max_placeholders:0 3) in
  ok_exn (Cache.register_manager c p0);
  ok_exn (Cache.set_policy c p0 ~prio:0 Policy.Mru);
  List.iter (fun i -> ignore (Cache.read c ~pid:p0 (blk i))) [ 0; 1; 2; 3 ];
  chk_int "none created" 0 (Cache.placeholders_created c)

(* {2 Allocation-policy variants} *)

let fill_with_mru_manager alloc_policy =
  let c = Cache.create (config ~alloc_policy 3) in
  ok_exn (Cache.register_manager c p0);
  ok_exn (Cache.set_policy c p0 ~prio:0 Policy.Mru);
  List.iter (fun i -> ignore (Cache.read c ~pid:p0 (blk i))) [ 0; 1; 2 ];
  ignore (Cache.read c ~pid:p0 (blk 3));
  c

let global_lru_ignores_managers () =
  let c = fill_with_mru_manager Config.Global_lru in
  chk_bool "pure LRU victim" false (Cache.contains c (blk 0));
  chk_bool "MRU block kept" true (Cache.contains c (blk 2));
  chk_int "never consulted" 0 (Cache.manager_decisions c p0)

let alloc_lru_no_swap () =
  let c = fill_with_mru_manager Config.Alloc_lru in
  chk_bool "manager's choice evicted" false (Cache.contains c (blk 2));
  (* No swapping: candidate block 0 stays at the LRU end. *)
  chk_bool "no swap" true (Cache.lru_keys c = [ blk 3; blk 1; blk 0 ]);
  chk_int "no placeholders" 0 (Cache.placeholders_created c)

let lru_s_swaps_without_placeholders () =
  let c = fill_with_mru_manager Config.Lru_s in
  chk_bool "swapped" true (Cache.lru_keys c = [ blk 3; blk 0; blk 1 ]);
  chk_int "no placeholders" 0 (Cache.placeholders_created c)

let lru_sp_full () =
  let c = fill_with_mru_manager Config.Lru_sp in
  chk_bool "swapped" true (Cache.lru_keys c = [ blk 3; blk 0; blk 1 ]);
  chk_int "placeholder" 1 (Cache.placeholders_created c)

(* {2 Revocation} *)

let revocation_fires () =
  let revocation = { Config.min_decisions = 3; mistake_ratio = 0.5 } in
  let c = Cache.create (config ~revocation 3) in
  let revoked_event = ref false in
  Cache.set_tracer c
    (Some (function Event.Manager_revoked _ -> revoked_event := true | _ -> ()));
  ok_exn (Cache.register_manager c p0);
  ok_exn (Cache.set_policy c p0 ~prio:0 Policy.Mru);
  List.iter (fun i -> ignore (Cache.read c ~pid:p0 (blk i))) [ 0; 1; 2 ];
  (* Cyclically re-missing MRU-evicted blocks racks up mistakes. *)
  for i = 3 to 20 do
    ignore (Cache.read c ~pid:p0 (blk (i mod 6)))
  done;
  chk_bool "revoked" true (Cache.manager_revoked c p0);
  chk_bool "event emitted" true !revoked_event;
  chk_bool "control calls now fail" true
    (Cache.set_policy c p0 ~prio:0 Policy.Lru = Error Error.Revoked);
  chk_bool "mistakes were counted" true (Cache.manager_mistakes c p0 >= 2);
  (* After revocation the kernel stops consulting: decisions freeze. *)
  let decisions = Cache.manager_decisions c p0 in
  ignore (Cache.read c ~pid:p0 (blk 100));
  chk_int "no further consultation" decisions (Cache.manager_decisions c p0);
  Cache.check_invariants c

let no_revocation_without_config () =
  let c = fill_with_mru_manager Config.Lru_sp in
  for i = 4 to 30 do
    ignore (Cache.read c ~pid:p0 (blk (i mod 6)))
  done;
  chk_bool "never revoked" false (Cache.manager_revoked c p0)

(* {2 Ownership transfer} *)

let ownership_follows_access () =
  let c = Cache.create (config 4) in
  ok_exn (Cache.register_manager c p0);
  ok_exn (Cache.register_manager c p1);
  ignore (Cache.read c ~pid:p0 (blk 0));
  chk_bool "in p0's level" true (List.mem (blk 0) (Cache.level_blocks c p0 ~prio:0));
  ignore (Cache.read c ~pid:p1 (blk 0));
  chk_bool "left p0" false (List.mem (blk 0) (Cache.level_blocks c p0 ~prio:0));
  chk_bool "joined p1" true (List.mem (blk 0) (Cache.level_blocks c p1 ~prio:0));
  Cache.check_invariants c

let sticky_shared_files () =
  let cfg =
    Acfc_core.Config.make ~shared_files:Acfc_core.Config.Sticky ~capacity_blocks:4 ()
  in
  let c = Cache.create cfg in
  ok_exn (Cache.register_manager c p0);
  ok_exn (Cache.register_manager c p1);
  ignore (Cache.read c ~pid:p0 (blk 0));
  (* p1 references the shared block: under Sticky it stays with p0. *)
  ignore (Cache.read c ~pid:p1 (blk 0));
  chk_bool "stays with first manager" true
    (List.mem (blk 0) (Cache.level_blocks c p0 ~prio:0));
  chk_bool "not moved to p1" false (List.mem (blk 0) (Cache.level_blocks c p1 ~prio:0));
  (* Once the holder unregisters, the next reference re-homes it. *)
  Cache.unregister_manager c p0;
  ignore (Cache.read c ~pid:p1 (blk 0));
  chk_bool "re-homed after unregister" true
    (List.mem (blk 0) (Cache.level_blocks c p1 ~prio:0));
  Cache.check_invariants c

let manager_to_oblivious_transfer () =
  let c = Cache.create (config 4) in
  ok_exn (Cache.register_manager c p0);
  ignore (Cache.read c ~pid:p0 (blk 0));
  (* An unmanaged process touches the block: it leaves the manager. *)
  ignore (Cache.read c ~pid:p1 (blk 0));
  chk_bool "unmanaged now" true (Cache.level_blocks c p0 ~prio:0 = []);
  Cache.check_invariants c

(* {2 Upcall replacement handlers} *)

let upcall_directs_eviction () =
  let c = Cache.create (config 3) in
  ok_exn (Cache.register_manager c p0);
  let seen_candidates = ref [] in
  ok_exn
    (Cache.set_chooser c p0
       (Some
          (fun ~candidate ~resident ->
            seen_candidates := candidate :: !seen_candidates;
            chk_int "full resident set offered" 3 (List.length resident);
            (* Always sacrifice block 1, wherever it sits. *)
            if List.exists (Block.equal (blk 1)) resident then Some (blk 1) else None)));
  List.iter (fun i -> ignore (Cache.read c ~pid:p0 (blk i))) [ 0; 1; 2 ];
  ignore (Cache.read c ~pid:p0 (blk 3));
  chk_bool "handler's victim evicted" false (Cache.contains c (blk 1));
  chk_bool "kernel candidate survived (swap)" true (Cache.contains c (blk 0));
  chk_bool "candidate was global LRU" true (!seen_candidates = [ blk 0 ]);
  Cache.check_invariants c

let upcall_none_falls_back_to_pools () =
  let c = Cache.create (config 3) in
  ok_exn (Cache.register_manager c p0);
  ok_exn (Cache.set_policy c p0 ~prio:0 Policy.Mru);
  ok_exn (Cache.set_chooser c p0 (Some (fun ~candidate:_ ~resident:_ -> None)));
  List.iter (fun i -> ignore (Cache.read c ~pid:p0 (blk i))) [ 0; 1; 2 ];
  ignore (Cache.read c ~pid:p0 (blk 3));
  chk_bool "pool MRU used on fallback" false (Cache.contains c (blk 2))

let upcall_invalid_falls_back () =
  let c = Cache.create (config 3) in
  ok_exn (Cache.register_manager c p0);
  ok_exn
    (Cache.set_chooser c p0 (Some (fun ~candidate:_ ~resident:_ -> Some (blk 999))));
  List.iter (fun i -> ignore (Cache.read c ~pid:p0 (blk i))) [ 0; 1; 2 ];
  ignore (Cache.read c ~pid:p0 (blk 3));
  (* Invalid answer: pool (default LRU) evicts the candidate itself. *)
  chk_bool "candidate evicted" false (Cache.contains c (blk 0));
  Cache.check_invariants c

let upcall_clear_restores_pools () =
  let c = Cache.create (config 3) in
  ok_exn (Cache.register_manager c p0);
  ok_exn (Cache.set_chooser c p0 (Some (fun ~candidate:_ ~resident -> Some (List.hd resident))));
  ok_exn (Cache.set_chooser c p0 None);
  ok_exn (Cache.set_policy c p0 ~prio:0 Policy.Mru);
  List.iter (fun i -> ignore (Cache.read c ~pid:p0 (blk i))) [ 0; 1; 2 ];
  ignore (Cache.read c ~pid:p0 (blk 3));
  chk_bool "pool policy back in force" false (Cache.contains c (blk 2))

(* An upcall handler implementing MRU by tracking recency externally
   must reproduce the pool MRU policy decision for decision. *)
let upcall_mru_equals_pool_mru () =
  let trace = List.init 60 (fun i -> blk ((i * 7) mod 13)) in
  let run_pool () =
    let c = Cache.create (config 5) in
    ok_exn (Cache.register_manager c p0);
    ok_exn (Cache.set_policy c p0 ~prio:0 Policy.Mru);
    List.iter (fun b -> ignore (Cache.read c ~pid:p0 b)) trace;
    (Cache.misses c, List.sort Block.compare (Cache.lru_keys c))
  in
  let run_upcall () =
    let c = Cache.create (config 5) in
    ok_exn (Cache.register_manager c p0);
    let stamp = Hashtbl.create 16 in
    let clock = ref 0 in
    ok_exn
      (Cache.set_chooser c p0
         (Some
            (fun ~candidate:_ ~resident ->
              let most_recent =
                List.fold_left
                  (fun best b ->
                    let tb = Option.value (Hashtbl.find_opt stamp b) ~default:(-1) in
                    match best with
                    | Some (_, tbest) when tbest >= tb -> best
                    | Some _ | None -> Some (b, tb))
                  None resident
              in
              Option.map fst most_recent)));
    List.iter
      (fun b ->
        incr clock;
        Hashtbl.replace stamp b !clock;
        ignore (Cache.read c ~pid:p0 b))
      trace;
    (Cache.misses c, List.sort Block.compare (Cache.lru_keys c))
  in
  chk_bool "upcall MRU == pool MRU" true (run_pool () = run_upcall ())

let upcall_requires_registration () =
  let c = Cache.create (config 3) in
  chk_bool "not registered" true
    (Cache.set_chooser c p0 (Some (fun ~candidate:_ ~resident:_ -> None))
    = Error Error.Not_registered)

(* {2 Events} *)

let tracer_sees_lifecycle () =
  let events = ref [] in
  let c = Cache.create (config 2) in
  Cache.set_tracer c (Some (fun e -> events := e :: !events));
  ignore (Cache.read c ~pid:p0 (blk 0));
  ignore (Cache.read c ~pid:p0 (blk 0));
  ignore (Cache.write c ~pid:p0 (blk 1) ~fetch:false);
  ignore (Cache.read c ~pid:p0 (blk 2));
  let kinds =
    List.rev_map
      (function
        | Event.Hit _ -> "hit"
        | Event.Miss _ -> "miss"
        | Event.Evict _ -> "evict"
        | Event.Writeback _ -> "writeback"
        | Event.Placeholder_created _ -> "ph+"
        | Event.Placeholder_used _ -> "ph!"
        | Event.Manager_revoked _ -> "revoked")
      !events
  in
  chk_bool "sequence" true (kinds = [ "miss"; "hit"; "miss"; "miss"; "evict" ])

let suites =
  [
    ( "cache: data path",
      [
        case "hit/miss accounting" hit_miss_accounting;
        case "LRU eviction order" lru_eviction_order;
        case "capacity bound" capacity_never_exceeded;
        case "dirty write-back" dirty_writeback;
        case "write fetch semantics" write_fetch_semantics;
        case "sync order and scope" sync_flushes_in_order;
        case "invalidate drops dirty" invalidate_drops_dirty;
        case "tracer lifecycle" tracer_sees_lifecycle;
      ] );
    ( "cache: control interface",
      [
        case "registration and limits" registration;
        case "control requires registration" control_requires_registration;
        case "priorities steer eviction" priority_levels_and_eviction;
        case "get_priority values" get_priority_value;
        case "MRU policy" mru_policy_picks_most_recent;
        case "set_priority moves blocks" set_priority_moves_cached_blocks;
        case "replaced-later placement" replaced_later_placement;
        case "temppri cached range only" temppri_only_cached_range;
        case "temppri expires on reference" temppri_expires_on_reference;
        case "done-with evicted first" temppri_minus_one_evicted_first;
        case "temppri invalid range" temppri_invalid_range;
        case "kernel resource limits" resource_limits;
        case "unregister releases blocks" unregister_releases_blocks;
      ] );
    ( "cache: LRU-SP mechanics",
      [
        case "swapping positions" swap_positions;
        case "placeholder redirects candidate" placeholder_redirects_candidate;
        case "placeholder dies with target" placeholder_dies_with_target;
        case "placeholder cap recycles" placeholder_cap_recycles;
        case "zero placeholders disables" zero_placeholders_disables;
        case "global-lru ignores managers" global_lru_ignores_managers;
        case "alloc-lru: no swap" alloc_lru_no_swap;
        case "lru-s: swap only" lru_s_swaps_without_placeholders;
        case "lru-sp: swap + placeholder" lru_sp_full;
        case "upcall directs eviction" upcall_directs_eviction;
        case "upcall None falls back" upcall_none_falls_back_to_pools;
        case "upcall invalid falls back" upcall_invalid_falls_back;
        case "upcall cleared" upcall_clear_restores_pools;
        case "upcall MRU == pool MRU" upcall_mru_equals_pool_mru;
        case "upcall needs registration" upcall_requires_registration;
        case "revocation fires" revocation_fires;
        case "no revocation by default" no_revocation_without_config;
        case "ownership follows access" ownership_follows_access;
        case "sticky shared files" sticky_shared_files;
        case "manager-to-oblivious transfer" manager_to_oblivious_transfer;
      ] );
  ]
