open Acfc_sim
module Fs = Acfc_fs.Fs
module File = Acfc_fs.File
module Disk = Acfc_disk.Disk
module Params = Acfc_disk.Params
module Cache = Acfc_core.Cache
open Tutil

let bb = Params.block_bytes

(* Build a one-disk file system inside a simulation and run [f]. *)
let with_fs ?(capacity = 64) ?(track_data = false) ?(readahead = true) f =
  in_sim (fun engine ->
      let disk = Disk.create engine Params.rz56 in
      let fs =
        Fs.create engine ~config:(config capacity) ~track_data ~readahead ()
      in
      f engine fs disk)

let p0 = pid 0

let p1 = pid 1

let create_and_lookup () =
  with_fs (fun _ fs disk ->
      let f = Fs.create_file fs ~name:"a" ~disk ~size_bytes:(3 * bb) () in
      chk_int "size" (3 * bb) (File.size_bytes f);
      chk_int "blocks" 3 (File.size_blocks f);
      chk_bool "lookup" true
        (Option.map File.id (Fs.lookup fs "a") = Some (File.id f));
      chk_bool "by id" true
        (match Fs.file_of_id fs (File.id f) with Some f' -> f' == f | None -> false);
      chk_bool "missing" true (Fs.lookup fs "b" = None);
      Alcotest.check_raises "duplicate name"
        (Invalid_argument "Fs.create_file: duplicate name \"a\"") (fun () ->
          ignore (Fs.create_file fs ~name:"a" ~disk ~size_bytes:bb ())))

let contiguous_layout () =
  with_fs (fun _ fs disk ->
      let a = Fs.create_file fs ~name:"a" ~disk ~size_bytes:(4 * bb) () in
      let b = Fs.create_file fs ~name:"b" ~disk ~size_bytes:(2 * bb) () in
      chk_int "a at 0" 0 (File.disk_addr a ~index:0);
      chk_int "a block 3" 3 (File.disk_addr a ~index:3);
      chk_int "b after a" 4 (File.disk_addr b ~index:0))

let disk_full () =
  with_fs (fun _ fs disk ->
      let huge = (Params.rz56.Params.capacity_blocks + 1) * bb in
      Alcotest.check_raises "disk full" (Invalid_argument "Fs.create_file: disk full")
        (fun () -> ignore (Fs.create_file fs ~name:"big" ~disk ~size_bytes:huge ())))

let read_bounds () =
  with_fs (fun _ fs disk ->
      let f = Fs.create_file fs ~name:"a" ~disk ~size_bytes:(2 * bb) () in
      Fs.read fs ~pid:p0 f ~off:0 ~len:(2 * bb);
      Alcotest.check_raises "past EOF" (Invalid_argument "Fs.read: past end of file")
        (fun () -> Fs.read fs ~pid:p0 f ~off:bb ~len:(2 * bb));
      Alcotest.check_raises "negative"
        (Invalid_argument "Fs.read: negative offset or length") (fun () ->
          Fs.read fs ~pid:p0 f ~off:(-1) ~len:1);
      (* Zero-length read touches nothing. *)
      let before = Fs.pid_disk_reads fs p0 in
      Fs.read fs ~pid:p0 f ~off:0 ~len:0;
      chk_int "empty read free" before (Fs.pid_disk_reads fs p0))

let sequential_read_cost () =
  with_fs ~capacity:64 (fun _ fs disk ->
      let f = Fs.create_file fs ~name:"a" ~disk ~size_bytes:(32 * bb) () in
      Fs.read fs ~pid:p0 f ~off:0 ~len:(32 * bb);
      chk_int "one disk read per block" 32 (Fs.pid_disk_reads fs p0);
      (* Re-read is fully cached. *)
      Fs.read fs ~pid:p0 f ~off:0 ~len:(32 * bb);
      chk_int "no extra I/O when cached" 32 (Fs.pid_disk_reads fs p0))

let readahead_overlaps () =
  (* With read-ahead the same scan takes less virtual time but exactly
     the same number of disk reads. *)
  let run readahead =
    in_sim (fun engine ->
        let disk = Disk.create engine Params.rz56 in
        let fs = Fs.create engine ~config:(config 64) ~readahead () in
        let f = Fs.create_file fs ~name:"a" ~disk ~size_bytes:(32 * bb) () in
        Fs.read fs ~pid:p0 f ~off:0 ~len:(32 * bb);
        (Fs.pid_disk_reads fs p0, Engine.now engine))
  in
  let ios_on, t_on = run true in
  let ios_off, t_off = run false in
  chk_int "same I/O count" ios_off ios_on;
  chk_bool "read-ahead is faster" true (t_on < t_off)

let no_readahead_past_eof () =
  with_fs ~capacity:64 (fun _ fs disk ->
      let f = Fs.create_file fs ~name:"a" ~disk ~size_bytes:(4 * bb) () in
      Fs.read fs ~pid:p0 f ~off:0 ~len:(4 * bb);
      chk_int "exactly the file" 4 (Fs.pid_disk_reads fs p0))

let random_access_no_prefetch () =
  with_fs ~capacity:64 (fun _ fs disk ->
      let f = Fs.create_file fs ~name:"a" ~disk ~size_bytes:(32 * bb) () in
      (* Stride-2 (never sequential; starts past block 0, which always
         counts as a scan start): exactly the touched blocks. *)
      let touched = ref 0 in
      let i = ref 1 in
      while !i < 32 do
        Fs.read fs ~pid:p0 f ~off:(!i * bb) ~len:1;
        incr touched;
        i := !i + 2
      done;
      chk_int "no prefetch on strides" !touched (Fs.pid_disk_reads fs p0))

let write_grow_and_rmw () =
  with_fs (fun _ fs disk ->
      let f = Fs.create_file fs ~name:"a" ~disk ~size_bytes:bb ~reserve_bytes:(4 * bb) () in
      (* Full-block append: no fetch. *)
      Fs.write fs ~pid:p0 f ~off:bb ~len:bb;
      chk_int "no read for full append" 0 (Fs.pid_disk_reads fs p0);
      chk_int "grew" (2 * bb) (File.size_bytes f);
      (* Partial overwrite of on-disk data: read-modify-write. The block
         is not cached, and existed on disk. *)
      ignore (Fs.sync fs);
      ignore (Cache.invalidate_file (Fs.cache fs) ~file:(File.id f));
      Fs.write fs ~pid:p0 f ~off:100 ~len:10;
      chk_int "rmw fetched" 1 (Fs.pid_disk_reads fs p0);
      (* Partial write beyond current size: no fetch. *)
      Fs.write fs ~pid:p0 f ~off:((3 * bb) + 5) ~len:10;
      chk_int "no fetch past size" 1 (Fs.pid_disk_reads fs p0);
      Alcotest.check_raises "past reserve"
        (Invalid_argument "Fs.write: past file reserve") (fun () ->
          Fs.write fs ~pid:p0 f ~off:(4 * bb) ~len:1))

let data_round_trip () =
  with_fs ~track_data:true (fun _ fs disk ->
      let f = Fs.create_file fs ~name:"a" ~disk ~size_bytes:0 ~reserve_bytes:(4 * bb) () in
      let payload = Bytes.of_string "hello, application-controlled world" in
      Fs.pwrite fs ~pid:p0 f ~off:(bb - 10) payload;
      let got = Fs.pread fs ~pid:p0 f ~off:(bb - 10) ~len:(Bytes.length payload) in
      chk_bool "read back" true (Bytes.equal payload got))

let data_survives_eviction () =
  with_fs ~track_data:true ~capacity:2 (fun _ fs disk ->
      let f = Fs.create_file fs ~name:"a" ~disk ~size_bytes:0 ~reserve_bytes:(8 * bb) () in
      Fs.pwrite fs ~pid:p0 f ~off:0 (Bytes.of_string "first");
      (* Push the dirty block out through a tiny cache. *)
      for i = 1 to 6 do
        Fs.write fs ~pid:p0 f ~off:(i * bb) ~len:bb
      done;
      let got = Fs.pread fs ~pid:p0 f ~off:0 ~len:5 in
      chk_bool "data preserved across write-back" true
        (Bytes.equal (Bytes.of_string "first") got))

let disk_image_reflects_writeback () =
  with_fs ~track_data:true (fun _ fs disk ->
      let f = Fs.create_file fs ~name:"a" ~disk ~size_bytes:0 ~reserve_bytes:(2 * bb) () in
      Fs.pwrite fs ~pid:p0 f ~off:0 (Bytes.of_string "durable");
      chk_bool "image empty before flush" true
        (Bytes.get (Fs.disk_image fs f) 0 = '\000');
      ignore (Fs.fsync fs f);
      chk_bool "image after fsync" true
        (Bytes.equal (Bytes.sub (Fs.disk_image fs f) 0 7) (Bytes.of_string "durable")))

let set_disk_image_preload () =
  with_fs ~track_data:true (fun _ fs disk ->
      let f = Fs.create_file fs ~name:"a" ~disk ~size_bytes:(2 * bb) () in
      Fs.set_disk_image fs f ~off:10 (Bytes.of_string "preloaded");
      let got = Fs.pread fs ~pid:p0 f ~off:10 ~len:9 in
      chk_bool "read preloaded data" true (Bytes.equal got (Bytes.of_string "preloaded")))

let unlink_drops_everything () =
  with_fs ~track_data:true (fun _ fs disk ->
      let f = Fs.create_file fs ~name:"a" ~disk ~size_bytes:0 ~reserve_bytes:(2 * bb) () in
      Fs.pwrite fs ~pid:p0 f ~off:0 (Bytes.of_string "gone");
      let writes_before = Fs.pid_disk_writes fs p0 in
      Fs.unlink fs f;
      chk_bool "name free" true (Fs.lookup fs "a" = None);
      chk_int "dirty dropped without write" writes_before (Fs.pid_disk_writes fs p0);
      chk_int "cache emptied" 0 (Cache.length (Fs.cache fs));
      (* Unlink is idempotent. *)
      Fs.unlink fs f)

let update_daemon_flushes () =
  in_sim (fun engine ->
      let disk = Disk.create engine Params.rz56 in
      let fs = Fs.create engine ~config:(config 64) () in
      let f = Fs.create_file fs ~name:"a" ~disk ~size_bytes:0 ~reserve_bytes:(4 * bb) () in
      let stop = Fs.spawn_update_daemon fs ~interval:30.0 () in
      Fs.write fs ~pid:p0 f ~off:0 ~len:(2 * bb);
      chk_bool "dirty now" true (Cache.is_dirty (Fs.cache fs) (File.block_key f ~index:0));
      Engine.delay engine 35.0;
      chk_bool "flushed by daemon" false
        (Cache.is_dirty (Fs.cache fs) (File.block_key f ~index:0));
      chk_int "writes counted" 2 (Fs.pid_disk_writes fs p0);
      stop ())

let write_attribution_to_owner () =
  with_fs ~capacity:2 (fun _ fs disk ->
      let f = Fs.create_file fs ~owner:p1 ~name:"a" ~disk ~size_bytes:0
          ~reserve_bytes:(8 * bb) ()
      in
      (* p0 writes, but the file's owner p1 pays for write-backs. *)
      for i = 0 to 5 do
        Fs.write fs ~pid:p0 f ~off:(i * bb) ~len:bb
      done;
      ignore (Fs.sync fs);
      chk_int "p0 paid no writes" 0 (Fs.pid_disk_writes fs p0);
      chk_bool "owner charged" true (Fs.pid_disk_writes fs p1 > 0);
      chk_bool "totals add up" true
        (Fs.total_block_ios fs = Fs.pid_block_ios fs p0 + Fs.pid_block_ios fs p1);
      Fs.reset_accounting fs;
      chk_int "reset" 0 (Fs.total_block_ios fs))

let scattered_layout_gaps () =
  in_sim (fun engine ->
      let disk = Disk.create engine Params.rz56 in
      let rng = Rng.create 3 in
      let fs = Fs.create engine ~config:(config 64) ~layout:(`Scattered rng) () in
      let a = Fs.create_file fs ~name:"a" ~disk ~size_bytes:(4 * bb) () in
      let b = Fs.create_file fs ~name:"b" ~disk ~size_bytes:(4 * bb) () in
      (* Files do not overlap and (with this seed) are not adjacent. *)
      chk_bool "no overlap" true
        (File.disk_addr b ~index:0 >= File.disk_addr a ~index:3 + 1);
      chk_bool "gap inserted" true
        (File.disk_addr b ~index:0 > File.disk_addr a ~index:3 + 1);
      (* Reads still address the right blocks. *)
      Fs.read fs ~pid:p0 b ~off:0 ~len:(4 * bb);
      chk_int "reads work" 4 (Fs.pid_disk_reads fs p0))

let file_helpers () =
  chk_int "block_of_offset" 2 (File.block_of_offset ~byte:(2 * bb));
  chk_int "block_of_offset boundary" 1 (File.block_of_offset ~byte:((2 * bb) - 1))

let clustered_writeback () =
  in_sim (fun engine ->
      let disk = Disk.create engine Params.rz56 in
      let fs = Fs.create engine ~config:(config 64) ~write_cluster:4 () in
      let f = Fs.create_file fs ~name:"a" ~disk ~size_bytes:0 ~reserve_bytes:(8 * bb) () in
      Fs.write fs ~pid:p0 f ~off:0 ~len:(8 * bb);
      let requests = Fs.sync fs in
      Engine.delay engine 1.0;  (* let the async write-backs land *)
      chk_int "two write-back requests issued" 2 requests;
      chk_int "eight block I/Os charged" 8 (Fs.pid_disk_writes fs p0);
      chk_int "eight blocks transferred" 8 (Disk.blocks_transferred disk);
      chk_int "but only two disk requests" 2 (Disk.writes disk);
      (* Nothing left dirty. *)
      chk_int "no residue" 0 (Fs.sync fs))

let clustered_data_integrity () =
  in_sim (fun engine ->
      let disk = Disk.create engine Params.rz56 in
      let fs =
        Fs.create engine ~config:(config 64) ~write_cluster:8 ~track_data:true ()
      in
      let f = Fs.create_file fs ~name:"a" ~disk ~size_bytes:0 ~reserve_bytes:(4 * bb) () in
      let payload = Bytes.init (4 * bb) (fun i -> Char.chr (i mod 251)) in
      Fs.pwrite fs ~pid:p0 f ~off:0 payload;
      ignore (Fs.sync fs);
      Engine.delay engine 1.0;
      chk_bool "image holds the clustered data" true
        (Bytes.equal (Bytes.sub (Fs.disk_image fs f) 0 (4 * bb)) payload))

(* Model-based data integrity: random reads, writes, syncs and cache
   pressure against a plain Bytes reference model. Every pread must
   return exactly what the model says, whatever the cache and
   write-back machinery did in between. *)
type fs_op =
  | Fwrite of int * int * int  (* file, offset, length *)
  | Fread of int * int * int
  | Fsync
  | Fcheck of int * int * int

let fs_op_gen =
  let open QCheck2.Gen in
  let file = int_range 0 1 in
  let off = int_range 0 ((6 * bb) - 1) in
  let len = int_range 0 700 in
  oneof
    [
      map3 (fun f o l -> Fwrite (f, o, l)) file off len;
      map3 (fun f o l -> Fread (f, o, l)) file off len;
      return Fsync;
      map3 (fun f o l -> Fcheck (f, o, l)) file off len;
    ]

let data_model_prop =
  qcheck "fs data matches a byte-array model" ~count:60
    QCheck2.Gen.(pair (int_range 2 10) (list_size (int_range 1 60) fs_op_gen))
    (fun (capacity, ops) ->
      in_sim (fun engine ->
          let disk = Disk.create engine Params.rz56 in
          let fs = Fs.create engine ~config:(config capacity) ~track_data:true () in
          let extent = 7 * bb in
          let files =
            [|
              Fs.create_file fs ~name:"m0" ~disk ~size_bytes:0 ~reserve_bytes:extent ();
              Fs.create_file fs ~name:"m1" ~disk ~size_bytes:0 ~reserve_bytes:extent ();
            |]
          in
          let models = [| Bytes.make extent '\000'; Bytes.make extent '\000' |] in
          let sizes = [| 0; 0 |] in
          let payload = ref 0 in
          let ok = ref true in
          List.iter
            (fun op ->
              match op with
              | Fwrite (f, off, len) ->
                let len = Stdlib.min len (extent - off) in
                incr payload;
                let data = Bytes.make len (Char.chr (Char.code 'a' + (!payload mod 26))) in
                Fs.pwrite fs ~pid:p0 files.(f) ~off data;
                Bytes.blit data 0 models.(f) off len;
                (* Zero-length writes grow neither the file nor the model. *)
                if len > 0 then sizes.(f) <- Stdlib.max sizes.(f) (off + len)
              | Fread (f, off, len) | Fcheck (f, off, len) ->
                let off = Stdlib.min off sizes.(f) in
                let len = Stdlib.min len (sizes.(f) - off) in
                let got = Fs.pread fs ~pid:p0 files.(f) ~off ~len in
                let want = Bytes.sub models.(f) off len in
                if not (Bytes.equal got want) then ok := false
              | Fsync -> ignore (Fs.sync fs))
            ops;
          Cache.check_invariants (Fs.cache fs);
          !ok))

let suites =
  [
    ( "fs",
      [
        case "create and lookup" create_and_lookup;
        case "contiguous layout" contiguous_layout;
        case "disk full" disk_full;
        case "read bounds" read_bounds;
        case "sequential read cost" sequential_read_cost;
        case "read-ahead overlaps I/O" readahead_overlaps;
        case "no read-ahead past EOF" no_readahead_past_eof;
        case "no prefetch on strides" random_access_no_prefetch;
        case "write growth and RMW" write_grow_and_rmw;
        case "data round trip" data_round_trip;
        case "data survives eviction" data_survives_eviction;
        case "disk image after write-back" disk_image_reflects_writeback;
        case "preloaded disk image" set_disk_image_preload;
        case "unlink" unlink_drops_everything;
        case "update daemon" update_daemon_flushes;
        case "write attribution" write_attribution_to_owner;
        case "scattered layout" scattered_layout_gaps;
        case "clustered write-back" clustered_writeback;
        case "clustered data integrity" clustered_data_integrity;
        case "file helpers" file_helpers;
        data_model_prop;
      ] );
  ]
